#include <gtest/gtest.h>

#include "datalog/dsl.h"
#include "ir/lowering.h"

namespace carac::ir {
namespace {

using datalog::Dsl;
using datalog::Program;

struct Lowered {
  std::unique_ptr<Program> program;
  IRProgram irp;
};

/// Collects all nodes of a kind in the subtree.
void Collect(IROp* op, OpKind kind, std::vector<IROp*>* out) {
  if (op->kind == kind) out->push_back(op);
  for (auto& child : op->children) Collect(child.get(), kind, out);
}

TEST(LoweringTest, TransitiveClosureShape) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  ASSERT_NE(irp.root, nullptr);
  EXPECT_EQ(irp.root->kind, OpKind::kProgram);
  ASSERT_EQ(irp.root->children.size(), 1u);  // One stratum.

  std::vector<IROp*> loops;
  Collect(irp.root.get(), OpKind::kDoWhile, &loops);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0]->relations, std::vector<datalog::PredicateId>{path.id()});

  // Init pass: 2 naive SPJs. Loop: 1 delta SPJ (one recursive atom).
  std::vector<IROp*> spjs;
  Collect(irp.root.get(), OpKind::kSpj, &spjs);
  ASSERT_EQ(spjs.size(), 3u);
  int naive = 0, delta = 0;
  for (IROp* spj : spjs) {
    (spj->delta_pos < 0 ? naive : delta)++;
  }
  EXPECT_EQ(naive, 2);
  EXPECT_EQ(delta, 1);
}

TEST(LoweringTest, DeltaSplitOnePerRecursiveAtom) {
  Program p;
  Dsl dsl(&p);
  auto seed = dsl.Relation("Seed", 2);
  auto t = dsl.Relation("T", 2);
  auto [x, y, z] = dsl.Vars<3>();
  t(x, y) <<= seed(x, y);
  t(x, z) <<= t(x, y) & t(y, z);  // Two recursive atoms -> two subqueries.

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  std::vector<IROp*> loops;
  Collect(irp.root.get(), OpKind::kDoWhile, &loops);
  ASSERT_EQ(loops.size(), 1u);
  std::vector<IROp*> spjs;
  Collect(loops[0], OpKind::kSpj, &spjs);
  ASSERT_EQ(spjs.size(), 2u);
  // Each subquery reads exactly one delta.
  for (IROp* spj : spjs) {
    int deltas = 0;
    for (const AtomSpec& atom : spj->atoms) {
      if (atom.is_relational() &&
          atom.source == storage::DbKind::kDeltaKnown) {
        ++deltas;
      }
    }
    EXPECT_EQ(deltas, 1);
  }
  EXPECT_NE(spjs[0]->delta_pos, spjs[1]->delta_pos);
}

TEST(LoweringTest, LowerStratumAtomsReadDerived) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto blocked = dsl.Relation("Blocked", 2);
  auto open_path = dsl.Relation("OpenPath", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  open_path(x, y) <<= path(x, y) & !blocked(x, y);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  ASSERT_EQ(irp.root->children.size(), 2u);  // Two strata.

  // OpenPath's stratum: the path atom (lower stratum) reads Derived and
  // there is no DoWhile (non-recursive).
  IROp* second = irp.root->children[1].get();
  std::vector<IROp*> loops;
  Collect(second, OpKind::kDoWhile, &loops);
  EXPECT_TRUE(loops.empty());
  std::vector<IROp*> spjs;
  Collect(second, OpKind::kSpj, &spjs);
  ASSERT_EQ(spjs.size(), 1u);
  for (const AtomSpec& atom : spjs[0]->atoms) {
    if (atom.is_relational()) {
      EXPECT_EQ(atom.source, storage::DbKind::kDerived);
    }
  }
}

TEST(LoweringTest, UpdateTreeHasDeltaVariantPerPositiveAtom) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  ASSERT_NE(irp.update_root, nullptr);
  ASSERT_EQ(irp.strata.size(), 1u);
  EXPECT_EQ(irp.strata[0].full, irp.root->children[0].get());
  EXPECT_EQ(irp.strata[0].update, irp.update_root->children[0].get());
  EXPECT_EQ(irp.strata[0].predicates,
            std::vector<datalog::PredicateId>{path.id()});
  EXPECT_EQ(irp.strata[0].recursive_predicates,
            std::vector<datalog::PredicateId>{path.id()});
  EXPECT_TRUE(irp.strata[0].recompute_triggers.empty());

  // 1 positive atom in rule 1 + 2 in rule 2 = 3 update variants, each
  // with its delta atom rotated to the FRONT (an empty delta then makes
  // the whole variant O(1)) and exactly one DeltaKnown read.
  std::vector<IROp*> spjs;
  Collect(irp.update_root.get(), OpKind::kSpj, &spjs);
  ASSERT_EQ(spjs.size(), 3u);
  for (IROp* spj : spjs) {
    ASSERT_FALSE(spj->atoms.empty());
    EXPECT_EQ(spj->atoms[0].source, storage::DbKind::kDeltaKnown);
    int deltas = 0;
    for (const AtomSpec& atom : spj->atoms) {
      if (atom.is_relational() &&
          atom.source == storage::DbKind::kDeltaKnown) {
        ++deltas;
      }
    }
    EXPECT_EQ(deltas, 1);
  }
  // Unlike the in-loop delta split, the EDB relation gets variants too:
  // an epoch that only grows Edge must still re-derive.
  int edge_deltas = 0;
  for (IROp* spj : spjs) {
    if (spj->atoms[0].predicate == edge.id()) ++edge_deltas;
  }
  EXPECT_EQ(edge_deltas, 2);

  // The update loop terminates on the stratum's own deltas, and its
  // SwapClear retires the seeded input deltas too.
  std::vector<IROp*> loops;
  Collect(irp.update_root.get(), OpKind::kDoWhile, &loops);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0]->relations,
            std::vector<datalog::PredicateId>{path.id()});
  std::vector<IROp*> swaps;
  Collect(irp.update_root.get(), OpKind::kSwapClear, &swaps);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0]->relations,
            (std::vector<datalog::PredicateId>{edge.id(), path.id()}));
}

TEST(LoweringTest, UpdateTreeOmitsAggregateRules) {
  Program p;
  Dsl dsl(&p);
  auto link = dsl.Relation("Link", 2);
  auto deg = dsl.Relation("Deg", 2);
  auto [x, y, c] = dsl.Vars<3>();
  dsl.AggRule(deg(x, c), datalog::BodyExpr({link(x, y).atom()}),
              datalog::AggFunc::kCount);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  // The full tree has the AggregateOp; the update tree must not — a
  // delta variant of an aggregate would be unsound, so epochs touching
  // its inputs recompute via the full subtree instead.
  std::vector<IROp*> full_aggs, update_aggs, update_spjs;
  Collect(irp.root.get(), OpKind::kAggregate, &full_aggs);
  Collect(irp.update_root.get(), OpKind::kAggregate, &update_aggs);
  Collect(irp.update_root.get(), OpKind::kSpj, &update_spjs);
  EXPECT_EQ(full_aggs.size(), 1u);
  EXPECT_TRUE(update_aggs.empty());
  EXPECT_TRUE(update_spjs.empty());
}

TEST(LoweringTest, UpdateTreeNodeIdsIndexed) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  // Node ids are unique ACROSS the two trees and by_id covers both (the
  // JIT compile cache keys on node_id, so a collision would hand one
  // tree's compiled unit to the other).
  std::vector<bool> seen(irp.num_nodes, false);
  std::function<void(IROp*)> visit = [&](IROp* op) {
    ASSERT_LT(op->node_id, irp.num_nodes);
    EXPECT_FALSE(seen[op->node_id]);
    seen[op->node_id] = true;
    EXPECT_EQ(irp.by_id[op->node_id], op);
    for (auto& c : op->children) visit(c.get());
  };
  visit(irp.root.get());
  visit(irp.update_root.get());
}

TEST(LoweringTest, LocalVariableRemapIsDense) {
  Program p;
  Dsl dsl(&p);
  auto a = dsl.Relation("A", 2);
  auto b = dsl.Relation("B", 2);
  auto r = dsl.Relation("R", 2);
  // Use up some variable ids first so program ids aren't dense in rules.
  dsl.Var("unused1");
  dsl.Var("unused2");
  auto [x, y, z] = dsl.Vars<3>();
  r(x, z) <<= a(x, y) & b(y, z);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  std::vector<IROp*> spjs;
  Collect(irp.root.get(), OpKind::kSpj, &spjs);
  ASSERT_FALSE(spjs.empty());
  for (IROp* spj : spjs) {
    EXPECT_EQ(spj->num_locals, 3);
    for (const AtomSpec& atom : spj->atoms) {
      for (const LocalTerm& t : atom.terms) {
        if (t.is_var) {
          EXPECT_GE(t.var, 0);
          EXPECT_LT(t.var, spj->num_locals);
        }
      }
    }
  }
}

TEST(LoweringTest, IndexesDeclaredOnJoinAndFilterColumns) {
  Program p;
  Dsl dsl(&p);
  auto a = dsl.Relation("A", 2);
  auto b = dsl.Relation("B", 2);
  auto r = dsl.Relation("R", 2);
  auto [x, y, z] = dsl.Vars<3>();
  r(x, z) <<= a(x, y) & b(y, z);  // Join key: y = A.$1 = B.$0.
  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  EXPECT_TRUE(p.db().Get(a.id(), storage::DbKind::kDerived).HasIndex(1));
  EXPECT_TRUE(p.db().Get(b.id(), storage::DbKind::kDerived).HasIndex(0));
  // Non-join columns get no index.
  EXPECT_FALSE(p.db().Get(a.id(), storage::DbKind::kDerived).HasIndex(0));
}

TEST(LoweringTest, ConstantColumnsGetIndexes) {
  Program p;
  Dsl dsl(&p);
  auto a = dsl.Relation("A", 2);
  auto r = dsl.Relation("R", 1);
  auto x = dsl.Var("x");
  r(x) <<= a(7, x);
  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  EXPECT_TRUE(p.db().Get(a.id(), storage::DbKind::kDerived).HasIndex(0));
}

TEST(LoweringTest, ScheduleAtomsPlacesFloatersAfterBinders) {
  // joins: A(l0, l1); floaters: l2 = l1 + 1 then l2 < 5.
  AtomSpec join;
  join.predicate = 0;
  join.terms = {LocalTerm::Var(0), LocalTerm::Var(1)};

  AtomSpec add;
  add.builtin = datalog::BuiltinOp::kAdd;
  add.terms = {LocalTerm::Var(1), LocalTerm::Const(1), LocalTerm::Var(2)};

  AtomSpec cmp;
  cmp.builtin = datalog::BuiltinOp::kLt;
  cmp.terms = {LocalTerm::Var(2), LocalTerm::Const(5)};

  // The comparison depends on the Add output: it must come last even when
  // listed first.
  const auto scheduled = ScheduleAtoms({join}, {cmp, add});
  ASSERT_EQ(scheduled.size(), 3u);
  EXPECT_TRUE(scheduled[0].is_relational());
  EXPECT_EQ(scheduled[1].builtin, datalog::BuiltinOp::kAdd);
  EXPECT_EQ(scheduled[2].builtin, datalog::BuiltinOp::kLt);
}

TEST(LoweringTest, NodeIdsAreUniqueAndIndexed) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  std::vector<bool> seen(irp.num_nodes, false);
  std::function<void(IROp*)> visit = [&](IROp* op) {
    ASSERT_LT(op->node_id, irp.num_nodes);
    EXPECT_FALSE(seen[op->node_id]);
    seen[op->node_id] = true;
    EXPECT_EQ(irp.by_id[op->node_id], op);
    for (auto& c : op->children) visit(c.get());
  };
  visit(irp.root.get());
}

TEST(LoweringTest, CloneSharesNodeIdsDeepCopies) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, z) <<= path(x, y) & edge(y, z);
  path(x, y) <<= edge(x, y);

  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  auto clone = irp.root->Clone();
  EXPECT_EQ(clone->node_id, irp.root->node_id);
  ASSERT_EQ(clone->children.size(), irp.root->children.size());
  EXPECT_NE(clone->children[0].get(), irp.root->children[0].get());
}

TEST(LoweringTest, ToStringMentionsOperators) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  IRProgram irp;
  ASSERT_TRUE(LowerProgram(&p, true, &irp).ok());
  const std::string rendered = irp.ToString(p);
  EXPECT_NE(rendered.find("ProgramOp"), std::string::npos);
  EXPECT_NE(rendered.find("DoWhileOp"), std::string::npos);
  EXPECT_NE(rendered.find("SwapClearOp"), std::string::npos);
  EXPECT_NE(rendered.find("SPJOp"), std::string::npos);
}

}  // namespace
}  // namespace carac::ir
