#include <gtest/gtest.h>

#include "core/compile_manager.h"
#include "core/engine.h"
#include "core/jit.h"
#include "datalog/dsl.h"
#include "ir/lowering.h"

namespace carac::core {
namespace {

using datalog::Dsl;
using datalog::Program;

datalog::PredicateId BuildTc(Dsl* dsl, int chain) {
  auto edge = dsl->Relation("Edge", 2);
  auto path = dsl->Relation("Path", 2);
  auto x = dsl->Var();
  auto y = dsl->Var();
  auto z = dsl->Var();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  for (int i = 0; i < chain; ++i) edge.Fact(i, i + 1);
  return path.id();
}

size_t Closure(int chain) {
  return static_cast<size_t>(chain) * (chain + 1) / 2;
}

EngineConfig JitConfigFor(backends::BackendKind backend, Granularity g,
                          bool async = false,
                          backends::CompileMode mode =
                              backends::CompileMode::kFull) {
  EngineConfig config;
  config.mode = EvalMode::kJit;
  config.jit.backend = backend;
  config.jit.granularity = g;
  config.jit.async = async;
  config.jit.mode = mode;
  return config;
}

TEST(JitTest, LambdaBlockingEveryGranularity) {
  for (Granularity g :
       {Granularity::kProgram, Granularity::kDoWhile, Granularity::kUnionAll,
        Granularity::kUnion, Granularity::kSpj}) {
    Program p;
    Dsl dsl(&p);
    auto path = BuildTc(&dsl, 12);
    Engine engine(&p, JitConfigFor(backends::BackendKind::kLambda, g));
    ASSERT_TRUE(engine.Prepare().ok());
    ASSERT_TRUE(engine.Run().ok()) << GranularityName(g);
    EXPECT_EQ(engine.ResultSize(path), Closure(12)) << GranularityName(g);
    EXPECT_GT(engine.stats().compilations, 0u) << GranularityName(g);
    EXPECT_GT(engine.stats().compiled_invocations, 0u) << GranularityName(g);
  }
}

TEST(JitTest, BytecodeBlockingEveryGranularity) {
  for (Granularity g :
       {Granularity::kProgram, Granularity::kDoWhile, Granularity::kUnionAll,
        Granularity::kUnion, Granularity::kSpj}) {
    Program p;
    Dsl dsl(&p);
    auto path = BuildTc(&dsl, 12);
    Engine engine(&p, JitConfigFor(backends::BackendKind::kBytecode, g));
    ASSERT_TRUE(engine.Prepare().ok());
    ASSERT_TRUE(engine.Run().ok()) << GranularityName(g);
    EXPECT_EQ(engine.ResultSize(path), Closure(12)) << GranularityName(g);
  }
}

TEST(JitTest, IRGeneratorMatchesInterpreter) {
  Program p;
  Dsl dsl(&p);
  auto path = BuildTc(&dsl, 15);
  Engine engine(&p, JitConfigFor(backends::BackendKind::kIRGenerator,
                                 Granularity::kUnionAll));
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(path), Closure(15));
}

TEST(JitTest, AsyncLambdaProducesSameResults) {
  Program p;
  Dsl dsl(&p);
  auto path = BuildTc(&dsl, 30);
  Engine engine(&p, JitConfigFor(backends::BackendKind::kLambda,
                                 Granularity::kUnion, /*async=*/true));
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(path), Closure(30));
}

TEST(JitTest, AsyncBytecodeProducesSameResults) {
  Program p;
  Dsl dsl(&p);
  auto path = BuildTc(&dsl, 30);
  Engine engine(&p, JitConfigFor(backends::BackendKind::kBytecode,
                                 Granularity::kUnionAll, /*async=*/true));
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(path), Closure(30));
}

TEST(JitTest, SnippetModeProducesSameResults) {
  Program p;
  Dsl dsl(&p);
  auto path = BuildTc(&dsl, 20);
  Engine engine(&p, JitConfigFor(backends::BackendKind::kLambda,
                                 Granularity::kUnionAll, /*async=*/false,
                                 backends::CompileMode::kSnippet));
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(path), Closure(20));
}

TEST(JitTest, FreshnessSkipsRecompilation) {
  Program p;
  Dsl dsl(&p);
  BuildTc(&dsl, 40);
  EngineConfig config =
      JitConfigFor(backends::BackendKind::kLambda, Granularity::kUnion);
  config.jit.freshness_threshold = 1.0;  // Everything is always fresh.
  Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_GT(engine.stats().freshness_skips, 0u);
  // With a 1.0 threshold each node compiles exactly once.
  EXPECT_LE(engine.stats().compilations, 3u);
}

TEST(JitTest, ZeroThresholdRecompilesOnEveryShift) {
  Program p;
  Dsl dsl(&p);
  auto path = BuildTc(&dsl, 40);
  EngineConfig config =
      JitConfigFor(backends::BackendKind::kLambda, Granularity::kUnion);
  config.jit.freshness_threshold = 0.0;
  Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  // Deltas change every iteration, so recompilations pile up.
  EXPECT_GT(engine.stats().compilations, 3u);
  EXPECT_EQ(engine.ResultSize(path), Closure(40));
}

TEST(CompileManagerTest, SyncCompileStoresUnit) {
  auto backend = backends::MakeBackend(backends::BackendKind::kLambda);
  CompileManager manager(backend.get());

  Program p;
  Dsl dsl(&p);
  BuildTc(&dsl, 5);
  ir::IRProgram irp;
  ASSERT_TRUE(ir::LowerProgram(&p, true, &irp).ok());

  backends::CompileRequest request;
  request.subtree = irp.root->Clone();
  request.stats = optimizer::StatsSnapshot::Capture(p.db());
  ASSERT_TRUE(manager.CompileSync(1, std::move(request)).ok());
  EXPECT_NE(manager.GetReady(1), nullptr);
  EXPECT_EQ(manager.GetReady(2), nullptr);
  manager.Invalidate(1);
  EXPECT_EQ(manager.GetReady(1), nullptr);
}

TEST(CompileManagerTest, AsyncCompileCompletes) {
  auto backend = backends::MakeBackend(backends::BackendKind::kLambda);
  CompileManager manager(backend.get());

  Program p;
  Dsl dsl(&p);
  BuildTc(&dsl, 5);
  ir::IRProgram irp;
  ASSERT_TRUE(ir::LowerProgram(&p, true, &irp).ok());

  backends::CompileRequest request;
  request.subtree = irp.root->Clone();
  request.stats = optimizer::StatsSnapshot::Capture(p.db());
  manager.CompileAsync(7, std::move(request));
  manager.WaitIdle();
  EXPECT_NE(manager.GetReady(7), nullptr);
  EXPECT_FALSE(manager.IsPending(7));
  EXPECT_TRUE(manager.first_error().ok());
  EXPECT_EQ(manager.compiles_completed(), 1u);
}

TEST(JitTest, DeoptimizeRevertsToInterpretation) {
  Program p;
  Dsl dsl(&p);
  auto path = BuildTc(&dsl, 10);
  EngineConfig config =
      JitConfigFor(backends::BackendKind::kLambda, Granularity::kProgram);
  Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_NE(engine.jit(), nullptr);
  const uint32_t root_id = engine.ir().root->node_id;
  EXPECT_NE(engine.jit()->manager().GetReady(root_id), nullptr);
  engine.jit()->Deoptimize(root_id);
  EXPECT_EQ(engine.jit()->manager().GetReady(root_id), nullptr);
  EXPECT_EQ(engine.ResultSize(path), Closure(10));
}

TEST(JitTest, GranularityNames) {
  EXPECT_STREQ(GranularityName(Granularity::kProgram), "program");
  EXPECT_STREQ(GranularityName(Granularity::kSpj), "spj");
}

}  // namespace
}  // namespace carac::core
