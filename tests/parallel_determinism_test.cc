// Parallel-evaluation determinism: the rendered SortedRows of the tc and
// Andersen workloads at 2/4/8 threads must be byte-identical to the
// committed goldens under tests/goldens/ — the same snapshots the storage
// golden test pins — for both relational engines, with the parallel path
// both at its default dispatch threshold and forced onto every subquery.
// The goldens predate the worker pool, so passing here proves that
// num_threads changes nothing observable, only wall-clock.

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "core/engine.h"
#include "harness/runner.h"

#ifndef CARAC_GOLDEN_DIR
#error "CARAC_GOLDEN_DIR must point at tests/goldens"
#endif

namespace carac {
namespace {

using WorkloadFn = std::function<analysis::Workload()>;

analysis::Workload MakeTcWorkload() {
  const auto edges = analysis::GenerateSparseGraph(
      /*seed=*/11, /*num_vertices=*/300, /*num_edges=*/900, /*zipf_s=*/1.1);
  return analysis::MakeTransitiveClosure(edges,
                                         analysis::RuleOrder::kHandOptimized);
}

analysis::Workload MakeAndersenWorkload() {
  analysis::SListConfig config;
  config.scale = 2;
  return analysis::MakeAndersen(config, analysis::RuleOrder::kHandOptimized);
}

/// One line per tuple, tab-separated raw values, trailing newline —
/// the same rendering storage_golden_test committed the goldens with.
std::string Render(const std::vector<storage::Tuple>& rows) {
  std::ostringstream out;
  for (const storage::Tuple& t : rows) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << '\t';
      out << t[i];
    }
    out << '\n';
  }
  return out.str();
}

std::string ReadGolden(const std::string& name) {
  const std::string path =
      std::string(CARAC_GOLDEN_DIR) + "/" + name + ".golden";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  std::stringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string RunThreads(const WorkloadFn& make, int num_threads,
                       ir::EngineStyle style, uint32_t min_outer_rows) {
  analysis::Workload w = make();
  core::EngineConfig config = harness::InterpretedConfig(true);
  config.num_threads = num_threads;
  config.engine_style = style;
  config.parallel_min_outer_rows = min_outer_rows;
  core::Engine engine(w.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  return Render(engine.Results(w.output));
}

void CheckThreadCounts(const std::string& golden_name,
                       const WorkloadFn& make) {
  const std::string golden = ReadGolden(golden_name);
  ASSERT_FALSE(golden.empty()) << golden_name;
  for (ir::EngineStyle style :
       {ir::EngineStyle::kPush, ir::EngineStyle::kPull}) {
    // num_threads=1 must be bit-identical to pre-parallel behaviour.
    EXPECT_EQ(RunThreads(make, 1, style, 128), golden)
        << golden_name << " 1 thread " << ir::EngineStyleName(style);
    for (int threads : {2, 4, 8}) {
      for (uint32_t min_rows : {128u, 1u}) {
        EXPECT_EQ(RunThreads(make, threads, style, min_rows), golden)
            << golden_name << " " << threads << " threads "
            << ir::EngineStyleName(style) << " min_rows=" << min_rows;
      }
    }
  }
}

TEST(ParallelDeterminismTest, TransitiveClosure) {
  CheckThreadCounts("tc", MakeTcWorkload);
}

TEST(ParallelDeterminismTest, Andersen) {
  CheckThreadCounts("andersen", MakeAndersenWorkload);
}

// Beyond SortedRows: with staged merges the *insertion order* (and hence
// every RowId) must also match single-threaded evaluation. ExecStats are a
// cheap proxy with real teeth — tuples_considered/inserted and the
// iteration count would all drift if sharding reordered or lost work.
TEST(ParallelDeterminismTest, StatsMatchSingleThreaded) {
  for (ir::EngineStyle style :
       {ir::EngineStyle::kPush, ir::EngineStyle::kPull}) {
    analysis::Workload reference_workload = MakeTcWorkload();
    core::EngineConfig config = harness::InterpretedConfig(true);
    config.engine_style = style;
    core::Engine reference(reference_workload.program.get(), config);
    CARAC_CHECK_OK(reference.Prepare());
    CARAC_CHECK_OK(reference.Run());

    for (int threads : {2, 8}) {
      analysis::Workload w = MakeTcWorkload();
      core::EngineConfig parallel = config;
      parallel.num_threads = threads;
      parallel.parallel_min_outer_rows = 1;
      core::Engine engine(w.program.get(), parallel);
      CARAC_CHECK_OK(engine.Prepare());
      CARAC_CHECK_OK(engine.Run());
      EXPECT_EQ(engine.stats().ToString(), reference.stats().ToString())
          << threads << " threads " << ir::EngineStyleName(style);
    }
  }
}

}  // namespace
}  // namespace carac
