#include <gtest/gtest.h>

#include "core/engine.h"
#include "datalog/dsl.h"

namespace carac {
namespace {

using datalog::Dsl;
using datalog::Program;
using storage::Tuple;

core::EngineConfig Interp(bool indexes = true) {
  core::EngineConfig config;
  config.mode = core::EvalMode::kInterpreted;
  config.use_indexes = indexes;
  return config;
}

TEST(InterpreterTest, TransitiveClosureChain) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  for (int i = 0; i < 10; ++i) edge.Fact(i, i + 1);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  // Chain of 11 nodes: 10+9+...+1 = 55 paths.
  EXPECT_EQ(engine.ResultSize(path.id()), 55u);
  EXPECT_TRUE(p.db().Get(path.id(), storage::DbKind::kDerived)
                  .Contains({0, 10}));
}

TEST(InterpreterTest, CycleTerminates) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  edge.Fact(1, 2);
  edge.Fact(2, 3);
  edge.Fact(3, 1);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(path.id()), 9u);  // Full 3x3 closure.
}

TEST(InterpreterTest, UnindexedMatchesIndexed) {
  auto build = [](Program* p) {
    Dsl dsl(p);
    auto edge = dsl.Relation("Edge", 2);
    auto path = dsl.Relation("Path", 2);
    auto [x, y, z] = dsl.Vars<3>();
    path(x, y) <<= edge(x, y);
    path(x, z) <<= path(x, y) & edge(y, z);
    edge.Fact(1, 2);
    edge.Fact(2, 3);
    edge.Fact(2, 4);
    edge.Fact(4, 1);
    return path.id();
  };
  Program a, b;
  auto pa = build(&a);
  auto pb = build(&b);
  core::Engine ea(&a, Interp(true)), eb(&b, Interp(false));
  ASSERT_TRUE(ea.Prepare().ok() && ea.Run().ok());
  ASSERT_TRUE(eb.Prepare().ok() && eb.Run().ok());
  EXPECT_EQ(ea.Results(pa), eb.Results(pb));
}

TEST(InterpreterTest, ConstantsFilter) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto from7 = dsl.Relation("From7", 1);
  auto x = dsl.Var("x");
  from7(x) <<= edge(7, x);
  edge.Fact(7, 1);
  edge.Fact(7, 2);
  edge.Fact(8, 3);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(from7.id()), 2u);
}

TEST(InterpreterTest, RepeatedVariableSelfEquality) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto loops = dsl.Relation("Loops", 1);
  auto x = dsl.Var("x");
  loops(x) <<= edge(x, x);
  edge.Fact(1, 1);
  edge.Fact(1, 2);
  edge.Fact(3, 3);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto rows = engine.Results(loops.id());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{1}));
  EXPECT_EQ(rows[1], (Tuple{3}));
}

TEST(InterpreterTest, NegationStratified) {
  Program p;
  Dsl dsl(&p);
  auto node = dsl.Relation("Node", 1);
  auto edge = dsl.Relation("Edge", 2);
  auto has_out = dsl.Relation("HasOut", 1);
  auto sink = dsl.Relation("Sink", 1);
  auto [x, y] = dsl.Vars<2>();
  has_out(x) <<= edge(x, y);
  sink(x) <<= node(x) & !has_out(x);
  for (int i = 1; i <= 5; ++i) node.Fact(i);
  edge.Fact(1, 2);
  edge.Fact(2, 3);
  edge.Fact(4, 1);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto rows = engine.Results(sink.id());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{3}));
  EXPECT_EQ(rows[1], (Tuple{5}));
}

TEST(InterpreterTest, ArithmeticBindsFreshVariables) {
  Program p;
  Dsl dsl(&p);
  auto n = dsl.Relation("N", 1);
  auto doubled = dsl.Relation("Doubled", 2);
  auto [x, d] = dsl.Vars<2>();
  doubled(x, d) <<= n(x) & dsl.Mul(x, 2, d);
  n.Fact(1);
  n.Fact(5);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto rows = engine.Results(doubled.id());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{1, 2}));
  EXPECT_EQ(rows[1], (Tuple{5, 10}));
}

TEST(InterpreterTest, ComparisonFilters) {
  Program p;
  Dsl dsl(&p);
  auto n = dsl.Relation("N", 1);
  auto small = dsl.Relation("Small", 1);
  auto x = dsl.Var("x");
  small(x) <<= n(x) & dsl.Le(x, 3);
  for (int i = 1; i <= 6; ++i) n.Fact(i);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(small.id()), 3u);
}

TEST(InterpreterTest, DivisionByZeroDropsRow) {
  Program p;
  Dsl dsl(&p);
  auto pairs = dsl.Relation("Pairs", 2);
  auto quot = dsl.Relation("Quot", 3);
  auto [a, b, q] = dsl.Vars<3>();
  quot(a, b, q) <<= pairs(a, b) & dsl.Div(a, b, q);
  pairs.Fact(6, 2);
  pairs.Fact(6, 0);  // Dropped silently.

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto rows = engine.Results(quot.id());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{6, 2, 3}));
}

TEST(InterpreterTest, CountAggregate) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto degree = dsl.Relation("Degree", 2);
  auto [x, y] = dsl.Vars<2>();
  auto c = dsl.Var("c");
  dsl.AggRule(degree(x, c), datalog::BodyExpr({edge(x, y).atom()}),
              datalog::AggFunc::kCount);
  edge.Fact(1, 10);
  edge.Fact(1, 11);
  edge.Fact(1, 12);
  edge.Fact(2, 10);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto rows = engine.Results(degree.id());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{1, 3}));
  EXPECT_EQ(rows[1], (Tuple{2, 1}));
}

TEST(InterpreterTest, SumMinMaxAggregates) {
  Program p;
  Dsl dsl(&p);
  auto sale = dsl.Relation("Sale", 2);  // (store, amount)
  auto total = dsl.Relation("Total", 2);
  auto lo = dsl.Relation("Lo", 2);
  auto hi = dsl.Relation("Hi", 2);
  auto [s, a] = dsl.Vars<2>();
  auto out1 = dsl.Var("o1");
  auto out2 = dsl.Var("o2");
  auto out3 = dsl.Var("o3");
  dsl.AggRule(total(s, out1), datalog::BodyExpr({sale(s, a).atom()}),
              datalog::AggFunc::kSum, a);
  dsl.AggRule(lo(s, out2), datalog::BodyExpr({sale(s, a).atom()}),
              datalog::AggFunc::kMin, a);
  dsl.AggRule(hi(s, out3), datalog::BodyExpr({sale(s, a).atom()}),
              datalog::AggFunc::kMax, a);
  sale.Fact(1, 10);
  sale.Fact(1, 30);
  sale.Fact(2, 7);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.Results(total.id())[0], (Tuple{1, 40}));
  EXPECT_EQ(engine.Results(lo.id())[0], (Tuple{1, 10}));
  EXPECT_EQ(engine.Results(hi.id())[0], (Tuple{1, 30}));
  EXPECT_EQ(engine.Results(total.id())[1], (Tuple{2, 7}));
}

TEST(InterpreterTest, MutualRecursionEvenOdd) {
  Program p;
  Dsl dsl(&p);
  auto succ = dsl.Relation("Succ", 2);
  auto even = dsl.Relation("Even", 1);
  auto odd = dsl.Relation("Odd", 1);
  auto [x, y] = dsl.Vars<2>();
  odd(y) <<= even(x) & succ(x, y);
  even(y) <<= odd(x) & succ(x, y);
  even.Fact(0);
  for (int i = 0; i < 10; ++i) succ.Fact(i, i + 1);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(even.id()), 6u);  // 0,2,4,6,8,10
  EXPECT_EQ(engine.ResultSize(odd.id()), 5u);   // 1,3,5,7,9
}

TEST(InterpreterTest, IdbFactsSeedEvaluation) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & path(y, z);
  path.Fact(100, 200);  // IDB fact, no Edge counterpart.
  edge.Fact(200, 300);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(p.db().Get(path.id(), storage::DbKind::kDerived)
                  .Contains({100, 300}));
}

TEST(InterpreterTest, StatsArepopulated) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  for (int i = 0; i < 5; ++i) edge.Fact(i, i + 1);

  core::Engine engine(&p, Interp());
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_GT(engine.stats().iterations, 1u);
  EXPECT_GT(engine.stats().spj_executions, 0u);
  EXPECT_EQ(engine.stats().tuples_inserted, 15u);
  EXPECT_EQ(engine.stats().compilations, 0u);  // Pure interpretation.
}

TEST(InterpreterTest, EngineRequiresPrepare) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y] = dsl.Vars<2>();
  path(x, y) <<= edge(x, y);
  core::Engine engine(&p, Interp());
  EXPECT_FALSE(engine.Run().ok());
}

}  // namespace
}  // namespace carac
