// Differential fuzzing: random (safe, stratified) Datalog programs are
// evaluated under every execution configuration, and all models must be
// identical. This is the strongest correctness net in the suite — any
// divergence between the interpreter, the compiled backends, the pull
// engine or the index settings shows up as a model mismatch.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datalog/dsl.h"
#include "util/rng.h"

namespace carac {
namespace {

using datalog::Program;

constexpr int kNumEdb = 2;
constexpr int kNumIdb = 3;
constexpr int64_t kDomain = 12;

/// Builds a random program: EDB facts over a small domain, then random
/// rules whose heads project onto body variables (range restriction by
/// construction) with occasional comparisons, safe EDB negation and an
/// occasional aggregate head. Negation targets only EDB relations and
/// aggregates only read (never feed) the recursive IDB core, so the
/// program is stratified by construction.
///
/// When `insert_facts` is false, the facts are only recorded in `facts`
/// (in generation order) instead of being inserted — the
/// incremental-vs-batch oracle replays them in random batches through
/// Engine::AddFacts + Update().
struct RandomProgram {
  std::unique_ptr<Program> program;
  std::vector<datalog::PredicateId> idb;
  std::vector<std::pair<datalog::PredicateId, storage::Tuple>> facts;

  explicit RandomProgram(uint64_t seed, bool insert_facts = true) {
    util::Rng rng(seed);
    program = std::make_unique<Program>();
    datalog::Dsl dsl(program.get());

    std::vector<datalog::RelationRef> edb;
    std::vector<datalog::RelationRef> all;
    for (int i = 0; i < kNumEdb; ++i) {
      edb.push_back(dsl.Relation("E" + std::to_string(i), 2));
      all.push_back(edb.back());
    }
    std::vector<datalog::RelationRef> idb_refs;
    for (int i = 0; i < kNumIdb; ++i) {
      idb_refs.push_back(dsl.Relation("I" + std::to_string(i), 2));
      all.push_back(idb_refs.back());
      idb.push_back(idb_refs.back().id());
    }

    // Facts.
    for (const auto& rel : edb) {
      const int num_facts = 10 + static_cast<int>(rng.NextBounded(15));
      for (int f = 0; f < num_facts; ++f) {
        storage::Tuple fact = {
            static_cast<int64_t>(rng.NextBounded(kDomain)),
            static_cast<int64_t>(rng.NextBounded(kDomain))};
        if (insert_facts) program->AddFact(rel.id(), fact);
        facts.emplace_back(rel.id(), std::move(fact));
      }
    }

    // Variables shared by all rules.
    std::vector<datalog::VarRef> vars;
    for (int v = 0; v < 4; ++v) vars.push_back(dsl.Var());

    // Rules. Every IDB relation gets 1-3 rules.
    for (const auto& head_rel : idb_refs) {
      const int num_rules = 1 + static_cast<int>(rng.NextBounded(3));
      for (int r = 0; r < num_rules; ++r) {
        datalog::Rule rule;

        // Body: 1-3 positive atoms over random relations and variables.
        const int body_atoms = 1 + static_cast<int>(rng.NextBounded(3));
        std::set<datalog::VarId> bound;
        for (int a = 0; a < body_atoms; ++a) {
          const auto& rel = all[rng.NextBounded(all.size())];
          datalog::Atom atom;
          atom.predicate = rel.id();
          for (int t = 0; t < 2; ++t) {
            if (rng.NextBool(0.15)) {
              atom.terms.push_back(datalog::Term::MakeConst(
                  static_cast<int64_t>(rng.NextBounded(kDomain))));
            } else {
              const auto var = vars[rng.NextBounded(vars.size())];
              atom.terms.push_back(datalog::Term::MakeVar(var.id));
              bound.insert(var.id);
            }
          }
          rule.body.push_back(std::move(atom));
        }
        std::vector<datalog::VarId> bound_list(bound.begin(), bound.end());

        // Comparison builtins: 0-2 per rule, each constraining a bound
        // variable against a constant or another bound variable, in
        // either direction (both `x < c` and `c < x` spellings).
        // Random constants make redundant and contradictory pairs
        // (x < 2, x > 9) common — exactly the interval-closing and
        // empty-range corners range pushdown must absorb while staying
        // model-identical to the filtered scan.
        if (!bound_list.empty()) {
          const int num_cmps = static_cast<int>(rng.NextBounded(3));
          static const datalog::BuiltinOp kCmps[] = {
              datalog::BuiltinOp::kLt, datalog::BuiltinOp::kLe,
              datalog::BuiltinOp::kGt, datalog::BuiltinOp::kGe,
              datalog::BuiltinOp::kEq, datalog::BuiltinOp::kNe};
          for (int c = 0; c < num_cmps; ++c) {
            datalog::Atom cmp;
            cmp.builtin = kCmps[rng.NextBounded(6)];
            const datalog::Term var_side = datalog::Term::MakeVar(
                bound_list[rng.NextBounded(bound_list.size())]);
            const datalog::Term other =
                rng.NextBool(0.5)
                    ? datalog::Term::MakeConst(
                          static_cast<int64_t>(rng.NextBounded(kDomain)))
                    : datalog::Term::MakeVar(
                          bound_list[rng.NextBounded(bound_list.size())]);
            const bool var_left = rng.NextBool(0.5);
            cmp.terms.push_back(var_left ? var_side : other);
            cmp.terms.push_back(var_left ? other : var_side);
            rule.body.push_back(std::move(cmp));
          }
        }

        // Optional negated EDB atom over bound variables (stratified and
        // safe by construction).
        if (!bound_list.empty() && rng.NextBool(0.25)) {
          datalog::Atom neg;
          neg.predicate = edb[rng.NextBounded(edb.size())].id();
          neg.negated = true;
          for (int t = 0; t < 2; ++t) {
            neg.terms.push_back(datalog::Term::MakeVar(
                bound_list[rng.NextBounded(bound_list.size())]));
          }
          rule.body.push_back(std::move(neg));
        }

        // Head: two terms drawn from bound variables (or constants when
        // the body bound nothing).
        rule.head.predicate = head_rel.id();
        for (int t = 0; t < 2; ++t) {
          if (bound_list.empty()) {
            rule.head.terms.push_back(datalog::Term::MakeConst(
                static_cast<int64_t>(rng.NextBounded(kDomain))));
          } else {
            rule.head.terms.push_back(datalog::Term::MakeVar(
                bound_list[rng.NextBounded(bound_list.size())]));
          }
        }
        CARAC_CHECK_OK(program->AddRule(std::move(rule)));
      }
    }

    // Occasional aggregate head over a random relation: A(g, out) with
    // out = FUNC over the second column, grouped by the first. Aggregate
    // rules are non-recursive by validation, and nothing reads A, so
    // stratification holds; what this adds to the net is the aggregate
    // execution path (and, for the incremental oracle, the stratum
    // recompute fallback — growing any aggregate input retracts the old
    // group values).
    if (rng.NextBool(0.5)) {
      auto agg_rel = dsl.Relation("A0", 2);
      idb.push_back(agg_rel.id());
      const auto& source = all[rng.NextBounded(all.size())];
      static const datalog::AggFunc kFuncs[] = {
          datalog::AggFunc::kCount, datalog::AggFunc::kSum,
          datalog::AggFunc::kMin, datalog::AggFunc::kMax};
      const datalog::AggFunc func = kFuncs[rng.NextBounded(4)];
      datalog::Rule rule;
      const datalog::VarId g = program->NewVar("g");
      const datalog::VarId v = program->NewVar("v");
      const datalog::VarId out = program->NewVar("out");
      rule.head.predicate = agg_rel.id();
      rule.head.terms = {datalog::Term::MakeVar(g),
                         datalog::Term::MakeVar(out)};
      datalog::Atom body;
      body.predicate = source.id();
      body.terms = {datalog::Term::MakeVar(g), datalog::Term::MakeVar(v)};
      rule.body.push_back(std::move(body));
      rule.agg = func;
      rule.agg_operand = func == datalog::AggFunc::kCount ? -1 : v;
      CARAC_CHECK_OK(program->AddRule(std::move(rule)));
    }
  }
};

using Model = std::vector<std::vector<storage::Tuple>>;

Model Evaluate(uint64_t seed, const core::EngineConfig& config) {
  RandomProgram rp(seed);
  core::Engine engine(rp.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  Model model;
  for (datalog::PredicateId id : rp.idb) model.push_back(engine.Results(id));
  return model;
}

/// Incremental-vs-batch: replay the same program with its facts split
/// into `num_batches` random batches — the first loaded before the
/// initial Run(), the rest applied through AddFacts() + Update() epochs.
/// The final model must be byte-identical to one-shot evaluation over
/// the union of the facts (the `Evaluate` reference).
Model EvaluateIncremental(uint64_t seed, const core::EngineConfig& config,
                          int num_batches) {
  RandomProgram rp(seed, /*insert_facts=*/false);
  util::Rng batch_rng(seed * 7919 + 13);
  std::vector<std::vector<std::pair<datalog::PredicateId, storage::Tuple>>>
      batches(num_batches);
  for (const auto& fact : rp.facts) {
    batches[batch_rng.NextBounded(static_cast<uint64_t>(num_batches))]
        .push_back(fact);
  }

  for (const auto& [pred, tuple] : batches[0]) {
    rp.program->AddFact(pred, tuple);
  }
  core::Engine engine(rp.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  for (int b = 1; b < num_batches; ++b) {
    for (const auto& [pred, tuple] : batches[b]) {
      CARAC_CHECK_OK(engine.AddFacts(pred, {tuple}));
    }
    CARAC_CHECK_OK(engine.Update());
  }
  Model model;
  for (datalog::PredicateId id : rp.idb) model.push_back(engine.Results(id));
  return model;
}

/// Persistence arm: the same random program evaluated with a
/// save-and-reopen in the middle. The first `num_batches` batches run in
/// one engine (checkpointing to disk mid-stream, so both the snapshot
/// AND a fact-log tail exist), then a FRESH program + DatabaseSet is
/// recovered via Engine::Restore and the remaining `num_batches` batches
/// continue there. The final model must equal the uninterrupted run's.
Model EvaluatePersisted(uint64_t seed, const core::EngineConfig& base,
                        int num_batches, const std::string& scratch_name) {
  const int total_batches = 2 * num_batches;
  RandomProgram rp(seed, /*insert_facts=*/false);
  util::Rng batch_rng(seed * 7919 + 13);
  std::vector<std::vector<std::pair<datalog::PredicateId, storage::Tuple>>>
      batches(total_batches);
  for (const auto& fact : rp.facts) {
    batches[batch_rng.NextBounded(static_cast<uint64_t>(total_batches))]
        .push_back(fact);
  }

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("carac_fuzz_" + scratch_name + "_" + std::to_string(seed));
  std::filesystem::remove_all(dir);
  core::EngineConfig config = base;
  config.snapshot_dir = dir.string();

  // First life: batch 0 is program-source facts, the rest flow through
  // AddFacts (and hence the log); a checkpoint lands mid-stream.
  {
    for (const auto& [pred, tuple] : batches[0]) {
      rp.program->AddFact(pred, tuple);
    }
    core::Engine engine(rp.program.get(), config);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    // The checkpoint must land strictly BEFORE the last first-life
    // epoch, so recovery always crosses a snapshot AND a committed log
    // tail (with num_batches == 2 that means right after Run()).
    if (num_batches <= 2) CARAC_CHECK_OK(engine.Checkpoint());
    for (int b = 1; b < num_batches; ++b) {
      for (const auto& [pred, tuple] : batches[b]) {
        CARAC_CHECK_OK(engine.AddFacts(pred, {tuple}));
      }
      CARAC_CHECK_OK(engine.Update());
      if (b == num_batches / 2 && b < num_batches - 1) {
        CARAC_CHECK_OK(engine.Checkpoint());
      }
    }
  }

  // Second life: fresh everything, recovered from disk, then the
  // remaining batches as ordinary incremental epochs.
  RandomProgram fresh(seed, /*insert_facts=*/false);
  for (const auto& [pred, tuple] : batches[0]) {
    fresh.program->AddFact(pred, tuple);
  }
  core::Engine engine(fresh.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Restore());
  for (int b = num_batches; b < total_batches; ++b) {
    for (const auto& [pred, tuple] : batches[b]) {
      CARAC_CHECK_OK(engine.AddFacts(pred, {tuple}));
    }
    CARAC_CHECK_OK(engine.Update());
  }
  Model model;
  for (datalog::PredicateId id : fresh.idb) {
    model.push_back(engine.Results(id));
  }
  std::filesystem::remove_all(dir);
  return model;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, AllConfigurationsAgree) {
  const uint64_t seed = GetParam();
  const Model reference =
      Evaluate(seed, core::EngineConfig{});  // Push, indexed, interpreted.

  {
    core::EngineConfig config;
    config.use_indexes = false;
    EXPECT_EQ(Evaluate(seed, config), reference) << "unindexed";
  }
  {
    core::EngineConfig config;
    config.engine_style = ir::EngineStyle::kPull;
    EXPECT_EQ(Evaluate(seed, config), reference) << "pull";
  }
  for (storage::IndexKind kind :
       {storage::IndexKind::kSorted, storage::IndexKind::kBtree,
        storage::IndexKind::kSortedArray, storage::IndexKind::kLearned}) {
    core::EngineConfig config;
    config.index_kind = kind;
    EXPECT_EQ(Evaluate(seed, config), reference)
        << storage::IndexKindName(kind) << " index";
  }
  {
    // Self-tuning: the adaptive policy may re-kind columns between
    // epochs; answers must not move. The evidence gate is dropped so
    // these tiny programs can actually trigger migrations.
    core::EngineConfig config;
    config.adaptive_indexes = true;
    config.adaptive.min_probes = 1;
    config.adaptive.hysteresis_epochs = 1;
    config.adaptive.cooldown_epochs = 0;
    EXPECT_EQ(Evaluate(seed, config), reference) << "adaptive";
  }
  {
    core::EngineConfig config;
    config.aot_reorder = true;
    EXPECT_EQ(Evaluate(seed, config), reference) << "aot";
  }
  {
    // The filter-scan path (pushdown off) is the semantic baseline the
    // range-probe path must reproduce; the reference above ran with
    // pushdown on (the default).
    core::EngineConfig config;
    config.range_pushdown = false;
    EXPECT_EQ(Evaluate(seed, config), reference) << "pushdown off";
  }
  for (storage::IndexKind kind :
       {storage::IndexKind::kBtree, storage::IndexKind::kLearned}) {
    // The bytecode VM's kRangeOpen instruction (and its closed-interval
    // memo) against ordered kinds, both pushdown arms.
    for (bool pushdown : {true, false}) {
      core::EngineConfig config;
      config.mode = core::EvalMode::kJit;
      config.jit.backend = backends::BackendKind::kBytecode;
      config.jit.granularity = core::Granularity::kUnionAll;
      config.index_kind = kind;
      config.range_pushdown = pushdown;
      EXPECT_EQ(Evaluate(seed, config), reference)
          << "bytecode " << storage::IndexKindName(kind) << " pushdown "
          << (pushdown ? "on" : "off");
    }
  }
  for (backends::BackendKind backend :
       {backends::BackendKind::kLambda, backends::BackendKind::kBytecode,
        backends::BackendKind::kIRGenerator}) {
    core::EngineConfig config;
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backend;
    config.jit.granularity = core::Granularity::kUnionAll;
    EXPECT_EQ(Evaluate(seed, config), reference)
        << backends::BackendKindName(backend);
  }
  {
    core::EngineConfig config;
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backends::BackendKind::kBytecode;
    config.jit.async = true;
    EXPECT_EQ(Evaluate(seed, config), reference) << "bytecode async";
  }
  {
    core::EngineConfig config;
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backends::BackendKind::kLambda;
    config.jit.mode = backends::CompileMode::kSnippet;
    EXPECT_EQ(Evaluate(seed, config), reference) << "lambda snippet";
  }
  // Parallel evaluation, crossed with both relational engines and both
  // index organizations. The random programs are tiny, so the dispatch
  // threshold is dropped to 1 — every subquery with a relational outer
  // atom runs through the shard/stage/merge path, which must stay
  // indistinguishable from single-threaded evaluation.
  for (int threads : {1, 2, 4}) {
    for (ir::EngineStyle style :
         {ir::EngineStyle::kPush, ir::EngineStyle::kPull}) {
      for (storage::IndexKind kind :
           {storage::IndexKind::kHash, storage::IndexKind::kBtree,
            storage::IndexKind::kSortedArray, storage::IndexKind::kLearned}) {
        for (bool pushdown : {true, false}) {
          core::EngineConfig config;
          config.num_threads = threads;
          config.parallel_min_outer_rows = 1;
          config.engine_style = style;
          config.index_kind = kind;
          config.range_pushdown = pushdown;
          EXPECT_EQ(Evaluate(seed, config), reference)
              << threads << " threads, " << ir::EngineStyleName(style)
              << " engine, " << storage::IndexKindName(kind)
              << " index, pushdown " << (pushdown ? "on" : "off");
        }
      }
    }
  }
}

// The incremental oracle: random programs — negation and aggregates
// included, so the stratum recompute fallback is exercised alongside
// monotone delta propagation — evaluated in K random fact batches must
// land on the one-shot model, under both relational engines and at every
// thread count (dispatch threshold forced to 1 so the staged-merge path
// runs even on these tiny deltas).
TEST_P(FuzzDifferential, IncrementalMatchesBatch) {
  const uint64_t seed = GetParam();
  const Model reference = Evaluate(seed, core::EngineConfig{});

  for (int num_batches : {2, 4}) {
    for (int threads : {1, 2, 4}) {
      for (ir::EngineStyle style :
           {ir::EngineStyle::kPush, ir::EngineStyle::kPull}) {
        core::EngineConfig config;
        config.num_threads = threads;
        config.parallel_min_outer_rows = 1;
        config.engine_style = style;
        EXPECT_EQ(EvaluateIncremental(seed, config, num_batches), reference)
            << num_batches << " batches, " << threads << " threads, "
            << ir::EngineStyleName(style) << " engine";
      }
    }
  }
  // One JIT configuration: compiled units must stay sound across epochs
  // (recompilation is gated by the freshness test, not epoch count).
  {
    core::EngineConfig config;
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backends::BackendKind::kBytecode;
    config.jit.granularity = core::Granularity::kUnionAll;
    EXPECT_EQ(EvaluateIncremental(seed, config, 3), reference)
        << "bytecode jit incremental";
  }
  // AOT planning reorders the update tree too; the delta atoms are
  // re-fronted afterwards (rules-only planning prices them like any
  // other atom) and results must not move.
  for (bool fact_cards : {true, false}) {
    core::EngineConfig config;
    config.aot_reorder = true;
    config.aot.use_fact_cardinalities = fact_cards;
    EXPECT_EQ(EvaluateIncremental(seed, config, 3), reference)
        << (fact_cards ? "aot facts" : "aot rules-only") << " incremental";
  }
  // Pushdown off across epochs: incremental delta propagation must land
  // on the same model whichever access path serves the comparisons.
  {
    core::EngineConfig config;
    config.range_pushdown = false;
    EXPECT_EQ(EvaluateIncremental(seed, config, 3), reference)
        << "pushdown off incremental";
  }
  // Adaptive re-kinding across incremental epochs: every Update() closes
  // an epoch the policy observes, so migrations interleave with delta
  // propagation. Results must land on the one-shot model regardless.
  {
    core::EngineConfig config;
    config.adaptive_indexes = true;
    config.adaptive.min_probes = 1;
    config.adaptive.hysteresis_epochs = 1;
    config.adaptive.cooldown_epochs = 0;
    EXPECT_EQ(EvaluateIncremental(seed, config, 4), reference)
        << "adaptive incremental";
  }
}

// The persistence oracle: random programs — negation, aggregates and the
// stratum-recompute fallback included — saved to disk after K batches,
// reopened in a completely fresh DatabaseSet, and continued for K more
// batches must land on the uninterrupted one-shot model byte-for-byte.
// The first life checkpoints mid-stream, so recovery crosses BOTH a
// snapshot and a committed fact-log tail.
TEST_P(FuzzDifferential, PersistedReopenMatchesBatch) {
  const uint64_t seed = GetParam();
  const Model reference = Evaluate(seed, core::EngineConfig{});

  for (ir::EngineStyle style :
       {ir::EngineStyle::kPush, ir::EngineStyle::kPull}) {
    core::EngineConfig config;
    config.engine_style = style;
    EXPECT_EQ(EvaluatePersisted(seed, config, 2,
                                ir::EngineStyleName(style)),
              reference)
        << ir::EngineStyleName(style) << " engine, persisted";
  }
  {
    core::EngineConfig config;
    config.num_threads = 4;
    config.parallel_min_outer_rows = 1;
    EXPECT_EQ(EvaluatePersisted(seed, config, 3, "threads4"), reference)
        << "4 threads, persisted";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace carac
