// Differential fuzzing: random (safe, stratified) Datalog programs are
// evaluated under every execution configuration, and all models must be
// identical. This is the strongest correctness net in the suite — any
// divergence between the interpreter, the compiled backends, the pull
// engine or the index settings shows up as a model mismatch.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/engine.h"
#include "datalog/dsl.h"
#include "util/rng.h"

namespace carac {
namespace {

using datalog::Program;

constexpr int kNumEdb = 2;
constexpr int kNumIdb = 3;
constexpr int64_t kDomain = 12;

/// Builds a random program: EDB facts over a small domain, then random
/// rules whose heads project onto body variables (range restriction by
/// construction) with occasional comparisons and safe EDB negation.
/// Negation targets only EDB relations, so the program is stratified by
/// construction.
struct RandomProgram {
  std::unique_ptr<Program> program;
  std::vector<datalog::PredicateId> idb;

  explicit RandomProgram(uint64_t seed) {
    util::Rng rng(seed);
    program = std::make_unique<Program>();
    datalog::Dsl dsl(program.get());

    std::vector<datalog::RelationRef> edb;
    std::vector<datalog::RelationRef> all;
    for (int i = 0; i < kNumEdb; ++i) {
      edb.push_back(dsl.Relation("E" + std::to_string(i), 2));
      all.push_back(edb.back());
    }
    std::vector<datalog::RelationRef> idb_refs;
    for (int i = 0; i < kNumIdb; ++i) {
      idb_refs.push_back(dsl.Relation("I" + std::to_string(i), 2));
      all.push_back(idb_refs.back());
      idb.push_back(idb_refs.back().id());
    }

    // Facts.
    for (const auto& rel : edb) {
      const int facts = 10 + static_cast<int>(rng.NextBounded(15));
      for (int f = 0; f < facts; ++f) {
        rel.Fact(static_cast<int64_t>(rng.NextBounded(kDomain)),
                 static_cast<int64_t>(rng.NextBounded(kDomain)));
      }
    }

    // Variables shared by all rules.
    std::vector<datalog::VarRef> vars;
    for (int v = 0; v < 4; ++v) vars.push_back(dsl.Var());

    // Rules. Every IDB relation gets 1-3 rules.
    for (const auto& head_rel : idb_refs) {
      const int num_rules = 1 + static_cast<int>(rng.NextBounded(3));
      for (int r = 0; r < num_rules; ++r) {
        datalog::Rule rule;

        // Body: 1-3 positive atoms over random relations and variables.
        const int body_atoms = 1 + static_cast<int>(rng.NextBounded(3));
        std::set<datalog::VarId> bound;
        for (int a = 0; a < body_atoms; ++a) {
          const auto& rel = all[rng.NextBounded(all.size())];
          datalog::Atom atom;
          atom.predicate = rel.id();
          for (int t = 0; t < 2; ++t) {
            if (rng.NextBool(0.15)) {
              atom.terms.push_back(datalog::Term::MakeConst(
                  static_cast<int64_t>(rng.NextBounded(kDomain))));
            } else {
              const auto var = vars[rng.NextBounded(vars.size())];
              atom.terms.push_back(datalog::Term::MakeVar(var.id));
              bound.insert(var.id);
            }
          }
          rule.body.push_back(std::move(atom));
        }
        std::vector<datalog::VarId> bound_list(bound.begin(), bound.end());

        // Optional comparison between two bound variables.
        if (!bound_list.empty() && rng.NextBool(0.3)) {
          datalog::Atom cmp;
          cmp.builtin = rng.NextBool(0.5) ? datalog::BuiltinOp::kLe
                                          : datalog::BuiltinOp::kNe;
          cmp.terms = {
              datalog::Term::MakeVar(
                  bound_list[rng.NextBounded(bound_list.size())]),
              datalog::Term::MakeVar(
                  bound_list[rng.NextBounded(bound_list.size())])};
          rule.body.push_back(std::move(cmp));
        }

        // Optional negated EDB atom over bound variables (stratified and
        // safe by construction).
        if (!bound_list.empty() && rng.NextBool(0.25)) {
          datalog::Atom neg;
          neg.predicate = edb[rng.NextBounded(edb.size())].id();
          neg.negated = true;
          for (int t = 0; t < 2; ++t) {
            neg.terms.push_back(datalog::Term::MakeVar(
                bound_list[rng.NextBounded(bound_list.size())]));
          }
          rule.body.push_back(std::move(neg));
        }

        // Head: two terms drawn from bound variables (or constants when
        // the body bound nothing).
        rule.head.predicate = head_rel.id();
        for (int t = 0; t < 2; ++t) {
          if (bound_list.empty()) {
            rule.head.terms.push_back(datalog::Term::MakeConst(
                static_cast<int64_t>(rng.NextBounded(kDomain))));
          } else {
            rule.head.terms.push_back(datalog::Term::MakeVar(
                bound_list[rng.NextBounded(bound_list.size())]));
          }
        }
        CARAC_CHECK_OK(program->AddRule(std::move(rule)));
      }
    }
  }
};

using Model = std::vector<std::vector<storage::Tuple>>;

Model Evaluate(uint64_t seed, const core::EngineConfig& config) {
  RandomProgram rp(seed);
  core::Engine engine(rp.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  Model model;
  for (datalog::PredicateId id : rp.idb) model.push_back(engine.Results(id));
  return model;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, AllConfigurationsAgree) {
  const uint64_t seed = GetParam();
  const Model reference =
      Evaluate(seed, core::EngineConfig{});  // Push, indexed, interpreted.

  {
    core::EngineConfig config;
    config.use_indexes = false;
    EXPECT_EQ(Evaluate(seed, config), reference) << "unindexed";
  }
  {
    core::EngineConfig config;
    config.engine_style = ir::EngineStyle::kPull;
    EXPECT_EQ(Evaluate(seed, config), reference) << "pull";
  }
  {
    core::EngineConfig config;
    config.index_kind = storage::IndexKind::kSorted;
    EXPECT_EQ(Evaluate(seed, config), reference) << "sorted index";
  }
  {
    core::EngineConfig config;
    config.aot_reorder = true;
    EXPECT_EQ(Evaluate(seed, config), reference) << "aot";
  }
  for (backends::BackendKind backend :
       {backends::BackendKind::kLambda, backends::BackendKind::kBytecode,
        backends::BackendKind::kIRGenerator}) {
    core::EngineConfig config;
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backend;
    config.jit.granularity = core::Granularity::kUnionAll;
    EXPECT_EQ(Evaluate(seed, config), reference)
        << backends::BackendKindName(backend);
  }
  {
    core::EngineConfig config;
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backends::BackendKind::kBytecode;
    config.jit.async = true;
    EXPECT_EQ(Evaluate(seed, config), reference) << "bytecode async";
  }
  {
    core::EngineConfig config;
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backends::BackendKind::kLambda;
    config.jit.mode = backends::CompileMode::kSnippet;
    EXPECT_EQ(Evaluate(seed, config), reference) << "lambda snippet";
  }
  // Parallel evaluation, crossed with both relational engines and both
  // index organizations. The random programs are tiny, so the dispatch
  // threshold is dropped to 1 — every subquery with a relational outer
  // atom runs through the shard/stage/merge path, which must stay
  // indistinguishable from single-threaded evaluation.
  for (int threads : {1, 2, 4}) {
    for (ir::EngineStyle style :
         {ir::EngineStyle::kPush, ir::EngineStyle::kPull}) {
      for (storage::IndexKind kind :
           {storage::IndexKind::kHash, storage::IndexKind::kSorted}) {
        core::EngineConfig config;
        config.num_threads = threads;
        config.parallel_min_outer_rows = 1;
        config.engine_style = style;
        config.index_kind = kind;
        EXPECT_EQ(Evaluate(seed, config), reference)
            << threads << " threads, " << ir::EngineStyleName(style)
            << " engine, " << storage::IndexKindName(kind) << " index";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace carac
