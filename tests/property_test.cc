// Property-based suites: every evaluation configuration must produce the
// exact same model (set of derived facts) as the reference interpreter,
// across a family of randomized programs; and the join order must never
// affect results, only performance.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "core/engine.h"
#include "datalog/dsl.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "storage/staging_buffer.h"
#include "util/rng.h"

namespace carac {
namespace {

using analysis::Workload;
using backends::BackendKind;
using backends::CompileMode;
using core::EngineConfig;
using core::EvalMode;
using core::Granularity;

/// The randomized program family: transitive closure plus a secondary
/// derived relation with negation and arithmetic, over a seeded graph.
Workload MakeRandomWorkload(uint64_t seed) {
  Workload w;
  w.name = "random" + std::to_string(seed);
  w.program = std::make_unique<datalog::Program>();
  datalog::Dsl dsl(w.program.get());
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto spread = dsl.Relation("Spread", 2);
  auto blocked = dsl.Relation("Blocked", 1);
  auto [x, y, z, d] = dsl.Vars<4>();

  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  spread(x, d) <<= path(x, y) & !blocked(y) & dsl.Add(y, 100, d);
  w.output = path.id();
  w.relations["Path"] = path.id();
  w.relations["Spread"] = spread.id();

  const auto edges =
      analysis::GenerateSparseGraph(seed, 20 + seed % 17, 40 + seed % 23);
  for (const auto& e : edges) edge.Fact(e.first, e.second);
  for (uint64_t b = 0; b < 5; ++b) {
    blocked.Fact(static_cast<int64_t>((seed + b * 7) % 20));
  }
  return w;
}

/// Sorted model of every IDB relation, for whole-model comparison.
std::vector<std::vector<storage::Tuple>> ModelOf(const Workload& w,
                                                 core::Engine* engine) {
  std::vector<std::vector<storage::Tuple>> model;
  for (const auto& [name, id] : std::map<std::string, datalog::PredicateId>(
           w.relations.begin(), w.relations.end())) {
    model.push_back(engine->Results(id));
  }
  return model;
}

std::vector<std::vector<storage::Tuple>> RunWith(uint64_t seed,
                                                 const EngineConfig& config) {
  Workload w = MakeRandomWorkload(seed);
  core::Engine engine(w.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  return ModelOf(w, &engine);
}

// ---- Cross-configuration equivalence (TEST_P sweep) ----

struct ConfigCase {
  BackendKind backend;
  Granularity granularity;
  bool async;
  CompileMode mode;
  bool indexes;
};

std::string CaseName(const ::testing::TestParamInfo<ConfigCase>& info) {
  const ConfigCase& c = info.param;
  std::string name = backends::BackendKindName(c.backend);
  name += "_";
  name += core::GranularityName(c.granularity);
  name += c.async ? "_async" : "_block";
  name += c.mode == CompileMode::kSnippet ? "_snippet" : "_full";
  name += c.indexes ? "_idx" : "_noidx";
  return name;
}

class BackendEquivalence : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(BackendEquivalence, MatchesInterpreterModel) {
  const ConfigCase& c = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    EngineConfig reference;
    reference.use_indexes = c.indexes;
    const auto expected = RunWith(seed, reference);

    EngineConfig jit;
    jit.mode = EvalMode::kJit;
    jit.use_indexes = c.indexes;
    jit.jit.backend = c.backend;
    jit.jit.granularity = c.granularity;
    jit.jit.async = c.async;
    jit.jit.mode = c.mode;
    EXPECT_EQ(RunWith(seed, jit), expected) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendEquivalence,
    ::testing::Values(
        // Lambda across granularities, both compile modes.
        ConfigCase{BackendKind::kLambda, Granularity::kProgram, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kLambda, Granularity::kDoWhile, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kLambda, Granularity::kUnionAll, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kLambda, Granularity::kUnion, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kLambda, Granularity::kSpj, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kLambda, Granularity::kUnionAll, false,
                   CompileMode::kSnippet, true},
        ConfigCase{BackendKind::kLambda, Granularity::kUnion, true,
                   CompileMode::kFull, true},
        // Bytecode.
        ConfigCase{BackendKind::kBytecode, Granularity::kProgram, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kBytecode, Granularity::kUnionAll, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kBytecode, Granularity::kUnion, false,
                   CompileMode::kSnippet, true},
        ConfigCase{BackendKind::kBytecode, Granularity::kSpj, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kBytecode, Granularity::kUnionAll, true,
                   CompileMode::kFull, true},
        // IRGenerator.
        ConfigCase{BackendKind::kIRGenerator, Granularity::kUnionAll, false,
                   CompileMode::kFull, true},
        ConfigCase{BackendKind::kIRGenerator, Granularity::kSpj, false,
                   CompileMode::kFull, true},
        // Unindexed variants.
        ConfigCase{BackendKind::kLambda, Granularity::kUnion, false,
                   CompileMode::kFull, false},
        ConfigCase{BackendKind::kBytecode, Granularity::kUnion, false,
                   CompileMode::kFull, false}),
    CaseName);

// ---- Join-order invariance ----

class OrderInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderInvariance, WorkloadOrderFormulationsAgree) {
  const uint64_t seed = GetParam();
  analysis::CspaConfig cspa;
  cspa.seed = seed;
  cspa.total_tuples = 200;
  Workload a = analysis::MakeCspa(cspa, analysis::RuleOrder::kHandOptimized);
  Workload b = analysis::MakeCspa(cspa, analysis::RuleOrder::kUnoptimized);

  core::Engine ea(a.program.get(), EngineConfig{});
  core::Engine eb(b.program.get(), EngineConfig{});
  CARAC_CHECK_OK(ea.Prepare());
  CARAC_CHECK_OK(ea.Run());
  CARAC_CHECK_OK(eb.Prepare());
  CARAC_CHECK_OK(eb.Run());
  EXPECT_EQ(ea.Results(a.output), eb.Results(b.output));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderInvariance,
                         ::testing::Values(1, 7, 13, 99, 12345));

// ---- Semi-naive vs naive equivalence ----

TEST(SemiNaiveProperty, MatchesNaiveFixpointOnRandomGraphs) {
  for (uint64_t seed : {4u, 8u, 15u}) {
    // Naive reference: repeatedly apply rules from scratch by brute force.
    const auto edges = analysis::GenerateSparseGraph(seed, 15, 25);
    std::set<std::pair<int64_t, int64_t>> closure(edges.begin(), edges.end());
    for (;;) {
      const size_t before = closure.size();
      std::set<std::pair<int64_t, int64_t>> next = closure;
      for (const auto& [a, b] : closure) {
        for (const auto& [c, d] : edges) {
          if (b == c) next.emplace(a, d);
        }
      }
      closure = std::move(next);
      if (closure.size() == before) break;
    }

    Workload w = analysis::MakeTransitiveClosure(
        edges, analysis::RuleOrder::kHandOptimized);
    core::Engine engine(w.program.get(), EngineConfig{});
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    EXPECT_EQ(engine.ResultSize(w.output), closure.size()) << "seed " << seed;
    for (const auto& [a, b] : closure) {
      EXPECT_TRUE(w.program->db()
                      .Get(w.output, storage::DbKind::kDerived)
                      .Contains({a, b}));
    }
  }
}

// ---- AOT planning never changes results ----

TEST(AotProperty, PlannedAndUnplannedModelsAgree) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    EngineConfig plain;
    EngineConfig planned;
    planned.aot_reorder = true;
    planned.aot.use_fact_cardinalities = (seed % 2) == 0;
    EXPECT_EQ(RunWith(seed, planned), RunWith(seed, plain));
  }
}

// ---- Open-addressing dedup table vs std::set reference model ----
//
// The arena Relation's set semantics live in a hand-rolled linear-probe
// table over util::HashSpan (power-of-two capacity, 3/4 load growth).
// Randomized insert/contains/reserve sequences must agree with a
// std::set model at every step; StagingBuffer shares the same design
// (and the parallel evaluator's dedup correctness), so it is driven by
// the same oracle.

TEST(HashTableProperty, RelationMatchesSetModel) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    util::Rng rng(seed);
    const size_t arity = 1 + rng.NextBounded(3);
    storage::Relation rel("prop", arity);
    std::set<storage::Tuple> model;
    // A small domain makes duplicate inserts common; enough operations to
    // cross several power-of-two growth boundaries from kMinSlots up.
    for (int i = 0; i < 4000; ++i) {
      storage::Tuple t;
      for (size_t c = 0; c < arity; ++c) {
        t.push_back(static_cast<int64_t>(rng.NextBounded(40)) - 20);
      }
      switch (rng.NextBounded(5)) {
        case 0:
        case 1:
        case 2: {
          const bool was_new = model.insert(t).second;
          ASSERT_EQ(rel.Insert(t), was_new) << "seed " << seed;
          break;
        }
        case 3:
          ASSERT_EQ(rel.Contains(t), model.count(t) > 0) << "seed " << seed;
          break;
        case 4:
          // Reserve triggers an off-schedule rehash; contents must ride
          // through the re-bucketing pass untouched.
          rel.Reserve(rel.size() + rng.NextBounded(64));
          break;
      }
    }
    ASSERT_EQ(rel.size(), model.size()) << "seed " << seed;
    // Duplicate-insert idempotence over the whole model.
    for (const storage::Tuple& t : model) {
      ASSERT_FALSE(rel.Insert(t)) << "seed " << seed;
    }
    ASSERT_EQ(rel.size(), model.size()) << "seed " << seed;
    const std::vector<storage::Tuple> expected(model.begin(), model.end());
    ASSERT_EQ(rel.SortedRows(), expected) << "seed " << seed;
  }
}

TEST(HashTableProperty, GrowthBoundaryExact) {
  // The table grows when (rows + 1) * 4 > slots * 3: walk insert counts
  // across the first boundaries and check set semantics stays exact on
  // either side of each rehash.
  storage::Relation rel("boundary", 1);
  std::set<storage::Tuple> model;
  for (int64_t v = 0; v < 200; ++v) {
    ASSERT_TRUE(rel.Insert({v}));
    ASSERT_FALSE(rel.Insert({v}));  // Immediately re-probe post-growth.
    model.insert({v});
    for (int64_t probe = 0; probe <= v; ++probe) {
      ASSERT_TRUE(rel.Contains({probe})) << "after " << v;
    }
    ASSERT_FALSE(rel.Contains({v + 1}));
    ASSERT_EQ(rel.size(), model.size());
  }
}

TEST(HashTableProperty, StagingBufferMatchesSetModel) {
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    util::Rng rng(seed);
    const size_t arity = 1 + rng.NextBounded(3);
    storage::StagingBuffer buffer;
    buffer.Reset(arity);
    std::set<storage::Tuple> model;
    for (int i = 0; i < 3000; ++i) {
      storage::Tuple t;
      for (size_t c = 0; c < arity; ++c) {
        t.push_back(static_cast<int64_t>(rng.NextBounded(40)));
      }
      if (rng.NextBool(0.7)) {
        ASSERT_EQ(buffer.Insert(t), model.insert(t).second) << "seed "
                                                            << seed;
      } else {
        ASSERT_EQ(buffer.Contains(t), model.count(t) > 0) << "seed " << seed;
      }
    }
    ASSERT_EQ(buffer.NumRows(), model.size()) << "seed " << seed;
    // Staged rows keep insertion order; every staged row is in the model.
    for (uint32_t row = 0; row < buffer.NumRows(); ++row) {
      ASSERT_TRUE(model.count(buffer.View(row).ToTuple()) > 0);
    }
    // Reset re-arms without leaking previous contents.
    buffer.Reset(arity);
    ASSERT_TRUE(buffer.empty());
    for (const storage::Tuple& t : model) {
      ASSERT_FALSE(buffer.Contains(t));
    }
  }
}

// ---- Index oracle (storage/index.h, all five organizations) ----
//
// Every IndexKind must agree with a std::multimap<key, row> model under
// interleaved Add/Probe/ProbeRange/BatchProbe, with Stabilize() calls
// thrown in at random quiescent points (kSortedArray and kLearned migrate
// tail rows into their immutable prefix there — kLearned also refits its
// model; the others must treat it as a no-op).
// Rows enter in ascending RowId order, so for any key the model's
// equal_range — which preserves insertion order — IS the expected
// ascending-RowId probe result.

std::vector<storage::RowId> CursorRows(const storage::RowCursor& cursor) {
  std::vector<storage::RowId> rows;
  cursor.ForEach([&](storage::RowId row) { rows.push_back(row); });
  return rows;
}

TEST(IndexOracleProperty, EveryKindMatchesMultimapModel) {
  using storage::IndexKind;
  using storage::RowId;
  using storage::Value;
  for (IndexKind kind :
       {IndexKind::kHash, IndexKind::kSorted, IndexKind::kBtree,
        IndexKind::kSortedArray, IndexKind::kLearned}) {
    for (uint64_t seed = 41; seed <= 46; ++seed) {
      util::Rng rng(seed);
      std::unique_ptr<storage::IndexBase> index = storage::MakeIndex(0, kind);
      std::multimap<Value, RowId> model;
      RowId next_row = 0;
      auto model_probe = [&](Value key) {
        std::vector<RowId> rows;
        auto [lo, hi] = model.equal_range(key);
        for (auto it = lo; it != hi; ++it) rows.push_back(it->second);
        return rows;
      };
      // A narrow key domain makes shared keys (multi-row buckets) and
      // repeated batch keys common; enough inserts to push the B-tree
      // through several levels of splits.
      auto random_key = [&]() {
        return static_cast<Value>(rng.NextBounded(60)) - 30;
      };
      for (int i = 0; i < 3000; ++i) {
        switch (rng.NextBounded(8)) {
          case 0:
          case 1:
          case 2:
          case 3: {
            const Value key = random_key();
            index->Add(next_row, key);
            model.emplace(key, next_row);
            ++next_row;
            break;
          }
          case 4: {
            const Value key = random_key();
            ASSERT_EQ(CursorRows(index->Probe(key)), model_probe(key))
                << storage::IndexKindName(kind) << " seed " << seed;
            break;
          }
          case 5: {
            const Value lo = random_key();
            const Value hi = lo + static_cast<Value>(rng.NextBounded(12));
            std::vector<RowId> got;
            const util::Status status = index->ProbeRange(lo, hi, &got);
            if (kind == IndexKind::kHash) {
              ASSERT_EQ(status.code(),
                        util::StatusCode::kFailedPrecondition);
              break;
            }
            ASSERT_TRUE(status.ok());
            std::vector<RowId> want;
            for (auto it = model.lower_bound(lo);
                 it != model.end() && it->first <= hi; ++it) {
              want.push_back(it->second);
            }
            ASSERT_EQ(got, want) << storage::IndexKindName(kind) << " seed "
                                 << seed << " range [" << lo << ", " << hi
                                 << "]";
            break;
          }
          case 6: {
            Value keys[16];
            const size_t n = 1 + rng.NextBounded(16);
            for (size_t k = 0; k < n; ++k) {
              // Duplicate the previous key half the time: adjacent-equal
              // runs are the case BatchProbe elides lookups for.
              keys[k] = (k > 0 && rng.NextBool(0.5)) ? keys[k - 1]
                                                     : random_key();
            }
            storage::RowCursor cursors[16];
            index->BatchProbe(keys, n, cursors);
            for (size_t k = 0; k < n; ++k) {
              ASSERT_EQ(CursorRows(cursors[k]), model_probe(keys[k]))
                  << storage::IndexKindName(kind) << " seed " << seed
                  << " batch slot " << k;
            }
            break;
          }
          case 7:
            // A quiescent point: no cursors are live across this call.
            index->Stabilize(next_row == 0
                                 ? 0
                                 : static_cast<RowId>(
                                       rng.NextBounded(next_row + 1)));
            break;
        }
      }
      // Full final sweep over the key domain.
      index->Stabilize(next_row);
      for (Value key = -31; key <= 31; ++key) {
        ASSERT_EQ(CursorRows(index->Probe(key)), model_probe(key))
            << storage::IndexKindName(kind) << " seed " << seed;
      }
    }
  }
}

TEST(IndexOracleProperty, MidStreamRekindingMatchesMultimapModel) {
  // Self-tuning indexes re-kind columns between epochs. The oracle:
  // random RedeclareIndex calls interleaved with inserts, watermark
  // advances and every probe flavour must be invisible to results — the
  // rebuilt index answers exactly like the multimap model, whatever
  // sequence of organizations the column has been through.
  using storage::DbKind;
  using storage::IndexKind;
  using storage::RowId;
  using storage::Value;
  constexpr IndexKind kKinds[] = {IndexKind::kHash, IndexKind::kSorted,
                                  IndexKind::kBtree, IndexKind::kSortedArray,
                                  IndexKind::kLearned};
  for (uint64_t seed = 71; seed <= 76; ++seed) {
    util::Rng rng(seed);
    storage::Relation rel("R", 2);
    rel.DeclareIndex(0, kKinds[seed % 5]);
    std::multimap<Value, RowId> model;
    RowId next_row = 0;
    auto model_probe = [&](Value key) {
      std::vector<RowId> rows;
      auto [lo, hi] = model.equal_range(key);
      for (auto it = lo; it != hi; ++it) rows.push_back(it->second);
      return rows;
    };
    auto random_key = [&]() {
      return static_cast<Value>(rng.NextBounded(50)) - 25;
    };
    for (int i = 0; i < 2500; ++i) {
      switch (rng.NextBounded(8)) {
        case 0:
        case 1:
        case 2: {
          const Value key = random_key();
          rel.Insert({key, static_cast<Value>(i)});
          model.emplace(key, next_row);
          ++next_row;
          break;
        }
        case 3: {
          const Value key = random_key();
          ASSERT_EQ(CursorRows(rel.Probe(0, key)), model_probe(key))
              << "seed " << seed << " op " << i;
          break;
        }
        case 4: {
          const Value lo = random_key();
          const Value hi = lo + static_cast<Value>(rng.NextBounded(9));
          std::vector<RowId> got;
          const util::Status status = rel.ProbeRange(0, lo, hi, &got);
          if (rel.IndexKindOf(0) == IndexKind::kHash) {
            ASSERT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
            break;
          }
          ASSERT_TRUE(status.ok());
          std::vector<RowId> want;
          for (auto it = model.lower_bound(lo);
               it != model.end() && it->first <= hi; ++it) {
            want.push_back(it->second);
          }
          ASSERT_EQ(got, want) << "seed " << seed << " range [" << lo
                               << ", " << hi << "]";
          break;
        }
        case 5: {
          Value keys[12];
          const size_t n = 1 + rng.NextBounded(12);
          for (size_t k = 0; k < n; ++k) {
            keys[k] =
                (k > 0 && rng.NextBool(0.5)) ? keys[k - 1] : random_key();
          }
          storage::RowCursor cursors[12];
          rel.BatchProbe(0, keys, n, cursors);
          for (size_t k = 0; k < n; ++k) {
            ASSERT_EQ(CursorRows(cursors[k]), model_probe(keys[k]))
                << "seed " << seed << " batch slot " << k;
          }
          break;
        }
        case 6:
          // Epoch close: watermark advance stabilizes every index.
          rel.AdvanceWatermark();
          break;
        case 7:
          // The adaptive policy's move, at a random quiescent point —
          // possibly a no-op re-kind to the current organization.
          rel.RedeclareIndex(0, kKinds[rng.NextBounded(5)]);
          break;
      }
    }
    rel.AdvanceWatermark();
    for (Value key = -26; key <= 26; ++key) {
      ASSERT_EQ(CursorRows(rel.Probe(0, key)), model_probe(key))
          << "seed " << seed << " final sweep";
    }
  }
}

TEST(IndexOracleProperty, GrowthBoundaryWalkEveryKind) {
  // Dense sequential inserts walk the B-tree across every node-split
  // boundary (fanout 32) and the sorted array across repeated
  // stabilize-merge cycles; after every insert the freshly crossed
  // state must still answer exact point probes for all earlier keys.
  using storage::IndexKind;
  using storage::RowId;
  for (IndexKind kind :
       {IndexKind::kHash, IndexKind::kSorted, IndexKind::kBtree,
        IndexKind::kSortedArray, IndexKind::kLearned}) {
    std::unique_ptr<storage::IndexBase> index = storage::MakeIndex(0, kind);
    for (RowId row = 0; row < 400; ++row) {
      index->Add(row, static_cast<storage::Value>(row));
      if (row % 64 == 63) index->Stabilize(row / 2);
      // Probe a stride of earlier keys plus the just-inserted one.
      for (RowId probe = row % 7; probe <= row; probe += 7) {
        const std::vector<RowId> rows =
            CursorRows(index->Probe(static_cast<storage::Value>(probe)));
        ASSERT_EQ(rows, std::vector<RowId>{probe})
            << storage::IndexKindName(kind) << " after row " << row;
      }
      ASSERT_TRUE(
          index->Probe(static_cast<storage::Value>(row) + 1).empty());
    }
  }
}

}  // namespace
}  // namespace carac
