// Incremental (epoch-based) evaluation: AddFacts() + Update() must land
// on exactly the model a from-scratch run over the union of the facts
// produces. The headline suites pin tc and Andersen incremental runs to
// the SAME goldens the one-shot storage_golden_test uses — an update
// epoch is not allowed to drift from batch evaluation by a single byte.
// The rest covers the non-monotone fallbacks (negation and aggregates
// retract; their strata recompute and the retraction cascades
// downstream) and the Status contract for API misuse.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "core/engine.h"
#include "datalog/dsl.h"

#ifndef CARAC_GOLDEN_DIR
#error "CARAC_GOLDEN_DIR must point at tests/goldens"
#endif

namespace carac {
namespace {

using datalog::Dsl;
using datalog::Program;
using storage::Tuple;

std::string Render(const std::vector<Tuple>& rows) {
  std::ostringstream out;
  for (const Tuple& t : rows) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << '\t';
      out << t[i];
    }
    out << '\n';
  }
  return out.str();
}

std::string ReadGolden(const std::string& name) {
  const std::string path =
      std::string(CARAC_GOLDEN_DIR) + "/" + name + ".golden";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  std::stringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

// ---- tc pinned to the committed golden, across engines and threads ----

void CheckTcIncremental(const core::EngineConfig& config, size_t num_batches,
                        size_t* rekind_events = nullptr) {
  const auto edges = analysis::GenerateSparseGraph(
      /*seed=*/11, /*num_vertices=*/300, /*num_edges=*/900, /*zipf_s=*/1.1);
  // Initial load: all but the last ~1% per extra batch.
  const size_t delta = edges.size() / 100;
  const size_t initial = edges.size() - delta * (num_batches - 1);
  const std::vector<analysis::Edge> head(edges.begin(),
                                         edges.begin() + initial);

  analysis::Workload w =
      analysis::MakeTransitiveClosure(head, analysis::RuleOrder::kHandOptimized);
  core::Engine engine(w.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());

  const datalog::PredicateId edge = w.relations.at("Edge");
  for (size_t b = 1; b < num_batches; ++b) {
    std::vector<Tuple> batch;
    for (size_t i = initial + (b - 1) * delta;
         i < initial + b * delta && i < edges.size(); ++i) {
      batch.push_back({edges[i].first, edges[i].second});
    }
    CARAC_CHECK_OK(engine.AddFacts(edge, batch));
    core::EpochReport report;
    CARAC_CHECK_OK(engine.Update(&report));
    EXPECT_FALSE(report.full);
    EXPECT_EQ(report.strata_recomputed, 0u);  // Purely positive program.
    EXPECT_GE(report.seeded_rows, batch.size());
  }
  EXPECT_EQ(Render(engine.Results(w.output)), ReadGolden("tc"));
  if (rekind_events != nullptr) {
    ASSERT_NE(engine.adaptive_policy(), nullptr);
    *rekind_events = engine.adaptive_policy()->events().size();
  }
}

TEST(IncrementalGoldenTest, TcPushEngine) {
  CheckTcIncremental(core::EngineConfig{}, 3);
}

TEST(IncrementalGoldenTest, TcPullEngine) {
  core::EngineConfig config;
  config.engine_style = ir::EngineStyle::kPull;
  CheckTcIncremental(config, 3);
}

TEST(IncrementalGoldenTest, TcParallel) {
  for (int threads : {2, 4}) {
    core::EngineConfig config;
    config.num_threads = threads;
    config.parallel_min_outer_rows = 1;
    CheckTcIncremental(config, 3);
  }
}

TEST(IncrementalGoldenTest, TcJitBytecode) {
  core::EngineConfig config;
  config.mode = core::EvalMode::kJit;
  config.jit.backend = backends::BackendKind::kBytecode;
  CheckTcIncremental(config, 3);
}

// ---- Self-tuning: adaptive re-kinding must not move a golden byte ----

TEST(IncrementalGoldenTest, TcAdaptiveRekindsAndStaysGolden) {
  // Start every index on a deliberately wrong static kind for this
  // point-probe-dominated workload (btree) with the policy armed hot
  // (no evidence gate, immediate hysteresis): migrations MUST fire
  // across the multi-epoch run, and the output must stay byte-identical
  // to the committed golden through every rebuild.
  core::EngineConfig config;
  config.index_kind = storage::IndexKind::kBtree;
  config.adaptive_indexes = true;
  config.adaptive.min_probes = 1;
  config.adaptive.hysteresis_epochs = 1;
  config.adaptive.cooldown_epochs = 0;
  size_t rekinds = 0;
  CheckTcIncremental(config, 6, &rekinds);
  EXPECT_GT(rekinds, 0u);
}

TEST(IncrementalGoldenTest, TcAdaptiveParallelStaysGolden) {
  // Same, across the shard/stage/merge path: per-shard profilers merge
  // at the same serial point as staged rows, so the policy sees the same
  // evidence and the golden must not move at any thread count.
  for (int threads : {2, 4}) {
    core::EngineConfig config;
    config.index_kind = storage::IndexKind::kBtree;
    config.adaptive_indexes = true;
    config.adaptive.min_probes = 1;
    config.adaptive.hysteresis_epochs = 1;
    config.adaptive.cooldown_epochs = 0;
    config.num_threads = threads;
    config.parallel_min_outer_rows = 1;
    size_t rekinds = 0;
    CheckTcIncremental(config, 6, &rekinds);
    EXPECT_GT(rekinds, 0u) << threads << " threads";
  }
}

// ---- Self-tuning: declined range demand re-kinds hash to ordered ----

TEST(IncrementalGoldenTest, RangeDemandRekindsHashToOrdered) {
  // A range-constrained recursion (Reach col1 is bounded by a comparison
  // builtin, never point-probed by the full tree) forced to start on hash
  // everywhere. Range pushdown records the demand even though the hash
  // index declines to serve it — that declined demand is exactly the
  // evidence the adaptive policy needs, so with the policy armed hot the
  // column MUST migrate to an ordered kind, after which the same builtin
  // serves through ProbeRange. Every epoch must land on the model a
  // from-scratch run over the union of the facts produces.
  const auto edges = analysis::GenerateSparseGraph(
      /*seed=*/7, /*num_vertices=*/150, /*num_edges=*/450, /*zipf_s=*/1.1);
  auto build = [](datalog::Program* program, datalog::PredicateId* edge_id) {
    Dsl dsl(program);
    auto edge = dsl.Relation("Edge", 2);
    auto reach = dsl.Relation("Reach", 2);
    auto [x, y, z] = dsl.Vars<3>();
    reach(x, y) <<= edge(x, y);
    reach(x, z) <<= reach(x, y) & edge(y, z) & dsl.Lt(y, 60);
    *edge_id = edge.id();
    return reach.id();
  };

  // Reference: a default-config from-scratch run over all the facts.
  Program ref_program;
  datalog::PredicateId ref_edge;
  const datalog::PredicateId ref_reach = build(&ref_program, &ref_edge);
  core::Engine ref(&ref_program, core::EngineConfig{});
  CARAC_CHECK_OK(ref.Prepare());
  std::vector<Tuple> all_facts;
  for (const auto& e : edges) all_facts.push_back({e.first, e.second});
  CARAC_CHECK_OK(ref.AddFacts(ref_edge, all_facts));
  CARAC_CHECK_OK(ref.Run());
  const std::string expected = Render(ref.Results(ref_reach));

  core::EngineConfig config;
  config.index_kind = storage::IndexKind::kHash;
  config.adaptive_indexes = true;
  config.adaptive.min_probes = 1;
  config.adaptive.hysteresis_epochs = 1;
  config.adaptive.cooldown_epochs = 0;
  Program program;
  datalog::PredicateId edge_id;
  const datalog::PredicateId reach_id = build(&program, &edge_id);
  core::Engine engine(&program, config);
  CARAC_CHECK_OK(engine.Prepare());

  constexpr size_t kBatches = 3;
  const size_t delta = edges.size() / 50;
  const size_t initial = edges.size() - delta * (kBatches - 1);
  std::vector<Tuple> head(all_facts.begin(),
                          all_facts.begin() + static_cast<ptrdiff_t>(initial));
  CARAC_CHECK_OK(engine.AddFacts(edge_id, head));
  CARAC_CHECK_OK(engine.Run());
  for (size_t b = 1; b < kBatches; ++b) {
    std::vector<Tuple> batch(
        all_facts.begin() + static_cast<ptrdiff_t>(initial + (b - 1) * delta),
        all_facts.begin() + static_cast<ptrdiff_t>(initial + b * delta));
    CARAC_CHECK_OK(engine.AddFacts(edge_id, batch));
    CARAC_CHECK_OK(engine.Update());
  }
  EXPECT_EQ(Render(engine.Results(reach_id)), expected);

  ASSERT_NE(engine.adaptive_policy(), nullptr);
  const auto& events = engine.adaptive_policy()->events();
  ASSERT_FALSE(events.empty());
  bool reach_went_ordered = false;
  for (const optimizer::RekindEvent& event : events) {
    if (event.relation == reach_id && event.column == 1 &&
        storage::IndexKindIsOrdered(event.to)) {
      reach_went_ordered = true;
      // Migration must not be a last-epoch fluke: later epochs run (and
      // stay correct) with the ordered kind actually serving the range.
      EXPECT_LT(event.epoch, kBatches);
    }
  }
  EXPECT_TRUE(reach_went_ordered);
}

TEST(IncrementalGoldenTest, TcAdaptiveDefaultKnobsStayGolden) {
  // Production knobs (256-probe gate, 2-epoch hysteresis + cooldown):
  // whether or not any migration clears the gate on this small workload,
  // the run must stay golden.
  core::EngineConfig config;
  config.adaptive_indexes = true;
  CheckTcIncremental(config, 4);
}

// ---- Andersen pinned to the committed golden ----

void CheckAndersenGolden(const core::EngineConfig& config,
                         size_t* rekind_events = nullptr) {
  analysis::SListConfig slist;
  slist.scale = 2;
  analysis::Workload w =
      analysis::MakeAndersen(slist, analysis::RuleOrder::kHandOptimized);

  // Snapshot every relation's facts (construction inserts them into
  // Derived), unload, and replay: all but the last 1% of each relation
  // up front, the tail as an update epoch.
  storage::DatabaseSet& db = w.program->db();
  std::vector<std::vector<Tuple>> initial(db.NumRelations());
  std::vector<std::vector<Tuple>> tail(db.NumRelations());
  for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
    const storage::Relation& rel = db.Get(id, storage::DbKind::kDerived);
    // ~1% tail per relation, at least one row for any relation big
    // enough to survive losing one.
    const size_t rows = rel.NumRows();
    const size_t tail_n =
        rows >= 10 ? std::max<size_t>(1, rows / 100) : 0;
    for (storage::RowId row = 0; row < rows; ++row) {
      (row < rows - tail_n ? initial : tail)[id].push_back(
          rel.View(row).ToTuple());
    }
    db.ClearFacts(id);
  }

  core::Engine engine(w.program.get(), config);
  for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
    CARAC_CHECK_OK(engine.AddFacts(id, initial[id]));
  }
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  size_t tail_total = 0;
  for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
    CARAC_CHECK_OK(engine.AddFacts(id, tail[id]));
    tail_total += tail[id].size();
  }
  ASSERT_GT(tail_total, 0u);
  core::EpochReport report;
  CARAC_CHECK_OK(engine.Update(&report));
  EXPECT_FALSE(report.full);
  EXPECT_EQ(Render(engine.Results(w.output)), ReadGolden("andersen"));
  if (rekind_events != nullptr) {
    ASSERT_NE(engine.adaptive_policy(), nullptr);
    *rekind_events = engine.adaptive_policy()->events().size();
  }
}

TEST(IncrementalGoldenTest, Andersen) {
  CheckAndersenGolden(core::EngineConfig{});
}

TEST(IncrementalGoldenTest, AndersenAdaptiveRekindsAndStaysGolden) {
  // Multi-relation, multi-column program under a hot adaptive policy
  // starting from the wrong static kind: re-kinds must fire and the
  // golden must not move.
  core::EngineConfig config;
  config.index_kind = storage::IndexKind::kBtree;
  config.adaptive_indexes = true;
  config.adaptive.min_probes = 1;
  config.adaptive.hysteresis_epochs = 1;
  config.adaptive.cooldown_epochs = 0;
  size_t rekinds = 0;
  CheckAndersenGolden(config, &rekinds);
  EXPECT_GT(rekinds, 0u);
}

// ---- Non-monotone fallbacks: negation and aggregates retract ----

TEST(IncrementalSemanticsTest, NegationRetractsOnUpdate) {
  Program p;
  Dsl dsl(&p);
  auto node = dsl.Relation("Node", 1);
  auto closed = dsl.Relation("Closed", 1);
  auto open = dsl.Relation("Open", 1);
  auto x = dsl.Var();
  open(x) <<= node(x) & !closed(x);
  node.Fact(1);
  node.Fact(2);
  node.Fact(3);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(open.id()), 3u);

  // Growing the negated relation must RETRACT Open(2): the stratum
  // recomputes instead of propagating a monotone delta.
  ASSERT_TRUE(engine.AddFacts(closed.id(), {{2}}).ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_EQ(report.strata_recomputed, 1u);
  EXPECT_EQ(engine.Results(open.id()),
            (std::vector<Tuple>{{1}, {3}}));
}

TEST(IncrementalSemanticsTest, RetractionCascadesDownstream) {
  Program p;
  Dsl dsl(&p);
  auto node = dsl.Relation("Node", 1);
  auto closed = dsl.Relation("Closed", 1);
  auto open = dsl.Relation("Open", 1);
  auto link = dsl.Relation("Link", 2);
  auto reach = dsl.Relation("Reach", 1);
  auto [x, y] = dsl.Vars<2>();
  open(x) <<= node(x) & !closed(x);
  reach(x) <<= open(x) & link(0, x);
  reach(y) <<= reach(x) & link(x, y) & open(y);
  for (int i = 1; i <= 4; ++i) node.Fact(i);
  link.Fact(0, 1);
  link.Fact(1, 2);
  link.Fact(2, 3);
  link.Fact(3, 4);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(reach.id()), 4u);

  // Closing node 2 cuts the chain: Open loses 2, and Reach — a LATER,
  // purely positive stratum — must lose 2, 3 and 4 through the
  // recompute cascade.
  ASSERT_TRUE(engine.AddFacts(closed.id(), {{2}}).ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_EQ(report.strata_recomputed, 2u);
  EXPECT_EQ(engine.Results(reach.id()), (std::vector<Tuple>{{1}}));
}

TEST(IncrementalSemanticsTest, AggregateRecomputesOnInputGrowth) {
  Program p;
  Dsl dsl(&p);
  auto link = dsl.Relation("Link", 2);
  auto deg = dsl.Relation("Deg", 2);
  auto [x, y, c] = dsl.Vars<3>();
  dsl.AggRule(deg(x, c), datalog::BodyExpr({link(x, y).atom()}),
              datalog::AggFunc::kCount);
  link.Fact(1, 10);
  link.Fact(1, 11);
  link.Fact(2, 10);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.Results(deg.id()),
            (std::vector<Tuple>{{1, 2}, {2, 1}}));

  // A new witness changes group 1's count from 2 to 3; the stale (1, 2)
  // tuple must disappear, which only the recompute fallback can do.
  ASSERT_TRUE(engine.AddFacts(link.id(), {{1, 12}}).ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_GE(report.strata_recomputed, 1u);
  EXPECT_EQ(engine.Results(deg.id()),
            (std::vector<Tuple>{{1, 3}, {2, 1}}));
}

TEST(IncrementalSemanticsTest, UntouchedNegationStaysIncremental) {
  Program p;
  Dsl dsl(&p);
  auto node = dsl.Relation("Node", 1);
  auto closed = dsl.Relation("Closed", 1);
  auto open = dsl.Relation("Open", 1);
  auto x = dsl.Var();
  open(x) <<= node(x) & !closed(x);
  node.Fact(1);
  closed.Fact(9);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());

  // Only the POSITIVE input grows: derivations stay monotone, so the
  // negation-bearing stratum may (and does) run incrementally.
  ASSERT_TRUE(engine.AddFacts(node.id(), {{2}}).ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_EQ(report.strata_recomputed, 0u);
  EXPECT_EQ(report.strata_incremental, 1u);
  EXPECT_EQ(engine.Results(open.id()), (std::vector<Tuple>{{1}, {2}}));
}

TEST(IncrementalSemanticsTest, ReassertedDerivedFactSurvivesRecompute) {
  Program p;
  Dsl dsl(&p);
  auto node = dsl.Relation("Node", 1);
  auto closed = dsl.Relation("Closed", 1);
  auto open = dsl.Relation("Open", 1);
  auto x = dsl.Var();
  open(x) <<= node(x) & !closed(x);
  node.Fact(1);
  node.Fact(2);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(open.id()), 2u);

  // Assert Open(2) as an EDB fact — it currently exists only as a
  // derived row, so the insert dedups. Then close node 2: the stratum
  // recomputes, the RULE no longer derives Open(2), but the asserted
  // fact must survive the reset (batch evaluation over the same facts
  // keeps it).
  ASSERT_TRUE(engine.AddFacts(open.id(), {{2}}).ok());
  ASSERT_TRUE(engine.AddFacts(closed.id(), {{2}}).ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_EQ(report.strata_recomputed, 1u);
  EXPECT_EQ(engine.Results(open.id()), (std::vector<Tuple>{{1}, {2}}));
}

TEST(IncrementalSemanticsTest, AotKeepsUpdateDeltasInFront) {
  // Rules-only AOT prices every atom identically, so without the
  // post-reorder re-fronting pass the constant-bearing Link atom would
  // beat the delta atom to position 0 — and empty-delta variants would
  // degrade from O(1) to a full Derived scan per epoch.
  Program p;
  Dsl dsl(&p);
  auto open = dsl.Relation("Open", 1);
  auto link = dsl.Relation("Link", 2);
  auto reach = dsl.Relation("Reach", 1);
  auto [x, y] = dsl.Vars<2>();
  reach(x) <<= open(x) & link(0, x);
  reach(y) <<= reach(x) & link(x, y);
  open.Fact(1);
  link.Fact(0, 1);

  core::EngineConfig config;
  config.aot_reorder = true;
  config.aot.use_fact_cardinalities = false;
  core::Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());

  std::function<void(ir::IROp*)> visit = [&](ir::IROp* op) {
    if (op->kind == ir::OpKind::kSpj) {
      ASSERT_FALSE(op->atoms.empty());
      EXPECT_EQ(op->atoms[0].source, storage::DbKind::kDeltaKnown);
    }
    for (auto& child : op->children) visit(child.get());
  };
  ASSERT_NE(engine.ir().update_root, nullptr);
  visit(engine.ir().update_root.get());
}

// ---- Epoch bookkeeping ----

TEST(IncrementalSemanticsTest, NoChangeEpochSkipsEverything) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  edge.Fact(1, 2);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const uint64_t epoch_after_run = engine.last_epoch().epoch;

  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_EQ(report.epoch, epoch_after_run + 1);
  EXPECT_EQ(report.seeded_rows, 0u);
  EXPECT_EQ(report.strata_skipped, 1u);
  EXPECT_EQ(report.strata_incremental, 0u);
  EXPECT_EQ(report.stats.tuples_inserted, 0u);
}

TEST(IncrementalSemanticsTest, RerunRecomputesFromScratch) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  edge.Fact(1, 2);
  edge.Fact(2, 3);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const uint64_t first_inserted = engine.last_epoch().stats.tuples_inserted;
  const auto first = engine.Results(path.id());
  // A re-entered Run() resets IDB relations to their EDB facts and
  // re-derives everything — same results, full re-derivation cost.
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.Results(path.id()), first);
  EXPECT_EQ(engine.last_epoch().stats.tuples_inserted, first_inserted);
}

TEST(IncrementalSemanticsTest, RunAfterAddFactsHandlesRetraction) {
  // The documented alternative to Update(): AddFacts then a full Run().
  // The re-run must NOT keep conclusions the new facts retract through
  // negation — and must leave the epoch state consistent, so a later
  // AddFacts + Update() still works.
  Program p;
  Dsl dsl(&p);
  auto a = dsl.Relation("A", 1);
  auto b = dsl.Relation("B", 1);
  auto r = dsl.Relation("R", 1);
  auto x = dsl.Var();
  r(x) <<= a(x) & !b(x);
  a.Fact(1);
  a.Fact(2);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(r.id()), 2u);

  ASSERT_TRUE(engine.AddFacts(b.id(), {{1}}).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.Results(r.id()), (std::vector<Tuple>{{2}}));

  ASSERT_TRUE(engine.AddFacts(b.id(), {{2}}).ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_EQ(report.strata_recomputed, 1u);
  EXPECT_EQ(engine.ResultSize(r.id()), 0u);
}

TEST(IncrementalSemanticsTest, FirstUpdateIsFullEvaluation) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y] = dsl.Vars<2>();
  path(x, y) <<= edge(x, y);
  edge.Fact(1, 2);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_TRUE(report.full);
  EXPECT_EQ(engine.ResultSize(path.id()), 1u);
}

// ---- API misuse: Status, not undefined behavior ----

TEST(EngineMisuseTest, UpdateBeforePrepareFails) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  (void)edge;
  core::Engine engine(&p, core::EngineConfig{});
  const util::Status status = engine.Update();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.ToString().find("Prepare"), std::string::npos);
}

TEST(EngineMisuseTest, RunBeforePrepareFails) {
  Program p;
  core::Engine engine(&p, core::EngineConfig{});
  const util::Status status = engine.Run();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(EngineMisuseTest, AddFactsUnknownPredicateFails) {
  Program p;
  Dsl dsl(&p);
  dsl.Relation("Edge", 2);
  core::Engine engine(&p, core::EngineConfig{});
  const util::Status status = engine.AddFacts(42, {{1, 2}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("unknown predicate"), std::string::npos);
}

TEST(EngineMisuseTest, AddFactsWrongArityFails) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  core::Engine engine(&p, core::EngineConfig{});
  const util::Status status = engine.AddFacts(edge.id(), {{1, 2, 3}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("arity"), std::string::npos);
  // Nothing was inserted for the offending tuple.
  EXPECT_EQ(p.db().Get(edge.id(), storage::DbKind::kDerived).size(), 0u);
}

TEST(EngineMisuseTest, AddFactsDuplicatesAreIdempotent) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y] = dsl.Vars<2>();
  path(x, y) <<= edge(x, y);
  edge.Fact(1, 2);

  core::Engine engine(&p, core::EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  // Re-adding an existing fact is a no-op epoch: set semantics dedups at
  // insert, so the watermark sees no new rows.
  ASSERT_TRUE(engine.AddFacts(edge.id(), {{1, 2}}).ok());
  core::EpochReport report;
  ASSERT_TRUE(engine.Update(&report).ok());
  EXPECT_EQ(report.seeded_rows, 0u);
  EXPECT_EQ(engine.ResultSize(path.id()), 1u);
}

}  // namespace
}  // namespace carac
