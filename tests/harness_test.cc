#include <gtest/gtest.h>

#include "harness/runner.h"
#include "harness/table.h"

namespace carac::harness {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "123"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Every line has the same length (alignment).
  size_t prev = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t nl = out.find('\n', pos);
    const size_t len = nl - pos;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    pos = nl + 1;
  }
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatSeconds(123.456), "123.5");
  EXPECT_EQ(FormatSeconds(1.23456), "1.235");
  EXPECT_EQ(FormatSeconds(0.0123456), "0.01235");
  EXPECT_EQ(FormatSpeedup(1234.5), "1234x");
  EXPECT_EQ(FormatSpeedup(2.5), "2.50x");
}

TEST(RunnerTest, MeasureOnceReportsResultsAndStats) {
  auto factory = [] {
    const auto edges = analysis::GenerateSparseGraph(9, 20, 30);
    return analysis::MakeTransitiveClosure(
        edges, analysis::RuleOrder::kHandOptimized);
  };
  Measurement m = MeasureOnce(factory, InterpretedConfig(true));
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.result_size, 0u);
  EXPECT_GT(m.stats.tuples_inserted, 0u);
  EXPECT_GE(m.seconds, 0.0);
}

TEST(RunnerTest, MeasureMedianIsDeterministicInResults) {
  auto factory = [] {
    const auto edges = analysis::GenerateSparseGraph(10, 20, 30);
    return analysis::MakeTransitiveClosure(
        edges, analysis::RuleOrder::kUnoptimized);
  };
  Measurement a = MeasureMedian(factory, InterpretedConfig(true), 3);
  Measurement b = MeasureMedian(factory, InterpretedConfig(false), 3);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.result_size, b.result_size);
}

TEST(RunnerTest, JitConfigBuilder) {
  core::EngineConfig config = JitConfigOf(
      backends::BackendKind::kBytecode, /*async=*/true, /*use_indexes=*/false,
      core::Granularity::kSpj, backends::CompileMode::kSnippet);
  EXPECT_EQ(config.mode, core::EvalMode::kJit);
  EXPECT_EQ(config.jit.backend, backends::BackendKind::kBytecode);
  EXPECT_TRUE(config.jit.async);
  EXPECT_FALSE(config.use_indexes);
  EXPECT_EQ(config.jit.granularity, core::Granularity::kSpj);
  EXPECT_EQ(config.jit.mode, backends::CompileMode::kSnippet);
}

TEST(RunnerTest, PropagatesPrepareFailure) {
  auto factory = [] {
    analysis::Workload w;
    w.name = "bad";
    w.program = std::make_unique<datalog::Program>();
    datalog::Dsl dsl(w.program.get());
    auto seed = dsl.Relation("Seed", 1);
    auto a = dsl.Relation("A", 1);
    auto b = dsl.Relation("B", 1);
    auto x = dsl.Var();
    a(x) <<= seed(x) & !b(x);
    b(x) <<= a(x);  // Unstratifiable.
    w.output = a.id();
    return w;
  };
  Measurement m = MeasureOnce(factory, InterpretedConfig(true));
  EXPECT_FALSE(m.ok);
  EXPECT_FALSE(m.error.empty());
}

}  // namespace
}  // namespace carac::harness
