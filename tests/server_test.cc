// Concurrency test net for the socket serving layer (src/net/):
//
//   - Multi-client determinism: N concurrent clients run interleaved
//     sessions against one server; every session's response transcript
//     must be byte-identical to a serial-oracle replay of the same
//     session on a fresh server. The workload is partitioned (session i
//     touches only Edge_i/Path_i) so correct snapshot semantics make
//     each transcript a pure function of its own request stream — any
//     torn read, lost response, cross-session leak, or misrouted reply
//     breaks byte-identity.
//   - Reads complete while a write epoch is in flight: a write is parked
//     inside the engine's write critical section (the deterministic
//     write_stall_for_test hook — no timing games) and a second client
//     pinned to a different worker completes count/dump/stats against
//     the last CLOSED epoch's snapshot.
//   - Streaming dump regression: the zero-copy SortedRowIds dump path
//     must reproduce tests/goldens/tc.golden byte-for-byte (the golden
//     predates the streaming rewrite).
//
// The whole suite runs under TSan in CI (.github/workflows/ci.yml): the
// share-nothing dispatcher/worker routing and the copy-on-retire arena
// publication are exactly the kind of code where a missing
// happens-before edge hides until the scheduler gets unlucky.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "core/engine.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "harness/runner.h"
#include "net/commands.h"
#include "net/framing.h"
#include "net/server.h"
#include "util/status.h"

#ifndef CARAC_GOLDEN_DIR
#error "CARAC_GOLDEN_DIR must point at tests/goldens"
#endif

namespace carac {
namespace {

/// Fresh scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("carac_srv_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Unix socket paths live in sun_path (~107 bytes); build short ones
/// under /tmp instead of the (possibly deep) test temp root.
std::string SocketPath(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/carac_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// ---------------------------------------------------------------------------
// A minimal blocking protocol client.

class Client {
 public:
  static Client ConnectUnix(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CARAC_CHECK(fd >= 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CARAC_CHECK(path.size() < sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    CARAC_CHECK(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
        0);
    return Client(fd);
  }

  static Client ConnectTcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    CARAC_CHECK(fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    CARAC_CHECK(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
        0);
    return Client(fd);
  }

  Client(Client&& other) noexcept : fd_(other.fd_), buffer_(other.buffer_) {
    other.fd_ = -1;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    size_t offset = 0;
    while (offset < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + offset, framed.size() - offset, 0);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      offset += static_cast<size_t>(n);
    }
  }

  /// Reads one complete response — payload lines up to and including the
  /// "ok" / "err ..." terminator — and returns the raw wire bytes. A
  /// server that stops responding trips the receive timeout rather than
  /// hanging the test.
  std::string ReadResponse() {
    std::string out;
    std::string line;
    for (;;) {
      if (!NextLine(&line)) {
        ADD_FAILURE() << "connection closed mid-response; got so far: " << out;
        return out;
      }
      out += line;
      out += '\n';
      if (line == "ok" || line.rfind("err ", 0) == 0) return out;
    }
  }

  /// True when the peer has closed the connection (post-quit handshake).
  bool ReadEof() {
    char byte;
    for (;;) {
      const ssize_t n = ::recv(fd_, &byte, 1, 0);
      if (n < 0 && errno == EINTR) continue;
      return n == 0;
    }
  }

 private:
  explicit Client(int fd) : fd_(fd) {
    // A wedged server should fail the test, not hang it until the CTest
    // timeout reaps the whole suite.
    timeval timeout{};
    timeout.tv_sec = 60;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }

  bool NextLine(std::string* out) {
    for (;;) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        out->assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;  // EOF or timeout.
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  int fd_;
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// An in-process server over a fresh engine.

struct TestServer {
  std::unique_ptr<datalog::Program> program;
  std::unique_ptr<core::Engine> engine;
  std::mutex write_mutex;
  net::ServeContext ctx;
  std::unique_ptr<net::Server> server;
  std::string unix_path;

  void Start(const std::string& source, int num_workers, int tcp_port = -1,
             std::function<void()> write_stall = {}) {
    program = std::make_unique<datalog::Program>();
    ASSERT_TRUE(datalog::ParseDatalog(source, program.get()).ok());
    engine = std::make_unique<core::Engine>(
        program.get(), harness::InterpretedConfig(/*use_indexes=*/true));
    ASSERT_TRUE(engine->Prepare().ok());

    ctx.program = program.get();
    ctx.engine = engine.get();
    ctx.snapshot_reads = true;
    ctx.deterministic_replies = true;
    ctx.write_mutex = &write_mutex;
    ctx.write_stall_for_test = std::move(write_stall);

    net::ServerConfig config;
    unix_path = SocketPath("srv");
    config.unix_path = unix_path;
    config.tcp_port = tcp_port;
    config.num_workers = num_workers;
    server = std::make_unique<net::Server>(&ctx, config);
    ASSERT_TRUE(server->Start().ok());
  }

  void Stop() {
    server->RequestShutdown();
    server->Wait();
  }
};

// ---------------------------------------------------------------------------
// The partitioned workload: session i owns Edge_i/Path_i exclusively, so
// its responses cannot depend on how OTHER sessions interleave.

constexpr int kPartitions = 8;

std::string PartitionedProgram() {
  std::ostringstream out;
  for (int i = 0; i < kPartitions; ++i) {
    out << "Path" << i << "(x,y) :- Edge" << i << "(x,y).\n"
        << "Path" << i << "(x,z) :- Path" << i << "(x,y), Edge" << i
        << "(y,z).\n";
  }
  return out.str();
}

/// Session i loads a chain of (3 + i) edges; the transitive closure of a
/// chain with E edges has E*(E+1)/2 pairs — distinct per session, so a
/// cross-session mixup cannot produce an identical count by accident.
int ChainEdges(int i) { return 3 + i; }
int ExpectedClosure(int i) { return ChainEdges(i) * (ChainEdges(i) + 1) / 2; }

std::string WriteChainCsv(const std::string& dir, int i) {
  const std::string path = dir + "/edges" + std::to_string(i) + ".csv";
  std::ofstream out(path);
  for (int e = 0; e < ChainEdges(i); ++e) {
    out << (e + 1) << ',' << (e + 2) << '\n';
  }
  return path;
}

struct Command {
  std::string line;
  bool silent = false;  // Blank/comment lines get no response.
};

std::vector<Command> SessionScript(int i, const std::string& csv_path) {
  const std::string suffix = std::to_string(i);
  return {
      {"", true},
      {"   # session " + suffix + " warming up", true},
      {"load Edge" + suffix + " " + csv_path},
      {"count NoSuchRelation" + suffix},  // Deterministic diagnostic.
      {"update"},
      {"count Path" + suffix},
      {"dump Path" + suffix},
      {"quit"},
  };
}

/// Runs one session to completion and returns the concatenated raw wire
/// responses — the byte string the determinism test compares.
std::string RunSession(Client* client, const std::vector<Command>& script) {
  std::string transcript;
  for (const Command& command : script) {
    client->Send(command.line);
    if (!command.silent) transcript += client->ReadResponse();
  }
  EXPECT_TRUE(client->ReadEof()) << "server did not close after quit";
  return transcript;
}

/// Runs sessions 0..n-1 against a FRESH server. Concurrent mode races
/// them on n threads; serial mode (the oracle) runs each to completion
/// before the next starts.
std::vector<std::string> RunSessionNet(int n, bool concurrent,
                                       int num_workers,
                                       const std::vector<std::string>& csvs) {
  TestServer ts;
  ts.Start(PartitionedProgram(), num_workers);
  std::vector<std::string> transcripts(static_cast<size_t>(n));
  auto run_one = [&](int i) {
    Client client = Client::ConnectUnix(ts.unix_path);
    transcripts[static_cast<size_t>(i)] =
        RunSession(&client, SessionScript(i, csvs[static_cast<size_t>(i)]));
  };
  if (concurrent) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) threads.emplace_back(run_one, i);
    for (std::thread& t : threads) t.join();
  } else {
    for (int i = 0; i < n; ++i) run_one(i);
  }
  ts.Stop();
  return transcripts;
}

TEST(ServerTest, MultiClientSessionsMatchSerialOracle) {
  const std::string dir = ScratchDir("determinism");
  std::vector<std::string> csvs;
  for (int i = 0; i < kPartitions; ++i) csvs.push_back(WriteChainCsv(dir, i));

  for (const int n : {2, 4, 8}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<std::string> oracle =
        RunSessionNet(n, /*concurrent=*/false, /*num_workers=*/1, csvs);
    const std::vector<std::string> live =
        RunSessionNet(n, /*concurrent=*/true, /*num_workers=*/4, csvs);
    for (int i = 0; i < n; ++i) {
      SCOPED_TRACE("session=" + std::to_string(i));
      EXPECT_EQ(live[static_cast<size_t>(i)], oracle[static_cast<size_t>(i)]);
      // Guard against the oracle and the live run agreeing on garbage.
      EXPECT_NE(oracle[static_cast<size_t>(i)].find(
                    "Path" + std::to_string(i) + ": " +
                    std::to_string(ExpectedClosure(i)) + " rows"),
                std::string::npos)
          << oracle[static_cast<size_t>(i)];
      EXPECT_NE(oracle[static_cast<size_t>(i)].find(
                    "err serve: unknown relation: NoSuchRelation"),
                std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// Reads complete while a write epoch is in flight.

/// Deterministic write-stall: Arm() makes the NEXT write park inside the
/// engine's write critical section until Release(). No sleeps anywhere —
/// the test sequences on the condition variable.
struct WriteStall {
  std::mutex m;
  std::condition_variable cv;
  bool armed = false;
  bool stalled = false;
  bool released = false;

  std::function<void()> Hook() {
    return [this] {
      std::unique_lock<std::mutex> lock(m);
      if (!armed) return;
      armed = false;
      stalled = true;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
  }
  void Arm() {
    std::lock_guard<std::mutex> lock(m);
    armed = true;
  }
  void AwaitStalled() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return stalled; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(m);
    released = true;
    cv.notify_all();
  }
};

TEST(ServerTest, ReadsCompleteWhileWriteEpochInFlight) {
  const std::string dir = ScratchDir("stall");
  const std::string csv = WriteChainCsv(dir, 0);
  WriteStall stall;
  TestServer ts;
  ts.Start(PartitionedProgram(), /*num_workers=*/2, /*tcp_port=*/-1,
           stall.Hook());

  // Sessions are pinned round-robin in accept order; completing a
  // request on `writer` before `reader` connects guarantees the two land
  // on different workers.
  Client writer = Client::ConnectUnix(ts.unix_path);
  writer.Send("count Path0");
  EXPECT_EQ(writer.ReadResponse(), "| Path0: 0 rows\nok\n");
  Client reader = Client::ConnectUnix(ts.unix_path);
  reader.Send("count Path0");
  EXPECT_EQ(reader.ReadResponse(), "| Path0: 0 rows\nok\n");

  writer.Send("load Edge0 " + csv);  // Unarmed: passes through the hook.
  writer.ReadResponse();

  stall.Arm();
  writer.Send("update");  // Parks inside the write section.
  stall.AwaitStalled();

  // The write epoch is open RIGHT NOW, and stays open until Release().
  // Every read below must still complete — served from the snapshot of
  // the last closed epoch, in which the loaded facts are not yet
  // visible. If reads took the write path (or the write mutex), these
  // would hang until the receive timeout fails the test.
  reader.Send("count Edge0");
  EXPECT_EQ(reader.ReadResponse(), "| Edge0: 0 rows\nok\n");
  reader.Send("dump Path0");
  EXPECT_EQ(reader.ReadResponse(), "ok\n");
  reader.Send("stats");
  const std::string stats = reader.ReadResponse();
  EXPECT_NE(stats.find("ok\n"), std::string::npos);

  stall.Release();
  EXPECT_EQ(writer.ReadResponse(), "ok\n");  // The stalled update lands.

  // The closed epoch is now visible to everyone.
  reader.Send("count Path0");
  EXPECT_EQ(reader.ReadResponse(),
            "| Path0: " + std::to_string(ExpectedClosure(0)) + " rows\nok\n");

  writer.Send("quit");
  EXPECT_EQ(writer.ReadResponse(), "ok\n");
  EXPECT_TRUE(writer.ReadEof());
  reader.Send("quit");
  EXPECT_EQ(reader.ReadResponse(), "ok\n");
  EXPECT_TRUE(reader.ReadEof());
  ts.Stop();
}

// ---------------------------------------------------------------------------
// TCP transport, error contract, and shutdown hygiene.

TEST(ServerTest, TcpSmokeAndErrorContract) {
  TestServer ts;
  ts.Start(PartitionedProgram(), /*num_workers=*/2, /*tcp_port=*/0);
  ASSERT_GT(ts.server->tcp_port(), 0);

  Client client = Client::ConnectTcp(ts.server->tcp_port());
  client.Send("count Path0");
  EXPECT_EQ(client.ReadResponse(), "| Path0: 0 rows\nok\n");
  client.Send("bogus");
  EXPECT_EQ(client.ReadResponse(), "err serve: unknown command: bogus\n");
  client.Send("update trailing");
  EXPECT_EQ(client.ReadResponse(),
            "err serve: update takes no arguments (got \"trailing\")\n");
  client.Send("load Edge0");
  EXPECT_EQ(client.ReadResponse(), "err serve: load needs a csv path\n");
  client.Send("quit");
  EXPECT_EQ(client.ReadResponse(), "ok\n");
  EXPECT_TRUE(client.ReadEof());
  ts.Stop();
  EXPECT_FALSE(ts.server->fatal_error());
}

TEST(ServerTest, ShutdownUnlinksUnixSocket) {
  TestServer ts;
  ts.Start(PartitionedProgram(), /*num_workers=*/1);
  EXPECT_TRUE(std::filesystem::exists(ts.unix_path));
  ts.Stop();
  EXPECT_FALSE(std::filesystem::exists(ts.unix_path));
}

TEST(ServerTest, AbruptDisconnectDoesNotWedgeOtherSessions) {
  TestServer ts;
  ts.Start(PartitionedProgram(), /*num_workers=*/2);
  {
    Client rude = Client::ConnectUnix(ts.unix_path);
    rude.Send("count Path0");
    rude.ReadResponse();
  }  // Closed without quit: the dispatcher must retire it on EOF.
  Client polite = Client::ConnectUnix(ts.unix_path);
  polite.Send("count Path1");
  EXPECT_EQ(polite.ReadResponse(), "| Path1: 0 rows\nok\n");
  polite.Send("quit");
  EXPECT_EQ(polite.ReadResponse(), "ok\n");
  EXPECT_TRUE(polite.ReadEof());
  ts.Stop();
}

// ---------------------------------------------------------------------------
// Streaming dump regression: the zero-copy SortedRowIds path must keep
// reproducing the committed golden byte-for-byte, in both read modes.

class CollectingWriter : public net::ResponseWriter {
 public:
  void Payload(std::string_view line) override {
    text_.append(line);
    text_ += '\n';
  }
  void Error(std::string_view message) override {
    ADD_FAILURE() << "unexpected diagnostic: " << message;
  }
  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

TEST(ServerTest, StreamingDumpMatchesTcGolden) {
  const auto edges = analysis::GenerateSparseGraph(
      /*seed=*/11, /*num_vertices=*/300, /*num_edges=*/900, /*zipf_s=*/1.1);
  analysis::Workload w = analysis::MakeTransitiveClosure(
      edges, analysis::RuleOrder::kHandOptimized);
  core::Engine engine(w.program.get(),
                      harness::InterpretedConfig(/*use_indexes=*/true));
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());

  std::ifstream in(std::string(CARAC_GOLDEN_DIR) + "/tc.golden");
  ASSERT_TRUE(in.good());
  std::stringstream golden;
  golden << in.rdbuf();
  ASSERT_FALSE(golden.str().empty());

  const std::string dump_cmd = "dump " + w.program->PredicateName(w.output);
  net::ServeContext ctx;
  ctx.program = w.program.get();
  ctx.engine = &engine;

  ctx.snapshot_reads = true;  // Server read path: the published view.
  CollectingWriter snapshot;
  EXPECT_EQ(net::ExecuteServeLine(&ctx, dump_cmd, &snapshot),
            net::ServeOutcome::kOk);
  EXPECT_EQ(snapshot.text(), golden.str());

  ctx.snapshot_reads = false;  // Stdin-serve read path: the live store.
  CollectingWriter live;
  EXPECT_EQ(net::ExecuteServeLine(&ctx, dump_cmd, &live),
            net::ServeOutcome::kOk);
  EXPECT_EQ(live.text(), golden.str());
}

}  // namespace
}  // namespace carac
