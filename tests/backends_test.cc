#include <gtest/gtest.h>

#include "backends/backend.h"
#include "datalog/dsl.h"
#include "ir/interpreter.h"
#include "ir/lowering.h"

namespace carac::backends {
namespace {

using datalog::Dsl;
using datalog::Program;

struct Fixture {
  Program program;
  ir::IRProgram irp;
  datalog::PredicateId edge, path;

  Fixture() {
    Dsl dsl(&program);
    auto e = dsl.Relation("Edge", 2);
    auto p = dsl.Relation("Path", 2);
    edge = e.id();
    path = p.id();
    auto [x, y, z] = dsl.Vars<3>();
    p(x, y) <<= e(x, y);
    p(x, z) <<= p(x, y) & e(y, z);
    for (int i = 0; i < 8; ++i) e.Fact(i, i + 1);
    e.Fact(8, 0);
    CARAC_CHECK_OK(ir::LowerProgram(&program, true, &irp));
  }

  CompileRequest Request(CompileMode mode = CompileMode::kFull) {
    CompileRequest request;
    request.subtree = irp.root->Clone();
    request.stats = optimizer::StatsSnapshot::Capture(program.db());
    request.mode = mode;
    return request;
  }

  size_t RunUnit(CompiledUnit* unit) {
    ir::ExecContext ctx(&program.db());
    ir::Interpreter interp(&ctx);
    unit->Run(ctx, interp, *irp.root);
    return program.db().Get(path, storage::DbKind::kDerived).size();
  }
};

constexpr size_t kExpectedPaths = 81;  // 9-cycle: full 9x9 closure.

TEST(BackendFactoryTest, MakesAllKinds) {
  for (BackendKind kind :
       {BackendKind::kQuotes, BackendKind::kBytecode, BackendKind::kLambda,
        BackendKind::kIRGenerator}) {
    auto backend = MakeBackend(kind);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
  }
  EXPECT_STREQ(BackendKindName(BackendKind::kLambda), "lambda");
  EXPECT_STREQ(BackendKindName(BackendKind::kQuotes), "quotes");
}

TEST(LambdaBackendTest, FullProgramProducesClosure) {
  Fixture f;
  auto backend = MakeBackend(BackendKind::kLambda);
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend->Compile(f.Request(), &unit).ok());
  EXPECT_EQ(f.RunUnit(unit.get()), kExpectedPaths);
  EXPECT_NE(unit->Describe().find("lambda"), std::string::npos);
}

TEST(LambdaBackendTest, SnippetModeMatchesFull) {
  Fixture f;
  auto backend = MakeBackend(BackendKind::kLambda);
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend->Compile(f.Request(CompileMode::kSnippet), &unit).ok());
  EXPECT_EQ(f.RunUnit(unit.get()), kExpectedPaths);
}

TEST(IRGeneratorBackendTest, RewritesLiveTreeAndInterprets) {
  Fixture f;
  auto backend = MakeBackend(BackendKind::kIRGenerator);
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend->Compile(f.Request(), &unit).ok());
  EXPECT_EQ(f.RunUnit(unit.get()), kExpectedPaths);
}

TEST(BytecodeBackendTest, FullProgramProducesClosure) {
  Fixture f;
  auto backend = MakeBackend(BackendKind::kBytecode);
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend->Compile(f.Request(), &unit).ok());
  EXPECT_EQ(f.RunUnit(unit.get()), kExpectedPaths);
  EXPECT_NE(unit->Describe().find("bytecode"), std::string::npos);
}

TEST(BytecodeBackendTest, SnippetModeMatchesFull) {
  Fixture f;
  auto backend = MakeBackend(BackendKind::kBytecode);
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend->Compile(f.Request(CompileMode::kSnippet), &unit).ok());
  EXPECT_EQ(f.RunUnit(unit.get()), kExpectedPaths);
}

TEST(AtomOrderHelpersTest, CollectAndApplyRoundTrip) {
  Fixture f;
  AtomOrderMap orders = CollectAtomOrders(*f.irp.root);
  EXPECT_FALSE(orders.empty());
  // Reverse one subquery's atoms, apply, and verify the live tree changed.
  auto it = orders.begin();
  while (it != orders.end() && it->second.size() < 2) ++it;
  ASSERT_NE(it, orders.end());
  std::reverse(it->second.begin(), it->second.end());
  const uint32_t node = it->first;
  const auto expected_first = it->second[0].predicate;
  ApplyAtomOrders(orders, f.irp.root.get());
  f.irp.RebuildIndex();
  EXPECT_EQ(f.irp.by_id[node]->atoms[0].predicate, expected_first);
}

TEST(CompileRequestTest, ReorderFalseKeepsAtomOrder) {
  Fixture f;
  auto backend = MakeBackend(BackendKind::kLambda);
  CompileRequest request = f.Request();
  request.reorder = false;
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend->Compile(std::move(request), &unit).ok());
  EXPECT_EQ(f.RunUnit(unit.get()), kExpectedPaths);
}

}  // namespace
}  // namespace carac::backends
