#include <gtest/gtest.h>

#include <set>

#include "util/hash.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace carac::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad arity");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ParseInt64Test, AcceptsStrictIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
}

TEST(ParseInt64Test, RejectsGarbageAndOverflow) {
  int64_t v = 123;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("2x", &v));
  EXPECT_FALSE(ParseInt64("1 ", &v));
  EXPECT_FALSE(ParseInt64(" 5", &v));
  EXPECT_FALSE(ParseInt64("\t7", &v));
  EXPECT_FALSE(ParseInt64("+5", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));
  EXPECT_EQ(v, 123);  // untouched on failure
}

TEST(HashTest, Mix64SpreadsValues) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, CombineIsOrderDependent) {
  const uint64_t a = HashCombine(HashCombine(0, 1), 2);
  const uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.Next() != b.Next();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardSmallIndices) {
  Rng rng(13);
  int64_t low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 1.2) < 10) ++low;
  }
  // The first 1% of the range should receive far more than 1% of mass.
  EXPECT_GT(low, n / 20);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.NextZipf(50, 1.1), 50u);
  EXPECT_EQ(rng.NextZipf(1, 1.1), 0u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GT(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace carac::util
