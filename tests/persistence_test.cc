// Durable snapshots + fact-log recovery. Three properties are pinned:
//
//   1. Round trip: a snapshot written at fixpoint and opened in a fresh
//      process must reproduce SortedRows byte-identical to the committed
//      goldens — across push/pull engines, 1/2/4 threads and the JIT —
//      and the loaded database must accept further Update() epochs that
//      stay byte-identical to a run that never persisted.
//   2. Crash recovery: for EVERY truncation point of the fact log,
//      recovery replays exactly the committed epoch prefix; for every
//      single-byte corruption under a checksum, recovery either still
//      replays a committed prefix or fails with a diagnostic Status.
//      Never a partial epoch, never a crash.
//   3. Contract: misuse and unreadable/foreign files are Status, not UB.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "core/engine.h"
#include "datalog/dsl.h"
#include "storage/factlog.h"
#include "storage/snapshot.h"

#ifndef CARAC_GOLDEN_DIR
#error "CARAC_GOLDEN_DIR must point at tests/goldens"
#endif

namespace carac {
namespace {

using datalog::Dsl;
using datalog::Program;
using storage::Tuple;

std::string Render(const std::vector<Tuple>& rows) {
  std::ostringstream out;
  for (const Tuple& t : rows) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << '\t';
      out << t[i];
    }
    out << '\n';
  }
  return out.str();
}

std::string ReadGolden(const std::string& name) {
  const std::string path =
      std::string(CARAC_GOLDEN_DIR) + "/" + name + ".golden";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  std::stringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

/// Fresh scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("carac_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

// ---- Round trip pinned to the committed goldens ----

/// Saves a tc run at fixpoint-minus-two-batches, restores it under
/// `config` in a fresh program, applies the remaining batches through
/// Update(), and requires the final rows to be byte-identical to the
/// SAME golden the never-persisted incremental and one-shot suites pin.
void CheckTcPersistedUpdate(
    const core::EngineConfig& base_config,
    const std::function<void(analysis::Workload&)>& customize = {}) {
  const auto edges = analysis::GenerateSparseGraph(
      /*seed=*/11, /*num_vertices=*/300, /*num_edges=*/900, /*zipf_s=*/1.1);
  const size_t delta = edges.size() / 100;
  const size_t initial = edges.size() - delta * 2;
  const std::vector<analysis::Edge> head(edges.begin(),
                                         edges.begin() + initial);

  const std::string dir = ScratchDir("tc_roundtrip");
  core::EngineConfig config = base_config;
  config.snapshot_dir = dir;

  // First life: full run over the head, one update batch, then a
  // checkpoint followed by one LOGGED batch — so recovery exercises
  // both the snapshot and the log tail.
  {
    analysis::Workload w = analysis::MakeTransitiveClosure(
        head, analysis::RuleOrder::kHandOptimized);
    if (customize) customize(w);
    core::Engine engine(w.program.get(), config);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    CARAC_CHECK_OK(engine.Checkpoint());

    const datalog::PredicateId edge = w.relations.at("Edge");
    std::vector<Tuple> batch;
    for (size_t i = initial; i < initial + delta; ++i) {
      batch.push_back({edges[i].first, edges[i].second});
    }
    CARAC_CHECK_OK(engine.AddFacts(edge, batch));
    CARAC_CHECK_OK(engine.Update());
  }

  // Second life: re-parse the program source (same head facts), restore
  // snapshot + log, then absorb the final batch incrementally.
  analysis::Workload w = analysis::MakeTransitiveClosure(
      head, analysis::RuleOrder::kHandOptimized);
  if (customize) customize(w);
  core::Engine engine(w.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  core::RestoreInfo info;
  CARAC_CHECK_OK(engine.Restore(&info));
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_epoch, 1u);
  EXPECT_EQ(info.epochs_replayed, 1u);

  const datalog::PredicateId edge = w.relations.at("Edge");
  std::vector<Tuple> batch;
  for (size_t i = initial + delta; i < edges.size(); ++i) {
    batch.push_back({edges[i].first, edges[i].second});
  }
  CARAC_CHECK_OK(engine.AddFacts(edge, batch));
  core::EpochReport report;
  CARAC_CHECK_OK(engine.Update(&report));
  EXPECT_FALSE(report.full);  // The restored engine continues incrementally.
  EXPECT_EQ(Render(engine.Results(w.output)), ReadGolden("tc"));
}

TEST(PersistenceGoldenTest, TcPushEngine) {
  CheckTcPersistedUpdate(core::EngineConfig{});
}

TEST(PersistenceGoldenTest, TcPullEngine) {
  core::EngineConfig config;
  config.engine_style = ir::EngineStyle::kPull;
  CheckTcPersistedUpdate(config);
}

TEST(PersistenceGoldenTest, TcParallel) {
  for (int threads : {2, 4}) {
    core::EngineConfig config;
    config.num_threads = threads;
    config.parallel_min_outer_rows = 1;
    CheckTcPersistedUpdate(config);
  }
}

TEST(PersistenceGoldenTest, TcJitBytecode) {
  core::EngineConfig config;
  config.mode = core::EvalMode::kJit;
  config.jit.backend = backends::BackendKind::kBytecode;
  CheckTcPersistedUpdate(config);
}

TEST(PersistenceGoldenTest, Andersen) {
  analysis::SListConfig slist;
  slist.scale = 2;

  // Split every relation's facts: all but ~1% pre-persistence, the tail
  // applied after restore (mirrors incremental_test's Andersen split).
  analysis::Workload setup =
      analysis::MakeAndersen(slist, analysis::RuleOrder::kHandOptimized);
  storage::DatabaseSet& setup_db = setup.program->db();
  std::vector<std::vector<Tuple>> initial(setup_db.NumRelations());
  std::vector<std::vector<Tuple>> tail(setup_db.NumRelations());
  for (storage::RelationId id = 0; id < setup_db.NumRelations(); ++id) {
    const storage::Relation& rel = setup_db.Get(id, storage::DbKind::kDerived);
    const size_t rows = rel.NumRows();
    const size_t tail_n = rows >= 10 ? std::max<size_t>(1, rows / 100) : 0;
    for (storage::RowId row = 0; row < rows; ++row) {
      (row < rows - tail_n ? initial : tail)[id].push_back(
          rel.View(row).ToTuple());
    }
    setup_db.ClearFacts(id);
  }

  const std::string dir = ScratchDir("andersen_roundtrip");
  core::EngineConfig config;
  config.snapshot_dir = dir;
  {
    core::Engine engine(setup.program.get(), config);
    for (storage::RelationId id = 0; id < setup_db.NumRelations(); ++id) {
      CARAC_CHECK_OK(engine.AddFacts(id, initial[id]));
    }
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    CARAC_CHECK_OK(engine.Checkpoint());
  }

  // Fresh program: construction loads the FULL fact set, which the
  // snapshot must replace wholesale (it captures the head-only state).
  analysis::Workload w =
      analysis::MakeAndersen(slist, analysis::RuleOrder::kHandOptimized);
  core::Engine engine(w.program.get(), config);
  CARAC_CHECK_OK(engine.Prepare());
  core::RestoreInfo info;
  CARAC_CHECK_OK(engine.Restore(&info));
  EXPECT_TRUE(info.snapshot_loaded);

  size_t tail_total = 0;
  for (storage::RelationId id = 0; id < w.program->db().NumRelations();
       ++id) {
    CARAC_CHECK_OK(engine.AddFacts(id, tail[id]));
    tail_total += tail[id].size();
  }
  ASSERT_GT(tail_total, 0u);
  core::EpochReport report;
  CARAC_CHECK_OK(engine.Update(&report));
  EXPECT_FALSE(report.full);
  EXPECT_EQ(Render(engine.Results(w.output)), ReadGolden("andersen"));
}

// ---- Interned symbols survive save, log replay and further interning ----

TEST(PersistenceSymbolTest, SymbolsRoundTripThroughSnapshotAndLog) {
  auto build = [](Program* p, datalog::PredicateId* edge_out,
                  datalog::PredicateId* path_out) {
    Dsl dsl(p);
    auto edge = dsl.Relation("Edge", 2);
    auto path = dsl.Relation("Path", 2);
    auto [x, y, z] = dsl.Vars<3>();
    path(x, y) <<= edge(x, y);
    path(x, z) <<= path(x, y) & edge(y, z);
    p->AddFact(edge.id(), {p->Intern("alpha"), p->Intern("beta")});
    *edge_out = edge.id();
    *path_out = path.id();
  };

  const std::string dir = ScratchDir("symbols");
  core::EngineConfig config;
  config.snapshot_dir = dir;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;

  // Life 1: evaluate the source facts; the epoch commits to the log
  // (no snapshot yet).
  {
    Program p;
    build(&p, &edge, &path);
    core::Engine engine(&p, config);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
  }

  // Life 2: recover (log-only replay), then add facts that intern NEW
  // symbols — they must travel through the log's symbol records.
  std::vector<Tuple> life2_results;
  {
    Program p;
    build(&p, &edge, &path);
    core::Engine engine(&p, config);
    CARAC_CHECK_OK(engine.Prepare());
    core::RestoreInfo info;
    CARAC_CHECK_OK(engine.Restore(&info));
    EXPECT_FALSE(info.snapshot_loaded);
    EXPECT_EQ(info.epochs_replayed, 1u);
    CARAC_CHECK_OK(engine.AddFacts(
        edge, {{p.Intern("beta"), p.Intern("gamma")}}));
    CARAC_CHECK_OK(engine.Update());
    life2_results = engine.Results(path);
    EXPECT_EQ(life2_results.size(), 3u);  // a-b, b-g, a-g.
  }

  // Life 3: recover again; the replay must re-intern "gamma" to the
  // identical id, making the rows byte-identical.
  {
    Program p;
    build(&p, &edge, &path);
    core::Engine engine(&p, config);
    CARAC_CHECK_OK(engine.Prepare());
    core::RestoreInfo info;
    CARAC_CHECK_OK(engine.Restore(&info));
    EXPECT_EQ(info.epochs_replayed, 2u);
    EXPECT_EQ(engine.Results(path), life2_results);
    EXPECT_EQ(p.db().symbols().Lookup(life2_results.back()[1]), "gamma");
  }
}

// ---- Crash-recovery matrix ----

/// Builds a serving run whose durable dir holds a snapshot at epoch 1
/// plus a log with three committed epochs (2, 3, 4), and records the
/// expected Path rows at every epoch boundary.
struct CrashFixture {
  std::string dir;
  std::vector<std::vector<Tuple>> models;  // models[e] = rows at epoch e.
  std::vector<unsigned char> log_bytes;
  storage::FactLog::ReplayResult intact;

  static void BuildProgram(Program* p, datalog::PredicateId* edge,
                           datalog::PredicateId* path) {
    Dsl dsl(p);
    auto e = dsl.Relation("Edge", 2);
    auto pa = dsl.Relation("Path", 2);
    auto [x, y, z] = dsl.Vars<3>();
    pa(x, y) <<= e(x, y);
    pa(x, z) <<= pa(x, y) & e(y, z);
    *edge = e.id();
    *path = pa.id();
  }

  explicit CrashFixture(const std::string& name) {
    dir = ScratchDir(name);
    core::EngineConfig config;
    config.snapshot_dir = dir;
    Program p;
    datalog::PredicateId edge = 0;
    datalog::PredicateId path = 0;
    BuildProgram(&p, &edge, &path);
    core::Engine engine(&p, config);
    CARAC_CHECK_OK(engine.AddFacts(edge, {{1, 2}, {2, 3}}));
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Update());  // Epoch 1 (full).
    CARAC_CHECK_OK(engine.Checkpoint());
    models.resize(5);
    models[1] = engine.Results(path);
    const std::vector<std::vector<Tuple>> batches = {
        {{3, 4}}, {{4, 5}}, {{5, 1}}};
    for (size_t b = 0; b < batches.size(); ++b) {
      CARAC_CHECK_OK(engine.AddFacts(edge, batches[b]));
      CARAC_CHECK_OK(engine.Update());  // Epochs 2, 3, 4.
      models[2 + b] = engine.Results(path);
    }
    log_bytes = ReadFileBytes(dir + "/factlog.bin");
    CARAC_CHECK_OK(
        storage::FactLog::Replay(dir + "/factlog.bin", &intact));
    CARAC_CHECK(intact.epochs.size() == 3);
  }

  /// Recovery attempt against the fixture's snapshot and `log` bytes.
  /// Returns the recovery Status; on success fills epoch + rows.
  util::Status Recover(const std::vector<unsigned char>& log,
                       uint64_t* epoch, std::vector<Tuple>* rows) {
    const std::string attempt = ScratchDir("crash_attempt");
    std::filesystem::copy_file(
        dir + "/snapshot.bin", attempt + "/snapshot.bin",
        std::filesystem::copy_options::overwrite_existing);
    WriteFileBytes(attempt + "/factlog.bin", log);
    core::EngineConfig config;
    config.snapshot_dir = attempt;
    Program p;
    datalog::PredicateId edge = 0;
    datalog::PredicateId path = 0;
    BuildProgram(&p, &edge, &path);
    core::Engine engine(&p, config);
    CARAC_CHECK_OK(engine.Prepare());
    util::Status status = engine.Restore();
    if (status.ok()) {
      *epoch = p.db().epoch();
      *rows = engine.Results(path);
    }
    return status;
  }
};

TEST(CrashRecoveryTest, EveryLogTruncationRecoversTheCommittedPrefix) {
  CrashFixture fx("crash_truncate");
  // Committed epochs whose commit record survives a truncation to T.
  auto committed_at = [&](size_t t) {
    uint64_t epoch = 1;  // The snapshot's epoch.
    for (const auto& e : fx.intact.epochs) {
      if (e.end_offset <= t) epoch = e.epoch;
    }
    return epoch;
  };
  for (size_t t = 0; t <= fx.log_bytes.size(); ++t) {
    std::vector<unsigned char> log(fx.log_bytes.begin(),
                                   fx.log_bytes.begin() + t);
    uint64_t epoch = 0;
    std::vector<Tuple> rows;
    util::Status status = fx.Recover(log, &epoch, &rows);
    ASSERT_TRUE(status.ok())
        << "truncation at byte " << t << ": " << status.ToString();
    EXPECT_EQ(epoch, committed_at(t)) << "truncation at byte " << t;
    EXPECT_EQ(rows, fx.models[epoch]) << "truncation at byte " << t;
  }
}

TEST(CrashRecoveryTest, EveryLogBitFlipIsPrefixOrDiagnostic) {
  CrashFixture fx("crash_flip");
  size_t diagnostics = 0;
  for (size_t i = 0; i < fx.log_bytes.size(); ++i) {
    std::vector<unsigned char> log = fx.log_bytes;
    log[i] ^= 0x01;
    uint64_t epoch = 0;
    std::vector<Tuple> rows;
    util::Status status = fx.Recover(log, &epoch, &rows);
    if (!status.ok()) {
      ++diagnostics;
      continue;  // Diagnostic refusal is a permitted outcome.
    }
    // The other permitted outcome: a committed prefix — the state at
    // SOME epoch boundary, never between two.
    ASSERT_GE(epoch, 1u) << "flip at byte " << i;
    ASSERT_LE(epoch, 4u) << "flip at byte " << i;
    EXPECT_EQ(rows, fx.models[epoch]) << "flip at byte " << i;
  }
  // The checksums must actually be engaging.
  EXPECT_GT(diagnostics, fx.log_bytes.size() / 2);
}

TEST(CrashRecoveryTest, EverySnapshotBitFlipIsRejected) {
  CrashFixture fx("crash_snapflip");
  const std::vector<unsigned char> snap =
      ReadFileBytes(fx.dir + "/snapshot.bin");
  const std::string attempt = ScratchDir("snapflip_attempt");
  for (size_t i = 0; i < snap.size(); ++i) {
    std::vector<unsigned char> bytes = snap;
    bytes[i] ^= 0x01;
    WriteFileBytes(attempt + "/snapshot.bin", bytes);
    storage::DatabaseSet db;
    util::Status status = db.OpenSnapshot(attempt + "/snapshot.bin");
    EXPECT_FALSE(status.ok()) << "flip at byte " << i << " went undetected";
  }
}

TEST(CrashRecoveryTest, TornTailIsDiscardedAndTruncated) {
  CrashFixture fx("crash_torn");
  // Append a half-written record: a valid-looking tag + oversized length.
  std::vector<unsigned char> log = fx.log_bytes;
  log.push_back(1);  // kBatch tag.
  log.push_back(0xFF);
  log.push_back(0xFF);
  uint64_t epoch = 0;
  std::vector<Tuple> rows;
  CARAC_CHECK_OK(fx.Recover(log, &epoch, &rows));
  EXPECT_EQ(epoch, 4u);
  EXPECT_EQ(rows, fx.models[4]);
  // Recover() used a scratch dir; verify the truncation side effect via
  // Engine::Restore's info on a dedicated copy.
  const std::string attempt = ScratchDir("torn_attempt");
  std::filesystem::copy_file(
      fx.dir + "/snapshot.bin", attempt + "/snapshot.bin",
      std::filesystem::copy_options::overwrite_existing);
  WriteFileBytes(attempt + "/factlog.bin", log);
  Program p;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;
  CrashFixture::BuildProgram(&p, &edge, &path);
  core::EngineConfig config;
  config.snapshot_dir = attempt;
  core::Engine engine(&p, config);
  CARAC_CHECK_OK(engine.Prepare());
  core::RestoreInfo info;
  CARAC_CHECK_OK(engine.Restore(&info));
  EXPECT_TRUE(info.log_tail_discarded);
  EXPECT_EQ(std::filesystem::file_size(attempt + "/factlog.bin"),
            fx.log_bytes.size());
}

// ---- Auto-checkpoint cadence ----

TEST(PersistenceLifecycleTest, AutoCheckpointEveryNEpochs) {
  const std::string dir = ScratchDir("auto_checkpoint");
  core::EngineConfig config;
  config.snapshot_dir = dir;
  config.checkpoint_every = 2;
  Program p;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;
  CrashFixture::BuildProgram(&p, &edge, &path);
  core::Engine engine(&p, config);
  CARAC_CHECK_OK(engine.AddFacts(edge, {{1, 2}}));
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Update());  // Epoch 1.
  EXPECT_FALSE(std::filesystem::exists(dir + "/snapshot.bin"));
  CARAC_CHECK_OK(engine.AddFacts(edge, {{2, 3}}));
  CARAC_CHECK_OK(engine.Update());  // Epoch 2: auto-checkpoint fires.
  EXPECT_TRUE(std::filesystem::exists(dir + "/snapshot.bin"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/factlog.bin"));
  CARAC_CHECK_OK(engine.AddFacts(edge, {{3, 4}}));
  CARAC_CHECK_OK(engine.Update());  // Epoch 3: log restarts.
  EXPECT_TRUE(std::filesystem::exists(dir + "/factlog.bin"));

  Program p2;
  CrashFixture::BuildProgram(&p2, &edge, &path);
  core::Engine engine2(&p2, config);
  CARAC_CHECK_OK(engine2.Prepare());
  core::RestoreInfo info;
  CARAC_CHECK_OK(engine2.Restore(&info));
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_epoch, 2u);
  EXPECT_EQ(info.epochs_replayed, 1u);
  EXPECT_EQ(engine2.Results(path), engine.Results(path));
}

TEST(PersistenceLifecycleTest, RestoreDropsUncommittedBatches) {
  // A batch appended but never sealed by an epoch commit must vanish
  // from BOTH memory and the log when Restore() rewinds the engine —
  // the live append handle must not seal buffered pre-restore records
  // into a later epoch whose facts the engine no longer holds.
  const std::string dir = ScratchDir("uncommitted");
  core::EngineConfig config;
  config.snapshot_dir = dir;
  Program p;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;
  CrashFixture::BuildProgram(&p, &edge, &path);
  core::Engine engine(&p, config);
  CARAC_CHECK_OK(engine.AddFacts(edge, {{1, 2}}));
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Update());  // Epoch 1.
  CARAC_CHECK_OK(engine.Checkpoint());
  const auto at_checkpoint = engine.Results(path);

  // Logged but never committed: Restore must rewind past it.
  CARAC_CHECK_OK(engine.AddFacts(edge, {{2, 3}}));
  core::RestoreInfo info;
  CARAC_CHECK_OK(engine.Restore(&info));
  EXPECT_EQ(info.snapshot_epoch, 1u);
  EXPECT_EQ(info.epochs_replayed, 0u);
  EXPECT_EQ(engine.Results(path), at_checkpoint);

  // Epoch 2, sealed after the restore: it must NOT resurrect {2, 3}.
  CARAC_CHECK_OK(engine.AddFacts(edge, {{9, 10}}));
  CARAC_CHECK_OK(engine.Update());
  const auto final_rows = engine.Results(path);
  EXPECT_EQ(engine.Results(edge),
            (std::vector<Tuple>{{1, 2}, {9, 10}}));

  Program p2;
  CrashFixture::BuildProgram(&p2, &edge, &path);
  core::Engine engine2(&p2, config);
  CARAC_CHECK_OK(engine2.Prepare());
  CARAC_CHECK_OK(engine2.Restore(&info));
  EXPECT_EQ(info.epochs_replayed, 1u);
  EXPECT_EQ(engine2.Results(path), final_rows);
  EXPECT_EQ(engine2.Results(edge),
            (std::vector<Tuple>{{1, 2}, {9, 10}}));
}

TEST(PersistenceLifecycleTest, FailedLogAppendInsertsNothing) {
  // Log-before-insert: when the batch cannot reach the fact log (here:
  // snapshot_dir names a regular file, so the directory cannot be
  // created), AddFacts must apply nothing — memory and durable state
  // stay agreed, just stale.
  const std::string dir = ScratchDir("log_fail");
  const std::string blocker = dir + "/blocker";
  WriteFileBytes(blocker, {'x'});
  Program p;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;
  CrashFixture::BuildProgram(&p, &edge, &path);
  core::EngineConfig config;
  config.snapshot_dir = blocker;
  core::Engine engine(&p, config);
  util::Status status = engine.AddFacts(edge, {{1, 2}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(p.db().Get(edge, storage::DbKind::kDerived).size(), 0u);
}

// ---- Contract: misuse and foreign input are Status, not UB ----

TEST(PersistenceContractTest, OpenSnapshotMissingFileIsNotFound) {
  storage::DatabaseSet db;
  util::Status status = db.OpenSnapshot(ScratchDir("missing") + "/nope.bin");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(PersistenceContractTest, OpenSnapshotIntoEmptySetAdoptsSchema) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  edge.Fact(1, 2);
  edge.Fact(2, 3);
  const std::string path = ScratchDir("adopt") + "/snapshot.bin";
  CARAC_CHECK_OK(p.db().SaveSnapshot(path));

  storage::DatabaseSet db;
  CARAC_CHECK_OK(db.OpenSnapshot(path));
  ASSERT_EQ(db.NumRelations(), 1u);
  EXPECT_EQ(db.RelationName(0), "Edge");
  EXPECT_EQ(db.RelationArity(0), 2u);
  EXPECT_EQ(db.Get(0, storage::DbKind::kDerived).SortedRows(),
            (std::vector<Tuple>{{1, 2}, {2, 3}}));
}

TEST(PersistenceContractTest, MixedIndexKindsSurviveSaveOpenByteIdentically) {
  // A database whose indexes use different organizations per column must
  // come back with exactly those kinds — even when the opening engine
  // declared different ones — and a re-save of the restored state must
  // reproduce the snapshot byte for byte.
  using storage::IndexKind;
  const std::string dir = ScratchDir("mixed_kinds");
  const std::string path = dir + "/snapshot.bin";
  {
    storage::DatabaseSet db;
    const storage::RelationId edge = db.AddRelation("Edge", 2);
    const storage::RelationId cost = db.AddRelation("Cost", 2);
    db.DeclareIndex(edge, 0, IndexKind::kHash);
    db.DeclareIndex(edge, 1, IndexKind::kBtree);
    db.DeclareIndex(cost, 1, IndexKind::kSortedArray);
    for (int64_t i = 0; i < 50; ++i) {
      db.Get(edge, storage::DbKind::kDerived).Insert({i, i % 7});
      db.Get(cost, storage::DbKind::kDerived).Insert({i, i * 3});
    }
    db.Get(edge, storage::DbKind::kDerived).AdvanceWatermark();
    CARAC_CHECK_OK(db.SaveSnapshot(path));
  }

  storage::DatabaseSet db;
  db.AddRelation("Edge", 2);
  db.AddRelation("Cost", 2);
  // The opening engine chose differently; the persisted kinds must win.
  db.DeclareIndex(0, 1, IndexKind::kHash);
  db.DeclareIndex(1, 1, IndexKind::kSorted);
  CARAC_CHECK_OK(db.OpenSnapshot(path));
  const storage::Relation& edge = db.Get(0, storage::DbKind::kDerived);
  const storage::Relation& cost = db.Get(1, storage::DbKind::kDerived);
  EXPECT_EQ(edge.IndexKindOf(0), IndexKind::kHash);
  EXPECT_EQ(edge.IndexKindOf(1), IndexKind::kBtree);
  EXPECT_EQ(cost.IndexKindOf(1), IndexKind::kSortedArray);
  // The restored indexes actually work over the restored contents.
  EXPECT_EQ(edge.Probe(1, 3).size(), 7u);
  std::vector<storage::RowId> rows;
  CARAC_CHECK_OK(cost.ProbeRange(1, 30, 60, &rows));
  EXPECT_EQ(rows.size(), 11u);  // Costs 30, 33, ..., 60.

  const std::string resaved = dir + "/resaved.bin";
  CARAC_CHECK_OK(db.SaveSnapshot(resaved));
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(resaved));
}

TEST(PersistenceContractTest, AdoptedSnapshotCarriesIndexKinds) {
  // Opening into an EMPTY set adopts the schema — index declarations
  // included, so a snapshot-only restart probes exactly like the saved
  // process did.
  using storage::IndexKind;
  const std::string path = ScratchDir("adopt_kinds") + "/snapshot.bin";
  {
    storage::DatabaseSet db;
    const storage::RelationId r = db.AddRelation("R", 2);
    db.DeclareIndex(r, 0, IndexKind::kBtree);
    for (int64_t i = 0; i < 10; ++i) {
      db.Get(r, storage::DbKind::kDerived).Insert({i % 3, i});
    }
    CARAC_CHECK_OK(db.SaveSnapshot(path));
  }
  storage::DatabaseSet db;
  CARAC_CHECK_OK(db.OpenSnapshot(path));
  const storage::Relation& r = db.Get(0, storage::DbKind::kDerived);
  ASSERT_TRUE(r.HasIndex(0));
  EXPECT_EQ(r.IndexKindOf(0), IndexKind::kBtree);
  EXPECT_EQ(r.Probe(0, 0).size(), 4u);  // Keys 0: rows 0, 3, 6, 9.
}

TEST(PersistenceGoldenTest, TcMixedKindsViaHints) {
  // End-to-end: per-column hints give the engine mixed-kind indexes; the
  // persisted run and the restored run pin the SAME golden as the
  // all-hash suites, and restore keeps the hinted kinds.
  CheckTcPersistedUpdate(core::EngineConfig{}, [](analysis::Workload& w) {
    w.program->HintIndexKind(w.relations.at("Edge"), 0,
                             storage::IndexKind::kBtree);
    w.program->HintIndexKind(w.relations.at("Path"), 1,
                             storage::IndexKind::kSortedArray);
  });
}

TEST(PersistenceContractTest, OpenSnapshotSchemaMismatchIsDiagnostic) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  edge.Fact(1, 2);
  const std::string path = ScratchDir("mismatch") + "/snapshot.bin";
  CARAC_CHECK_OK(p.db().SaveSnapshot(path));

  Program other;
  Dsl other_dsl(&other);
  other_dsl.Relation("Different", 3);
  util::Status status = other.db().OpenSnapshot(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("schema mismatch"), std::string::npos)
      << status.ToString();
}

TEST(PersistenceContractTest, SnapshotSymbolMismatchIsDiagnostic) {
  // Same schema, different parse-time string constants: the snapshot's
  // symbol table cannot serve an AST whose ids were interned against
  // other strings — silent remapping would change what every string
  // constant means.
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  p.AddFact(edge.id(), {p.Intern("alpha"), p.Intern("beta")});
  const std::string path = ScratchDir("sym_mismatch") + "/snapshot.bin";
  CARAC_CHECK_OK(p.db().SaveSnapshot(path));

  Program other;
  Dsl other_dsl(&other);
  auto other_edge = other_dsl.Relation("Edge", 2);
  other.AddFact(other_edge.id(),
                {other.Intern("omega"), other.Intern("beta")});
  util::Status status = other.db().OpenSnapshot(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("different program"), std::string::npos)
      << status.ToString();
}

TEST(PersistenceContractTest, RestoreWithUncommittedBatchesNeedsSnapshot) {
  // No snapshot to rewind to + batches applied but never sealed by an
  // epoch commit: Restore must refuse rather than truncate the unsealed
  // records out from under the in-memory facts.
  Program p;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;
  CrashFixture::BuildProgram(&p, &edge, &path);
  core::EngineConfig config;
  config.snapshot_dir = ScratchDir("uncommitted_nosnap");
  core::Engine engine(&p, config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.AddFacts(edge, {{1, 2}}));
  util::Status status = engine.Restore();
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("uncommitted"), std::string::npos)
      << status.ToString();
  // The refusal must leave the engine exactly as if Restore had not
  // been called: sealing the batch works, Restore becomes legal, and —
  // crucially — a FRESH process recovers the batch (the refused
  // Restore must not have demoted its log record to discardable-tail).
  CARAC_CHECK_OK(engine.Update());
  CARAC_CHECK_OK(engine.Restore());
  EXPECT_EQ(engine.ResultSize(path), 1u);

  Program p2;
  CrashFixture::BuildProgram(&p2, &edge, &path);
  core::Engine engine2(&p2, config);
  CARAC_CHECK_OK(engine2.Prepare());
  CARAC_CHECK_OK(engine2.Restore());
  EXPECT_EQ(engine2.Results(path), (std::vector<Tuple>{{1, 2}}));
}

TEST(PersistenceContractTest, StaleEngineCannotAppendToNewerLog) {
  // Session 1 seals epoch 1 into the log. Session 2 skips Restore: its
  // epoch counter restarts at 0, so letting it append would re-use
  // epoch numbers replay then skips — durably acknowledged batches
  // would silently vanish. The append must refuse and point at
  // Restore; after Restore the session proceeds normally.
  const std::string dir = ScratchDir("stale_engine");
  core::EngineConfig config;
  config.snapshot_dir = dir;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;
  {
    Program p;
    CrashFixture::BuildProgram(&p, &edge, &path);
    core::Engine engine(&p, config);
    CARAC_CHECK_OK(engine.AddFacts(edge, {{1, 2}}));
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Update());
  }
  Program p;
  CrashFixture::BuildProgram(&p, &edge, &path);
  core::Engine engine(&p, config);
  CARAC_CHECK_OK(engine.Prepare());
  util::Status status = engine.AddFacts(edge, {{2, 3}});
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("Restore"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(p.db().Get(edge, storage::DbKind::kDerived).size(), 0u);

  CARAC_CHECK_OK(engine.Restore());
  CARAC_CHECK_OK(engine.AddFacts(edge, {{2, 3}}));
  CARAC_CHECK_OK(engine.Update());
  EXPECT_EQ(engine.ResultSize(path), 3u);  // 1-2, 2-3, 1-3.
}

TEST(PersistenceContractTest, CheckpointWithoutDirIsFailedPrecondition) {
  Program p;
  Dsl dsl(&p);
  dsl.Relation("Edge", 2);
  core::Engine engine(&p, core::EngineConfig{});
  util::Status status = engine.Checkpoint();
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  status = engine.Restore();
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(PersistenceContractTest, RestoreBeforePrepareIsFailedPrecondition) {
  Program p;
  Dsl dsl(&p);
  dsl.Relation("Edge", 2);
  core::EngineConfig config;
  config.snapshot_dir = ScratchDir("unprepared");
  core::Engine engine(&p, config);
  util::Status status = engine.Restore();
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("Prepare"), std::string::npos);
}

TEST(PersistenceContractTest, RestoreWithNoDurableStateIsCleanNoOp) {
  Program p;
  datalog::PredicateId edge = 0;
  datalog::PredicateId path = 0;
  CrashFixture::BuildProgram(&p, &edge, &path);
  p.AddFact(edge, {1, 2});
  core::EngineConfig config;
  config.snapshot_dir = ScratchDir("empty_restore");
  core::Engine engine(&p, config);
  CARAC_CHECK_OK(engine.Prepare());
  core::RestoreInfo info;
  CARAC_CHECK_OK(engine.Restore(&info));
  EXPECT_FALSE(info.snapshot_loaded);
  EXPECT_EQ(info.epochs_replayed, 0u);
  CARAC_CHECK_OK(engine.Run());
  EXPECT_EQ(engine.ResultSize(path), 1u);
}

TEST(PersistenceContractTest, ReplayMissingLogIsNotFound) {
  storage::FactLog::ReplayResult replay;
  util::Status status = storage::FactLog::Replay(
      ScratchDir("no_log") + "/factlog.bin", &replay);
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(PersistenceContractTest, ForeignFileIsRejectedByBothReaders) {
  const std::string dir = ScratchDir("foreign");
  const std::string path = dir + "/junk.bin";
  std::ofstream(path) << "this is not a carac file, not even close......";
  storage::DatabaseSet db;
  EXPECT_FALSE(db.OpenSnapshot(path).ok());
  storage::FactLog::ReplayResult replay;
  EXPECT_FALSE(storage::FactLog::Replay(path, &replay).ok());
  std::unique_ptr<storage::FactLog> log;
  EXPECT_FALSE(storage::FactLog::OpenForAppend(path, &log).ok());
}

}  // namespace
}  // namespace carac
