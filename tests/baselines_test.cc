#include <gtest/gtest.h>

#include "baselines/dlx_like.h"
#include "baselines/souffle_like.h"

namespace carac::baselines {
namespace {

harness::WorkloadFactory TcFactory() {
  return [] {
    const auto edges = analysis::GenerateSparseGraph(3, 30, 45);
    return analysis::MakeTransitiveClosure(
        edges, analysis::RuleOrder::kHandOptimized);
  };
}

size_t ReferenceSize() {
  harness::Measurement m =
      harness::MeasureOnce(TcFactory(), harness::InterpretedConfig(true));
  CARAC_CHECK(m.ok);
  return m.result_size;
}

TEST(SouffleLikeTest, InterpreterMatchesReference) {
  BaselineResult r = RunSouffleLike(TcFactory(), SouffleMode::kInterpreter);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.result_size, ReferenceSize());
  EXPECT_GT(r.seconds, 0);
}

TEST(SouffleLikeTest, CompilerModeIncludesCompileCost) {
  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C++ compiler";
  }
  BaselineResult interp = RunSouffleLike(TcFactory(),
                                         SouffleMode::kInterpreter);
  BaselineResult compiled = RunSouffleLike(TcFactory(),
                                           SouffleMode::kCompiler);
  ASSERT_TRUE(compiled.ok) << compiled.error;
  EXPECT_EQ(compiled.result_size, ReferenceSize());
  // The real compiler invocation dominates on a tiny program — the effect
  // Table II shows for short-running queries.
  EXPECT_GT(compiled.seconds, interp.seconds);
}

TEST(SouffleLikeTest, AutoTunedMatchesReference) {
  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C++ compiler";
  }
  BaselineResult r = RunSouffleLike(TcFactory(), SouffleMode::kAutoTuned);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.result_size, ReferenceSize());
}

TEST(SouffleLikeTest, ModeNames) {
  EXPECT_STREQ(SouffleModeName(SouffleMode::kInterpreter), "interpreter");
  EXPECT_STREQ(SouffleModeName(SouffleMode::kCompiler), "compiler");
  EXPECT_STREQ(SouffleModeName(SouffleMode::kAutoTuned), "auto-tuned");
}

TEST(DlxLikeTest, NaiveEvaluationMatchesReference) {
  DlxResult r = RunDlxLike(TcFactory(), /*timeout_seconds=*/30);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.dnf);
  EXPECT_EQ(r.result_size, ReferenceSize());
}

TEST(DlxLikeTest, TimesOutAsDnf) {
  auto big = [] {
    analysis::CspaConfig config;
    config.total_tuples = 4000;
    return analysis::MakeCspa(config, analysis::RuleOrder::kUnoptimized);
  };
  DlxResult r = RunDlxLike(big, /*timeout_seconds=*/0.05);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.dnf);
}

TEST(DlxLikeTest, HandlesMultipleStrata) {
  auto factory = [] {
    return analysis::MakePrimes(60, analysis::RuleOrder::kHandOptimized);
  };
  DlxResult r = RunDlxLike(factory, /*timeout_seconds=*/30);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.dnf);
  EXPECT_EQ(r.result_size, 17u);  // Primes below 60.
}

}  // namespace
}  // namespace carac::baselines
