#include <gtest/gtest.h>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "core/engine.h"
#include "datalog/dsl.h"

namespace carac::ir {
namespace {

using datalog::Dsl;
using datalog::Program;

core::EngineConfig StyleConfig(EngineStyle style, bool indexes = true) {
  core::EngineConfig config;
  config.engine_style = style;
  config.use_indexes = indexes;
  return config;
}

TEST(PullEngineTest, TransitiveClosureMatchesPush) {
  auto run = [](EngineStyle style) {
    const auto edges = analysis::GenerateSparseGraph(17, 30, 50);
    analysis::Workload w = analysis::MakeTransitiveClosure(
        edges, analysis::RuleOrder::kHandOptimized);
    core::Engine engine(w.program.get(), StyleConfig(style));
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  EXPECT_EQ(run(EngineStyle::kPush), run(EngineStyle::kPull));
}

TEST(PullEngineTest, NegationAndBuiltins) {
  auto run = [](EngineStyle style) {
    Program p;
    Dsl dsl(&p);
    auto n = dsl.Relation("N", 1);
    auto odd = dsl.Relation("Odd", 1);
    auto even_sq = dsl.Relation("EvenSq", 2);
    auto [x, r, s] = dsl.Vars<3>();
    odd(x) <<= n(x) & dsl.Mod(x, 2, r) & dsl.Eq(r, 1);
    even_sq(x, s) <<= n(x) & !odd(x) & dsl.Mul(x, x, s);
    for (int i = 0; i < 12; ++i) n.Fact(i);
    core::Engine engine(&p, StyleConfig(style));
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(even_sq.id());
  };
  const auto push = run(EngineStyle::kPush);
  EXPECT_EQ(push, run(EngineStyle::kPull));
  EXPECT_EQ(push.size(), 6u);  // 0,2,4,6,8,10.
}

TEST(PullEngineTest, RepeatedVariableSelfJoin) {
  auto run = [](EngineStyle style) {
    Program p;
    Dsl dsl(&p);
    auto edge = dsl.Relation("Edge", 2);
    auto loops = dsl.Relation("Loops", 1);
    auto x = dsl.Var();
    loops(x) <<= edge(x, x);
    edge.Fact(1, 1);
    edge.Fact(1, 2);
    edge.Fact(3, 3);
    core::Engine engine(&p, StyleConfig(style));
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(loops.id());
  };
  const auto rows = run(EngineStyle::kPull);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows, run(EngineStyle::kPush));
}

TEST(PullEngineTest, UnindexedMatchesIndexed) {
  auto run = [](bool indexes) {
    const auto edges = analysis::GenerateSparseGraph(23, 25, 40);
    analysis::Workload w = analysis::MakeTransitiveClosure(
        edges, analysis::RuleOrder::kUnoptimized);
    core::Engine engine(w.program.get(),
                        StyleConfig(EngineStyle::kPull, indexes));
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(PullEngineTest, WorksUnderJit) {
  // The pull engine must compose with the JIT: interpreter fallback and
  // the lambda/irgen units all route through RunSubquery.
  auto run = [](backends::BackendKind backend) {
    analysis::CspaConfig config;
    config.total_tuples = 150;
    analysis::Workload w =
        analysis::MakeCspa(config, analysis::RuleOrder::kUnoptimized);
    core::EngineConfig ec;
    ec.mode = core::EvalMode::kJit;
    ec.engine_style = EngineStyle::kPull;
    ec.jit.backend = backend;
    core::Engine engine(w.program.get(), ec);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  const auto lambda = run(backends::BackendKind::kLambda);
  EXPECT_EQ(lambda, run(backends::BackendKind::kIRGenerator));
  EXPECT_FALSE(lambda.empty());
}

TEST(PullEngineTest, CspaModelsAgreeAcrossStyles) {
  auto run = [](EngineStyle style) {
    analysis::CspaConfig config;
    config.total_tuples = 250;
    analysis::Workload w =
        analysis::MakeCspa(config, analysis::RuleOrder::kHandOptimized);
    core::Engine engine(w.program.get(), StyleConfig(style));
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    std::vector<std::vector<storage::Tuple>> model;
    for (const char* rel : {"VFlow", "VAlias", "MAlias"}) {
      model.push_back(engine.Results(w.relations.at(rel)));
    }
    return model;
  };
  EXPECT_EQ(run(EngineStyle::kPush), run(EngineStyle::kPull));
}

TEST(PullEngineTest, StyleNameAndDefault) {
  EXPECT_STREQ(EngineStyleName(EngineStyle::kPush), "push");
  EXPECT_STREQ(EngineStyleName(EngineStyle::kPull), "pull");
  storage::DatabaseSet db;
  ExecContext ctx(&db);
  EXPECT_EQ(ctx.engine_style(), EngineStyle::kPush);
}

}  // namespace
}  // namespace carac::ir
