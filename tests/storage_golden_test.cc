// Storage-equivalence golden test: the observable output of evaluation —
// SortedRows() of the headline relation — must be bit-identical across
// every execution backend AND across storage-engine rewrites. The goldens
// under tests/goldens/ were committed when the relations were node-based
// hash sets; the columnar arena engine (and any future layout) must keep
// reproducing them exactly.
//
// To regenerate after an *intentional* semantic change:
//   CARAC_UPDATE_GOLDENS=1 ./storage_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "core/engine.h"
#include "datalog/dsl.h"
#include "harness/runner.h"
#include "storage/index.h"

#ifndef CARAC_GOLDEN_DIR
#error "CARAC_GOLDEN_DIR must point at tests/goldens"
#endif

namespace carac {
namespace {

using WorkloadFn = std::function<analysis::Workload()>;

analysis::Workload MakeTcWorkload() {
  const auto edges = analysis::GenerateSparseGraph(
      /*seed=*/11, /*num_vertices=*/300, /*num_edges=*/900, /*zipf_s=*/1.1);
  return analysis::MakeTransitiveClosure(edges,
                                         analysis::RuleOrder::kHandOptimized);
}

analysis::Workload MakeAndersenWorkload() {
  analysis::SListConfig config;
  config.scale = 2;
  return analysis::MakeAndersen(config, analysis::RuleOrder::kHandOptimized);
}

analysis::Workload MakeBoundedReachWorkload() {
  // Bounded reachability: the recursion's frontier column carries a
  // lower AND an upper comparison bound, so every evaluation path runs
  // its range-probe access path (or, with pushdown off / hash kinds,
  // the residual filtered scan) on every fixpoint iteration. The golden
  // pins that both paths emit byte-identical rows.
  const auto edges = analysis::GenerateSparseGraph(
      /*seed=*/23, /*num_vertices=*/250, /*num_edges=*/800, /*zipf_s=*/1.1);
  analysis::Workload w;
  w.name = "BoundedReach";
  w.program = std::make_unique<datalog::Program>();
  datalog::Dsl dsl(w.program.get());
  auto edge = dsl.Relation("Edge", 2);
  auto reach = dsl.Relation("Reach", 2);
  auto [x, y, z] = dsl.Vars<3>();
  reach(x, y) <<= edge(x, y);
  reach(x, z) <<= reach(x, y) & edge(y, z) & dsl.Ge(y, 20) & dsl.Lt(y, 200);
  w.output = reach.id();
  w.relations["Edge"] = edge.id();
  w.relations["Reach"] = reach.id();
  for (const auto& e : edges) {
    w.program->AddFact(edge.id(), {e.first, e.second});
  }
  return w;
}

/// One line per tuple, tab-separated raw values, trailing newline.
/// (Symbols render as their interned ids: construction order is
/// deterministic, so the ids are stable.)
std::string Render(const std::vector<storage::Tuple>& rows) {
  std::ostringstream out;
  for (const storage::Tuple& t : rows) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << '\t';
      out << t[i];
    }
    out << '\n';
  }
  return out.str();
}

std::string RunBackend(const WorkloadFn& make, const core::EngineConfig& ec) {
  analysis::Workload w = make();
  core::Engine engine(w.program.get(), ec);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  return Render(engine.Results(w.output));
}

void CheckAgainstGolden(const std::string& golden_name,
                        const WorkloadFn& make) {
  const std::string interpreted =
      RunBackend(make, harness::InterpretedConfig(true));

  core::EngineConfig bytecode;
  bytecode.mode = core::EvalMode::kJit;
  bytecode.jit.backend = backends::BackendKind::kBytecode;
  const std::string via_bytecode = RunBackend(make, bytecode);

  core::EngineConfig quotes;
  quotes.mode = core::EvalMode::kJit;
  quotes.jit.backend = backends::BackendKind::kQuotes;
  const std::string via_quotes = RunBackend(make, quotes);

  // All three execution paths agree with each other...
  EXPECT_EQ(interpreted, via_bytecode) << golden_name;
  EXPECT_EQ(interpreted, via_quotes) << golden_name;

  const std::string path =
      std::string(CARAC_GOLDEN_DIR) + "/" + golden_name + ".golden";
  if (std::getenv("CARAC_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << interpreted;
    return;
  }

  // ...and with the committed snapshot.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with CARAC_UPDATE_GOLDENS=1)";
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), interpreted) << golden_name;
  EXPECT_FALSE(interpreted.empty()) << golden_name;
}

TEST(StorageGoldenTest, TransitiveClosureAllBackends) {
  CheckAgainstGolden("tc", MakeTcWorkload);
}

TEST(StorageGoldenTest, AndersenAllBackends) {
  CheckAgainstGolden("andersen", MakeAndersenWorkload);
}

TEST(StorageGoldenTest, BoundedReachAllBackends) {
  CheckAgainstGolden("range", MakeBoundedReachWorkload);
}

// Every index organization must reproduce the committed goldens exactly:
// probe results come back in ascending RowId order regardless of how the
// index stores its postings, so the insertion sequence — and therefore
// the rendered output — cannot move when the index kind does.
void CheckGoldenUnderConfig(const std::string& golden_name,
                            const WorkloadFn& make,
                            const core::EngineConfig& config,
                            const std::string& label) {
  const std::string got = RunBackend(make, config);

  const std::string path =
      std::string(CARAC_GOLDEN_DIR) + "/" + golden_name + ".golden";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path;
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), got) << golden_name << " under " << label;
}

void CheckGoldenUnderKind(const std::string& golden_name,
                          const WorkloadFn& make, storage::IndexKind kind) {
  core::EngineConfig config = harness::InterpretedConfig(true);
  config.index_kind = kind;
  CheckGoldenUnderConfig(golden_name, make, config,
                         storage::IndexKindName(kind));
}

class StorageGoldenKindTest
    : public ::testing::TestWithParam<storage::IndexKind> {};

TEST_P(StorageGoldenKindTest, TransitiveClosureMatchesGolden) {
  CheckGoldenUnderKind("tc", MakeTcWorkload, GetParam());
}

TEST_P(StorageGoldenKindTest, AndersenMatchesGolden) {
  CheckGoldenUnderKind("andersen", MakeAndersenWorkload, GetParam());
}

TEST_P(StorageGoldenKindTest, BoundedReachMatchesGolden) {
  CheckGoldenUnderKind("range", MakeBoundedReachWorkload, GetParam());
}

// Pushdown on vs off must not move a byte, per kind: ordered kinds
// actually take the ProbeRange path when on, hash kinds decline — both
// must render exactly the committed golden.
TEST_P(StorageGoldenKindTest, BoundedReachPushdownOffMatchesGolden) {
  core::EngineConfig config = harness::InterpretedConfig(true);
  config.index_kind = GetParam();
  config.range_pushdown = false;
  CheckGoldenUnderConfig(
      "range", MakeBoundedReachWorkload, config,
      std::string(storage::IndexKindName(GetParam())) + " pushdown-off");
}

// The pull engine and the sharded parallel path serve the same bounds
// through their own range cursors; the golden must not move there
// either, at any thread count.
TEST(StorageGoldenTest, BoundedReachPullMatchesGolden) {
  core::EngineConfig config = harness::InterpretedConfig(true);
  config.engine_style = ir::EngineStyle::kPull;
  config.index_kind = storage::IndexKind::kBtree;
  CheckGoldenUnderConfig("range", MakeBoundedReachWorkload, config, "pull");
}

TEST(StorageGoldenTest, BoundedReachParallelMatchesGolden) {
  for (int threads : {2, 4}) {
    core::EngineConfig config = harness::InterpretedConfig(true);
    config.num_threads = threads;
    config.parallel_min_outer_rows = 1;
    config.index_kind = storage::IndexKind::kBtree;
    CheckGoldenUnderConfig("range", MakeBoundedReachWorkload, config,
                           std::to_string(threads) + " threads");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, StorageGoldenKindTest,
    ::testing::Values(storage::IndexKind::kHash, storage::IndexKind::kSorted,
                      storage::IndexKind::kBtree,
                      storage::IndexKind::kSortedArray,
                      storage::IndexKind::kLearned),
    [](const ::testing::TestParamInfo<storage::IndexKind>& info) {
      std::string name = storage::IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace carac
