#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "datalog/dsl.h"

namespace carac::datalog {
namespace {

TEST(BuiltinTest, Arity) {
  EXPECT_EQ(BuiltinArity(BuiltinOp::kLt), 2u);
  EXPECT_EQ(BuiltinArity(BuiltinOp::kEq), 2u);
  EXPECT_EQ(BuiltinArity(BuiltinOp::kAdd), 3u);
  EXPECT_EQ(BuiltinArity(BuiltinOp::kMod), 3u);
  EXPECT_FALSE(BuiltinBindsOutput(BuiltinOp::kGe));
  EXPECT_TRUE(BuiltinBindsOutput(BuiltinOp::kMul));
}

TEST(BuiltinTest, Comparisons) {
  EXPECT_TRUE(EvalComparison(BuiltinOp::kLt, 1, 2));
  EXPECT_FALSE(EvalComparison(BuiltinOp::kLt, 2, 2));
  EXPECT_TRUE(EvalComparison(BuiltinOp::kLe, 2, 2));
  EXPECT_TRUE(EvalComparison(BuiltinOp::kGt, 3, 2));
  EXPECT_TRUE(EvalComparison(BuiltinOp::kGe, 2, 2));
  EXPECT_TRUE(EvalComparison(BuiltinOp::kEq, 5, 5));
  EXPECT_TRUE(EvalComparison(BuiltinOp::kNe, 5, 6));
}

TEST(BuiltinTest, Arithmetic) {
  storage::Value z = 0;
  EXPECT_TRUE(EvalArithmetic(BuiltinOp::kAdd, 2, 3, &z));
  EXPECT_EQ(z, 5);
  EXPECT_TRUE(EvalArithmetic(BuiltinOp::kSub, 2, 3, &z));
  EXPECT_EQ(z, -1);
  EXPECT_TRUE(EvalArithmetic(BuiltinOp::kMul, 4, 3, &z));
  EXPECT_EQ(z, 12);
  EXPECT_TRUE(EvalArithmetic(BuiltinOp::kDiv, 7, 2, &z));
  EXPECT_EQ(z, 3);
  EXPECT_TRUE(EvalArithmetic(BuiltinOp::kMod, 7, 2, &z));
  EXPECT_EQ(z, 1);
}

TEST(BuiltinTest, DivisionByZeroIsUndefined) {
  storage::Value z = 0;
  EXPECT_FALSE(EvalArithmetic(BuiltinOp::kDiv, 7, 0, &z));
  EXPECT_FALSE(EvalArithmetic(BuiltinOp::kMod, 7, 0, &z));
}

TEST(ProgramTest, RelationAndVarDeclaration) {
  Program p;
  const PredicateId r = p.AddRelation("R", 2);
  EXPECT_EQ(p.PredicateName(r), "R");
  EXPECT_EQ(p.PredicateArity(r), 2u);
  const VarId v = p.NewVar("x");
  EXPECT_EQ(p.VarName(v), "x");
  EXPECT_FALSE(p.IsIdb(r));
}

TEST(ProgramTest, FactsGoToDerived) {
  Program p;
  const PredicateId r = p.AddRelation("R", 2);
  p.AddFact(r, {1, 2});
  EXPECT_TRUE(p.db().Get(r, storage::DbKind::kDerived).Contains({1, 2}));
}

TEST(ProgramTest, AddRuleMarksIdb) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y] = dsl.Vars<2>();
  path(x, y) <<= edge(x, y);
  EXPECT_TRUE(p.IsIdb(path.id()));
  EXPECT_FALSE(p.IsIdb(edge.id()));
  EXPECT_EQ(p.rules().size(), 1u);
}

TEST(ProgramTest, RejectsHeadArityMismatch) {
  Program p;
  const PredicateId r = p.AddRelation("R", 2);
  const PredicateId s = p.AddRelation("S", 1);
  Rule rule;
  rule.head.predicate = r;
  rule.head.terms = {Term::MakeVar(p.NewVar())};  // Arity 1, declared 2.
  Atom body;
  body.predicate = s;
  body.terms = {rule.head.terms[0]};
  rule.body = {body};
  EXPECT_FALSE(p.AddRule(rule).ok());
}

TEST(ProgramTest, RejectsEmptyBody) {
  Program p;
  const PredicateId r = p.AddRelation("R", 1);
  Rule rule;
  rule.head.predicate = r;
  rule.head.terms = {Term::MakeConst(1)};
  EXPECT_FALSE(p.AddRule(rule).ok());
}

TEST(ProgramTest, RejectsRangeRestrictionViolation) {
  Program p;
  const PredicateId r = p.AddRelation("R", 1);
  const PredicateId s = p.AddRelation("S", 1);
  Rule rule;
  rule.head.predicate = r;
  rule.head.terms = {Term::MakeVar(p.NewVar("unbound"))};
  Atom body;
  body.predicate = s;
  body.terms = {Term::MakeVar(p.NewVar("other"))};
  rule.body = {body};
  EXPECT_FALSE(p.AddRule(rule).ok());
}

TEST(ProgramTest, RejectsUnsafeNegation) {
  Program p;
  const PredicateId r = p.AddRelation("R", 1);
  const PredicateId s = p.AddRelation("S", 1);
  const PredicateId t = p.AddRelation("T", 1);
  const VarId x = p.NewVar("x");
  const VarId y = p.NewVar("y");
  Rule rule;
  rule.head.predicate = r;
  rule.head.terms = {Term::MakeVar(x)};
  Atom pos;
  pos.predicate = s;
  pos.terms = {Term::MakeVar(x)};
  Atom neg;
  neg.predicate = t;
  neg.negated = true;
  neg.terms = {Term::MakeVar(y)};  // y never bound positively.
  rule.body = {pos, neg};
  EXPECT_FALSE(p.AddRule(rule).ok());
}

TEST(ProgramTest, RejectsUnsafeBuiltinInput) {
  Program p;
  const PredicateId r = p.AddRelation("R", 1);
  const PredicateId s = p.AddRelation("S", 1);
  const VarId x = p.NewVar("x");
  const VarId y = p.NewVar("y");
  Rule rule;
  rule.head.predicate = r;
  rule.head.terms = {Term::MakeVar(x)};
  Atom pos;
  pos.predicate = s;
  pos.terms = {Term::MakeVar(x)};
  Atom cmp;
  cmp.builtin = BuiltinOp::kLt;
  cmp.terms = {Term::MakeVar(y), Term::MakeConst(3)};  // y unbound.
  rule.body = {pos, cmp};
  EXPECT_FALSE(p.AddRule(rule).ok());
}

TEST(ProgramTest, ArithmeticOutputCountsAsBinder) {
  Program p;
  Dsl dsl(&p);
  auto s = dsl.Relation("S", 1);
  auto r = dsl.Relation("R", 1);
  auto [x, z] = dsl.Vars<2>();
  // z is bound by the Add output; using it in the head is legal.
  r(z) <<= s(x) & dsl.Add(x, 1, z);
  EXPECT_EQ(p.rules().size(), 1u);
}

TEST(ProgramTest, RuleToStringRendersDatalog) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto x = dsl.Var("x");
  auto y = dsl.Var("y");
  auto z = dsl.Var("z");
  path(x, z) <<= path(x, y) & edge(y, z);
  const std::string rendered = p.RuleToString(p.rules()[0]);
  EXPECT_NE(rendered.find("Path(x, z) :- "), std::string::npos);
  EXPECT_NE(rendered.find("Edge(y, z)"), std::string::npos);
}

TEST(DslTest, StringConstantsIntern) {
  Program p;
  Dsl dsl(&p);
  auto inv = dsl.Relation("Inv", 2);
  inv.Fact("deserialize", "serialize");
  EXPECT_EQ(p.db().Get(inv.id(), storage::DbKind::kDerived).size(), 1u);
  const storage::Value a = p.Intern("deserialize");
  const storage::Value b = p.Intern("serialize");
  EXPECT_TRUE(p.db().Get(inv.id(), storage::DbKind::kDerived)
                  .Contains({a, b}));
}

TEST(DslTest, NegationOperator) {
  Program p;
  Dsl dsl(&p);
  auto s = dsl.Relation("S", 1);
  auto t = dsl.Relation("T", 1);
  auto r = dsl.Relation("R", 1);
  auto x = dsl.Var("x");
  r(x) <<= s(x) & !t(x);
  ASSERT_EQ(p.rules().size(), 1u);
  EXPECT_TRUE(p.rules()[0].body[1].negated);
}

TEST(DslTest, AggRuleRegisters) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto degree = dsl.Relation("Degree", 2);
  auto [x, y, c] = dsl.Vars<3>();
  dsl.AggRule(degree(x, c), BodyExpr({edge(x, y).atom()}), AggFunc::kCount);
  ASSERT_EQ(p.rules().size(), 1u);
  EXPECT_EQ(p.rules()[0].agg, AggFunc::kCount);
}

TEST(DslTest, MixedConstantsAndVars) {
  Program p;
  Dsl dsl(&p);
  auto succ = dsl.Relation("Succ", 2);
  auto ack = dsl.Relation("Ack", 3);
  auto [n, r] = dsl.Vars<2>();
  ack(0, n, r) <<= succ(n, r);
  ASSERT_EQ(p.rules().size(), 1u);
  EXPECT_TRUE(p.rules()[0].head.terms[0].is_const());
  EXPECT_EQ(p.rules()[0].head.terms[0].constant, 0);
}

}  // namespace
}  // namespace carac::datalog
