#include <gtest/gtest.h>

#include "core/engine.h"
#include "datalog/dsl.h"

namespace carac::core {
namespace {

using datalog::Dsl;
using datalog::Program;

TEST(EngineTest, InterpretedTransitiveClosure) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  edge.Fact(1, 2);
  edge.Fact(2, 3);

  EngineConfig config;
  Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto rows = engine.Results(path.id());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (storage::Tuple{1, 2}));
  EXPECT_EQ(rows[1], (storage::Tuple{1, 3}));
  EXPECT_EQ(rows[2], (storage::Tuple{2, 3}));
}

TEST(EngineTest, PrepareRejectsUnstratifiable) {
  Program p;
  Dsl dsl(&p);
  auto seed = dsl.Relation("Seed", 1);
  auto a = dsl.Relation("A", 1);
  auto b = dsl.Relation("B", 1);
  auto x = dsl.Var();
  a(x) <<= seed(x) & !b(x);
  b(x) <<= a(x);
  seed.Fact(1);

  Engine engine(&p, EngineConfig{});
  EXPECT_FALSE(engine.Prepare().ok());
}

TEST(EngineTest, AotReorderFactsAndRules) {
  Program p;
  Dsl dsl(&p);
  auto big = dsl.Relation("Big", 2);
  auto tiny = dsl.Relation("Tiny", 2);
  auto out = dsl.Relation("Out", 2);
  auto [x, y, z] = dsl.Vars<3>();
  out(x, z) <<= big(x, y) & tiny(y, z);
  for (int i = 0; i < 300; ++i) big.Fact(i, i % 7);
  tiny.Fact(3, 1);

  EngineConfig config;
  config.aot_reorder = true;
  config.aot.use_fact_cardinalities = true;
  Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());

  // After AOT planning the Tiny atom leads the only subquery.
  bool found = false;
  std::function<void(ir::IROp*)> visit = [&](ir::IROp* op) {
    if (op->kind == ir::OpKind::kSpj) {
      found = true;
      EXPECT_EQ(op->atoms[0].predicate, tiny.id());
    }
    for (auto& c : op->children) visit(c.get());
  };
  visit(engine.ir().root.get());
  EXPECT_TRUE(found);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_GT(engine.ResultSize(out.id()), 0u);
}

TEST(EngineTest, AotRulesOnlyStillRuns) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  for (int i = 0; i < 5; ++i) edge.Fact(i, i + 1);

  EngineConfig config;
  config.aot_reorder = true;
  config.aot.use_fact_cardinalities = false;
  Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(path.id()), 15u);
}

TEST(EngineTest, UnindexedConfigDisablesIndexes) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  edge.Fact(1, 2);

  EngineConfig config;
  config.use_indexes = false;
  Engine engine(&p, config);
  ASSERT_TRUE(engine.Prepare().ok());
  EXPECT_FALSE(
      p.db().Get(edge.id(), storage::DbKind::kDerived).HasIndex(0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.ResultSize(path.id()), 1u);
}

TEST(EngineTest, StatsToStringContainsCounters) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y] = dsl.Vars<2>();
  path(x, y) <<= edge(x, y);
  edge.Fact(1, 2);
  Engine engine(&p, EngineConfig{});
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(engine.Run().ok());
  const std::string s = engine.stats().ToString();
  EXPECT_NE(s.find("iterations="), std::string::npos);
  EXPECT_NE(s.find("inserted="), std::string::npos);
}

}  // namespace
}  // namespace carac::core
