#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/symbol_table.h"
#include "storage/tuple.h"

namespace carac::storage {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  const Value a = table.Intern("serialize");
  const Value b = table.Intern("serialize");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, DistinctStringsDistinctIds) {
  SymbolTable table;
  EXPECT_NE(table.Intern("a"), table.Intern("b"));
  EXPECT_EQ(table.Lookup(table.Intern("a")), "a");
  EXPECT_EQ(table.Lookup(table.Intern("b")), "b");
}

TEST(SymbolTableTest, SymbolRangeDisjointFromSmallIntegers) {
  SymbolTable table;
  const Value id = table.Intern("x");
  EXPECT_TRUE(SymbolTable::IsSymbol(id));
  EXPECT_FALSE(SymbolTable::IsSymbol(0));
  EXPECT_FALSE(SymbolTable::IsSymbol(123456789));
  EXPECT_FALSE(SymbolTable::IsSymbol(-5));
}

TEST(TupleTest, HashEqualForEqualTuples) {
  TupleHash hash;
  EXPECT_EQ(hash(Tuple{1, 2, 3}), hash(Tuple{1, 2, 3}));
  EXPECT_NE(hash(Tuple{1, 2, 3}), hash(Tuple{3, 2, 1}));
  EXPECT_NE(hash(Tuple{1}), hash(Tuple{1, 0}));
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(TupleToString({1, 2}), "(1, 2)");
  EXPECT_EQ(TupleToString({}), "()");
}

TEST(TupleViewTest, ViewsCompareByContents) {
  const Tuple a{1, 2, 3};
  const Tuple b{1, 2, 3};
  const Tuple c{1, 2, 4};
  EXPECT_EQ(TupleView(a), TupleView(b));
  EXPECT_NE(TupleView(a), TupleView(c));
  EXPECT_NE(TupleView(a), TupleView(a.data(), 2));
  EXPECT_EQ(TupleView(a).ToTuple(), a);
  EXPECT_EQ(TupleHash()(a), TupleHash()(TupleView(b)));
}

TEST(RelationTest, InsertDeduplicates) {
  Relation rel("R", 2);
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_FALSE(rel.Insert({1, 2}));
  EXPECT_TRUE(rel.Insert({2, 1}));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_FALSE(rel.Contains({9, 9}));
}

TEST(RelationTest, IndexProbeFindsMatches) {
  Relation rel("R", 2);
  rel.DeclareIndex(0);
  rel.Insert({1, 10});
  rel.Insert({1, 11});
  rel.Insert({2, 20});
  EXPECT_TRUE(rel.HasIndex(0));
  EXPECT_FALSE(rel.HasIndex(1));
  EXPECT_EQ(rel.Probe(0, 1).size(), 2u);
  EXPECT_EQ(rel.Probe(0, 2).size(), 1u);
  EXPECT_TRUE(rel.Probe(0, 3).empty());
}

TEST(RelationTest, IndexBuiltOverExistingRows) {
  Relation rel("R", 2);
  rel.Insert({5, 6});
  rel.Insert({5, 7});
  rel.DeclareIndex(0);  // Declared after inserts.
  EXPECT_EQ(rel.Probe(0, 5).size(), 2u);
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation rel("R", 2);
  rel.DeclareIndex(1);
  rel.Insert({1, 9});
  rel.Insert({2, 9});
  rel.Insert({3, 8});
  EXPECT_EQ(rel.Probe(1, 9).size(), 2u);
  rel.Insert({4, 9});
  EXPECT_EQ(rel.Probe(1, 9).size(), 3u);
}

TEST(RelationTest, DeclareIndexIdempotent) {
  Relation rel("R", 2);
  rel.DeclareIndex(0);
  rel.DeclareIndex(0);
  rel.Insert({1, 2});
  EXPECT_EQ(rel.Probe(0, 1).size(), 1u);
}

TEST(RelationTest, ClearKeepsIndexDeclarations) {
  Relation rel("R", 2);
  rel.DeclareIndex(0);
  rel.Insert({1, 2});
  rel.Clear();
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_TRUE(rel.HasIndex(0));
  rel.Insert({3, 4});
  EXPECT_EQ(rel.Probe(0, 3).size(), 1u);
}

TEST(RelationTest, AbsorbMovesAllTuples) {
  Relation a("A", 2), b("B", 2);
  a.Insert({1, 1});
  b.Insert({1, 1});  // Duplicate of a's row.
  b.Insert({2, 2});
  a.Absorb(&b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(a.Contains({2, 2}));
}

TEST(RelationTest, SortedRowsIsSortedAndComplete) {
  Relation rel("R", 2);
  rel.Insert({3, 0});
  rel.Insert({1, 0});
  rel.Insert({2, 0});
  const auto rows = rel.SortedRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], 1);
  EXPECT_EQ(rows[1][0], 2);
  EXPECT_EQ(rows[2][0], 3);
}

TEST(RelationTest, RowIdsFollowInsertionOrderAndViewsReadThem) {
  Relation rel("R", 3);
  rel.Insert({7, 8, 9});
  rel.Insert({1, 2, 3});
  ASSERT_EQ(rel.NumRows(), 2u);
  EXPECT_EQ(rel.View(0), TupleView(Tuple{7, 8, 9}));
  EXPECT_EQ(rel.View(1), TupleView(Tuple{1, 2, 3}));
  EXPECT_EQ(rel.RowData(1)[2], 3);
  // Range-for yields the same rows in RowId order.
  RowId expected = 0;
  for (TupleView t : rel.rows()) {
    EXPECT_EQ(t, rel.View(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 2u);
}

TEST(RelationTest, SurvivesRehashAndArenaGrowth) {
  // Far past the initial table size, forcing several rehashes and arena
  // reallocations; dedup, membership and index probes must all hold.
  Relation rel("R", 2);
  rel.DeclareIndex(0);
  constexpr int64_t kRows = 10000;
  for (int64_t i = 0; i < kRows; ++i) {
    EXPECT_TRUE(rel.Insert({i, i * 31}));
  }
  for (int64_t i = 0; i < kRows; ++i) {
    EXPECT_FALSE(rel.Insert({i, i * 31}));  // All duplicates.
  }
  EXPECT_EQ(rel.size(), static_cast<size_t>(kRows));
  EXPECT_TRUE(rel.Contains({4321, 4321 * 31}));
  EXPECT_FALSE(rel.Contains({4321, 0}));
  ASSERT_EQ(rel.Probe(0, 777).size(), 1u);
  EXPECT_EQ(rel.View(rel.Probe(0, 777)[0])[1], 777 * 31);
}

TEST(RelationTest, ReserveDoesNotChangeContents) {
  Relation rel("R", 2);
  rel.Insert({1, 2});
  rel.Reserve(5000);
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_FALSE(rel.Insert({1, 2}));
  for (int64_t i = 0; i < 100; ++i) rel.Insert({i, i});
  EXPECT_EQ(rel.size(), 101u);
}

TEST(RelationTest, NullaryRelationHoldsAtMostOneRow) {
  Relation rel("Unit", 0);
  EXPECT_FALSE(rel.Contains(Tuple{}));
  EXPECT_TRUE(rel.Insert(Tuple{}));
  EXPECT_FALSE(rel.Insert(Tuple{}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(Tuple{}));
  size_t rows_seen = 0;
  for (TupleView t : rel.rows()) {
    EXPECT_TRUE(t.empty());
    ++rows_seen;
  }
  EXPECT_EQ(rows_seen, 1u);
}

TEST(DatabaseSetTest, ThreeStoresPerRelation) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.Get(r, DbKind::kDerived).Insert({1, 2});
  db.Get(r, DbKind::kDeltaKnown).Insert({3, 4});
  db.Get(r, DbKind::kDeltaNew).Insert({5, 6});
  EXPECT_EQ(db.Get(r, DbKind::kDerived).size(), 1u);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaKnown).size(), 1u);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaNew).size(), 1u);
  EXPECT_EQ(db.RelationName(r), "R");
  EXPECT_EQ(db.RelationArity(r), 2u);
}

TEST(DatabaseSetTest, SwapClearMergeSemantics) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.InsertFact(r, {1, 1});                        // Derived seed.
  db.Get(r, DbKind::kDeltaKnown).Insert({9, 9});   // Stale delta.
  db.Get(r, DbKind::kDeltaNew).Insert({2, 2});     // This iteration.

  db.SwapClearMerge({r});

  // New delta became known; old known is gone; derived gained the merge.
  EXPECT_TRUE(db.Get(r, DbKind::kDeltaKnown).Contains({2, 2}));
  EXPECT_FALSE(db.Get(r, DbKind::kDeltaKnown).Contains({9, 9}));
  EXPECT_EQ(db.Get(r, DbKind::kDeltaNew).size(), 0u);
  EXPECT_TRUE(db.Get(r, DbKind::kDerived).Contains({1, 1}));
  EXPECT_TRUE(db.Get(r, DbKind::kDerived).Contains({2, 2}));
}

TEST(DatabaseSetTest, DeltaKnownSubsetOfDerivedAfterSwap) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 1);
  db.Get(r, DbKind::kDeltaNew).Insert({7});
  db.SwapClearMerge({r});
  for (TupleView t : db.Get(r, DbKind::kDeltaKnown).rows()) {
    EXPECT_TRUE(db.Get(r, DbKind::kDerived).Contains(t));
  }
}

TEST(DatabaseSetTest, AnyDeltaKnownNonEmpty) {
  DatabaseSet db;
  const RelationId a = db.AddRelation("A", 1);
  const RelationId b = db.AddRelation("B", 1);
  EXPECT_FALSE(db.AnyDeltaKnownNonEmpty({a, b}));
  db.Get(b, DbKind::kDeltaKnown).Insert({1});
  EXPECT_TRUE(db.AnyDeltaKnownNonEmpty({a, b}));
  EXPECT_FALSE(db.AnyDeltaKnownNonEmpty({a}));
}

TEST(DatabaseSetTest, IndexingDisabledMakesDeclareNoOp) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.SetIndexingEnabled(false);
  db.DeclareIndex(r, 0);
  EXPECT_FALSE(db.Get(r, DbKind::kDerived).HasIndex(0));
  db.SetIndexingEnabled(true);
  db.DeclareIndex(r, 0);
  EXPECT_TRUE(db.Get(r, DbKind::kDerived).HasIndex(0));
}

TEST(DatabaseSetTest, DeclareIndexCoversAllStores) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.DeclareIndex(r, 1);
  EXPECT_TRUE(db.Get(r, DbKind::kDerived).HasIndex(1));
  EXPECT_TRUE(db.Get(r, DbKind::kDeltaKnown).HasIndex(1));
  EXPECT_TRUE(db.Get(r, DbKind::kDeltaNew).HasIndex(1));
}

TEST(DatabaseSetTest, ClearAllEmptiesEverything) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 1);
  db.InsertFact(r, {1});
  db.Get(r, DbKind::kDeltaKnown).Insert({2});
  db.ClearAll();
  EXPECT_EQ(db.Get(r, DbKind::kDerived).size(), 0u);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaKnown).size(), 0u);
}

TEST(RelationTest, WatermarkTracksEpochBoundary) {
  Relation r("R", 1);
  r.Insert({1});
  r.Insert({2});
  EXPECT_EQ(r.watermark(), 0u);  // Everything is "new" before an epoch.
  r.AdvanceWatermark();
  EXPECT_EQ(r.watermark(), 2u);
  r.Insert({3});
  EXPECT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.watermark(), 2u);  // Row 2 is past the watermark.
  r.Clear();
  EXPECT_EQ(r.watermark(), 0u);  // A cleared relation starts over.
}

TEST(DatabaseSetTest, SeedDeltaFromWatermarkCopiesOnlyNewRows) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 1);
  db.InsertFact(r, {1});
  db.AdvanceEpoch();
  db.InsertFact(r, {2});
  db.InsertFact(r, {3});
  db.Get(r, DbKind::kDeltaKnown).Insert({9});  // Residue: must be dropped.
  EXPECT_TRUE(db.ChangedSinceWatermark(r));
  EXPECT_EQ(db.SeedDeltaFromWatermark(r), 2u);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaKnown).size(), 2u);
  EXPECT_TRUE(db.Get(r, DbKind::kDeltaKnown).Contains({2}));
  EXPECT_TRUE(db.Get(r, DbKind::kDeltaKnown).Contains({3}));
  EXPECT_FALSE(db.Get(r, DbKind::kDeltaKnown).Contains({9}));
  db.AdvanceEpoch();
  EXPECT_FALSE(db.ChangedSinceWatermark(r));
  EXPECT_EQ(db.SeedDeltaFromWatermark(r), 0u);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaKnown).size(), 0u);
}

TEST(DatabaseSetTest, AdvanceEpochCounts) {
  DatabaseSet db;
  EXPECT_EQ(db.epoch(), 0u);
  db.AdvanceEpoch();
  db.AdvanceEpoch();
  EXPECT_EQ(db.epoch(), 2u);
  db.ClearAll();
  EXPECT_EQ(db.epoch(), 0u);
}

TEST(DatabaseSetTest, ResetToEdbFactsDropsDerivedKeepsEdb) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 1);
  db.InsertFact(r, {1});                      // EDB.
  db.Get(r, DbKind::kDerived).Insert({2});    // Derived by a rule.
  db.InsertFact(r, {3});                      // EDB appended after it.
  db.Get(r, DbKind::kDeltaKnown).Insert({4});
  db.ResetToEdbFacts(r);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).size(), 2u);
  EXPECT_TRUE(db.Get(r, DbKind::kDerived).Contains({1}));
  EXPECT_FALSE(db.Get(r, DbKind::kDerived).Contains({2}));
  EXPECT_TRUE(db.Get(r, DbKind::kDerived).Contains({3}));
  EXPECT_EQ(db.Get(r, DbKind::kDeltaKnown).size(), 0u);
  // The reset is itself re-resettable: EDB bookkeeping was rebuilt.
  db.Get(r, DbKind::kDerived).Insert({5});
  db.ResetToEdbFacts(r);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).size(), 2u);
}

TEST(DatabaseSetTest, ClearFactsUnloadsEverything) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 1);
  db.InsertFact(r, {1});
  db.Get(r, DbKind::kDeltaNew).Insert({2});
  db.ClearFacts(r);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).size(), 0u);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaNew).size(), 0u);
  // A fact re-inserted after the unload is EDB again.
  db.InsertFact(r, {7});
  db.Get(r, DbKind::kDerived).Insert({8});
  db.ResetToEdbFacts(r);
  EXPECT_TRUE(db.Get(r, DbKind::kDerived).Contains({7}));
  EXPECT_FALSE(db.Get(r, DbKind::kDerived).Contains({8}));
}

TEST(DatabaseSetTest, IndexesSurviveSwapClear) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.DeclareIndex(r, 0);
  db.Get(r, DbKind::kDeltaNew).Insert({4, 5});
  db.SwapClearMerge({r});
  // The swapped-in known store must still answer probes.
  EXPECT_EQ(db.Get(r, DbKind::kDeltaKnown).Probe(0, 4).size(), 1u);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).Probe(0, 4).size(), 1u);
}

TEST(ReadViewTest, PinnedViewSurvivesArenaGrowth) {
  Relation rel("R", 2);
  for (Value v = 0; v < 8; ++v) rel.Insert({v, v + 1});
  rel.AdvanceWatermark();
  const RelationReadView view = rel.PinViewAtWatermark();
  ASSERT_EQ(view.NumRows(), 8u);
  // Grow far past the pinned buffer's capacity: the live relation
  // retires to a fresh buffer, the view keeps reading the old one.
  for (Value v = 100; v < 1100; ++v) rel.Insert({v, v + 1});
  EXPECT_EQ(view.NumRows(), 8u);
  for (RowId row = 0; row < view.NumRows(); ++row) {
    EXPECT_EQ(view.View(row)[0], static_cast<Value>(row));
    EXPECT_EQ(view.View(row)[1], static_cast<Value>(row) + 1);
  }
  EXPECT_EQ(rel.size(), 1008u);
}

TEST(ReadViewTest, PinnedViewSurvivesClearAndReload) {
  Relation rel("R", 1);
  rel.Insert({10});
  rel.Insert({20});
  rel.AdvanceWatermark();
  const RelationReadView view = rel.PinViewAtWatermark();
  rel.Clear();
  rel.Insert({99});
  // The view still serves the rows it pinned, not the new contents.
  ASSERT_EQ(view.NumRows(), 2u);
  EXPECT_EQ(view.View(0)[0], 10);
  EXPECT_EQ(view.View(1)[0], 20);
  rel.LoadContents({7, 8, 9}, 3, 3);
  ASSERT_EQ(view.NumRows(), 2u);
  EXPECT_EQ(view.View(0)[0], 10);
  EXPECT_EQ(rel.size(), 3u);
}

TEST(ReadViewTest, ViewBoundHidesRowsPastWatermark) {
  Relation rel("R", 1);
  rel.Insert({1});
  rel.AdvanceWatermark();
  rel.Insert({2});  // Past the watermark: invisible to the pinned view.
  const RelationReadView view = rel.PinViewAtWatermark();
  EXPECT_EQ(view.NumRows(), 1u);
  EXPECT_EQ(view.View(0)[0], 1);
  // Appends within capacity land above the bound without retiring.
  rel.Insert({3});
  EXPECT_EQ(view.NumRows(), 1u);
  EXPECT_EQ(rel.size(), 3u);
}

TEST(ReadViewTest, SortedRowIdsMatchesSortedRows) {
  Relation rel("R", 2);
  rel.Insert({3, 1});
  rel.Insert({1, 9});
  rel.Insert({2, 4});
  rel.Insert({1, 2});
  rel.AdvanceWatermark();
  const RelationReadView view = rel.PinViewAtWatermark();
  const std::vector<Tuple> sorted = rel.SortedRows();
  const std::vector<RowId> ids = view.SortedRowIds();
  ASSERT_EQ(ids.size(), sorted.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(view.View(ids[i]).ToTuple(), sorted[i]);
  }
}

TEST(ReadViewTest, UnpinnedRelationKeepsCapacityOnClear) {
  // Delta stores are cleared every iteration and are never pinned; the
  // copy-on-retire machinery must not tax them. (A zero-row pin does not
  // force retirement either — it can never observe the buffer.)
  Relation rel("R", 1);
  for (Value v = 0; v < 64; ++v) rel.Insert({v});
  const RelationReadView empty = rel.PinView(0);
  EXPECT_TRUE(empty.empty());
  const Value* before = rel.RowData(0);
  rel.Clear();
  for (Value v = 0; v < 64; ++v) rel.Insert({v});
  // Same buffer, same address: the clear recycled storage in place.
  EXPECT_EQ(rel.RowData(0), before);
}

}  // namespace
}  // namespace carac::storage
