#include <gtest/gtest.h>

#include "datalog/dsl.h"
#include "datalog/stratify.h"

namespace carac::datalog {
namespace {

TEST(StratifyTest, SingleRecursiveStratum) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);

  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  ASSERT_EQ(s.strata.size(), 1u);
  EXPECT_EQ(s.strata[0].predicates, std::vector<PredicateId>{path.id()});
  ASSERT_EQ(s.strata[0].rule_indices.size(), 2u);
  EXPECT_FALSE(s.strata[0].rule_is_recursive[0]);
  EXPECT_TRUE(s.strata[0].rule_is_recursive[1]);
  EXPECT_EQ(s.stratum_of[edge.id()], -1);  // Pure EDB.
  EXPECT_EQ(s.stratum_of[path.id()], 0);
}

TEST(StratifyTest, DependenciesOrderStrata) {
  Program p;
  Dsl dsl(&p);
  auto base = dsl.Relation("Base", 1);
  auto mid = dsl.Relation("Mid", 1);
  auto top = dsl.Relation("Top", 1);
  auto x = dsl.Var("x");
  // Declare rules top-first to make sure ordering comes from dependencies,
  // not declaration order.
  top(x) <<= mid(x);
  mid(x) <<= base(x);

  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  ASSERT_EQ(s.strata.size(), 2u);
  EXPECT_LT(s.stratum_of[mid.id()], s.stratum_of[top.id()]);
}

TEST(StratifyTest, MutualRecursionSharesStratum) {
  Program p;
  Dsl dsl(&p);
  auto a = dsl.Relation("A", 1);
  auto b = dsl.Relation("B", 1);
  auto seed = dsl.Relation("Seed", 1);
  auto x = dsl.Var("x");
  a(x) <<= seed(x);
  b(x) <<= a(x);
  a(x) <<= b(x);

  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  EXPECT_EQ(s.stratum_of[a.id()], s.stratum_of[b.id()]);
  // Both b(x) :- a(x) and a(x) :- b(x) are recursive in the shared SCC.
  const Stratum& stratum = s.strata[s.stratum_of[a.id()]];
  int recursive = 0;
  for (bool r : stratum.rule_is_recursive) recursive += r;
  EXPECT_EQ(recursive, 2);
}

TEST(StratifyTest, NegationForcesLowerStratum) {
  Program p;
  Dsl dsl(&p);
  auto num = dsl.Relation("Num", 1);
  auto comp = dsl.Relation("Comp", 1);
  auto prime = dsl.Relation("Prime", 1);
  auto [c, d, r, q] = dsl.Vars<4>();
  comp(c) <<= num(c) & num(d) & dsl.Lt(d, c) & dsl.Mod(c, d, r) &
              dsl.Eq(r, 0);
  prime(q) <<= num(q) & !comp(q);

  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  EXPECT_LT(s.stratum_of[comp.id()], s.stratum_of[prime.id()]);
}

TEST(StratifyTest, RejectsNegationThroughRecursion) {
  Program p;
  Dsl dsl(&p);
  auto seed = dsl.Relation("Seed", 1);
  auto a = dsl.Relation("A", 1);
  auto b = dsl.Relation("B", 1);
  auto x = dsl.Var("x");
  a(x) <<= seed(x) & !b(x);
  b(x) <<= a(x);

  Stratification s;
  EXPECT_FALSE(Stratify(p, &s).ok());
}

TEST(StratifyTest, RejectsAggregationThroughRecursion) {
  Program p;
  Dsl dsl(&p);
  auto a = dsl.Relation("A", 2);
  auto [x, y, c] = dsl.Vars<3>();
  dsl.AggRule(a(x, c), BodyExpr({a(x, y).atom()}), AggFunc::kCount);

  Stratification s;
  EXPECT_FALSE(Stratify(p, &s).ok());
}

TEST(StratifyTest, CspaIsOneRecursiveStratum) {
  Program p;
  Dsl dsl(&p);
  auto assign = dsl.Relation("Assign", 2);
  auto deref = dsl.Relation("Deref", 2);
  auto vflow = dsl.Relation("VFlow", 2);
  auto valias = dsl.Relation("VAlias", 2);
  auto malias = dsl.Relation("MAlias", 2);
  auto [v0, v1, v2, v3] = dsl.Vars<4>();
  vflow(v1, v2) <<= assign(v1, v3) & malias(v3, v2);
  vflow(v1, v2) <<= vflow(v1, v3) & vflow(v3, v2);
  malias(v1, v0) <<= valias(v2, v3) & deref(v3, v0) & deref(v2, v1);
  valias(v1, v2) <<= vflow(v3, v1) & vflow(v3, v2);
  vflow(v2, v1) <<= assign(v2, v1);

  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  // VFlow, VAlias and MAlias are mutually recursive: one stratum.
  ASSERT_EQ(s.strata.size(), 1u);
  EXPECT_EQ(s.strata[0].predicates.size(), 3u);
}

TEST(StratifyTest, BodyInputsAndRecomputeTriggers) {
  Program p;
  Dsl dsl(&p);
  auto node = dsl.Relation("Node", 1);
  auto closed = dsl.Relation("Closed", 1);
  auto open = dsl.Relation("Open", 1);
  auto link = dsl.Relation("Link", 2);
  auto reach = dsl.Relation("Reach", 1);
  auto [x, y] = dsl.Vars<2>();
  open(x) <<= node(x) & !closed(x);
  reach(x) <<= open(x) & link(0, x);
  reach(y) <<= reach(x) & link(x, y);

  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  ASSERT_EQ(s.strata.size(), 2u);

  // Open's stratum reads Node and Closed; only the NEGATED Closed can
  // retract derived facts when it grows.
  EXPECT_EQ(s.strata[0].predicates, std::vector<PredicateId>{open.id()});
  EXPECT_EQ(s.strata[0].body_inputs,
            (std::vector<PredicateId>{node.id(), closed.id()}));
  EXPECT_EQ(s.strata[0].recompute_triggers,
            std::vector<PredicateId>{closed.id()});

  // Reach's stratum is purely positive: no triggers at all.
  EXPECT_EQ(s.strata[1].predicates, std::vector<PredicateId>{reach.id()});
  EXPECT_EQ(s.strata[1].body_inputs,
            (std::vector<PredicateId>{open.id(), link.id(), reach.id()}));
  EXPECT_TRUE(s.strata[1].recompute_triggers.empty());
}

TEST(StratifyTest, AggregateRuleInputsAreRecomputeTriggers) {
  Program p;
  Dsl dsl(&p);
  auto link = dsl.Relation("Link", 2);
  auto deg = dsl.Relation("Deg", 2);
  auto [x, y, c] = dsl.Vars<3>();
  dsl.AggRule(deg(x, c), BodyExpr({link(x, y).atom()}), AggFunc::kCount);

  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  ASSERT_EQ(s.strata.size(), 1u);
  // Every input of an aggregate rule is a trigger: a new witness changes
  // the group value, retracting the old output tuple.
  EXPECT_EQ(s.strata[0].recompute_triggers,
            std::vector<PredicateId>{link.id()});
}

TEST(StratifyTest, EmptyProgramHasNoStrata) {
  Program p;
  Dsl dsl(&p);
  dsl.Relation("OnlyFacts", 1);
  Stratification s;
  ASSERT_TRUE(Stratify(p, &s).ok());
  EXPECT_TRUE(s.strata.empty());
}

}  // namespace
}  // namespace carac::datalog
