#include <gtest/gtest.h>

#include "backends/bytecode.h"
#include "backends/bytecode_backend.h"
#include "datalog/dsl.h"
#include "ir/interpreter.h"
#include "ir/lowering.h"

namespace carac::backends {
namespace {

using datalog::Dsl;
using datalog::Program;

TEST(BytecodeCompileTest, ProgramEndsWithHalt) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  ir::IRProgram irp;
  ASSERT_TRUE(ir::LowerProgram(&p, true, &irp).ok());

  BytecodeProgram bc = CompileToBytecode(
      *irp.root, optimizer::StatsSnapshot::Capture(p.db()),
      CompileMode::kFull);
  ASSERT_FALSE(bc.code.empty());
  EXPECT_EQ(bc.code.back().op, Insn::Op::kHalt);
  EXPECT_GT(bc.num_regs, 0);
  EXPECT_GT(bc.num_iters, 0);
  EXPECT_FALSE(bc.Disassemble().empty());
}

TEST(BytecodeCompileTest, IndexedAtomsUseProbes) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  ir::IRProgram irp;
  ASSERT_TRUE(ir::LowerProgram(&p, true, &irp).ok());

  BytecodeProgram bc = CompileToBytecode(
      *irp.root, optimizer::StatsSnapshot::Capture(p.db()),
      CompileMode::kFull);
  bool any_probe = false;
  for (const Insn& insn : bc.code) {
    any_probe |= insn.op == Insn::Op::kProbeOpenReg ||
                 insn.op == Insn::Op::kProbeOpenConst;
  }
  EXPECT_TRUE(any_probe);
}

TEST(BytecodeCompileTest, UnindexedFallsBackToScans) {
  Program p;
  p.db().SetIndexingEnabled(false);
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  ir::IRProgram irp;
  ASSERT_TRUE(ir::LowerProgram(&p, true, &irp).ok());

  BytecodeProgram bc = CompileToBytecode(
      *irp.root, optimizer::StatsSnapshot::Capture(p.db()),
      CompileMode::kFull);
  for (const Insn& insn : bc.code) {
    EXPECT_NE(insn.op, Insn::Op::kProbeOpenReg);
    EXPECT_NE(insn.op, Insn::Op::kProbeOpenConst);
  }
}

struct VmFixture {
  Program program;
  ir::IRProgram irp;
  datalog::PredicateId output;

  explicit VmFixture(
      const std::function<datalog::PredicateId(Dsl*)>& build) {
    Dsl dsl(&program);
    output = build(&dsl);
    CARAC_CHECK_OK(ir::LowerProgram(&program, true, &irp));
  }

  size_t Run(CompileMode mode = CompileMode::kFull) {
    BytecodeProgram bc = CompileToBytecode(
        *irp.root, optimizer::StatsSnapshot::Capture(program.db()), mode);
    ir::ExecContext ctx(&program.db());
    ir::Interpreter interp(&ctx);
    RunBytecode(bc, ctx, interp);
    return program.db().Get(output, storage::DbKind::kDerived).size();
  }
};

TEST(BytecodeVmTest, TransitiveClosure) {
  VmFixture f([](Dsl* dsl) {
    auto edge = dsl->Relation("Edge", 2);
    auto path = dsl->Relation("Path", 2);
    auto x = dsl->Var();
    auto y = dsl->Var();
    auto z = dsl->Var();
    path(x, y) <<= edge(x, y);
    path(x, z) <<= path(x, y) & edge(y, z);
    for (int i = 0; i < 10; ++i) edge.Fact(i, i + 1);
    return path.id();
  });
  EXPECT_EQ(f.Run(), 55u);
}

TEST(BytecodeVmTest, ConstantsAndComparisons) {
  VmFixture f([](Dsl* dsl) {
    auto n = dsl->Relation("N", 1);
    auto out = dsl->Relation("Out", 2);
    auto x = dsl->Var();
    auto d = dsl->Var();
    out(x, d) <<= n(x) & dsl->Lt(x, 5) & dsl->Mul(x, 10, d);
    for (int i = 0; i < 10; ++i) n.Fact(i);
    return out.id();
  });
  EXPECT_EQ(f.Run(), 5u);
}

TEST(BytecodeVmTest, NegationViaNotContains) {
  VmFixture f([](Dsl* dsl) {
    auto node = dsl->Relation("Node", 1);
    auto bad = dsl->Relation("Bad", 1);
    auto good = dsl->Relation("Good", 1);
    auto x = dsl->Var();
    good(x) <<= node(x) & !bad(x);
    for (int i = 0; i < 6; ++i) node.Fact(i);
    bad.Fact(2);
    bad.Fact(4);
    return good.id();
  });
  EXPECT_EQ(f.Run(), 4u);
}

TEST(BytecodeVmTest, AggregateBailsOutToInterpreter) {
  VmFixture f([](Dsl* dsl) {
    auto edge = dsl->Relation("Edge", 2);
    auto degree = dsl->Relation("Degree", 2);
    auto x = dsl->Var();
    auto y = dsl->Var();
    auto c = dsl->Var();
    dsl->AggRule(degree(x, c),
                 datalog::BodyExpr({edge(x, y).atom()}),
                 datalog::AggFunc::kCount);
    edge.Fact(1, 2);
    edge.Fact(1, 3);
    edge.Fact(2, 3);
    return degree.id();
  });
  EXPECT_EQ(f.Run(), 2u);
}

TEST(BytecodeVmTest, SnippetModeMatchesFull) {
  auto make = [] {
    return VmFixture([](Dsl* dsl) {
      auto edge = dsl->Relation("Edge", 2);
      auto path = dsl->Relation("Path", 2);
      auto x = dsl->Var();
      auto y = dsl->Var();
      auto z = dsl->Var();
      path(x, y) <<= edge(x, y);
      path(x, z) <<= path(x, y) & edge(y, z);
      for (int i = 0; i < 6; ++i) edge.Fact(i, i + 1);
      edge.Fact(6, 2);
      return path.id();
    });
  };
  VmFixture full = make();
  VmFixture snippet = make();
  EXPECT_EQ(full.Run(CompileMode::kFull),
            snippet.Run(CompileMode::kSnippet));
}

TEST(BytecodeVmTest, ArithCheckOnBoundOutput) {
  VmFixture f([](Dsl* dsl) {
    auto pair = dsl->Relation("Pair", 2);
    auto fixpoint = dsl->Relation("Fix", 1);
    auto x = dsl->Var();
    auto y = dsl->Var();
    // y must equal x + 0 -> checks the bound output path.
    fixpoint(x) <<= pair(x, y) & dsl->Add(x, 0, y);
    pair.Fact(3, 3);
    pair.Fact(4, 5);
    return fixpoint.id();
  });
  EXPECT_EQ(f.Run(), 1u);
}

}  // namespace
}  // namespace carac::backends
