#include <gtest/gtest.h>

#include "core/engine.h"
#include "datalog/dsl.h"
#include "datalog/rewrite.h"

namespace carac::datalog {
namespace {

TEST(RewriteTest, EliminatesSimpleAlias) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto link = dsl.Relation("Link", 2);  // Alias of Edge.
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  link(x, y) <<= edge(x, y);
  path(x, y) <<= link(x, y);
  path(x, z) <<= path(x, y) & link(y, z);

  EXPECT_EQ(EliminateAliases(&p), 1);
  ASSERT_EQ(p.rules().size(), 2u);
  EXPECT_FALSE(p.IsIdb(link.id()));
  for (const Rule& rule : p.rules()) {
    for (const Atom& atom : rule.body) {
      if (atom.is_relational()) {
        EXPECT_NE(atom.predicate, link.id());
      }
    }
  }
}

TEST(RewriteTest, CollapsesAliasChains) {
  Program p;
  Dsl dsl(&p);
  auto base = dsl.Relation("Base", 1);
  auto a1 = dsl.Relation("A1", 1);
  auto a2 = dsl.Relation("A2", 1);
  auto out = dsl.Relation("Out", 1);
  auto x = dsl.Var();
  a1(x) <<= base(x);
  a2(x) <<= a1(x);
  out(x) <<= a2(x);

  EXPECT_EQ(EliminateAliases(&p), 2);
  ASSERT_EQ(p.rules().size(), 1u);
  EXPECT_EQ(p.rules()[0].body[0].predicate, base.id());
}

TEST(RewriteTest, KeepsNonAliasShapes) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto swapped = dsl.Relation("Swapped", 2);
  auto diag = dsl.Relation("Diag", 2);
  auto filtered = dsl.Relation("Filtered", 2);
  auto multi = dsl.Relation("Multi", 2);
  auto other = dsl.Relation("Other", 2);
  auto [x, y] = dsl.Vars<2>();
  swapped(y, x) <<= edge(x, y);            // Column permutation.
  diag(x, x) <<= edge(x, x);               // Repeated variable.
  filtered(x, y) <<= edge(x, y) & dsl.Lt(x, y);  // Extra condition.
  multi(x, y) <<= edge(x, y);              // Two definitions.
  multi(x, y) <<= other(x, y);

  EXPECT_EQ(EliminateAliases(&p), 0);
  EXPECT_EQ(p.rules().size(), 5u);
}

TEST(RewriteTest, AliasWithOwnFactsKept) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto link = dsl.Relation("Link", 2);
  auto [x, y] = dsl.Vars<2>();
  link(x, y) <<= edge(x, y);
  link.Fact(10, 20);  // Own facts: must stay materialized.
  EXPECT_EQ(EliminateAliases(&p), 0);
}

TEST(RewriteTest, NegatedOccurrencesRewritten) {
  Program p;
  Dsl dsl(&p);
  auto node = dsl.Relation("Node", 1);
  auto bad = dsl.Relation("Bad", 1);
  auto alias = dsl.Relation("BadAlias", 1);
  auto good = dsl.Relation("Good", 1);
  auto x = dsl.Var();
  alias(x) <<= bad(x);
  good(x) <<= node(x) & !alias(x);

  EXPECT_EQ(EliminateAliases(&p), 1);
  ASSERT_EQ(p.rules().size(), 1u);
  const Atom& neg = p.rules()[0].body[1];
  EXPECT_TRUE(neg.negated);
  EXPECT_EQ(neg.predicate, bad.id());
}

TEST(RewriteTest, EngineResultsUnchangedModuloAlias) {
  auto build = [](Program* p, bool with_rewrite) {
    Dsl dsl(p);
    auto edge = dsl.Relation("Edge", 2);
    auto link = dsl.Relation("Link", 2);
    auto path = dsl.Relation("Path", 2);
    auto [x, y, z] = dsl.Vars<3>();
    link(x, y) <<= edge(x, y);
    path(x, y) <<= link(x, y);
    path(x, z) <<= path(x, y) & link(y, z);
    for (int i = 0; i < 8; ++i) edge.Fact(i, i + 1);
    core::EngineConfig config;
    config.eliminate_aliases = with_rewrite;
    core::Engine engine(p, config);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(path.id());
  };
  Program a, b;
  EXPECT_EQ(build(&a, false), build(&b, true));
}

TEST(RewriteTest, RewriteSavesMaterialization) {
  Program p;
  Dsl dsl(&p);
  auto edge = dsl.Relation("Edge", 2);
  auto link = dsl.Relation("Link", 2);
  auto path = dsl.Relation("Path", 2);
  auto [x, y, z] = dsl.Vars<3>();
  link(x, y) <<= edge(x, y);
  path(x, y) <<= link(x, y);
  path(x, z) <<= path(x, y) & link(y, z);
  for (int i = 0; i < 8; ++i) edge.Fact(i, i + 1);

  core::EngineConfig config;
  config.eliminate_aliases = true;
  core::Engine engine(&p, config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  // The alias is never materialized after the rewrite.
  EXPECT_EQ(engine.ResultSize(link.id()), 0u);
  EXPECT_EQ(engine.ResultSize(path.id()), 36u);
}

}  // namespace
}  // namespace carac::datalog
