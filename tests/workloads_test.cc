#include <gtest/gtest.h>

#include <fstream>

#include "analysis/factgen.h"
#include "analysis/loader.h"
#include "analysis/programs.h"
#include "core/engine.h"

namespace carac::analysis {
namespace {

size_t RunInterpreted(Workload* w) {
  core::Engine engine(w->program.get(), core::EngineConfig{});
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  return engine.ResultSize(w->output);
}

TEST(FactgenTest, SparseGraphDeterministicAndSized) {
  const auto a = GenerateSparseGraph(1, 100, 200);
  const auto b = GenerateSparseGraph(1, 100, 200);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 200u);
  const auto c = GenerateSparseGraph(2, 100, 200);
  EXPECT_NE(a, c);
  for (const Edge& e : a) {
    EXPECT_GE(e.first, 0);
    EXPECT_LT(e.first, 100);
    EXPECT_GE(e.second, 0);
    EXPECT_LT(e.second, 100);
  }
}

TEST(FactgenTest, CfgEdgesFormChain) {
  const auto edges = GenerateCfgEdges(3, 50, 0.0);
  ASSERT_EQ(edges.size(), 49u);  // Pure chain, no branches.
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i].first + 1, edges[i].second);
  }
  const auto branchy = GenerateCfgEdges(3, 50, 1.0);
  EXPECT_GT(branchy.size(), 49u);
}

TEST(FactgenTest, CspaFactsSplit) {
  const CspaFacts facts = GenerateCspaFacts(5, 1000);
  EXPECT_NEAR(static_cast<double>(facts.assign.size()), 600, 50);
  EXPECT_NEAR(static_cast<double>(facts.dereference.size()), 400, 50);
}

TEST(FactgenTest, SListLibHasInverseCallChains) {
  const SListLibFacts facts = GenerateSListLibFacts(7, 2);
  EXPECT_FALSE(facts.addr_of.empty());
  EXPECT_FALSE(facts.store.empty());
  bool any_serialize = false, any_deserialize = false;
  for (const auto& cr : facts.call_ret) {
    any_serialize |= cr[1] == facts.serialize_func;
    any_deserialize |= cr[1] == facts.deserialize_func;
  }
  EXPECT_TRUE(any_serialize);
  EXPECT_TRUE(any_deserialize);
}

TEST(WorkloadTest, OrderFormulationsAgreeTc) {
  const auto edges = GenerateSparseGraph(11, 40, 60);
  Workload a = MakeTransitiveClosure(edges, RuleOrder::kHandOptimized);
  Workload b = MakeTransitiveClosure(edges, RuleOrder::kUnoptimized);
  EXPECT_EQ(RunInterpreted(&a), RunInterpreted(&b));
}

TEST(WorkloadTest, CspaBothOrdersAgree) {
  CspaConfig config;
  config.total_tuples = 300;
  Workload a = MakeCspa(config, RuleOrder::kHandOptimized);
  Workload b = MakeCspa(config, RuleOrder::kUnoptimized);
  const size_t ra = RunInterpreted(&a);
  EXPECT_EQ(ra, RunInterpreted(&b));
  EXPECT_GT(ra, 0u);
}

TEST(WorkloadTest, CsdaProducesFlow) {
  CsdaConfig config;
  config.length = 400;
  Workload w = MakeCsda(config);
  EXPECT_GT(RunInterpreted(&w), 0u);
}

TEST(WorkloadTest, AndersenBothOrdersAgree) {
  SListConfig config;
  config.scale = 2;
  Workload a = MakeAndersen(config, RuleOrder::kHandOptimized);
  Workload b = MakeAndersen(config, RuleOrder::kUnoptimized);
  const size_t ra = RunInterpreted(&a);
  EXPECT_EQ(ra, RunInterpreted(&b));
  EXPECT_GT(ra, 0u);
}

TEST(WorkloadTest, InverseFunctionsFindsWastedWork) {
  SListConfig config;
  config.scale = 2;
  Workload w = MakeInverseFunctions(config, RuleOrder::kHandOptimized);
  EXPECT_GT(RunInterpreted(&w), 0u);

  Workload u = MakeInverseFunctions(config, RuleOrder::kUnoptimized);
  Workload h = MakeInverseFunctions(config, RuleOrder::kHandOptimized);
  EXPECT_EQ(RunInterpreted(&u), RunInterpreted(&h));
}

TEST(WorkloadTest, AckermannComputesKnownValues) {
  Workload w = MakeAckermann(61, RuleOrder::kHandOptimized);
  RunInterpreted(&w);
  const auto& derived =
      w.program->db().Get(w.output, storage::DbKind::kDerived);
  EXPECT_TRUE(derived.Contains({0, 0, 1}));    // ack(0,0) = 1
  EXPECT_TRUE(derived.Contains({1, 1, 3}));    // ack(1,1) = 3
  EXPECT_TRUE(derived.Contains({2, 2, 7}));    // ack(2,2) = 7
  EXPECT_TRUE(derived.Contains({3, 3, 61}));   // ack(3,3) = 61
}

TEST(WorkloadTest, AckermannOrdersAgree) {
  Workload a = MakeAckermann(29, RuleOrder::kHandOptimized);
  Workload b = MakeAckermann(29, RuleOrder::kUnoptimized);
  EXPECT_EQ(RunInterpreted(&a), RunInterpreted(&b));
}

TEST(WorkloadTest, FibonacciComputesKnownValues) {
  Workload w = MakeFibonacci(25, RuleOrder::kHandOptimized);
  RunInterpreted(&w);
  const auto& derived =
      w.program->db().Get(w.output, storage::DbKind::kDerived);
  EXPECT_TRUE(derived.Contains({10, 55}));
  EXPECT_TRUE(derived.Contains({25, 75025}));
  EXPECT_EQ(derived.size(), 26u);  // fib(0)..fib(25), functional.
}

TEST(WorkloadTest, FibonacciOrdersAgree) {
  Workload a = MakeFibonacci(18, RuleOrder::kHandOptimized);
  Workload b = MakeFibonacci(18, RuleOrder::kUnoptimized);
  EXPECT_EQ(RunInterpreted(&a), RunInterpreted(&b));
}

TEST(WorkloadTest, PrimesComputesKnownValues) {
  Workload w = MakePrimes(100, RuleOrder::kHandOptimized);
  EXPECT_EQ(RunInterpreted(&w), 25u);  // 25 primes below 100.
  const auto& derived =
      w.program->db().Get(w.output, storage::DbKind::kDerived);
  EXPECT_TRUE(derived.Contains({97}));
  EXPECT_FALSE(derived.Contains({91}));  // 7 * 13.
}

TEST(WorkloadTest, WorkloadsExposeRelationsByName) {
  CspaConfig config;
  config.total_tuples = 50;
  Workload w = MakeCspa(config, RuleOrder::kHandOptimized);
  EXPECT_TRUE(w.relations.count("Assign"));
  EXPECT_TRUE(w.relations.count("VAlias"));
  EXPECT_EQ(w.relations.at("VAlias"), w.output);
}

TEST(LoaderTest, CsvRoundTrip) {
  datalog::Program p;
  const auto r = p.AddRelation("R", 2);
  p.AddFact(r, {1, 2});
  p.AddFact(r, {3, p.Intern("hello")});
  const std::string path = ::testing::TempDir() + "/carac_loader_test.csv";
  ASSERT_TRUE(WriteFactsCsv(path, p, r).ok());

  datalog::Program q;
  const auto r2 = q.AddRelation("R", 2);
  ASSERT_TRUE(LoadFactsCsv(path, &q, r2).ok());
  const auto& rel = q.db().Get(r2, storage::DbKind::kDerived);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_TRUE(rel.Contains({3, q.Intern("hello")}));
}

TEST(LoaderTest, MissingFileIsNotFound) {
  datalog::Program p;
  const auto r = p.AddRelation("R", 1);
  EXPECT_EQ(LoadFactsCsv("/nonexistent/facts.csv", &p, r).code(),
            util::StatusCode::kNotFound);
}

TEST(LoaderTest, ArityMismatchRejected) {
  const std::string path = ::testing::TempDir() + "/carac_loader_bad.csv";
  {
    std::ofstream out(path);
    out << "1\t2\t3\n";
  }
  datalog::Program p;
  const auto r = p.AddRelation("R", 2);
  EXPECT_FALSE(LoadFactsCsv(path, &p, r).ok());
}

}  // namespace
}  // namespace carac::analysis
