#include <gtest/gtest.h>

#include "backends/quotes_backend.h"
#include "backends/quotes_codegen.h"
#include "datalog/dsl.h"
#include "ir/interpreter.h"
#include "ir/lowering.h"

namespace carac::backends {
namespace {

using datalog::Dsl;
using datalog::Program;

struct Fixture {
  Program program;
  ir::IRProgram irp;
  datalog::PredicateId output;

  explicit Fixture(const std::function<datalog::PredicateId(Dsl*)>& build) {
    Dsl dsl(&program);
    output = build(&dsl);
    CARAC_CHECK_OK(ir::LowerProgram(&program, true, &irp));
  }
};

datalog::PredicateId BuildTc(Dsl* dsl) {
  auto edge = dsl->Relation("Edge", 2);
  auto path = dsl->Relation("Path", 2);
  auto x = dsl->Var();
  auto y = dsl->Var();
  auto z = dsl->Var();
  path(x, y) <<= edge(x, y);
  path(x, z) <<= path(x, y) & edge(y, z);
  for (int i = 0; i < 7; ++i) edge.Fact(i, i + 1);
  return path.id();
}

TEST(QuotesCodegenTest, GeneratesSelfContainedSource) {
  Fixture f(BuildTc);
  QuotesPools pools;
  const std::string source = GenerateQuotesSource(
      *f.irp.root, optimizer::StatsSnapshot::Capture(f.program.db()),
      CompileMode::kFull, &pools);
  // Entry point, ABI struct and loop structure must all be present.
  EXPECT_NE(source.find("carac_entry"), std::string::npos);
  EXPECT_NE(source.find("struct CaracQuotesApi"), std::string::npos);
  EXPECT_NE(source.find("iter_next"), std::string::npos);
  EXPECT_NE(source.find("do {"), std::string::npos);
  EXPECT_NE(source.find("swap_clear"), std::string::npos);
  // No includes: the source must compile in isolation.
  EXPECT_EQ(source.find("#include"), std::string::npos);
  EXPECT_FALSE(pools.relation_sets.empty());
}

TEST(QuotesCodegenTest, SnippetSplicesContinuations) {
  Fixture f(BuildTc);
  QuotesPools pools;
  const std::string source = GenerateQuotesSource(
      *f.irp.root, optimizer::StatsSnapshot::Capture(f.program.db()),
      CompileMode::kSnippet, &pools);
  EXPECT_NE(source.find("call_node"), std::string::npos);
  EXPECT_FALSE(pools.call_nodes.empty());
}

TEST(QuotesCodegenTest, ConstantsAreInlined) {
  Fixture f([](Dsl* dsl) {
    auto edge = dsl->Relation("Edge", 2);
    auto out = dsl->Relation("Out", 1);
    auto x = dsl->Var();
    out(x) <<= edge(42, x);
    edge.Fact(42, 1);
    return out.id();
  });
  QuotesPools pools;
  const std::string source = GenerateQuotesSource(
      *f.irp.root, optimizer::StatsSnapshot::Capture(f.program.db()),
      CompileMode::kFull, &pools);
  EXPECT_NE(source.find("42"), std::string::npos);
}

// The remaining tests invoke the real compiler; they are skipped when the
// environment has none (CARAC_CXX=/nonexistent disables them).

bool CompilerAvailable() {
  const char* cxx = std::getenv("CARAC_CXX");
  std::string probe = std::string(cxx != nullptr ? cxx : "c++") +
                      " --version > /dev/null 2>&1";
  return std::system(probe.c_str()) == 0;
}

TEST(QuotesBackendTest, CompilesAndRunsTransitiveClosure) {
  if (!CompilerAvailable()) GTEST_SKIP() << "no C++ compiler";
  Fixture f(BuildTc);
  QuotesBackend backend;
  CompileRequest request;
  request.subtree = f.irp.root->Clone();
  request.stats = optimizer::StatsSnapshot::Capture(f.program.db());
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend.Compile(std::move(request), &unit).ok());

  ir::ExecContext ctx(&f.program.db());
  ir::Interpreter interp(&ctx);
  unit->Run(ctx, interp, *f.irp.root);
  EXPECT_EQ(f.program.db().Get(f.output, storage::DbKind::kDerived).size(),
            28u);  // 8-chain: 7+6+...+1.
}

TEST(QuotesBackendTest, CacheHitsOnIdenticalSource) {
  if (!CompilerAvailable()) GTEST_SKIP() << "no C++ compiler";
  ClearQuotesCache();
  Fixture f1(BuildTc);
  QuotesBackend backend;

  CompileRequest r1;
  r1.subtree = f1.irp.root->Clone();
  r1.stats = optimizer::StatsSnapshot::Capture(f1.program.db());
  std::unique_ptr<CompiledUnit> u1;
  ASSERT_TRUE(backend.Compile(std::move(r1), &u1).ok());
  EXPECT_FALSE(backend.last_was_cache_hit());

  Fixture f2(BuildTc);  // Identical program -> identical source.
  CompileRequest r2;
  r2.subtree = f2.irp.root->Clone();
  r2.stats = optimizer::StatsSnapshot::Capture(f2.program.db());
  std::unique_ptr<CompiledUnit> u2;
  ASSERT_TRUE(backend.Compile(std::move(r2), &u2).ok());
  EXPECT_TRUE(backend.last_was_cache_hit());
}

TEST(QuotesBackendTest, NegationAndBuiltins) {
  if (!CompilerAvailable()) GTEST_SKIP() << "no C++ compiler";
  Fixture f([](Dsl* dsl) {
    auto n = dsl->Relation("N", 1);
    auto odd = dsl->Relation("Odd", 1);
    auto even = dsl->Relation("EvenSq", 2);
    auto x = dsl->Var();
    auto r = dsl->Var();
    auto s = dsl->Var();
    odd(x) <<= n(x) & dsl->Mod(x, 2, r) & dsl->Eq(r, 1);
    even(x, s) <<= n(x) & !odd(x) & dsl->Mul(x, x, s);
    for (int i = 0; i < 10; ++i) n.Fact(i);
    return even.id();
  });
  QuotesBackend backend;
  CompileRequest request;
  request.subtree = f.irp.root->Clone();
  request.stats = optimizer::StatsSnapshot::Capture(f.program.db());
  std::unique_ptr<CompiledUnit> unit;
  ASSERT_TRUE(backend.Compile(std::move(request), &unit).ok());
  ir::ExecContext ctx(&f.program.db());
  ir::Interpreter interp(&ctx);
  unit->Run(ctx, interp, *f.irp.root);
  // Even squares: 0,2,4,6,8.
  EXPECT_EQ(f.program.db().Get(f.output, storage::DbKind::kDerived).size(),
            5u);
  EXPECT_TRUE(f.program.db()
                  .Get(f.output, storage::DbKind::kDerived)
                  .Contains({8, 64}));
}

TEST(QuotesBackendTest, FailsGracefullyWithoutCompiler) {
  Fixture f(BuildTc);
  setenv("CARAC_CXX", "/nonexistent/compiler", 1);
  ClearQuotesCache();
  QuotesBackend backend;
  CompileRequest request;
  request.subtree = f.irp.root->Clone();
  request.stats = optimizer::StatsSnapshot::Capture(f.program.db());
  std::unique_ptr<CompiledUnit> unit;
  EXPECT_FALSE(backend.Compile(std::move(request), &unit).ok());
  unsetenv("CARAC_CXX");
  ClearQuotesCache();
}

}  // namespace
}  // namespace carac::backends
