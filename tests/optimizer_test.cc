#include <gtest/gtest.h>

#include "datalog/dsl.h"
#include "datalog/parser.h"
#include "ir/lowering.h"
#include "optimizer/freshness.h"
#include "optimizer/join_order.h"
#include "optimizer/selectivity.h"
#include "optimizer/statistics.h"

namespace carac::optimizer {
namespace {

using datalog::Dsl;
using datalog::Program;
using ir::AtomSpec;
using ir::IROp;
using ir::LocalTerm;
using ir::OpKind;

AtomSpec RelAtom(datalog::PredicateId pred,
                 std::vector<LocalTerm> terms,
                 storage::DbKind source = storage::DbKind::kDerived) {
  AtomSpec atom;
  atom.predicate = pred;
  atom.source = source;
  atom.terms = std::move(terms);
  return atom;
}

TEST(StatsSnapshotTest, CapturesCardinalitiesAndIndexes) {
  storage::DatabaseSet db;
  const auto r = db.AddRelation("R", 2);
  db.DeclareIndex(r, 1);
  db.InsertFact(r, {1, 2});
  db.InsertFact(r, {3, 4});
  db.Get(r, storage::DbKind::kDeltaKnown).Insert({5, 6});

  StatsSnapshot snap = StatsSnapshot::Capture(db);
  EXPECT_EQ(snap.Cardinality(r, storage::DbKind::kDerived), 2u);
  EXPECT_EQ(snap.Cardinality(r, storage::DbKind::kDeltaKnown), 1u);
  EXPECT_EQ(snap.Cardinality(r, storage::DbKind::kDeltaNew), 0u);
  EXPECT_TRUE(snap.HasIndex(r, 1));
  EXPECT_FALSE(snap.HasIndex(r, 0));
}

TEST(SelectivityTest, CountsBoundConditions) {
  std::set<ir::LocalVar> bound{0};
  AtomSpec atom = RelAtom(0, {LocalTerm::Var(0), LocalTerm::Var(1)});
  EXPECT_EQ(CountBoundConditions(atom, bound), 1);
  AtomSpec with_const =
      RelAtom(0, {LocalTerm::Const(5), LocalTerm::Var(1)});
  EXPECT_EQ(CountBoundConditions(with_const, bound), 1);
  AtomSpec self_join = RelAtom(0, {LocalTerm::Var(2), LocalTerm::Var(2)});
  EXPECT_EQ(CountBoundConditions(self_join, bound), 1);
}

TEST(SelectivityTest, Connectivity) {
  std::set<ir::LocalVar> bound{1};
  EXPECT_TRUE(IsConnected(RelAtom(0, {LocalTerm::Var(1), LocalTerm::Var(2)}),
                          bound));
  EXPECT_FALSE(IsConnected(RelAtom(0, {LocalTerm::Var(3), LocalTerm::Var(4)}),
                           bound));
}

class JoinOrderTest : public ::testing::Test {
 protected:
  /// Three relations with very different cardinalities:
  /// Big (1000), Mid (100), Tiny (2).
  void SetUp() override {
    big_ = db_.AddRelation("Big", 2);
    mid_ = db_.AddRelation("Mid", 2);
    tiny_ = db_.AddRelation("Tiny", 2);
    for (int i = 0; i < 1000; ++i) db_.InsertFact(big_, {i, i + 1});
    for (int i = 0; i < 100; ++i) db_.InsertFact(mid_, {i, i + 1});
    db_.InsertFact(tiny_, {0, 1});
    db_.InsertFact(tiny_, {1, 2});
  }

  /// SPJ: H(l0,l3) :- Big(l0,l1), Mid(l1,l2), Tiny(l2,l3) in given order.
  std::unique_ptr<IROp> MakeSpj(std::vector<AtomSpec> atoms) {
    auto op = std::make_unique<IROp>(OpKind::kSpj);
    op->target = big_;
    op->atoms = std::move(atoms);
    op->head_terms = {LocalTerm::Var(0), LocalTerm::Var(3)};
    op->num_locals = 4;
    return op;
  }

  storage::DatabaseSet db_;
  datalog::PredicateId big_, mid_, tiny_;
};

TEST_F(JoinOrderTest, SmallestRelationFirst) {
  auto op = MakeSpj({
      RelAtom(big_, {LocalTerm::Var(0), LocalTerm::Var(1)}),
      RelAtom(mid_, {LocalTerm::Var(1), LocalTerm::Var(2)}),
      RelAtom(tiny_, {LocalTerm::Var(2), LocalTerm::Var(3)}),
  });
  StatsSnapshot stats = StatsSnapshot::Capture(db_);
  JoinOrderConfig config;
  EXPECT_TRUE(ReorderSubquery(stats, config, op.get()));
  EXPECT_EQ(op->atoms[0].predicate, tiny_);
}

TEST_F(JoinOrderTest, AvoidsCartesianProducts) {
  // Tiny(l2,l3) and Big(l0,l1) share nothing; Mid connects them. After
  // Tiny, Mid must come before Big even though Big x Tiny is "possible".
  auto op = MakeSpj({
      RelAtom(tiny_, {LocalTerm::Var(2), LocalTerm::Var(3)}),
      RelAtom(big_, {LocalTerm::Var(0), LocalTerm::Var(1)}),
      RelAtom(mid_, {LocalTerm::Var(1), LocalTerm::Var(2)}),
  });
  StatsSnapshot stats = StatsSnapshot::Capture(db_);
  JoinOrderConfig config;
  ReorderSubquery(stats, config, op.get());
  EXPECT_EQ(op->atoms[0].predicate, tiny_);
  EXPECT_EQ(op->atoms[1].predicate, mid_);
  EXPECT_EQ(op->atoms[2].predicate, big_);
}

TEST_F(JoinOrderTest, EmptyDeltaGoesFirst) {
  // The paper's 7th-iteration example: an empty delta should lead the
  // join even though it is "disconnected" — anything times zero is zero.
  auto op = MakeSpj({
      RelAtom(big_, {LocalTerm::Var(0), LocalTerm::Var(1)}),
      RelAtom(mid_, {LocalTerm::Var(1), LocalTerm::Var(2)}),
      RelAtom(tiny_, {LocalTerm::Var(2), LocalTerm::Var(3)},
              storage::DbKind::kDeltaKnown),  // Empty store.
  });
  StatsSnapshot stats = StatsSnapshot::Capture(db_);
  JoinOrderConfig config;
  ReorderSubquery(stats, config, op.get());
  EXPECT_EQ(op->atoms[0].source, storage::DbKind::kDeltaKnown);
}

TEST_F(JoinOrderTest, RulesOnlyModeIgnoresCardinalities) {
  auto op = MakeSpj({
      RelAtom(big_, {LocalTerm::Var(0), LocalTerm::Var(1)}),
      RelAtom(mid_, {LocalTerm::Var(1), LocalTerm::Var(2)}),
      RelAtom(tiny_, {LocalTerm::Var(2), LocalTerm::Var(3)}),
  });
  StatsSnapshot stats = StatsSnapshot::Capture(db_);
  JoinOrderConfig config;
  config.use_cardinalities = false;
  ReorderSubquery(stats, config, op.get());
  // Without cardinalities all atoms look alike; order must still be
  // connected (no cartesian products).
  std::set<ir::LocalVar> bound;
  for (size_t i = 0; i < op->atoms.size(); ++i) {
    if (i > 0) {
      EXPECT_TRUE(IsConnected(op->atoms[i], bound));
    }
    for (const LocalTerm& t : op->atoms[i].terms) {
      if (t.is_var) bound.insert(t.var);
    }
  }
}

TEST_F(JoinOrderTest, ReorderReportsNoChangeOnOptimalInput) {
  auto op = MakeSpj({
      RelAtom(tiny_, {LocalTerm::Var(2), LocalTerm::Var(3)}),
      RelAtom(mid_, {LocalTerm::Var(1), LocalTerm::Var(2)}),
      RelAtom(big_, {LocalTerm::Var(0), LocalTerm::Var(1)}),
  });
  StatsSnapshot stats = StatsSnapshot::Capture(db_);
  JoinOrderConfig config;
  EXPECT_FALSE(ReorderSubquery(stats, config, op.get()));
}

TEST_F(JoinOrderTest, SingleAtomNeverChanges) {
  auto op = MakeSpj({RelAtom(big_, {LocalTerm::Var(0), LocalTerm::Var(1)})});
  op->head_terms = {LocalTerm::Var(0), LocalTerm::Var(1)};
  StatsSnapshot stats = StatsSnapshot::Capture(db_);
  JoinOrderConfig config;
  EXPECT_FALSE(ReorderSubquery(stats, config, op.get()));
}

TEST(FreshnessTest, UnknownNodeIsStale) {
  storage::DatabaseSet db;
  const auto r = db.AddRelation("R", 1);
  IROp op(OpKind::kSpj);
  op.atoms = {RelAtom(r, {LocalTerm::Var(0)})};
  FreshnessTracker tracker(0.1);
  EXPECT_FALSE(tracker.IsFresh(1, op, StatsSnapshot::Capture(db)));
}

TEST(FreshnessTest, UnchangedStatsAreFresh) {
  storage::DatabaseSet db;
  const auto r = db.AddRelation("R", 1);
  db.InsertFact(r, {1});
  IROp op(OpKind::kSpj);
  op.atoms = {RelAtom(r, {LocalTerm::Var(0)})};
  FreshnessTracker tracker(0.1);
  StatsSnapshot snap = StatsSnapshot::Capture(db);
  tracker.Record(1, op, snap);
  EXPECT_TRUE(tracker.IsFresh(1, op, snap));
}

TEST(FreshnessTest, UniformGrowthStaysFresh) {
  storage::DatabaseSet db;
  const auto a = db.AddRelation("A", 1);
  const auto b = db.AddRelation("B", 1);
  for (int i = 0; i < 10; ++i) db.InsertFact(a, {i});
  for (int i = 0; i < 10; ++i) db.InsertFact(b, {i});
  IROp op(OpKind::kSpj);
  op.atoms = {RelAtom(a, {LocalTerm::Var(0)}),
              RelAtom(b, {LocalTerm::Var(0)})};
  FreshnessTracker tracker(0.1);
  tracker.Record(1, op, StatsSnapshot::Capture(db));
  // Double both: relative shares unchanged -> still fresh.
  for (int i = 10; i < 20; ++i) db.InsertFact(a, {i});
  for (int i = 10; i < 20; ++i) db.InsertFact(b, {i});
  EXPECT_TRUE(tracker.IsFresh(1, op, StatsSnapshot::Capture(db)));
}

TEST(FreshnessTest, RelativeShiftGoesStale) {
  storage::DatabaseSet db;
  const auto a = db.AddRelation("A", 1);
  const auto b = db.AddRelation("B", 1);
  for (int i = 0; i < 10; ++i) db.InsertFact(a, {i});
  for (int i = 0; i < 10; ++i) db.InsertFact(b, {i});
  IROp op(OpKind::kSpj);
  op.atoms = {RelAtom(a, {LocalTerm::Var(0)}),
              RelAtom(b, {LocalTerm::Var(0)})};
  FreshnessTracker tracker(0.1);
  tracker.Record(1, op, StatsSnapshot::Capture(db));
  // Grow only b: shares shift from 50/50 to ~9/91.
  for (int i = 10; i < 100; ++i) db.InsertFact(b, {i});
  EXPECT_FALSE(tracker.IsFresh(1, op, StatsSnapshot::Capture(db)));
}

TEST(FreshnessTest, ForgetMakesStale) {
  storage::DatabaseSet db;
  const auto r = db.AddRelation("R", 1);
  IROp op(OpKind::kSpj);
  op.atoms = {RelAtom(r, {LocalTerm::Var(0)})};
  FreshnessTracker tracker(0.1);
  StatsSnapshot snap = StatsSnapshot::Capture(db);
  tracker.Record(7, op, snap);
  EXPECT_TRUE(tracker.IsFresh(7, op, snap));
  tracker.Forget(7);
  EXPECT_FALSE(tracker.IsFresh(7, op, snap));
}

TEST(JoinOrderSubtreeTest, ReordersEverySubquery) {
  datalog::Program p;
  Dsl dsl(&p);
  auto big = dsl.Relation("Big", 2);
  auto tiny = dsl.Relation("Tiny", 2);
  auto out = dsl.Relation("Out", 2);
  auto [x, y, z] = dsl.Vars<3>();
  out(x, z) <<= big(x, y) & tiny(y, z);
  for (int i = 0; i < 200; ++i) big.Fact(i, i + 1);
  tiny.Fact(0, 1);

  ir::IRProgram irp;
  ASSERT_TRUE(ir::LowerProgram(&p, true, &irp).ok());
  StatsSnapshot stats = StatsSnapshot::Capture(p.db());
  JoinOrderConfig config;
  const int changed = ReorderSubtree(stats, config, irp.root.get());
  EXPECT_GE(changed, 1);
}

datalog::PredicateId PredByName(const datalog::Program& p,
                                const std::string& name) {
  for (datalog::PredicateId id = 0; id < p.NumPredicates(); ++id) {
    if (p.PredicateName(id) == name) return id;
  }
  ADD_FAILURE() << "no predicate " << name;
  return 0;
}

TEST(AccessPathProfileTest, ClassifiesPointAndRangeUses) {
  datalog::Program p;
  ASSERT_TRUE(datalog::ParseDatalog(R"(
    Edge(1, 2).
    Path(x, y) :- Edge(x, y).
    Path(x, z) :- Path(x, y), Edge(y, z).
    Num(1).
    InRange(x) :- Num(x), x >= 0, x <= 9.
  )", &p).ok());
  const AccessPathProfile profile = ProfileAccessPaths(p);

  // y joins Path and Edge: both sides of the join are point-probed.
  const auto edge0 = profile.columns.find({PredByName(p, "Edge"), 0});
  ASSERT_NE(edge0, profile.columns.end());
  EXPECT_GE(edge0->second.point_uses, 1u);
  EXPECT_EQ(edge0->second.range_uses, 0u);
  const auto path1 = profile.columns.find({PredByName(p, "Path"), 1});
  ASSERT_NE(path1, profile.columns.end());
  EXPECT_GE(path1->second.point_uses, 1u);

  // x in the InRange rule is only ever compared: a range-only column.
  const auto num0 = profile.columns.find({PredByName(p, "Num"), 0});
  ASSERT_NE(num0, profile.columns.end());
  EXPECT_EQ(num0->second.point_uses, 0u);
  EXPECT_GE(num0->second.range_uses, 1u);
}

TEST(ChooseIndexKindTest, OnlyRangeOnlyColumnsLeaveHash) {
  const ColumnAccess range_only{/*point_uses=*/0, /*range_uses=*/2};
  EXPECT_EQ(ChooseIndexKind(range_only, /*edb_rows=*/10, /*is_idb=*/true),
            storage::IndexKind::kBtree);
  EXPECT_EQ(ChooseIndexKind(range_only, /*edb_rows=*/10, /*is_idb=*/false),
            storage::IndexKind::kSorted);
  EXPECT_EQ(ChooseIndexKind(range_only, kSortedArrayMinRows,
                            /*is_idb=*/false),
            storage::IndexKind::kSortedArray);

  // Any point evidence keeps the O(1) organization, range uses or not.
  const ColumnAccess mixed{/*point_uses=*/1, /*range_uses=*/2};
  EXPECT_EQ(ChooseIndexKind(mixed, kSortedArrayMinRows, /*is_idb=*/true),
            storage::IndexKind::kHash);
  const ColumnAccess point_only{/*point_uses=*/3, /*range_uses=*/0};
  EXPECT_EQ(ChooseIndexKind(point_only, 10, /*is_idb=*/false),
            storage::IndexKind::kHash);
}

}  // namespace
}  // namespace carac::optimizer
