#include <gtest/gtest.h>

#include <fstream>

#include "core/engine.h"
#include "datalog/parser.h"
#include "storage/index.h"

namespace carac::datalog {
namespace {

std::vector<storage::Tuple> RunAndGet(Program* p, const std::string& rel) {
  core::Engine engine(p, core::EngineConfig{});
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  for (PredicateId id = 0; id < p->NumPredicates(); ++id) {
    if (p->PredicateName(id) == rel) return engine.Results(id);
  }
  CARAC_CHECK(false);
  return {};
}

TEST(ParserTest, FactsAndTransitiveClosure) {
  Program p;
  ASSERT_TRUE(ParseDatalog(R"(
    % transitive closure
    Edge(1, 2).
    Edge(2, 3).
    Edge(3, 4).
    Path(x, y) :- Edge(x, y).
    Path(x, z) :- Path(x, y), Edge(y, z).
  )", &p).ok());
  EXPECT_EQ(RunAndGet(&p, "Path").size(), 6u);
}

TEST(ParserTest, NegationAndComparison) {
  Program p;
  ASSERT_TRUE(ParseDatalog(R"(
    Num(1). Num(2). Num(3). Num(4). Num(5).
    Big(x) :- Num(x), x >= 3.
    Small(x) :- Num(x), !Big(x).
  )", &p).ok());
  const auto small = RunAndGet(&p, "Small");
  ASSERT_EQ(small.size(), 2u);
  EXPECT_EQ(small[0], (storage::Tuple{1}));
  EXPECT_EQ(small[1], (storage::Tuple{2}));
}

TEST(ParserTest, ArithmeticConstraint) {
  Program p;
  ASSERT_TRUE(ParseDatalog(R"(
    Num(3). Num(7).
    Doubled(x, y) :- Num(x), y = x * 2.
  )", &p).ok());
  const auto rows = RunAndGet(&p, "Doubled");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (storage::Tuple{3, 6}));
  EXPECT_EQ(rows[1], (storage::Tuple{7, 14}));
}

TEST(ParserTest, StringConstants) {
  Program p;
  ASSERT_TRUE(ParseDatalog(R"(
    Inv("deserialize", "serialize").
    Pair(f, g) :- Inv(f, g).
  )", &p).ok());
  const auto rows = RunAndGet(&p, "Pair");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], p.Intern("deserialize"));
  EXPECT_EQ(rows[0][1], p.Intern("serialize"));
}

TEST(ParserTest, CommentsAndWhitespaceVariants) {
  Program p;
  ASSERT_TRUE(ParseDatalog(
      "Edge(1,2). // c++-style comment\n"
      "Edge(2,3). % datalog-style comment\n"
      "Path(x,y):-Edge(x,y).", &p).ok());
  EXPECT_EQ(RunAndGet(&p, "Path").size(), 2u);
}

TEST(ParserTest, NegativeNumbers) {
  Program p;
  ASSERT_TRUE(ParseDatalog("Temp(-5). Temp(3).\n"
                           "Freezing(x) :- Temp(x), x < 0.", &p).ok());
  const auto rows = RunAndGet(&p, "Freezing");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (storage::Tuple{-5}));
}

TEST(ParserTest, VariablesAreRuleScoped) {
  Program p;
  ASSERT_TRUE(ParseDatalog(R"(
    A(1). B(2).
    OutA(x) :- A(x).
    OutB(x) :- B(x).
  )", &p).ok());
  EXPECT_EQ(RunAndGet(&p, "OutA")[0], (storage::Tuple{1}));
  EXPECT_EQ(RunAndGet(&p, "OutB")[0], (storage::Tuple{2}));
}

TEST(ParserTest, RejectsArityMismatch) {
  Program p;
  util::Status s = ParseDatalog("Edge(1, 2).\nEdge(1, 2, 3).", &p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("arity"), std::string::npos);
}

TEST(ParserTest, LowercaseRelationDiagnosticTeachesCaseConvention) {
  Program p;
  util::Status s = ParseDatalog("path(x, y) :- Edge(x, y).", &p);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'path'"), std::string::npos);
  EXPECT_NE(s.message().find("relations start uppercase"), std::string::npos);
}

TEST(ParserTest, RejectsNonGroundFact) {
  Program p;
  EXPECT_FALSE(ParseDatalog("Edge(x, 2).", &p).ok());
}

TEST(ParserTest, RejectsUnsafeRuleWithLineNumber) {
  Program p;
  util::Status s = ParseDatalog("A(1).\nOut(y) :- A(x).", &p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsSyntaxErrors) {
  Program p;
  EXPECT_FALSE(ParseDatalog("Edge(1, 2", &p).ok());
  EXPECT_FALSE(ParseDatalog("Edge(1, 2);", &p).ok());
  EXPECT_FALSE(ParseDatalog("path(x) :- Edge(x, y).", &p).ok());  // lowercase head
  EXPECT_FALSE(ParseDatalog("A(x) :- B(x), x # 2.", &p).ok());
  EXPECT_FALSE(ParseDatalog("A(\"unterminated).", &p).ok());
}

TEST(ParserTest, RejectsNegatedHead) {
  Program p;
  EXPECT_FALSE(ParseDatalog("!A(x) :- B(x).", &p).ok());
}

TEST(ParserTest, IndexPragmaRegistersHint) {
  Program p;
  ASSERT_TRUE(ParseDatalog(R"(
    Edge(1, 2).
    Path(x, y) :- Edge(x, y).
    Path(x, z) :- Path(x, y), Edge(y, z).
    @index(Edge, 0, btree).
    @index(Path, 1, sorted_array).
  )", &p).ok());
  ASSERT_EQ(p.index_hints().size(), 2u);
  EXPECT_EQ(p.index_hints()[0].column, 0u);
  EXPECT_EQ(p.index_hints()[0].kind, storage::IndexKind::kBtree);
  EXPECT_EQ(p.PredicateName(p.index_hints()[0].predicate), "Edge");
  EXPECT_EQ(p.index_hints()[1].column, 1u);
  EXPECT_EQ(p.index_hints()[1].kind, storage::IndexKind::kSortedArray);
  EXPECT_EQ(p.PredicateName(p.index_hints()[1].predicate), "Path");
  // The hinted program still evaluates normally.
  EXPECT_EQ(RunAndGet(&p, "Path").size(), 1u);
}

TEST(ParserTest, IndexPragmaRejectsUnknownPragma) {
  Program p;
  util::Status s = ParseDatalog("Edge(1, 2).\n@frobnicate(Edge).", &p);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("@index"), std::string::npos);
}

TEST(ParserTest, IndexPragmaRejectsUnknownRelation) {
  Program p;
  util::Status s = ParseDatalog("@index(Edge, 0, hash).", &p);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("fact or rule first"), std::string::npos);
}

TEST(ParserTest, IndexPragmaRejectsColumnOutOfRange) {
  Program p;
  util::Status s = ParseDatalog("Edge(1, 2).\n@index(Edge, 2, hash).", &p);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of range"), std::string::npos);
}

TEST(ParserTest, IndexPragmaRejectsUnknownKind) {
  Program p;
  util::Status s = ParseDatalog("Edge(1, 2).\n@index(Edge, 0, lsm).", &p);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown index kind"), std::string::npos);
}

TEST(ParserTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/carac_parser_test.dl";
  {
    std::ofstream out(path);
    out << "Edge(1, 2).\nEdge(2, 3).\n"
        << "Path(x, y) :- Edge(x, y).\n"
        << "Path(x, z) :- Path(x, y), Edge(y, z).\n";
  }
  Program p;
  ASSERT_TRUE(ParseDatalogFile(path, &p).ok());
  EXPECT_EQ(RunAndGet(&p, "Path").size(), 3u);
  Program q;
  EXPECT_EQ(ParseDatalogFile("/nonexistent.dl", &q).code(),
            util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace carac::datalog
