# End-to-end contract tests for the carac CLI: exit codes and diagnostics.
# Invoked by CTest as:
#   cmake -DCARAC_CLI=<path> -DWORK_DIR=<dir> -P cli_test.cmake
# Each failed expectation records a SEND_ERROR; cmake keeps running the
# remaining checks and exits nonzero at the end (test fails).

if(NOT CARAC_CLI)
  message(FATAL_ERROR "CARAC_CLI not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

# expect_cli(<name> <expected-exit> <expected-substring-or-empty> <args...>)
# Runs the CLI with <args...> and checks the exit code and that the
# combined stdout+stderr contains the substring (when non-empty).
function(expect_cli name expected_exit expected_substr)
  execute_process(
    COMMAND "${CARAC_CLI}" ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code
    TIMEOUT 60)
  set(all "${out}${err}")
  if(NOT code STREQUAL "${expected_exit}")
    message(SEND_ERROR
      "[${name}] expected exit ${expected_exit}, got ${code}\n${all}")
  endif()
  if(expected_substr AND NOT all MATCHES "${expected_substr}")
    message(SEND_ERROR
      "[${name}] output missing '${expected_substr}':\n${all}")
  endif()
  message(STATUS "[${name}] ok (exit ${code})")
endfunction()

# No arguments: usage on stderr, exit 2, and the usage must document `dl`.
expect_cli(no_args 2 "carac dl <program.dl>")

# Unknown subcommand / workload / option / backend: exit 2 + diagnostic.
expect_cli(unknown_command 2 "usage:" frobnicate x)
expect_cli(unknown_workload 2 "unknown workload" run no_such_workload)
expect_cli(unknown_option 2 "unknown option" run fibonacci --frobnicate)
expect_cli(unknown_backend 2 "unknown option" run fibonacci --backend=cobol)
expect_cli(unknown_granularity 2 "unknown option"
  run fibonacci --granularity=bogus)

# --scale must be an integer >= 1; 0, negatives, and garbage all exit 2.
expect_cli(scale_zero 2 "scale must be" run fibonacci --scale=0)
expect_cli(scale_negative 2 "scale must be" run fibonacci --scale=-3)
expect_cli(scale_garbage 2 "scale must be" run fibonacci --scale=abc)
expect_cli(scale_trailing_junk 2 "scale must be" run fibonacci --scale=2x)
expect_cli(scale_empty 2 "scale must be" run fibonacci --scale=)
expect_cli(scale_overflow 2 "scale must be"
  run fibonacci --scale=99999999999999999999)

# Missing input files: runtime failure, exit 1. A directory must also be
# rejected rather than silently evaluating an empty program.
expect_cli(missing_dl 1 "" dl "${WORK_DIR}/does_not_exist.dl")
expect_cli(missing_csv 1 "" tc "${WORK_DIR}/does_not_exist.csv")
expect_cli(dl_directory 1 "is a directory" dl "${WORK_DIR}")
expect_cli(tc_directory 1 "is a directory" tc "${WORK_DIR}")

# Over-int64 literals are a diagnostic, not an uncaught-exception abort.
file(WRITE "${WORK_DIR}/huge.dl" "Edge(99999999999999999999, 1).\n")
expect_cli(dl_huge_literal 1 "out of 64-bit range" dl "${WORK_DIR}/huge.dl")
file(WRITE "${WORK_DIR}/huge.csv" "99999999999999999999,1\n")
expect_cli(tc_huge_literal 1 "out of 64-bit range" tc "${WORK_DIR}/huge.csv")

# A lowercase relation name is the first parse error every new user hits;
# the diagnostic must teach the case convention.
file(WRITE "${WORK_DIR}/lowercase.dl" "path(x,y) :- Edge(x,y).\n")
expect_cli(lowercase_relation 1 "relations start uppercase"
  dl "${WORK_DIR}/lowercase.dl")

# --threads / --parallel-min-outer-rows: strict integers, exit 2 on
# garbage (a typo'd thread count must not silently run single-threaded).
expect_cli(threads_zero 2 "threads must be" run fibonacci --threads=0)
expect_cli(threads_garbage 2 "threads must be" run fibonacci --threads=abc)
expect_cli(threads_trailing 2 "threads must be" run fibonacci --threads=2x)
expect_cli(threads_negative 2 "threads must be" run fibonacci --threads=-4)
expect_cli(threads_overflow 2 "threads must be" run fibonacci --threads=999)
expect_cli(min_rows_garbage 2 "parallel-min-outer-rows" run fibonacci
  --parallel-min-outer-rows=junk)
expect_cli(min_rows_zero 2 "parallel-min-outer-rows" run fibonacci
  --parallel-min-outer-rows=0)
# Usage documents the new flags.
expect_cli(usage_mentions_threads 2 "--threads=N")

# --index-kind: every valid kind (and auto) is accepted; anything else is
# a configuration error with a diagnostic that lists the choices. The
# flag must also appear in usage.
expect_cli(index_kind_hash 0 "Fibonacci" run fibonacci --scale=2
  --index-kind=hash)
expect_cli(index_kind_sorted 0 "Fibonacci" run fibonacci --scale=2
  --index-kind=sorted)
expect_cli(index_kind_btree 0 "Fibonacci" run fibonacci --scale=2
  --index-kind=btree)
expect_cli(index_kind_sorted_array 0 "Fibonacci" run fibonacci --scale=2
  --index-kind=sorted-array)
expect_cli(index_kind_learned 0 "Fibonacci" run fibonacci --scale=2
  --index-kind=learned)
expect_cli(index_kind_auto 0 "Fibonacci" run fibonacci --scale=2
  --index-kind=auto)
expect_cli(index_kind_garbage 2 "invalid --index-kind=lsm" run fibonacci
  --index-kind=lsm)
expect_cli(index_kind_empty 2 "invalid --index-kind" run fibonacci
  --index-kind=)
expect_cli(usage_mentions_index_kind 2 "--index-kind=")

# --adaptive-indexes: accepted on runs, documented in usage. The policy
# only migrates on evidence, so the happy path is just "evaluates the
# same workload correctly".
expect_cli(adaptive_run_ok 0 "Fibonacci" run fibonacci --scale=2
  --adaptive-indexes)
expect_cli(usage_mentions_adaptive 2 "--adaptive-indexes")

# --range-pushdown: strict on/off (a typo must not silently run the
# default configuration — A/B ablations would measure the wrong thing),
# documented in usage. Both arms must evaluate the workload correctly:
# results are byte-identical by contract, pushdown only moves the
# access path.
expect_cli(range_pushdown_on 0 "Primes" run primes --scale=2
  --range-pushdown=on)
expect_cli(range_pushdown_off 0 "Primes" run primes --scale=2
  --range-pushdown=off)
expect_cli(range_pushdown_garbage 2 "invalid --range-pushdown=maybe"
  run fibonacci --range-pushdown=maybe)
expect_cli(range_pushdown_empty 2 "invalid --range-pushdown" run fibonacci
  --range-pushdown=)
expect_cli(usage_mentions_range_pushdown 2 "--range-pushdown=")

# --probe-batch-window: strict integer >= 0 (0 disables batching and must
# still evaluate correctly).
expect_cli(probe_window_off 0 "Fibonacci" run fibonacci --scale=2
  --probe-batch-window=0)
expect_cli(probe_window_garbage 2 "probe-batch-window" run fibonacci
  --probe-batch-window=abc)
expect_cli(probe_window_negative 2 "probe-batch-window" run fibonacci
  --probe-batch-window=-1)
expect_cli(probe_window_trailing 2 "probe-batch-window" run fibonacci
  --probe-batch-window=8x)

# Happy paths still work.
expect_cli(list_ok 0 "fibonacci" list)
expect_cli(run_ok 0 "Fibonacci" run fibonacci --scale=2)
file(WRITE "${WORK_DIR}/tc.csv" "1,2\n2,3\n3,4\n")
expect_cli(tc_ok 0 "TransitiveClosure" tc "${WORK_DIR}/tc.csv")
file(WRITE "${WORK_DIR}/good.dl"
  "Edge(1,2).\nEdge(2,3).\nPath(x,y) :- Edge(x,y).\n"
  "Path(x,z) :- Path(x,y), Edge(y,z).\n")
expect_cli(dl_ok 0 "Path" dl "${WORK_DIR}/good.dl")
expect_cli(tc_threads_ok 0 "TransitiveClosure" tc "${WORK_DIR}/tc.csv"
  --threads=2 --parallel-min-outer-rows=1)

# serve: scripted incremental session. The batch grows the closure from
# the initial 3 paths (1-2, 2-3, 1-3) to the full 6 of the 4-chain, and
# the second update must report an incremental (not full) epoch.
file(WRITE "${WORK_DIR}/serve_batch.csv" "3,4\n")
file(WRITE "${WORK_DIR}/serve_script.txt"
  "update\n"
  "count Path\n"
  "load Edge ${WORK_DIR}/serve_batch.csv\n"
  "update\n"
  "count Path\n"
  "quit\n")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl"
  INPUT_FILE "${WORK_DIR}/serve_script.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0")
  message(SEND_ERROR "[serve_ok] expected exit 0, got ${serve_code}\n"
    "${serve_out}${serve_err}")
endif()
foreach(needle "epoch=1 full" "Path: 3 rows" "epoch=2 incremental"
    "Path: 6 rows")
  if(NOT serve_out MATCHES "${needle}")
    message(SEND_ERROR
      "[serve_ok] output missing '${needle}':\n${serve_out}${serve_err}")
  endif()
endforeach()
message(STATUS "[serve_ok] ok (exit ${serve_code})")

# serve dump decodes interned symbols back to their strings.
file(WRITE "${WORK_DIR}/sym.dl"
  "Edge(\"alpha\",\"beta\").\nPath(x,y) :- Edge(x,y).\n")
file(WRITE "${WORK_DIR}/serve_sym.txt" "update\ndump Path\nquit\n")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/sym.dl"
  INPUT_FILE "${WORK_DIR}/serve_sym.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0" OR NOT serve_out MATCHES "alpha"
    OR NOT serve_out MATCHES "beta")
  message(SEND_ERROR "[serve_dump_symbols] expected decoded symbols, "
    "got exit ${serve_code}:\n${serve_out}${serve_err}")
else()
  message(STATUS "[serve_dump_symbols] ok (exit ${serve_code})")
endif()

# serve stats: per-column index kinds, the probe counters the update's
# evaluation recorded, and the adaptive section — "adaptive off" without
# the flag, a rekind-events count with it. Trailing junk after stats is
# rejected like the other zero-argument commands.
file(WRITE "${WORK_DIR}/serve_stats.txt"
  "update\n"
  "stats\n"
  "stats now\n"
  "quit\n")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl"
  INPUT_FILE "${WORK_DIR}/serve_stats.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0")
  message(SEND_ERROR "[serve_stats] expected exit 0, got ${serve_code}\n"
    "${serve_out}${serve_err}")
endif()
foreach(needle "index Edge col0" "probes Edge col0 points=" "adaptive off")
  if(NOT serve_out MATCHES "${needle}")
    message(SEND_ERROR
      "[serve_stats] output missing '${needle}':\n${serve_out}${serve_err}")
  endif()
endforeach()
if(NOT serve_err MATCHES "stats takes no arguments")
  message(SEND_ERROR "[serve_stats] trailing junk not rejected:\n"
    "${serve_out}${serve_err}")
else()
  message(STATUS "[serve_stats] ok (exit ${serve_code})")
endif()
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl" --adaptive-indexes
  INPUT_FILE "${WORK_DIR}/serve_stats.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0" OR NOT serve_out MATCHES "rekind-events ")
  message(SEND_ERROR "[serve_stats_adaptive] expected a rekind-events "
    "count, got exit ${serve_code}:\n${serve_out}${serve_err}")
else()
  message(STATUS "[serve_stats_adaptive] ok (exit ${serve_code})")
endif()

# serve stats surfaces range pushdown: a comparison-constrained program
# must report which (relation, column) pairs lowering annotated and the
# range-probe counters the evaluation recorded; with --range-pushdown=off
# the pushdown lines must disappear (no atom is annotated) while the
# stats report itself stays intact.
file(WRITE "${WORK_DIR}/range.dl"
  "Edge(1,2).\nEdge(2,3).\nEdge(3,4).\nEdge(4,5).\n"
  "Path(x,y) :- Edge(x,y).\n"
  "Path(x,z) :- Path(x,y), Edge(y,z), y < 4.\n")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/range.dl" --index-kind=btree
  INPUT_FILE "${WORK_DIR}/serve_stats.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0")
  message(SEND_ERROR "[serve_stats_pushdown] expected exit 0, got "
    "${serve_code}\n${serve_out}${serve_err}")
endif()
foreach(needle "pushdown Path col1 atoms=" "ranges=")
  if(NOT serve_out MATCHES "${needle}")
    message(SEND_ERROR "[serve_stats_pushdown] output missing "
      "'${needle}':\n${serve_out}${serve_err}")
  endif()
endforeach()
message(STATUS "[serve_stats_pushdown] ok (exit ${serve_code})")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/range.dl" --index-kind=btree
          --range-pushdown=off
  INPUT_FILE "${WORK_DIR}/serve_stats.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0" OR serve_out MATCHES "pushdown "
    OR NOT serve_out MATCHES "index Edge col0")
  message(SEND_ERROR "[serve_stats_pushdown_off] expected a pushdown-free "
    "stats report, got exit ${serve_code}:\n${serve_out}${serve_err}")
else()
  message(STATUS "[serve_stats_pushdown_off] ok (exit ${serve_code})")
endif()

# serve error contract: malformed input prints a diagnostic and the
# session CONTINUES (a typo must not tear down live state). The script
# mixes every input-validation failure mode with healthy commands and
# requires (a) exit 0, (b) every diagnostic present, (c) the post-error
# commands still answered — proof the session survived each error.
#   - unknown command, unknown relation
#   - malformed update/load lines (trailing junk, missing arguments)
#   - unreadable csv, wrong-arity facts (3 columns into Edge/2)
file(WRITE "${WORK_DIR}/bad_arity.csv" "1,2,3\n")
file(WRITE "${WORK_DIR}/serve_bad.txt"
  "update\n"
  "frobnicate\n"
  "count Nope\n"
  "update Edge\n"
  "load Edge\n"
  "load Edge ${WORK_DIR}/does_not_exist.csv\n"
  "load Edge ${WORK_DIR}/bad_arity.csv\n"
  "load Nope ${WORK_DIR}/tc.csv\n"
  "count Path extra\n"
  "dump Edge out.tsv\n"
  "count Path\n"
  "quit\n")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl"
  INPUT_FILE "${WORK_DIR}/serve_bad.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0")
  message(SEND_ERROR "[serve_error_continuation] expected exit 0 "
    "(session survives malformed input), got ${serve_code}\n"
    "${serve_out}${serve_err}")
endif()
foreach(needle
    "unknown command: frobnicate"
    "unknown relation: Nope"
    "update takes no arguments"
    "load needs a csv path"
    "cannot open"
    "expected 2 columns, got 3"
    "count takes one relation name"
    "dump takes one relation name")
  if(NOT serve_err MATCHES "${needle}")
    message(SEND_ERROR "[serve_error_continuation] missing diagnostic "
      "'${needle}':\n${serve_out}${serve_err}")
  endif()
endforeach()
# The session must still be alive and consistent after all the errors:
# none of the rejected loads may have leaked facts into the database.
if(NOT serve_out MATCHES "Path: 3 rows")
  message(SEND_ERROR "[serve_error_continuation] post-error count wrong "
    "(expected 'Path: 3 rows'):\n${serve_out}${serve_err}")
else()
  message(STATUS "[serve_error_continuation] ok (exit ${serve_code})")
endif()

# --snapshot-dir / --checkpoint-every validation: strict integers, and a
# cadence without a directory is a configuration error (exit 2).
expect_cli(checkpoint_every_garbage 2 "checkpoint-every" run fibonacci
  --snapshot-dir="${WORK_DIR}/snapdir" --checkpoint-every=abc)
expect_cli(checkpoint_every_negative 2 "checkpoint-every" run fibonacci
  --snapshot-dir="${WORK_DIR}/snapdir" --checkpoint-every=-1)
expect_cli(checkpoint_every_trailing 2 "checkpoint-every" run fibonacci
  --snapshot-dir="${WORK_DIR}/snapdir" --checkpoint-every=5x)
expect_cli(checkpoint_without_dir 2 "requires --snapshot-dir"
  run fibonacci --checkpoint-every=5)
expect_cli(snapshot_dir_empty 2 "needs a directory path"
  run fibonacci --snapshot-dir=)

# serve durable sessions: session 1 evaluates, checkpoints (save) and
# keeps serving (the post-save epoch lands in the fact log); session 2
# recovers with `open` — the count must be available WITHOUT an update —
# and continues incrementally; session 3 proves the epoch counter
# survived too (epoch=4 incremental, not a full restart).
file(WRITE "${WORK_DIR}/serve_b2.csv" "4,5\n")
file(WRITE "${WORK_DIR}/serve_save.txt"
  "update\n"
  "load Edge ${WORK_DIR}/serve_batch.csv\n"
  "update\n"
  "save\n"
  "load Edge ${WORK_DIR}/serve_b2.csv\n"
  "update\n"
  "quit\n")
file(REMOVE_RECURSE "${WORK_DIR}/serve_state")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl"
    "--snapshot-dir=${WORK_DIR}/serve_state"
  INPUT_FILE "${WORK_DIR}/serve_save.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0" OR NOT serve_out MATCHES "checkpoint saved"
    OR NOT EXISTS "${WORK_DIR}/serve_state/snapshot.bin"
    OR NOT EXISTS "${WORK_DIR}/serve_state/factlog.bin")
  message(SEND_ERROR "[serve_save] expected a checkpoint + log tail, got "
    "exit ${serve_code}\n${serve_out}${serve_err}")
else()
  message(STATUS "[serve_save] ok (exit ${serve_code})")
endif()
file(WRITE "${WORK_DIR}/serve_open.txt"
  "open\n"
  "count Path\n"
  "load Edge ${WORK_DIR}/serve_batch3.csv\n"
  "update\n"
  "count Path\n"
  "quit\n")
file(WRITE "${WORK_DIR}/serve_batch3.csv" "5,6\n")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl"
    "--snapshot-dir=${WORK_DIR}/serve_state"
  INPUT_FILE "${WORK_DIR}/serve_open.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0")
  message(SEND_ERROR "[serve_open] expected exit 0, got ${serve_code}\n"
    "${serve_out}${serve_err}")
endif()
# Recovery: snapshot at epoch 2 + one replayed log epoch; the 4-chain
# closure (10 paths of the 5-chain after the new batch, 10 after) — the
# first count reads recovered state, the second the post-update state.
foreach(needle
    "restored snapshot \\(snapshot epoch 2\\) \\+ 1 log epoch"
    "Path: 10 rows"
    "epoch=4 incremental"
    "Path: 15 rows")
  if(NOT serve_out MATCHES "${needle}")
    message(SEND_ERROR
      "[serve_open] output missing '${needle}':\n${serve_out}${serve_err}")
  endif()
endforeach()
message(STATUS "[serve_open] ok (exit ${serve_code})")

# open on an empty state dir is a clean no-op, not an error.
file(WRITE "${WORK_DIR}/serve_open_empty.txt" "open\nupdate\nquit\n")
file(REMOVE_RECURSE "${WORK_DIR}/serve_state2")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl"
    "--snapshot-dir=${WORK_DIR}/serve_state2"
  INPUT_FILE "${WORK_DIR}/serve_open_empty.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0" OR NOT serve_out MATCHES "no snapshot")
  message(SEND_ERROR "[serve_open_empty] expected clean no-op open, got "
    "exit ${serve_code}\n${serve_out}${serve_err}")
else()
  message(STATUS "[serve_open_empty] ok (exit ${serve_code})")
endif()

# serve comment handling: full-line and trailing comments are stripped
# (and draw no response/diagnostic), but a '#' embedded in a token is
# payload — `load Edge .../data#1.csv` must load THAT file, not a
# truncated "data" path. Regression for the comment-stripping fix.
file(WRITE "${WORK_DIR}/data#1.csv" "9,10\n")
file(WRITE "${WORK_DIR}/serve_comments.txt"
  "# a full-line comment draws no response\n"
  "   # neither does an indented one\n"
  "update          # trailing comments are stripped\n"
  "load Edge ${WORK_DIR}/data#1.csv\n"
  "update\n"
  "count Path      # still stripped after arguments\n"
  "quit\n")
execute_process(
  COMMAND "${CARAC_CLI}" serve "${WORK_DIR}/good.dl"
  INPUT_FILE "${WORK_DIR}/serve_comments.txt"
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_code
  TIMEOUT 60)
if(NOT serve_code STREQUAL "0")
  message(SEND_ERROR "[serve_comments] expected exit 0, got ${serve_code}\n"
    "${serve_out}${serve_err}")
endif()
foreach(needle "data#1.csv into Edge \\(3 facts total\\)" "Path: 4 rows")
  if(NOT serve_out MATCHES "${needle}")
    message(SEND_ERROR
      "[serve_comments] output missing '${needle}':\n${serve_out}${serve_err}")
  endif()
endforeach()
if(NOT serve_err STREQUAL "")
  message(SEND_ERROR "[serve_comments] expected no diagnostics, got:\n"
    "${serve_err}")
else()
  message(STATUS "[serve_comments] ok (exit ${serve_code})")
endif()

# The interactive-pipe tests need a real shell (FIFOs, /dev/tcp).
find_program(BASH_BIN bash)
if(NOT BASH_BIN)
  message(STATUS "[serve_flush/server_smoke] skipped (bash not found)")
else()

# serve flush contract: a lock-step pipe client sends each command only
# after the previous response arrived. stdout is BLOCK-buffered on pipes,
# so without the per-command flush the first `read` below blocks forever
# (well, until the 60 s timeout fails the test) even though serve already
# printf'd the response. Regression for the flush fix.
file(WRITE "${WORK_DIR}/serve_flush.sh" [=[
#!/usr/bin/env bash
set -eu
cli=$1; dl=$2; work=$3
in="$work/flush_in.fifo"; out="$work/flush_out.fifo"
rm -f "$in" "$out"; mkfifo "$in" "$out"
"$cli" serve "$dl" <"$in" >"$out" &
pid=$!
exec 3>"$in" 4<"$out"
echo "update" >&3
read -r r1 <&4
case "$r1" in epoch=1*) ;; *) echo "unexpected update reply: $r1"; exit 1;; esac
echo "count Path" >&3
read -r r2 <&4
[ "$r2" = "Path: 3 rows" ] || { echo "unexpected count reply: $r2"; exit 1; }
echo "quit" >&3
exec 3>&-
wait $pid
]=])
execute_process(
  COMMAND "${BASH_BIN}" "${WORK_DIR}/serve_flush.sh" "${CARAC_CLI}"
    "${WORK_DIR}/good.dl" "${WORK_DIR}"
  OUTPUT_VARIABLE flush_out
  ERROR_VARIABLE flush_err
  RESULT_VARIABLE flush_code
  TIMEOUT 60)
if(NOT flush_code STREQUAL "0")
  message(SEND_ERROR "[serve_flush] lock-step session failed "
    "(exit ${flush_code}) — responses not flushed per command?\n"
    "${flush_out}${flush_err}")
else()
  message(STATUS "[serve_flush] ok (exit ${flush_code})")
endif()

# carac server end-to-end smoke: start on an ephemeral TCP port, wait for
# the "ready" line, run a framed session over /dev/tcp (update, snapshot
# count, error contract, quit), then SIGTERM and require a clean exit 0.
file(WRITE "${WORK_DIR}/server_smoke.sh" [=[
#!/usr/bin/env bash
set -eu
cli=$1; dl=$2; work=$3
"$cli" server "$dl" --listen-tcp=0 --server-workers=2 \
  >"$work/server.out" 2>"$work/server.err" &
pid=$!
ready=0
for _ in $(seq 1 200); do
  if grep -q "^ready$" "$work/server.out" 2>/dev/null; then ready=1; break; fi
  sleep 0.05
done
if [ "$ready" != 1 ]; then
  echo "server never became ready"; cat "$work/server.err"; exit 1
fi
port=$(sed -n 's/^serving tcp:\([0-9][0-9]*\)$/\1/p' "$work/server.out")
[ -n "$port" ] || { echo "no resolved port in server.out"; exit 1; }
exec 3<>/dev/tcp/127.0.0.1/$port
printf 'update\ncount Path\nbogus\nquit\n' >&3
read -r l1 <&3
[ "$l1" = "ok" ] || { echo "update reply: $l1"; exit 1; }
read -r l2 <&3
[ "$l2" = "| Path: 3 rows" ] || { echo "count payload: $l2"; exit 1; }
read -r l3 <&3
[ "$l3" = "ok" ] || { echo "count terminator: $l3"; exit 1; }
read -r l4 <&3
[ "$l4" = "err serve: unknown command: bogus" ] || { echo "bogus reply: $l4"; exit 1; }
read -r l5 <&3
[ "$l5" = "ok" ] || { echo "quit reply: $l5"; exit 1; }
kill -TERM $pid
wait $pid
]=])
execute_process(
  COMMAND "${BASH_BIN}" "${WORK_DIR}/server_smoke.sh" "${CARAC_CLI}"
    "${WORK_DIR}/good.dl" "${WORK_DIR}"
  OUTPUT_VARIABLE smoke_out
  ERROR_VARIABLE smoke_err
  RESULT_VARIABLE smoke_code
  TIMEOUT 60)
if(NOT smoke_code STREQUAL "0")
  message(SEND_ERROR "[server_smoke] expected exit 0, got ${smoke_code}\n"
    "${smoke_out}${smoke_err}")
else()
  message(STATUS "[server_smoke] ok (exit ${smoke_code})")
endif()

endif()  # BASH_BIN
