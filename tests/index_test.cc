#include <gtest/gtest.h>

#include "analysis/programs.h"
#include "core/engine.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace carac::storage {
namespace {

TEST(ColumnIndexTest, HashProbe) {
  Tuple a{1, 10}, b{1, 11}, c{2, 20};
  ColumnIndex index(0, IndexKind::kHash);
  index.Add(&a);
  index.Add(&b);
  index.Add(&c);
  EXPECT_EQ(index.Probe(1).size(), 2u);
  EXPECT_EQ(index.Probe(2).size(), 1u);
  EXPECT_TRUE(index.Probe(3).empty());
  EXPECT_EQ(index.kind(), IndexKind::kHash);
}

TEST(ColumnIndexTest, SortedProbe) {
  Tuple a{5, 0}, b{7, 0}, c{5, 1};
  ColumnIndex index(0, IndexKind::kSorted);
  index.Add(&a);
  index.Add(&b);
  index.Add(&c);
  EXPECT_EQ(index.Probe(5).size(), 2u);
  EXPECT_EQ(index.Probe(7).size(), 1u);
  EXPECT_TRUE(index.Probe(6).empty());
}

TEST(ColumnIndexTest, RangeProbeAscending) {
  Tuple rows[] = {{3, 0}, {1, 0}, {7, 0}, {5, 0}, {5, 1}};
  ColumnIndex index(0, IndexKind::kSorted);
  for (Tuple& t : rows) index.Add(&t);
  std::vector<const Tuple*> out;
  index.ProbeRange(2, 6, &out);
  ASSERT_EQ(out.size(), 3u);  // 3, 5, 5.
  EXPECT_EQ((*out[0])[0], 3);
  EXPECT_EQ((*out[1])[0], 5);
  EXPECT_EQ((*out[2])[0], 5);
  out.clear();
  index.ProbeRange(100, 200, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ColumnIndexTest, ClearEmptiesBothOrganizations) {
  Tuple a{1, 2};
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kSorted}) {
    ColumnIndex index(0, kind);
    index.Add(&a);
    EXPECT_EQ(index.Probe(1).size(), 1u);
    index.Clear();
    EXPECT_TRUE(index.Probe(1).empty());
  }
}

TEST(RelationIndexKindTest, SortedIndexOnRelation) {
  Relation rel("R", 2);
  rel.DeclareIndex(0, IndexKind::kSorted);
  for (int64_t i = 0; i < 20; ++i) rel.Insert({i % 5, i});
  EXPECT_EQ(rel.IndexKindOf(0), IndexKind::kSorted);
  EXPECT_EQ(rel.Probe(0, 3).size(), 4u);
  std::vector<const Tuple*> out;
  rel.ProbeRange(0, 1, 3, &out);
  EXPECT_EQ(out.size(), 12u);  // Keys 1,2,3 with 4 rows each.
}

TEST(RelationIndexKindTest, FirstDeclarationWins) {
  Relation rel("R", 1);
  rel.DeclareIndex(0, IndexKind::kSorted);
  rel.DeclareIndex(0, IndexKind::kHash);  // Ignored (idempotent).
  EXPECT_EQ(rel.IndexKindOf(0), IndexKind::kSorted);
}

TEST(DatabaseIndexKindTest, DefaultKindAppliesToAllStores) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.SetDefaultIndexKind(IndexKind::kSorted);
  db.DeclareIndex(r, 1);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).IndexKindOf(1), IndexKind::kSorted);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaNew).IndexKindOf(1),
            IndexKind::kSorted);
  EXPECT_STREQ(IndexKindName(IndexKind::kSorted), "sorted");
  EXPECT_STREQ(IndexKindName(IndexKind::kHash), "hash");
}

TEST(EngineIndexKindTest, SortedIndexesProduceSameResults) {
  auto run = [](IndexKind kind) {
    analysis::CspaConfig config;
    config.total_tuples = 200;
    analysis::Workload w =
        analysis::MakeCspa(config, analysis::RuleOrder::kHandOptimized);
    core::EngineConfig ec;
    ec.index_kind = kind;
    core::Engine engine(w.program.get(), ec);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  EXPECT_EQ(run(IndexKind::kHash), run(IndexKind::kSorted));
}

TEST(EngineIndexKindTest, SortedIndexesWorkUnderJit) {
  auto run = [](IndexKind kind) {
    analysis::Workload w =
        analysis::MakeAckermann(29, analysis::RuleOrder::kUnoptimized);
    core::EngineConfig ec;
    ec.mode = core::EvalMode::kJit;
    ec.index_kind = kind;
    ec.jit.backend = backends::BackendKind::kBytecode;
    core::Engine engine(w.program.get(), ec);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  EXPECT_EQ(run(IndexKind::kHash), run(IndexKind::kSorted));
}

}  // namespace
}  // namespace carac::storage
