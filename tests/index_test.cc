#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/programs.h"
#include "core/engine.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace carac::storage {
namespace {

constexpr IndexKind kAllKinds[] = {IndexKind::kHash, IndexKind::kSorted,
                                   IndexKind::kBtree, IndexKind::kSortedArray,
                                   IndexKind::kLearned};
constexpr IndexKind kOrderedKinds[] = {IndexKind::kSorted, IndexKind::kBtree,
                                       IndexKind::kSortedArray,
                                       IndexKind::kLearned};

std::vector<RowId> Collect(const RowCursor& cursor) {
  std::vector<RowId> out;
  cursor.ForEach([&](RowId row) { out.push_back(row); });
  return out;
}

TEST(IndexKindTest, NamesAndParsingRoundTrip) {
  for (IndexKind kind : kAllKinds) {
    IndexKind parsed;
    ASSERT_TRUE(ParseIndexKind(IndexKindName(kind), &parsed))
        << IndexKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  IndexKind parsed = IndexKind::kHash;
  EXPECT_TRUE(ParseIndexKind("sorted_array", &parsed));  // Identifier form.
  EXPECT_EQ(parsed, IndexKind::kSortedArray);
  EXPECT_FALSE(ParseIndexKind("b-tree", &parsed));
  EXPECT_FALSE(ParseIndexKind("", &parsed));
  EXPECT_FALSE(IndexKindIsOrdered(IndexKind::kHash));
  for (IndexKind kind : kOrderedKinds) EXPECT_TRUE(IndexKindIsOrdered(kind));
}

TEST(IndexKindTest, FactoryProducesRequestedKind) {
  for (IndexKind kind : kAllKinds) {
    std::unique_ptr<IndexBase> index = MakeIndex(2, kind);
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->kind(), kind);
    EXPECT_EQ(index->column(), 2u);
  }
}

TEST(ColumnIndexTest, PointProbeEveryKind) {
  for (IndexKind kind : kAllKinds) {
    std::unique_ptr<IndexBase> index = MakeIndex(0, kind);
    // Rows (RowIds 0..2) with column-0 keys 1, 1, 2.
    index->Add(0, 1);
    index->Add(1, 1);
    index->Add(2, 2);
    EXPECT_EQ(index->Probe(1).size(), 2u) << IndexKindName(kind);
    EXPECT_EQ(index->Probe(2).size(), 1u) << IndexKindName(kind);
    EXPECT_TRUE(index->Probe(3).empty()) << IndexKindName(kind);
  }
}

TEST(ColumnIndexTest, ProbeReturnsAscendingRowIds) {
  // Rows enter an index in ascending RowId order (relations append
  // monotonically); every kind must hand them back in that order — it is
  // what keeps evaluation byte-identical across kinds.
  for (IndexKind kind : kAllKinds) {
    std::unique_ptr<IndexBase> index = MakeIndex(0, kind);
    for (RowId row = 0; row < 64; ++row) index->Add(row, 9);
    index->Stabilize(40);  // Split kSortedArray across prefix and tail.
    const std::vector<RowId> rows = Collect(index->Probe(9));
    ASSERT_EQ(rows.size(), 64u) << IndexKindName(kind);
    for (RowId row = 0; row < 64; ++row) {
      EXPECT_EQ(rows[row], row) << IndexKindName(kind);
    }
  }
}

TEST(ColumnIndexTest, RangeProbeAscendingEveryOrderedKind) {
  const Value keys[] = {3, 1, 7, 5, 5};
  for (IndexKind kind : kOrderedKinds) {
    std::unique_ptr<IndexBase> index = MakeIndex(0, kind);
    for (RowId row = 0; row < 5; ++row) index->Add(row, keys[row]);
    std::vector<RowId> out;
    ASSERT_TRUE(index->ProbeRange(2, 6, &out).ok()) << IndexKindName(kind);
    ASSERT_EQ(out.size(), 3u) << IndexKindName(kind);
    EXPECT_EQ(out[0], 0u);  // Keys 3, 5, 5 -> rows 0, 3, 4.
    EXPECT_EQ(out[1], 3u);
    EXPECT_EQ(out[2], 4u);
    out.clear();
    ASSERT_TRUE(index->ProbeRange(100, 200, &out).ok());
    EXPECT_TRUE(out.empty()) << IndexKindName(kind);
  }
}

TEST(ColumnIndexTest, RangeProbeOnHashIndexFailsWithKindInMessage) {
  std::unique_ptr<IndexBase> index = MakeIndex(3, IndexKind::kHash);
  index->Add(0, 1);
  std::vector<RowId> out;
  const util::Status status = index->ProbeRange(0, 10, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  // The diagnostic must name the offending kind and column so the caller
  // can find the bad DeclareIndex call.
  EXPECT_NE(status.message().find("hash"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("column 3"), std::string::npos)
      << status.message();
  EXPECT_TRUE(out.empty());
}

TEST(ColumnIndexTest, BatchProbeMatchesPointProbes) {
  // Repeated adjacent keys exercise the equal-adjacent memo; absent keys
  // must yield empty cursors in place, not be skipped.
  const Value batch[] = {5, 5, 2, 99, 2, 2, 7, 5};
  constexpr size_t kBatch = sizeof(batch) / sizeof(batch[0]);
  for (IndexKind kind : kAllKinds) {
    std::unique_ptr<IndexBase> index = MakeIndex(0, kind);
    const Value keys[] = {5, 2, 7, 5, 2, 5};
    for (RowId row = 0; row < 6; ++row) index->Add(row, keys[row]);
    index->Stabilize(3);
    std::vector<RowCursor> cursors(kBatch);
    index->BatchProbe(batch, kBatch, cursors.data());
    for (size_t i = 0; i < kBatch; ++i) {
      EXPECT_EQ(Collect(cursors[i]), Collect(index->Probe(batch[i])))
          << IndexKindName(kind) << " key " << batch[i];
    }
  }
}

TEST(ColumnIndexTest, ClearEmptiesEveryKind) {
  for (IndexKind kind : kAllKinds) {
    std::unique_ptr<IndexBase> index = MakeIndex(0, kind);
    index->Add(0, 1);
    index->Stabilize(1);
    index->Add(1, 1);
    EXPECT_EQ(index->Probe(1).size(), 2u) << IndexKindName(kind);
    index->Clear();
    EXPECT_TRUE(index->Probe(1).empty()) << IndexKindName(kind);
    index->Add(0, 1);  // Usable again after Clear.
    EXPECT_EQ(index->Probe(1).size(), 1u) << IndexKindName(kind);
  }
}

TEST(BtreeIndexTest, SplitStressAgainstSortedReference) {
  // Enough distinct keys to force several levels of splits (fanout 32),
  // inserted in a scrambled but deterministic order via a multiplicative
  // walk of the key space.
  constexpr Value kKeys = 5000;
  std::unique_ptr<IndexBase> btree = MakeIndex(0, IndexKind::kBtree);
  std::unique_ptr<IndexBase> reference = MakeIndex(0, IndexKind::kSorted);
  for (RowId row = 0; row < 2 * kKeys; ++row) {
    const Value key = (static_cast<Value>(row) * 2654435761u) % kKeys;
    btree->Add(row, key);
    reference->Add(row, key);
  }
  for (Value key = 0; key < kKeys; key += 17) {
    EXPECT_EQ(Collect(btree->Probe(key)), Collect(reference->Probe(key)))
        << "key " << key;
  }
  EXPECT_TRUE(btree->Probe(kKeys + 1).empty());
  for (Value lo = 0; lo < kKeys; lo += 611) {
    std::vector<RowId> got, want;
    ASSERT_TRUE(btree->ProbeRange(lo, lo + 300, &got).ok());
    ASSERT_TRUE(reference->ProbeRange(lo, lo + 300, &want).ok());
    EXPECT_EQ(got, want) << "range [" << lo << ", " << lo + 300 << "]";
  }
}

TEST(SortedArrayIndexTest, StabilizeIsInvisibleToProbes) {
  std::unique_ptr<IndexBase> index = MakeIndex(0, IndexKind::kSortedArray);
  std::unique_ptr<IndexBase> reference = MakeIndex(0, IndexKind::kSorted);
  auto check_all = [&](const char* when) {
    for (Value key = 0; key < 12; ++key) {
      EXPECT_EQ(Collect(index->Probe(key)), Collect(reference->Probe(key)))
          << when << ", key " << key;
      std::vector<RowId> got, want;
      ASSERT_TRUE(index->ProbeRange(key, key + 3, &got).ok());
      ASSERT_TRUE(reference->ProbeRange(key, key + 3, &want).ok());
      EXPECT_EQ(got, want) << when << ", range from " << key;
    }
  };
  // Epoch 1: rows 0..99, then the watermark advances (Stabilize).
  for (RowId row = 0; row < 100; ++row) {
    index->Add(row, row % 10);
    reference->Add(row, row % 10);
  }
  check_all("tail only");
  index->Stabilize(100);
  check_all("all stable");
  // Epoch 2: more rows, some with brand-new keys, probed while they
  // straddle the prefix/tail boundary, then stabilized again.
  for (RowId row = 100; row < 160; ++row) {
    index->Add(row, row % 12);
    reference->Add(row, row % 12);
  }
  check_all("prefix + tail");
  index->Stabilize(130);  // Partial: rows 130..159 stay in the tail.
  check_all("partial stabilize");
  index->Stabilize(160);
  check_all("restabilized");
}

TEST(RelationIndexKindTest, DeclaredKindDrivesRelationProbes) {
  for (IndexKind kind : kAllKinds) {
    Relation rel("R", 2);
    rel.DeclareIndex(0, kind);
    for (int64_t i = 0; i < 20; ++i) rel.Insert({i % 5, i});
    EXPECT_EQ(rel.IndexKindOf(0), kind);
    EXPECT_EQ(rel.Probe(0, 3).size(), 4u) << IndexKindName(kind);
    if (!IndexKindIsOrdered(kind)) continue;
    std::vector<RowId> out;
    ASSERT_TRUE(rel.ProbeRange(0, 1, 3, &out).ok()) << IndexKindName(kind);
    EXPECT_EQ(out.size(), 12u);  // Keys 1,2,3 with 4 rows each.
    for (RowId row : out) {
      const Value key = rel.View(row)[0];
      EXPECT_GE(key, 1);
      EXPECT_LE(key, 3);
    }
  }
}

TEST(RelationIndexKindTest, BatchProbeMatchesPointProbesOnRelation) {
  for (IndexKind kind : kAllKinds) {
    Relation rel("R", 2);
    rel.DeclareIndex(0, kind);
    for (int64_t i = 0; i < 30; ++i) rel.Insert({i % 7, i});
    const Value keys[] = {3, 3, 6, 42, 0, 0};
    RowCursor cursors[6];
    rel.BatchProbe(0, keys, 6, cursors);
    for (size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(Collect(cursors[i]), Collect(rel.Probe(0, keys[i])))
          << IndexKindName(kind) << " key " << keys[i];
    }
  }
}

TEST(RelationIndexKindTest, RangeProbeOnHashRelationIndexFails) {
  Relation rel("R", 2);
  rel.DeclareIndex(1);  // Default kind: hash.
  rel.Insert({1, 2});
  std::vector<RowId> out;
  const util::Status status = rel.ProbeRange(1, 0, 10, &out);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("hash"), std::string::npos)
      << status.message();
}

TEST(RelationIndexKindTest, FirstDeclarationWins) {
  Relation rel("R", 1);
  rel.DeclareIndex(0, IndexKind::kSorted);
  rel.DeclareIndex(0, IndexKind::kHash);  // Ignored (idempotent).
  EXPECT_EQ(rel.IndexKindOf(0), IndexKind::kSorted);
}

TEST(RelationIndexKindTest, RedeclareReplacesKindAndRebuilds) {
  Relation rel("R", 2);
  rel.DeclareIndex(0, IndexKind::kHash);
  for (int64_t i = 0; i < 20; ++i) rel.Insert({i % 5, i});
  rel.RedeclareIndex(0, IndexKind::kBtree);
  EXPECT_EQ(rel.IndexKindOf(0), IndexKind::kBtree);
  EXPECT_EQ(rel.Probe(0, 3).size(), 4u);  // Rebuilt over existing rows.
  std::vector<RowId> out;
  ASSERT_TRUE(rel.ProbeRange(0, 1, 3, &out).ok());
  EXPECT_EQ(out.size(), 12u);
  // Redeclaring the current kind is a no-op, and the index keeps
  // following subsequent inserts either way.
  rel.RedeclareIndex(0, IndexKind::kBtree);
  rel.Insert({3, 100});
  EXPECT_EQ(rel.Probe(0, 3).size(), 5u);
}

TEST(DatabaseIndexKindTest, DefaultKindAppliesToAllStores) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.SetDefaultIndexKind(IndexKind::kSorted);
  db.DeclareIndex(r, 1);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).IndexKindOf(1), IndexKind::kSorted);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaNew).IndexKindOf(1),
            IndexKind::kSorted);
  EXPECT_STREQ(IndexKindName(IndexKind::kSorted), "sorted");
  EXPECT_STREQ(IndexKindName(IndexKind::kHash), "hash");
  EXPECT_STREQ(IndexKindName(IndexKind::kBtree), "btree");
  EXPECT_STREQ(IndexKindName(IndexKind::kSortedArray), "sorted-array");
  EXPECT_STREQ(IndexKindName(IndexKind::kLearned), "learned");
}

TEST(DatabaseIndexKindTest, PerColumnOverrideBeatsDefault) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.SetIndexKindOverride(r, 0, IndexKind::kSortedArray);
  db.DeclareIndex(r, 0);
  db.DeclareIndex(r, 1);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).IndexKindOf(0),
            IndexKind::kSortedArray);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).IndexKindOf(1), IndexKind::kHash);
}

TEST(EngineIndexKindTest, EveryKindProducesSameResults) {
  auto run = [](IndexKind kind) {
    analysis::CspaConfig config;
    config.total_tuples = 200;
    analysis::Workload w =
        analysis::MakeCspa(config, analysis::RuleOrder::kHandOptimized);
    core::EngineConfig ec;
    ec.index_kind = kind;
    core::Engine engine(w.program.get(), ec);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  const auto want = run(IndexKind::kHash);
  EXPECT_EQ(want, run(IndexKind::kSorted));
  EXPECT_EQ(want, run(IndexKind::kBtree));
  EXPECT_EQ(want, run(IndexKind::kSortedArray));
  EXPECT_EQ(want, run(IndexKind::kLearned));
}

TEST(EngineIndexKindTest, OrderedKindsWorkUnderJit) {
  auto run = [](IndexKind kind) {
    analysis::Workload w =
        analysis::MakeAckermann(29, analysis::RuleOrder::kUnoptimized);
    core::EngineConfig ec;
    ec.mode = core::EvalMode::kJit;
    ec.index_kind = kind;
    ec.jit.backend = backends::BackendKind::kBytecode;
    core::Engine engine(w.program.get(), ec);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  const auto want = run(IndexKind::kHash);
  EXPECT_EQ(want, run(IndexKind::kBtree));
  EXPECT_EQ(want, run(IndexKind::kSortedArray));
  EXPECT_EQ(want, run(IndexKind::kLearned));
}

TEST(LearnedIndexTest, PredictionStaysWithinEpsilonOnTrainedKeys) {
  // The fit uses a shrinking-cone bound strictly inside the probe window,
  // so for every key in the stable prefix the predicted position must
  // land within kEpsilon of the key's first actual position — that is
  // what makes the windowed search exact (never a correctness issue: the
  // bracket check falls back to full binary search, but trained keys
  // must not need the fallback).
  LearnedIndex index(0);
  std::vector<Value> keys;
  Value key = 0;
  for (RowId row = 0; row < 20000; ++row) {
    // Piecewise key distribution: dense runs, then jumps — forces
    // multiple segments.
    key += 1 + (row % 997 == 0 ? 5000 : (row % 7 == 0 ? 13 : 0));
    keys.push_back(key);
    index.AddFast(row, key);
  }
  index.Stabilize(20000);
  EXPECT_GE(index.NumSegments(), 2u);
  for (size_t i = 0; i < keys.size(); i += 11) {
    size_t predicted = 0;
    ASSERT_TRUE(index.PredictPosition(keys[i], &predicted)) << keys[i];
    const size_t actual = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), keys[i]) - keys.begin());
    const size_t err =
        predicted > actual ? predicted - actual : actual - predicted;
    EXPECT_LE(err, LearnedIndex::kEpsilon) << "key " << keys[i];
  }
}

TEST(LearnedIndexTest, DuplicateHeavyKeysMatchSortedReference) {
  // 50 distinct keys, 400 rows each: the model trains on (distinct key,
  // first position) and the probe must recover the full duplicate run.
  std::unique_ptr<IndexBase> learned = MakeIndex(0, IndexKind::kLearned);
  std::unique_ptr<IndexBase> reference = MakeIndex(0, IndexKind::kSorted);
  for (RowId row = 0; row < 20000; ++row) {
    const Value key = (static_cast<Value>(row) * 2654435761u) % 50;
    learned->Add(row, key);
    reference->Add(row, key);
  }
  learned->Stabilize(20000);
  for (Value key = -1; key <= 50; ++key) {
    EXPECT_EQ(Collect(learned->Probe(key)), Collect(reference->Probe(key)))
        << "key " << key;
  }
}

TEST(LearnedIndexTest, PrefixTailSplitAndUntrainedKeysFallBack) {
  std::unique_ptr<IndexBase> learned = MakeIndex(0, IndexKind::kLearned);
  std::unique_ptr<IndexBase> reference = MakeIndex(0, IndexKind::kSorted);
  for (RowId row = 0; row < 3000; ++row) {
    const Value key = (static_cast<Value>(row) * 37) % 500;
    learned->Add(row, key);
    reference->Add(row, key);
  }
  learned->Stabilize(2000);  // Rows 2000..2999 stay in the mutable tail.
  for (Value key = -3; key <= 502; ++key) {
    EXPECT_EQ(Collect(learned->Probe(key)), Collect(reference->Probe(key)))
        << "key " << key;
    std::vector<RowId> got, want;
    ASSERT_TRUE(learned->ProbeRange(key, key + 7, &got).ok());
    ASSERT_TRUE(reference->ProbeRange(key, key + 7, &want).ok());
    EXPECT_EQ(got, want) << "range from " << key;
  }
}

TEST(LearnedIndexTest, StabilizeRefitsTheModel) {
  LearnedIndex index(0);
  for (RowId row = 0; row < 1000; ++row) index.AddFast(row, row * 2);
  index.Stabilize(1000);
  size_t predicted = 0;
  EXPECT_TRUE(index.PredictPosition(1998, &predicted));
  // Keys beyond the trained range are out of model: probes must still
  // answer (via the tail / fallback), prediction must refuse.
  EXPECT_FALSE(index.PredictPosition(5000, &predicted));
  for (RowId row = 1000; row < 2000; ++row) index.AddFast(row, 3000 + row);
  EXPECT_EQ(index.Probe(4500).size(), 1u);  // Tail probe before refit.
  index.Stabilize(2000);
  // The refit model now covers the merged key space.
  EXPECT_TRUE(index.PredictPosition(4999, &predicted));
  EXPECT_EQ(index.Probe(4500).size(), 1u);
  EXPECT_EQ(index.Probe(1998).size(), 1u);
  // A no-op Stabilize (same limit) keeps the model intact.
  index.Stabilize(2000);
  EXPECT_TRUE(index.PredictPosition(4999, &predicted));
}

}  // namespace
}  // namespace carac::storage
