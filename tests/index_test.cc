#include <gtest/gtest.h>

#include "analysis/programs.h"
#include "core/engine.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace carac::storage {
namespace {

TEST(ColumnIndexTest, HashProbe) {
  // Rows (RowIds 0..2) with column-0 keys 1, 1, 2.
  ColumnIndex index(0, IndexKind::kHash);
  index.Add(0, 1);
  index.Add(1, 1);
  index.Add(2, 2);
  EXPECT_EQ(index.Probe(1).size(), 2u);
  EXPECT_EQ(index.Probe(2).size(), 1u);
  EXPECT_TRUE(index.Probe(3).empty());
  EXPECT_EQ(index.kind(), IndexKind::kHash);
}

TEST(ColumnIndexTest, ProbeReturnsRowIdsInInsertionOrder) {
  ColumnIndex index(0, IndexKind::kHash);
  index.Add(4, 9);
  index.Add(7, 9);
  index.Add(2, 9);
  const std::vector<RowId>& bucket = index.Probe(9);
  ASSERT_EQ(bucket.size(), 3u);
  EXPECT_EQ(bucket[0], 4u);
  EXPECT_EQ(bucket[1], 7u);
  EXPECT_EQ(bucket[2], 2u);
}

TEST(ColumnIndexTest, SortedProbe) {
  ColumnIndex index(0, IndexKind::kSorted);
  index.Add(0, 5);
  index.Add(1, 7);
  index.Add(2, 5);
  EXPECT_EQ(index.Probe(5).size(), 2u);
  EXPECT_EQ(index.Probe(7).size(), 1u);
  EXPECT_TRUE(index.Probe(6).empty());
}

TEST(ColumnIndexTest, RangeProbeAscending) {
  const Value keys[] = {3, 1, 7, 5, 5};
  ColumnIndex index(0, IndexKind::kSorted);
  for (RowId row = 0; row < 5; ++row) index.Add(row, keys[row]);
  std::vector<RowId> out;
  ASSERT_TRUE(index.ProbeRange(2, 6, &out).ok());
  ASSERT_EQ(out.size(), 3u);  // Keys 3, 5, 5 -> rows 0, 3, 4.
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[2], 4u);
  out.clear();
  ASSERT_TRUE(index.ProbeRange(100, 200, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ColumnIndexTest, RangeProbeOnHashIndexFailsWithKindInMessage) {
  ColumnIndex index(3, IndexKind::kHash);
  index.Add(0, 1);
  std::vector<RowId> out;
  const util::Status status = index.ProbeRange(0, 10, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  // The diagnostic must name the offending kind and column so the caller
  // can find the bad DeclareIndex call.
  EXPECT_NE(status.message().find("hash"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("column 3"), std::string::npos)
      << status.message();
  EXPECT_TRUE(out.empty());
}

TEST(ColumnIndexTest, ClearEmptiesBothOrganizations) {
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kSorted}) {
    ColumnIndex index(0, kind);
    index.Add(0, 1);
    EXPECT_EQ(index.Probe(1).size(), 1u);
    index.Clear();
    EXPECT_TRUE(index.Probe(1).empty());
  }
}

TEST(RelationIndexKindTest, SortedIndexOnRelation) {
  Relation rel("R", 2);
  rel.DeclareIndex(0, IndexKind::kSorted);
  for (int64_t i = 0; i < 20; ++i) rel.Insert({i % 5, i});
  EXPECT_EQ(rel.IndexKindOf(0), IndexKind::kSorted);
  EXPECT_EQ(rel.Probe(0, 3).size(), 4u);
  std::vector<RowId> out;
  ASSERT_TRUE(rel.ProbeRange(0, 1, 3, &out).ok());
  EXPECT_EQ(out.size(), 12u);  // Keys 1,2,3 with 4 rows each.
  for (RowId row : out) {
    const Value key = rel.View(row)[0];
    EXPECT_GE(key, 1);
    EXPECT_LE(key, 3);
  }
}

TEST(RelationIndexKindTest, RangeProbeOnHashRelationIndexFails) {
  Relation rel("R", 2);
  rel.DeclareIndex(1);  // Default kind: hash.
  rel.Insert({1, 2});
  std::vector<RowId> out;
  const util::Status status = rel.ProbeRange(1, 0, 10, &out);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("hash"), std::string::npos)
      << status.message();
}

TEST(RelationIndexKindTest, FirstDeclarationWins) {
  Relation rel("R", 1);
  rel.DeclareIndex(0, IndexKind::kSorted);
  rel.DeclareIndex(0, IndexKind::kHash);  // Ignored (idempotent).
  EXPECT_EQ(rel.IndexKindOf(0), IndexKind::kSorted);
}

TEST(DatabaseIndexKindTest, DefaultKindAppliesToAllStores) {
  DatabaseSet db;
  const RelationId r = db.AddRelation("R", 2);
  db.SetDefaultIndexKind(IndexKind::kSorted);
  db.DeclareIndex(r, 1);
  EXPECT_EQ(db.Get(r, DbKind::kDerived).IndexKindOf(1), IndexKind::kSorted);
  EXPECT_EQ(db.Get(r, DbKind::kDeltaNew).IndexKindOf(1),
            IndexKind::kSorted);
  EXPECT_STREQ(IndexKindName(IndexKind::kSorted), "sorted");
  EXPECT_STREQ(IndexKindName(IndexKind::kHash), "hash");
}

TEST(EngineIndexKindTest, SortedIndexesProduceSameResults) {
  auto run = [](IndexKind kind) {
    analysis::CspaConfig config;
    config.total_tuples = 200;
    analysis::Workload w =
        analysis::MakeCspa(config, analysis::RuleOrder::kHandOptimized);
    core::EngineConfig ec;
    ec.index_kind = kind;
    core::Engine engine(w.program.get(), ec);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  EXPECT_EQ(run(IndexKind::kHash), run(IndexKind::kSorted));
}

TEST(EngineIndexKindTest, SortedIndexesWorkUnderJit) {
  auto run = [](IndexKind kind) {
    analysis::Workload w =
        analysis::MakeAckermann(29, analysis::RuleOrder::kUnoptimized);
    core::EngineConfig ec;
    ec.mode = core::EvalMode::kJit;
    ec.index_kind = kind;
    ec.jit.backend = backends::BackendKind::kBytecode;
    core::Engine engine(w.program.get(), ec);
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    return engine.Results(w.output);
  };
  EXPECT_EQ(run(IndexKind::kHash), run(IndexKind::kSorted));
}

}  // namespace
}  // namespace carac::storage
