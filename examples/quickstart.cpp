// Quickstart: define a recursive Datalog program with the embedded DSL,
// evaluate it interpreted and JIT-optimized, and read the results.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <cstdio>

#include "core/engine.h"
#include "datalog/dsl.h"

int main() {
  using namespace carac;

  // A small social graph: who can reach whom through "follows" edges.
  datalog::Program program;
  datalog::Dsl dsl(&program);

  auto follows = dsl.Relation("Follows", 2);
  auto reaches = dsl.Relation("Reaches", 2);
  auto [x, y, z] = dsl.Vars<3>();

  reaches(x, y) <<= follows(x, y);
  reaches(x, z) <<= reaches(x, y) & follows(y, z);

  follows.Fact(1, 2);
  follows.Fact(2, 3);
  follows.Fact(3, 4);
  follows.Fact(4, 2);  // Cycle: 2 -> 3 -> 4 -> 2.
  follows.Fact(5, 1);

  // Adaptive Metaprogramming: evaluate with the JIT, which starts in the
  // interpreter and swaps in compiled, join-order-optimized subqueries at
  // safe points.
  core::EngineConfig config;
  config.mode = core::EvalMode::kJit;
  config.jit.backend = backends::BackendKind::kLambda;
  config.jit.granularity = core::Granularity::kUnion;

  core::Engine engine(&program, config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());

  std::printf("Reaches has %zu tuples:\n", engine.ResultSize(reaches.id()));
  for (const storage::Tuple& t : engine.Results(reaches.id())) {
    std::printf("  %lld -> %lld\n", static_cast<long long>(t[0]),
                static_cast<long long>(t[1]));
  }
  std::printf("stats: %s\n", engine.stats().ToString().c_str());
  return 0;
}
