// Backend tour: runs the Inverse-Functions analysis through all four
// compilation targets (§V-C) at the same granularity and reports time and
// JIT counters, illustrating the expressiveness/overhead trade-off.

#include <cstdio>

#include "analysis/programs.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace carac;

  analysis::SListConfig slist;
  slist.scale = 2;
  auto factory = [&] {
    return analysis::MakeInverseFunctions(slist,
                                          analysis::RuleOrder::kUnoptimized);
  };

  harness::Measurement base =
      harness::MeasureOnce(factory, harness::InterpretedConfig(true));
  std::printf("interpreted baseline: %s s (%zu Wasted rows)\n\n",
              harness::FormatSeconds(base.seconds).c_str(),
              base.result_size);

  harness::TablePrinter table({"backend", "time (s)", "speedup",
                               "compilations", "compiled invocations"});
  const backends::BackendKind kinds[] = {
      backends::BackendKind::kIRGenerator, backends::BackendKind::kLambda,
      backends::BackendKind::kBytecode, backends::BackendKind::kQuotes};
  for (backends::BackendKind kind : kinds) {
    harness::Measurement m = harness::MeasureOnce(
        factory,
        harness::JitConfigOf(kind, /*async=*/false, /*use_indexes=*/true,
                             core::Granularity::kUnion,
                             backends::CompileMode::kFull));
    if (!m.ok) {
      table.AddRow({backends::BackendKindName(kind), "failed", m.error});
      continue;
    }
    table.AddRow({backends::BackendKindName(kind),
                  harness::FormatSeconds(m.seconds),
                  harness::FormatSpeedup(base.seconds / m.seconds),
                  std::to_string(m.stats.compilations),
                  std::to_string(m.stats.compiled_invocations)});
  }
  table.Print();
  return 0;
}
