// Program-analysis example: runs Graspan's context-sensitive pointer
// analysis (CSPA, Fig. 1 of the paper) on synthetic httpd-shaped facts,
// comparing the unoptimized interpreted baseline against the adaptive JIT.
//
// Usage: example_program_analysis [total_tuples]

#include <cstdio>
#include <cstdlib>

#include "analysis/programs.h"
#include "core/engine.h"
#include "harness/runner.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace carac;

  analysis::CspaConfig cspa;
  cspa.total_tuples = argc > 1 ? std::atoll(argv[1]) : 300;

  auto unopt = [&] {
    return analysis::MakeCspa(cspa, analysis::RuleOrder::kUnoptimized);
  };
  auto handopt = [&] {
    return analysis::MakeCspa(cspa, analysis::RuleOrder::kHandOptimized);
  };

  std::printf("CSPA on %lld synthetic Graspan-shaped tuples\n\n",
              static_cast<long long>(cspa.total_tuples));

  harness::TablePrinter table(
      {"configuration", "time (s)", "VAlias rows", "speedup"});

  harness::Measurement base =
      harness::MeasureOnce(unopt, harness::InterpretedConfig(true));
  table.AddRow({"interpreted, unoptimized input",
                harness::FormatSeconds(base.seconds),
                std::to_string(base.result_size), "1.00x"});

  harness::Measurement hand =
      harness::MeasureOnce(handopt, harness::InterpretedConfig(true));
  table.AddRow({"interpreted, hand-optimized input",
                harness::FormatSeconds(hand.seconds),
                std::to_string(hand.result_size),
                harness::FormatSpeedup(base.seconds / hand.seconds)});

  harness::Measurement jit = harness::MeasureOnce(
      unopt, harness::JitConfigOf(backends::BackendKind::kLambda,
                                  /*async=*/false, /*use_indexes=*/true,
                                  core::Granularity::kUnion,
                                  backends::CompileMode::kFull));
  table.AddRow({"JIT (lambda), unoptimized input",
                harness::FormatSeconds(jit.seconds),
                std::to_string(jit.result_size),
                harness::FormatSpeedup(base.seconds / jit.seconds)});

  table.Print();
  std::printf("\nThe JIT recovers (and can beat) the hand-tuned plan with "
              "no user effort.\n");
  return 0;
}
