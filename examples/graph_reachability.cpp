// Graph-reachability example: the CSDA dataflow analysis on a synthetic
// control-flow graph, showing ahead-of-time ("macro") planning combined
// with online re-optimization, plus negation and aggregation extensions:
// which CFG nodes a null value can NEVER reach, and per-source reach
// counts via the count<> aggregate.

#include <cstdio>
#include <cstdlib>

#include "analysis/factgen.h"
#include "core/engine.h"
#include "datalog/dsl.h"
#include "harness/table.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace carac;

  const int64_t length = argc > 1 ? std::atoll(argv[1]) : 600;

  datalog::Program program;
  datalog::Dsl dsl(&program);
  auto flow_edge = dsl.Relation("FlowEdge", 2);
  auto null_edge = dsl.Relation("NullEdge", 2);
  auto null_flow = dsl.Relation("NullFlow", 2);
  auto node = dsl.Relation("Node", 1);
  auto tainted = dsl.Relation("Tainted", 1);
  auto safe = dsl.Relation("Safe", 1);
  auto reach_count = dsl.Relation("ReachCount", 2);
  auto [x, y, z] = dsl.Vars<3>();

  null_flow(x, y) <<= null_edge(x, y);
  null_flow(x, z) <<= null_flow(x, y) & flow_edge(y, z);
  tainted(y) <<= null_flow(x, y);
  safe(x) <<= node(x) & !tainted(x);  // Stratified negation.
  // Aggregation: how many nodes each null source reaches.
  dsl.AggRule(reach_count(x, z), datalog::BodyExpr({null_flow(x, y).atom()}),
              datalog::AggFunc::kCount);

  const auto cfg = analysis::GenerateCfgEdges(/*seed=*/11, length,
                                              /*branch_prob=*/0.3);
  util::Rng rng(99);
  for (const auto& e : cfg) {
    flow_edge.Fact(e.first, e.second);
    if (rng.NextBool(0.03)) null_edge.Fact(e.first, e.second);
  }
  for (int64_t v = 0; v < length; ++v) node.Fact(v);

  // AOT planning from the initial facts, plus online IR regeneration.
  core::EngineConfig config;
  config.mode = core::EvalMode::kJit;
  config.jit.backend = backends::BackendKind::kIRGenerator;
  config.jit.granularity = core::Granularity::kUnionAll;
  config.aot_reorder = true;
  config.aot.use_fact_cardinalities = true;

  core::Engine engine(&program, config);
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());

  std::printf("CFG nodes: %lld, edges: %zu\n",
              static_cast<long long>(length), cfg.size());
  std::printf("NullFlow facts:  %zu\n", engine.ResultSize(null_flow.id()));
  std::printf("Tainted nodes:   %zu\n", engine.ResultSize(tainted.id()));
  std::printf("Safe nodes:      %zu\n", engine.ResultSize(safe.id()));
  std::printf("Null sources:    %zu\n", engine.ResultSize(reach_count.id()));
  std::printf("stats: %s\n", engine.stats().ToString().c_str());
  return 0;
}
