#ifndef CARAC_OPTIMIZER_ADAPTIVE_H_
#define CARAC_OPTIMIZER_ADAPTIVE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "ir/exec_context.h"
#include "storage/database.h"
#include "storage/index.h"

namespace carac::optimizer {

/// Knobs of the adaptive re-kinding policy. The defaults favor
/// convergence over reactivity: a column must show the same desire for
/// `hysteresis_epochs` consecutive epochs before it migrates, and after a
/// migration it sits out `cooldown_epochs` so the rebuilt index gets a
/// chance to prove itself before being second-guessed.
struct AdaptiveIndexConfig {
  /// Columns probed fewer times than this in an epoch carry no evidence:
  /// whatever kind they have is not hurting, so they keep it.
  uint64_t min_probes = 256;
  /// Consecutive epochs a recommendation must repeat before it applies.
  uint32_t hysteresis_epochs = 2;
  /// Epochs a freshly migrated column is exempt from re-evaluation.
  uint32_t cooldown_epochs = 2;
};

/// One index migration the policy performed, for `serve stats` and tests.
struct RekindEvent {
  uint64_t epoch = 0;
  storage::RelationId relation = 0;
  uint32_t column = 0;
  storage::IndexKind from = storage::IndexKind::kHash;
  storage::IndexKind to = storage::IndexKind::kHash;
};

/// Epoch-close policy that compares each indexed column's OBSERVED access
/// mix (ir::AccessProfiler — what the evaluators actually did) against
/// its current organization and migrates it through
/// DatabaseSet::RedeclareIndex when the evidence says another kind wins:
///
///   range-dominated (>= 50% ranges)  -> kSortedArray when the relation
///                                       has stopped growing, else kBtree
///                                       (incremental ordered inserts)
///   mixed (>= 10% ranges), stable    -> kLearned (model-accelerated
///                                       points, sorted-array ranges)
///   point-dominated                  -> kHash
///
/// Every kind preserves the ascending-RowId probe contract, so any
/// re-kinding schedule leaves evaluation results byte-identical — the
/// policy can only change speed, never answers. Runs only at quiescent
/// points (epoch close), where RedeclareIndex is safe.
class AdaptiveIndexPolicy {
 public:
  explicit AdaptiveIndexPolicy(AdaptiveIndexConfig config = {})
      : config_(config) {}

  /// Consumes the epoch that just closed: diffs `profiler`'s cumulative
  /// counters against the last call's snapshot, updates per-column
  /// hysteresis state, and applies any migration that has cleared it.
  /// Call once per closed epoch, at a quiescent point.
  void ObserveEpoch(storage::DatabaseSet* db,
                    const ir::AccessProfiler& profiler);

  /// Every migration applied since construction, in order.
  const std::vector<RekindEvent>& events() const { return events_; }

  const AdaptiveIndexConfig& config() const { return config_; }

 private:
  struct ColumnState {
    /// Cumulative counters at the last ObserveEpoch, for deltas.
    ir::ColumnProbeStats snapshot;
    /// Derived row count at the last ObserveEpoch: unchanged == stable.
    uint64_t last_rows = 0;
    bool seen = false;
    /// Hysteresis: the kind recommended last epoch and for how many
    /// consecutive epochs.
    storage::IndexKind pending = storage::IndexKind::kHash;
    uint32_t pending_epochs = 0;
    /// Cooldown epochs left before this column is re-evaluated.
    uint32_t cooldown = 0;
  };

  /// The kind the observed mix asks for, given growth behaviour.
  storage::IndexKind DesiredKind(const ir::ColumnProbeStats& delta,
                                 bool stable) const;

  AdaptiveIndexConfig config_;
  std::map<ir::AccessProfiler::Key, ColumnState> state_;
  std::vector<RekindEvent> events_;
};

}  // namespace carac::optimizer

#endif  // CARAC_OPTIMIZER_ADAPTIVE_H_
