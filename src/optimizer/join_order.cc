#include "optimizer/join_order.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "ir/lowering.h"
#include "optimizer/selectivity.h"

namespace carac::optimizer {

namespace {

/// Estimated output cardinality of joining `atom` into an intermediate of
/// size `current`: current * |atom| * reduction^#conditions (§IV).
double EstimateJoin(const StatsSnapshot& stats, const JoinOrderConfig& config,
                    double current, const ir::AtomSpec& atom,
                    const std::set<ir::LocalVar>& bound) {
  const double card =
      config.use_cardinalities
          ? static_cast<double>(stats.AtomCardinality(atom))
          : config.assumed_cardinality;
  const int conditions = CountBoundConditions(atom, bound);
  return current * card * std::pow(config.reduction_factor, conditions);
}

/// True if an atom can be probed through an index on a bound column.
bool HasUsableIndex(const StatsSnapshot& stats, const ir::AtomSpec& atom,
                    const std::set<ir::LocalVar>& bound) {
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const ir::LocalTerm& t = atom.terms[col];
    const bool is_bound = !t.is_var || bound.count(t.var) > 0;
    if (is_bound && stats.HasIndex(atom.predicate, col)) return true;
  }
  return false;
}

}  // namespace

bool ReorderSubquery(const StatsSnapshot& stats, const JoinOrderConfig& config,
                     ir::IROp* op) {
  std::vector<ir::AtomSpec> joins;
  std::vector<ir::AtomSpec> floaters;
  for (const ir::AtomSpec& atom : op->atoms) {
    (atom.is_join_atom() ? joins : floaters).push_back(atom);
  }
  if (joins.size() <= 1) return false;

  std::vector<ir::AtomSpec> ordered;
  ordered.reserve(joins.size());
  std::vector<bool> used(joins.size(), false);
  std::set<ir::LocalVar> bound;
  double current = 1.0;

  // Update-epoch subqueries pin their DeltaKnown atom outermost (an empty
  // delta then short-circuits the whole variant — the property that keeps
  // epoch cost proportional to the delta). The cost model alone does not
  // guarantee this: rules-only planning prices every atom identically,
  // and JIT replanning captures mid-epoch stats where the delta is
  // non-empty. So the greedy's first pick is constrained to the delta;
  // everything behind it is ordered as usual.
  bool pin_delta = false;
  if (op->delta_pinned) {
    for (const ir::AtomSpec& join : joins) {
      pin_delta |= join.source == storage::DbKind::kDeltaKnown;
    }
  }

  for (size_t step = 0; step < joins.size(); ++step) {
    int best = -1;
    double best_estimate = std::numeric_limits<double>::infinity();
    bool best_connected = false;
    bool best_indexed = false;
    for (size_t j = 0; j < joins.size(); ++j) {
      if (used[j]) continue;
      if (pin_delta && step == 0 &&
          joins[j].source != storage::DbKind::kDeltaKnown) {
        continue;
      }
      const double estimate =
          EstimateJoin(stats, config, current, joins[j], bound);
      // First atom: connectivity is meaningless; afterwards prefer
      // connected atoms unless a disconnected one is free (empty input,
      // e.g. an empty delta — the paper's 7th-iteration example).
      const bool connected = step == 0 || IsConnected(joins[j], bound);
      const bool indexed = config.prefer_indexes && step > 0 &&
                           HasUsableIndex(stats, joins[j], bound);
      bool better = false;
      if (best < 0) {
        better = true;
      } else if (connected != best_connected && estimate > 0 &&
                 best_estimate > 0) {
        better = connected;
      } else if (estimate != best_estimate) {
        better = estimate < best_estimate;
      } else if (indexed != best_indexed) {
        better = indexed;
      }
      if (better) {
        best = static_cast<int>(j);
        best_estimate = estimate;
        best_connected = connected;
        best_indexed = indexed;
      }
    }
    used[best] = true;
    current = std::max(best_estimate, 1.0);
    for (const ir::LocalTerm& t : joins[best].terms) {
      if (t.is_var) bound.insert(t.var);
    }
    ordered.push_back(joins[best]);
  }

  std::vector<ir::AtomSpec> scheduled = ir::ScheduleAtoms(ordered, floaters);
  // Range bounds are derived from atom order (a bound-variable bound is
  // only usable if its variable binds BEFORE the atom), so recompute them
  // for the new order. Excluded from the change comparison below: bounds
  // are an access-path hint, not plan structure.
  const bool changed = [&] {
    if (scheduled.size() != op->atoms.size()) return true;
    for (size_t i = 0; i < scheduled.size(); ++i) {
      const ir::AtomSpec& a = scheduled[i];
      const ir::AtomSpec& b = op->atoms[i];
      if (a.predicate != b.predicate || a.source != b.source ||
          a.builtin != b.builtin || a.negated != b.negated) {
        return true;
      }
      if (a.terms.size() != b.terms.size()) return true;
      for (size_t t = 0; t < a.terms.size(); ++t) {
        if (a.terms[t].is_var != b.terms[t].is_var ||
            (a.terms[t].is_var ? a.terms[t].var != b.terms[t].var
                               : a.terms[t].constant != b.terms[t].constant)) {
          return true;
        }
      }
    }
    return false;
  }();
  op->atoms = std::move(scheduled);
  if (op->range_pushdown) ir::AnnotateRangeBounds(op);
  return changed;
}

int ReorderSubtree(const StatsSnapshot& stats, const JoinOrderConfig& config,
                   ir::IROp* op) {
  int changed = 0;
  if (op->kind == ir::OpKind::kSpj || op->kind == ir::OpKind::kAggregate) {
    if (ReorderSubquery(stats, config, op)) ++changed;
  }
  for (auto& child : op->children) {
    changed += ReorderSubtree(stats, config, child.get());
  }
  return changed;
}

}  // namespace carac::optimizer
