#ifndef CARAC_OPTIMIZER_STATISTICS_H_
#define CARAC_OPTIMIZER_STATISTICS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "ir/irop.h"
#include "storage/database.h"

namespace carac::optimizer {

/// An immutable snapshot of the statistics the join orderer consumes:
/// live cardinalities of every store of every relation plus index
/// availability. Captured on the evaluation thread at optimization (or
/// compile-enqueue) time so that asynchronous compilation never races with
/// evaluation — this is the "concrete instances of relations plugged
/// directly into the reordering algorithm" of §IV.
class StatsSnapshot {
 public:
  StatsSnapshot() = default;

  static StatsSnapshot Capture(const storage::DatabaseSet& db);

  uint64_t Cardinality(datalog::PredicateId pred, storage::DbKind kind) const {
    return cards_[pred][static_cast<size_t>(kind)];
  }

  bool HasIndex(datalog::PredicateId pred, size_t column) const {
    return (index_masks_[pred] >> column) & 1u;
  }

  size_t num_relations() const { return cards_.size(); }

  /// Cardinality of the store an atom reads; 0 for builtins.
  uint64_t AtomCardinality(const ir::AtomSpec& atom) const {
    if (atom.is_builtin()) return 0;
    return Cardinality(atom.predicate, atom.source);
  }

 private:
  std::vector<std::array<uint64_t, 3>> cards_;
  std::vector<uint32_t> index_masks_;
};

}  // namespace carac::optimizer

#endif  // CARAC_OPTIMIZER_STATISTICS_H_
