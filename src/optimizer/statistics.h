#ifndef CARAC_OPTIMIZER_STATISTICS_H_
#define CARAC_OPTIMIZER_STATISTICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "ir/irop.h"
#include "storage/database.h"

namespace carac::optimizer {

/// How a rule set accesses one indexed column — the evidence index-kind
/// selection (selectivity.h ChooseIndexKind) weighs at Prepare() time.
struct ColumnAccess {
  /// Point-probe evidence: a constant in this column, the column's
  /// variable shared with another relational atom (a join key), or the
  /// variable bound by an arithmetic builtin's output. All of these turn
  /// into equality probes at evaluation time.
  uint32_t point_uses = 0;
  /// Range evidence: the column's variable appears as a comparison
  /// builtin operand (x < y, x >= 3, ...).
  uint32_t range_uses = 0;
};

/// Per-(predicate, column) access evidence for every column the lowering
/// pass will declare an index on (ir/lowering.cc DeclareRuleIndexes uses
/// the same trigger: constant term, or variable with >1 occurrence across
/// the rule body).
struct AccessPathProfile {
  std::map<std::pair<datalog::PredicateId, size_t>, ColumnAccess> columns;
};

/// Walks the program's rules and classifies every to-be-indexed column's
/// accesses. Purely syntactic — no evaluation has happened yet when the
/// engine consumes this — which is exactly the paper's "offline" share of
/// optimization cost.
AccessPathProfile ProfileAccessPaths(const datalog::Program& program);

/// An immutable snapshot of the statistics the join orderer consumes:
/// live cardinalities of every store of every relation plus index
/// availability. Captured on the evaluation thread at optimization (or
/// compile-enqueue) time so that asynchronous compilation never races with
/// evaluation — this is the "concrete instances of relations plugged
/// directly into the reordering algorithm" of §IV.
class StatsSnapshot {
 public:
  StatsSnapshot() = default;

  static StatsSnapshot Capture(const storage::DatabaseSet& db);

  uint64_t Cardinality(datalog::PredicateId pred, storage::DbKind kind) const {
    return cards_[pred][static_cast<size_t>(kind)];
  }

  bool HasIndex(datalog::PredicateId pred, size_t column) const {
    return (index_masks_[pred] >> column) & 1u;
  }

  size_t num_relations() const { return cards_.size(); }

  /// Cardinality of the store an atom reads; 0 for builtins.
  uint64_t AtomCardinality(const ir::AtomSpec& atom) const {
    if (atom.is_builtin()) return 0;
    return Cardinality(atom.predicate, atom.source);
  }

 private:
  std::vector<std::array<uint64_t, 3>> cards_;
  std::vector<uint32_t> index_masks_;
};

}  // namespace carac::optimizer

#endif  // CARAC_OPTIMIZER_STATISTICS_H_
