#ifndef CARAC_OPTIMIZER_FRESHNESS_H_
#define CARAC_OPTIMIZER_FRESHNESS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/irop.h"
#include "optimizer/statistics.h"

namespace carac::optimizer {

/// The "freshness" test of §V-B2: before recompiling a higher-overhead
/// target, check whether the cardinalities feeding the node's subqueries
/// have shifted, relative to each other, beyond a tunable threshold. If
/// they have not, the existing compiled artifact is still a good plan and
/// recompilation is skipped.
class FreshnessTracker {
 public:
  explicit FreshnessTracker(double threshold) : threshold_(threshold) {}

  /// Records the statistics a node was (re)compiled against.
  void Record(uint32_t node_id, const ir::IROp& op,
              const StatsSnapshot& stats);

  /// True if the node's inputs are still "fresh" w.r.t. the recorded
  /// snapshot — i.e. recompilation can be skipped. Unknown nodes are
  /// stale by definition.
  bool IsFresh(uint32_t node_id, const ir::IROp& op,
               const StatsSnapshot& stats) const;

  void Forget(uint32_t node_id) { recorded_.erase(node_id); }
  void Clear() { recorded_.clear(); }

  double threshold() const { return threshold_; }

 private:
  /// (predicate, store) cardinalities observed at compile time, in the
  /// deterministic order produced by CollectInputs.
  using Observation = std::vector<uint64_t>;

  static Observation Observe(const ir::IROp& op, const StatsSnapshot& stats);

  double threshold_;
  std::unordered_map<uint32_t, Observation> recorded_;
};

}  // namespace carac::optimizer

#endif  // CARAC_OPTIMIZER_FRESHNESS_H_
