#include "optimizer/statistics.h"

namespace carac::optimizer {

AccessPathProfile ProfileAccessPaths(const datalog::Program& program) {
  AccessPathProfile profile;
  for (const datalog::Rule& rule : program.rules()) {
    // Occurrence counts mirror lowering's DeclareRuleIndexes trigger so
    // the profile covers exactly the columns that will get indexes.
    std::map<datalog::VarId, int> occurrences;
    // Variables with range / point evidence from builtins. An ordering
    // comparison (kLt..kGe) is range evidence — it lowers to a ProbeRange
    // bound (ir::AnnotateRangeBounds); kEq pins a single key, so it is
    // point evidence; kNe constrains nothing an index can serve.
    std::map<datalog::VarId, bool> compared;
    std::map<datalog::VarId, bool> eq_compared;
    std::map<datalog::VarId, bool> arith_output;
    // Occurrences among relational atoms only: ≥2 means join key.
    std::map<datalog::VarId, int> relational_occurrences;
    for (const datalog::Atom& atom : rule.body) {
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        const datalog::Term& t = atom.terms[i];
        if (!t.is_var()) continue;
        ++occurrences[t.var];
        if (atom.is_relational()) {
          ++relational_occurrences[t.var];
        } else if (datalog::BuiltinBindsOutput(atom.builtin)) {
          if (i + 1 == atom.terms.size()) arith_output[t.var] = true;
        } else if (atom.builtin == datalog::BuiltinOp::kEq) {
          eq_compared[t.var] = true;
        } else if (atom.builtin != datalog::BuiltinOp::kNe) {
          compared[t.var] = true;
        }
      }
    }
    for (const datalog::Atom& atom : rule.body) {
      if (!atom.is_relational() || atom.negated) continue;
      for (size_t col = 0; col < atom.terms.size(); ++col) {
        const datalog::Term& t = atom.terms[col];
        if (t.is_var() && occurrences[t.var] <= 1) continue;
        ColumnAccess& access = profile.columns[{atom.predicate, col}];
        if (t.is_const() || relational_occurrences[t.var] > 1 ||
            arith_output[t.var] || eq_compared[t.var]) {
          ++access.point_uses;
        }
        if (t.is_var() && compared[t.var]) ++access.range_uses;
      }
    }
  }
  return profile;
}

StatsSnapshot StatsSnapshot::Capture(const storage::DatabaseSet& db) {
  StatsSnapshot snap;
  const size_t n = db.NumRelations();
  snap.cards_.resize(n);
  snap.index_masks_.assign(n, 0);
  for (size_t p = 0; p < n; ++p) {
    const auto pred = static_cast<datalog::PredicateId>(p);
    for (int k = 0; k < 3; ++k) {
      snap.cards_[p][k] =
          db.Get(pred, static_cast<storage::DbKind>(k)).size();
    }
    const storage::Relation& derived =
        db.Get(pred, storage::DbKind::kDerived);
    for (size_t col = 0; col < db.RelationArity(pred) && col < 32; ++col) {
      if (derived.HasIndex(col)) snap.index_masks_[p] |= (1u << col);
    }
  }
  return snap;
}

}  // namespace carac::optimizer
