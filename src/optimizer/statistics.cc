#include "optimizer/statistics.h"

namespace carac::optimizer {

StatsSnapshot StatsSnapshot::Capture(const storage::DatabaseSet& db) {
  StatsSnapshot snap;
  const size_t n = db.NumRelations();
  snap.cards_.resize(n);
  snap.index_masks_.assign(n, 0);
  for (size_t p = 0; p < n; ++p) {
    const auto pred = static_cast<datalog::PredicateId>(p);
    for (int k = 0; k < 3; ++k) {
      snap.cards_[p][k] =
          db.Get(pred, static_cast<storage::DbKind>(k)).size();
    }
    const storage::Relation& derived =
        db.Get(pred, storage::DbKind::kDerived);
    for (size_t col = 0; col < db.RelationArity(pred) && col < 32; ++col) {
      if (derived.HasIndex(col)) snap.index_masks_[p] |= (1u << col);
    }
  }
  return snap;
}

}  // namespace carac::optimizer
