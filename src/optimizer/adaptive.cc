#include "optimizer/adaptive.h"

namespace carac::optimizer {

storage::IndexKind AdaptiveIndexPolicy::DesiredKind(
    const ir::ColumnProbeStats& delta, bool stable) const {
  const double range_share =
      static_cast<double>(delta.range_probes) /
      static_cast<double>(delta.total());
  if (range_share >= 0.5) {
    // Range-dominated: ordered layout. A still-growing relation pays
    // sorted-array stabilization every epoch, so it gets the B-tree's
    // incremental inserts instead.
    return stable ? storage::IndexKind::kSortedArray
                  : storage::IndexKind::kBtree;
  }
  if (range_share >= 0.1) {
    // Mixed: an ordered kind is required for the ranges; on a stable
    // prefix the learned model recovers most of hashing's point-probe
    // advantage on top of it.
    return stable ? storage::IndexKind::kLearned
                  : storage::IndexKind::kBtree;
  }
  // Point-dominated: the paper's hash organization wins.
  return storage::IndexKind::kHash;
}

void AdaptiveIndexPolicy::ObserveEpoch(storage::DatabaseSet* db,
                                       const ir::AccessProfiler& profiler) {
  for (const auto& [key, cumulative] : profiler.counters()) {
    const auto& [relation, column] = key;
    ColumnState& st = state_[key];
    const ir::ColumnProbeStats delta = cumulative.DeltaSince(st.snapshot);
    st.snapshot = cumulative;
    const storage::Relation& derived =
        db->Get(relation, storage::DbKind::kDerived);
    const uint64_t rows = derived.NumRows();
    // "Stable" = the relation gained no rows since the last policy call.
    // (Watermarks advance for every relation at every epoch close, so
    // they cannot distinguish a converged relation from a growing one.)
    const bool stable = st.seen && rows == st.last_rows;
    st.last_rows = rows;
    st.seen = true;

    if (st.cooldown > 0) {
      // Freshly migrated: let the new organization accumulate evidence
      // before it can be second-guessed.
      --st.cooldown;
      st.pending_epochs = 0;
      continue;
    }
    if (delta.total() < config_.min_probes) {
      // Too little traffic to justify a rebuild either way.
      st.pending_epochs = 0;
      continue;
    }
    if (!derived.HasIndex(column)) continue;  // Unindexed configuration.
    const storage::IndexKind current = derived.IndexKindOf(column);
    const storage::IndexKind desired = DesiredKind(delta, stable);
    if (desired == current) {
      st.pending_epochs = 0;
      continue;
    }
    if (st.pending_epochs == 0 || st.pending != desired) {
      st.pending = desired;
      st.pending_epochs = 1;
    } else {
      ++st.pending_epochs;
    }
    if (st.pending_epochs < config_.hysteresis_epochs) continue;
    // Migrate all three stores; the epoch just closed, so no probe
    // cursors are live and the rebuild is safe.
    db->RedeclareIndex(relation, column, desired);
    RekindEvent event;
    event.epoch = db->epoch();
    event.relation = relation;
    event.column = column;
    event.from = current;
    event.to = desired;
    events_.push_back(event);
    st.pending_epochs = 0;
    st.cooldown = config_.cooldown_epochs;
  }
}

}  // namespace carac::optimizer
