#ifndef CARAC_OPTIMIZER_JOIN_ORDER_H_
#define CARAC_OPTIMIZER_JOIN_ORDER_H_

#include "ir/irop.h"
#include "optimizer/statistics.h"

namespace carac::optimizer {

/// Join-ordering configuration. The three inputs of §IV — cardinality,
/// index selection and selectivity — can be toggled individually, which the
/// AOT configurations use: the "Rules macro" has no fact cardinalities at
/// planning time, so it orders by selectivity alone.
struct JoinOrderConfig {
  /// Constant per-condition reduction factor (independence assumption).
  double reduction_factor = 0.25;
  /// When false, all relations are assumed to have the same cardinality
  /// (rules-only planning).
  bool use_cardinalities = true;
  /// Break ties towards atoms probe-able through an index.
  bool prefer_indexes = true;
  /// Cardinality assumed when use_cardinalities is false.
  double assumed_cardinality = 1000.0;
};

/// Greedily reorders `op->atoms` (an SPJ or Aggregate node) in place to
/// minimize estimated intermediate cardinalities: repeatedly picks the
/// join atom with the smallest estimated result, preferring connected
/// atoms over cartesian products; builtins and negations are then
/// rescheduled at their earliest valid position. Returns true if the atom
/// order changed.
bool ReorderSubquery(const StatsSnapshot& stats, const JoinOrderConfig& config,
                     ir::IROp* op);

/// Applies ReorderSubquery to every SPJ/Aggregate in the subtree; returns
/// the number of nodes whose order changed.
int ReorderSubtree(const StatsSnapshot& stats, const JoinOrderConfig& config,
                   ir::IROp* op);

}  // namespace carac::optimizer

#endif  // CARAC_OPTIMIZER_JOIN_ORDER_H_
