#include "optimizer/selectivity.h"

#include "optimizer/statistics.h"

namespace carac::optimizer {

storage::IndexKind ChooseIndexKind(const ColumnAccess& access,
                                   uint64_t edb_rows, bool is_idb) {
  if (access.range_uses == 0 || access.point_uses > 0) {
    return storage::IndexKind::kHash;
  }
  if (is_idb) return storage::IndexKind::kBtree;
  return edb_rows >= kSortedArrayMinRows ? storage::IndexKind::kSortedArray
                                         : storage::IndexKind::kSorted;
}

int CountBoundConditions(const ir::AtomSpec& atom,
                         const std::set<ir::LocalVar>& bound) {
  int conditions = 0;
  std::set<ir::LocalVar> seen_here;
  for (const ir::LocalTerm& t : atom.terms) {
    if (!t.is_var) {
      ++conditions;
    } else if (bound.count(t.var) > 0) {
      ++conditions;
    } else if (!seen_here.insert(t.var).second) {
      // Repeated fresh variable within the atom (e.g. R(x, x)) is a
      // self-equality filter.
      ++conditions;
    }
  }
  return conditions;
}

bool IsConnected(const ir::AtomSpec& atom,
                 const std::set<ir::LocalVar>& bound) {
  for (const ir::LocalTerm& t : atom.terms) {
    if (t.is_var && bound.count(t.var) > 0) return true;
  }
  return false;
}

bool RangeProbeProfitable(storage::Value lo, storage::Value hi,
                          storage::Value key_min, storage::Value key_max) {
  // Clamp the request to the indexed span; an empty intersection is
  // maximally selective.
  const storage::Value clo = lo < key_min ? key_min : lo;
  const storage::Value chi = hi > key_max ? key_max : hi;
  if (clo > chi) return true;
  // Doubles avoid signed overflow on spans like [INT64_MIN, INT64_MAX].
  const double span = static_cast<double>(chi) - static_cast<double>(clo) + 1.0;
  const double key_span =
      static_cast<double>(key_max) - static_cast<double>(key_min) + 1.0;
  return span / key_span <= kRangePushdownMaxCoverage;
}

}  // namespace carac::optimizer
