#ifndef CARAC_OPTIMIZER_SELECTIVITY_H_
#define CARAC_OPTIMIZER_SELECTIVITY_H_

#include <cstdint>
#include <set>

#include "ir/irop.h"
#include "storage/index.h"

namespace carac::optimizer {

struct ColumnAccess;

/// When an EDB relation is at least this large, a range-only column gets
/// the immutable sorted-array organization instead of the ordered map:
/// bulk-loaded facts stabilize once and then every probe is a binary
/// search over contiguous memory. Below it the std::map's simplicity wins
/// (the arrays' sort cost has nothing to amortize over).
inline constexpr uint64_t kSortedArrayMinRows = 1024;

/// Picks the index organization for one column from its access profile
/// (statistics.h ProfileAccessPaths), the relation's current EDB row
/// count, and whether rules derive into the relation. Deliberately
/// conservative: any point-probe evidence keeps the paper's hash
/// organization (point probes dominate Datalog joins and hash wins
/// them); only range-ONLY columns — never point-probed by any rule — get
/// an ordered kind. IDB relations grow during the fixpoint, which favors
/// the B-tree's incremental inserts; stable EDB relations favor the
/// sorted array once large enough to amortize stabilization.
storage::IndexKind ChooseIndexKind(const ColumnAccess& access,
                                   uint64_t edb_rows, bool is_idb);

/// Carac's deliberately lightweight selectivity model (§IV): every join or
/// filter condition contributes one constant reduction factor, assuming
/// statistical independence. Richer statistics (histograms) are possible
/// but would add runtime overhead to every reordering.
inline constexpr double kDefaultReductionFactor = 0.25;

/// Number of conditions an atom contributes given the currently bound
/// variables: one per constant column plus one per column whose variable
/// is already bound.
int CountBoundConditions(const ir::AtomSpec& atom,
                         const std::set<ir::LocalVar>& bound);

/// True if the atom shares at least one variable with the bound set, i.e.
/// joining it does not create a cartesian product.
bool IsConnected(const ir::AtomSpec& atom,
                 const std::set<ir::LocalVar>& bound);

/// A range probe replaces a filtered full scan only when it is expected
/// to skip at least half the rows. Coverage is estimated uniformly:
/// requested span / indexed key span. Above this threshold the probe's
/// sort-by-RowId pass (needed to preserve the determinism contract)
/// costs more than the scan saves, so the evaluators decline and fall
/// back to scan+filter.
inline constexpr double kRangePushdownMaxCoverage = 0.5;

/// Decides whether serving [lo, hi] through ProbeRange beats a filtered
/// full scan, given the index's key extremes [key_min, key_max]
/// (Relation::IndexKeyBounds). Uniform-distribution estimate — see
/// EXPERIMENTS.md for the break-even methodology.
bool RangeProbeProfitable(storage::Value lo, storage::Value hi,
                          storage::Value key_min, storage::Value key_max);

}  // namespace carac::optimizer

#endif  // CARAC_OPTIMIZER_SELECTIVITY_H_
