#ifndef CARAC_OPTIMIZER_SELECTIVITY_H_
#define CARAC_OPTIMIZER_SELECTIVITY_H_

#include <set>

#include "ir/irop.h"

namespace carac::optimizer {

/// Carac's deliberately lightweight selectivity model (§IV): every join or
/// filter condition contributes one constant reduction factor, assuming
/// statistical independence. Richer statistics (histograms) are possible
/// but would add runtime overhead to every reordering.
inline constexpr double kDefaultReductionFactor = 0.25;

/// Number of conditions an atom contributes given the currently bound
/// variables: one per constant column plus one per column whose variable
/// is already bound.
int CountBoundConditions(const ir::AtomSpec& atom,
                         const std::set<ir::LocalVar>& bound);

/// True if the atom shares at least one variable with the bound set, i.e.
/// joining it does not create a cartesian product.
bool IsConnected(const ir::AtomSpec& atom,
                 const std::set<ir::LocalVar>& bound);

}  // namespace carac::optimizer

#endif  // CARAC_OPTIMIZER_SELECTIVITY_H_
