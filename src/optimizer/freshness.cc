#include "optimizer/freshness.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace carac::optimizer {

FreshnessTracker::Observation FreshnessTracker::Observe(
    const ir::IROp& op, const StatsSnapshot& stats) {
  Observation obs;
  std::function<void(const ir::IROp&)> visit = [&](const ir::IROp& node) {
    if (node.kind == ir::OpKind::kSpj || node.kind == ir::OpKind::kAggregate) {
      for (const ir::AtomSpec& atom : node.atoms) {
        if (atom.is_relational()) obs.push_back(stats.AtomCardinality(atom));
      }
    }
    for (const auto& child : node.children) visit(*child);
  };
  visit(op);
  return obs;
}

void FreshnessTracker::Record(uint32_t node_id, const ir::IROp& op,
                              const StatsSnapshot& stats) {
  recorded_[node_id] = Observe(op, stats);
}

bool FreshnessTracker::IsFresh(uint32_t node_id, const ir::IROp& op,
                               const StatsSnapshot& stats) const {
  auto it = recorded_.find(node_id);
  if (it == recorded_.end()) return false;
  const Observation now = Observe(op, stats);
  const Observation& then = it->second;
  if (now.size() != then.size()) return false;

  // Compare *relative* proportions: scale both observations to sum 1 and
  // flag staleness when any input's share moved more than the threshold.
  // A uniform growth of all relations keeps the old join order optimal;
  // only relative shifts (e.g. a delta emptying out) matter.
  const double sum_now = std::max<double>(
      1.0, std::accumulate(now.begin(), now.end(), uint64_t{0}));
  const double sum_then = std::max<double>(
      1.0, std::accumulate(then.begin(), then.end(), uint64_t{0}));
  for (size_t i = 0; i < now.size(); ++i) {
    const double share_now = static_cast<double>(now[i]) / sum_now;
    const double share_then = static_cast<double>(then[i]) / sum_then;
    if (std::fabs(share_now - share_then) > threshold_) return false;
  }
  return true;
}

}  // namespace carac::optimizer
