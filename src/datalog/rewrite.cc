#include "datalog/rewrite.h"

#include <set>
#include <vector>

namespace carac::datalog {

namespace {

/// True if `rule` has the exact alias shape A(x1..xn) :- B(x1..xn).
bool IsAliasRule(const Rule& rule) {
  if (rule.agg != AggFunc::kNone) return false;
  if (rule.body.size() != 1) return false;
  const Atom& body = rule.body[0];
  if (!body.is_relational() || body.negated) return false;
  if (body.predicate == rule.head.predicate) return false;
  if (body.terms.size() != rule.head.terms.size()) return false;
  std::set<VarId> seen;
  for (size_t i = 0; i < body.terms.size(); ++i) {
    const Term& h = rule.head.terms[i];
    const Term& b = body.terms[i];
    if (!h.is_var() || !b.is_var() || h.var != b.var) return false;
    if (!seen.insert(h.var).second) return false;  // Repeated variable.
  }
  return true;
}

}  // namespace

int EliminateAliases(Program* program) {
  int eliminated = 0;
  for (;;) {
    const std::vector<Rule>& rules = program->rules();

    // A predicate is an alias only if its *sole* definition is an alias
    // rule, it has no facts of its own, and some other rule body reads it
    // (a sink nobody references is the program's output — eliminating it
    // would silently un-materialize the user's results).
    std::vector<int> definitions(program->NumPredicates(), 0);
    std::vector<int> references(program->NumPredicates(), 0);
    for (const Rule& rule : rules) {
      ++definitions[rule.head.predicate];
      for (const Atom& atom : rule.body) {
        if (atom.is_relational()) ++references[atom.predicate];
      }
    }

    PredicateId alias = kInvalidPredicate;
    PredicateId target = kInvalidPredicate;
    for (const Rule& rule : rules) {
      if (!IsAliasRule(rule)) continue;
      const PredicateId head = rule.head.predicate;
      if (definitions[head] != 1 || references[head] == 0) continue;
      if (!program->db()
               .Get(head, storage::DbKind::kDerived)
               .empty()) {
        continue;  // Has its own facts: materialization is meaningful.
      }
      alias = head;
      target = rule.body[0].predicate;
      break;
    }
    if (alias == kInvalidPredicate) return eliminated;

    std::vector<Rule> rewritten;
    rewritten.reserve(rules.size());
    for (const Rule& rule : rules) {
      if (rule.head.predicate == alias && IsAliasRule(rule)) continue;
      Rule copy = rule;
      for (Atom& atom : copy.body) {
        if (atom.is_relational() && atom.predicate == alias) {
          atom.predicate = target;
        }
      }
      rewritten.push_back(std::move(copy));
    }
    program->ReplaceRules(std::move(rewritten));
    ++eliminated;
  }
}

}  // namespace carac::datalog
