#ifndef CARAC_DATALOG_REWRITE_H_
#define CARAC_DATALOG_REWRITE_H_

#include "datalog/ast.h"

namespace carac::datalog {

/// Static rewrite pass from §V-A: "if there were [relation aliases], a
/// static rewrite pass would remove any aliases to avoid extra costly
/// materialization."
///
/// An *alias* is a predicate A defined by exactly one rule of the form
///   A(x1, ..., xn) :- B(x1, ..., xn).
/// with distinct variables in head order, no aggregation, and no facts of
/// its own. The pass replaces every body occurrence of A (positive or
/// negated) with B, drops A's defining rule, and repeats until no aliases
/// remain (collapsing alias chains). A is no longer materialized — query
/// B instead.
///
/// Returns the number of alias predicates eliminated.
int EliminateAliases(Program* program);

}  // namespace carac::datalog

#endif  // CARAC_DATALOG_REWRITE_H_
