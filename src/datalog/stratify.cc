#include "datalog/stratify.h"

#include <algorithm>
#include <functional>

namespace carac::datalog {

namespace {

/// Tarjan SCC over the predicate precedence graph. Edges point from body
/// predicates to head predicates ("the head depends on the body"), so
/// Tarjan emits components in reverse dependency order; we reverse at the
/// end to obtain evaluation order.
struct SccState {
  std::vector<std::vector<uint32_t>> adjacency;
  std::vector<int32_t> index;
  std::vector<int32_t> lowlink;
  std::vector<bool> on_stack;
  std::vector<uint32_t> stack;
  std::vector<int32_t> component;  // Per node, SCC id in emission order.
  int32_t next_index = 0;
  int32_t num_components = 0;
};

void TarjanVisit(SccState* s, uint32_t v) {
  s->index[v] = s->lowlink[v] = s->next_index++;
  s->stack.push_back(v);
  s->on_stack[v] = true;
  for (uint32_t w : s->adjacency[v]) {
    if (s->index[w] < 0) {
      TarjanVisit(s, w);
      s->lowlink[v] = std::min(s->lowlink[v], s->lowlink[w]);
    } else if (s->on_stack[w]) {
      s->lowlink[v] = std::min(s->lowlink[v], s->index[w]);
    }
  }
  if (s->lowlink[v] == s->index[v]) {
    const int32_t comp = s->num_components++;
    for (;;) {
      const uint32_t w = s->stack.back();
      s->stack.pop_back();
      s->on_stack[w] = false;
      s->component[w] = comp;
      if (w == v) break;
    }
  }
}

}  // namespace

util::Status Stratify(const Program& program, Stratification* out) {
  const size_t n = program.NumPredicates();
  SccState scc;
  scc.adjacency.resize(n);
  scc.index.assign(n, -1);
  scc.lowlink.assign(n, -1);
  scc.on_stack.assign(n, false);
  scc.component.assign(n, -1);

  // Negative dependencies (negation or aggregation) recorded for the
  // stratification check: pair of (body predicate, head predicate).
  std::vector<std::pair<PredicateId, PredicateId>> negative_edges;

  for (const Rule& rule : program.rules()) {
    const PredicateId head = rule.head.predicate;
    for (const Atom& atom : rule.body) {
      if (!atom.is_relational()) continue;
      scc.adjacency[atom.predicate].push_back(head);
      if (atom.negated || rule.agg != AggFunc::kNone) {
        negative_edges.emplace_back(atom.predicate, head);
      }
    }
  }

  for (uint32_t v = 0; v < n; ++v) {
    if (scc.index[v] < 0) TarjanVisit(&scc, v);
  }

  // Tarjan pops a component only after every component reachable from it
  // has been popped. With edges body->head, a head's component is emitted
  // before the components of the bodies it depends on; evaluation must run
  // dependencies first, so evaluation order is the reverse of emission
  // order. (Pinned down by stratify unit tests.)
  const int32_t num_comp = scc.num_components;
  auto eval_pos = [num_comp](int32_t comp) { return num_comp - 1 - comp; };

  // Reject negation/aggregation inside a single component.
  for (const auto& [body_pred, head_pred] : negative_edges) {
    if (scc.component[body_pred] == scc.component[head_pred]) {
      return util::Status::InvalidArgument(
          "program is not stratifiable: negation or aggregation through "
          "recursion involving " +
          program.PredicateName(head_pred));
    }
  }

  out->strata.clear();
  out->strata.resize(num_comp);
  out->stratum_of.assign(n, -1);

  for (uint32_t p = 0; p < n; ++p) {
    if (program.IsIdb(static_cast<PredicateId>(p))) {
      const int32_t pos = eval_pos(scc.component[p]);
      out->strata[pos].predicates.push_back(static_cast<PredicateId>(p));
      out->stratum_of[p] = pos;
    }
  }

  const std::vector<Rule>& rules = program.rules();
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const int32_t comp = scc.component[rule.head.predicate];
    Stratum& stratum = out->strata[eval_pos(comp)];
    stratum.rule_indices.push_back(r);
    bool recursive = false;
    for (const Atom& atom : rule.body) {
      if (!atom.is_relational()) continue;
      if (!atom.negated && scc.component[atom.predicate] == comp) {
        recursive = true;
      }
      stratum.body_inputs.push_back(atom.predicate);
      // Growth of a negated predicate, or of ANY input of an aggregate
      // rule, can retract facts derived earlier — incremental reuse of
      // this stratum's Derived store becomes unsound.
      if (atom.negated || rule.agg != AggFunc::kNone) {
        stratum.recompute_triggers.push_back(atom.predicate);
      }
    }
    stratum.rule_is_recursive.push_back(recursive);
  }
  for (Stratum& stratum : out->strata) {
    auto dedup = [](std::vector<PredicateId>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    dedup(&stratum.body_inputs);
    dedup(&stratum.recompute_triggers);
  }

  // Drop empty strata (pure-EDB singleton components), fixing stratum_of.
  std::vector<Stratum> compact;
  std::vector<int32_t> remap(out->strata.size(), -1);
  for (size_t i = 0; i < out->strata.size(); ++i) {
    if (!out->strata[i].rule_indices.empty()) {
      remap[i] = static_cast<int32_t>(compact.size());
      compact.push_back(std::move(out->strata[i]));
    }
  }
  for (int32_t& s : out->stratum_of) {
    if (s >= 0) s = remap[s];
  }
  out->strata = std::move(compact);
  return util::Status::Ok();
}

}  // namespace carac::datalog
