#include "datalog/ast.h"

#include <algorithm>
#include <set>
#include <utility>

namespace carac::datalog {

size_t BuiltinArity(BuiltinOp op) {
  switch (op) {
    case BuiltinOp::kNone:
      return 0;
    case BuiltinOp::kLt:
    case BuiltinOp::kLe:
    case BuiltinOp::kGt:
    case BuiltinOp::kGe:
    case BuiltinOp::kEq:
    case BuiltinOp::kNe:
      return 2;
    case BuiltinOp::kAdd:
    case BuiltinOp::kSub:
    case BuiltinOp::kMul:
    case BuiltinOp::kDiv:
    case BuiltinOp::kMod:
      return 3;
  }
  return 0;
}

bool BuiltinBindsOutput(BuiltinOp op) { return BuiltinArity(op) == 3; }

const char* BuiltinName(BuiltinOp op) {
  switch (op) {
    case BuiltinOp::kNone:
      return "none";
    case BuiltinOp::kLt:
      return "<";
    case BuiltinOp::kLe:
      return "<=";
    case BuiltinOp::kGt:
      return ">";
    case BuiltinOp::kGe:
      return ">=";
    case BuiltinOp::kEq:
      return "==";
    case BuiltinOp::kNe:
      return "!=";
    case BuiltinOp::kAdd:
      return "+";
    case BuiltinOp::kSub:
      return "-";
    case BuiltinOp::kMul:
      return "*";
    case BuiltinOp::kDiv:
      return "/";
    case BuiltinOp::kMod:
      return "%";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kNone:
      return "none";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

PredicateId Program::AddRelation(const std::string& name, size_t arity) {
  const PredicateId id = db_.AddRelation(name, arity);
  is_idb_.push_back(false);
  return id;
}

VarId Program::NewVar(const std::string& name) {
  const VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(name.empty() ? "v" + std::to_string(id) : name);
  return id;
}

void Program::AddFact(PredicateId predicate, storage::Tuple tuple) {
  db_.InsertFact(predicate, std::move(tuple));
}

void Program::ReserveFacts(PredicateId predicate, size_t rows) {
  db_.Reserve(predicate, rows);
}

util::Status Program::AddRule(Rule rule) {
  CARAC_RETURN_IF_ERROR(ValidateRule(rule));
  is_idb_[rule.head.predicate] = true;
  rules_.push_back(std::move(rule));
  return util::Status::Ok();
}

void Program::ReplaceRules(std::vector<Rule> rules) {
  rules_ = std::move(rules);
  std::fill(is_idb_.begin(), is_idb_.end(), false);
  for (const Rule& rule : rules_) is_idb_[rule.head.predicate] = true;
}

bool Program::IsIdb(PredicateId p) const {
  CARAC_CHECK(p < is_idb_.size());
  return is_idb_[p];
}

util::Status Program::ValidateRule(const Rule& rule) const {
  const Atom& head = rule.head;
  if (head.is_builtin() || head.negated) {
    return util::Status::InvalidArgument("rule head must be a plain atom");
  }
  if (head.predicate >= NumPredicates()) {
    return util::Status::InvalidArgument("head predicate not declared");
  }
  if (head.terms.size() != PredicateArity(head.predicate)) {
    return util::Status::InvalidArgument(
        "head arity mismatch for " + PredicateName(head.predicate));
  }
  if (rule.body.empty()) {
    return util::Status::InvalidArgument(
        "rules need a non-empty body; use AddFact for facts");
  }

  // Collect variables bound by positive relational atoms and by arithmetic
  // outputs; these are the only binders.
  std::set<VarId> bound;
  for (const Atom& atom : rule.body) {
    if (atom.is_relational()) {
      if (atom.predicate >= NumPredicates()) {
        return util::Status::InvalidArgument("body predicate not declared");
      }
      if (atom.terms.size() != PredicateArity(atom.predicate)) {
        return util::Status::InvalidArgument(
            "body arity mismatch for " + PredicateName(atom.predicate));
      }
      if (!atom.negated) {
        for (const Term& t : atom.terms) {
          if (t.is_var()) bound.insert(t.var);
        }
      }
    } else {
      if (atom.terms.size() != BuiltinArity(atom.builtin)) {
        return util::Status::InvalidArgument("builtin arity mismatch");
      }
      if (atom.negated) {
        return util::Status::InvalidArgument(
            "builtins cannot be negated; use the complementary operator");
      }
      if (BuiltinBindsOutput(atom.builtin) && atom.terms[2].is_var()) {
        bound.insert(atom.terms[2].var);
      }
    }
  }

  // Safety: negated atoms and builtin inputs must only use bound variables.
  for (const Atom& atom : rule.body) {
    if (atom.is_relational() && atom.negated) {
      for (const Term& t : atom.terms) {
        if (t.is_var() && bound.count(t.var) == 0) {
          return util::Status::InvalidArgument(
              "unsafe negation: variable not bound by a positive atom");
        }
      }
    }
    if (atom.is_builtin()) {
      const size_t inputs = BuiltinBindsOutput(atom.builtin) ? 2 : 1;
      for (size_t i = 0; i <= inputs; ++i) {
        if (i == 2) break;  // Output term may be fresh.
        const Term& t = atom.terms[i];
        if (t.is_var() && bound.count(t.var) == 0) {
          return util::Status::InvalidArgument(
              "unsafe builtin: input variable not bound");
        }
      }
    }
  }

  // Range restriction on the head; the aggregate output column is exempt.
  const size_t head_checked = rule.agg == AggFunc::kNone
                                  ? head.terms.size()
                                  : head.terms.size() - 1;
  for (size_t i = 0; i < head_checked; ++i) {
    const Term& t = head.terms[i];
    if (t.is_var() && bound.count(t.var) == 0) {
      return util::Status::InvalidArgument(
          "range restriction violated: head variable " + VarName(t.var) +
          " not bound in body");
    }
  }

  if (rule.agg != AggFunc::kNone) {
    if (head.terms.empty() || !head.terms.back().is_var()) {
      return util::Status::InvalidArgument(
          "aggregate rules need a variable as last head term");
    }
    if (bound.count(head.terms.back().var) > 0) {
      return util::Status::InvalidArgument(
          "aggregate output variable must be fresh");
    }
    if (rule.agg != AggFunc::kCount && bound.count(rule.agg_operand) == 0) {
      return util::Status::InvalidArgument(
          "aggregate operand must be bound in body");
    }
  }
  return util::Status::Ok();
}

std::string Program::RuleToString(const Rule& rule) const {
  auto term_str = [&](const Term& t) {
    if (t.is_var()) return VarName(t.var);
    if (storage::SymbolTable::IsSymbol(t.constant)) {
      return "\"" + db_.symbols().Lookup(t.constant) + "\"";
    }
    return std::to_string(t.constant);
  };
  auto atom_str = [&](const Atom& a) {
    std::string out;
    if (a.negated) out += "!";
    if (a.is_builtin()) {
      if (BuiltinBindsOutput(a.builtin)) {
        out += term_str(a.terms[2]) + " = " + term_str(a.terms[0]) + " " +
               BuiltinName(a.builtin) + " " + term_str(a.terms[1]);
      } else {
        out += term_str(a.terms[0]) + " " + BuiltinName(a.builtin) + " " +
               term_str(a.terms[1]);
      }
      return out;
    }
    out += PredicateName(a.predicate) + "(";
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (i > 0) out += ", ";
      out += term_str(a.terms[i]);
    }
    out += ")";
    return out;
  };

  std::string out = atom_str(rule.head);
  if (rule.agg != AggFunc::kNone) {
    out += " [" + std::string(AggFuncName(rule.agg));
    if (rule.agg != AggFunc::kCount) out += " " + VarName(rule.agg_operand);
    out += "]";
  }
  out += " :- ";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += atom_str(rule.body[i]);
  }
  out += ".";
  return out;
}

}  // namespace carac::datalog
