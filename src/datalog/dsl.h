#ifndef CARAC_DATALOG_DSL_H_
#define CARAC_DATALOG_DSL_H_

#include <array>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datalog/ast.h"

namespace carac::datalog {

/// The embedded Datalog DSL (the C++ analog of the paper's Scala deep
/// embedding, §V-A). Usage:
///
///   Program program;
///   Dsl dsl(&program);
///   auto edge = dsl.Relation("Edge", 2);
///   auto path = dsl.Relation("Path", 2);
///   auto [x, y, z] = dsl.Vars<3>();
///   path(x, y) <<= edge(x, y);
///   path(x, z) <<= path(x, y) & edge(y, z);
///   edge.Fact(1, 2);
///
/// Rules are registered (and validated) by `operator<<=`; facts are stored
/// immediately. Builtins: dsl.Lt(a,b), dsl.Add(x,y,z), ... Negation: !atom.

class Dsl;

/// A variable handle; cheap to copy.
struct VarRef {
  VarId id = -1;
};

/// A term argument accepted by the DSL: variable, integer, or string
/// (interned on use).
class TermArg {
 public:
  TermArg(VarRef v) : kind_(Kind::kVar), var_(v.id) {}          // NOLINT
  TermArg(int value) : kind_(Kind::kInt), int_(value) {}        // NOLINT
  TermArg(long value) : kind_(Kind::kInt), int_(value) {}       // NOLINT
  TermArg(long long value) : kind_(Kind::kInt), int_(value) {}  // NOLINT
  TermArg(const char* text) : kind_(Kind::kStr), str_(text) {}  // NOLINT
  TermArg(std::string_view text) : kind_(Kind::kStr), str_(text) {}  // NOLINT

  Term ToTerm(Program* program) const;
  storage::Value ToValue(Program* program) const;

 private:
  enum class Kind { kVar, kInt, kStr };
  Kind kind_;
  VarId var_ = -1;
  int64_t int_ = 0;
  std::string str_;
};

/// A single body/head atom under construction.
class AtomExpr {
 public:
  AtomExpr(Dsl* dsl, Atom atom) : dsl_(dsl), atom_(std::move(atom)) {}

  /// Stratified negation.
  AtomExpr operator!() const {
    AtomExpr negated = *this;
    negated.atom_.negated = !negated.atom_.negated;
    return negated;
  }

  const Atom& atom() const { return atom_; }
  Dsl* dsl() const { return dsl_; }

 private:
  Dsl* dsl_;
  Atom atom_;
};

/// A conjunction of body atoms.
class BodyExpr {
 public:
  explicit BodyExpr(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}
  const std::vector<Atom>& atoms() const { return atoms_; }

 private:
  std::vector<Atom> atoms_;
};

BodyExpr operator&(const AtomExpr& a, const AtomExpr& b);
BodyExpr operator&(BodyExpr body, const AtomExpr& next);

/// Registers `head :- body.` with the program; aborts on invalid rules
/// (tests for graceful failure use Program::AddRule directly).
void operator<<=(const AtomExpr& head, const BodyExpr& body);
void operator<<=(const AtomExpr& head, const AtomExpr& single_body_atom);

/// Handle to a declared relation; callable to build atoms, with a
/// convenience fact inserter.
class RelationRef {
 public:
  RelationRef() = default;
  RelationRef(Dsl* dsl, PredicateId id) : dsl_(dsl), id_(id) {}

  PredicateId id() const { return id_; }

  template <typename... Args>
  AtomExpr operator()(Args... args) const {
    return MakeAtom({TermArg(args)...});
  }

  /// Inserts a fact; arguments must be constants (ints or strings).
  template <typename... Args>
  void Fact(Args... args) const {
    InsertFact({TermArg(args)...});
  }

  /// Pre-sizes the relation for `rows` facts ahead of a bulk Fact() loop.
  void Reserve(size_t rows) const;

  /// Hints the index organization for `column` (the DSL analog of the
  /// textual `@index(Rel, col, kind).` pragma). Beats the engine's
  /// configured kind and the statistics-driven choice.
  void HintIndex(size_t column, storage::IndexKind kind) const;

 private:
  AtomExpr MakeAtom(std::vector<TermArg> args) const;
  void InsertFact(std::vector<TermArg> args) const;

  Dsl* dsl_ = nullptr;
  PredicateId id_ = kInvalidPredicate;
};

/// DSL factory bound to a Program.
class Dsl {
 public:
  explicit Dsl(Program* program) : program_(program) {}

  Program* program() const { return program_; }

  RelationRef Relation(const std::string& name, size_t arity) {
    return RelationRef(this, program_->AddRelation(name, arity));
  }

  VarRef Var(const std::string& name = "") {
    return VarRef{program_->NewVar(name)};
  }

  /// Declares N fresh variables: `auto [x, y, z] = dsl.Vars<3>();`
  template <size_t N>
  auto Vars() {
    return VarsImpl(std::make_index_sequence<N>{});
  }

  // ---- Builtins (comparisons filter; arithmetic binds its last term). ----
  AtomExpr Lt(TermArg a, TermArg b) { return Builtin(BuiltinOp::kLt, {a, b}); }
  AtomExpr Le(TermArg a, TermArg b) { return Builtin(BuiltinOp::kLe, {a, b}); }
  AtomExpr Gt(TermArg a, TermArg b) { return Builtin(BuiltinOp::kGt, {a, b}); }
  AtomExpr Ge(TermArg a, TermArg b) { return Builtin(BuiltinOp::kGe, {a, b}); }
  AtomExpr Eq(TermArg a, TermArg b) { return Builtin(BuiltinOp::kEq, {a, b}); }
  AtomExpr Ne(TermArg a, TermArg b) { return Builtin(BuiltinOp::kNe, {a, b}); }
  AtomExpr Add(TermArg x, TermArg y, TermArg z) {
    return Builtin(BuiltinOp::kAdd, {x, y, z});
  }
  AtomExpr Sub(TermArg x, TermArg y, TermArg z) {
    return Builtin(BuiltinOp::kSub, {x, y, z});
  }
  AtomExpr Mul(TermArg x, TermArg y, TermArg z) {
    return Builtin(BuiltinOp::kMul, {x, y, z});
  }
  AtomExpr Div(TermArg x, TermArg y, TermArg z) {
    return Builtin(BuiltinOp::kDiv, {x, y, z});
  }
  AtomExpr Mod(TermArg x, TermArg y, TermArg z) {
    return Builtin(BuiltinOp::kMod, {x, y, z});
  }

  /// Registers `head(group..., out) :- body` computing out = FUNC(operand)
  /// grouped by the other head columns.
  void AggRule(const AtomExpr& head, const BodyExpr& body, AggFunc func,
               VarRef operand = VarRef{-1});

 private:
  template <size_t... Is>
  auto VarsImpl(std::index_sequence<Is...>) {
    return std::array<VarRef, sizeof...(Is)>{((void)Is, Var())...};
  }

  AtomExpr Builtin(BuiltinOp op, std::vector<TermArg> args);

  Program* program_;
};

}  // namespace carac::datalog

#endif  // CARAC_DATALOG_DSL_H_
