#include "datalog/dsl.h"

#include "util/status.h"

namespace carac::datalog {

Term TermArg::ToTerm(Program* program) const {
  switch (kind_) {
    case Kind::kVar:
      return Term::MakeVar(var_);
    case Kind::kInt:
      return Term::MakeConst(int_);
    case Kind::kStr:
      return Term::MakeConst(program->Intern(str_));
  }
  return Term::MakeConst(0);  // Unreachable.
}

storage::Value TermArg::ToValue(Program* program) const {
  CARAC_CHECK(kind_ != Kind::kVar);
  return kind_ == Kind::kInt ? int_ : program->Intern(str_);
}

BodyExpr operator&(const AtomExpr& a, const AtomExpr& b) {
  return BodyExpr({a.atom(), b.atom()});
}

BodyExpr operator&(BodyExpr body, const AtomExpr& next) {
  std::vector<Atom> atoms = body.atoms();
  atoms.push_back(next.atom());
  return BodyExpr(std::move(atoms));
}

void operator<<=(const AtomExpr& head, const BodyExpr& body) {
  Rule rule;
  rule.head = head.atom();
  rule.body = body.atoms();
  CARAC_CHECK_OK(head.dsl()->program()->AddRule(std::move(rule)));
}

void operator<<=(const AtomExpr& head, const AtomExpr& single_body_atom) {
  head <<= BodyExpr({single_body_atom.atom()});
}

AtomExpr RelationRef::MakeAtom(std::vector<TermArg> args) const {
  Atom atom;
  atom.predicate = id_;
  atom.terms.reserve(args.size());
  for (const TermArg& arg : args) {
    atom.terms.push_back(arg.ToTerm(dsl_->program()));
  }
  return AtomExpr(dsl_, std::move(atom));
}

void RelationRef::Reserve(size_t rows) const {
  dsl_->program()->ReserveFacts(id_, rows);
}

void RelationRef::HintIndex(size_t column, storage::IndexKind kind) const {
  dsl_->program()->HintIndexKind(id_, column, kind);
}

void RelationRef::InsertFact(std::vector<TermArg> args) const {
  storage::Tuple tuple;
  tuple.reserve(args.size());
  for (const TermArg& arg : args) {
    tuple.push_back(arg.ToValue(dsl_->program()));
  }
  dsl_->program()->AddFact(id_, std::move(tuple));
}

AtomExpr Dsl::Builtin(BuiltinOp op, std::vector<TermArg> args) {
  Atom atom;
  atom.builtin = op;
  atom.terms.reserve(args.size());
  for (const TermArg& arg : args) {
    atom.terms.push_back(arg.ToTerm(program_));
  }
  return AtomExpr(this, std::move(atom));
}

void Dsl::AggRule(const AtomExpr& head, const BodyExpr& body, AggFunc func,
                  VarRef operand) {
  Rule rule;
  rule.head = head.atom();
  rule.body = body.atoms();
  rule.agg = func;
  rule.agg_operand = operand.id;
  CARAC_CHECK_OK(program_->AddRule(std::move(rule)));
}

}  // namespace carac::datalog
