#ifndef CARAC_DATALOG_AST_H_
#define CARAC_DATALOG_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"
#include "storage/index.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace carac::datalog {

/// Predicates map 1:1 onto storage relations.
using PredicateId = storage::RelationId;
inline constexpr PredicateId kInvalidPredicate = static_cast<PredicateId>(-1);

/// Variable ids are dense per Program.
using VarId = int32_t;

/// A term in an atom: either a variable or a constant value.
struct Term {
  enum class Kind : uint8_t { kVar, kConst };

  Kind kind = Kind::kConst;
  VarId var = -1;
  storage::Value constant = 0;

  static Term MakeVar(VarId v) {
    Term t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static Term MakeConst(storage::Value c) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = c;
    return t;
  }

  bool is_var() const { return kind == Kind::kVar; }
  bool is_const() const { return kind == Kind::kConst; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.kind != b.kind) return false;
    return a.is_var() ? a.var == b.var : a.constant == b.constant;
  }
};

/// Built-in (evaluable) predicates supported in rule bodies. Comparisons
/// take two terms; arithmetic takes three, reading the first two and
/// binding the third (z = x OP y). These give the Datalog dialect the
/// arithmetic needed by the paper's micro-benchmarks (Ackermann, Fibonacci,
/// Primes) and are evaluated as soon as their inputs are bound.
enum class BuiltinOp : uint8_t {
  kNone = 0,
  kLt,   // x <  y
  kLe,   // x <= y
  kGt,   // x >  y
  kGe,   // x >= y
  kEq,   // x == y
  kNe,   // x != y
  kAdd,  // z = x + y
  kSub,  // z = x - y
  kMul,  // z = x * y
  kDiv,  // z = x / y  (y != 0; subquery row is dropped otherwise)
  kMod,  // z = x % y  (y != 0; likewise)
};

/// Number of terms a builtin expects (2 for comparisons, 3 for arithmetic).
size_t BuiltinArity(BuiltinOp op);

/// True for kAdd..kMod (operators that bind their third term).
bool BuiltinBindsOutput(BuiltinOp op);

const char* BuiltinName(BuiltinOp op);

/// One atom of a rule body (or a rule head, where negated/builtin are
/// disallowed).
struct Atom {
  PredicateId predicate = kInvalidPredicate;
  BuiltinOp builtin = BuiltinOp::kNone;
  bool negated = false;
  std::vector<Term> terms;

  bool is_builtin() const { return builtin != BuiltinOp::kNone; }
  bool is_relational() const { return !is_builtin(); }
};

/// Aggregate functions for rule heads (paper §V-A: the DSL supports
/// stratified aggregation). The aggregate output is the last head column,
/// grouped by the remaining head columns.
enum class AggFunc : uint8_t { kNone = 0, kCount, kSum, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// A per-column index-organization hint, from the DSL
/// (RelationRef::HintIndex) or the textual `@index(Rel, col, kind).`
/// pragma. Hints are the strongest voice in kind selection: they beat
/// both the engine's configured default and the statistics-driven
/// choice (core/engine.cc Prepare applies them last).
struct IndexHint {
  PredicateId predicate = kInvalidPredicate;
  size_t column = 0;
  storage::IndexKind kind = storage::IndexKind::kHash;
};

/// A Datalog rule `head :- body.`; facts are not rules (they are inserted
/// directly into the relational layer as they are defined, §V-A).
struct Rule {
  Atom head;
  std::vector<Atom> body;

  /// Aggregation: if agg != kNone, the last head term must be a fresh
  /// variable and agg_operand names the body variable aggregated (ignored
  /// for kCount). Aggregate rules must not be recursive.
  AggFunc agg = AggFunc::kNone;
  VarId agg_operand = -1;
};

/// The user-facing Datalog program: relation declarations, facts (stored
/// immediately in the relational layer), rules and their metadata
/// (per-rule variable locations feed the optimizer; the precedence graph
/// feeds stratification).
class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Declares a relation; the name must be unique.
  PredicateId AddRelation(const std::string& name, size_t arity);

  /// Fresh variable (name used only in diagnostics).
  VarId NewVar(const std::string& name = "");

  /// Inserts a fact into the relation's Derived store.
  void AddFact(PredicateId predicate, storage::Tuple tuple);

  /// Pre-sizes the relation's Derived arena/hash table for `rows` facts
  /// (call before a bulk AddFact loop of known size).
  void ReserveFacts(PredicateId predicate, size_t rows);

  /// Interns a string constant, returning its Value.
  storage::Value Intern(std::string_view text) {
    return db_.symbols().Intern(text);
  }

  /// Validates and registers a rule. Checks: arities match declarations,
  /// range restriction (every head variable is bound by a positive
  /// relational atom or an arithmetic output), safety of negation and
  /// builtins, and aggregate well-formedness.
  util::Status AddRule(Rule rule);

  size_t NumPredicates() const { return db_.NumRelations(); }
  size_t NumVariables() const { return var_names_.size(); }
  const std::string& VarName(VarId v) const { return var_names_[v]; }
  const std::string& PredicateName(PredicateId p) const {
    return db_.RelationName(p);
  }
  size_t PredicateArity(PredicateId p) const { return db_.RelationArity(p); }

  const std::vector<Rule>& rules() const { return rules_; }

  /// Replaces the rule set wholesale (used by rewrite passes, which
  /// transform already-validated rules shape-preservingly) and recomputes
  /// the IDB flags.
  void ReplaceRules(std::vector<Rule> rules);

  /// True if any rule defines this predicate (it is part of the IDB).
  bool IsIdb(PredicateId p) const;

  /// Records an index-organization hint for `predicate`'s `column`.
  /// Hints accumulate in declaration order; on conflict the last one
  /// wins (the engine applies them sequentially).
  void HintIndexKind(PredicateId predicate, size_t column,
                     storage::IndexKind kind) {
    index_hints_.push_back({predicate, column, kind});
  }
  const std::vector<IndexHint>& index_hints() const { return index_hints_; }

  storage::DatabaseSet& db() { return db_; }
  const storage::DatabaseSet& db() const { return db_; }

  /// Renders a rule in Datalog syntax for diagnostics.
  std::string RuleToString(const Rule& rule) const;

 private:
  util::Status ValidateRule(const Rule& rule) const;

  storage::DatabaseSet db_;
  std::vector<std::string> var_names_;
  std::vector<Rule> rules_;
  std::vector<bool> is_idb_;
  std::vector<IndexHint> index_hints_;
};

}  // namespace carac::datalog

#endif  // CARAC_DATALOG_AST_H_
