#ifndef CARAC_DATALOG_BUILTINS_H_
#define CARAC_DATALOG_BUILTINS_H_

#include "datalog/ast.h"
#include "storage/tuple.h"

namespace carac::datalog {

/// Evaluates a comparison builtin on bound values.
bool EvalComparison(BuiltinOp op, storage::Value a, storage::Value b);

/// Evaluates an arithmetic builtin; returns false when the operation is
/// undefined (division/modulo by zero), in which case the subquery row is
/// silently dropped (matching the semantics of guarded arithmetic in
/// bottom-up engines).
bool EvalArithmetic(BuiltinOp op, storage::Value x, storage::Value y,
                    storage::Value* z);

}  // namespace carac::datalog

#endif  // CARAC_DATALOG_BUILTINS_H_
