#ifndef CARAC_DATALOG_STRATIFY_H_
#define CARAC_DATALOG_STRATIFY_H_

#include <cstdint>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace carac::datalog {

/// One evaluation stratum: a strongly connected component of the predicate
/// precedence graph, evaluated to fixpoint before later strata start.
struct Stratum {
  /// IDB predicates whose rules live in this stratum.
  std::vector<PredicateId> predicates;
  /// Indices into Program::rules() of the rules defining those predicates.
  std::vector<uint32_t> rule_indices;
  /// For each entry of rule_indices: does the rule reference (positively)
  /// a predicate of this same stratum? Recursive rules get semi-naive
  /// delta-splitting; non-recursive rules only need the initial pass.
  std::vector<bool> rule_is_recursive;
};

/// Result of stratification: strata in dependency (evaluation) order plus
/// the stratum index of every predicate (-1 for pure-EDB predicates).
struct Stratification {
  std::vector<Stratum> strata;
  std::vector<int32_t> stratum_of;
};

/// Builds the precedence graph (§V-A "generation of a precedence graph"),
/// computes its SCC condensation and checks stratified negation and
/// aggregation: a negated or aggregated dependency inside a single SCC is
/// rejected with InvalidArgument.
util::Status Stratify(const Program& program, Stratification* out);

}  // namespace carac::datalog

#endif  // CARAC_DATALOG_STRATIFY_H_
