#ifndef CARAC_DATALOG_STRATIFY_H_
#define CARAC_DATALOG_STRATIFY_H_

#include <cstdint>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace carac::datalog {

/// One evaluation stratum: a strongly connected component of the predicate
/// precedence graph, evaluated to fixpoint before later strata start.
struct Stratum {
  /// IDB predicates whose rules live in this stratum.
  std::vector<PredicateId> predicates;
  /// Indices into Program::rules() of the rules defining those predicates.
  std::vector<uint32_t> rule_indices;
  /// For each entry of rule_indices: does the rule reference (positively)
  /// a predicate of this same stratum? Recursive rules get semi-naive
  /// delta-splitting; non-recursive rules only need the initial pass.
  std::vector<bool> rule_is_recursive;

  // ---- Change propagation (incremental update epochs) ----

  /// Every predicate read by this stratum's rule bodies (positively or
  /// under negation), deduplicated and sorted. An update epoch seeds
  /// delta stores from these: if none of them (nor the stratum's own
  /// predicates) changed, the stratum is skipped outright.
  std::vector<PredicateId> body_inputs;

  /// Predicates whose growth can RETRACT previously derived facts of this
  /// stratum: predicates read under negation, plus every body predicate
  /// of an aggregate rule (a new witness changes the aggregate value, so
  /// the old output tuple becomes stale). Monotone delta propagation is
  /// unsound when any of these changed — the epoch driver falls back to
  /// recomputing the stratum from its EDB facts and inputs.
  std::vector<PredicateId> recompute_triggers;
};

/// Result of stratification: strata in dependency (evaluation) order plus
/// the stratum index of every predicate (-1 for pure-EDB predicates).
struct Stratification {
  std::vector<Stratum> strata;
  std::vector<int32_t> stratum_of;
};

/// Builds the precedence graph (§V-A "generation of a precedence graph"),
/// computes its SCC condensation and checks stratified negation and
/// aggregation: a negated or aggregated dependency inside a single SCC is
/// rejected with InvalidArgument.
util::Status Stratify(const Program& program, Stratification* out);

}  // namespace carac::datalog

#endif  // CARAC_DATALOG_STRATIFY_H_
