#include "datalog/builtins.h"

#include "util/status.h"

namespace carac::datalog {

bool EvalComparison(BuiltinOp op, storage::Value a, storage::Value b) {
  switch (op) {
    case BuiltinOp::kLt:
      return a < b;
    case BuiltinOp::kLe:
      return a <= b;
    case BuiltinOp::kGt:
      return a > b;
    case BuiltinOp::kGe:
      return a >= b;
    case BuiltinOp::kEq:
      return a == b;
    case BuiltinOp::kNe:
      return a != b;
    default:
      CARAC_CHECK(false && "not a comparison builtin");
      return false;
  }
}

bool EvalArithmetic(BuiltinOp op, storage::Value x, storage::Value y,
                    storage::Value* z) {
  switch (op) {
    case BuiltinOp::kAdd:
      *z = x + y;
      return true;
    case BuiltinOp::kSub:
      *z = x - y;
      return true;
    case BuiltinOp::kMul:
      *z = x * y;
      return true;
    case BuiltinOp::kDiv:
      if (y == 0) return false;
      *z = x / y;
      return true;
    case BuiltinOp::kMod:
      if (y == 0) return false;
      *z = x % y;
      return true;
    default:
      CARAC_CHECK(false && "not an arithmetic builtin");
      return false;
  }
}

}  // namespace carac::datalog
