#ifndef CARAC_DATALOG_PARSER_H_
#define CARAC_DATALOG_PARSER_H_

#include <string>
#include <string_view>

#include "datalog/ast.h"
#include "util/status.h"

namespace carac::datalog {

/// Parses textual Datalog into a Program (the standalone counterpart of
/// the embedded DSL; the CLI uses it to run `.dl` files).
///
/// Grammar (newline-insensitive, `%` or `//` comments to end of line):
///
///   fact     Edge(1, 2).                 all-constant atom
///   rule     Path(x, z) :- Path(x, y), Edge(y, z).
///   negation Safe(x) :- Node(x), !Tainted(x).
///   compare  Small(x) :- Num(x), x < 10.         (< <= > >= = !=)
///   arith    Next(x, y) :- Num(x), y = x + 1.    (+ - * / %)
///   strings  Inv("deserialize", "serialize").
///
/// Relations are declared implicitly at first use; arity mismatches and
/// unsafe rules are rejected with the offending line number. Variables
/// are rule-scoped identifiers starting with a lowercase letter or '_';
/// relation names start with an uppercase letter.
util::Status ParseDatalog(std::string_view source, Program* program);

/// Reads and parses a `.dl` file.
util::Status ParseDatalogFile(const std::string& path, Program* program);

}  // namespace carac::datalog

#endif  // CARAC_DATALOG_PARSER_H_
