#include "datalog/parser.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/file.h"
#include "util/parse.h"

namespace carac::datalog {

namespace {

struct Token {
  enum class Kind {
    kIdent,    // Relation or variable name.
    kNumber,   // Integer literal.
    kString,   // "..." literal.
    kPunct,    // One of ( ) , . :- ! < <= > >= = != + - * / % @
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  util::Status Tokenize(std::vector<Token>* out) {
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '%' || (c == '/' && Peek(1) == '/')) {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out->push_back(LexIdent());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        out->push_back(LexNumber());
        continue;
      }
      if (c == '"') {
        Token token;
        CARAC_RETURN_IF_ERROR(LexString(&token));
        out->push_back(std::move(token));
        continue;
      }
      out->push_back(LexPunct());
      if (out->back().text.empty()) {
        return Error(std::string("unexpected character '") + c + "'");
      }
    }
    out->push_back(Token{Token::Kind::kEnd, "", line_});
    return util::Status::Ok();
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  Token LexIdent() {
    Token token{Token::Kind::kIdent, "", line_};
    while (pos_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
            source_[pos_] == '_')) {
      token.text += source_[pos_++];
    }
    return token;
  }

  Token LexNumber() {
    Token token{Token::Kind::kNumber, "", line_};
    if (source_[pos_] == '-') token.text += source_[pos_++];
    while (pos_ < source_.size() &&
           std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
      token.text += source_[pos_++];
    }
    return token;
  }

  util::Status LexString(Token* token) {
    token->kind = Token::Kind::kString;
    token->line = line_;
    ++pos_;  // Opening quote.
    while (pos_ < source_.size() && source_[pos_] != '"') {
      if (source_[pos_] == '\n') return Error("unterminated string");
      token->text += source_[pos_++];
    }
    if (pos_ >= source_.size()) return Error("unterminated string");
    ++pos_;  // Closing quote.
    return util::Status::Ok();
  }

  Token LexPunct() {
    Token token{Token::Kind::kPunct, "", line_};
    const char c = source_[pos_];
    const char next = Peek(1);
    auto two = [&](const char* text) {
      token.text = text;
      pos_ += 2;
    };
    if (c == ':' && next == '-') {
      two(":-");
    } else if (c == '<' && next == '=') {
      two("<=");
    } else if (c == '>' && next == '=') {
      two(">=");
    } else if (c == '!' && next == '=') {
      two("!=");
    } else if (std::string("(),.!<>=+-*/%@").find(c) != std::string::npos) {
      token.text = std::string(1, c);
      ++pos_;
    }
    return token;
  }

  util::Status Error(const std::string& message) const {
    return util::Status::InvalidArgument(
        "line " + std::to_string(line_) + ": " + message);
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Program* program)
      : tokens_(std::move(tokens)), program_(program) {}

  util::Status Parse() {
    while (Current().kind != Token::Kind::kEnd) {
      CARAC_RETURN_IF_ERROR(ParseClause());
    }
    return util::Status::Ok();
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }
  void Advance() { ++pos_; }

  util::Status Error(const std::string& message) const {
    return util::Status::InvalidArgument(
        "line " + std::to_string(Current().line) + ": " + message);
  }

  bool ConsumePunct(const std::string& text) {
    if (Current().kind == Token::Kind::kPunct && Current().text == text) {
      Advance();
      return true;
    }
    return false;
  }

  static bool IsRelationName(const std::string& name) {
    return !name.empty() && std::isupper(static_cast<unsigned char>(name[0]));
  }

  util::Status RelationOf(const std::string& name, size_t arity,
                          PredicateId* out) {
    auto it = relations_.find(name);
    if (it == relations_.end()) {
      *out = program_->AddRelation(name, arity);
      relations_.emplace(name, *out);
      return util::Status::Ok();
    }
    *out = it->second;
    if (program_->PredicateArity(*out) != arity) {
      return Error(name + " used with arity " + std::to_string(arity) +
                   ", declared with " +
                   std::to_string(program_->PredicateArity(*out)));
    }
    return util::Status::Ok();
  }

  /// Rule-scoped variable lookup.
  Term VarTerm(const std::string& name) {
    auto [it, inserted] = rule_vars_.emplace(name, 0);
    if (inserted) it->second = program_->NewVar(name);
    return Term::MakeVar(it->second);
  }

  util::Status ParseTerm(Term* out) {
    const Token& token = Current();
    switch (token.kind) {
      case Token::Kind::kNumber: {
        // The lexer emits well-formed sign+digit tokens, so a
        // strict-parse failure here can only mean overflow.
        int64_t value = 0;
        if (!util::ParseInt64(token.text, &value)) {
          return Error("integer literal out of 64-bit range: " + token.text);
        }
        *out = Term::MakeConst(value);
        Advance();
        return util::Status::Ok();
      }
      case Token::Kind::kString:
        *out = Term::MakeConst(program_->Intern(token.text));
        Advance();
        return util::Status::Ok();
      case Token::Kind::kIdent:
        if (IsRelationName(token.text)) {
          return Error("relation name '" + token.text +
                       "' used as a term (variables are lowercase)");
        }
        *out = VarTerm(token.text);
        Advance();
        return util::Status::Ok();
      default:
        return Error("expected a term, got '" + token.text + "'");
    }
  }

  util::Status ParseRelationalAtom(Atom* atom) {
    atom->negated = ConsumePunct("!");
    if (Current().kind != Token::Kind::kIdent ||
        !IsRelationName(Current().text)) {
      std::string got = Current().kind == Token::Kind::kEnd
                            ? "end of input"
                            : "'" + Current().text + "'";
      // A lowercase identifier is almost always a miscased relation —
      // teach the convention; for stray punctuation the hint would only
      // mislead.
      if (Current().kind == Token::Kind::kIdent) {
        got += " (relations start uppercase, variables start lowercase)";
      }
      return Error("expected a relation name, got " + got);
    }
    const std::string name = Current().text;
    Advance();
    if (!ConsumePunct("(")) return Error("expected '(' after " + name);
    do {
      Term term;
      CARAC_RETURN_IF_ERROR(ParseTerm(&term));
      atom->terms.push_back(term);
    } while (ConsumePunct(","));
    if (!ConsumePunct(")")) return Error("expected ')'");
    return RelationOf(name, atom->terms.size(), &atom->predicate);
  }

  /// Comparison or arithmetic constraint:
  ///   term OP term              (OP in < <= > >= = !=)
  ///   term = term AOP term      (AOP in + - * / %)
  util::Status ParseConstraint(Atom* atom) {
    Term lhs;
    CARAC_RETURN_IF_ERROR(ParseTerm(&lhs));
    const std::string op = Current().text;
    static const std::map<std::string, BuiltinOp> kCompare = {
        {"<", BuiltinOp::kLt}, {"<=", BuiltinOp::kLe},
        {">", BuiltinOp::kGt}, {">=", BuiltinOp::kGe},
        {"=", BuiltinOp::kEq}, {"!=", BuiltinOp::kNe}};
    auto cmp = kCompare.find(op);
    if (Current().kind != Token::Kind::kPunct || cmp == kCompare.end()) {
      return Error("expected a comparison operator, got '" + op + "'");
    }
    Advance();
    Term rhs;
    CARAC_RETURN_IF_ERROR(ParseTerm(&rhs));

    static const std::map<std::string, BuiltinOp> kArith = {
        {"+", BuiltinOp::kAdd}, {"-", BuiltinOp::kSub},
        {"*", BuiltinOp::kMul}, {"/", BuiltinOp::kDiv},
        {"%", BuiltinOp::kMod}};
    auto arith = kArith.find(Current().text);
    if (Current().kind == Token::Kind::kPunct && arith != kArith.end()) {
      // lhs = rhs AOP third.
      if (cmp->second != BuiltinOp::kEq) {
        return Error("arithmetic requires '=' (e.g. z = x + y)");
      }
      Advance();
      Term third;
      CARAC_RETURN_IF_ERROR(ParseTerm(&third));
      atom->builtin = arith->second;
      atom->terms = {rhs, third, lhs};  // z = x OP y stores (x, y, z).
      return util::Status::Ok();
    }
    atom->builtin = cmp->second;
    atom->terms = {lhs, rhs};
    return util::Status::Ok();
  }

  util::Status ParseBodyAtom(Atom* atom) {
    const bool relational =
        (Current().kind == Token::Kind::kPunct && Current().text == "!") ||
        (Current().kind == Token::Kind::kIdent &&
         IsRelationName(Current().text));
    return relational ? ParseRelationalAtom(atom) : ParseConstraint(atom);
  }

  /// `@index(Rel, col, kind).` — hints the index organization for one
  /// column. `kind` is any name in storage::kIndexKindTable (hash,
  /// sorted, btree, sorted_array, learned); the relation must already be
  /// known so the column can be validated against its arity.
  util::Status ParsePragma() {
    if (Current().kind != Token::Kind::kIdent || Current().text != "index") {
      return Error("unknown pragma '@" + Current().text +
                   "' (supported: @index)");
    }
    Advance();
    if (!ConsumePunct("(")) return Error("expected '(' after @index");
    if (Current().kind != Token::Kind::kIdent ||
        !IsRelationName(Current().text)) {
      return Error("expected a relation name in @index");
    }
    const std::string name = Current().text;
    Advance();
    auto it = relations_.find(name);
    if (it == relations_.end()) {
      return Error("@index names unknown relation " + name +
                   " (mention it in a fact or rule first)");
    }
    if (!ConsumePunct(",")) return Error("expected ',' after " + name);
    if (Current().kind != Token::Kind::kNumber) {
      return Error("expected a column number in @index");
    }
    int64_t column = -1;
    util::ParseInt64(Current().text, &column);
    const size_t arity = program_->PredicateArity(it->second);
    if (column < 0 || static_cast<size_t>(column) >= arity) {
      return Error("@index column " + Current().text + " out of range for " +
                   name + "/" + std::to_string(arity));
    }
    Advance();
    if (!ConsumePunct(",")) return Error("expected ',' after the column");
    storage::IndexKind kind;
    if (Current().kind != Token::Kind::kIdent ||
        !storage::ParseIndexKind(Current().text, &kind)) {
      return Error("unknown index kind '" + Current().text +
                   "' in @index (one of: " + storage::IndexKindNameList() +
                   ")");
    }
    Advance();
    if (!ConsumePunct(")")) return Error("expected ')'");
    if (!ConsumePunct(".")) return Error("expected '.' after @index(...)");
    program_->HintIndexKind(it->second, static_cast<size_t>(column), kind);
    return util::Status::Ok();
  }

  util::Status ParseClause() {
    if (ConsumePunct("@")) return ParsePragma();
    rule_vars_.clear();
    Atom head;
    CARAC_RETURN_IF_ERROR(ParseRelationalAtom(&head));
    if (head.negated) return Error("clause heads cannot be negated");

    if (ConsumePunct(".")) {
      // A fact: all terms must be constants.
      storage::Tuple tuple;
      for (const Term& t : head.terms) {
        if (!t.is_const()) return Error("facts must be ground");
        tuple.push_back(t.constant);
      }
      program_->AddFact(head.predicate, std::move(tuple));
      return util::Status::Ok();
    }

    if (!ConsumePunct(":-")) return Error("expected '.' or ':-'");
    Rule rule;
    rule.head = std::move(head);
    do {
      Atom atom;
      CARAC_RETURN_IF_ERROR(ParseBodyAtom(&atom));
      rule.body.push_back(std::move(atom));
    } while (ConsumePunct(","));
    if (!ConsumePunct(".")) return Error("expected '.' at end of rule");

    util::Status status = program_->AddRule(std::move(rule));
    if (!status.ok()) {
      return Error(status.message());
    }
    return util::Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program* program_;
  std::map<std::string, PredicateId> relations_;
  std::map<std::string, VarId> rule_vars_;
};

}  // namespace

util::Status ParseDatalog(std::string_view source, Program* program) {
  std::vector<Token> tokens;
  Lexer lexer(source);
  CARAC_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens), program);
  return parser.Parse();
}

util::Status ParseDatalogFile(const std::string& path, Program* program) {
  CARAC_RETURN_IF_ERROR(util::CheckNotDirectory(path));
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseDatalog(buffer.str(), program);
}

}  // namespace carac::datalog
