#include "baselines/souffle_like.h"

#include <utility>

#include "backends/quotes_backend.h"
#include "ir/interpreter.h"
#include "ir/lowering.h"
#include "optimizer/join_order.h"
#include "util/timer.h"

namespace carac::baselines {

const char* SouffleModeName(SouffleMode mode) {
  switch (mode) {
    case SouffleMode::kInterpreter:
      return "interpreter";
    case SouffleMode::kCompiler:
      return "compiler";
    case SouffleMode::kAutoTuned:
      return "auto-tuned";
  }
  return "?";
}

namespace {

/// Runs a fully interpreted pass and returns the end-state statistics —
/// the profile an auto-tuner would collect.
optimizer::StatsSnapshot ProfileRun(const harness::WorkloadFactory& factory) {
  analysis::Workload workload = factory();
  workload.program->db().SetIndexingEnabled(true);
  ir::IRProgram irp;
  CARAC_CHECK_OK(ir::LowerProgram(workload.program.get(),
                                  /*declare_indexes=*/true, &irp));
  ir::ExecContext ctx(&workload.program->db());
  ir::Interpreter interp(&ctx);
  interp.Execute(*irp.root);
  return optimizer::StatsSnapshot::Capture(workload.program->db());
}

}  // namespace

BaselineResult RunSouffleLike(const harness::WorkloadFactory& factory,
                              SouffleMode mode) {
  BaselineResult result;

  if (mode == SouffleMode::kInterpreter) {
    harness::Measurement m =
        harness::MeasureOnce(factory, harness::InterpretedConfig(true));
    result.ok = m.ok;
    result.error = m.error;
    result.seconds = m.seconds;
    result.result_size = m.result_size;
    return result;
  }

  // Compiler / auto-tuned: whole-program AOT compilation through the
  // quotes backend. Each measurement pays the full compiler invocation,
  // so the cache is dropped first.
  backends::ClearQuotesCache();

  optimizer::StatsSnapshot profile;
  if (mode == SouffleMode::kAutoTuned) profile = ProfileRun(factory);

  analysis::Workload workload = factory();
  workload.program->db().SetIndexingEnabled(true);
  ir::IRProgram irp;
  util::Status status = ir::LowerProgram(workload.program.get(),
                                         /*declare_indexes=*/true, &irp);
  if (!status.ok()) {
    result.ok = false;
    result.error = status.ToString();
    return result;
  }

  if (mode == SouffleMode::kAutoTuned) {
    // Retune join orders from the profile (untimed, like Soufflé's
    // profile-guided optimization whose profiling phase is excluded).
    optimizer::JoinOrderConfig config;
    optimizer::ReorderSubtree(profile, config, irp.root.get());
  }

  util::Timer timer;
  backends::QuotesBackend backend;
  backends::CompileRequest request;
  request.subtree = irp.root->Clone();
  request.stats = optimizer::StatsSnapshot::Capture(workload.program->db());
  request.mode = backends::CompileMode::kFull;
  request.reorder = false;  // Orders are fixed ahead of time, as written.
  std::unique_ptr<backends::CompiledUnit> unit;
  status = backend.Compile(std::move(request), &unit);
  if (!status.ok()) {
    result.ok = false;
    result.error = status.ToString();
    return result;
  }

  ir::ExecContext ctx(&workload.program->db());
  ir::Interpreter interp(&ctx);
  unit->Run(ctx, interp, *irp.root);
  result.seconds = timer.ElapsedSeconds();
  result.result_size =
      workload.program->db()
          .Get(workload.output, storage::DbKind::kDerived)
          .size();
  return result;
}

}  // namespace carac::baselines
