#include "baselines/dlx_like.h"

#include <vector>

#include "ir/interpreter.h"
#include "ir/lowering.h"
#include "util/timer.h"

namespace carac::baselines {

DlxResult RunDlxLike(const harness::WorkloadFactory& factory,
                     double timeout_seconds) {
  DlxResult result;
  analysis::Workload workload = factory();
  workload.program->db().SetIndexingEnabled(true);

  ir::IRProgram irp;
  util::Status status = ir::LowerProgram(workload.program.get(),
                                         /*declare_indexes=*/true, &irp);
  if (!status.ok()) {
    result.ok = false;
    result.error = status.ToString();
    return result;
  }

  ir::ExecContext ctx(&workload.program->db());
  ir::Interpreter interp(&ctx);
  util::Timer timer;

  // Naive evaluation: per stratum, repeat the *initial* (all-Derived)
  // pass until no new facts appear, ignoring the semi-naive DoWhile the
  // lowering also produced. Every iteration rejoins the complete Derived
  // stores — the quadratic work semi-naive avoids.
  for (const auto& stratum_seq : irp.root->children) {
    std::vector<ir::IROp*> naive_passes;
    std::vector<datalog::PredicateId> relations;
    for (const auto& child : stratum_seq->children) {
      if (child->kind == ir::OpKind::kUnionAll) {
        naive_passes.push_back(child.get());
      } else if (child->kind == ir::OpKind::kSwapClear &&
                 relations.empty()) {
        relations = child->relations;
      }
    }
    for (;;) {
      if (timer.ElapsedSeconds() > timeout_seconds) {
        result.dnf = true;
        result.seconds = timer.ElapsedSeconds();
        return result;
      }
      for (ir::IROp* pass : naive_passes) interp.ExecuteNode(*pass);
      ctx.db().SwapClearMerge(relations);
      ctx.stats().iterations++;
      if (!ctx.db().AnyDeltaKnownNonEmpty(relations)) break;
    }
  }

  result.seconds = timer.ElapsedSeconds();
  result.result_size =
      workload.program->db()
          .Get(workload.output, storage::DbKind::kDerived)
          .size();
  return result;
}

}  // namespace carac::baselines
