#ifndef CARAC_BASELINES_SOUFFLE_LIKE_H_
#define CARAC_BASELINES_SOUFFLE_LIKE_H_

#include <string>

#include "harness/runner.h"

namespace carac::baselines {

/// The Soufflé-analog comparator for Table II (see DESIGN.md §2). Three
/// modes mirror Soufflé's:
///   * kInterpreter — semi-naive interpretation of the plan as written;
///   * kCompiler    — the whole program is compiled through the quotes
///     backend, with the *real C++ compiler invocation included in the
///     measured time* (Soufflé's compiler mode pays exactly this cost);
///   * kAutoTuned   — an untimed profiling run first collects relation
///     cardinalities; join orders are retuned from the profile (untimed,
///     as the paper excludes profiling time) and the program is then
///     compiled (timed) and run (timed).
enum class SouffleMode { kInterpreter, kCompiler, kAutoTuned };

const char* SouffleModeName(SouffleMode mode);

struct BaselineResult {
  bool ok = true;
  double seconds = 0;
  size_t result_size = 0;
  std::string error;
};

BaselineResult RunSouffleLike(const harness::WorkloadFactory& factory,
                              SouffleMode mode);

}  // namespace carac::baselines

#endif  // CARAC_BASELINES_SOUFFLE_LIKE_H_
