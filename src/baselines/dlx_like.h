#ifndef CARAC_BASELINES_DLX_LIKE_H_
#define CARAC_BASELINES_DLX_LIKE_H_

#include <string>

#include "harness/runner.h"

namespace carac::baselines {

/// The DLX-analog comparator for Table II (the paper anonymizes a
/// commercial engine): a *naive*-evaluation bottom-up engine — every
/// iteration re-derives from the full Derived store rather than from
/// deltas — with join orders as written and a wall-clock timeout that
/// reports DNF, matching DLX's observed behaviour (slower than Soufflé on
/// CSDA, did-not-finish on CSPA).
struct DlxResult {
  bool ok = true;
  bool dnf = false;  ///< Timed out before reaching the fixpoint.
  double seconds = 0;
  size_t result_size = 0;
  std::string error;
};

DlxResult RunDlxLike(const harness::WorkloadFactory& factory,
                     double timeout_seconds);

}  // namespace carac::baselines

#endif  // CARAC_BASELINES_DLX_LIKE_H_
