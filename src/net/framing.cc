#include "net/framing.h"

#include <cstdio>

namespace carac::net {

void StripComment(std::string* line) {
  for (size_t i = 0; i < line->size(); ++i) {
    if ((*line)[i] != '#') continue;
    if (i == 0 || (*line)[i - 1] == ' ' || (*line)[i - 1] == '\t') {
      line->resize(i);
      return;
    }
  }
}

bool LineBuffer::NextLine(std::string* out) {
  const size_t pos = pending_.find('\n');
  if (pos == std::string::npos) return false;
  out->assign(pending_, 0, pos);
  if (!out->empty() && out->back() == '\r') out->pop_back();
  pending_.erase(0, pos + 1);
  return true;
}

void StdioWriter::Payload(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
}

void StdioWriter::Error(std::string_view message) {
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fputc('\n', stderr);
}

void WireResponse::Payload(std::string_view line) {
  out_ += "| ";
  out_ += line;
  out_ += '\n';
}

void WireResponse::Error(std::string_view message) {
  error_.assign(message);
  has_error_ = true;
}

std::string WireResponse::Finish() && {
  if (has_error_) {
    out_ += "err ";
    out_ += error_;
  } else {
    out_ += "ok";
  }
  out_ += '\n';
  return std::move(out_);
}

}  // namespace carac::net
