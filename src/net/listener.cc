#include "net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace carac::net {

namespace {

util::Status Errno(const std::string& what) {
  return util::Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

util::Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return util::Status::Ok();
}

util::Status ListenUnix(const std::string& path, int* fd_out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return util::Status::InvalidArgument(
        "unix socket path too long (" + std::to_string(path.size()) +
        " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) + "): " +
        path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  ::unlink(path.c_str());
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const util::Status status = Errno("bind(" + path + ")");
    ::close(fd);
    return status;
  }
  if (listen(fd, SOMAXCONN) < 0) {
    const util::Status status = Errno("listen(" + path + ")");
    ::close(fd);
    return status;
  }
  const util::Status status = SetNonBlocking(fd);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  *fd_out = fd;
  return util::Status::Ok();
}

util::Status ListenTcp(int port, int* fd_out, int* resolved_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  // Skip TIME_WAIT squatting across quick restarts (tests restart the
  // server on the same port within seconds).
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const util::Status status =
        Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
    ::close(fd);
    return status;
  }
  if (listen(fd, SOMAXCONN) < 0) {
    const util::Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const util::Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  const util::Status status = SetNonBlocking(fd);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  *fd_out = fd;
  *resolved_port = ntohs(bound.sin_port);
  return util::Status::Ok();
}

}  // namespace carac::net
