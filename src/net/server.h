#ifndef CARAC_NET_SERVER_H_
#define CARAC_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/commands.h"
#include "net/injector_queue.h"
#include "util/status.h"

namespace carac::net {

struct ServerConfig {
  /// Unix-domain socket path ("" = no unix listener).
  std::string unix_path;
  /// TCP port on 127.0.0.1 (-1 = no tcp listener, 0 = ephemeral; read
  /// the resolved port back with Server::tcp_port()).
  int tcp_port = -1;
  /// Per-core worker threads; each owns an injector queue and the
  /// sessions pinned to it.
  int num_workers = 1;
  /// Max requests a worker admits per queue pop — bounds how long one
  /// chatty session can monopolize its worker between wakeups.
  size_t admission_batch = 16;
};

/// The concurrent serving layer: a socket server speaking the serve
/// command protocol, one line per request, over Unix-domain and TCP
/// stream sockets.
///
/// Threading model (KVell-style share-nothing request routing):
///
///   - ONE dispatcher thread owns every socket read: it polls the
///     listeners and all session fds, accepts connections (pinning each
///     session to a worker round-robin), reassembles lines, and admits
///     them in batches into the workers' injector queues.
///   - N worker threads each own an injector queue and execute requests
///     for THEIR sessions only, writing responses straight to the
///     session socket. A session's requests live on exactly one queue,
///     so responses come back in request order and no session state is
///     ever shared between workers.
///   - Reads (count/dump/stats) run against the engine's published
///     epoch-snapshot ReadView — many workers read concurrently and are
///     never blocked by an in-flight write. Writes (load/update/save/
///     open) serialize through ServeContext::write_mutex into the
///     engine's single-writer epoch pipeline.
///
/// Response framing: every non-empty request line gets zero or more
/// "| "-prefixed payload lines followed by "ok" or "err <diagnostic>";
/// blank/comment lines get nothing (see WireResponse).
///
/// Shutdown contract: RequestShutdown() (async-signal-safe; also wired
/// to a failed `open`, after which serving would lie) makes the
/// dispatcher stop accepting, hand every session's already-admitted
/// requests to its worker followed by a close marker, and post one
/// shutdown marker per queue. Workers finish what was admitted —
/// responses for requests the server already read are written, then
/// fds close. Wait() joins everything; in-flight writes complete, the
/// engine is quiescent when it returns.
class Server {
 public:
  /// `ctx` must outlive the server; ServeContext::write_mutex must be
  /// set when num_workers > 1 (the constructor checks).
  Server(ServeContext* ctx, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and spawns the dispatcher and
  /// worker threads. On error nothing is left running.
  util::Status Start();

  /// Triggers shutdown without blocking. Async-signal-safe (one write
  /// to the self-pipe), idempotent, callable from any thread.
  void RequestShutdown();

  /// Joins the dispatcher and workers. Returns once every session is
  /// closed and every thread exited.
  void Wait();

  /// Resolved TCP port (meaningful after Start() when tcp was asked
  /// for; this is how an ephemeral-port server is discovered).
  int tcp_port() const { return resolved_tcp_port_; }

  /// True if the server stopped because serving became unsound (a
  /// failed `open` left the database partially overwritten). The CLI
  /// exits nonzero on it.
  bool fatal_error() const { return fatal_.load(std::memory_order_relaxed); }

 private:
  void DispatcherLoop();
  void WorkerLoop(size_t worker_index);
  /// Writes all of `data` to `fd`, polling out EAGAIN; gives up
  /// silently on a dead peer (the dispatcher will see the EOF).
  static void WriteAll(int fd, const std::string& data);

  ServeContext* ctx_;
  ServerConfig config_;
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int resolved_tcp_port_ = -1;
  /// Self-pipe: RequestShutdown writes a byte, the dispatcher's poll
  /// wakes on it. The only signal-safe way to kick a poll loop.
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> fatal_{false};
  std::vector<std::unique_ptr<InjectorQueue>> queues_;
  std::thread dispatcher_;
  std::vector<std::thread> workers_;
  bool started_ = false;
};

}  // namespace carac::net

#endif  // CARAC_NET_SERVER_H_
