#ifndef CARAC_NET_INJECTOR_QUEUE_H_
#define CARAC_NET_INJECTOR_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace carac::net {

struct Session;

/// One admitted request on its way from the dispatcher to the worker
/// that owns the session.
struct ServerRequest {
  enum class Kind : uint8_t {
    /// One protocol line to execute and respond to.
    kLine,
    /// The dispatcher stopped polling this session (client EOF or
    /// server shutdown): after everything queued before this marker,
    /// the worker closes the fd and frees the session.
    kCloseSession,
    /// Always the last request a queue carries: finish the batch in
    /// hand and exit the worker loop.
    kShutdown,
  };

  Session* session = nullptr;
  std::string line;
  Kind kind = Kind::kLine;
};

/// The per-worker injector (KVell's share-nothing request routing): the
/// dispatcher is the only producer, the owning worker the only
/// consumer, and a session's requests only ever flow through its pinned
/// worker's queue — so per-session ordering is the queue's FIFO order
/// and no two workers ever race on one session's state.
class InjectorQueue {
 public:
  InjectorQueue() = default;
  InjectorQueue(const InjectorQueue&) = delete;
  InjectorQueue& operator=(const InjectorQueue&) = delete;

  /// Enqueues a batch (moved from), waking the worker once — batching
  /// amortizes the lock/wake cost across a poll round's admissions.
  void PushBatch(std::vector<ServerRequest> batch);

  /// Blocks until requests are available, then moves up to `max` of
  /// them into `out` (appended). Returns the number popped.
  size_t PopBatch(std::vector<ServerRequest>* out, size_t max);

 private:
  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<ServerRequest> queue_;
};

}  // namespace carac::net

#endif  // CARAC_NET_INJECTOR_QUEUE_H_
