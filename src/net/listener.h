#ifndef CARAC_NET_LISTENER_H_
#define CARAC_NET_LISTENER_H_

#include <string>

#include "util/status.h"

namespace carac::net {

/// Binds and listens on a Unix-domain stream socket at `path`. A stale
/// socket file from a previous run is unlinked first (the standard
/// daemon idiom — bind() refuses an existing path). On success `*fd_out`
/// is the nonblocking listening fd.
util::Status ListenUnix(const std::string& path, int* fd_out);

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port). On success `*fd_out` is the nonblocking listening fd and
/// `*resolved_port` the actual port — callers print it so clients of an
/// ephemeral-port server know where to connect. Loopback only: the
/// serve protocol has no authentication, so it must not be reachable
/// from other hosts.
util::Status ListenTcp(int port, int* fd_out, int* resolved_port);

/// Puts any fd into nonblocking mode (accepted connections inherit
/// blocking mode on Linux, so every accept gets one of these).
util::Status SetNonBlocking(int fd);

}  // namespace carac::net

#endif  // CARAC_NET_LISTENER_H_
