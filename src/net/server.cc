#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "net/framing.h"
#include "net/listener.h"
#include "util/status.h"

namespace carac::net {

/// Per-connection state. Split ownership by design: the dispatcher owns
/// the READ side (fd polling, the line reassembly buffer) and the
/// pinned worker owns everything else (execution, the fd's write side,
/// the quitting flag). The two sides never touch each other's fields,
/// and the fd itself is torn down in one place only — the worker, when
/// the kCloseSession marker arrives AFTER every admitted request.
struct Session {
  int fd = -1;
  size_t worker = 0;
  /// Dispatcher-only: bytes read but not yet forming a complete line.
  LineBuffer input;
  /// Worker-only: set on quit/fatal; admitted-but-unexecuted lines of
  /// this session are dropped instead of executed after the farewell.
  bool quitting = false;
};

Server::Server(ServeContext* ctx, ServerConfig config)
    : ctx_(ctx), config_(std::move(config)) {
  CARAC_CHECK(ctx_ != nullptr && ctx_->engine != nullptr);
  // Workers execute writes concurrently with each other; the engine has
  // a single-writer pipeline. No mutex would mean racing epochs.
  CARAC_CHECK(ctx_->write_mutex != nullptr);
  if (config_.num_workers < 1) config_.num_workers = 1;
  if (config_.admission_batch < 1) config_.admission_batch = 1;
}

Server::~Server() {
  RequestShutdown();
  Wait();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

util::Status Server::Start() {
  CARAC_CHECK(!started_);
  if (config_.unix_path.empty() && config_.tcp_port < 0) {
    return util::Status::InvalidArgument(
        "server needs at least one listener (unix path or tcp port)");
  }
  if (!config_.unix_path.empty()) {
    CARAC_RETURN_IF_ERROR(ListenUnix(config_.unix_path, &unix_listen_fd_));
  }
  if (config_.tcp_port >= 0) {
    const util::Status status =
        ListenTcp(config_.tcp_port, &tcp_listen_fd_, &resolved_tcp_port_);
    if (!status.ok()) {
      if (unix_listen_fd_ >= 0) {
        ::close(unix_listen_fd_);
        ::unlink(config_.unix_path.c_str());
        unix_listen_fd_ = -1;
      }
      return status;
    }
  }
  if (::pipe(wake_pipe_) != 0) {
    return util::Status::Internal("pipe() for shutdown self-pipe failed");
  }
  CARAC_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[0]));
  CARAC_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[1]));
  queues_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    queues_.push_back(std::make_unique<InjectorQueue>());
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  workers_.reserve(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  started_ = true;
  return util::Status::Ok();
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    // Async-signal-safe by construction: one write(2) on a nonblocking
    // pipe. EAGAIN (pipe already full) still means the dispatcher has
    // a wakeup pending, so the result is deliberately ignored.
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::Wait() {
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Server::DispatcherLoop() {
  std::vector<Session*> sessions;
  std::vector<pollfd> fds;
  size_t next_worker = 0;
  bool closing = false;

  while (!closing) {
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (unix_listen_fd_ >= 0) fds.push_back({unix_listen_fd_, POLLIN, 0});
    if (tcp_listen_fd_ >= 0) fds.push_back({tcp_listen_fd_, POLLIN, 0});
    const size_t session_base = fds.size();
    const size_t polled_sessions = sessions.size();
    for (const Session* session : sessions) {
      fds.push_back({session->fd, POLLIN, 0});
    }
    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      closing = true;  // Unrecoverable poll failure: tear down cleanly.
    }

    // One batch per worker per poll round — admission happens in bulk.
    std::vector<std::vector<ServerRequest>> batches(queues_.size());

    if (fds[0].revents != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
      }
      if (shutdown_requested_.load(std::memory_order_acquire)) {
        closing = true;
      }
    }

    auto accept_from = [&](int listen_fd) {
      for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;  // EAGAIN: accepted everything pending.
        if (!SetNonBlocking(fd).ok()) {
          ::close(fd);
          continue;
        }
        auto* session = new Session;
        session->fd = fd;
        session->worker = next_worker;
        next_worker = (next_worker + 1) % queues_.size();
        sessions.push_back(session);
      }
    };
    size_t fd_index = 1;
    if (unix_listen_fd_ >= 0) {
      if (!closing && fds[fd_index].revents != 0) accept_from(unix_listen_fd_);
      ++fd_index;
    }
    if (tcp_listen_fd_ >= 0) {
      if (!closing && fds[fd_index].revents != 0) accept_from(tcp_listen_fd_);
      ++fd_index;
    }

    // Drain readable sessions, reassemble lines, admit them to the
    // owning worker's queue. A session that hit EOF (or whose worker
    // executed quit and shut the socket down) leaves the poll set now
    // and gets its close marker — ordered after its admitted lines.
    std::vector<Session*> still_open;
    still_open.reserve(sessions.size());
    for (size_t i = 0; i < sessions.size(); ++i) {
      Session* session = sessions[i];
      bool eof = false;
      const bool readable =
          i < polled_sessions && fds[session_base + i].revents != 0;
      if (readable) {
        char buffer[4096];
        for (;;) {
          const ssize_t n = ::read(session->fd, buffer, sizeof buffer);
          if (n > 0) {
            session->input.Append(buffer, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          eof = true;  // Clean EOF or a hard error: either way, done.
          break;
        }
        std::string line;
        while (session->input.NextLine(&line)) {
          batches[session->worker].push_back(
              {session, std::move(line), ServerRequest::Kind::kLine});
        }
      }
      if (eof || closing) {
        batches[session->worker].push_back(
            {session, std::string(), ServerRequest::Kind::kCloseSession});
      } else {
        still_open.push_back(session);
      }
    }
    sessions.swap(still_open);

    for (size_t i = 0; i < queues_.size(); ++i) {
      queues_[i]->PushBatch(std::move(batches[i]));
    }
  }

  // Stop accepting, then tell every worker to finish and exit. The
  // shutdown marker is the LAST request each queue ever carries, so
  // workers drain all admitted work (including the close markers just
  // pushed) before leaving.
  if (unix_listen_fd_ >= 0) {
    ::close(unix_listen_fd_);
    ::unlink(config_.unix_path.c_str());
    unix_listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  for (const std::unique_ptr<InjectorQueue>& queue : queues_) {
    queue->PushBatch({{nullptr, std::string(), ServerRequest::Kind::kShutdown}});
  }
}

void Server::WorkerLoop(size_t worker_index) {
  InjectorQueue& queue = *queues_[worker_index];
  std::vector<ServerRequest> batch;
  bool running = true;
  while (running) {
    batch.clear();
    queue.PopBatch(&batch, config_.admission_batch);
    for (ServerRequest& request : batch) {
      if (request.kind == ServerRequest::Kind::kShutdown) {
        // Always the final queue entry; nothing can follow it.
        running = false;
        continue;
      }
      Session* session = request.session;
      if (request.kind == ServerRequest::Kind::kCloseSession) {
        ::close(session->fd);
        delete session;
        continue;
      }
      if (session->quitting) continue;
      WireResponse response;
      const ServeOutcome outcome =
          ExecuteServeLine(ctx_, std::move(request.line), &response);
      if (outcome == ServeOutcome::kSilent) continue;
      WriteAll(session->fd, std::move(response).Finish());
      if (outcome == ServeOutcome::kQuit) {
        session->quitting = true;
        // Half of the close handshake: the dispatcher observes the EOF
        // this produces, unpolls the session and sends the close
        // marker; THIS worker then closes the fd and frees the session.
        ::shutdown(session->fd, SHUT_RDWR);
      } else if (outcome == ServeOutcome::kFatal) {
        session->quitting = true;
        fatal_.store(true, std::memory_order_relaxed);
        RequestShutdown();
      }
    }
  }
}

void Server::WriteAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = ::send(fd, data.data() + offset, data.size() - offset,
                             MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd writable{fd, POLLOUT, 0};
      ::poll(&writable, 1, /*timeout_ms=*/1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Dead peer (EPIPE/ECONNRESET): drop the rest of the response; the
    // dispatcher will see the EOF and retire the session.
    return;
  }
}

}  // namespace carac::net
