#ifndef CARAC_NET_FRAMING_H_
#define CARAC_NET_FRAMING_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace carac::net {

/// Truncates `line` at the first comment marker. A '#' starts a comment
/// only at the beginning of the line or after whitespace — a '#' embedded
/// in a token is payload (`load Edge data#1.csv` names a file, and
/// truncating it used to make serve try to load "data"). The comment
/// convention is documented per line, so this is the single
/// implementation both the stdin serve loop and the socket server use.
void StripComment(std::string* line);

/// Reassembles the line-per-request protocol from arbitrary read chunks:
/// a socket read may deliver half a line or twelve of them, and the
/// dispatcher feeds whatever arrived. NextLine() hands back complete
/// lines (without the terminator; a trailing '\r' is stripped so naive
/// CRLF clients work) and leaves any unterminated tail buffered for the
/// next Append().
class LineBuffer {
 public:
  void Append(const char* data, size_t n) { pending_.append(data, n); }

  /// Extracts the next complete line into `out`; false when no full
  /// line is buffered yet.
  bool NextLine(std::string* out);

  size_t pending_bytes() const { return pending_.size(); }

 private:
  std::string pending_;
};

/// Where one command's response goes. The executor (ExecuteServeLine)
/// emits payload lines and at most one diagnostic through this
/// interface; the caller decides the wire format — stdout/stderr for
/// `carac serve`, framed socket responses for `carac server`.
class ResponseWriter {
 public:
  virtual ~ResponseWriter() = default;
  /// One payload line (no trailing newline).
  virtual void Payload(std::string_view line) = 0;
  /// The command's diagnostic (at most one per command).
  virtual void Error(std::string_view message) = 0;
};

/// The stdin-serve writer: payload to stdout, diagnostics to stderr —
/// byte-identical to what serve has always printed. Flushing after each
/// command is the caller's job (see RunServe: stdout is block-buffered
/// on pipes, so unflushed responses deadlock programmatic clients).
class StdioWriter : public ResponseWriter {
 public:
  void Payload(std::string_view line) override;
  void Error(std::string_view message) override;
};

/// Accumulates one command's response in wire form:
///
///   | <payload line>        (zero or more, "| "-prefixed)
///   ok                      (or: err <diagnostic>)
///
/// The prefix keeps framing unambiguous — a payload line whose text is
/// literally "ok" (a symbol dump can contain anything) can never be
/// mistaken for the terminator. Blank and comment-only request lines
/// produce no response at all (the executor reports kSilent and the
/// server skips Finish()).
class WireResponse : public ResponseWriter {
 public:
  void Payload(std::string_view line) override;
  void Error(std::string_view message) override;

  /// Appends the terminator and returns the complete wire bytes.
  std::string Finish() &&;

 private:
  std::string out_;
  std::string error_;
  bool has_error_ = false;
};

}  // namespace carac::net

#endif  // CARAC_NET_FRAMING_H_
