#include "net/injector_queue.h"

namespace carac::net {

void InjectorQueue::PushBatch(std::vector<ServerRequest> batch) {
  if (batch.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ServerRequest& request : batch) {
      queue_.push_back(std::move(request));
    }
  }
  ready_.notify_one();
}

size_t InjectorQueue::PopBatch(std::vector<ServerRequest>* out, size_t max) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return !queue_.empty(); });
  size_t popped = 0;
  while (popped < max && !queue_.empty()) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++popped;
  }
  return popped;
}

}  // namespace carac::net
