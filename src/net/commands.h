#ifndef CARAC_NET_COMMANDS_H_
#define CARAC_NET_COMMANDS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "core/engine.h"
#include "datalog/ast.h"
#include "net/framing.h"

namespace carac::net {

/// What executing one serve command line did — the session-control part
/// of the response (the response text itself went through the
/// ResponseWriter).
enum class ServeOutcome : uint8_t {
  /// Executed; session continues.
  kOk,
  /// Malformed input or a recoverable failure: a diagnostic was emitted
  /// and the session CONTINUES — in a long-lived updatable database, a
  /// typo must not tear down the in-memory fixpoint.
  kError,
  /// `quit`: end this session (the engine keeps running for others).
  kQuit,
  /// A failed `open`: the database may be partially overwritten, so
  /// serving it would lie. The session — and in server mode the whole
  /// server — must stop with an error.
  kFatal,
  /// Blank or comment-only line: no response at all.
  kSilent,
};

/// Everything one serve command needs, plus the switches that
/// distinguish the stdin session from the concurrent socket server.
struct ServeContext {
  datalog::Program* program = nullptr;
  core::Engine* engine = nullptr;
  /// For `save`'s response text (EngineConfig::snapshot_dir).
  std::string snapshot_dir;

  /// Reads (count/dump/stats) execute against Engine::PinReadView() —
  /// the last CLOSED epoch — instead of the live stores. This is what
  /// lets the server answer reads while a load/update is in flight on
  /// another session. The stdin session keeps live reads (false): with
  /// one client there is nothing to race, and `dump` right after `load`
  /// has always shown the not-yet-updated facts.
  bool snapshot_reads = false;

  /// Suppresses the wall-clock-bearing payloads (`update`'s epoch report
  /// line, `open`'s restore summary) so every response is a pure
  /// function of the session's request stream — the property the
  /// multi-client determinism test pins byte-for-byte.
  bool deterministic_replies = false;

  /// When set, write commands (load/update/save/open) serialize through
  /// this mutex: sessions are pinned to different worker threads, but
  /// the engine has a single-writer epoch pipeline. Readers never take
  /// it — that is the point of snapshot_reads.
  std::mutex* write_mutex = nullptr;

  /// Test-only: invoked inside the write critical section, before the
  /// engine runs the epoch. The concurrency test parks a write here and
  /// proves reads still complete — deterministic, no timing games.
  std::function<void()> write_stall_for_test;
};

/// Executes one protocol line against the engine, emitting the response
/// through `writer`. Comment stripping (see StripComment) happens here,
/// so every transport gets identical parsing. Thread contract: any
/// number of threads may call this concurrently for DIFFERENT sessions
/// when ctx->write_mutex is set and ctx->snapshot_reads is on;
/// single-threaded use needs neither.
ServeOutcome ExecuteServeLine(ServeContext* ctx, std::string line,
                              ResponseWriter* writer);

}  // namespace carac::net

#endif  // CARAC_NET_COMMANDS_H_
