#include "net/commands.h"

#include <memory>
#include <sstream>
#include <string_view>
#include <vector>

#include "analysis/loader.h"
#include "core/read_view.h"
#include "harness/table.h"
#include "storage/read_view.h"
#include "storage/symbol_table.h"
#include "util/timer.h"

namespace carac::net {

namespace {

bool FindRelation(const datalog::Program& program, const std::string& name,
                  datalog::PredicateId* out) {
  for (datalog::PredicateId id = 0; id < program.NumPredicates(); ++id) {
    if (program.PredicateName(id) == name) {
      *out = id;
      return true;
    }
  }
  return false;
}

/// Emits a multi-line report as one payload line per text line.
void EmitTextLines(const std::string& text, ResponseWriter* writer) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    writer->Payload(std::string_view(text).substr(start, end - start));
    start = end + 1;
  }
}

/// Locks the write mutex (when serving concurrently) and fires the
/// test-only stall hook inside the critical section.
std::unique_lock<std::mutex> EnterWriteSection(ServeContext* ctx) {
  std::unique_lock<std::mutex> lock;
  if (ctx->write_mutex != nullptr) {
    lock = std::unique_lock<std::mutex>(*ctx->write_mutex);
  }
  if (ctx->write_stall_for_test) ctx->write_stall_for_test();
  return lock;
}

}  // namespace

ServeOutcome ExecuteServeLine(ServeContext* ctx, std::string line,
                              ResponseWriter* writer) {
  core::Engine& engine = *ctx->engine;
  StripComment(&line);
  std::istringstream tokens(line);
  std::string command;
  if (!(tokens >> command)) return ServeOutcome::kSilent;

  // Zero-argument commands reject trailing junk: `update Edge` is a
  // user who thinks update takes a relation, not a no-op.
  std::string extra;
  if (command == "quit" || command == "update" || command == "save" ||
      command == "open" || command == "stats") {
    if (tokens >> extra) {
      writer->Error("serve: " + command + " takes no arguments (got \"" +
                    extra + "\")");
      return ServeOutcome::kError;
    }
  }

  if (command == "quit") return ServeOutcome::kQuit;

  if (command == "update") {
    core::EpochReport report;
    util::Timer timer;
    util::Status status;
    {
      std::unique_lock<std::mutex> lock = EnterWriteSection(ctx);
      status = engine.Update(&report);
    }
    const double seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      writer->Error("update failed: " + status.ToString());
      return ServeOutcome::kError;
    }
    // The epoch report names the GLOBAL epoch counter and the wall time,
    // neither of which a concurrent session can predict — deterministic
    // mode acknowledges with the bare terminator instead.
    if (!ctx->deterministic_replies) {
      writer->Payload(report.ToString() + " in " +
                      harness::FormatSeconds(seconds) + " s");
    }
    return ServeOutcome::kOk;
  }

  if (command == "stats") {
    // Self-tuning surface: what each indexed column is organized as,
    // what traffic the evaluators actually sent it, and which
    // migrations the adaptive policy performed to get here. Snapshot
    // reads serve the text frozen at the last closed epoch; the live
    // counters mutate during evaluation.
    if (ctx->snapshot_reads) {
      EmitTextLines(engine.PinReadView()->stats_text, writer);
    } else {
      EmitTextLines(engine.FormatStats(), writer);
    }
    return ServeOutcome::kOk;
  }

  if (command == "save") {
    util::Status status;
    {
      std::unique_lock<std::mutex> lock = EnterWriteSection(ctx);
      status = engine.Checkpoint();
    }
    if (!status.ok()) {
      writer->Error("save failed: " + status.ToString());
      return ServeOutcome::kError;
    }
    writer->Payload(
        "checkpoint saved (epoch " +
        std::to_string(ctx->program->db().epoch()) + ") to " +
        ctx->snapshot_dir);
    return ServeOutcome::kOk;
  }

  if (command == "open") {
    core::RestoreInfo info;
    util::Timer timer;
    util::Status status;
    {
      std::unique_lock<std::mutex> lock = EnterWriteSection(ctx);
      status = engine.Restore(&info);
    }
    const double seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      // Unlike input typos, a failed restore may leave the database
      // partially overwritten (OpenSnapshot installs sections as they
      // verify; replay may stop mid-log). Serving that state would be
      // lying — this is the one serve error that ends the session (and
      // in server mode, the server).
      writer->Error("open failed: " + status.ToString());
      return ServeOutcome::kFatal;
    }
    if (!ctx->deterministic_replies) {
      writer->Payload(
          std::string("restored ") +
          (info.snapshot_loaded ? "snapshot" : "no snapshot") +
          " (snapshot epoch " + std::to_string(info.snapshot_epoch) +
          ") + " + std::to_string(info.epochs_replayed) + " log epoch(s)" +
          (info.log_tail_discarded ? " (torn tail discarded)" : "") +
          " in " + harness::FormatSeconds(seconds) + " s");
    }
    return ServeOutcome::kOk;
  }

  if (command == "load" || command == "count" || command == "dump") {
    std::string rel_name;
    if (!(tokens >> rel_name)) {
      writer->Error("serve: " + command + " needs a relation name");
      return ServeOutcome::kError;
    }
    datalog::PredicateId rel = datalog::kInvalidPredicate;
    if (!FindRelation(*ctx->program, rel_name, &rel)) {
      writer->Error("serve: unknown relation: " + rel_name);
      return ServeOutcome::kError;
    }

    if (command == "load") {
      std::string path;
      if (!(tokens >> path)) {
        writer->Error("serve: load needs a csv path");
        return ServeOutcome::kError;
      }
      if (tokens >> extra) {
        writer->Error("serve: load takes one csv path (got \"" + extra +
                      "\")");
        return ServeOutcome::kError;
      }
      util::Status status;
      size_t total = 0;
      {
        // The whole load is a write: parsing the CSV interns symbols
        // into the live table, and the batch must reach the durability
        // log and the Derived store as one unit.
        std::unique_lock<std::mutex> lock = EnterWriteSection(ctx);
        // Through the engine, not straight into the DatabaseSet: the
        // durability log only sees batches that cross Engine::AddFacts.
        std::vector<storage::Tuple> facts;
        status = analysis::ReadFactsCsv(path, ctx->program, rel, &facts);
        if (status.ok()) status = engine.AddFacts(rel, facts);
        if (status.ok()) {
          total =
              ctx->program->db().Get(rel, storage::DbKind::kDerived).size();
        }
      }
      if (!status.ok()) {
        writer->Error(status.ToString());
        return ServeOutcome::kError;
      }
      writer->Payload("loaded " + path + " into " + rel_name + " (" +
                      std::to_string(total) + " facts total)");
      return ServeOutcome::kOk;
    }

    if (tokens >> extra) {
      // count/dump take exactly one relation name.
      writer->Error("serve: " + command + " takes one relation name (got \"" +
                    extra + "\")");
      return ServeOutcome::kError;
    }

    // The read path. Snapshot mode pins the published view (last closed
    // epoch) — never blocked by, and never torn by, an in-flight write
    // on another session. Live mode (stdin serve) pins the current row
    // count of the live store: same zero-copy streaming, and byte-
    // identical to the materializing Results() path it replaces,
    // including facts loaded but not yet absorbed by an update.
    std::shared_ptr<const core::ReadView> pinned;
    storage::RelationReadView rows;
    if (ctx->snapshot_reads) {
      pinned = engine.PinReadView();
      rows = pinned->relations[rel];
    } else {
      storage::Relation& live =
          ctx->program->db().Get(rel, storage::DbKind::kDerived);
      rows = live.PinView(static_cast<storage::RowId>(live.size()));
    }

    if (command == "count") {
      writer->Payload(rel_name + ": " + std::to_string(rows.NumRows()) +
                      " rows");
      return ServeOutcome::kOk;
    }

    // dump: stream the sorted rows. The only allocation proportional to
    // the relation is the RowId permutation — tuples are never copied.
    const storage::SymbolTable& live_symbols = ctx->program->db().symbols();
    std::string text;
    for (const storage::RowId row : rows.SortedRowIds()) {
      const storage::TupleView tuple = rows.View(row);
      text.clear();
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i > 0) text += '\t';
        const storage::Value value = tuple[i];
        if (pinned != nullptr) {
          text += pinned->DecodeValue(value);
        } else if (storage::SymbolTable::IsSymbol(value)) {
          text += live_symbols.Lookup(value);
        } else {
          text += std::to_string(value);
        }
      }
      writer->Payload(text);
    }
    return ServeOutcome::kOk;
  }

  writer->Error("serve: unknown command: " + command);
  return ServeOutcome::kError;
}

}  // namespace carac::net
