#include "core/engine.h"

#include <filesystem>
#include <map>
#include <string_view>
#include <system_error>

#include "datalog/rewrite.h"
#include "ir/lowering.h"
#include "optimizer/selectivity.h"
#include "optimizer/statistics.h"
#include "storage/symbol_table.h"

namespace carac::core {

Engine::Engine(datalog::Program* program, EngineConfig config)
    : program_(program), config_(std::move(config)) {
  ctx_ = std::make_unique<ir::ExecContext>(&program->db());
  ctx_->set_engine_style(config_.engine_style);
  // Symbols present at construction come from the program source (parse
  // or DSL); recovery re-parses that source, so only symbols interned
  // AFTER this point need to travel through the fact log.
  logged_symbols_ = program->db().symbols().size();
}

util::Status Engine::Prepare() {
  storage::DatabaseSet& db = program_->db();
  db.SetIndexingEnabled(config_.use_indexes);
  // Index-kind precedence, weakest first: the statistics-driven auto
  // policy, a concrete configured kind, then per-column program hints.
  // All of it lands before lowering declares the indexes, so every index
  // is built once with its final organization.
  if (config_.index_kind.has_value()) {
    db.SetDefaultIndexKind(*config_.index_kind);
  } else {
    const optimizer::AccessPathProfile profile =
        optimizer::ProfileAccessPaths(*program_);
    for (const auto& [key, access] : profile.columns) {
      const auto& [pred, column] = key;
      const storage::IndexKind kind = optimizer::ChooseIndexKind(
          access, db.Get(pred, storage::DbKind::kDerived).size(),
          program_->IsIdb(pred));
      if (kind != storage::IndexKind::kHash) {
        db.SetIndexKindOverride(pred, column, kind);
      }
    }
  }
  for (const datalog::IndexHint& hint : program_->index_hints()) {
    db.SetIndexKindOverride(hint.predicate, hint.column, hint.kind);
  }
  ctx_->set_probe_batch_window(config_.probe_batch_window);
  if (config_.eliminate_aliases) {
    datalog::EliminateAliases(program_);
  }
  CARAC_RETURN_IF_ERROR(ir::LowerProgram(program_, /*declare_indexes=*/true,
                                         &irp_, config_.range_pushdown));
  if (config_.aot_reorder) {
    ApplyAotPlan(config_.aot, program_->db(), &irp_);
  }
  if (config_.mode == EvalMode::kJit) {
    jit_ = std::make_unique<Jit>(config_.jit);
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<WorkerPool>(config_.num_threads);
    ctx_->set_worker_pool(pool_.get());
    ctx_->set_parallel_min_rows(config_.parallel_min_outer_rows);
  }
  driver_ = std::make_unique<FixpointDriver>(&irp_, ctx_.get(), jit_.get());
  if (config_.adaptive_indexes && config_.use_indexes) {
    adaptive_policy_ =
        std::make_unique<optimizer::AdaptiveIndexPolicy>(config_.adaptive);
  }
  prepared_ = true;
  // Baseline view: epoch 0, every relation pinned at watermark 0 (no
  // epoch has closed, so snapshot readers correctly see nothing yet).
  PublishReadView();
  return util::Status::Ok();
}

util::Status Engine::Run() {
  if (!prepared_) {
    return util::Status::FailedPrecondition("call Prepare() before Run()");
  }
  // Note on async JIT errors surfaced here and in Update(): pending
  // compilations are simply abandoned, as in the paper — "asynchronous
  // compilations may never be used if the interpreted subtrees finish
  // before compilation is ready".
  util::Status status = driver_->RunFull(&last_epoch_);
  evaluated_ = true;
  // Epoch close is a quiescent point (no cursors live): let the adaptive
  // policy digest this epoch's observed access mix and migrate index
  // organizations before anything probes again.
  if (adaptive_policy_ != nullptr && status.ok()) {
    adaptive_policy_->ObserveEpoch(&program_->db(), ctx_->profiler());
  }
  if (status.ok()) PublishReadView();
  // The epoch closed (AdvanceEpoch ran) even when an async JIT error is
  // being surfaced — evaluation itself kept interpreting — so the log
  // commit must not be skipped or the log would fall out of step with
  // the epoch counter. When both fail, the evaluation error is the
  // root cause and takes precedence.
  if (persistence_enabled() && !replaying_) {
    util::Status commit_status = CommitEpochToLog();
    if (status.ok()) status = commit_status;
  }
  return status;
}

util::Status Engine::AddFacts(datalog::PredicateId predicate,
                              const std::vector<storage::Tuple>& facts) {
  storage::DatabaseSet& db = program_->db();
  if (predicate >= db.NumRelations()) {
    return util::Status::InvalidArgument(
        "AddFacts: unknown predicate id " + std::to_string(predicate) +
        " (program declares " + std::to_string(db.NumRelations()) +
        " relations)");
  }
  const size_t arity = db.RelationArity(predicate);
  for (const storage::Tuple& fact : facts) {
    if (fact.size() != arity) {
      return util::Status::InvalidArgument(
          "AddFacts: tuple of arity " + std::to_string(fact.size()) +
          " for relation " + db.RelationName(predicate) + "/" +
          std::to_string(arity));
    }
  }
  // Log BEFORE inserting: if the append fails (unwritable directory,
  // disk full), nothing was applied and memory stays agreed with the
  // log — the documented all-or-nothing contract. The logged batch is
  // unsealed until the next epoch commits, so a crash in between
  // replays neither side.
  if (persistence_enabled() && !replaying_ && !facts.empty()) {
    CARAC_RETURN_IF_ERROR(LogBatch(predicate, facts));
  }
  // Pre-size arena and dedup table for the whole batch (serve-mode
  // bulk loads arrive here; without this they would re-pay growth and
  // rehash churn tuple by tuple).
  db.Reserve(predicate,
             db.Get(predicate, storage::DbKind::kDerived).size() +
                 facts.size());
  for (const storage::Tuple& fact : facts) {
    db.InsertFact(predicate, fact);
  }
  if (!facts.empty()) ++uncommitted_batches_;
  return util::Status::Ok();
}

util::Status Engine::Update(EpochReport* report) {
  if (!prepared_) {
    return util::Status::FailedPrecondition("call Prepare() before Update()");
  }
  // The first evaluation has no prior fixpoint to extend: run full.
  util::Status status = evaluated_ ? driver_->RunUpdateEpoch(&last_epoch_)
                                   : driver_->RunFull(&last_epoch_);
  evaluated_ = true;
  if (adaptive_policy_ != nullptr && status.ok()) {
    adaptive_policy_->ObserveEpoch(&program_->db(), ctx_->profiler());
  }
  if (status.ok()) PublishReadView();
  if (report != nullptr) *report = last_epoch_;
  if (persistence_enabled() && !replaying_) {
    util::Status commit_status = CommitEpochToLog();
    if (status.ok()) status = commit_status;
  }
  return status;
}

// ---- Durable state ----

std::string Engine::SnapshotPath() const {
  return config_.snapshot_dir + "/snapshot.bin";
}

std::string Engine::FactLogPath() const {
  return config_.snapshot_dir + "/factlog.bin";
}

util::Status Engine::EnsureLogOpen() {
  if (factlog_ != nullptr) return util::Status::Ok();
  std::error_code ec;
  std::filesystem::create_directories(config_.snapshot_dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create snapshot dir " +
                                  config_.snapshot_dir + ": " + ec.message());
  }
  uint64_t last_epoch = 0;
  CARAC_RETURN_IF_ERROR(
      storage::FactLog::OpenForAppend(FactLogPath(), &factlog_, &last_epoch));
  if (program_->db().epoch() < last_epoch) {
    // An engine behind the log (it skipped Restore) would re-use epoch
    // numbers the log already sealed; recovery skips duplicates, so the
    // acknowledged batches of this session would silently vanish.
    factlog_.reset();
    return util::Status::FailedPrecondition(
        "fact log " + FactLogPath() + " already holds epochs up to " +
        std::to_string(last_epoch) + " but this engine is at epoch " +
        std::to_string(program_->db().epoch()) +
        "; Restore() first (serve: `open`) so existing durable state is "
        "not silently dropped");
  }
  return util::Status::Ok();
}

util::Status Engine::LogBroken() const {
  return util::Status::FailedPrecondition(
      "fact log write previously failed: durability is suspended (the "
      "current epoch's durable record is incomplete). Checkpoint() "
      "(serve: `save`) captures full in-memory state and re-establishes "
      "a clean log.");
}

util::Status Engine::LogBatch(datalog::PredicateId predicate,
                              const std::vector<storage::Tuple>& facts) {
  if (log_broken_) return LogBroken();
  CARAC_RETURN_IF_ERROR(EnsureLogOpen());
  util::Status status;
  const storage::SymbolTable& symbols = program_->db().symbols();
  if (symbols.size() > logged_symbols_) {
    std::vector<std::string_view> fresh;
    fresh.reserve(symbols.size() - logged_symbols_);
    for (size_t i = logged_symbols_; i < symbols.size(); ++i) {
      fresh.push_back(symbols.Lookup(storage::kSymbolBase +
                                     static_cast<int64_t>(i)));
    }
    status = factlog_->AppendSymbols(logged_symbols_, fresh);
    if (status.ok()) logged_symbols_ = symbols.size();
  }
  if (status.ok()) {
    status = factlog_->AppendBatch(
        predicate, program_->db().RelationArity(predicate), facts);
  }
  if (!status.ok()) {
    // A failed write may have left partial record bytes behind — and
    // GOOD uncommitted records before them whose facts are already in
    // memory. Neither committing over the damage nor truncating it
    // away can keep the log agreed with memory, so durability is
    // suspended: the handle closes (any debris becomes an unsealed
    // tail that the next open truncates) and every later append/commit
    // refuses until a Checkpoint() re-baselines from memory. Recovery
    // meanwhile replays to the last committed epoch — stale, never
    // divergent.
    log_broken_ = true;
    factlog_.reset();
  }
  return status;
}

util::Status Engine::CommitEpochToLog() {
  if (log_broken_) return LogBroken();
  CARAC_RETURN_IF_ERROR(EnsureLogOpen());
  util::Status status = factlog_->Commit(program_->db().epoch());
  if (!status.ok()) {
    // Same discipline as LogBatch: the epoch that just closed is not
    // fully durable, so stop sealing anything further until a
    // checkpoint re-baselines.
    log_broken_ = true;
    factlog_.reset();
    return status;
  }
  uncommitted_batches_ = 0;
  ++epochs_since_checkpoint_;
  if (config_.checkpoint_every > 0 &&
      epochs_since_checkpoint_ >= config_.checkpoint_every) {
    return Checkpoint();
  }
  return util::Status::Ok();
}

util::Status Engine::Checkpoint() {
  if (!persistence_enabled()) {
    return util::Status::FailedPrecondition(
        "Checkpoint() requires EngineConfig::snapshot_dir");
  }
  std::error_code ec;
  std::filesystem::create_directories(config_.snapshot_dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create snapshot dir " +
                                  config_.snapshot_dir + ": " + ec.message());
  }
  CARAC_RETURN_IF_ERROR(program_->db().SaveSnapshot(SnapshotPath()));
  // The snapshot covers everything the log held: reset it. A crash
  // between the snapshot rename and this truncation is benign — replay
  // skips log epochs at or below the snapshot's epoch counter.
  factlog_.reset();
  std::filesystem::remove(FactLogPath(), ec);
  if (ec) {
    return util::Status::Internal("cannot reset fact log " + FactLogPath() +
                                  ": " + ec.message());
  }
  logged_symbols_ = program_->db().symbols().size();
  epochs_since_checkpoint_ = 0;
  // The snapshot captured the full in-memory state and the log is
  // fresh: durable and served state agree again.
  log_broken_ = false;
  uncommitted_batches_ = 0;
  return util::Status::Ok();
}

util::Status Engine::ApplyReplayedEpoch(
    const storage::FactLog::ReplayEpoch& epoch) {
  storage::SymbolTable& symbols = program_->db().symbols();
  for (const auto& [index, text] : epoch.symbols) {
    const int64_t expected =
        storage::kSymbolBase + static_cast<int64_t>(index);
    if (index < symbols.size()) {
      // Already present (snapshot, program source, or an earlier log
      // epoch): the id assignment must agree.
      if (symbols.Lookup(expected) != text) {
        return util::Status::Internal(
            "fact log replay: symbol id " + std::to_string(index) +
            " is \"" + symbols.Lookup(expected) +
            "\" in this database but \"" + text +
            "\" in the log (log from a different history?)");
      }
    } else if (index == symbols.size()) {
      if (symbols.Intern(text) != expected) {
        return util::Status::Internal(
            "fact log replay: symbol \"" + text +
            "\" did not intern to the logged id");
      }
    } else {
      return util::Status::Internal(
          "fact log replay: symbol record skips ids (log has index " +
          std::to_string(index) + ", database holds " +
          std::to_string(symbols.size()) + " symbols)");
    }
  }
  for (const storage::FactLog::ReplayBatch& batch : epoch.batches) {
    util::Status status = AddFacts(batch.relation, batch.facts);
    if (!status.ok()) {
      return util::Status::Internal(
          "fact log replay: batch for relation id " +
          std::to_string(batch.relation) + " rejected: " + status.message());
    }
  }
  CARAC_RETURN_IF_ERROR(Update());
  if (program_->db().epoch() != epoch.epoch) {
    return util::Status::Internal(
        "fact log replay: epoch counter " +
        std::to_string(program_->db().epoch()) +
        " after replaying the commit for epoch " +
        std::to_string(epoch.epoch) + " (log from a different history?)");
  }
  return util::Status::Ok();
}

util::Status Engine::Restore(RestoreInfo* info) {
  if (info != nullptr) *info = RestoreInfo{};
  if (!persistence_enabled()) {
    return util::Status::FailedPrecondition(
        "Restore() requires EngineConfig::snapshot_dir");
  }
  if (!prepared_) {
    return util::Status::FailedPrecondition(
        "call Prepare() before Restore()");
  }
  storage::DatabaseSet& db = program_->db();

  std::error_code ec;
  const bool have_snapshot = std::filesystem::exists(SnapshotPath(), ec);
  if (!have_snapshot && uncommitted_batches_ > 0) {
    // Without a snapshot there is nothing to rewind the in-memory state
    // to: truncating the unsealed records of batches this engine still
    // holds would make later commits durably claim epochs that lack
    // them — silent divergence. Refuse BEFORE touching the append
    // handle, so the engine (and the records) continue exactly as if
    // Restore had not been called.
    return util::Status::FailedPrecondition(
        "Restore(): this engine holds " +
        std::to_string(uncommitted_batches_) +
        " uncommitted batch(es) and no snapshot exists to rewind to; "
        "Checkpoint() first, or restore from a fresh engine");
  }

  // Drop the live append handle. Closing flushes any buffered records
  // appended since the last commit onto disk as an UNSEALED tail, which
  // the replay below discards and truncates — matching the in-memory
  // state, since the snapshot reload drops those uncommitted facts too
  // (the guard above covers the no-snapshot case). Keeping the handle
  // would let a later Commit seal buffered batches into an epoch whose
  // facts this engine no longer holds.
  factlog_.reset();
  if (have_snapshot) {
    CARAC_RETURN_IF_ERROR(db.OpenSnapshot(SnapshotPath()));
    evaluated_ = db.epoch() > 0;
    if (info != nullptr) {
      info->snapshot_loaded = true;
      info->snapshot_epoch = db.epoch();
    }
  }

  if (std::filesystem::exists(FactLogPath(), ec)) {
    storage::FactLog::ReplayResult replay;
    CARAC_RETURN_IF_ERROR(storage::FactLog::Replay(FactLogPath(), &replay));
    replaying_ = true;
    util::Status status;
    uint64_t applied = 0;
    for (const storage::FactLog::ReplayEpoch& epoch : replay.epochs) {
      // Epochs the snapshot already covers (a crash landed between the
      // snapshot rename and the log reset) are skipped, not re-applied.
      if (epoch.epoch <= db.epoch()) continue;
      status = ApplyReplayedEpoch(epoch);
      if (!status.ok()) break;
      ++applied;
      if (info != nullptr) ++info->epochs_replayed;
    }
    replaying_ = false;
    CARAC_RETURN_IF_ERROR(status);
    if (replay.torn_tail) {
      // Drop the crash debris so future appends extend a clean log.
      std::filesystem::resize_file(FactLogPath(), replay.committed_bytes,
                                   ec);
      if (ec) {
        return util::Status::Internal("cannot truncate torn fact log " +
                                      FactLogPath() + ": " + ec.message());
      }
      if (info != nullptr) info->log_tail_discarded = true;
    }
    // Only freshly applied epochs advance the auto-checkpoint clock;
    // epochs the snapshot already covered are not new work.
    epochs_since_checkpoint_ = applied;
  }
  logged_symbols_ = db.symbols().size();
  // Memory was just re-synced FROM the durable state, so any prior
  // append failure is moot.
  log_broken_ = false;
  uncommitted_batches_ = 0;
  // OpenSnapshot replaced the symbol table wholesale (same size does not
  // imply same contents), so the pinned decode table must be rebuilt.
  symbol_cache_.reset();
  PublishReadView();
  return util::Status::Ok();
}

std::vector<storage::Tuple> Engine::Results(
    datalog::PredicateId predicate) const {
  return program_->db()
      .Get(predicate, storage::DbKind::kDerived)
      .SortedRows();
}

size_t Engine::ResultSize(datalog::PredicateId predicate) const {
  return program_->db().Get(predicate, storage::DbKind::kDerived).size();
}

// ---- Epoch-snapshot reads ----

std::shared_ptr<const ReadView> Engine::PinReadView() const {
  std::lock_guard<std::mutex> lock(view_mutex_);
  return read_view_;
}

std::string Engine::FormatStats() const {
  // Byte-identical to what `carac serve`'s stats command has always
  // printed — cli_test pins this format, and the published ReadView
  // freezes the same text per epoch.
  std::string out;
  const storage::DatabaseSet& db = program_->db();
  for (datalog::PredicateId id = 0; id < program_->NumPredicates(); ++id) {
    const storage::Relation& rel = db.Get(id, storage::DbKind::kDerived);
    for (size_t i = 0; i < rel.NumIndexes(); ++i) {
      const storage::IndexBase& index = rel.IndexAt(i);
      out += "index " + program_->PredicateName(id) + " col" +
             std::to_string(index.column()) + " " +
             storage::IndexKindName(index.kind()) + "\n";
    }
  }
  for (const auto& [key, counters] : ctx_->profiler().counters()) {
    out += "probes " + program_->PredicateName(key.first) + " col" +
           std::to_string(key.second) +
           " points=" + std::to_string(counters.point_probes) +
           " hits=" + std::to_string(counters.point_hits) +
           " ranges=" + std::to_string(counters.range_probes) +
           " batch-windows=" + std::to_string(counters.batch_windows) + "\n";
  }
  // Range-pushdown decisions: which (relation, column) pairs lowering
  // annotated with index-range bounds. Emitted only when at least one
  // atom is annotated, so programs without comparison builtins keep the
  // exact pre-pushdown report (cli_test byte-pins that text).
  std::map<std::pair<datalog::PredicateId, int32_t>, size_t> pushdown_atoms;
  for (const ir::IROp* op : irp_.by_id) {
    if (op == nullptr) continue;
    for (const ir::AtomSpec& atom : op->atoms) {
      if (atom.has_range()) {
        pushdown_atoms[{atom.predicate, atom.range_col}]++;
      }
    }
  }
  for (const auto& [key, count] : pushdown_atoms) {
    out += "pushdown " + program_->PredicateName(key.first) + " col" +
           std::to_string(key.second) + " atoms=" + std::to_string(count) +
           "\n";
  }
  if (adaptive_policy_ == nullptr) {
    out += "adaptive off\n";
  } else {
    for (const optimizer::RekindEvent& event : adaptive_policy_->events()) {
      out += "rekind epoch=" + std::to_string(event.epoch) + " " +
             program_->PredicateName(event.relation) + " col" +
             std::to_string(event.column) + " " +
             storage::IndexKindName(event.from) + "->" +
             storage::IndexKindName(event.to) + "\n";
    }
    out += "rekind-events " +
           std::to_string(adaptive_policy_->events().size()) + "\n";
  }
  return out;
}

void Engine::PublishReadView() {
  storage::DatabaseSet& db = program_->db();
  auto view = std::make_shared<ReadView>();
  view->epoch = db.epoch();
  const size_t num_relations = db.NumRelations();
  view->relations.reserve(num_relations);
  for (storage::RelationId id = 0; id < num_relations; ++id) {
    view->relations.push_back(
        db.Get(id, storage::DbKind::kDerived).PinViewAtWatermark());
  }
  // Interning is append-only between Restores, so a size match means the
  // cached pinned table is still exact and can be shared across views.
  const storage::SymbolTable& symbols = db.symbols();
  if (symbol_cache_ == nullptr || symbol_cache_->size() != symbols.size()) {
    symbol_cache_ =
        std::make_shared<const std::vector<std::string>>(symbols.entries());
  }
  view->symbols = symbol_cache_;
  view->stats_text = FormatStats();
  std::lock_guard<std::mutex> lock(view_mutex_);
  read_view_ = std::move(view);
}

}  // namespace carac::core
