#include "core/engine.h"

#include "datalog/rewrite.h"
#include "ir/lowering.h"

namespace carac::core {

Engine::Engine(datalog::Program* program, EngineConfig config)
    : program_(program), config_(config) {
  ctx_ = std::make_unique<ir::ExecContext>(&program->db());
  ctx_->set_engine_style(config_.engine_style);
}

util::Status Engine::Prepare() {
  program_->db().SetIndexingEnabled(config_.use_indexes);
  program_->db().SetDefaultIndexKind(config_.index_kind);
  if (config_.eliminate_aliases) {
    datalog::EliminateAliases(program_);
  }
  CARAC_RETURN_IF_ERROR(
      ir::LowerProgram(program_, /*declare_indexes=*/true, &irp_));
  if (config_.aot_reorder) {
    ApplyAotPlan(config_.aot, program_->db(), &irp_);
  }
  if (config_.mode == EvalMode::kJit) {
    jit_ = std::make_unique<Jit>(config_.jit);
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<WorkerPool>(config_.num_threads);
    ctx_->set_worker_pool(pool_.get());
    ctx_->set_parallel_min_rows(config_.parallel_min_outer_rows);
  }
  prepared_ = true;
  return util::Status::Ok();
}

util::Status Engine::Run() {
  if (!prepared_) {
    return util::Status::FailedPrecondition("call Prepare() before Run()");
  }
  ir::Interpreter interp(ctx_.get(), jit_.get());
  interp.Execute(*irp_.root);
  if (jit_ != nullptr) {
    // Surface asynchronous compilation failures observed so far
    // (evaluation itself is unaffected — it keeps interpreting). Pending
    // compilations are simply abandoned, as in the paper: "asynchronous
    // compilations may never be used if the interpreted subtrees finish
    // before compilation is ready".
    util::Status status = jit_->manager().first_error();
    if (!status.ok()) return status;
  }
  return util::Status::Ok();
}

std::vector<storage::Tuple> Engine::Results(
    datalog::PredicateId predicate) const {
  return program_->db()
      .Get(predicate, storage::DbKind::kDerived)
      .SortedRows();
}

size_t Engine::ResultSize(datalog::PredicateId predicate) const {
  return program_->db().Get(predicate, storage::DbKind::kDerived).size();
}

}  // namespace carac::core
