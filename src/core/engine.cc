#include "core/engine.h"

#include "datalog/rewrite.h"
#include "ir/lowering.h"

namespace carac::core {

Engine::Engine(datalog::Program* program, EngineConfig config)
    : program_(program), config_(config) {
  ctx_ = std::make_unique<ir::ExecContext>(&program->db());
  ctx_->set_engine_style(config_.engine_style);
}

util::Status Engine::Prepare() {
  program_->db().SetIndexingEnabled(config_.use_indexes);
  program_->db().SetDefaultIndexKind(config_.index_kind);
  if (config_.eliminate_aliases) {
    datalog::EliminateAliases(program_);
  }
  CARAC_RETURN_IF_ERROR(
      ir::LowerProgram(program_, /*declare_indexes=*/true, &irp_));
  if (config_.aot_reorder) {
    ApplyAotPlan(config_.aot, program_->db(), &irp_);
  }
  if (config_.mode == EvalMode::kJit) {
    jit_ = std::make_unique<Jit>(config_.jit);
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<WorkerPool>(config_.num_threads);
    ctx_->set_worker_pool(pool_.get());
    ctx_->set_parallel_min_rows(config_.parallel_min_outer_rows);
  }
  driver_ = std::make_unique<FixpointDriver>(&irp_, ctx_.get(), jit_.get());
  prepared_ = true;
  return util::Status::Ok();
}

util::Status Engine::Run() {
  if (!prepared_) {
    return util::Status::FailedPrecondition("call Prepare() before Run()");
  }
  // Note on async JIT errors surfaced here and in Update(): pending
  // compilations are simply abandoned, as in the paper — "asynchronous
  // compilations may never be used if the interpreted subtrees finish
  // before compilation is ready".
  util::Status status = driver_->RunFull(&last_epoch_);
  evaluated_ = true;
  return status;
}

util::Status Engine::AddFacts(datalog::PredicateId predicate,
                              const std::vector<storage::Tuple>& facts) {
  storage::DatabaseSet& db = program_->db();
  if (predicate >= db.NumRelations()) {
    return util::Status::InvalidArgument(
        "AddFacts: unknown predicate id " + std::to_string(predicate) +
        " (program declares " + std::to_string(db.NumRelations()) +
        " relations)");
  }
  const size_t arity = db.RelationArity(predicate);
  for (const storage::Tuple& fact : facts) {
    if (fact.size() != arity) {
      return util::Status::InvalidArgument(
          "AddFacts: tuple of arity " + std::to_string(fact.size()) +
          " for relation " + db.RelationName(predicate) + "/" +
          std::to_string(arity));
    }
    db.InsertFact(predicate, fact);
  }
  return util::Status::Ok();
}

util::Status Engine::Update(EpochReport* report) {
  if (!prepared_) {
    return util::Status::FailedPrecondition("call Prepare() before Update()");
  }
  // The first evaluation has no prior fixpoint to extend: run full.
  util::Status status = evaluated_ ? driver_->RunUpdateEpoch(&last_epoch_)
                                   : driver_->RunFull(&last_epoch_);
  evaluated_ = true;
  if (report != nullptr) *report = last_epoch_;
  return status;
}

std::vector<storage::Tuple> Engine::Results(
    datalog::PredicateId predicate) const {
  return program_->db()
      .Get(predicate, storage::DbKind::kDerived)
      .SortedRows();
}

size_t Engine::ResultSize(datalog::PredicateId predicate) const {
  return program_->db().Get(predicate, storage::DbKind::kDerived).size();
}

}  // namespace carac::core
