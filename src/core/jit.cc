#include "core/jit.h"

#include <utility>

namespace carac::core {

const char* GranularityName(Granularity g) {
  switch (g) {
    case Granularity::kProgram:
      return "program";
    case Granularity::kDoWhile:
      return "dowhile";
    case Granularity::kUnionAll:
      return "unionall";
    case Granularity::kUnion:
      return "union";
    case Granularity::kSpj:
      return "spj";
  }
  return "?";
}

Jit::Jit(const JitConfig& config)
    : config_(config), backend_(backends::MakeBackend(config.backend)),
      manager_(std::make_unique<CompileManager>(backend_.get())),
      freshness_(config.freshness_threshold) {}

bool Jit::AtGranularity(const ir::IROp& op) const {
  switch (op.kind) {
    case ir::OpKind::kProgram:
      return config_.granularity == Granularity::kProgram;
    case ir::OpKind::kDoWhile:
      return config_.granularity == Granularity::kDoWhile;
    case ir::OpKind::kUnionAll:
      return config_.granularity == Granularity::kUnionAll;
    case ir::OpKind::kUnion:
      return config_.granularity == Granularity::kUnion;
    case ir::OpKind::kSpj:
    case ir::OpKind::kAggregate:
      return config_.granularity == Granularity::kSpj;
    case ir::OpKind::kSequence:
    case ir::OpKind::kSwapClear:
      return false;
  }
  return false;
}

backends::CompileRequest Jit::MakeRequest(const ir::IROp& op,
                                          const ir::ExecContext& ctx) const {
  backends::CompileRequest request;
  request.subtree = op.Clone();
  request.stats = optimizer::StatsSnapshot::Capture(ctx.db());
  request.join_config = config_.join_config;
  request.mode = config_.mode;
  request.reorder = config_.reorder;
  return request;
}

bool Jit::MaybeRunCompiled(ir::IROp& op, ir::ExecContext& ctx,
                           ir::Interpreter& interp) {
  if (!AtGranularity(op)) return false;

  backends::CompiledUnit* unit = manager_->GetReady(op.node_id);
  if (unit != nullptr) {
    // Revisit: recompile only when the freshness test fails (§V-B2).
    const optimizer::StatsSnapshot now =
        optimizer::StatsSnapshot::Capture(ctx.db());
    if (freshness_.IsFresh(op.node_id, op, now)) {
      ctx.stats().freshness_skips++;
    } else if (!manager_->IsPending(op.node_id)) {
      ctx.stats().compilations++;
      backends::CompileRequest request = MakeRequest(op, ctx);
      freshness_.Record(op.node_id, op, request.stats);
      if (config_.async) {
        // Kick off the recompile and run the stale (still correct) unit.
        manager_->CompileAsync(op.node_id, std::move(request));
      } else {
        manager_->Invalidate(op.node_id);
        manager_->CompileSync(op.node_id, std::move(request));
        unit = manager_->GetReady(op.node_id);
        if (unit == nullptr) return false;  // Compile failed: interpret.
      }
    }
    ctx.stats().compiled_invocations++;
    unit->Run(ctx, interp, op);
    return true;
  }

  if (manager_->IsPending(op.node_id)) {
    // Still compiling on the other thread: keep interpreting (§V-B2 —
    // the interpreter continues making progress).
    return false;
  }

  ctx.stats().compilations++;
  backends::CompileRequest request = MakeRequest(op, ctx);
  freshness_.Record(op.node_id, op, request.stats);
  if (config_.async) {
    manager_->CompileAsync(op.node_id, std::move(request));
    return false;  // Interpret this visit; switch once ready.
  }
  if (!manager_->CompileSync(op.node_id, std::move(request)).ok()) {
    return false;  // Compile failed (e.g. no compiler): interpret.
  }
  unit = manager_->GetReady(op.node_id);
  if (unit == nullptr) return false;
  ctx.stats().compiled_invocations++;
  unit->Run(ctx, interp, op);
  return true;
}

void Jit::BeforeSubquery(ir::IROp& /*op*/, ir::ExecContext& /*ctx*/) {
  // Reordering is applied uniformly through compiled units (the
  // IRGenerator unit rewrites the live tree), so no extra work is needed
  // at subquery entry. The hook remains a safe point for extensions.
}

void Jit::Deoptimize(uint32_t node_id) {
  manager_->Invalidate(node_id);
  freshness_.Forget(node_id);
}

}  // namespace carac::core
