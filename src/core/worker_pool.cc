#include "core/worker_pool.h"

#include "util/status.h"

namespace carac::core {

WorkerPool::WorkerPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  threads_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Run(int shards, const std::function<void(int)>& fn) {
  CARAC_CHECK(shards >= 1 && shards <= num_threads_);
  if (shards == 1 || threads_.empty()) {
    for (int i = 0; i < shards; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_shards_ = shards;
    active_ = shards - 1;  // Shard 0 runs on the calling thread.
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  job_ = nullptr;
}

void WorkerPool::WorkerLoop(int worker_index) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      // Jobs narrower than the pool leave the high-index workers idle;
      // they must not touch the completion count.
      if (worker_index >= job_shards_) continue;
      job = job_;
    }
    (*job)(worker_index);
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      all_done = (--active_ == 0);
    }
    if (all_done) done_cv_.notify_one();
  }
}

}  // namespace carac::core
