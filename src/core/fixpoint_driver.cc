#include "core/fixpoint_driver.h"

#include <algorithm>
#include <vector>

#include "ir/interpreter.h"

namespace carac::core {

std::string EpochReport::ToString() const {
  std::string out;
  out += "epoch=" + std::to_string(epoch);
  out += full ? " full" : " incremental";
  out += " seeded=" + std::to_string(seeded_rows);
  out += " strata[inc=" + std::to_string(strata_incremental);
  out += " recomputed=" + std::to_string(strata_recomputed);
  out += " skipped=" + std::to_string(strata_skipped) + "]";
  out += " " + stats.ToString();
  return out;
}

util::Status FixpointDriver::JitError() const {
  if (jit_ == nullptr) return util::Status::Ok();
  return jit_->manager().first_error();
}

util::Status FixpointDriver::RunFull(EpochReport* report) {
  const ir::ExecStats before = ctx_->stats();
  storage::DatabaseSet& db = ctx_->db();
  if (db.epoch() > 0) {
    // A re-entered full run is FROM-SCRATCH evaluation, not a delta
    // epoch: derived state may be stale w.r.t. facts appended since the
    // last epoch boundary (negation and aggregates are non-monotone, so
    // merely re-running the rules over the surviving Derived stores
    // could keep retracted conclusions alive). Reset every IDB relation
    // to its EDB facts and let the naive pass re-derive it.
    for (const ir::StratumPlan& plan : irp_->strata) {
      for (datalog::PredicateId p : plan.predicates) db.ResetToEdbFacts(p);
    }
  }
  ir::Interpreter interp(ctx_, jit_);
  interp.Execute(*irp_->root);
  db.AdvanceEpoch();
  if (report != nullptr) {
    *report = EpochReport{};
    report->epoch = db.epoch();
    report->full = true;
    report->stats = ir::ExecStats::Delta(ctx_->stats(), before);
  }
  return JitError();
}

util::Status FixpointDriver::RunUpdateEpoch(EpochReport* report) {
  const ir::ExecStats before = ctx_->stats();
  storage::DatabaseSet& db = ctx_->db();
  ir::Interpreter interp(ctx_, jit_);

  EpochReport local;
  // Per relation: did it gain facts this epoch (including facts derived
  // by an earlier stratum of this same epoch), and may it have LOST
  // facts (its stratum was recomputed)? Retraction taints downstream
  // strata: monotone delta propagation cannot un-derive.
  std::vector<char> changed(db.NumRelations(), 0);
  std::vector<char> retracted(db.NumRelations(), 0);
  for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
    changed[id] = db.ChangedSinceWatermark(id) ? 1 : 0;
  }

  for (ir::StratumPlan& plan : irp_->strata) {
    bool needs_recompute = false;
    for (datalog::PredicateId p : plan.body_inputs) {
      if (retracted[p]) needs_recompute = true;
    }
    for (datalog::PredicateId p : plan.recompute_triggers) {
      if (changed[p]) needs_recompute = true;
    }
    if (needs_recompute) {
      for (datalog::PredicateId p : plan.predicates) db.ResetToEdbFacts(p);
      interp.Execute(*plan.full);
      local.strata_recomputed++;
      for (datalog::PredicateId p : plan.predicates) {
        changed[p] = 1;
        retracted[p] = 1;
      }
      continue;
    }

    bool any_changed = false;
    for (datalog::PredicateId p : plan.body_inputs) {
      if (changed[p]) any_changed = true;
    }
    for (datalog::PredicateId p : plan.predicates) {
      if (changed[p]) any_changed = true;
    }
    if (!any_changed) {
      local.strata_skipped++;
      continue;
    }

    // Incremental pass: seed DeltaKnown of everything the stratum reads
    // or defines with the Derived rows past its watermark (clearing any
    // residue a previous evaluation left in the delta stores), then run
    // the delta loop. Unchanged relations seed zero rows for O(1).
    for (datalog::PredicateId p : plan.predicates) {
      local.seeded_rows += db.SeedDeltaFromWatermark(p);
    }
    for (datalog::PredicateId p : plan.body_inputs) {
      const bool own =
          std::find(plan.predicates.begin(), plan.predicates.end(), p) !=
          plan.predicates.end();
      if (!own) local.seeded_rows += db.SeedDeltaFromWatermark(p);
    }
    interp.Execute(*plan.update);
    local.strata_incremental++;
    for (datalog::PredicateId p : plan.predicates) {
      if (db.ChangedSinceWatermark(p)) changed[p] = 1;
    }
  }

  db.AdvanceEpoch();
  local.epoch = db.epoch();
  local.full = false;
  local.stats = ir::ExecStats::Delta(ctx_->stats(), before);
  if (report != nullptr) *report = local;
  return JitError();
}

}  // namespace carac::core
