#ifndef CARAC_CORE_AOT_PLANNER_H_
#define CARAC_CORE_AOT_PLANNER_H_

#include "ir/irop.h"
#include "optimizer/join_order.h"
#include "storage/database.h"

namespace carac::core {

/// Ahead-of-time ("macro", §VI-C) planning: join orders are fixed before
/// execution begins, using whatever is available at that stage —
///   * facts+rules: the initial EDB cardinalities plus the selectivity
///     heuristic (the paper's "Macro Facts+rules"), or
///   * rules only: the selectivity heuristic alone ("Macro Rules").
/// The cost of this pass is an offline cost: benches exclude it from query
/// execution time, exactly as the paper does. Because the engine's online
/// reordering (Timsort-like greedy) benefits from presorted input, AOT
/// planning composes with the online IRGenerator configurations.
struct AotPlan {
  /// Order by initial fact cardinalities (true) or rules only (false).
  bool use_fact_cardinalities = true;
  optimizer::JoinOrderConfig join_config;
};

/// Reorders every subquery of `irp` in place; returns the number of
/// subqueries whose order changed.
int ApplyAotPlan(const AotPlan& plan, const storage::DatabaseSet& db,
                 ir::IRProgram* irp);

}  // namespace carac::core

#endif  // CARAC_CORE_AOT_PLANNER_H_
