#ifndef CARAC_CORE_COMPILE_MANAGER_H_
#define CARAC_CORE_COMPILE_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "backends/backend.h"
#include "util/status.h"

namespace carac::core {

/// Owns compiled units keyed by IR node id and runs asynchronous
/// compilations on a dedicated compiler thread (§V-B2): the evaluator
/// enqueues a request and keeps interpreting; at each safe point it polls
/// GetReady() and switches to the compiled code once available.
class CompileManager {
 public:
  explicit CompileManager(backends::Backend* backend) : backend_(backend) {}
  CompileManager(const CompileManager&) = delete;
  CompileManager& operator=(const CompileManager&) = delete;
  ~CompileManager();

  /// Compiles on the calling thread ("blocking" mode); the unit is stored
  /// and also pointed to by GetReady() afterwards.
  util::Status CompileSync(uint32_t node_id,
                           backends::CompileRequest request);

  /// Enqueues a compilation on the compiler thread; no-op when the node is
  /// already pending. Returns immediately.
  void CompileAsync(uint32_t node_id, backends::CompileRequest request);

  /// The node's compiled unit, or nullptr if absent / still compiling.
  backends::CompiledUnit* GetReady(uint32_t node_id);

  bool IsPending(uint32_t node_id);

  /// Drops a node's unit (deoptimization / recompilation).
  void Invalidate(uint32_t node_id);

  /// Blocks until the queue is drained (tests and shutdown).
  void WaitIdle();

  /// First compilation failure observed, if any (async failures would
  /// otherwise be silent — evaluation just keeps interpreting).
  util::Status first_error();

  size_t compiles_completed();

 private:
  struct Job {
    uint32_t node_id;
    backends::CompileRequest request;
  };

  void EnsureWorker();
  void WorkerLoop();
  void StoreResult(uint32_t node_id, util::Status status,
                   std::unique_ptr<backends::CompiledUnit> unit);

  backends::Backend* backend_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::unordered_set<uint32_t> pending_;
  std::unordered_map<uint32_t, std::unique_ptr<backends::CompiledUnit>>
      ready_;
  /// Replaced/invalidated units are retired, not destroyed: the evaluator
  /// may still be inside a stale unit's Run() when its asynchronous
  /// replacement lands. Bounded by the number of compilations.
  std::vector<std::unique_ptr<backends::CompiledUnit>> retired_;
  util::Status first_error_;
  size_t completed_ = 0;
  bool worker_busy_ = false;
  bool shutdown_ = false;
  std::thread worker_;
};

}  // namespace carac::core

#endif  // CARAC_CORE_COMPILE_MANAGER_H_
