#ifndef CARAC_CORE_READ_VIEW_H_
#define CARAC_CORE_READ_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/read_view.h"
#include "storage/symbol_table.h"

namespace carac::core {

/// An immutable snapshot of the engine's queryable state, pinned to the
/// last CLOSED epoch. The serving layer executes reads (count, dump,
/// stats) against one of these instead of the live database, so a read
/// never blocks on — and is never torn by — an in-flight load/update:
///
///   - `relations[p]` is a watermark-bounded cursor over predicate p's
///     Derived store (storage::RelationReadView). The watermark at epoch
///     close equals the row count, so the view covers exactly the facts
///     the closed epoch derived; facts appended since sit above the
///     bound and stay invisible until the writer publishes the next
///     view.
///   - `symbols` pins the interned-string table as of the same epoch.
///     Every symbol id a pinned row can contain was interned before the
///     epoch closed, so decode never chases the live (growing) table.
///   - `stats_text` is the `stats` report formatted at publish time —
///     index organizations, probe counters and re-kind events as of the
///     epoch boundary. Counters mutate during evaluation, so snapshot
///     reads serve the frozen text rather than racing the live ones.
///
/// Views are published by the single writer under Engine's view mutex
/// and handed out as shared_ptr<const ReadView>; a reader keeps its view
/// alive for as long as a streamed response needs it, regardless of how
/// many epochs close meanwhile (the storage layer retires — never
/// mutates — arena buffers that pinned views still reference).
struct ReadView {
  /// DatabaseSet epoch counter when the view was published (0 = no
  /// evaluation has closed yet; all relation views are empty).
  uint64_t epoch = 0;

  /// Indexed by datalog::PredicateId; one pinned cursor per relation.
  std::vector<storage::RelationReadView> relations;

  /// Interned symbols in id order (symbol i = kSymbolBase + i), pinned.
  /// Shared across consecutive views when no new symbol was interned.
  std::shared_ptr<const std::vector<std::string>> symbols;

  /// The `stats` command's full response as of this epoch.
  std::string stats_text;

  /// Decodes a tuple value: the pinned symbol text for symbol ids,
  /// else the integer itself in decimal.
  std::string DecodeValue(storage::Value value) const {
    if (storage::SymbolTable::IsSymbol(value)) {
      return (*symbols)[static_cast<size_t>(value - storage::kSymbolBase)];
    }
    return std::to_string(value);
  }
};

}  // namespace carac::core

#endif  // CARAC_CORE_READ_VIEW_H_
