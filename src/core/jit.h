#ifndef CARAC_CORE_JIT_H_
#define CARAC_CORE_JIT_H_

#include <memory>

#include "backends/backend.h"
#include "core/compile_manager.h"
#include "ir/interpreter.h"
#include "optimizer/freshness.h"
#include "optimizer/join_order.h"

namespace carac::core {

/// Compilation granularity (§V-B2): at which level of the IR tree the JIT
/// compiles and re-optimizes. Higher levels compile rarely over large
/// subtrees with staler statistics; lower levels compile often over small
/// subtrees with the freshest statistics.
enum class Granularity : uint8_t {
  kProgram,   // Once per program.
  kDoWhile,   // Once per stratum loop.
  kUnionAll,  // Per relation, per iteration ("UnionOp*").
  kUnion,     // Per rule definition, per iteration.
  kSpj,       // Per n-way join ("sigma-pi-join").
};

const char* GranularityName(Granularity g);

/// JIT configuration — the paper's user-facing switchboard: backend,
/// granularity, blocking vs async compilation, full vs snippet.
struct JitConfig {
  backends::BackendKind backend = backends::BackendKind::kLambda;
  Granularity granularity = Granularity::kUnion;
  bool async = false;
  backends::CompileMode mode = backends::CompileMode::kFull;
  bool reorder = true;
  optimizer::JoinOrderConfig join_config;
  /// Relative-cardinality-shift threshold for the freshness test.
  double freshness_threshold = 0.10;
};

/// The JIT driver. Evaluation starts in the interpreter; every node
/// boundary is a safe point where the driver may (a) run an existing
/// compiled unit, (b) kick off compilation — blocking on it or continuing
/// interpretation while it runs on the compiler thread — or (c) skip
/// recompilation because the freshness test passes.
class Jit : public ir::JitController {
 public:
  explicit Jit(const JitConfig& config);
  ~Jit() override = default;

  bool MaybeRunCompiled(ir::IROp& op, ir::ExecContext& ctx,
                        ir::Interpreter& interp) override;
  void BeforeSubquery(ir::IROp& op, ir::ExecContext& ctx) override;

  /// Explicit deoptimization: drops the node's compiled unit so execution
  /// reverts to interpretation until the next (re)compilation.
  void Deoptimize(uint32_t node_id);

  CompileManager& manager() { return *manager_; }
  backends::Backend& backend() { return *backend_; }
  const JitConfig& config() const { return config_; }

 private:
  bool AtGranularity(const ir::IROp& op) const;
  backends::CompileRequest MakeRequest(const ir::IROp& op,
                                       const ir::ExecContext& ctx) const;

  JitConfig config_;
  std::unique_ptr<backends::Backend> backend_;
  std::unique_ptr<CompileManager> manager_;
  optimizer::FreshnessTracker freshness_;
};

}  // namespace carac::core

#endif  // CARAC_CORE_JIT_H_
