#ifndef CARAC_CORE_WORKER_POOL_H_
#define CARAC_CORE_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace carac::core {

/// A persistent fork-join pool for parallel evaluation
/// (EngineConfig::num_threads). Run(shards, fn) invokes fn(shard) for
/// every shard in [0, shards): the calling thread executes shard 0 while
/// the pool threads execute the rest, and Run returns only after every
/// shard finished. Threads are spawned once and parked between jobs, so
/// the per-subquery dispatch cost is a lock/notify pair, not thread
/// creation.
///
/// The pool runs one job at a time — the evaluator is single-issue
/// (rules execute in program order) — so Run must not be called
/// concurrently or reentrantly.
class WorkerPool {
 public:
  /// Spawns `num_threads - 1` worker threads (the caller is the Nth).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(0) .. fn(shards - 1) across the pool and the calling thread;
  /// blocks until all have returned. Requires 1 <= shards <= num_threads().
  void Run(int shards, const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int worker_index);

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Workers wait here for a new job.
  std::condition_variable done_cv_;  ///< Run waits here for completion.
  const std::function<void(int)>* job_ = nullptr;
  int job_shards_ = 0;
  uint64_t generation_ = 0;
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace carac::core

#endif  // CARAC_CORE_WORKER_POOL_H_
