#include "core/compile_manager.h"

#include <utility>

namespace carac::core {

CompileManager::~CompileManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

util::Status CompileManager::CompileSync(uint32_t node_id,
                                         backends::CompileRequest request) {
  std::unique_ptr<backends::CompiledUnit> unit;
  util::Status status = backend_->Compile(std::move(request), &unit);
  StoreResult(node_id, status, std::move(unit));
  return status;
}

void CompileManager::CompileAsync(uint32_t node_id,
                                  backends::CompileRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.count(node_id) > 0) return;
    pending_.insert(node_id);
    queue_.push_back(Job{node_id, std::move(request)});
  }
  EnsureWorker();
  cv_.notify_all();
}

backends::CompiledUnit* CompileManager::GetReady(uint32_t node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ready_.find(node_id);
  return it == ready_.end() ? nullptr : it->second.get();
}

bool CompileManager::IsPending(uint32_t node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.count(node_id) > 0;
}

void CompileManager::Invalidate(uint32_t node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ready_.find(node_id);
  if (it == ready_.end()) return;
  retired_.push_back(std::move(it->second));
  ready_.erase(it);
}

void CompileManager::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return queue_.empty() && !worker_busy_; });
}

util::Status CompileManager::first_error() {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

size_t CompileManager::compiles_completed() {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void CompileManager::EnsureWorker() {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_.joinable()) return;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void CompileManager::WorkerLoop() {
  for (;;) {
    Job job{0, {}};
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // On shutdown, abandon queued jobs (the evaluation is over).
      if (shutdown_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      worker_busy_ = true;
    }
    std::unique_ptr<backends::CompiledUnit> unit;
    util::Status status = backend_->Compile(std::move(job.request), &unit);
    StoreResult(job.node_id, status, std::move(unit));
    {
      std::lock_guard<std::mutex> lock(mu_);
      worker_busy_ = false;
    }
    cv_.notify_all();
  }
}

void CompileManager::StoreResult(
    uint32_t node_id, util::Status status,
    std::unique_ptr<backends::CompiledUnit> unit) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.erase(node_id);
  ++completed_;
  if (!status.ok()) {
    if (first_error_.ok()) first_error_ = status;
    return;
  }
  auto it = ready_.find(node_id);
  if (it != ready_.end()) {
    // The evaluator may still be running the stale unit: retire it.
    retired_.push_back(std::move(it->second));
    it->second = std::move(unit);
  } else {
    ready_.emplace(node_id, std::move(unit));
  }
}

}  // namespace carac::core
