#ifndef CARAC_CORE_ENGINE_H_
#define CARAC_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/aot_planner.h"
#include "core/fixpoint_driver.h"
#include "core/jit.h"
#include "core/read_view.h"
#include "core/worker_pool.h"
#include "datalog/ast.h"
#include "ir/exec_context.h"
#include "ir/interpreter.h"
#include "ir/irop.h"
#include "optimizer/adaptive.h"
#include "storage/factlog.h"
#include "util/status.h"

namespace carac::core {

/// How a prepared program executes.
enum class EvalMode : uint8_t {
  kInterpreted,  // Pure IR interpretation — the paper's baseline.
  kJit,          // Adaptive Metaprogramming: interpret + (re)compile.
};

/// Engine configuration: evaluation mode, indexing, optional AOT planning
/// and the JIT switchboard.
struct EngineConfig {
  EvalMode mode = EvalMode::kInterpreted;
  /// Build indexes on join/filter columns (§IV "Index selection").
  bool use_indexes = true;
  /// Index organization for every declared index. A concrete kind forces
  /// that organization everywhere; nullopt (the default, "auto") keeps
  /// the paper's hash indexes for point-probed columns and lets the
  /// optimizer's access-path profile pick an ordered organization for
  /// range-only columns (optimizer/selectivity.h ChooseIndexKind).
  /// Program-level hints (Program::HintIndexKind, the DSL HintIndex, or
  /// a parsed `@index` pragma) override either, per column.
  std::optional<storage::IndexKind> index_kind;
  /// Outer-window size for batch-at-a-time index probes (see
  /// ir::ExecContext::probe_batch_window); 0 disables batching.
  uint32_t probe_batch_window = 64;
  /// Push comparison builtins into the storage layer: lowering annotates
  /// each eligible atom with per-side range bounds (ir::AnnotateRangeBounds)
  /// and the evaluators serve them through Relation::ProbeRange when the
  /// column's index is ordered and the optimizer's coverage estimate says
  /// a range probe beats the filtered scan. Results are byte-identical on
  /// or off — the comparison builtins always remain as residual filters —
  /// so this is purely an access-path switch (and the escape hatch when
  /// the uniform-key coverage estimate misfires).
  bool range_pushdown = true;
  /// Self-tuning indexes: at every epoch close, compare each indexed
  /// column's OBSERVED probe/range mix (runtime access profiling) against
  /// its current organization and migrate it when the evidence says
  /// another kind wins (optimizer/adaptive.h). Composes with any of the
  /// static choices above — they pick the starting kind, the policy
  /// refines it. Results stay byte-identical under any re-kinding
  /// schedule (the ascending-RowId index contract).
  bool adaptive_indexes = false;
  /// Thresholds and hysteresis for the adaptive policy.
  optimizer::AdaptiveIndexConfig adaptive;
  /// Which relational engine executes subqueries (§V-D: push or pull).
  ir::EngineStyle engine_style = ir::EngineStyle::kPush;
  JitConfig jit;
  /// Carac-compile-time macro optimization (§VI-C). Applied during
  /// Prepare(), so its cost is offline.
  bool aot_reorder = false;
  AotPlan aot;
  /// Apply the §V-A alias-elimination rewrite during Prepare(). Off by
  /// default: eliminated alias relations stop being materialized, so
  /// callers must query the alias target instead.
  bool eliminate_aliases = false;
  /// Evaluation threads for the semi-naive fixpoint. 1 (the default)
  /// keeps today's exact single-threaded execution; larger values shard
  /// each rule's outer scan by RowId range across a persistent worker
  /// pool. Results are byte-identical for every value: workers stage
  /// into per-thread buffers that the main thread merges in fixed order.
  int num_threads = 1;
  /// Outer scans below this row count stay single-threaded (sharding a
  /// near-empty delta costs more in dispatch than it saves). Tests lower
  /// it to force the parallel path onto small programs.
  uint32_t parallel_min_outer_rows = 128;
  /// Durable-state directory (snapshot.bin + factlog.bin). When set,
  /// every AddFacts batch is appended to the fact log and every closed
  /// epoch commits to it, Checkpoint()/Restore() become available, and a
  /// restart recovers in O(log tail) instead of O(database). Empty
  /// (default) disables persistence entirely.
  std::string snapshot_dir;
  /// With persistence enabled, automatically Checkpoint() after every N
  /// closed epochs (0 = manual checkpoints only). Tuning note: a larger
  /// N amortizes snapshot writes over more epochs but lengthens the log
  /// tail recovery must replay.
  uint64_t checkpoint_every = 0;
};

/// What Engine::Restore() recovered, for serve-mode reporting and tests.
struct RestoreInfo {
  bool snapshot_loaded = false;
  /// DatabaseSet epoch recorded in the snapshot (0 when none existed).
  uint64_t snapshot_epoch = 0;
  /// Committed fact-log epochs re-applied through Update().
  uint64_t epochs_replayed = 0;
  /// True when an uncommitted log tail (crash debris) was discarded.
  bool log_tail_discarded = false;
};

/// The public entry point: owns the lowered IR and the evaluation
/// machinery for one Datalog program. Evaluation is re-enterable: after
/// the initial Run(), batches of new facts can be applied as update
/// epochs whose cost is proportional to the delta, not the database.
///
///   datalog::Program program;
///   datalog::Dsl dsl(&program);
///   ... declare relations, facts, rules ...
///   core::Engine engine(&program, config);
///   CARAC_CHECK_OK(engine.Prepare());
///   CARAC_CHECK_OK(engine.Run());
///   auto rows = engine.Results(path.id());
///   // Later: apply a fact batch and bring the fixpoint up to date.
///   CARAC_CHECK_OK(engine.AddFacts(edge.id(), {{7, 8}, {8, 9}}));
///   CARAC_CHECK_OK(engine.Update());
class Engine {
 public:
  Engine(datalog::Program* program, EngineConfig config);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Stratifies, lowers and (optionally) AOT-plans. Fails on invalid or
  /// unstratifiable programs. Must precede Run()/Update().
  util::Status Prepare();

  /// Full evaluation to fixpoint; results land in the program's Derived
  /// stores and the epoch watermarks advance. Re-running is sound but
  /// pays full price: a re-entered Run() resets every IDB relation to
  /// its EDB facts and re-derives from scratch, so results always match
  /// the current fact set exactly (stale conclusions of negation or
  /// aggregate rules do not survive). Use AddFacts() + Update() to
  /// absorb new fact batches at delta-proportional cost instead.
  util::Status Run();

  /// Appends a batch of facts to `predicate`'s Derived store, to be
  /// picked up by the next Update() (or Run()). Fails with
  /// InvalidArgument on an unknown predicate or a tuple whose arity does
  /// not match the relation; the batch is validated up front, so on
  /// failure nothing is inserted (and nothing reaches the fact log).
  /// Callable before or after Prepare().
  util::Status AddFacts(datalog::PredicateId predicate,
                        const std::vector<storage::Tuple>& facts);

  /// Brings the fixpoint up to date with the facts appended since the
  /// last epoch boundary. The first call (before any Run()) is a full
  /// evaluation; later calls run an incremental epoch: positive strata
  /// propagate only the delta, strata with negation or aggregates whose
  /// inputs changed are recomputed stratum-locally (see FixpointDriver).
  /// `report`, when non-null, receives what the epoch did.
  util::Status Update(EpochReport* report = nullptr);

  // ---- Durable state (requires EngineConfig::snapshot_dir) ----
  //
  // Contract: recoverable state = program source + snapshot + fact log.
  // Facts must enter either through the program before the engine runs
  // (parse-time facts, Dsl Fact()) or through AddFacts() — batches
  // inserted into the DatabaseSet behind the engine's back are invisible
  // to the log and will not survive a restart.

  /// Writes <snapshot_dir>/snapshot.bin (atomic rename) capturing the
  /// full current state, then resets the fact log — recovery from this
  /// point replays nothing. Callable at any epoch.
  util::Status Checkpoint();

  /// Recovers durable state: loads the snapshot (when one exists) and
  /// re-applies every committed fact-log epoch past it through the
  /// normal Update() path, so recovery costs O(log tail). An
  /// uncommitted log tail — crash debris — is discarded and truncated
  /// away; corruption under a checksum fails with a diagnostic Status
  /// and applies nothing further. Requires Prepare(); call it before
  /// adding new facts. A subsequent Update() continues incrementally,
  /// byte-identical to a process that never restarted.
  util::Status Restore(RestoreInfo* info = nullptr);

  /// Cumulative counters across all epochs; last_epoch() holds the most
  /// recent evaluation's share.
  const ir::ExecStats& stats() const { return ctx_->stats(); }
  const EpochReport& last_epoch() const { return last_epoch_; }
  ir::IRProgram& ir() { return irp_; }
  Jit* jit() { return jit_.get(); }

  /// Cumulative per-(relation, column) probe counters (runtime access
  /// profiling; serve `stats` prints them).
  const ir::AccessProfiler& profiler() const { return ctx_->profiler(); }

  /// The adaptive re-kinding policy, or nullptr when
  /// EngineConfig::adaptive_indexes is off. Its events() are the
  /// migration history.
  const optimizer::AdaptiveIndexPolicy* adaptive_policy() const {
    return adaptive_policy_.get();
  }

  /// Sorted Derived rows of a relation (test/report convenience).
  std::vector<storage::Tuple> Results(datalog::PredicateId predicate) const;
  size_t ResultSize(datalog::PredicateId predicate) const;

  // ---- Epoch-snapshot reads (the serving layer's read path) ----

  /// The current published ReadView: the engine's queryable state pinned
  /// to the last closed epoch. Safe to call from any thread, including
  /// while a Run()/Update()/AddFacts() is in flight on the writer
  /// thread — the returned view is immutable and stays valid for as
  /// long as the caller holds it. Before the first epoch closes the
  /// view is the post-Prepare() one: epoch 0, every relation empty.
  /// Never null after a successful Prepare().
  std::shared_ptr<const ReadView> PinReadView() const;

  /// The `stats` report over the LIVE state: per-column index kinds,
  /// cumulative probe counters and adaptive re-kind events. Single
  /// source of the format — the published ReadView freezes this same
  /// text at each epoch close.
  std::string FormatStats() const;

 private:
  bool persistence_enabled() const { return !config_.snapshot_dir.empty(); }
  std::string SnapshotPath() const;
  std::string FactLogPath() const;
  /// Opens (creating if needed) the append handle on the fact log.
  util::Status EnsureLogOpen();
  /// The durability-suspended diagnostic (see log_broken_).
  util::Status LogBroken() const;
  /// Logs one validated AddFacts batch, preceded by any symbols interned
  /// since the last record (so replay reproduces identical symbol ids).
  util::Status LogBatch(datalog::PredicateId predicate,
                        const std::vector<storage::Tuple>& facts);
  /// Seals the epoch that just closed into the log; auto-checkpoints
  /// when EngineConfig::checkpoint_every says so.
  util::Status CommitEpochToLog();
  /// Re-applies one replayed log epoch (symbols, batches, Update).
  util::Status ApplyReplayedEpoch(const storage::FactLog::ReplayEpoch& epoch);
  /// Pins every relation at its watermark and swaps the result in as the
  /// published ReadView. Writer-thread only, at quiescent points (end of
  /// Prepare/Run/Update/Restore): no cursor is live and the watermarks
  /// name exactly the closed epoch's rows.
  void PublishReadView();

  datalog::Program* program_;
  EngineConfig config_;
  ir::IRProgram irp_;
  std::unique_ptr<ir::ExecContext> ctx_;
  std::unique_ptr<Jit> jit_;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<FixpointDriver> driver_;
  std::unique_ptr<optimizer::AdaptiveIndexPolicy> adaptive_policy_;
  EpochReport last_epoch_;
  bool prepared_ = false;
  bool evaluated_ = false;
  // ---- Published read snapshot (see PinReadView) ----
  /// Guards read_view_ only. The writer swaps a fresh view in at epoch
  /// close; readers copy the shared_ptr out. Held for pointer-copy
  /// duration on both sides, so it is never contended for long — and the
  /// release/acquire pair is the happens-before edge that makes the
  /// view's pinned buffers safely visible to reader threads.
  mutable std::mutex view_mutex_;
  std::shared_ptr<const ReadView> read_view_;
  /// Pinned symbol table shared across consecutive views; rebuilt only
  /// when interning grew the table (or Restore() replaced it).
  std::shared_ptr<const std::vector<std::string>> symbol_cache_;
  // ---- Persistence state (unused when snapshot_dir is empty) ----
  std::unique_ptr<storage::FactLog> factlog_;
  /// Symbols already covered by the snapshot/log; the suffix past this
  /// count is appended before the next batch record.
  size_t logged_symbols_ = 0;
  uint64_t epochs_since_checkpoint_ = 0;
  /// True while Restore() re-applies log epochs: suppresses re-logging.
  bool replaying_ = false;
  /// Batches applied since the last epoch commit. Restore() can rewind
  /// them only by reloading a snapshot; without one it refuses rather
  /// than truncate their unsealed log records out from under the
  /// in-memory facts (which would silently diverge served state from
  /// what a restart recovers).
  uint64_t uncommitted_batches_ = 0;
  /// Set when a log write fails. Durability is then SUSPENDED — further
  /// appends and commits refuse fast — because the current epoch's
  /// durable record is incomplete and committing it would let recovery
  /// silently diverge from the served state. A successful Checkpoint()
  /// heals it (the snapshot captures full memory state and resets the
  /// log); Restore() clears it too (memory is re-synced FROM the
  /// durable state). Until then, recovery replays to the last epoch
  /// whose commit reached disk — stale but consistent.
  bool log_broken_ = false;
};

}  // namespace carac::core

#endif  // CARAC_CORE_ENGINE_H_
