#include "core/aot_planner.h"

#include "optimizer/statistics.h"

namespace carac::core {

int ApplyAotPlan(const AotPlan& plan, const storage::DatabaseSet& db,
                 ir::IRProgram* irp) {
  optimizer::StatsSnapshot stats = optimizer::StatsSnapshot::Capture(db);
  optimizer::JoinOrderConfig config = plan.join_config;
  config.use_cardinalities = plan.use_fact_cardinalities;
  return optimizer::ReorderSubtree(stats, config, irp->root.get());
}

}  // namespace carac::core
