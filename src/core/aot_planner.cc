#include "core/aot_planner.h"

#include "optimizer/statistics.h"

namespace carac::core {

int ApplyAotPlan(const AotPlan& plan, const storage::DatabaseSet& db,
                 ir::IRProgram* irp) {
  optimizer::StatsSnapshot stats = optimizer::StatsSnapshot::Capture(db);
  optimizer::JoinOrderConfig config = plan.join_config;
  config.use_cardinalities = plan.use_fact_cardinalities;
  int changed = optimizer::ReorderSubtree(stats, config, irp->root.get());
  if (irp->update_root != nullptr) {
    // Update epochs deserve the plan too (they are the steady-state
    // serving path). ReorderSubquery itself keeps every pinned delta
    // atom outermost, here and under JIT replanning alike.
    changed +=
        optimizer::ReorderSubtree(stats, config, irp->update_root.get());
  }
  return changed;
}

}  // namespace carac::core
