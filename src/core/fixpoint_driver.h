#ifndef CARAC_CORE_FIXPOINT_DRIVER_H_
#define CARAC_CORE_FIXPOINT_DRIVER_H_

#include <cstdint>
#include <string>

#include "core/jit.h"
#include "ir/exec_context.h"
#include "ir/irop.h"
#include "util/status.h"

namespace carac::core {

/// What one evaluation (a full run or an update epoch) did, for tests,
/// the CLI's serve mode and the incremental benches.
struct EpochReport {
  /// DatabaseSet epoch number after this evaluation completed.
  uint64_t epoch = 0;
  /// True for full evaluation (Engine::Run, or the first Update()).
  bool full = false;
  /// Delta rows seeded from watermarks into DeltaKnown stores.
  uint64_t seeded_rows = 0;
  uint32_t strata_incremental = 0;
  uint32_t strata_recomputed = 0;
  uint32_t strata_skipped = 0;
  /// Counters spent by this evaluation alone (the context's stats are
  /// cumulative across epochs).
  ir::ExecStats stats;

  std::string ToString() const;
};

/// The semi-naive evaluation driver, shared by full evaluation and
/// incremental update epochs. Extracted from the old one-shot
/// Engine::Run() so the engine is re-enterable: RunFull executes the
/// whole lowered program from scratch semantics, RunUpdateEpoch brings
/// the fixpoint up to date with the facts appended since the last epoch
/// boundary, paying cost proportional to the delta.
///
/// Epoch soundness, per stratum (IRProgram::strata, in evaluation order):
///   - Nothing the stratum reads or defines changed: skip it outright.
///   - Inputs only grew, and none of them is a recompute trigger
///     (negated, or feeding an aggregate rule): positive derivations are
///     monotone, so Derived survives and the stratum's update subtree
///     runs — DeltaKnown seeded with the rows past each watermark, the
///     delta loop to fixpoint, every emission deduped against Derived.
///   - A recompute trigger changed, or an upstream stratum was itself
///     recomputed (its relations may have shrunk): previously derived
///     facts may be stale, so the stratum's relations are reset to their
///     EDB facts and the full subtree re-derives them against the
///     current inputs. The recompute is stratum-local; downstream strata
///     observe it as a possible retraction and cascade the same way.
class FixpointDriver {
 public:
  /// `jit` may be null (pure interpretation). Pointers are borrowed; the
  /// engine owns all three.
  FixpointDriver(ir::IRProgram* irp, ir::ExecContext* ctx, Jit* jit)
      : irp_(irp), ctx_(ctx), jit_(jit) {}
  FixpointDriver(const FixpointDriver&) = delete;
  FixpointDriver& operator=(const FixpointDriver&) = delete;

  /// Executes the full lowered program (naive pass + semi-naive loops)
  /// and closes the epoch. A re-entered call (any prior epoch closed)
  /// first resets every IDB relation to its EDB facts, so the result
  /// always reflects exactly the current fact set — including
  /// retractions through negation/aggregates that re-running the rules
  /// over surviving derived state would miss.
  util::Status RunFull(EpochReport* report);

  /// Executes one incremental update epoch over the facts appended since
  /// the last epoch boundary, then closes the epoch. Requires a prior
  /// RunFull (the engine guarantees it).
  util::Status RunUpdateEpoch(EpochReport* report);

 private:
  /// Surfaces asynchronous compilation failures observed so far
  /// (evaluation itself is unaffected — it keeps interpreting).
  util::Status JitError() const;

  ir::IRProgram* irp_;
  ir::ExecContext* ctx_;
  Jit* jit_;
};

}  // namespace carac::core

#endif  // CARAC_CORE_FIXPOINT_DRIVER_H_
