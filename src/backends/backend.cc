#include "backends/backend.h"

#include <functional>

#include "backends/bytecode_backend.h"
#include "backends/irgen_backend.h"
#include "backends/lambda_backend.h"
#include "backends/quotes_backend.h"

namespace carac::backends {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kQuotes:
      return "quotes";
    case BackendKind::kBytecode:
      return "bytecode";
    case BackendKind::kLambda:
      return "lambda";
    case BackendKind::kIRGenerator:
      return "irgen";
  }
  return "?";
}

std::unique_ptr<Backend> MakeBackend(BackendKind kind) {
  switch (kind) {
    case BackendKind::kQuotes:
      return std::make_unique<QuotesBackend>();
    case BackendKind::kBytecode:
      return std::make_unique<BytecodeBackend>();
    case BackendKind::kLambda:
      return std::make_unique<LambdaBackend>();
    case BackendKind::kIRGenerator:
      return std::make_unique<IRGeneratorBackend>();
  }
  return nullptr;
}

AtomOrderMap CollectAtomOrders(const ir::IROp& op) {
  AtomOrderMap orders;
  std::function<void(const ir::IROp&)> visit = [&](const ir::IROp& node) {
    if (node.kind == ir::OpKind::kSpj ||
        node.kind == ir::OpKind::kAggregate) {
      orders[node.node_id] = node.atoms;
    }
    for (const auto& child : node.children) visit(*child);
  };
  visit(op);
  return orders;
}

void ApplyAtomOrders(const AtomOrderMap& orders, ir::IROp* op) {
  auto it = orders.find(op->node_id);
  if (it != orders.end()) op->atoms = it->second;
  for (auto& child : op->children) ApplyAtomOrders(orders, child.get());
}

}  // namespace carac::backends
