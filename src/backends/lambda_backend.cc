#include "backends/lambda_backend.h"

#include <functional>
#include <utility>
#include <vector>

#include "util/status.h"

namespace carac::backends {

namespace {

/// The combinator signature. Full-mode thunks ignore `original`; snippet
/// thunks use it to hand children back to the interpreter (the spliced
/// continuation of §V-B3).
using Thunk =
    std::function<void(ir::ExecContext&, ir::Interpreter&, ir::IROp&)>;

Thunk CompileFull(const ir::IROp* op) {
  switch (op->kind) {
    case ir::OpKind::kProgram:
    case ir::OpKind::kSequence:
    case ir::OpKind::kUnionAll:
    case ir::OpKind::kUnion: {
      std::vector<Thunk> children;
      children.reserve(op->children.size());
      for (const auto& child : op->children) {
        children.push_back(CompileFull(child.get()));
      }
      return [children = std::move(children)](ir::ExecContext& ctx,
                                              ir::Interpreter& interp,
                                              ir::IROp& original) {
        for (const Thunk& t : children) t(ctx, interp, original);
      };
    }
    case ir::OpKind::kDoWhile: {
      Thunk body = CompileFull(op->children[0].get());
      const std::vector<datalog::PredicateId> rels = op->relations;
      return [body = std::move(body), rels](ir::ExecContext& ctx,
                                            ir::Interpreter& interp,
                                            ir::IROp& original) {
        do {
          ctx.stats().iterations++;
          body(ctx, interp, original);
        } while (ctx.db().AnyDeltaKnownNonEmpty(rels));
      };
    }
    case ir::OpKind::kSwapClear: {
      const std::vector<datalog::PredicateId> rels = op->relations;
      return [rels](ir::ExecContext& ctx, ir::Interpreter&, ir::IROp&) {
        ctx.db().SwapClearMerge(rels);
      };
    }
    case ir::OpKind::kSpj:
    case ir::OpKind::kAggregate:
      // The subtree clone outlives the thunk (owned by the unit), so the
      // raw pointer capture is safe.
      return [op](ir::ExecContext& ctx, ir::Interpreter&, ir::IROp&) {
        ir::RunSubquery(ctx, *op);
      };
  }
  return Thunk();  // Unreachable.
}

/// Snippet mode: the node's own control flow is compiled; children are
/// continuations back into the interpreter over the *live* tree, so every
/// child boundary stays a safe point.
Thunk CompileSnippet(const ir::IROp* op) {
  switch (op->kind) {
    case ir::OpKind::kProgram:
    case ir::OpKind::kSequence:
    case ir::OpKind::kUnionAll:
    case ir::OpKind::kUnion:
      return [](ir::ExecContext&, ir::Interpreter& interp,
                ir::IROp& original) {
        for (auto& child : original.children) interp.Execute(*child);
      };
    case ir::OpKind::kDoWhile: {
      const std::vector<datalog::PredicateId> rels = op->relations;
      return [rels](ir::ExecContext& ctx, ir::Interpreter& interp,
                    ir::IROp& original) {
        do {
          ctx.stats().iterations++;
          for (auto& child : original.children) interp.Execute(*child);
        } while (ctx.db().AnyDeltaKnownNonEmpty(rels));
      };
    }
    case ir::OpKind::kSwapClear:
    case ir::OpKind::kSpj:
    case ir::OpKind::kAggregate:
      // Leaves: snippet == full.
      return CompileFull(op);
  }
  return Thunk();  // Unreachable.
}

class LambdaUnit : public CompiledUnit {
 public:
  LambdaUnit(std::unique_ptr<ir::IROp> tree, Thunk thunk, size_t node_count,
             AtomOrderMap snippet_orders)
      : tree_(std::move(tree)), thunk_(std::move(thunk)),
        node_count_(node_count), snippet_orders_(std::move(snippet_orders)) {}

  void Run(ir::ExecContext& ctx, ir::Interpreter& interp,
           ir::IROp& original) override {
    // Snippet mode executes (parts of) the live tree via interpreter
    // continuations, so the orders chosen at compile time must be
    // transplanted onto it first.
    if (!snippet_orders_.empty()) ApplyAtomOrders(snippet_orders_, &original);
    thunk_(ctx, interp, original);
  }

  std::string Describe() const override {
    return "lambda[" + std::to_string(node_count_) + " combinators]";
  }

 private:
  std::unique_ptr<ir::IROp> tree_;
  Thunk thunk_;
  size_t node_count_;
  AtomOrderMap snippet_orders_;
};

size_t CountNodes(const ir::IROp& op) {
  size_t n = 1;
  for (const auto& child : op.children) n += CountNodes(*child);
  return n;
}

}  // namespace

util::Status LambdaBackend::Compile(CompileRequest request,
                                    std::unique_ptr<CompiledUnit>* out) {
  CARAC_CHECK(request.subtree != nullptr);
  if (request.reorder) {
    optimizer::ReorderSubtree(request.stats, request.join_config,
                              request.subtree.get());
  }
  ir::IROp* tree = request.subtree.get();
  const bool snippet = request.mode == CompileMode::kSnippet;
  Thunk thunk = snippet ? CompileSnippet(tree) : CompileFull(tree);
  AtomOrderMap snippet_orders;
  if (snippet && request.reorder) snippet_orders = CollectAtomOrders(*tree);
  *out = std::make_unique<LambdaUnit>(std::move(request.subtree),
                                      std::move(thunk), CountNodes(*tree),
                                      std::move(snippet_orders));
  return util::Status::Ok();
}

}  // namespace carac::backends
