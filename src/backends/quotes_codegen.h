#ifndef CARAC_BACKENDS_QUOTES_CODEGEN_H_
#define CARAC_BACKENDS_QUOTES_CODEGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "ir/irop.h"
#include "optimizer/statistics.h"

namespace carac::backends {

/// The C ABI between generated code and the engine. The generated source
/// re-declares this struct textually (it is self-contained — no include
/// paths), so the layout here and in quotes_codegen.cc must stay in sync;
/// a static_assert-based golden test guards the field order.
struct CaracQuotesApi {
  void* rt;
  uint32_t (*scan_open)(void* rt, uint32_t pred, uint32_t db);
  uint32_t (*probe_open)(void* rt, uint32_t pred, uint32_t db, uint32_t col,
                         int64_t value);
  const int64_t* (*iter_next)(void* rt, uint32_t iter);
  void (*iter_close)(void* rt, uint32_t iter);
  int (*contains)(void* rt, uint32_t pred, uint32_t db, const int64_t* row,
                  uint32_t n);
  void (*insert)(void* rt, uint32_t pred, const int64_t* row, uint32_t n);
  void (*swap_clear)(void* rt, uint32_t set_id);
  int (*any_delta)(void* rt, uint32_t set_id);
  void (*iter_bump)(void* rt);
  void (*call_node)(void* rt, uint32_t node_index);
};

/// Entry point symbol exported by every generated shared object.
using QuotesEntryFn = void (*)(const CaracQuotesApi* api);
inline constexpr char kQuotesEntrySymbol[] = "carac_entry";

/// Pools referenced by the generated code via small integer ids.
struct QuotesPools {
  std::vector<std::vector<datalog::PredicateId>> relation_sets;
  std::vector<const ir::IROp*> call_nodes;
};

/// Generates a self-contained C++ translation unit implementing the
/// (already reordered) subtree `op`: real nested loops with constants
/// inlined and access paths chosen statically from `stats`. Snippet mode
/// generates only the node's own control flow and splices
/// `api->call_node(...)` continuations for the children (§V-B3).
std::string GenerateQuotesSource(const ir::IROp& op,
                                 const optimizer::StatsSnapshot& stats,
                                 CompileMode mode, QuotesPools* pools);

}  // namespace carac::backends

#endif  // CARAC_BACKENDS_QUOTES_CODEGEN_H_
