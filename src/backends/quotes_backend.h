#ifndef CARAC_BACKENDS_QUOTES_BACKEND_H_
#define CARAC_BACKENDS_QUOTES_BACKEND_H_

#include <string>

#include "backends/backend.h"
#include "backends/quotes_codegen.h"

namespace carac::backends {

/// The Quotes target (§V-C1) — the C++ analog of Scala quotes & splices:
/// the subtree is rendered to type-checked source code, a *real* optimizing
/// compiler is invoked at run time, and the resulting shared object is
/// dlopen'd and called through a C ABI. The most expressive and safest
/// target (the compiler verifies everything) but also the one with the
/// largest compilation overhead, exactly the trade-off Fig. 5 measures.
///
/// A process-wide cache keyed on the generated source maps repeat
/// compilations ("warm" compiler) to an existing shared object; cold
/// compilations pay the full compiler invocation.
///
/// Environment: CARAC_CXX overrides the compiler binary (default "c++");
/// CARAC_QUOTES_DIR overrides the scratch directory.
class QuotesBackend : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kQuotes; }
  util::Status Compile(CompileRequest request,
                       std::unique_ptr<CompiledUnit>* out) override;

  /// True if the previous Compile() was served from the source cache.
  bool last_was_cache_hit() const { return last_cache_hit_; }

 private:
  bool last_cache_hit_ = false;
};

/// Drops the process-wide source cache (tests and the Fig. 5 bench use
/// this to measure cold compilations repeatedly).
void ClearQuotesCache();

}  // namespace carac::backends

#endif  // CARAC_BACKENDS_QUOTES_BACKEND_H_
