#include "backends/quotes_backend.h"

#include <dlfcn.h>
#include <sys/stat.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "util/status.h"

namespace carac::backends {

namespace {

using storage::Relation;
using storage::Value;

std::string QuotesScratchDir() {
  if (const char* dir = std::getenv("CARAC_QUOTES_DIR")) return dir;
  return "/tmp/carac_quotes";
}

std::string CompilerBinary() {
  if (const char* cxx = std::getenv("CARAC_CXX")) return cxx;
  return "c++";
}

uint64_t HashSource(const std::string& source) {
  uint64_t h = 0x9d5f01u;
  for (char c : source) {
    h = util::HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  return h;
}

/// Process-wide cache of compiled shared objects keyed by source hash.
/// dlopen handles are intentionally never closed (units may outlive the
/// backend, and repeated dlopen of the same .so is refcounted anyway).
struct SourceCache {
  std::mutex mu;
  std::unordered_map<uint64_t, QuotesEntryFn> entries;
};

SourceCache& Cache() {
  static SourceCache* cache = new SourceCache();
  return *cache;
}

// ---- Runtime bridge: the rt pointer the generated code calls back on. ----

struct IterState {
  const Relation* rel = nullptr;
  bool probe = false;
  storage::RowCursor bucket;
  size_t bucket_pos = 0;
  storage::RowId row = 0;
};

struct RtBridge {
  ir::ExecContext* ctx;
  ir::Interpreter* interp;
  const QuotesPools* pools;
  std::vector<IterState> iters;
};

uint32_t RtScanOpen(void* rt, uint32_t pred, uint32_t db) {
  auto* bridge = static_cast<RtBridge*>(rt);
  const Relation& rel = bridge->ctx->db().Get(
      static_cast<datalog::PredicateId>(pred),
      static_cast<storage::DbKind>(db));
  IterState state;
  state.rel = &rel;
  state.probe = false;
  state.row = 0;
  bridge->iters.push_back(state);
  return static_cast<uint32_t>(bridge->iters.size() - 1);
}

uint32_t RtProbeOpen(void* rt, uint32_t pred, uint32_t db, uint32_t col,
                     int64_t value) {
  auto* bridge = static_cast<RtBridge*>(rt);
  const Relation& rel = bridge->ctx->db().Get(
      static_cast<datalog::PredicateId>(pred),
      static_cast<storage::DbKind>(db));
  if (!rel.HasIndex(col)) return RtScanOpen(rt, pred, db);
  IterState state;
  state.rel = &rel;
  state.probe = true;
  state.bucket = rel.Probe(col, value);
  state.bucket_pos = 0;
  bridge->iters.push_back(std::move(state));
  return static_cast<uint32_t>(bridge->iters.size() - 1);
}

const int64_t* RtIterNext(void* rt, uint32_t iter) {
  auto* bridge = static_cast<RtBridge*>(rt);
  IterState& state = bridge->iters[iter];
  if (state.probe) {
    if (state.bucket_pos >= state.bucket.size()) return nullptr;
    return state.rel->RowData(state.bucket[state.bucket_pos++]);
  }
  if (state.row >= state.rel->NumRows()) return nullptr;
  return state.rel->RowData(state.row++);
}

void RtIterClose(void* rt, uint32_t iter) {
  auto* bridge = static_cast<RtBridge*>(rt);
  // Generated loops nest strictly (LIFO).
  CARAC_CHECK(iter + 1 == bridge->iters.size());
  bridge->iters.pop_back();
}

int RtContains(void* rt, uint32_t pred, uint32_t db, const int64_t* row,
               uint32_t n) {
  auto* bridge = static_cast<RtBridge*>(rt);
  return bridge->ctx->db()
      .Get(static_cast<datalog::PredicateId>(pred),
           static_cast<storage::DbKind>(db))
      .Contains(storage::TupleView(row, n));
}

void RtInsert(void* rt, uint32_t pred, const int64_t* row, uint32_t n) {
  auto* bridge = static_cast<RtBridge*>(rt);
  const storage::TupleView tuple(row, n);
  auto& db = bridge->ctx->db();
  bridge->ctx->stats().tuples_considered++;
  const auto id = static_cast<datalog::PredicateId>(pred);
  if (db.Get(id, storage::DbKind::kDerived).Contains(tuple)) return;
  if (db.Get(id, storage::DbKind::kDeltaNew).Insert(tuple)) {
    bridge->ctx->stats().tuples_inserted++;
  }
}

void RtSwapClear(void* rt, uint32_t set_id) {
  auto* bridge = static_cast<RtBridge*>(rt);
  bridge->ctx->db().SwapClearMerge(bridge->pools->relation_sets[set_id]);
}

int RtAnyDelta(void* rt, uint32_t set_id) {
  auto* bridge = static_cast<RtBridge*>(rt);
  return bridge->ctx->db().AnyDeltaKnownNonEmpty(
      bridge->pools->relation_sets[set_id]);
}

void RtIterBump(void* rt) {
  static_cast<RtBridge*>(rt)->ctx->stats().iterations++;
}

void RtCallNode(void* rt, uint32_t node_index) {
  auto* bridge = static_cast<RtBridge*>(rt);
  bridge->interp->Execute(
      *const_cast<ir::IROp*>(bridge->pools->call_nodes[node_index]));
}

class QuotesUnit : public CompiledUnit {
 public:
  QuotesUnit(std::unique_ptr<ir::IROp> tree, QuotesPools pools,
             QuotesEntryFn entry, size_t source_bytes)
      : tree_(std::move(tree)), pools_(std::move(pools)), entry_(entry),
        source_bytes_(source_bytes) {}

  void Run(ir::ExecContext& ctx, ir::Interpreter& interp,
           ir::IROp& /*original*/) override {
    RtBridge bridge;
    bridge.ctx = &ctx;
    bridge.interp = &interp;
    bridge.pools = &pools_;
    CaracQuotesApi api;
    api.rt = &bridge;
    api.scan_open = &RtScanOpen;
    api.probe_open = &RtProbeOpen;
    api.iter_next = &RtIterNext;
    api.iter_close = &RtIterClose;
    api.contains = &RtContains;
    api.insert = &RtInsert;
    api.swap_clear = &RtSwapClear;
    api.any_delta = &RtAnyDelta;
    api.iter_bump = &RtIterBump;
    api.call_node = &RtCallNode;
    entry_(&api);
  }

  std::string Describe() const override {
    return "quotes[" + std::to_string(source_bytes_) + " source bytes]";
  }

 private:
  std::unique_ptr<ir::IROp> tree_;  // Owns nodes referenced by pools_.
  QuotesPools pools_;
  QuotesEntryFn entry_;
  size_t source_bytes_;
};

util::Status InvokeCompiler(const std::string& source_path,
                            const std::string& so_path,
                            const std::string& log_path) {
  std::ostringstream cmd;
  cmd << CompilerBinary() << " -O2 -fPIC -shared -o " << so_path << " "
      << source_path << " > " << log_path << " 2>&1";
  const int rc = std::system(cmd.str().c_str());
  if (rc != 0) {
    std::ifstream log(log_path);
    std::stringstream contents;
    contents << log.rdbuf();
    return util::Status::Internal("quotes compilation failed (rc=" +
                                  std::to_string(rc) + "): " +
                                  contents.str().substr(0, 2000));
  }
  return util::Status::Ok();
}

}  // namespace

void ClearQuotesCache() {
  std::lock_guard<std::mutex> lock(Cache().mu);
  Cache().entries.clear();
}

util::Status QuotesBackend::Compile(CompileRequest request,
                                    std::unique_ptr<CompiledUnit>* out) {
  CARAC_CHECK(request.subtree != nullptr);
  if (request.reorder) {
    optimizer::ReorderSubtree(request.stats, request.join_config,
                              request.subtree.get());
  }

  QuotesPools pools;
  const std::string source = GenerateQuotesSource(
      *request.subtree, request.stats, request.mode, &pools);
  const uint64_t hash = HashSource(source);

  QuotesEntryFn entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(Cache().mu);
    auto it = Cache().entries.find(hash);
    if (it != Cache().entries.end()) entry = it->second;
  }
  last_cache_hit_ = entry != nullptr;

  if (entry == nullptr) {
    const std::string dir = QuotesScratchDir();
    ::mkdir(dir.c_str(), 0755);  // Best effort; failures surface below.
    const std::string stem = dir + "/q" + std::to_string(hash);
    const std::string source_path = stem + ".cc";
    const std::string so_path = stem + ".so";
    {
      std::ofstream file(source_path);
      if (!file) {
        return util::Status::Internal("cannot write " + source_path);
      }
      file << source;
    }
    CARAC_RETURN_IF_ERROR(
        InvokeCompiler(source_path, so_path, stem + ".log"));
    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
      return util::Status::Internal(std::string("dlopen failed: ") +
                                    ::dlerror());
    }
    entry = reinterpret_cast<QuotesEntryFn>(
        ::dlsym(handle, kQuotesEntrySymbol));
    if (entry == nullptr) {
      return util::Status::Internal("entry symbol missing in " + so_path);
    }
    std::lock_guard<std::mutex> lock(Cache().mu);
    Cache().entries.emplace(hash, entry);
  }

  *out = std::make_unique<QuotesUnit>(std::move(request.subtree),
                                      std::move(pools), entry, source.size());
  return util::Status::Ok();
}

}  // namespace carac::backends
