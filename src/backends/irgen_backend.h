#ifndef CARAC_BACKENDS_IRGEN_BACKEND_H_
#define CARAC_BACKENDS_IRGEN_BACKEND_H_

#include "backends/backend.h"

namespace carac::backends {

/// The IRGenerator target (§V-C4): "compilation" regenerates the IR — it
/// computes fresh join orders from the snapshot and the resulting unit
/// rewrites the live IR subtree in place before handing it back to the
/// interpreter. The cheapest target: no code is generated, so overhead is
/// just the sorting of subqueries.
class IRGeneratorBackend : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kIRGenerator; }
  util::Status Compile(CompileRequest request,
                       std::unique_ptr<CompiledUnit>* out) override;
};

}  // namespace carac::backends

#endif  // CARAC_BACKENDS_IRGEN_BACKEND_H_
