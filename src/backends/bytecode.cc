#include "backends/bytecode.h"

#include "datalog/builtins.h"
#include "ir/range_access.h"
#include "util/status.h"

namespace carac::backends {

namespace {

using storage::Relation;
using storage::RowId;
using storage::Tuple;
using storage::Value;

/// Iterator state: either a whole-relation arena scan (dense RowId cursor)
/// or an index-probe result (RowId cursor). `current` points at the
/// row-major values of the current row inside the relation's arena.
struct IterState {
  const Relation* rel = nullptr;
  bool probe = false;
  storage::RowCursor bucket;
  size_t bucket_pos = 0;
  RowId row = 0;
  const Value* current = nullptr;
  // Probe memo: an inner iterator slot typically re-opens with the same
  // (relation, column, key) once per outer row — always for const keys,
  // and for runs of equal outer join keys otherwise. The cursor from the
  // previous open is reused when the VM's mutation generation hasn't
  // moved (kSwapClear / kCallNode bump it; in between, the probed
  // Derived/DeltaKnown stores are frozen, so the cursor stays valid).
  const Relation* memo_rel = nullptr;
  size_t memo_col = 0;
  Value memo_key = 0;
  uint64_t memo_gen = 0;
  bool memo_valid = false;
  // Range-probe extension of the memo: keyed on the CLOSED [lo, hi]
  // (strictness folds into the bounds, so two spellings of the same
  // interval share a memo entry). A declined probe is memoized too —
  // re-deciding against the same index state would reach the same
  // verdict, so the scan fallback is replayed without re-probing.
  std::vector<RowId> range_rows;
  Value memo_lo = 0;
  Value memo_hi = 0;
  bool memo_is_range = false;
  bool memo_declined = false;
  // Counter slot for the memoized (relation, column); re-resolved only
  // when the slot's target changes, so a memo hit costs nothing and a
  // memo miss pays one pointer increment on top of the probe itself.
  ir::ColumnProbeStats* probe_stats = nullptr;

  void OpenScan(const Relation* relation) {
    rel = relation;
    probe = false;
    row = 0;
    current = nullptr;
  }

  void OpenProbe(const Relation* relation, size_t col, Value value,
                 uint64_t gen, bool memoizable, datalog::PredicateId pred,
                 ir::AccessProfiler* profiler) {
    if (!relation->HasIndex(col)) {
      // No index (unindexed configuration): degrade to a scan; the CHECK
      // instructions emitted alongside the probe still filter correctly
      // because the compiler always re-checks the probed column.
      OpenScan(relation);
      return;
    }
    rel = relation;
    probe = true;
    if (!(memo_valid && !memo_is_range && memo_rel == relation &&
          memo_col == col && memo_key == value && memo_gen == gen)) {
      bucket = relation->Probe(col, value);
      if (probe_stats == nullptr || memo_rel != relation || memo_col != col) {
        probe_stats = profiler->Slot(pred, col);
      }
      probe_stats->point_probes++;
      probe_stats->point_hits += !bucket.empty();
      memo_rel = relation;
      memo_col = col;
      memo_key = value;
      memo_gen = gen;
      memo_is_range = false;
      memo_valid = memoizable;
    }
    bucket_pos = 0;
    current = nullptr;
  }

  void OpenRange(const Relation* relation, size_t col, Value lo,
                 bool lo_strict, Value hi, bool hi_strict, uint64_t gen,
                 bool memoizable, datalog::PredicateId pred,
                 ir::AccessProfiler* profiler) {
    if (!relation->HasIndex(col)) {
      // Unindexed configuration: degrade to a scan. The kCompare
      // residuals the compiler always emits behind the loop keep it
      // correct.
      OpenScan(relation);
      return;
    }
    ir::ResolvedRange range;
    range.empty = !ir::CloseInterval(lo, lo_strict, hi, hi_strict, &range.lo,
                                     &range.hi);
    if (range.empty) {
      // Canonical empty key so every contradictory interval memo-hits.
      range.lo = 1;
      range.hi = 0;
    }
    if (memo_valid && memo_is_range && memo_rel == relation &&
        memo_col == col && memo_lo == range.lo && memo_hi == range.hi &&
        memo_gen == gen) {
      if (memo_declined) {
        OpenScan(relation);
        return;
      }
      rel = relation;
      probe = true;
      bucket = storage::RowCursor(range_rows.data(), range_rows.size());
      bucket_pos = 0;
      current = nullptr;
      return;
    }
    if (probe_stats == nullptr || memo_rel != relation || memo_col != col) {
      probe_stats = profiler->Slot(pred, col);
    }
    const bool taken =
        ir::TryRangeProbe(*relation, col, range, probe_stats, &range_rows);
    memo_rel = relation;
    memo_col = col;
    memo_lo = range.lo;
    memo_hi = range.hi;
    memo_gen = gen;
    memo_is_range = true;
    memo_declined = !taken;
    memo_valid = memoizable;
    if (!taken) {
      OpenScan(relation);
      return;
    }
    rel = relation;
    probe = true;
    bucket = storage::RowCursor(range_rows.data(), range_rows.size());
    bucket_pos = 0;
    current = nullptr;
  }

  bool Next() {
    if (probe) {
      if (bucket_pos >= bucket.size()) return false;
      current = rel->RowData(bucket[bucket_pos++]);
      return true;
    }
    if (row >= rel->NumRows()) return false;
    current = rel->RowData(row++);
    return true;
  }
};

}  // namespace

void RunBytecode(const BytecodeProgram& program, ir::ExecContext& ctx,
                 ir::Interpreter& interp) {
  std::vector<Value> regs(program.num_regs, 0);
  std::vector<IterState> iters(program.num_iters);
  Tuple scratch;
  storage::DatabaseSet& db = ctx.db();
  // Mutation generation for the per-slot probe memos. Emits only touch
  // DeltaNew (never memoized); the stores probes read change only at
  // kSwapClear and kCallNode, so those bump it.
  uint64_t probe_gen = 0;

  size_t pc = 0;
  for (;;) {
    const Insn& insn = program.code[pc];
    switch (insn.op) {
      case Insn::Op::kLoadImm:
        regs[insn.a] = insn.imm;
        ++pc;
        break;
      case Insn::Op::kScanOpen:
        iters[insn.a].OpenScan(&db.Get(
            static_cast<datalog::PredicateId>(insn.b),
            static_cast<storage::DbKind>(insn.c)));
        ++pc;
        break;
      case Insn::Op::kProbeOpenConst:
        iters[insn.a].OpenProbe(
            &db.Get(static_cast<datalog::PredicateId>(insn.b),
                    static_cast<storage::DbKind>(insn.c)),
            static_cast<size_t>(insn.d), insn.imm, probe_gen,
            static_cast<storage::DbKind>(insn.c) != storage::DbKind::kDeltaNew,
            static_cast<datalog::PredicateId>(insn.b), &ctx.profiler());
        ++pc;
        break;
      case Insn::Op::kProbeOpenReg:
        iters[insn.a].OpenProbe(
            &db.Get(static_cast<datalog::PredicateId>(insn.b),
                    static_cast<storage::DbKind>(insn.c)),
            static_cast<size_t>(insn.d), regs[insn.e], probe_gen,
            static_cast<storage::DbKind>(insn.c) != storage::DbKind::kDeltaNew,
            static_cast<datalog::PredicateId>(insn.b), &ctx.profiler());
        ++pc;
        break;
      case Insn::Op::kRangeOpen:
        iters[insn.a].OpenRange(
            &db.Get(static_cast<datalog::PredicateId>(insn.b),
                    static_cast<storage::DbKind>(insn.c)),
            static_cast<size_t>(insn.d), regs[insn.e], (insn.g & 1) != 0,
            regs[insn.f], (insn.g & 2) != 0, probe_gen,
            static_cast<storage::DbKind>(insn.c) != storage::DbKind::kDeltaNew,
            static_cast<datalog::PredicateId>(insn.b), &ctx.profiler());
        ++pc;
        break;
      case Insn::Op::kNext:
        if (iters[insn.a].Next()) {
          ++pc;
        } else {
          pc = static_cast<size_t>(insn.d);
        }
        break;
      case Insn::Op::kCheckConst:
        pc = (iters[insn.a].current[insn.b] == insn.imm)
                 ? pc + 1
                 : static_cast<size_t>(insn.d);
        break;
      case Insn::Op::kCheckReg:
        pc = (iters[insn.a].current[insn.b] == regs[insn.e])
                 ? pc + 1
                 : static_cast<size_t>(insn.d);
        break;
      case Insn::Op::kBindCol:
        regs[insn.e] = iters[insn.a].current[insn.b];
        ++pc;
        break;
      case Insn::Op::kCompare:
        pc = datalog::EvalComparison(static_cast<datalog::BuiltinOp>(insn.b),
                                     regs[insn.e], regs[insn.f])
                 ? pc + 1
                 : static_cast<size_t>(insn.d);
        break;
      case Insn::Op::kArith: {
        Value z;
        if (datalog::EvalArithmetic(static_cast<datalog::BuiltinOp>(insn.b),
                                    regs[insn.e], regs[insn.f], &z)) {
          regs[insn.g] = z;
          ++pc;
        } else {
          pc = static_cast<size_t>(insn.d);
        }
        break;
      }
      case Insn::Op::kArithCheck: {
        Value z;
        const bool ok =
            datalog::EvalArithmetic(static_cast<datalog::BuiltinOp>(insn.b),
                                    regs[insn.e], regs[insn.f], &z) &&
            z == regs[insn.g];
        pc = ok ? pc + 1 : static_cast<size_t>(insn.d);
        break;
      }
      case Insn::Op::kNotContains: {
        const TupleDesc& desc = program.tuples[insn.a];
        scratch.clear();
        for (int32_t r : desc.regs) scratch.push_back(regs[r]);
        pc = db.Get(desc.predicate, desc.db).Contains(scratch)
                 ? static_cast<size_t>(insn.d)
                 : pc + 1;
        break;
      }
      case Insn::Op::kEmit: {
        const TupleDesc& desc = program.tuples[insn.a];
        scratch.clear();
        for (int32_t r : desc.regs) scratch.push_back(regs[r]);
        ctx.stats().tuples_considered++;
        if (!db.Get(desc.predicate, storage::DbKind::kDerived)
                 .Contains(scratch)) {
          if (db.Get(desc.predicate, storage::DbKind::kDeltaNew)
                  .Insert(scratch)) {
            ctx.stats().tuples_inserted++;
          }
        }
        ++pc;
        break;
      }
      case Insn::Op::kJump:
        pc = static_cast<size_t>(insn.d);
        break;
      case Insn::Op::kSwapClear:
        db.SwapClearMerge(program.relation_sets[insn.a]);
        ++probe_gen;
        ++pc;
        break;
      case Insn::Op::kJumpIfDelta:
        pc = db.AnyDeltaKnownNonEmpty(program.relation_sets[insn.a])
                 ? static_cast<size_t>(insn.d)
                 : pc + 1;
        break;
      case Insn::Op::kIterBump:
        ctx.stats().iterations++;
        ++pc;
        break;
      case Insn::Op::kCallNode:
        interp.Execute(*const_cast<ir::IROp*>(program.call_nodes[insn.a]));
        ++probe_gen;
        ++pc;
        break;
      case Insn::Op::kHalt:
        return;
    }
  }
}

std::string BytecodeProgram::Disassemble() const {
  static const char* kNames[] = {
      "loadimm",  "scan",   "probec",  "prober",   "rangeo",   "next",
      "checkc",   "checkr", "bind",    "cmp",      "arith",    "arithchk",
      "notcont",  "emit",   "jump",    "swapclr",  "jmpdelta", "iterbump",
      "callnode", "halt"};
  std::string out;
  for (size_t i = 0; i < code.size(); ++i) {
    const Insn& insn = code[i];
    out += std::to_string(i) + ": ";
    out += kNames[static_cast<int>(insn.op)];
    out += " a=" + std::to_string(insn.a) + " b=" + std::to_string(insn.b) +
           " c=" + std::to_string(insn.c) + " d=" + std::to_string(insn.d) +
           " e=" + std::to_string(insn.e) + " imm=" + std::to_string(insn.imm);
    out += "\n";
  }
  return out;
}

}  // namespace carac::backends
