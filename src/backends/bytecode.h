#ifndef CARAC_BACKENDS_BYTECODE_H_
#define CARAC_BACKENDS_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "ir/exec_context.h"
#include "ir/interpreter.h"
#include "ir/irop.h"
#include "storage/database.h"

namespace carac::backends {

/// The instruction set of the bytecode target (§V-C2). The compiler turns
/// a (reordered) IR subtree into a flat, jump-based program: nested-loop
/// joins become OPEN/NEXT loops with statically selected access paths, so
/// execution pays no per-row planning or tree-traversal cost. Like the
/// paper's direct-to-JVM-bytecode generator, the VM itself performs no
/// verification — a malformed program is undefined behaviour — which is
/// exactly the safety/overhead trade this target makes.
struct Insn {
  enum class Op : uint8_t {
    kLoadImm,         // regs[a] = imm
    kScanOpen,        // iters[a] = scan(pred b, db c)
    kProbeOpenConst,  // iters[a] = probe(pred b, db c, col d, imm)
    kProbeOpenReg,    // iters[a] = probe(pred b, db c, col d, regs[e])
    kRangeOpen,       // iters[a] = range(pred b, db c, col d,
                      //   lo=regs[e], hi=regs[f]; g bit0/1: lo/hi strict).
                      // Declined or unindexed ranges degrade to a scan —
                      // the kCompare residuals behind the loop keep the
                      // result identical either way.
    kNext,            // advance iters[a]; jump d when exhausted
    kCheckConst,      // row(a)[b] != imm -> jump d
    kCheckReg,        // row(a)[b] != regs[e] -> jump d
    kBindCol,         // regs[e] = row(a)[b]
    kCompare,         // !cmp(b, regs[e], regs[f]) -> jump d
    kArith,           // regs[g] = arith(b, regs[e], regs[f]); undef -> jump d
    kArithCheck,      // arith(b,e,f) undef or != regs[g] -> jump d
    kNotContains,     // tuple desc a in its relation -> jump d
    kEmit,            // materialize tuple desc a, insert-if-novel
    kJump,            // pc = d
    kSwapClear,       // swap-clear-merge relation set a
    kJumpIfDelta,     // any delta in set a non-empty -> jump d
    kIterBump,        // iteration counter += 1 (DoWhile accounting)
    kCallNode,        // run owned IR node a through the interpreter
    kHalt,
  };

  Op op;
  int32_t a = 0, b = 0, c = 0, d = 0, e = 0, f = 0, g = 0;
  int64_t imm = 0;
};

/// A row template used by kNotContains / kEmit: each column is a register.
struct TupleDesc {
  datalog::PredicateId predicate;
  storage::DbKind db;  // Source for kNotContains; ignored for kEmit.
  std::vector<int32_t> regs;
};

/// A compiled bytecode program plus its constant pools.
struct BytecodeProgram {
  std::vector<Insn> code;
  std::vector<TupleDesc> tuples;
  std::vector<std::vector<datalog::PredicateId>> relation_sets;
  /// Nodes the VM bails out to the interpreter for (aggregates, snippet
  /// children). Owned clones; kCallNode indexes this vector.
  std::vector<const ir::IROp*> call_nodes;
  int32_t num_regs = 0;
  int32_t num_iters = 0;

  std::string Disassemble() const;
};

/// Executes a bytecode program against the live databases.
void RunBytecode(const BytecodeProgram& program, ir::ExecContext& ctx,
                 ir::Interpreter& interp);

}  // namespace carac::backends

#endif  // CARAC_BACKENDS_BYTECODE_H_
