#ifndef CARAC_BACKENDS_LAMBDA_BACKEND_H_
#define CARAC_BACKENDS_LAMBDA_BACKEND_H_

#include "backends/backend.h"

namespace carac::backends {

/// The Lambda target (§V-C3): stitches precompiled higher-order functions
/// (closures over the reordered subtree) into an executable tree at run
/// time. No arbitrary code generation — only the predefined combinators —
/// but also no compiler invocation, and no per-node dispatch once built.
class LambdaBackend : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kLambda; }
  util::Status Compile(CompileRequest request,
                       std::unique_ptr<CompiledUnit>* out) override;
};

}  // namespace carac::backends

#endif  // CARAC_BACKENDS_LAMBDA_BACKEND_H_
