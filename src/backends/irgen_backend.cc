#include "backends/irgen_backend.h"

#include <utility>

#include "util/status.h"

namespace carac::backends {

namespace {

/// Holds the reordered atom vectors per node id; Run() splices them into
/// the live tree and interprets it.
class IRGenUnit : public CompiledUnit {
 public:
  IRGenUnit(AtomOrderMap orders, int reordered)
      : orders_(std::move(orders)), reordered_(reordered) {}

  void Run(ir::ExecContext& ctx, ir::Interpreter& interp,
           ir::IROp& original) override {
    ApplyAtomOrders(orders_, &original);
    if (reordered_ > 0) ctx.stats().reorders += reordered_;
    interp.ExecuteNode(original);
  }

  std::string Describe() const override {
    return "irgen[" + std::to_string(orders_.size()) + " subqueries]";
  }

 private:
  AtomOrderMap orders_;
  int reordered_;
};

}  // namespace

util::Status IRGeneratorBackend::Compile(CompileRequest request,
                                         std::unique_ptr<CompiledUnit>* out) {
  CARAC_CHECK(request.subtree != nullptr);
  int reordered = 0;
  if (request.reorder) {
    reordered = optimizer::ReorderSubtree(request.stats, request.join_config,
                                          request.subtree.get());
  }
  *out = std::make_unique<IRGenUnit>(CollectAtomOrders(*request.subtree),
                                     reordered);
  return util::Status::Ok();
}

}  // namespace carac::backends
