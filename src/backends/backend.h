#ifndef CARAC_BACKENDS_BACKEND_H_
#define CARAC_BACKENDS_BACKEND_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/interpreter.h"
#include "ir/irop.h"
#include "optimizer/join_order.h"
#include "optimizer/statistics.h"
#include "util/status.h"

namespace carac::backends {

/// The four compilation targets of §V-C, ordered from most expressive /
/// highest overhead to most limited / lowest overhead.
enum class BackendKind : uint8_t {
  kQuotes,       // Runtime C++ source generation + real compiler + dlopen.
  kBytecode,     // Custom register-VM bytecode, generated in-process.
  kLambda,       // Composition of precompiled std::function combinators.
  kIRGenerator,  // IR rewriting only; execution stays in the interpreter.
};

const char* BackendKindName(BackendKind kind);

/// Full-subtree vs snippet compilation (§V-B3): full compiles the node and
/// its entire subtree into one unit; snippet compiles only the node's own
/// body and splices interpreter continuations for the children, keeping
/// every child boundary a live safe point.
enum class CompileMode : uint8_t { kFull, kSnippet };

/// Everything a backend needs to produce a unit. The subtree and the
/// statistics are snapshots owned by the request, so compilation can run
/// on a separate thread while evaluation continues (§V-B2 async mode).
struct CompileRequest {
  std::unique_ptr<ir::IROp> subtree;  // Clone of the node being compiled.
  optimizer::StatsSnapshot stats;     // Captured at enqueue time.
  optimizer::JoinOrderConfig join_config;
  CompileMode mode = CompileMode::kFull;
  bool reorder = true;  // Apply the §IV join ordering while compiling.
};

/// A compiled artifact. Run() executes the semantics of the subtree the
/// unit was compiled from; `original` is the live IR node (used by snippet
/// units to locate children for interpreter continuations).
class CompiledUnit {
 public:
  virtual ~CompiledUnit() = default;
  virtual void Run(ir::ExecContext& ctx, ir::Interpreter& interp,
                   ir::IROp& original) = 0;
  /// Diagnostic label ("lambda", "bytecode[17 insns]", ...).
  virtual std::string Describe() const = 0;
};

/// A compilation target.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual BackendKind kind() const = 0;
  /// Compiles the request into a unit. May be called from a compiler
  /// thread; must not touch live databases (only the request's snapshot).
  virtual util::Status Compile(CompileRequest request,
                               std::unique_ptr<CompiledUnit>* out) = 0;
};

/// Factory. Quotes accepts optional overrides via environment variables
/// (CARAC_CXX for the compiler binary, CARAC_QUOTES_DIR for scratch space).
std::unique_ptr<Backend> MakeBackend(BackendKind kind);

/// node_id -> atom order of every subquery in a subtree. Units that keep
/// executing (parts of) the live tree use these to transplant the orders
/// chosen at compile time onto it.
using AtomOrderMap =
    std::unordered_map<uint32_t, std::vector<ir::AtomSpec>>;
AtomOrderMap CollectAtomOrders(const ir::IROp& op);
void ApplyAtomOrders(const AtomOrderMap& orders, ir::IROp* op);

}  // namespace carac::backends

#endif  // CARAC_BACKENDS_BACKEND_H_
