#ifndef CARAC_BACKENDS_BYTECODE_BACKEND_H_
#define CARAC_BACKENDS_BYTECODE_BACKEND_H_

#include "backends/backend.h"
#include "backends/bytecode.h"

namespace carac::backends {

/// The bytecode target (§V-C2): compiles a (reordered) IR subtree into the
/// register-VM bytecode of bytecode.h. Generation is cheap (no external
/// compiler), the artifact is fast (statically planned access paths, no
/// per-row planning), but the generated program is unverified and cannot
/// hand control back to the interpreter mid-node (only at kCallNode
/// bail-outs), mirroring the JVM-bytecode trade-offs in the paper.
class BytecodeBackend : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kBytecode; }
  util::Status Compile(CompileRequest request,
                       std::unique_ptr<CompiledUnit>* out) override;
};

/// Compiles one subtree (already reordered) to bytecode. Exposed for tests
/// and for the Soufflé-like AOT baseline.
BytecodeProgram CompileToBytecode(const ir::IROp& op,
                                  const optimizer::StatsSnapshot& stats,
                                  CompileMode mode);

}  // namespace carac::backends

#endif  // CARAC_BACKENDS_BYTECODE_BACKEND_H_
