#include "backends/bytecode_backend.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "util/status.h"

namespace carac::backends {

namespace {

using datalog::BuiltinBindsOutput;
using ir::AtomSpec;
using ir::IROp;
using ir::LocalTerm;
using ir::OpKind;

constexpr int32_t kExitSentinel = -1;

class Compiler {
 public:
  Compiler(const optimizer::StatsSnapshot& stats, CompileMode mode)
      : stats_(stats), mode_(mode) {}

  BytecodeProgram Compile(const IROp& op) {
    CompileNode(op, /*top_level=*/true);
    Emit({.op = Insn::Op::kHalt});
    prog_.num_regs = max_reg_;
    prog_.num_iters = max_iter_;
    return std::move(prog_);
  }

 private:
  size_t Emit(Insn insn) {
    prog_.code.push_back(insn);
    return prog_.code.size() - 1;
  }

  int32_t RelationSet(const std::vector<datalog::PredicateId>& rels) {
    prog_.relation_sets.push_back(rels);
    return static_cast<int32_t>(prog_.relation_sets.size() - 1);
  }

  void CompileNode(const IROp& op, bool top_level) {
    switch (op.kind) {
      case OpKind::kProgram:
      case OpKind::kSequence:
      case OpKind::kUnionAll:
      case OpKind::kUnion:
        if (!top_level && mode_ == CompileMode::kSnippet) {
          CallNode(op);
          return;
        }
        for (const auto& child : op.children) {
          CompileChild(*child, top_level);
        }
        return;
      case OpKind::kDoWhile: {
        const size_t loop_start = prog_.code.size();
        Emit({.op = Insn::Op::kIterBump});
        for (const auto& child : op.children[0]->children) {
          CompileChild(*child, /*top_level=*/false);
        }
        Insn jump{.op = Insn::Op::kJumpIfDelta};
        jump.a = RelationSet(op.relations);
        jump.d = static_cast<int32_t>(loop_start);
        Emit(jump);
        return;
      }
      case OpKind::kSwapClear: {
        Insn insn{.op = Insn::Op::kSwapClear};
        insn.a = RelationSet(op.relations);
        Emit(insn);
        return;
      }
      case OpKind::kSpj:
        CompileSpj(op);
        return;
      case OpKind::kAggregate:
        CallNode(op);  // Aggregation bails out to the interpreter.
        return;
    }
  }

  /// In snippet mode only the top node's own control structure is
  /// compiled; every child defers to the interpreter.
  void CompileChild(const IROp& child, bool /*top_level*/) {
    if (mode_ == CompileMode::kSnippet) {
      CallNode(child);
    } else {
      CompileNode(child, /*top_level=*/false);
    }
  }

  void CallNode(const IROp& op) {
    prog_.call_nodes.push_back(&op);
    Insn insn{.op = Insn::Op::kCallNode};
    insn.a = static_cast<int32_t>(prog_.call_nodes.size() - 1);
    Emit(insn);
  }

  // ---- SPJ compilation: static planning over the snapshot. ----

  struct SpjState {
    std::vector<bool> bound;
    int32_t next_temp;
    int32_t next_iter = 0;
    // Fail target for row-level failures: kExitSentinel means "end of this
    // SPJ" (patched afterwards); otherwise an instruction address (the
    // innermost enclosing kNext).
    int32_t fail = kExitSentinel;
    std::vector<size_t> exit_patches;
  };

  int32_t ConstReg(SpjState* s, int64_t value) {
    const int32_t reg = s->next_temp++;
    Insn insn{.op = Insn::Op::kLoadImm};
    insn.a = reg;
    insn.imm = value;
    Emit(insn);
    return reg;
  }

  /// Register holding a term's value; for constants a temp is loaded.
  int32_t TermReg(SpjState* s, const LocalTerm& t) {
    if (t.is_var) return t.var;
    return ConstReg(s, t.constant);
  }

  /// Register holding one side of a range bound. An absent side widens
  /// to `missing` (the Value domain edge: match-everything). Bound-var
  /// sides read the variable's register directly — the annotation pass
  /// guarantees it is bound before the atom executes.
  int32_t BoundReg(SpjState* s, const ir::BoundSpec& b, int64_t missing) {
    if (!b.present()) return ConstReg(s, missing);
    if (b.kind == ir::BoundSpec::Kind::kVar) return b.var;
    return ConstReg(s, b.constant);
  }

  void FailJump(SpjState* s, size_t insn_index) {
    if (prog_.code[insn_index].d == kExitSentinel) {
      s->exit_patches.push_back(insn_index);
    }
  }

  void CompileSpj(const IROp& op) {
    SpjState s;
    s.bound.assign(op.num_locals, false);
    s.next_temp = op.num_locals;

    for (const AtomSpec& atom : op.atoms) {
      if (atom.is_builtin()) {
        CompileBuiltin(&s, atom);
      } else if (atom.negated) {
        CompileNegation(&s, atom);
      } else {
        CompileJoinAtom(&s, atom);
      }
    }

    // Head emission.
    TupleDesc desc;
    desc.predicate = op.target;
    desc.db = storage::DbKind::kDeltaNew;
    for (const LocalTerm& t : op.head_terms) {
      desc.regs.push_back(TermReg(&s, t));
    }
    prog_.tuples.push_back(std::move(desc));
    Insn emit{.op = Insn::Op::kEmit};
    emit.a = static_cast<int32_t>(prog_.tuples.size() - 1);
    Emit(emit);

    // Resume the innermost loop (or fall out if there is none).
    Insn jump{.op = Insn::Op::kJump};
    jump.d = s.fail;
    FailJump(&s, Emit(jump));

    // Patch every exit-sentinel jump to the first instruction after the
    // subquery.
    const int32_t exit_pc = static_cast<int32_t>(prog_.code.size());
    for (size_t idx : s.exit_patches) prog_.code[idx].d = exit_pc;

    max_reg_ = std::max(max_reg_, s.next_temp);
    max_iter_ = std::max(max_iter_, s.next_iter);
  }

  void CompileBuiltin(SpjState* s, const AtomSpec& atom) {
    const int32_t lhs = TermReg(s, atom.terms[0]);
    const int32_t rhs = TermReg(s, atom.terms[1]);
    if (!BuiltinBindsOutput(atom.builtin)) {
      Insn insn{.op = Insn::Op::kCompare};
      insn.b = static_cast<int32_t>(atom.builtin);
      insn.e = lhs;
      insn.f = rhs;
      insn.d = s->fail;
      FailJump(s, Emit(insn));
      return;
    }
    const LocalTerm& out = atom.terms[2];
    const bool binds = out.is_var && !s->bound[out.var];
    Insn insn{.op = binds ? Insn::Op::kArith : Insn::Op::kArithCheck};
    insn.b = static_cast<int32_t>(atom.builtin);
    insn.e = lhs;
    insn.f = rhs;
    insn.g = binds ? out.var : TermReg(s, out);
    insn.d = s->fail;
    FailJump(s, Emit(insn));
    if (binds) s->bound[out.var] = true;
  }

  void CompileNegation(SpjState* s, const AtomSpec& atom) {
    TupleDesc desc;
    desc.predicate = atom.predicate;
    desc.db = atom.source;
    for (const LocalTerm& t : atom.terms) desc.regs.push_back(TermReg(s, t));
    prog_.tuples.push_back(std::move(desc));
    Insn insn{.op = Insn::Op::kNotContains};
    insn.a = static_cast<int32_t>(prog_.tuples.size() - 1);
    insn.d = s->fail;
    FailJump(s, Emit(insn));
  }

  void CompileJoinAtom(SpjState* s, const AtomSpec& atom) {
    const int32_t iter = s->next_iter++;

    // Access path: first bound, index-supported column (static decision —
    // the speed advantage over the interpreter's per-execution planning).
    int32_t probe_col = -1;
    for (size_t col = 0; col < atom.terms.size(); ++col) {
      const LocalTerm& t = atom.terms[col];
      const bool is_bound = !t.is_var || s->bound[t.var];
      if (is_bound && stats_.HasIndex(atom.predicate, col)) {
        probe_col = static_cast<int32_t>(col);
        break;
      }
    }

    if (probe_col < 0 && atom.has_range() &&
        stats_.HasIndex(atom.predicate,
                        static_cast<size_t>(atom.range_col))) {
      // Range pushdown: lower the annotated bounds into registers and
      // let the VM decide probe-vs-scan at open time (kind, key extremes
      // and profitability are runtime properties). A missing side widens
      // to the Value domain edge; strictness travels as flags so the VM
      // closes the interval exactly like the tree evaluators.
      Insn open{.op = Insn::Op::kRangeOpen};
      open.a = iter;
      open.b = static_cast<int32_t>(atom.predicate);
      open.c = static_cast<int32_t>(atom.source);
      open.d = atom.range_col;
      open.e = BoundReg(s, atom.lower,
                        std::numeric_limits<int64_t>::min());
      open.f = BoundReg(s, atom.upper,
                        std::numeric_limits<int64_t>::max());
      open.g = (atom.lower.present() && atom.lower.strict ? 1 : 0) |
               (atom.upper.present() && atom.upper.strict ? 2 : 0);
      Emit(open);
    } else if (probe_col < 0) {
      Insn open{.op = Insn::Op::kScanOpen};
      open.a = iter;
      open.b = static_cast<int32_t>(atom.predicate);
      open.c = static_cast<int32_t>(atom.source);
      Emit(open);
    } else {
      const LocalTerm& key = atom.terms[probe_col];
      Insn open{.op = key.is_var ? Insn::Op::kProbeOpenReg
                                 : Insn::Op::kProbeOpenConst};
      open.a = iter;
      open.b = static_cast<int32_t>(atom.predicate);
      open.c = static_cast<int32_t>(atom.source);
      open.d = probe_col;
      if (key.is_var) {
        open.e = key.var;
      } else {
        open.imm = key.constant;
      }
      Emit(open);
    }

    Insn next{.op = Insn::Op::kNext};
    next.a = iter;
    next.d = s->fail;  // Exhausted: resume the enclosing loop (or exit).
    const size_t next_addr = Emit(next);
    FailJump(s, next_addr);
    s->fail = static_cast<int32_t>(next_addr);

    // Column checks and binds. The probed column is re-checked so the
    // unindexed degrade-to-scan path in the VM stays correct.
    for (size_t col = 0; col < atom.terms.size(); ++col) {
      const LocalTerm& t = atom.terms[col];
      if (!t.is_var) {
        Insn check{.op = Insn::Op::kCheckConst};
        check.a = iter;
        check.b = static_cast<int32_t>(col);
        check.imm = t.constant;
        check.d = s->fail;
        Emit(check);
      } else if (s->bound[t.var]) {
        Insn check{.op = Insn::Op::kCheckReg};
        check.a = iter;
        check.b = static_cast<int32_t>(col);
        check.e = t.var;
        check.d = s->fail;
        Emit(check);
      } else {
        Insn bind{.op = Insn::Op::kBindCol};
        bind.a = iter;
        bind.b = static_cast<int32_t>(col);
        bind.e = t.var;
        Emit(bind);
        s->bound[t.var] = true;
      }
    }
  }

  const optimizer::StatsSnapshot& stats_;
  CompileMode mode_;
  BytecodeProgram prog_;
  int32_t max_reg_ = 0;
  int32_t max_iter_ = 0;
};

class BytecodeUnit : public CompiledUnit {
 public:
  BytecodeUnit(std::unique_ptr<IROp> tree, BytecodeProgram program)
      : tree_(std::move(tree)), program_(std::move(program)) {}

  void Run(ir::ExecContext& ctx, ir::Interpreter& interp,
           ir::IROp& /*original*/) override {
    RunBytecode(program_, ctx, interp);
  }

  std::string Describe() const override {
    return "bytecode[" + std::to_string(program_.code.size()) + " insns]";
  }

 private:
  std::unique_ptr<IROp> tree_;  // Owns the nodes call_nodes points into.
  BytecodeProgram program_;
};

}  // namespace

BytecodeProgram CompileToBytecode(const ir::IROp& op,
                                  const optimizer::StatsSnapshot& stats,
                                  CompileMode mode) {
  Compiler compiler(stats, mode);
  return compiler.Compile(op);
}

util::Status BytecodeBackend::Compile(CompileRequest request,
                                      std::unique_ptr<CompiledUnit>* out) {
  CARAC_CHECK(request.subtree != nullptr);
  if (request.reorder) {
    optimizer::ReorderSubtree(request.stats, request.join_config,
                              request.subtree.get());
  }
  BytecodeProgram program =
      CompileToBytecode(*request.subtree, request.stats, request.mode);
  *out = std::make_unique<BytecodeUnit>(std::move(request.subtree),
                                        std::move(program));
  return util::Status::Ok();
}

}  // namespace carac::backends
