#include "harness/runner.h"

#include <algorithm>
#include <vector>

#include "util/timer.h"

namespace carac::harness {

Measurement MeasureOnce(const WorkloadFactory& factory,
                        const core::EngineConfig& config) {
  Measurement m;
  analysis::Workload workload = factory();
  core::Engine engine(workload.program.get(), config);
  util::Status status = engine.Prepare();
  if (!status.ok()) {
    m.ok = false;
    m.error = status.ToString();
    return m;
  }
  util::Timer timer;
  status = engine.Run();
  m.seconds = timer.ElapsedSeconds();
  if (!status.ok()) {
    m.ok = false;
    m.error = status.ToString();
    return m;
  }
  m.result_size = engine.ResultSize(workload.output);
  m.stats = engine.stats();
  return m;
}

Measurement MeasureMedian(const WorkloadFactory& factory,
                          const core::EngineConfig& config, int reps) {
  std::vector<Measurement> runs;
  runs.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    Measurement m = MeasureOnce(factory, config);
    if (!m.ok) return m;
    runs.push_back(std::move(m));
  }
  std::sort(runs.begin(), runs.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.seconds < b.seconds;
            });
  return runs[runs.size() / 2];
}

core::EngineConfig InterpretedConfig(bool use_indexes) {
  core::EngineConfig config;
  config.mode = core::EvalMode::kInterpreted;
  config.use_indexes = use_indexes;
  return config;
}

core::EngineConfig JitConfigOf(backends::BackendKind backend, bool async,
                               bool use_indexes,
                               core::Granularity granularity,
                               backends::CompileMode mode) {
  core::EngineConfig config;
  config.mode = core::EvalMode::kJit;
  config.use_indexes = use_indexes;
  config.jit.backend = backend;
  config.jit.async = async;
  config.jit.granularity = granularity;
  config.jit.mode = mode;
  return config;
}

}  // namespace carac::harness
