#include "harness/table.h"

#include <algorithm>
#include <cstdio>

namespace carac::harness {

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      const size_t pad = widths[c] - cell.size();
      if (c == 0) {
        out += cell + std::string(pad, ' ');
      } else {
        out += std::string(pad, ' ') + cell;
      }
      if (c + 1 < widths.size()) out += "  ";
    }
    out += "\n";
    return out;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds >= 100) {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  } else if (seconds >= 0.1) {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.5f", seconds);
  }
  return buf;
}

std::string FormatSpeedup(double speedup) {
  char buf[32];
  if (speedup >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0fx", speedup);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  }
  return buf;
}

}  // namespace carac::harness
