#ifndef CARAC_HARNESS_TABLE_H_
#define CARAC_HARNESS_TABLE_H_

#include <string>
#include <vector>

namespace carac::harness {

/// Aligned ASCII table printer for the bench harnesses: each bench binary
/// reproduces the rows/series of one paper table or figure and prints them
/// in this format so EXPERIMENTS.md can quote the output directly.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with per-column padding; first column left-aligned, the rest
  /// right-aligned (numbers).
  std::string Render() const;

  /// Render() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3", "0.0123", "1.23e-05"-style compact formatting.
std::string FormatSeconds(double seconds);
std::string FormatSpeedup(double speedup);

}  // namespace carac::harness

#endif  // CARAC_HARNESS_TABLE_H_
