#ifndef CARAC_HARNESS_RUNNER_H_
#define CARAC_HARNESS_RUNNER_H_

#include <functional>
#include <string>

#include "analysis/programs.h"
#include "core/engine.h"
#include "ir/exec_context.h"

namespace carac::harness {

/// Produces a fresh workload per measurement (facts regenerate
/// deterministically, so repetitions are identical).
using WorkloadFactory = std::function<analysis::Workload()>;

struct Measurement {
  double seconds = 0;         ///< Run() wall-clock (Prepare() excluded —
                              ///< AOT planning is an offline cost, §VI-C).
  size_t result_size = 0;     ///< Rows in the workload's output relation.
  ir::ExecStats stats;
  bool ok = true;
  std::string error;
};

/// Prepares and times one evaluation of `factory()` under `config`.
Measurement MeasureOnce(const WorkloadFactory& factory,
                        const core::EngineConfig& config);

/// Repeats MeasureOnce `reps` times and keeps the median run (the stats of
/// that run are returned). Reps are fresh engines — no warm state carries
/// over except the process-wide quotes source cache, which is exactly the
/// "warm compiler" the paper's steady-state JMH numbers reflect.
Measurement MeasureMedian(const WorkloadFactory& factory,
                          const core::EngineConfig& config, int reps);

/// Convenience EngineConfig builders for the named configurations used
/// across the benches.
core::EngineConfig InterpretedConfig(bool use_indexes);
core::EngineConfig JitConfigOf(backends::BackendKind backend, bool async,
                               bool use_indexes,
                               core::Granularity granularity,
                               backends::CompileMode mode);

}  // namespace carac::harness

#endif  // CARAC_HARNESS_RUNNER_H_
