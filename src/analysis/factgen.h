#ifndef CARAC_ANALYSIS_FACTGEN_H_
#define CARAC_ANALYSIS_FACTGEN_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace carac::analysis {

using Edge = std::pair<int64_t, int64_t>;

/// Deterministic synthetic fact generators. The paper evaluates on fact
/// sets we cannot redistribute (Graspan's httpd extraction, TASTy facts of
/// a private Scala program), so these generators produce edge sets with
/// the same *shape*: power-law out-degrees for program-analysis graphs,
/// chain-with-branches for control-flow graphs. The join orderer only
/// observes cardinalities and skew, which these match (see DESIGN.md §2).

/// Sparse directed graph over `num_vertices` with `num_edges` edges;
/// out-degrees follow a Zipf-like law with exponent `zipf_s` (sources are
/// skewed, destinations uniform). Self-loops allowed, duplicates dropped.
std::vector<Edge> GenerateSparseGraph(uint64_t seed, int64_t num_vertices,
                                      int64_t num_edges, double zipf_s = 1.2);

/// Control-flow-graph-shaped edges: a main chain of `length` nodes with
/// forward branch edges added with probability `branch_prob` per node
/// (branch targets jump ahead up to `max_jump` nodes).
std::vector<Edge> GenerateCfgEdges(uint64_t seed, int64_t length,
                                   double branch_prob, int64_t max_jump = 12);

/// Growth-ordered sparse DAG: vertices appear in id order, and each new
/// vertex v attaches one edge from a uniformly random earlier vertex
/// (u -> v), plus an extra such edge with probability `extra_edge_prob`.
/// The returned list is ordered by attachment time, so a SUFFIX of it is
/// exactly "the newest data" — the shape of an append-mostly serving
/// workload, where an update batch (or a fact-log tail) extends the
/// graph at its frontier instead of rewiring its interior. Used by the
/// persistence bench: the closure delta of a growth suffix stays
/// proportional to the suffix, unlike a random-order edge split whose
/// delta re-derives a super-linear share of the closure.
std::vector<Edge> GenerateGrowthGraph(uint64_t seed, int64_t num_vertices,
                                      double extra_edge_prob);

/// Graspan-shaped pointer-analysis input: Assign and Dereference edge sets
/// with `total_tuples` tuples split ~60/40, over a vertex universe sized
/// for a bounded transitive closure (the httpd CSPA sample shape).
struct CspaFacts {
  std::vector<Edge> assign;
  std::vector<Edge> dereference;
};
CspaFacts GenerateCspaFacts(uint64_t seed, int64_t total_tuples);

/// SListLib-shaped facts: a small linked-list library plus a driver that
/// serializes, computes, and deserializes (the paper's ~200-line input
/// Scala program). `scale` multiplies every component count.
struct SListLibFacts {
  std::vector<Edge> addr_of;  // (var, alloc site)
  std::vector<Edge> assign;   // (dst, src)
  std::vector<Edge> load;     // (dst, ptr)       dst = *ptr
  std::vector<Edge> store;    // (ptr, src)       *ptr = src
  /// (ret, func, arg): ret = func(arg). Functions are interned ids the
  /// workload builder maps to names ("serialize", "deserialize", ...).
  std::vector<std::array<int64_t, 3>> call_ret;
  int64_t num_funcs = 0;
  int64_t serialize_func = 0;    // Index of the "serialize" function.
  int64_t deserialize_func = 1;  // Index of the "deserialize" function.
};
SListLibFacts GenerateSListLibFacts(uint64_t seed, int64_t scale);

}  // namespace carac::analysis

#endif  // CARAC_ANALYSIS_FACTGEN_H_
