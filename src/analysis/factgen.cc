#include "analysis/factgen.h"

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace carac::analysis {

namespace {

/// Inserts unique edges until `target` are collected or attempts run out.
std::vector<Edge> UniqueEdges(util::Rng* rng, int64_t num_vertices,
                              int64_t target, double zipf_s) {
  std::set<Edge> edges;
  const int64_t max_attempts = target * 20;
  for (int64_t attempt = 0;
       attempt < max_attempts && static_cast<int64_t>(edges.size()) < target;
       ++attempt) {
    const auto src = static_cast<int64_t>(
        rng->NextZipf(static_cast<uint64_t>(num_vertices), zipf_s));
    const auto dst = static_cast<int64_t>(
        rng->NextBounded(static_cast<uint64_t>(num_vertices)));
    edges.emplace(src, dst);
  }
  return {edges.begin(), edges.end()};
}

}  // namespace

std::vector<Edge> GenerateSparseGraph(uint64_t seed, int64_t num_vertices,
                                      int64_t num_edges, double zipf_s) {
  util::Rng rng(seed);
  return UniqueEdges(&rng, num_vertices, num_edges, zipf_s);
}

std::vector<Edge> GenerateGrowthGraph(uint64_t seed, int64_t num_vertices,
                                      double extra_edge_prob) {
  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(
      static_cast<double>(num_vertices) * (1.0 + extra_edge_prob)));
  for (int64_t v = 1; v < num_vertices; ++v) {
    const auto u =
        static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(v)));
    edges.emplace_back(u, v);
    if (rng.NextBool(extra_edge_prob)) {
      const auto u2 =
          static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(v)));
      if (u2 != u) edges.emplace_back(u2, v);
    }
  }
  return edges;
}

std::vector<Edge> GenerateCfgEdges(uint64_t seed, int64_t length,
                                   double branch_prob, int64_t max_jump) {
  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(length));
  for (int64_t i = 0; i + 1 < length; ++i) {
    edges.emplace_back(i, i + 1);
    if (rng.NextBool(branch_prob)) {
      const int64_t jump = rng.NextInRange(2, max_jump);
      if (i + jump < length) edges.emplace_back(i, i + jump);
    }
  }
  return edges;
}

CspaFacts GenerateCspaFacts(uint64_t seed, int64_t total_tuples) {
  // Vertex universe scaled so the value-flow closure stays bounded (sparse
  // graph, average out-degree ~1.2 on the Assign component).
  const int64_t num_assign = (total_tuples * 3) / 5;
  const int64_t num_deref = total_tuples - num_assign;
  const int64_t num_vertices = std::max<int64_t>(16, (total_tuples * 4) / 5);
  CspaFacts facts;
  util::Rng rng(seed);
  facts.assign = UniqueEdges(&rng, num_vertices, num_assign, 1.2);
  facts.dereference = UniqueEdges(&rng, num_vertices, num_deref, 1.1);
  return facts;
}

SListLibFacts GenerateSListLibFacts(uint64_t seed, int64_t scale) {
  util::Rng rng(seed);
  SListLibFacts facts;

  // The shape mirrors the paper's SListLib driver: list cells are heap
  // objects threaded through next-pointers; the driver copies values
  // around, serializes the list through `serialize`, shuffles the result
  // through a couple of utility functions, then calls `deserialize`.
  const int64_t lists = 4 * scale;       // Linked lists.
  const int64_t cells = 12 * scale;      // Cells per list.
  const int64_t temps = 30 * scale;      // Driver temporaries.
  facts.num_funcs = 6;                   // serialize, deserialize, 4 utils.
  facts.serialize_func = 0;
  facts.deserialize_func = 1;

  int64_t next_var = 0;
  int64_t next_obj = 0;
  std::vector<int64_t> all_vars;

  // Exact (addr_of, store, load) and lower-bound (assign, call_ret)
  // population counts, so neither these vectors nor the relations they
  // bulk-load into grow mid-fill.
  facts.addr_of.reserve(static_cast<size_t>(lists * (1 + cells)));
  facts.store.reserve(static_cast<size_t>(lists * cells));
  facts.load.reserve(static_cast<size_t>(lists * cells));
  facts.assign.reserve(static_cast<size_t>(temps));
  facts.call_ret.reserve(static_cast<size_t>(3 * scale * 2));
  all_vars.reserve(static_cast<size_t>(lists * (1 + cells) + temps));

  for (int64_t l = 0; l < lists; ++l) {
    const int64_t head = next_var++;
    facts.addr_of.emplace_back(head, next_obj++);
    all_vars.push_back(head);
    int64_t prev = head;
    for (int64_t c = 0; c < cells; ++c) {
      const int64_t cell = next_var++;
      facts.addr_of.emplace_back(cell, next_obj++);
      facts.store.emplace_back(prev, cell);  // *prev = cell (next pointer).
      facts.load.emplace_back(cell, prev);   // Traversal reads.
      all_vars.push_back(cell);
      prev = cell;
    }
  }

  for (int64_t t = 0; t < temps; ++t) {
    const int64_t var = next_var++;
    const int64_t src =
        all_vars[rng.NextBounded(static_cast<uint64_t>(all_vars.size()))];
    facts.assign.emplace_back(var, src);
    all_vars.push_back(var);
  }

  // Call chains: r1 = serialize(x); r2 = util_i(r1); r3 = deserialize(r2).
  for (int64_t chain = 0; chain < 3 * scale; ++chain) {
    const int64_t x =
        all_vars[rng.NextBounded(static_cast<uint64_t>(all_vars.size()))];
    const int64_t r1 = next_var++;
    facts.call_ret.push_back({r1, facts.serialize_func, x});
    int64_t cur = r1;
    const int64_t hops = rng.NextInRange(0, 2);
    for (int64_t h = 0; h < hops; ++h) {
      const int64_t rn = next_var++;
      facts.call_ret.push_back({rn, 2 + rng.NextInRange(0, 3), cur});
      facts.assign.emplace_back(rn, cur);  // Utilities pass values through.
      cur = rn;
    }
    const int64_t r2 = next_var++;
    facts.call_ret.push_back({r2, facts.deserialize_func, cur});
    all_vars.push_back(r2);
  }

  return facts;
}

}  // namespace carac::analysis
