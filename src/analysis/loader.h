#ifndef CARAC_ANALYSIS_LOADER_H_
#define CARAC_ANALYSIS_LOADER_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace carac::analysis {

/// Loads tab/comma-separated facts into a relation (the format Graspan
/// and Soufflé fact files use): one tuple per line, columns separated by
/// '\t' or ','. Numeric tokens become integer values; anything else is
/// interned as a symbol. Lines starting with '#' and blank lines skip.
util::Status LoadFactsCsv(const std::string& path, datalog::Program* program,
                          datalog::PredicateId predicate);

/// Parses the same format into `out` WITHOUT inserting: string constants
/// are interned into `program`'s symbol table but the facts stay in the
/// caller's hands. This is the serve path — batches must flow through
/// Engine::AddFacts so the durability log sees them, not straight into
/// the DatabaseSet.
util::Status ReadFactsCsv(const std::string& path, datalog::Program* program,
                          datalog::PredicateId predicate,
                          std::vector<storage::Tuple>* out);

/// Writes a relation's Derived store as tab-separated lines (sorted).
util::Status WriteFactsCsv(const std::string& path,
                           const datalog::Program& program,
                           datalog::PredicateId predicate);

}  // namespace carac::analysis

#endif  // CARAC_ANALYSIS_LOADER_H_
