#ifndef CARAC_ANALYSIS_PROGRAMS_H_
#define CARAC_ANALYSIS_PROGRAMS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/factgen.h"
#include "datalog/ast.h"
#include "datalog/dsl.h"

namespace carac::analysis {

/// A fully constructed benchmark program: facts loaded, rules registered.
struct Workload {
  std::unique_ptr<datalog::Program> program;
  std::string name;
  /// The headline output relation (row count sanity-checked by tests).
  datalog::PredicateId output = 0;
  /// All declared relations by name, for examples and tests.
  std::unordered_map<std::string, datalog::PredicateId> relations;
};

/// The two input formulations of §VI-B: a body atom order tuned by hand
/// (tracking intermediate cardinalities) vs. a plausibly unlucky order (a
/// naive user), bounding the optimization headroom from both sides.
enum class RuleOrder { kHandOptimized, kUnoptimized };

const char* RuleOrderName(RuleOrder order);

// ---- Macrobenchmarks (program analyses) ----

/// Graspan's context-sensitive pointer analysis (Fig. 1 of the paper):
/// VFlow/VAlias/MAlias over Assign and Dereference facts.
struct CspaConfig {
  uint64_t seed = 42;
  int64_t total_tuples = 2000;  // "CSPA 20k" uses 20000.
};
Workload MakeCspa(const CspaConfig& config, RuleOrder order);

/// Graspan's context-sensitive dataflow analysis: only 2-way joins, so
/// there is a single formulation (the paper omits its "unoptimized" bar
/// for the same reason).
struct CsdaConfig {
  uint64_t seed = 42;
  int64_t length = 4000;
  double branch_prob = 0.25;
  double null_frac = 0.05;
};
Workload MakeCsda(const CsdaConfig& config);

/// Andersen's context/flow-insensitive points-to analysis (Doop-style)
/// over SListLib-shaped facts.
struct SListConfig {
  uint64_t seed = 7;
  int64_t scale = 4;
};
Workload MakeAndersen(const SListConfig& config, RuleOrder order);

/// The paper's custom Inverse-Functions ("wasted work") analysis: extends
/// value flow with InvFuns("deserialize","serialize") knowledge and
/// reports round-trips through inverse function pairs.
Workload MakeInverseFunctions(const SListConfig& config, RuleOrder order);

// ---- Microbenchmarks (general recursive queries) ----

/// Bounded Ackermann: Ack(m, n, r) for all values representable below
/// `bound` (bound=61 covers ack(3,3)=61).
Workload MakeAckermann(int64_t bound, RuleOrder order);

/// Fibonacci numbers up to index `n` via double recursion + arithmetic.
Workload MakeFibonacci(int64_t n, RuleOrder order);

/// Primes below `n` via trial division and stratified negation.
Workload MakePrimes(int64_t n, RuleOrder order);

// ---- Utility ----

/// Plain transitive closure over an edge list (quickstart example).
Workload MakeTransitiveClosure(const std::vector<Edge>& edges,
                               RuleOrder order);

}  // namespace carac::analysis

#endif  // CARAC_ANALYSIS_PROGRAMS_H_
