#include "analysis/loader.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "storage/symbol_table.h"
#include "util/file.h"
#include "util/parse.h"

namespace carac::analysis {

namespace {

bool IsInteger(const std::string& token) {
  if (token.empty()) return false;
  size_t i = token[0] == '-' ? 1 : 0;
  if (i == token.size()) return false;
  for (; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  return true;
}

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '\t' || c == ',') {
      tokens.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  tokens.push_back(current);
  return tokens;
}

}  // namespace

namespace {

/// Streaming core shared by LoadFactsCsv and ReadFactsCsv: two passes —
/// `on_count` receives the data-line count (pre-sizing), then `on_fact`
/// receives each parsed tuple in file order. Tuples never accumulate
/// here, so the bulk-load path keeps O(1) transient memory.
template <typename OnCount, typename OnFact>
util::Status ScanFactsCsv(const std::string& path, datalog::Program* program,
                          datalog::PredicateId predicate, OnCount on_count,
                          OnFact on_fact) {
  CARAC_RETURN_IF_ERROR(util::CheckNotDirectory(path));
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  const size_t arity = program->PredicateArity(predicate);
  std::string line;
  size_t data_lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') ++data_lines;
  }
  on_count(data_lines);
  in.clear();
  in.seekg(0);
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = SplitLine(line);
    if (tokens.size() != arity) {
      return util::Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": expected " +
          std::to_string(arity) + " columns, got " +
          std::to_string(tokens.size()));
    }
    storage::Tuple tuple;
    tuple.reserve(arity);
    for (const std::string& token : tokens) {
      int64_t value = 0;
      if (IsInteger(token)) {
        // IsInteger admits only sign+digits, so a strict-parse failure
        // here can only mean overflow.
        if (!util::ParseInt64(token, &value)) {
          return util::Status::InvalidArgument(
              path + ":" + std::to_string(line_no) +
              ": integer out of 64-bit range: " + token);
        }
        tuple.push_back(value);
      } else {
        tuple.push_back(program->Intern(token));
      }
    }
    on_fact(std::move(tuple));
  }
  return util::Status::Ok();
}

}  // namespace

util::Status LoadFactsCsv(const std::string& path, datalog::Program* program,
                          datalog::PredicateId predicate) {
  return ScanFactsCsv(
      path, program, predicate,
      [&](size_t lines) { program->ReserveFacts(predicate, lines); },
      [&](storage::Tuple tuple) {
        program->AddFact(predicate, std::move(tuple));
      });
}

util::Status ReadFactsCsv(const std::string& path, datalog::Program* program,
                          datalog::PredicateId predicate,
                          std::vector<storage::Tuple>* out) {
  return ScanFactsCsv(
      path, program, predicate,
      [&](size_t lines) { out->reserve(out->size() + lines); },
      [&](storage::Tuple tuple) { out->push_back(std::move(tuple)); });
}

util::Status WriteFactsCsv(const std::string& path,
                           const datalog::Program& program,
                           datalog::PredicateId predicate) {
  std::ofstream out(path);
  if (!out) return util::Status::Internal("cannot write " + path);
  const storage::Relation& rel =
      program.db().Get(predicate, storage::DbKind::kDerived);
  for (const storage::Tuple& tuple : rel.SortedRows()) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out << '\t';
      if (storage::SymbolTable::IsSymbol(tuple[i])) {
        out << program.db().symbols().Lookup(tuple[i]);
      } else {
        out << tuple[i];
      }
    }
    out << '\n';
  }
  return util::Status::Ok();
}

}  // namespace carac::analysis
