#include "analysis/programs.h"

#include <utility>

#include "util/rng.h"
#include "util/status.h"

namespace carac::analysis {

namespace {

using datalog::Dsl;
using datalog::RelationRef;
using datalog::VarRef;

Workload NewWorkload(std::string name) {
  Workload w;
  w.name = std::move(name);
  w.program = std::make_unique<datalog::Program>();
  return w;
}

RelationRef Declare(Workload* w, Dsl* dsl, const std::string& name,
                    size_t arity) {
  RelationRef rel = dsl->Relation(name, arity);
  w->relations[name] = rel.id();
  return rel;
}

}  // namespace

const char* RuleOrderName(RuleOrder order) {
  return order == RuleOrder::kHandOptimized ? "hand-optimized"
                                            : "unoptimized";
}

Workload MakeCspa(const CspaConfig& config, RuleOrder order) {
  Workload w = NewWorkload("CSPA");
  Dsl dsl(w.program.get());
  RelationRef assign = Declare(&w, &dsl, "Assign", 2);
  RelationRef deref = Declare(&w, &dsl, "Dereference", 2);
  RelationRef vflow = Declare(&w, &dsl, "VFlow", 2);
  RelationRef valias = Declare(&w, &dsl, "VAlias", 2);
  RelationRef malias = Declare(&w, &dsl, "MAlias", 2);
  w.output = valias.id();

  auto v0 = dsl.Var("v0");
  auto v1 = dsl.Var("v1");
  auto v2 = dsl.Var("v2");
  auto v3 = dsl.Var("v3");

  const bool hand = order == RuleOrder::kHandOptimized;

  // Rule set from Fig. 1(a). The "unoptimized" formulation keeps the
  // paper's listing order (which contains a cartesian product in the
  // 3-atom VAlias rule); the hand-optimized one chains shared variables.
  if (hand) {
    vflow(v1, v2) <<= assign(v1, v3) & malias(v3, v2);
    vflow(v1, v2) <<= vflow(v1, v3) & vflow(v3, v2);
    malias(v1, v0) <<= valias(v2, v3) & deref(v3, v0) & deref(v2, v1);
    valias(v1, v2) <<= vflow(v3, v1) & vflow(v3, v2);
    valias(v1, v2) <<= malias(v3, v0) & vflow(v3, v1) & vflow(v0, v2);
  } else {
    vflow(v1, v2) <<= malias(v3, v2) & assign(v1, v3);
    vflow(v1, v2) <<= vflow(v3, v2) & vflow(v1, v3);
    malias(v1, v0) <<= valias(v2, v3) & deref(v3, v0) & deref(v2, v1);
    valias(v1, v2) <<= vflow(v3, v2) & vflow(v3, v1);
    // Cartesian product between the first two atoms, as listed in Fig. 1.
    valias(v1, v2) <<= vflow(v0, v2) & vflow(v3, v1) & malias(v3, v0);
  }
  vflow(v2, v1) <<= assign(v2, v1);
  vflow(v1, v1) <<= assign(v1, v2);
  vflow(v1, v1) <<= assign(v2, v1);
  malias(v1, v1) <<= assign(v2, v1);
  malias(v1, v1) <<= assign(v1, v2);

  const CspaFacts facts =
      GenerateCspaFacts(config.seed, config.total_tuples);
  assign.Reserve(facts.assign.size());
  deref.Reserve(facts.dereference.size());
  for (const Edge& e : facts.assign) assign.Fact(e.first, e.second);
  for (const Edge& e : facts.dereference) deref.Fact(e.first, e.second);
  return w;
}

Workload MakeCsda(const CsdaConfig& config) {
  Workload w = NewWorkload("CSDA");
  Dsl dsl(w.program.get());
  RelationRef flow_edge = Declare(&w, &dsl, "FlowEdge", 2);
  RelationRef null_edge = Declare(&w, &dsl, "NullEdge", 2);
  RelationRef null_flow = Declare(&w, &dsl, "NullFlow", 2);
  w.output = null_flow.id();

  auto x = dsl.Var("x");
  auto y = dsl.Var("y");
  auto z = dsl.Var("z");

  null_flow(x, y) <<= null_edge(x, y);
  null_flow(x, z) <<= null_flow(x, y) & flow_edge(y, z);

  const std::vector<Edge> cfg =
      GenerateCfgEdges(config.seed, config.length, config.branch_prob);
  util::Rng rng(config.seed ^ 0x5eedULL);
  flow_edge.Reserve(cfg.size());
  for (const Edge& e : cfg) {
    flow_edge.Fact(e.first, e.second);
    if (rng.NextBool(config.null_frac)) null_edge.Fact(e.first, e.second);
  }
  return w;
}

namespace {

/// Declares the Andersen points-to rule set over the given relations.
void AndersenRules(Dsl* dsl, RelationRef addr_of, RelationRef assign,
                   RelationRef load, RelationRef store, RelationRef pt,
                   bool hand) {
  auto v = dsl->Var("v");
  auto u = dsl->Var("u");
  auto p = dsl->Var("p");
  auto a = dsl->Var("a");
  auto o = dsl->Var("o");

  pt(v, o) <<= addr_of(v, o);
  if (hand) {
    pt(v, o) <<= assign(v, u) & pt(u, o);
    pt(v, o) <<= load(v, p) & pt(p, a) & pt(a, o);
    pt(a, o) <<= store(p, u) & pt(p, a) & pt(u, o);
  } else {
    pt(v, o) <<= pt(u, o) & assign(v, u);
    // Cartesian product between the two pt atoms before load binds them.
    pt(v, o) <<= pt(p, a) & pt(a, o) & load(v, p);
    pt(a, o) <<= pt(u, o) & pt(p, a) & store(p, u);
  }
}

void LoadSListFacts(const SListLibFacts& facts, datalog::Program* program,
                    RelationRef addr_of, RelationRef assign, RelationRef load,
                    RelationRef store) {
  (void)program;
  addr_of.Reserve(facts.addr_of.size());
  assign.Reserve(facts.assign.size());
  load.Reserve(facts.load.size());
  store.Reserve(facts.store.size());
  for (const Edge& e : facts.addr_of) addr_of.Fact(e.first, e.second);
  for (const Edge& e : facts.assign) assign.Fact(e.first, e.second);
  for (const Edge& e : facts.load) load.Fact(e.first, e.second);
  for (const Edge& e : facts.store) store.Fact(e.first, e.second);
}

const char* kFuncNames[] = {"serialize",  "deserialize", "map",
                            "filter",     "reverse",     "checksum"};

}  // namespace

Workload MakeAndersen(const SListConfig& config, RuleOrder order) {
  Workload w = NewWorkload("Andersen");
  Dsl dsl(w.program.get());
  RelationRef addr_of = Declare(&w, &dsl, "AddrOf", 2);
  RelationRef assign = Declare(&w, &dsl, "Assign", 2);
  RelationRef load = Declare(&w, &dsl, "Load", 2);
  RelationRef store = Declare(&w, &dsl, "Store", 2);
  RelationRef pt = Declare(&w, &dsl, "PointsTo", 2);
  w.output = pt.id();

  AndersenRules(&dsl, addr_of, assign, load, store, pt,
                order == RuleOrder::kHandOptimized);
  const SListLibFacts facts = GenerateSListLibFacts(config.seed, config.scale);
  LoadSListFacts(facts, w.program.get(), addr_of, assign, load, store);
  return w;
}

Workload MakeInverseFunctions(const SListConfig& config, RuleOrder order) {
  Workload w = NewWorkload("InvFuns");
  Dsl dsl(w.program.get());
  RelationRef addr_of = Declare(&w, &dsl, "AddrOf", 2);
  RelationRef assign = Declare(&w, &dsl, "Assign", 2);
  RelationRef load = Declare(&w, &dsl, "Load", 2);
  RelationRef store = Declare(&w, &dsl, "Store", 2);
  RelationRef pt = Declare(&w, &dsl, "PointsTo", 2);
  RelationRef call_ret = Declare(&w, &dsl, "CallRet", 3);  // (ret, f, arg)
  RelationRef inv = Declare(&w, &dsl, "InvFuns", 2);
  RelationRef flow = Declare(&w, &dsl, "Flow", 2);  // Value flow src -> dst.
  RelationRef wasted = Declare(&w, &dsl, "Wasted", 2);
  RelationRef report = Declare(&w, &dsl, "Report", 3);
  w.output = wasted.id();

  const bool hand = order == RuleOrder::kHandOptimized;
  AndersenRules(&dsl, addr_of, assign, load, store, pt, hand);

  auto x = dsl.Var("x");
  auto y = dsl.Var("y");
  auto z = dsl.Var("z");
  auto s = dsl.Var("s");
  auto t = dsl.Var("t");
  auto f = dsl.Var("f");
  auto g = dsl.Var("g");
  auto u = dsl.Var("u");
  auto o = dsl.Var("o");

  flow(y, x) <<= assign(x, y);
  flow(x, z) <<= flow(x, y) & flow(y, z);

  // "Wasted work": a value x flows through f, reaches a call of g, and
  // (g, f) are declared inverse — the round-trip can be elided.
  if (hand) {
    wasted(x, y) <<= inv(g, f) & call_ret(s, f, x) & flow(s, t) &
                     call_ret(y, g, t);
    report(x, y, o) <<= wasted(x, y) & flow(y, u) & pt(u, o);
  } else {
    wasted(x, y) <<= flow(s, t) & call_ret(y, g, t) & call_ret(s, f, x) &
                     inv(g, f);
    report(x, y, o) <<= pt(u, o) & flow(y, u) & wasted(x, y);
  }

  const SListLibFacts facts = GenerateSListLibFacts(config.seed, config.scale);
  LoadSListFacts(facts, w.program.get(), addr_of, assign, load, store);
  for (const auto& cr : facts.call_ret) {
    call_ret.Fact(cr[0], kFuncNames[cr[1] % 6], cr[2]);
  }
  inv.Fact("deserialize", "serialize");
  return w;
}

Workload MakeAckermann(int64_t bound, RuleOrder order) {
  Workload w = NewWorkload("Ackermann");
  Dsl dsl(w.program.get());
  RelationRef succ = Declare(&w, &dsl, "Succ", 2);
  RelationRef ack = Declare(&w, &dsl, "Ack", 3);
  w.output = ack.id();

  auto m = dsl.Var("m");
  auto n = dsl.Var("n");
  auto r = dsl.Var("r");
  auto m0 = dsl.Var("m0");
  auto n0 = dsl.Var("n0");
  auto t = dsl.Var("t");

  ack(0, n, r) <<= succ(n, r);
  // Under semi-naive evaluation the recursive Ack atoms carry the small
  // deltas, so the hand-tuned order leads with them; the unlucky order
  // leads with the full Succ scans, recomputing the cross product of the
  // successor table against every delta.
  if (order == RuleOrder::kHandOptimized) {
    ack(m, 0, r) <<= ack(m0, 1, r) & succ(m0, m);
    ack(m, n, r) <<= ack(m0, t, r) & ack(m, n0, t) & succ(n0, n) &
                     succ(m0, m);
  } else {
    ack(m, 0, r) <<= succ(m0, m) & ack(m0, 1, r);
    ack(m, n, r) <<= succ(n0, n) & succ(m0, m) & ack(m, n0, t) &
                     ack(m0, t, r);
  }

  succ.Reserve(static_cast<size_t>(bound));
  for (int64_t i = 0; i < bound; ++i) succ.Fact(i, i + 1);
  return w;
}

Workload MakeFibonacci(int64_t n, RuleOrder order) {
  Workload w = NewWorkload("Fibonacci");
  Dsl dsl(w.program.get());
  RelationRef succ = Declare(&w, &dsl, "Succ", 2);
  RelationRef fib = Declare(&w, &dsl, "Fib", 2);
  w.output = fib.id();

  auto i = dsl.Var("i");
  auto i1 = dsl.Var("i1");
  auto i2 = dsl.Var("i2");
  auto a = dsl.Var("a");
  auto b = dsl.Var("b");
  auto r = dsl.Var("r");

  // As with Ackermann, the delta-carrying Fib atoms should lead; the
  // unlucky order walks the whole Succ chain first every iteration.
  if (order == RuleOrder::kHandOptimized) {
    fib(i, r) <<= fib(i1, a) & fib(i2, b) & succ(i2, i1) & succ(i1, i) &
                  dsl.Add(a, b, r);
  } else {
    fib(i, r) <<= succ(i2, i1) & succ(i1, i) & fib(i1, a) & fib(i2, b) &
                  dsl.Add(a, b, r);
  }

  fib.Fact(0, 0);
  fib.Fact(1, 1);
  succ.Reserve(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) succ.Fact(k, k + 1);
  return w;
}

Workload MakePrimes(int64_t n, RuleOrder order) {
  Workload w = NewWorkload("Primes");
  Dsl dsl(w.program.get());
  RelationRef num = Declare(&w, &dsl, "Num", 1);
  RelationRef composite = Declare(&w, &dsl, "Composite", 1);
  RelationRef prime = Declare(&w, &dsl, "Prime", 1);
  w.output = prime.id();

  auto c = dsl.Var("c");
  auto d = dsl.Var("d");
  auto r = dsl.Var("r");
  auto p = dsl.Var("p");

  if (order == RuleOrder::kHandOptimized) {
    composite(c) <<= num(d) & num(c) & dsl.Lt(d, c) & dsl.Mod(c, d, r) &
                     dsl.Eq(r, 0);
  } else {
    composite(c) <<= num(c) & num(d) & dsl.Lt(d, c) & dsl.Mod(c, d, r) &
                     dsl.Eq(r, 0);
  }
  prime(p) <<= num(p) & !composite(p);

  num.Reserve(n > 2 ? static_cast<size_t>(n - 2) : 0);
  for (int64_t v = 2; v < n; ++v) num.Fact(v);
  return w;
}

Workload MakeTransitiveClosure(const std::vector<Edge>& edges,
                               RuleOrder order) {
  Workload w = NewWorkload("TransitiveClosure");
  Dsl dsl(w.program.get());
  RelationRef edge = Declare(&w, &dsl, "Edge", 2);
  RelationRef path = Declare(&w, &dsl, "Path", 2);
  w.output = path.id();

  auto x = dsl.Var("x");
  auto y = dsl.Var("y");
  auto z = dsl.Var("z");

  edge.Reserve(edges.size());
  path(x, y) <<= edge(x, y);
  if (order == RuleOrder::kHandOptimized) {
    path(x, z) <<= path(x, y) & edge(y, z);
  } else {
    path(x, z) <<= edge(y, z) & path(x, y);
  }

  for (const Edge& e : edges) edge.Fact(e.first, e.second);
  return w;
}

}  // namespace carac::analysis
