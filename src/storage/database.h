#ifndef CARAC_STORAGE_DATABASE_H_
#define CARAC_STORAGE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/relation.h"
#include "storage/symbol_table.h"

namespace carac::storage {

/// Dense id of a relation inside a DatabaseSet.
using RelationId = uint32_t;

/// Which copy of a relation an operator reads or writes (paper §V-D):
///   Derived    — all facts discovered so far (plus EDB facts),
///   DeltaKnown — read-only facts discovered in the previous iteration,
///   DeltaNew   — write-only facts discovered in the current iteration.
enum class DbKind : uint8_t { kDerived = 0, kDeltaKnown = 1, kDeltaNew = 2 };

const char* DbKindName(DbKind kind);

/// Owns the three stores of every relation plus the symbol table. This is
/// the paper's pluggable "relational layer": read/write access, clear,
/// swap and diff, with the relational operators implemented on top by the
/// interpreter and the compiled backends.
class DatabaseSet {
 public:
  DatabaseSet() = default;
  DatabaseSet(const DatabaseSet&) = delete;
  DatabaseSet& operator=(const DatabaseSet&) = delete;

  /// Registers a relation; ids are dense and returned in creation order.
  RelationId AddRelation(const std::string& name, size_t arity);

  size_t NumRelations() const { return stores_.size(); }
  const std::string& RelationName(RelationId id) const;
  size_t RelationArity(RelationId id) const;

  Relation& Get(RelationId id, DbKind kind);
  const Relation& Get(RelationId id, DbKind kind) const;

  /// When disabled, DeclareIndex becomes a no-op: probes fall back to
  /// filtered scans. Reproduces the paper's "Unindexed" configurations.
  void SetIndexingEnabled(bool enabled) { indexing_enabled_ = enabled; }
  bool indexing_enabled() const { return indexing_enabled_; }

  /// Organization used by subsequent DeclareIndex calls that have no
  /// per-column override (hash by default).
  void SetDefaultIndexKind(IndexKind kind) { index_kind_ = kind; }
  IndexKind default_index_kind() const { return index_kind_; }

  /// Pins the organization of the index on (`id`, `column`), overriding
  /// the default kind for subsequent DeclareIndex(id, column) calls. The
  /// optimizer's auto policy and DSL index hints register through here
  /// before lowering declares the rule indexes.
  void SetIndexKindOverride(RelationId id, size_t column, IndexKind kind);

  /// Declares an index on `column` of all three stores of `id`, using
  /// the per-column override if one was set, else the default kind.
  void DeclareIndex(RelationId id, size_t column);

  /// Declares an index on `column` of all three stores of `id` with an
  /// explicit organization.
  void DeclareIndex(RelationId id, size_t column, IndexKind kind);

  /// Re-declares, replacing an existing declaration's kind on all three
  /// stores (snapshot restore: the persisted kind is authoritative).
  void RedeclareIndex(RelationId id, size_t column, IndexKind kind);

  /// Inserts an EDB (or precomputed) fact into Derived; returns true if
  /// new. InsertFact is the ONLY entry point that marks a tuple as EDB:
  /// the evaluator writes derived facts through Get(...).Insert directly,
  /// so the per-relation EDB row list stays exact — it is what stratum
  /// recompute restores after clearing a relation.
  bool InsertFact(RelationId id, Tuple tuple);

  /// Pre-sizes the Derived arena and hash table of `id` for `rows` facts
  /// (bulk-load support; see Relation::Reserve).
  void Reserve(RelationId id, size_t rows);

  /// End-of-iteration maintenance for the relations of one stratum
  /// (SwapClearOp, §V-B1): clears the old DeltaKnown, swaps DeltaKnown and
  /// DeltaNew, then merges the new DeltaKnown into Derived so that during
  /// the next iteration DeltaKnown is a subset of Derived.
  void SwapClearMerge(const std::vector<RelationId>& relations);

  /// The `diff` termination test: true if any DeltaKnown still has facts.
  bool AnyDeltaKnownNonEmpty(const std::vector<RelationId>& relations) const;

  // ---- Epoch bookkeeping (incremental evaluation) ----
  //
  // An update epoch is: append facts to Derived stores, then bring every
  // IDB relation back to fixpoint paying cost proportional to the delta.
  // The arena layout makes the delta cheap to name: relations are
  // append-only with dense RowIds, so "this epoch's new facts" is the
  // Derived row range past the per-relation watermark.

  /// Monotone epoch counter; advanced once per completed evaluation
  /// (full run or update epoch).
  uint64_t epoch() const { return epoch_; }

  /// True if `id`'s Derived store gained rows since the last epoch
  /// boundary.
  bool ChangedSinceWatermark(RelationId id) const;

  /// Clears both delta stores of `id` (dropping any residue the previous
  /// evaluation left in DeltaKnown), then seeds DeltaKnown with the
  /// Derived rows appended past the epoch watermark. Returns the number
  /// of rows seeded.
  size_t SeedDeltaFromWatermark(RelationId id);

  /// Ends the current epoch: advances every Derived watermark to its
  /// current row count and increments the epoch counter.
  void AdvanceEpoch();

  /// Drops Derived and both deltas of `id` and re-inserts its EDB facts
  /// (the tuples recorded by InsertFact) — the stratum-recompute reset.
  /// Derived facts of the relation are lost by design; EDB facts survive
  /// even when they were appended after derived rows in the arena.
  void ResetToEdbFacts(RelationId id);

  /// Unloads `id` completely: all three stores and the EDB bookkeeping.
  /// Unlike the capacity-keeping Clear() the evaluator uses on deltas,
  /// this is a full logical delete (test/REPL support for reloading a
  /// relation's fact set).
  void ClearFacts(RelationId id);

  /// Clears Derived and both deltas of every relation (test support).
  void ClearAll();

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // ---- Durable snapshots (implemented in storage/snapshot.cc) ----
  //
  // A snapshot serializes the full logical state of the set — every
  // Derived arena verbatim (insertion order and hence RowIds preserved),
  // the EDB row bookkeeping, the per-relation epoch watermarks, the
  // interned-symbol table and the epoch counter — under a versioned
  // header with per-section checksums. Delta stores are NOT persisted:
  // at a closed epoch their contents are dead (the next epoch re-seeds
  // them from the watermarks).

  /// Writes a snapshot of the current state to `path` (atomically: a
  /// temp file in the same directory is renamed over `path` on success).
  util::Status SaveSnapshot(const std::string& path) const;

  /// Replaces this set's state with a snapshot previously written by
  /// SaveSnapshot. The set must either be empty (relations are
  /// registered from the snapshot) or already hold the same schema —
  /// relation count, names and arities in registration order (the usual
  /// case: the program source was re-parsed before restoring). Dedup
  /// hash tables and declared column indexes are rebuilt in memory;
  /// corruption anywhere (header, symbols, any relation section) fails
  /// with a diagnostic Status and leaves partially loaded relations
  /// overwritten — callers treat a failed open as a discarded set.
  util::Status OpenSnapshot(const std::string& path);

 private:
  struct Store {
    std::unique_ptr<Relation> derived;
    std::unique_ptr<Relation> delta_known;
    std::unique_ptr<Relation> delta_new;
  };

  std::vector<Store> stores_;
  /// Per relation: Derived RowIds inserted via InsertFact (EDB facts).
  /// RowIds are stable in the append-only arena, so an entry stays valid
  /// until the relation is cleared — which only ResetToEdbFacts /
  /// ClearFacts (which maintain it) and ClearAll (which drops it) do to
  /// Derived. Kept OUT of Store: Get() resolves a Store per emission on
  /// the evaluator's hot path, and widening that array's stride past one
  /// cache line cost a measured ~20% on emission-heavy interpreted runs
  /// (CSPA-unoptimized A/B).
  std::vector<std::vector<RowId>> edb_rows_;
  SymbolTable symbols_;
  uint64_t epoch_ = 0;
  bool indexing_enabled_ = true;
  IndexKind index_kind_ = IndexKind::kHash;
  /// (relation, column) -> pinned organization; consulted by the
  /// two-argument DeclareIndex. Small (a handful of declared indexes per
  /// program), so an ordered map is plenty.
  std::map<std::pair<RelationId, size_t>, IndexKind> index_kind_overrides_;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_DATABASE_H_
