#ifndef CARAC_STORAGE_DATABASE_H_
#define CARAC_STORAGE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "storage/symbol_table.h"

namespace carac::storage {

/// Dense id of a relation inside a DatabaseSet.
using RelationId = uint32_t;

/// Which copy of a relation an operator reads or writes (paper §V-D):
///   Derived    — all facts discovered so far (plus EDB facts),
///   DeltaKnown — read-only facts discovered in the previous iteration,
///   DeltaNew   — write-only facts discovered in the current iteration.
enum class DbKind : uint8_t { kDerived = 0, kDeltaKnown = 1, kDeltaNew = 2 };

const char* DbKindName(DbKind kind);

/// Owns the three stores of every relation plus the symbol table. This is
/// the paper's pluggable "relational layer": read/write access, clear,
/// swap and diff, with the relational operators implemented on top by the
/// interpreter and the compiled backends.
class DatabaseSet {
 public:
  DatabaseSet() = default;
  DatabaseSet(const DatabaseSet&) = delete;
  DatabaseSet& operator=(const DatabaseSet&) = delete;

  /// Registers a relation; ids are dense and returned in creation order.
  RelationId AddRelation(const std::string& name, size_t arity);

  size_t NumRelations() const { return stores_.size(); }
  const std::string& RelationName(RelationId id) const;
  size_t RelationArity(RelationId id) const;

  Relation& Get(RelationId id, DbKind kind);
  const Relation& Get(RelationId id, DbKind kind) const;

  /// When disabled, DeclareIndex becomes a no-op: probes fall back to
  /// filtered scans. Reproduces the paper's "Unindexed" configurations.
  void SetIndexingEnabled(bool enabled) { indexing_enabled_ = enabled; }
  bool indexing_enabled() const { return indexing_enabled_; }

  /// Organization used by subsequent DeclareIndex calls (hash by default;
  /// kSorted is the Soufflé-style ordered-index extension).
  void SetDefaultIndexKind(IndexKind kind) { index_kind_ = kind; }
  IndexKind default_index_kind() const { return index_kind_; }

  /// Declares an index on `column` of all three stores of `id`, using the
  /// default index kind.
  void DeclareIndex(RelationId id, size_t column);

  /// Inserts an EDB (or precomputed) fact into Derived; returns true if new.
  bool InsertFact(RelationId id, Tuple tuple);

  /// Pre-sizes the Derived arena and hash table of `id` for `rows` facts
  /// (bulk-load support; see Relation::Reserve).
  void Reserve(RelationId id, size_t rows);

  /// End-of-iteration maintenance for the relations of one stratum
  /// (SwapClearOp, §V-B1): clears the old DeltaKnown, swaps DeltaKnown and
  /// DeltaNew, then merges the new DeltaKnown into Derived so that during
  /// the next iteration DeltaKnown is a subset of Derived.
  void SwapClearMerge(const std::vector<RelationId>& relations);

  /// The `diff` termination test: true if any DeltaKnown still has facts.
  bool AnyDeltaKnownNonEmpty(const std::vector<RelationId>& relations) const;

  /// Clears Derived and both deltas of every relation (test support).
  void ClearAll();

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

 private:
  struct Store {
    std::unique_ptr<Relation> derived;
    std::unique_ptr<Relation> delta_known;
    std::unique_ptr<Relation> delta_new;
  };

  std::vector<Store> stores_;
  SymbolTable symbols_;
  bool indexing_enabled_ = true;
  IndexKind index_kind_ = IndexKind::kHash;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_DATABASE_H_
