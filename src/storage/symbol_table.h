#ifndef CARAC_STORAGE_SYMBOL_TABLE_H_
#define CARAC_STORAGE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace carac::storage {

/// First value id used for interned strings. Values below this threshold
/// are plain integers that represent themselves; values at or above it are
/// symbol ids. This keeps tuples fixed-width 64-bit while supporting both
/// the integer-heavy program-analysis workloads (CSPA/CSDA encode vertices
/// as ints) and string constants (e.g. InvFuns("deserialize","serialize")).
inline constexpr int64_t kSymbolBase = int64_t{1} << 40;

/// Interns strings to dense ids in [kSymbolBase, kSymbolBase + count).
/// Not thread-safe; facts are loaded single-threaded before evaluation.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `text`, interning it on first use.
  int64_t Intern(std::string_view text);

  /// Returns the text for a symbol id. Aborts if `id` is not a symbol id
  /// produced by this table.
  const std::string& Lookup(int64_t id) const;

  /// True if `id` falls in the interned-symbol range.
  static bool IsSymbol(int64_t id) { return id >= kSymbolBase; }

  size_t size() const { return symbols_.size(); }

  /// The interned strings in id order (symbol i has id kSymbolBase + i).
  /// Snapshot/serving code copies this to pin a consistent decode table;
  /// the reference itself is invalidated by the next Intern().
  const std::vector<std::string>& entries() const { return symbols_; }

  /// Replaces the table's contents (snapshot load): symbol i of `symbols`
  /// gets id kSymbolBase + i, reproducing the interning order of the run
  /// that saved the snapshot — tuples serialized with symbol ids stay
  /// valid verbatim.
  void Restore(std::vector<std::string> symbols);

 private:
  std::vector<std::string> symbols_;
  std::unordered_map<std::string, int64_t> ids_;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_SYMBOL_TABLE_H_
