#include "storage/tuple.h"

#include <string>

namespace carac::storage {

std::string TupleToString(TupleView t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(t[i]);
  }
  out += ")";
  return out;
}

}  // namespace carac::storage
