#include "storage/symbol_table.h"

#include "util/status.h"

namespace carac::storage {

int64_t SymbolTable::Intern(std::string_view text) {
  auto it = ids_.find(std::string(text));
  if (it != ids_.end()) return it->second;
  const int64_t id = kSymbolBase + static_cast<int64_t>(symbols_.size());
  symbols_.emplace_back(text);
  ids_.emplace(symbols_.back(), id);
  return id;
}

const std::string& SymbolTable::Lookup(int64_t id) const {
  CARAC_CHECK(IsSymbol(id));
  const size_t index = static_cast<size_t>(id - kSymbolBase);
  CARAC_CHECK(index < symbols_.size());
  return symbols_[index];
}

}  // namespace carac::storage
