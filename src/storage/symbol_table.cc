#include "storage/symbol_table.h"

#include "util/status.h"

namespace carac::storage {

int64_t SymbolTable::Intern(std::string_view text) {
  auto it = ids_.find(std::string(text));
  if (it != ids_.end()) return it->second;
  const int64_t id = kSymbolBase + static_cast<int64_t>(symbols_.size());
  symbols_.emplace_back(text);
  ids_.emplace(symbols_.back(), id);
  return id;
}

void SymbolTable::Restore(std::vector<std::string> symbols) {
  symbols_ = std::move(symbols);
  ids_.clear();
  ids_.reserve(symbols_.size());
  for (size_t i = 0; i < symbols_.size(); ++i) {
    ids_.emplace(symbols_[i], kSymbolBase + static_cast<int64_t>(i));
  }
}

const std::string& SymbolTable::Lookup(int64_t id) const {
  CARAC_CHECK(IsSymbol(id));
  const size_t index = static_cast<size_t>(id - kSymbolBase);
  CARAC_CHECK(index < symbols_.size());
  return symbols_[index];
}

}  // namespace carac::storage
