#ifndef CARAC_STORAGE_FACTLOG_H_
#define CARAC_STORAGE_FACTLOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace carac::storage {

/// Append-only durability log of the fact batches applied between two
/// snapshots. Recovery = load the latest snapshot, then replay the log
/// tail through the normal evaluation path (Engine::Update), paying
/// O(delta) instead of O(database).
///
/// All integers little-endian. Layout (version 1):
///
///   [file header]  magic "CARACFLG" (8 bytes), version u32, reserved u32
///   [record]*      tag u8, payload_len u32, payload bytes,
///                  checksum u64 (FNV-1a over tag + payload_len + payload)
///
/// Record payloads by tag:
///   kBatch (1)     relation u32, arity u32, count u32,
///                  count * arity values (u64 each) — one AddFacts batch
///   kSymbols (2)   start_index u64, count u32, then count strings
///                  (u32 length + bytes): symbols interned since the last
///                  symbol record, so replay reproduces identical ids
///   kCommit (3)    epoch u64 — seals every batch/symbol record since
///                  the previous commit into one atomic epoch
///
/// Replay applies only sealed epochs: a tail with no commit record (the
/// crash case) is discarded, never half-applied. A record cut short by
/// EOF is a torn tail (normal crash debris — replay succeeds with the
/// committed prefix and reports where to truncate); a record that is
/// fully present but fails its checksum is corruption and fails replay
/// with a diagnostic Status.
///
/// Version policy: same as the snapshot format (storage/snapshot.h) —
/// any layout change bumps kFactLogFormatVersion and readers reject
/// versions they were not built for.
class FactLog {
 public:
  inline static constexpr uint32_t kFactLogFormatVersion = 1;

  ~FactLog();
  FactLog(const FactLog&) = delete;
  FactLog& operator=(const FactLog&) = delete;

  /// Opens `path` for appending, creating it (with a file header) when
  /// absent or empty. An existing file is scanned first (checksums
  /// verified, payloads NOT decoded): a corrupt log is refused (never
  /// extended), and a torn tail — crash debris past the last committed
  /// epoch — is truncated away before the first append, so new records
  /// always extend a clean committed prefix. `last_committed_epoch`,
  /// when non-null, receives the epoch of the log's final commit record
  /// (0 for a fresh log) — callers refuse to append epochs at or below
  /// it (an engine that skipped recovery would otherwise seal commits
  /// that replay then skips, silently dropping acknowledged batches).
  static util::Status OpenForAppend(const std::string& path,
                                    std::unique_ptr<FactLog>* out,
                                    uint64_t* last_committed_epoch = nullptr);

  /// Appends one AddFacts batch (already validated by the engine).
  util::Status AppendBatch(RelationId relation, size_t arity,
                           const std::vector<Tuple>& facts);

  /// Appends the symbol-table suffix [start_index, start_index + n):
  /// strings interned since the last symbol record.
  util::Status AppendSymbols(uint64_t start_index,
                             const std::vector<std::string_view>& symbols);

  /// Seals the records appended since the last commit into `epoch` and
  /// flushes to the OS. Every closed evaluation epoch commits — empty
  /// ones included — so replay reproduces the epoch counter exactly.
  util::Status Commit(uint64_t epoch);

  // ---- Recovery ----

  struct ReplayBatch {
    RelationId relation = 0;
    std::vector<Tuple> facts;
  };
  struct ReplayEpoch {
    uint64_t epoch = 0;
    /// (symbol id index, text) pairs to re-intern before the batches.
    std::vector<std::pair<uint64_t, std::string>> symbols;
    std::vector<ReplayBatch> batches;
    /// File offset one past this epoch's commit record.
    uint64_t end_offset = 0;
  };
  struct ReplayResult {
    std::vector<ReplayEpoch> epochs;
    /// Offset one past the last sealed epoch: truncate the file here
    /// before appending again, so new records never follow torn bytes.
    uint64_t committed_bytes = 0;
    /// True when bytes past committed_bytes were discarded (torn tail).
    bool torn_tail = false;
  };

  /// Decodes the sealed epochs of the log at `path`. Returns NotFound
  /// when the file does not exist, a diagnostic Status on corruption
  /// (checksum mismatch, bad magic/version, malformed record), and Ok —
  /// with the full committed prefix — on a clean or merely torn log.
  static util::Status Replay(const std::string& path, ReplayResult* out);

 private:
  explicit FactLog(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  util::Status AppendRecord(uint8_t tag, const unsigned char* payload,
                            size_t len);

  /// Replay body. `decode_payloads` false = scan mode (OpenForAppend):
  /// record framing and checksums are verified and commit epochs read,
  /// but batch/symbol payloads are not materialized.
  static util::Status ScanOrReplay(const std::string& path,
                                   ReplayResult* out, bool decode_payloads);

  std::FILE* file_;
  std::string path_;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_FACTLOG_H_
