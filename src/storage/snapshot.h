#ifndef CARAC_STORAGE_SNAPSHOT_H_
#define CARAC_STORAGE_SNAPSHOT_H_

#include <cstdint>

// Durable snapshot format of a DatabaseSet (the implementation of
// DatabaseSet::SaveSnapshot / OpenSnapshot — see database.h for the API
// contract). The layout follows the KVell idea of keeping the on-disk
// representation flat and index-free: the columnar arena of each relation
// is written verbatim in one sequential stretch, and everything that is
// derivable in memory (the open-addressing dedup table, the column
// indexes) is rebuilt at open instead of being persisted.
//
// All integers are little-endian. Layout (version 3 — identical to
// version 2 except the index-kind byte's valid range, which grew when
// IndexKind::kLearned was added; the version bump keeps a learned-kind
// snapshot from decoding as garbage on a version-2 build):
//
//   [header]
//     magic          8 bytes  "CARACSNP"
//     version        u32
//     num_relations  u32
//     epoch          u64      DatabaseSet epoch counter
//     num_symbols    u64
//     checksum       u64      FNV-1a over the bytes above (magic included)
//   [symbols section]
//     per symbol: u32 length, raw bytes (interning order; symbol i maps
//     to id kSymbolBase + i, so serialized tuples stay valid verbatim)
//     checksum       u64      over the section's payload bytes
//   [relation section] x num_relations, in RelationId order
//     name           u32 length, raw bytes
//     arity          u32
//     num_rows       u32
//     watermark      u32      epoch watermark (<= num_rows)
//     index_count    u32      declared indexes on the Derived store
//     indexes        index_count * (column u32, kind u8) in declaration
//                    order — contents are still rebuilt at open, but the
//                    per-index ORGANIZATION is data (the optimizer or a
//                    DSL hint chose it), so a mixed-kind database
//                    round-trips byte-identically (v2 addition)
//     arena          num_rows * arity * 8 bytes, row-major, verbatim
//     edb_count      u32
//     edb_rows       edb_count * u32  RowIds inserted via InsertFact
//     checksum       u64      over the section's payload bytes
//   [footer]
//     magic          8 bytes  "CARACEND"  (guards against a truncated
//                             but otherwise well-formed prefix)
//
// Version policy: any layout change — field added, width changed,
// section reordered — bumps kSnapshotFormatVersion; OpenSnapshot rejects
// every version it was not built for (no silent best-effort decoding of
// a future or past layout). Old snapshots are regenerated, not migrated:
// a snapshot is a cache of recoverable state (program source + fact
// log), never the only copy.

namespace carac::storage {

inline constexpr uint32_t kSnapshotFormatVersion = 3;

}  // namespace carac::storage

#endif  // CARAC_STORAGE_SNAPSHOT_H_
