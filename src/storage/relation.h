#ifndef CARAC_STORAGE_RELATION_H_
#define CARAC_STORAGE_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "storage/index.h"
#include "storage/read_view.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace carac::storage {

class StagingBuffer;

/// An in-memory set-semantics relation backed by a columnar arena:
///
///   - Tuples live row-major in ONE contiguous std::vector<Value> arena
///     (`arity` values per row), identified by a dense 32-bit RowId in
///     insertion order. Inserting a tuple is an append — no per-tuple heap
///     node, no pointer chasing on scans.
///   - Set semantics comes from an open-addressing hash table (linear
///     probing, power-of-two capacity, wyhash-style mixing — util/hash.h)
///     mapping row hashes to RowIds. The table stores 4-byte RowIds, not
///     nodes, so a rehash is a flat re-bucketing pass.
///   - Per-column secondary indexes (storage/index.h) hold RowIds. RowIds
///     never move, so neither arena growth nor rehash invalidates an
///     index — incremental maintenance on insert is all that is needed.
///
/// Readers address rows through TupleView (pointer + arity span into the
/// arena) and must not hold views across an insert into the *same*
/// relation (arena growth may reallocate). The evaluator never does:
/// rules read Derived/DeltaKnown and write DeltaNew.
///
/// The arena buffer itself is held through a shared_ptr so the serving
/// layer can pin epoch-snapshot read views (PinView): once a buffer has
/// been pinned, any operation that would invalidate its rows — growth
/// past capacity, Clear, LoadContents — RETIRES the buffer (installs a
/// fresh copy for the live relation) instead of mutating it in place.
/// Appends within capacity keep the buffer: they only touch rows past
/// every pinned bound. Unpinned buffers grow and clear exactly as
/// before, so the evaluator's delta stores never pay for this.
class Relation {
 public:
  Relation(std::string name, size_t arity)
      : name_(std::move(name)),
        arity_(arity),
        arena_(std::make_shared<std::vector<Value>>()) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Pre-sizes the arena and the hash table for `rows` tuples so bulk
  /// loads do not pay growth/rehash churn. Never shrinks.
  void Reserve(size_t rows);

  /// Inserts a tuple (copying it into the arena); returns true if it was
  /// new. Indexes are maintained incrementally. Accepts Tuple or
  /// TupleView; `tuple` may not alias this relation's own arena unless it
  /// is already present (a self-view is by definition a duplicate, so
  /// that case is safe).
  bool Insert(TupleView tuple);
  /// Overloads for Tuple lvalues and braced call sites (`Insert({1, 2})`),
  /// which cannot reach the TupleView conversion on their own.
  bool Insert(const Tuple& tuple) { return Insert(TupleView(tuple)); }
  bool Insert(std::initializer_list<Value> values) {
    return Insert(TupleView(values.begin(), values.size()));
  }

  bool Contains(TupleView tuple) const;
  bool Contains(const Tuple& tuple) const {
    return Contains(TupleView(tuple));
  }
  bool Contains(std::initializer_list<Value> values) const {
    return Contains(TupleView(values.begin(), values.size()));
  }

  /// RowId of the row equal to `tuple`, or kNoRow when absent.
  static constexpr RowId kNoRow = 0xFFFFFFFFu;
  RowId FindRow(TupleView tuple) const;

  // ---- Row addressing ----

  uint32_t NumRows() const { return num_rows_; }

  /// Raw row-major pointer to row `row` (arity() values).
  const Value* RowData(RowId row) const {
    return arena_data_ + static_cast<size_t>(row) * arity_;
  }

  TupleView View(RowId row) const { return TupleView(RowData(row), arity_); }

  /// Range-for support over all rows, in insertion (RowId) order:
  ///   for (TupleView t : rel.rows()) ...
  class RowIterator {
   public:
    RowIterator(const Relation* rel, RowId row) : rel_(rel), row_(row) {}
    TupleView operator*() const { return rel_->View(row_); }
    RowIterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator!=(const RowIterator& other) const {
      return row_ != other.row_;
    }

   private:
    const Relation* rel_;
    RowId row_;
  };
  class RowRange {
   public:
    explicit RowRange(const Relation* rel) : rel_(rel) {}
    RowIterator begin() const { return RowIterator(rel_, 0); }
    RowIterator end() const { return RowIterator(rel_, rel_->NumRows()); }

   private:
    const Relation* rel_;
  };
  RowRange rows() const { return RowRange(this); }

  // ---- Epoch watermark ----

  /// Rows with RowId >= watermark() were appended after the watermark was
  /// last advanced. Incremental evaluation advances the Derived watermark
  /// at every epoch boundary, so "this epoch's new facts" is exactly the
  /// row range [watermark, NumRows) — no per-tuple bookkeeping needed on
  /// top of the append-only arena.
  RowId watermark() const { return watermark_; }

  /// Records the current row count as the epoch boundary and lets the
  /// indexes compact over the now-stable row prefix (kSortedArray
  /// rebuilds its immutable arrays here — a quiescent point, so no
  /// reader ever observes the rebuild).
  void AdvanceWatermark() {
    watermark_ = num_rows_;
    StabilizeIndexes();
  }

  /// Tells every index that all current rows are stable (append-only
  /// arenas never remove rows before Clear). Must only be called at
  /// quiescent points — never while probe cursors are live.
  void StabilizeIndexes();

  // ---- Pinned read views (watermark-bounded cursors) ----

  /// Pins a zero-copy read view over rows [0, upto) (`upto` <= NumRows;
  /// the serving layer passes watermark() so the view is exactly the
  /// last closed epoch). The returned view stays valid for its whole
  /// lifetime regardless of what happens to this relation afterwards:
  /// pinning marks the current arena buffer shared, and every later
  /// operation that would disturb rows below `upto` retires the buffer
  /// instead of mutating it. Must be called from the relation's writer
  /// thread (a quiescent point); the VIEW may then be read from any
  /// thread concurrently with further writer appends.
  RelationReadView PinView(RowId upto);
  RelationReadView PinViewAtWatermark() { return PinView(watermark_); }

  // ---- Indexes ----

  /// Declares an index on `column` (idempotent — the first declaration's
  /// kind wins) and builds it over the current contents.
  void DeclareIndex(size_t column, IndexKind kind = IndexKind::kHash);

  /// Declares an index on `column` with `kind`, REPLACING an existing
  /// declaration of a different kind (rebuilt over current contents).
  /// Snapshot restore uses this: the persisted per-index kind is
  /// authoritative over whatever the engine declared at Prepare().
  void RedeclareIndex(size_t column, IndexKind kind);

  bool HasIndex(size_t column) const {
    return column < index_by_column_.size() &&
           index_by_column_[column] != kNoIndex;
  }

  /// Probes the index on `column` for `value`, returning a cursor over
  /// the matching RowIds (valid until this relation gains rows — the
  /// TupleView aliasing rule). Requires HasIndex(column).
  RowCursor Probe(size_t column, Value value) const;

  /// Resolves `n` probe keys against the index on `column` in one call,
  /// writing one cursor per key (see IndexBase::BatchProbe). Requires
  /// HasIndex(column).
  void BatchProbe(size_t column, const Value* keys, size_t n,
                  RowCursor* out) const;

  /// Kind of the index on `column`. Requires HasIndex(column).
  IndexKind IndexKindOf(size_t column) const;

  /// Range probe [lo, hi] in ascending column order. Requires
  /// HasIndex(column); fails with FailedPrecondition (naming the kind) if
  /// the index kind is not ordered.
  util::Status ProbeRange(size_t column, Value lo, Value hi,
                          std::vector<RowId>* out) const;

  /// Smallest/largest key in the index on `column` (see
  /// IndexBase::KeyBounds). False when the index is empty or its kind
  /// does not track key bounds. Requires HasIndex(column).
  bool IndexKeyBounds(size_t column, Value* min, Value* max) const {
    return indexes_[index_by_column_[column]]->KeyBounds(min, max);
  }

  /// Index declarations in declaration order (snapshot serialization).
  size_t NumIndexes() const { return indexes_.size(); }
  const IndexBase& IndexAt(size_t i) const { return *indexes_[i]; }

  // ---- Bulk maintenance ----

  /// Removes all tuples, keeping index declarations and storage capacity
  /// (delta stores are cleared every iteration; dropping capacity would
  /// re-pay growth each time). Resets the epoch watermark: after a clear
  /// every subsequently inserted row is "new".
  void Clear();

  /// Moves all tuples of `other` into this relation (used by SwapClearOp
  /// to merge DeltaKnown into Derived). `other` is cleared.
  void Absorb(Relation* other);

  /// Bulk-merges one worker's staging buffer into this relation in staged
  /// order, skipping rows present in `unless_in` (the Derived store, when
  /// this relation is a DeltaNew). Returns the number of rows actually
  /// inserted. Merging each worker's buffer in fixed worker order is the
  /// parallel evaluator's determinism step: the resulting insertion
  /// sequence is identical to the single-threaded one.
  size_t InsertStaged(const StagingBuffer& staged, const Relation* unless_in);

  /// Copies index *declarations* (not contents) from another relation.
  void CopyIndexDeclarations(const Relation& other);

  /// Sorted copy of all rows, for golden tests and result extraction.
  std::vector<Tuple> SortedRows() const;

  // ---- Snapshot support (storage/snapshot.cc) ----

  /// The raw row-major arena (NumRows() * arity() values, insertion
  /// order). Snapshot write serializes it verbatim; that is what makes a
  /// loaded relation byte-identical to the saved one — RowIds, insertion
  /// order and hence SortedRows all survive.
  const std::vector<Value>& arena() const { return *arena_; }

  /// Replaces this relation's contents with `num_rows` rows given
  /// row-major in `arena` (snapshot load). The rows must be distinct —
  /// they come from a set-semantics arena and are checksum-protected on
  /// disk; dedup is NOT re-verified here. Rebuilds the open-addressing
  /// table from scratch and re-populates any declared index, then sets
  /// the epoch watermark to `watermark` (<= num_rows).
  void LoadContents(std::vector<Value> arena, uint32_t num_rows,
                    RowId watermark);

 private:
  static constexpr size_t kNoIndex = static_cast<size_t>(-1);
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr size_t kMinSlots = 16;

  /// True iff row `row` holds exactly the values of `tuple`.
  bool RowEquals(RowId row, TupleView tuple) const {
    const Value* stored = RowData(row);
    for (size_t i = 0; i < arity_; ++i) {
      if (stored[i] != tuple[i]) return false;
    }
    return true;
  }

  /// Grows the slot table to `new_slots` (a power of two) and re-buckets
  /// every row. Indexes are untouched: they store RowIds.
  void Rehash(size_t new_slots);

  /// Makes room for `values` total arena values WITHOUT reallocating the
  /// current buffer in place: when capacity is short, the contents move
  /// to a fresh, larger buffer and the old one is retired (pinned views
  /// keep it alive through their shared_ptr).
  void EnsureArenaCapacity(size_t values);

  /// Installs `fresh` as the live arena buffer, abandoning the current
  /// one to whatever pinned views still hold it.
  void AdoptArena(std::shared_ptr<std::vector<Value>> fresh);

  std::string name_;
  size_t arity_;
  /// Row-major tuple storage: row r occupies [r*arity, (r+1)*arity).
  /// Shared so pinned read views can outlive a retire (see class
  /// comment); all mutation goes through this relation.
  std::shared_ptr<std::vector<Value>> arena_;
  /// Cached arena_->data() — the RowData hot path stays one member load,
  /// exactly as with the previous inline vector. Refreshed whenever the
  /// buffer or its allocation can change.
  const Value* arena_data_ = nullptr;
  /// True once PinView handed the CURRENT buffer to a reader; cleared
  /// when the buffer is retired. While set, Clear/LoadContents/growth
  /// must swap buffers instead of touching pinned rows.
  bool arena_shared_ = false;
  uint32_t num_rows_ = 0;
  /// Epoch boundary: rows >= watermark_ arrived after the last
  /// AdvanceWatermark() call.
  RowId watermark_ = 0;
  /// Open-addressing dedup table: RowId per slot, kEmptySlot when free.
  /// Power-of-two size; linear probing on HashSpan of the row.
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;
  /// Owned through the interface; the concrete organization is chosen at
  /// declaration time (storage/index.h factory).
  std::vector<std::unique_ptr<IndexBase>> indexes_;
  // Maps column -> position in indexes_, or kNoIndex.
  std::vector<size_t> index_by_column_;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_RELATION_H_
