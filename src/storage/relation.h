#ifndef CARAC_STORAGE_RELATION_H_
#define CARAC_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/index.h"
#include "storage/tuple.h"

namespace carac::storage {

/// An in-memory set-semantics relation with optional per-column secondary
/// indexes (hash by default, ordered optionally — see storage/index.h).
/// Carac builds one index per join/filter predicate column (paper §IV,
/// "Index selection"); incremental maintenance happens on insert. Tuples
/// are stored in a node-based hash set, so `const Tuple*` handles remain
/// stable across inserts (the indexes rely on this).
class Relation {
 public:
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts a tuple; returns true if it was new. Indexes are maintained.
  bool Insert(const Tuple& tuple);
  bool Insert(Tuple&& tuple);

  bool Contains(const Tuple& tuple) const { return rows_.count(tuple) > 0; }

  /// Declares an index on `column` (idempotent — the first declaration's
  /// kind wins) and builds it over the current contents.
  void DeclareIndex(size_t column, IndexKind kind = IndexKind::kHash);

  bool HasIndex(size_t column) const {
    return column < index_by_column_.size() &&
           index_by_column_[column] != kNoIndex;
  }

  /// Probes the index on `column` for `value`. Requires HasIndex(column).
  const std::vector<const Tuple*>& Probe(size_t column, Value value) const;

  /// Kind of the index on `column`. Requires HasIndex(column).
  IndexKind IndexKindOf(size_t column) const;

  /// Range probe [lo, hi] on a kSorted index (ascending column order).
  void ProbeRange(size_t column, Value lo, Value hi,
                  std::vector<const Tuple*>* out) const;

  /// Stable iteration over all rows (iterator order of the hash set; the
  /// engine never depends on a particular order).
  const std::unordered_set<Tuple, TupleHash>& rows() const { return rows_; }

  /// Removes all tuples, keeping index declarations.
  void Clear();

  /// Moves all tuples of `other` into this relation (used by SwapClearOp to
  /// merge DeltaKnown into Derived). `other` is cleared.
  void Absorb(Relation* other);

  /// Copies index *declarations* (not contents) from another relation.
  void CopyIndexDeclarations(const Relation& other);

  /// Sorted copy of all rows, for golden tests and result extraction.
  std::vector<Tuple> SortedRows() const;

 private:
  static constexpr size_t kNoIndex = static_cast<size_t>(-1);

  void IndexNewTuple(const Tuple* tuple);

  std::string name_;
  size_t arity_;
  std::unordered_set<Tuple, TupleHash> rows_;
  std::vector<ColumnIndex> indexes_;
  // Maps column -> position in indexes_, or kNoIndex.
  std::vector<size_t> index_by_column_;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_RELATION_H_
