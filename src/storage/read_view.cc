#include "storage/read_view.h"

#include <algorithm>
#include <numeric>

namespace carac::storage {

std::vector<RowId> RelationReadView::SortedRowIds() const {
  std::vector<RowId> ids(num_rows_);
  std::iota(ids.begin(), ids.end(), RowId{0});
  const Value* data = data_;
  const size_t arity = arity_;
  // Lexicographic row compare — identical to sorting materialized Tuples
  // (std::vector<Value> comparison), which is what keeps a streamed dump
  // byte-identical to the old SortedRows() path. Set semantics means no
  // two rows compare equal, so the order is total and deterministic.
  std::sort(ids.begin(), ids.end(), [data, arity](RowId a, RowId b) {
    const Value* pa = data + static_cast<size_t>(a) * arity;
    const Value* pb = data + static_cast<size_t>(b) * arity;
    return std::lexicographical_compare(pa, pa + arity, pb, pb + arity);
  });
  return ids;
}

}  // namespace carac::storage
