#include "storage/index.h"

#include <string>

namespace carac::storage {

const char* IndexKindName(IndexKind kind) {
  return kind == IndexKind::kHash ? "hash" : "sorted";
}

void ColumnIndex::Add(RowId row, Value key) {
  if (kind_ == IndexKind::kHash) {
    hash_buckets_[key].push_back(row);
  } else {
    sorted_buckets_[key].push_back(row);
  }
}

const std::vector<RowId>& ColumnIndex::Probe(Value value) const {
  static const std::vector<RowId> kEmpty;
  if (kind_ == IndexKind::kHash) {
    auto it = hash_buckets_.find(value);
    return it == hash_buckets_.end() ? kEmpty : it->second;
  }
  auto it = sorted_buckets_.find(value);
  return it == sorted_buckets_.end() ? kEmpty : it->second;
}

util::Status ColumnIndex::ProbeRange(Value lo, Value hi,
                                     std::vector<RowId>* out) const {
  if (kind_ != IndexKind::kSorted) {
    return util::Status::FailedPrecondition(
        "ProbeRange requires a sorted index, but column " +
        std::to_string(column_) + " has a " + IndexKindName(kind_) +
        " index; declare it with IndexKind::kSorted");
  }
  for (auto it = sorted_buckets_.lower_bound(lo);
       it != sorted_buckets_.end() && it->first <= hi; ++it) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  return util::Status::Ok();
}

void ColumnIndex::Clear() {
  hash_buckets_.clear();
  sorted_buckets_.clear();
}

}  // namespace carac::storage
