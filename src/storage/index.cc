#include "storage/index.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

namespace carac::storage {

const char* IndexKindName(IndexKind kind) {
  for (const IndexKindInfo& info : kIndexKindTable) {
    if (info.kind == kind) return info.name;
  }
  return "?";
}

bool ParseIndexKind(const std::string& name, IndexKind* out) {
  for (const IndexKindInfo& info : kIndexKindTable) {
    if (name == info.name ||
        (info.alt_name != nullptr && name == info.alt_name)) {
      *out = info.kind;
      return true;
    }
  }
  return false;
}

const std::string& IndexKindNameList() {
  static const std::string list = [] {
    std::string s;
    for (const IndexKindInfo& info : kIndexKindTable) {
      if (!s.empty()) s += ", ";
      s += info.name;
    }
    return s;
  }();
  return list;
}

// ---- IndexBase defaults ----

util::Status IndexBase::RangeUnsupported() const {
  return util::Status::FailedPrecondition(
      "ProbeRange requires an ordered index, but column " +
      std::to_string(column_) + " has a " + IndexKindName(kind_) +
      " index; declare it with an ordered kind (kSorted, kBtree, "
      "kSortedArray or kLearned)");
}

util::Status IndexBase::ProbeRange(Value lo, Value hi,
                                   std::vector<RowId>* out) const {
  (void)lo;
  (void)hi;
  (void)out;
  return RangeUnsupported();
}

void IndexBase::BatchProbe(const Value* keys, size_t n,
                           RowCursor* out) const {
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && keys[i] == keys[i - 1]) {
      out[i] = out[i - 1];  // Equal-adjacent run: reuse the cursor.
      continue;
    }
    out[i] = Probe(keys[i]);
  }
}

void IndexBase::Stabilize(RowId limit) { (void)limit; }

bool IndexBase::KeyBounds(Value* min, Value* max) const {
  (void)min;
  (void)max;
  return false;
}

// ---- SortedIndex ----

util::Status SortedIndex::ProbeRange(Value lo, Value hi,
                                     std::vector<RowId>* out) const {
  for (auto it = buckets_.lower_bound(lo);
       it != buckets_.end() && it->first <= hi; ++it) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  return util::Status::Ok();
}

bool SortedIndex::KeyBounds(Value* min, Value* max) const {
  if (buckets_.empty()) return false;
  *min = buckets_.begin()->first;
  *max = buckets_.rbegin()->first;
  return true;
}

// ---- BtreeIndex ----

void BtreeIndex::SplitChild(uint32_t parent_id, size_t pos) {
  const uint32_t child_id = nodes_[parent_id].children[pos];
  const uint32_t right_id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();  // May reallocate: take references afterwards.
  Node& child = nodes_[child_id];
  Node& right = nodes_[right_id];
  right.leaf = child.leaf;
  const size_t mid = kMaxKeys / 2;
  Value up_key;
  if (child.leaf) {
    // Copy-up: the separator stays in the right leaf.
    right.keys.assign(child.keys.begin() + mid, child.keys.end());
    right.children.assign(child.children.begin() + mid,
                          child.children.end());
    child.keys.resize(mid);
    child.children.resize(mid);
    right.next = child.next;
    child.next = right_id;
    up_key = right.keys.front();
  } else {
    // Move-up: the separator leaves the node.
    up_key = child.keys[mid];
    right.keys.assign(child.keys.begin() + mid + 1, child.keys.end());
    right.children.assign(child.children.begin() + mid + 1,
                          child.children.end());
    child.keys.resize(mid);
    child.children.resize(mid + 1);
  }
  Node& parent = nodes_[parent_id];
  parent.keys.insert(parent.keys.begin() + pos, up_key);
  parent.children.insert(parent.children.begin() + pos + 1, right_id);
}

void BtreeIndex::AddFast(RowId row, Value key) {
  if (root_ == kNoNode) {
    root_ = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  if (nodes_[root_].keys.size() >= kMaxKeys) {
    const uint32_t new_root = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    Node& top = nodes_[new_root];
    top.leaf = false;
    top.children.push_back(root_);
    root_ = new_root;
    SplitChild(new_root, 0);
  }
  // Preemptive-split descent: every node we enter has room, so the leaf
  // insert never has to propagate back up.
  uint32_t id = root_;
  while (!nodes_[id].leaf) {
    const Node& node = nodes_[id];
    size_t pos = static_cast<size_t>(
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin());
    uint32_t child = node.children[pos];
    if (nodes_[child].keys.size() >= kMaxKeys) {
      SplitChild(id, pos);
      const Node& split_parent = nodes_[id];
      // Keys equal to the promoted separator live in the right sibling
      // (separators route key >= separator to the right, matching the
      // upper_bound descent).
      if (key >= split_parent.keys[pos]) ++pos;
      child = split_parent.children[pos];
    }
    id = child;
  }
  Node& leaf = nodes_[id];
  const size_t pos = static_cast<size_t>(
      std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key) -
      leaf.keys.begin());
  if (pos < leaf.keys.size() && leaf.keys[pos] == key) {
    buckets_[leaf.children[pos]].push_back(row);
    return;
  }
  leaf.keys.insert(leaf.keys.begin() + pos, key);
  leaf.children.insert(leaf.children.begin() + pos,
                       static_cast<uint32_t>(buckets_.size()));
  buckets_.emplace_back(1, row);
}

uint32_t BtreeIndex::FindLeaf(Value key) const {
  if (root_ == kNoNode) return kNoNode;
  uint32_t id = root_;
  while (!nodes_[id].leaf) {
    const Node& node = nodes_[id];
    const size_t pos = static_cast<size_t>(
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin());
    id = node.children[pos];
  }
  return id;
}

RowCursor BtreeIndex::ProbeFast(Value value) const {
  const uint32_t id = FindLeaf(value);
  if (id == kNoNode) return RowCursor();
  const Node& leaf = nodes_[id];
  const size_t pos = static_cast<size_t>(
      std::lower_bound(leaf.keys.begin(), leaf.keys.end(), value) -
      leaf.keys.begin());
  if (pos >= leaf.keys.size() || leaf.keys[pos] != value) return RowCursor();
  const std::vector<RowId>& bucket = buckets_[leaf.children[pos]];
  return RowCursor(bucket.data(), bucket.size());
}

util::Status BtreeIndex::ProbeRange(Value lo, Value hi,
                                    std::vector<RowId>* out) const {
  uint32_t id = FindLeaf(lo);
  if (id == kNoNode) return util::Status::Ok();
  const Node* leaf = &nodes_[id];
  size_t pos = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
      leaf->keys.begin());
  while (true) {
    if (pos >= leaf->keys.size()) {
      if (leaf->next == kNoNode) return util::Status::Ok();
      leaf = &nodes_[leaf->next];
      pos = 0;
      continue;
    }
    if (leaf->keys[pos] > hi) return util::Status::Ok();
    const std::vector<RowId>& bucket = buckets_[leaf->children[pos]];
    out->insert(out->end(), bucket.begin(), bucket.end());
    ++pos;
  }
}

void BtreeIndex::BatchProbe(const Value* keys, size_t n,
                            RowCursor* out) const {
  // Probe in ascending key order so consecutive descents share upper
  // tree levels and leaf cache lines, then scatter the cursors back.
  if (n <= 2) {
    IndexBase::BatchProbe(keys, n, out);
    return;
  }
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b] || (keys[a] == keys[b] && a < b);
  });
  bool have_last = false;
  Value last_key = 0;
  RowCursor last_cursor;
  for (uint32_t idx : order) {
    if (!have_last || keys[idx] != last_key) {
      last_cursor = ProbeFast(keys[idx]);
      last_key = keys[idx];
      have_last = true;
    }
    out[idx] = last_cursor;
  }
}

void BtreeIndex::Clear() {
  nodes_.clear();
  buckets_.clear();
  root_ = kNoNode;
}

bool BtreeIndex::KeyBounds(Value* min, Value* max) const {
  if (root_ == kNoNode) return false;
  uint32_t id = root_;
  while (!nodes_[id].leaf) id = nodes_[id].children.front();
  if (nodes_[id].keys.empty()) return false;
  *min = nodes_[id].keys.front();
  id = root_;
  while (!nodes_[id].leaf) id = nodes_[id].children.back();
  *max = nodes_[id].keys.back();
  return true;
}

// ---- SortedArrayIndex ----

RowCursor SortedArrayIndex::ProbeFast(Value value) const {
  const auto range = std::equal_range(prefix_keys_.begin(),
                                      prefix_keys_.end(), value);
  const size_t begin =
      static_cast<size_t>(range.first - prefix_keys_.begin());
  const size_t count = static_cast<size_t>(range.second - range.first);
  const RowId* prefix = count > 0 ? prefix_rows_.data() + begin : nullptr;
  auto it = tail_.find(value);
  if (it == tail_.end()) return RowCursor(prefix, count);
  // Prefix rows are all < stable_limit_ <= every tail row, so the
  // concatenation stays in ascending RowId order.
  return RowCursor(prefix, count, it->second.data(), it->second.size());
}

util::Status SortedArrayIndex::ProbeRange(Value lo, Value hi,
                                          std::vector<RowId>* out) const {
  // The prefix run [lo, hi] is contiguous; tail keys in range are
  // collected, sorted and merged in so the output stays in ascending
  // (key, row) order.
  size_t i = static_cast<size_t>(
      std::lower_bound(prefix_keys_.begin(), prefix_keys_.end(), lo) -
      prefix_keys_.begin());
  const size_t end = static_cast<size_t>(
      std::upper_bound(prefix_keys_.begin(), prefix_keys_.end(), hi) -
      prefix_keys_.begin());
  std::vector<std::pair<Value, const std::vector<RowId>*>> tails;
  for (const auto& [key, rows] : tail_) {
    if (key >= lo && key <= hi) tails.emplace_back(key, &rows);
  }
  if (tails.empty()) {
    // No unstable rows in range: the prefix run is already in ascending
    // (key, row) order, so it IS the answer — one contiguous copy. This
    // is the range-scan fast path the immutable layout exists for.
    out->insert(out->end(), prefix_rows_.begin() + static_cast<ptrdiff_t>(i),
                prefix_rows_.begin() + static_cast<ptrdiff_t>(end));
    return util::Status::Ok();
  }
  std::sort(tails.begin(), tails.end());
  size_t t = 0;
  while (i < end || t < tails.size()) {
    if (t >= tails.size() ||
        (i < end && prefix_keys_[i] <= tails[t].first)) {
      const Value key = prefix_keys_[i];
      while (i < end && prefix_keys_[i] == key) {
        out->push_back(prefix_rows_[i]);
        ++i;
      }
      if (t < tails.size() && tails[t].first == key) {
        out->insert(out->end(), tails[t].second->begin(),
                    tails[t].second->end());
        ++t;
      }
    } else {
      out->insert(out->end(), tails[t].second->begin(),
                  tails[t].second->end());
      ++t;
    }
  }
  return util::Status::Ok();
}

void SortedArrayIndex::Stabilize(RowId limit) {
  if (limit <= stable_limit_) return;
  std::vector<std::pair<Value, RowId>> moved;
  for (auto it = tail_.begin(); it != tail_.end();) {
    std::vector<RowId>& bucket = it->second;
    // Buckets are ascending, so the rows now below the stable limit are
    // a prefix of the bucket.
    const auto split =
        std::lower_bound(bucket.begin(), bucket.end(), limit);
    for (auto b = bucket.begin(); b != split; ++b) {
      moved.emplace_back(it->first, *b);
    }
    bucket.erase(bucket.begin(), split);
    it = bucket.empty() ? tail_.erase(it) : std::next(it);
  }
  stable_limit_ = limit;
  if (moved.empty()) return;
  std::sort(moved.begin(), moved.end());
  // Two-way merge of the old prefix and the newly stable rows.
  std::vector<Value> keys;
  std::vector<RowId> rows;
  keys.reserve(prefix_keys_.size() + moved.size());
  rows.reserve(prefix_rows_.size() + moved.size());
  size_t a = 0;
  size_t b = 0;
  while (a < prefix_keys_.size() || b < moved.size()) {
    const bool take_prefix =
        b >= moved.size() ||
        (a < prefix_keys_.size() &&
         (prefix_keys_[a] < moved[b].first ||
          (prefix_keys_[a] == moved[b].first &&
           prefix_rows_[a] < moved[b].second)));
    if (take_prefix) {
      keys.push_back(prefix_keys_[a]);
      rows.push_back(prefix_rows_[a]);
      ++a;
    } else {
      keys.push_back(moved[b].first);
      rows.push_back(moved[b].second);
      ++b;
    }
  }
  prefix_keys_ = std::move(keys);
  prefix_rows_ = std::move(rows);
}

void SortedArrayIndex::Clear() {
  prefix_keys_.clear();
  prefix_rows_.clear();
  stable_limit_ = 0;
  tail_.clear();
  have_key_bounds_ = false;
  key_lo_ = 0;
  key_hi_ = 0;
}

// ---- LearnedIndex ----

void LearnedIndex::RefitModel() {
  segments_.clear();
  min_key_ = 0;
  max_key_ = 0;
  const size_t n = prefix_keys_.size();
  if (n == 0) return;
  min_key_ = prefix_keys_.front();
  max_key_ = prefix_keys_.back();
  // Fit against a slightly tighter bound than the probe window so
  // floating-point rounding at probe time can never push a trained key
  // outside ±kEpsilon.
  const double eps = static_cast<double>(kEpsilon) - 1.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Greedy shrinking-cone pass over the (distinct key, first position)
  // points: a segment absorbs keys while some slope keeps every absorbed
  // point within ±eps of the line through the segment's first point;
  // when the feasible slope interval empties, the segment closes and the
  // breaking key starts the next one. One pass, O(#distinct keys).
  size_t i = 0;
  while (i < n) {
    const Value first_key = prefix_keys_[i];
    const double first_pos = static_cast<double>(i);
    double lo = 0.0;
    double hi = kInf;
    size_t j = i;
    while (j < n && prefix_keys_[j] == first_key) ++j;
    while (j < n) {
      const Value key = prefix_keys_[j];
      const double dx =
          static_cast<double>(key) - static_cast<double>(first_key);
      const double dy = static_cast<double>(j) - first_pos;
      const double new_lo = std::max(lo, (dy - eps) / dx);
      const double new_hi = std::min(hi, (dy + eps) / dx);
      if (new_lo > new_hi) break;  // Cone collapsed: close the segment.
      lo = new_lo;
      hi = new_hi;
      while (j < n && prefix_keys_[j] == key) ++j;
    }
    Segment seg;
    seg.first_key = first_key;
    seg.intercept = first_pos;
    seg.slope = hi == kInf ? 0.0 : 0.5 * (lo + hi);
    segments_.push_back(seg);
    i = j;
  }
}

bool LearnedIndex::PredictPosition(Value value, size_t* pos) const {
  if (segments_.empty() || value < min_key_ || value > max_key_) {
    return false;
  }
  // Last segment whose first_key <= value. The min_key_ gate above makes
  // the directory search start past begin().
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), value,
      [](Value v, const Segment& s) { return v < s.first_key; });
  const Segment& seg = *(it - 1);
  const double dx =
      static_cast<double>(value) - static_cast<double>(seg.first_key);
  const double predicted = seg.intercept + seg.slope * dx;
  size_t p = predicted <= 0.0 ? 0 : static_cast<size_t>(predicted);
  if (p >= prefix_keys_.size()) p = prefix_keys_.size() - 1;
  *pos = p;
  return true;
}

RowCursor LearnedIndex::ProbeFast(Value value) const {
  const RowId* prefix = nullptr;
  size_t count = 0;
  const size_t n = prefix_keys_.size();
  size_t predicted;
  if (n != 0 && PredictPosition(value, &predicted)) {
    size_t begin;
    bool located = false;
    const size_t wlo = predicted > kEpsilon ? predicted - kEpsilon : 0;
    const size_t whi = std::min(n, predicted + kEpsilon + 1);
    // Bracket check: the global lower_bound lies inside [wlo, whi] iff
    // everything before the window is < value and the first key at or
    // past its end is >= value. Trained keys always pass (the fit bounds
    // their error); an untrained key that misses falls back to the full
    // binary search, so the model is never load-bearing for correctness.
    if ((wlo == 0 || prefix_keys_[wlo - 1] < value) &&
        (whi == n || prefix_keys_[whi] >= value)) {
      begin = static_cast<size_t>(
          std::lower_bound(prefix_keys_.begin() +
                               static_cast<ptrdiff_t>(wlo),
                           prefix_keys_.begin() + static_cast<ptrdiff_t>(whi),
                           value) -
          prefix_keys_.begin());
      located = true;
    }
    if (!located) {
      begin = static_cast<size_t>(
          std::lower_bound(prefix_keys_.begin(), prefix_keys_.end(), value) -
          prefix_keys_.begin());
    }
    if (begin < n && prefix_keys_[begin] == value) {
      // Duplicate runs can outrun the window. Gallop for the run's end —
      // doubling probes stay inside the run (cache-local), then a binary
      // search over the last doubling span pins it: O(log run) versus a
      // binary search scattered across the whole remaining suffix.
      size_t off = 1;
      while (begin + off < n && prefix_keys_[begin + off] == value) {
        off <<= 1;
      }
      const size_t lo_idx = begin + (off >> 1);
      const size_t hi_idx = std::min(n, begin + off);
      const size_t end = static_cast<size_t>(
          std::upper_bound(prefix_keys_.begin() +
                               static_cast<ptrdiff_t>(lo_idx),
                           prefix_keys_.begin() +
                               static_cast<ptrdiff_t>(hi_idx),
                           value) -
          prefix_keys_.begin());
      prefix = prefix_rows_.data() + begin;
      count = end - begin;
    }
  }
  if (tail_.empty()) return RowCursor(prefix, count);  // The common case
  // on a stabilized column: skip even the hash of `value`.
  auto it = tail_.find(value);
  if (it == tail_.end()) return RowCursor(prefix, count);
  // Prefix rows are all < stable_limit_ <= every tail row, so the
  // concatenation stays in ascending RowId order.
  return RowCursor(prefix, count, it->second.data(), it->second.size());
}

void LearnedIndex::Stabilize(RowId limit) {
  const size_t before = prefix_keys_.size();
  SortedArrayIndex::Stabilize(limit);
  if (prefix_keys_.size() != before) RefitModel();
}

void LearnedIndex::Clear() {
  SortedArrayIndex::Clear();
  segments_.clear();
  min_key_ = 0;
  max_key_ = 0;
}

// ---- Factory ----

std::unique_ptr<IndexBase> MakeIndex(size_t column, IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return std::make_unique<HashIndex>(column);
    case IndexKind::kSorted:
      return std::make_unique<SortedIndex>(column);
    case IndexKind::kBtree:
      return std::make_unique<BtreeIndex>(column);
    case IndexKind::kSortedArray:
      return std::make_unique<SortedArrayIndex>(column);
    case IndexKind::kLearned:
      return std::make_unique<LearnedIndex>(column);
  }
  return std::make_unique<HashIndex>(column);  // Unreachable.
}

}  // namespace carac::storage
