#include "storage/index.h"

#include "util/status.h"

namespace carac::storage {

const char* IndexKindName(IndexKind kind) {
  return kind == IndexKind::kHash ? "hash" : "sorted";
}

void ColumnIndex::Add(const Tuple* tuple) {
  const Value key = (*tuple)[column_];
  if (kind_ == IndexKind::kHash) {
    hash_buckets_[key].push_back(tuple);
  } else {
    sorted_buckets_[key].push_back(tuple);
  }
}

const std::vector<const Tuple*>& ColumnIndex::Probe(Value value) const {
  static const std::vector<const Tuple*> kEmpty;
  if (kind_ == IndexKind::kHash) {
    auto it = hash_buckets_.find(value);
    return it == hash_buckets_.end() ? kEmpty : it->second;
  }
  auto it = sorted_buckets_.find(value);
  return it == sorted_buckets_.end() ? kEmpty : it->second;
}

void ColumnIndex::ProbeRange(Value lo, Value hi,
                             std::vector<const Tuple*>* out) const {
  CARAC_CHECK(kind_ == IndexKind::kSorted);
  for (auto it = sorted_buckets_.lower_bound(lo);
       it != sorted_buckets_.end() && it->first <= hi; ++it) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

void ColumnIndex::Clear() {
  hash_buckets_.clear();
  sorted_buckets_.clear();
}

}  // namespace carac::storage
