#include "storage/database.h"

#include <algorithm>
#include <utility>

#include "util/status.h"

namespace carac::storage {

const char* DbKindName(DbKind kind) {
  switch (kind) {
    case DbKind::kDerived:
      return "derived";
    case DbKind::kDeltaKnown:
      return "delta_known";
    case DbKind::kDeltaNew:
      return "delta_new";
  }
  return "?";
}

RelationId DatabaseSet::AddRelation(const std::string& name, size_t arity) {
  const RelationId id = static_cast<RelationId>(stores_.size());
  Store store;
  store.derived = std::make_unique<Relation>(name, arity);
  store.delta_known = std::make_unique<Relation>(name + "_dk", arity);
  store.delta_new = std::make_unique<Relation>(name + "_dn", arity);
  stores_.push_back(std::move(store));
  edb_rows_.emplace_back();
  return id;
}

const std::string& DatabaseSet::RelationName(RelationId id) const {
  CARAC_CHECK(id < stores_.size());
  return stores_[id].derived->name();
}

size_t DatabaseSet::RelationArity(RelationId id) const {
  CARAC_CHECK(id < stores_.size());
  return stores_[id].derived->arity();
}

Relation& DatabaseSet::Get(RelationId id, DbKind kind) {
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  switch (kind) {
    case DbKind::kDerived:
      return *store.derived;
    case DbKind::kDeltaKnown:
      return *store.delta_known;
    case DbKind::kDeltaNew:
      return *store.delta_new;
  }
  return *store.derived;  // Unreachable.
}

const Relation& DatabaseSet::Get(RelationId id, DbKind kind) const {
  return const_cast<DatabaseSet*>(this)->Get(id, kind);
}

void DatabaseSet::SetIndexKindOverride(RelationId id, size_t column,
                                       IndexKind kind) {
  index_kind_overrides_[{id, column}] = kind;
}

void DatabaseSet::DeclareIndex(RelationId id, size_t column) {
  const auto it = index_kind_overrides_.find({id, column});
  DeclareIndex(id, column,
               it != index_kind_overrides_.end() ? it->second : index_kind_);
}

void DatabaseSet::DeclareIndex(RelationId id, size_t column,
                               IndexKind kind) {
  if (!indexing_enabled_) return;
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  store.derived->DeclareIndex(column, kind);
  store.delta_known->DeclareIndex(column, kind);
  store.delta_new->DeclareIndex(column, kind);
}

void DatabaseSet::RedeclareIndex(RelationId id, size_t column,
                                 IndexKind kind) {
  if (!indexing_enabled_) return;
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  store.derived->RedeclareIndex(column, kind);
  store.delta_known->RedeclareIndex(column, kind);
  store.delta_new->RedeclareIndex(column, kind);
}

bool DatabaseSet::InsertFact(RelationId id, Tuple tuple) {
  Relation& derived = Get(id, DbKind::kDerived);
  if (derived.Insert(tuple)) {
    edb_rows_[id].push_back(derived.NumRows() - 1);
    return true;
  }
  // Dedup hit: the tuple already exists — but possibly only as a DERIVED
  // row. An asserted fact must survive stratum recompute regardless of
  // what the rules conclude, so register the existing row as EDB too.
  // edb_rows_ stays ascending (appends use strictly increasing RowIds),
  // making the membership probe a binary search; a mid-vector insert
  // happens only on this re-assertion path.
  const RowId row = derived.FindRow(tuple);
  std::vector<RowId>& rows = edb_rows_[id];
  const auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it == rows.end() || *it != row) rows.insert(it, row);
  return false;
}

void DatabaseSet::Reserve(RelationId id, size_t rows) {
  Get(id, DbKind::kDerived).Reserve(rows);
}

void DatabaseSet::SwapClearMerge(const std::vector<RelationId>& relations) {
  for (RelationId id : relations) {
    Store& store = stores_[id];
    store.delta_known->Clear();
    std::swap(store.delta_known, store.delta_new);
    // Merge the freshly swapped-in DeltaKnown into Derived: every fact
    // readable from a delta must also be readable from Derived.
    const Relation& known = *store.delta_known;
    if (!known.empty()) {
      store.derived->Reserve(store.derived->size() + known.size());
      for (RowId row = 0; row < known.NumRows(); ++row) {
        store.derived->Insert(known.View(row));
      }
    }
  }
}

bool DatabaseSet::AnyDeltaKnownNonEmpty(
    const std::vector<RelationId>& relations) const {
  for (RelationId id : relations) {
    if (!stores_[id].delta_known->empty()) return true;
  }
  return false;
}

bool DatabaseSet::ChangedSinceWatermark(RelationId id) const {
  CARAC_CHECK(id < stores_.size());
  const Relation& derived = *stores_[id].derived;
  return derived.NumRows() > derived.watermark();
}

size_t DatabaseSet::SeedDeltaFromWatermark(RelationId id) {
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  store.delta_known->Clear();
  store.delta_new->Clear();
  const Relation& derived = *store.derived;
  const RowId begin = derived.watermark();
  const RowId end = derived.NumRows();
  if (begin >= end) return 0;
  store.delta_known->Reserve(end - begin);
  for (RowId row = begin; row < end; ++row) {
    store.delta_known->Insert(derived.View(row));
  }
  return end - begin;
}

void DatabaseSet::AdvanceEpoch() {
  for (Store& store : stores_) store.derived->AdvanceWatermark();
  ++epoch_;
}

void DatabaseSet::ResetToEdbFacts(RelationId id) {
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  // Materialize before clearing: edb_rows_ points into the arena that
  // Clear() is about to drop.
  std::vector<Tuple> facts;
  facts.reserve(edb_rows_[id].size());
  for (RowId row : edb_rows_[id]) {
    facts.push_back(store.derived->View(row).ToTuple());
  }
  store.derived->Clear();
  store.delta_known->Clear();
  store.delta_new->Clear();
  edb_rows_[id].clear();
  store.derived->Reserve(facts.size());
  for (Tuple& fact : facts) InsertFact(id, std::move(fact));
}

void DatabaseSet::ClearFacts(RelationId id) {
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  store.derived->Clear();
  store.delta_known->Clear();
  store.delta_new->Clear();
  edb_rows_[id].clear();
}

void DatabaseSet::ClearAll() {
  for (Store& store : stores_) {
    store.derived->Clear();
    store.delta_known->Clear();
    store.delta_new->Clear();
  }
  for (std::vector<RowId>& rows : edb_rows_) rows.clear();
  epoch_ = 0;
}

}  // namespace carac::storage

