#include "storage/database.h"

#include <utility>

#include "util/status.h"

namespace carac::storage {

const char* DbKindName(DbKind kind) {
  switch (kind) {
    case DbKind::kDerived:
      return "derived";
    case DbKind::kDeltaKnown:
      return "delta_known";
    case DbKind::kDeltaNew:
      return "delta_new";
  }
  return "?";
}

RelationId DatabaseSet::AddRelation(const std::string& name, size_t arity) {
  const RelationId id = static_cast<RelationId>(stores_.size());
  Store store;
  store.derived = std::make_unique<Relation>(name, arity);
  store.delta_known = std::make_unique<Relation>(name + "_dk", arity);
  store.delta_new = std::make_unique<Relation>(name + "_dn", arity);
  stores_.push_back(std::move(store));
  return id;
}

const std::string& DatabaseSet::RelationName(RelationId id) const {
  CARAC_CHECK(id < stores_.size());
  return stores_[id].derived->name();
}

size_t DatabaseSet::RelationArity(RelationId id) const {
  CARAC_CHECK(id < stores_.size());
  return stores_[id].derived->arity();
}

Relation& DatabaseSet::Get(RelationId id, DbKind kind) {
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  switch (kind) {
    case DbKind::kDerived:
      return *store.derived;
    case DbKind::kDeltaKnown:
      return *store.delta_known;
    case DbKind::kDeltaNew:
      return *store.delta_new;
  }
  return *store.derived;  // Unreachable.
}

const Relation& DatabaseSet::Get(RelationId id, DbKind kind) const {
  return const_cast<DatabaseSet*>(this)->Get(id, kind);
}

void DatabaseSet::DeclareIndex(RelationId id, size_t column) {
  if (!indexing_enabled_) return;
  CARAC_CHECK(id < stores_.size());
  Store& store = stores_[id];
  store.derived->DeclareIndex(column, index_kind_);
  store.delta_known->DeclareIndex(column, index_kind_);
  store.delta_new->DeclareIndex(column, index_kind_);
}

bool DatabaseSet::InsertFact(RelationId id, Tuple tuple) {
  return Get(id, DbKind::kDerived).Insert(tuple);
}

void DatabaseSet::Reserve(RelationId id, size_t rows) {
  Get(id, DbKind::kDerived).Reserve(rows);
}

void DatabaseSet::SwapClearMerge(const std::vector<RelationId>& relations) {
  for (RelationId id : relations) {
    Store& store = stores_[id];
    store.delta_known->Clear();
    std::swap(store.delta_known, store.delta_new);
    // Merge the freshly swapped-in DeltaKnown into Derived: every fact
    // readable from a delta must also be readable from Derived.
    const Relation& known = *store.delta_known;
    if (!known.empty()) {
      store.derived->Reserve(store.derived->size() + known.size());
      for (RowId row = 0; row < known.NumRows(); ++row) {
        store.derived->Insert(known.View(row));
      }
    }
  }
}

bool DatabaseSet::AnyDeltaKnownNonEmpty(
    const std::vector<RelationId>& relations) const {
  for (RelationId id : relations) {
    if (!stores_[id].delta_known->empty()) return true;
  }
  return false;
}

void DatabaseSet::ClearAll() {
  for (Store& store : stores_) {
    store.derived->Clear();
    store.delta_known->Clear();
    store.delta_new->Clear();
  }
}

}  // namespace carac::storage

