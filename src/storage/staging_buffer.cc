#include "storage/staging_buffer.h"

#include "util/hash.h"
#include "util/status.h"

namespace carac::storage {

void StagingBuffer::Reset(size_t arity) {
  arity_ = arity;
  arena_.clear();
  // Capacity for the previous batch under the 3/4 load ceiling. A table
  // that ballooned for one big rule is shrunk back towards it — without
  // this, every later Reset would memset the historical maximum even
  // when the tail iterations stage a handful of tuples.
  size_t wanted = kMinSlots;
  const size_t need = static_cast<size_t>(num_rows_) + num_rows_ / 3 + 1;
  while (wanted < need) wanted <<= 1;
  num_rows_ = 0;
  if (slots_.empty() || slots_.size() > wanted * 4) {
    slots_.assign(wanted, kEmptySlot);
    slot_mask_ = wanted - 1;
  } else {
    std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  }
}

bool StagingBuffer::RowEquals(uint32_t row, TupleView tuple) const {
  const Value* stored = arena_.data() + static_cast<size_t>(row) * arity_;
  for (size_t i = 0; i < arity_; ++i) {
    if (stored[i] != tuple[i]) return false;
  }
  return true;
}

bool StagingBuffer::Insert(TupleView tuple) {
  CARAC_CHECK(tuple.size() == arity_);
  // Grow at 3/4 load so linear-probe chains stay short. The kMinSlots
  // floor also covers a buffer that was never Reset (slots_ empty), where
  // doubling zero would otherwise produce a zero-slot table.
  if ((static_cast<size_t>(num_rows_) + 1) * 4 > slots_.size() * 3) {
    const size_t doubled = slots_.size() * 2;
    Rehash(doubled < kMinSlots ? kMinSlots : doubled);
  }
  const uint64_t hash = util::HashSpan(tuple.data(), arity_);
  size_t slot = hash & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (RowEquals(slots_[slot], tuple)) return false;
    slot = (slot + 1) & slot_mask_;
  }
  CARAC_CHECK(num_rows_ < kEmptySlot);
  slots_[slot] = num_rows_;
  arena_.insert(arena_.end(), tuple.begin(), tuple.end());
  ++num_rows_;
  return true;
}

bool StagingBuffer::Contains(TupleView tuple) const {
  CARAC_CHECK(tuple.size() == arity_);
  if (num_rows_ == 0) return false;
  const uint64_t hash = util::HashSpan(tuple.data(), arity_);
  size_t slot = hash & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (RowEquals(slots_[slot], tuple)) return true;
    slot = (slot + 1) & slot_mask_;
  }
  return false;
}

void StagingBuffer::Rehash(size_t new_slots) {
  slots_.assign(new_slots, kEmptySlot);
  slot_mask_ = new_slots - 1;
  for (uint32_t row = 0; row < num_rows_; ++row) {
    const uint64_t hash =
        util::HashSpan(arena_.data() + static_cast<size_t>(row) * arity_,
                       arity_);
    size_t slot = hash & slot_mask_;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
    slots_[slot] = row;
  }
}

}  // namespace carac::storage
