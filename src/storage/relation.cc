#include "storage/relation.h"

#include <algorithm>

#include "storage/staging_buffer.h"
#include "util/hash.h"
#include "util/status.h"

namespace carac::storage {

namespace {

/// Smallest power of two >= n (and >= kMin).
size_t NextPowerOfTwo(size_t n, size_t k_min) {
  size_t p = k_min;
  while (p < n) p <<= 1;
  return p;
}

/// Kind-dispatched index maintenance: one predictable switch instead of
/// a virtual call per indexed column per insert. The Fast entry points of
/// the header-defined kinds inline here.
inline void IndexAdd(IndexBase* index, RowId row, Value key) {
  switch (index->kind()) {
    case IndexKind::kHash:
      static_cast<HashIndex*>(index)->AddFast(row, key);
      return;
    case IndexKind::kSorted:
      static_cast<SortedIndex*>(index)->AddFast(row, key);
      return;
    case IndexKind::kBtree:
      static_cast<BtreeIndex*>(index)->AddFast(row, key);
      return;
    case IndexKind::kSortedArray:
      static_cast<SortedArrayIndex*>(index)->AddFast(row, key);
      return;
    case IndexKind::kLearned:
      // Inherited tail append; the model only covers the stable prefix.
      static_cast<LearnedIndex*>(index)->AddFast(row, key);
      return;
  }
}

/// Kind-dispatched probe, same rationale as IndexAdd.
inline RowCursor IndexProbe(const IndexBase& index, Value value) {
  switch (index.kind()) {
    case IndexKind::kHash:
      return static_cast<const HashIndex&>(index).ProbeFast(value);
    case IndexKind::kSorted:
      return static_cast<const SortedIndex&>(index).ProbeFast(value);
    case IndexKind::kBtree:
      return static_cast<const BtreeIndex&>(index).ProbeFast(value);
    case IndexKind::kSortedArray:
      return static_cast<const SortedArrayIndex&>(index).ProbeFast(value);
    case IndexKind::kLearned:
      return static_cast<const LearnedIndex&>(index).ProbeFast(value);
  }
  return RowCursor();  // Unreachable.
}

}  // namespace

void Relation::Reserve(size_t rows) {
  EnsureArenaCapacity(rows * arity_);
  // Size the table so `rows` entries stay under the 3/4 load ceiling.
  const size_t wanted = NextPowerOfTwo(rows + rows / 3 + 1, kMinSlots);
  if (wanted > slots_.size()) Rehash(wanted);
}

void Relation::EnsureArenaCapacity(size_t values) {
  if (arena_->capacity() >= values) return;
  // Geometric growth, like the plain vector this replaces.
  const size_t grown = std::max(values, arena_->capacity() * 2);
  if (!arena_shared_) {
    arena_->reserve(grown);
    arena_data_ = arena_->data();
    return;
  }
  // Pinned views are reading this buffer: moving its contents in place
  // would reallocate under them. Copy into a fresh buffer and retire the
  // old one — it stays alive through the views' shared ownership.
  auto fresh = std::make_shared<std::vector<Value>>();
  fresh->reserve(grown);
  fresh->assign(arena_->begin(), arena_->end());
  AdoptArena(std::move(fresh));
}

void Relation::AdoptArena(std::shared_ptr<std::vector<Value>> fresh) {
  arena_ = std::move(fresh);
  arena_data_ = arena_->data();
  arena_shared_ = false;
}

RelationReadView Relation::PinView(RowId upto) {
  CARAC_CHECK(upto <= num_rows_);
  // A zero-row view never dereferences the buffer, so only nonempty pins
  // force copy-on-retire semantics onto later mutations.
  if (upto > 0) arena_shared_ = true;
  return RelationReadView(
      std::shared_ptr<const std::vector<Value>>(arena_), arena_data_, upto,
      arity_);
}

bool Relation::Insert(TupleView tuple) {
  CARAC_CHECK(tuple.size() == arity_);
  // Grow at 3/4 load so linear-probe chains stay short.
  if ((static_cast<size_t>(num_rows_) + 1) * 4 > slots_.size() * 3) {
    Rehash(NextPowerOfTwo(slots_.size() * 2, kMinSlots));
  }
  const uint64_t hash = util::HashSpan(tuple.data(), arity_);
  size_t slot = hash & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (RowEquals(slots_[slot], tuple)) return false;
    slot = (slot + 1) & slot_mask_;
  }
  // New row: append to the arena and publish its RowId. 0xFFFFFFFF is the
  // empty-slot sentinel, so it must never become a live RowId — fail
  // loudly instead of silently corrupting dedup at 2^32-1 rows.
  CARAC_CHECK(num_rows_ < kEmptySlot);
  slots_[slot] = num_rows_;
  // Capacity is ensured up front so the append itself never reallocates —
  // rows below any pinned view's bound stay where its readers see them.
  EnsureArenaCapacity((static_cast<size_t>(num_rows_) + 1) * arity_);
  arena_->insert(arena_->end(), tuple.begin(), tuple.end());
  for (const std::unique_ptr<IndexBase>& index : indexes_) {
    IndexAdd(index.get(), num_rows_, tuple[index->column()]);
  }
  ++num_rows_;
  return true;
}

bool Relation::Contains(TupleView tuple) const {
  CARAC_CHECK(tuple.size() == arity_);
  if (num_rows_ == 0) return false;
  const uint64_t hash = util::HashSpan(tuple.data(), arity_);
  size_t slot = hash & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (RowEquals(slots_[slot], tuple)) return true;
    slot = (slot + 1) & slot_mask_;
  }
  return false;
}

RowId Relation::FindRow(TupleView tuple) const {
  CARAC_CHECK(tuple.size() == arity_);
  if (num_rows_ == 0) return kNoRow;
  const uint64_t hash = util::HashSpan(tuple.data(), arity_);
  size_t slot = hash & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (RowEquals(slots_[slot], tuple)) return slots_[slot];
    slot = (slot + 1) & slot_mask_;
  }
  return kNoRow;
}

void Relation::Rehash(size_t new_slots) {
  slots_.assign(new_slots, kEmptySlot);
  slot_mask_ = new_slots - 1;
  for (RowId row = 0; row < num_rows_; ++row) {
    const uint64_t hash = util::HashSpan(RowData(row), arity_);
    size_t slot = hash & slot_mask_;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
    slots_[slot] = row;
  }
}

void Relation::DeclareIndex(size_t column, IndexKind kind) {
  CARAC_CHECK(column < arity_);
  if (HasIndex(column)) return;
  if (index_by_column_.size() < arity_) {
    index_by_column_.resize(arity_, kNoIndex);
  }
  index_by_column_[column] = indexes_.size();
  indexes_.push_back(MakeIndex(column, kind));
  IndexBase& index = *indexes_.back();
  for (RowId row = 0; row < num_rows_; ++row) {
    index.Add(row, RowData(row)[column]);
  }
  // A bulk build is a quiescent point: everything present is stable.
  index.Stabilize(num_rows_);
}

void Relation::RedeclareIndex(size_t column, IndexKind kind) {
  if (HasIndex(column) && IndexKindOf(column) != kind) {
    std::unique_ptr<IndexBase>& slot = indexes_[index_by_column_[column]];
    slot = MakeIndex(column, kind);
    for (RowId row = 0; row < num_rows_; ++row) {
      slot->Add(row, RowData(row)[column]);
    }
    slot->Stabilize(num_rows_);
    return;
  }
  DeclareIndex(column, kind);
}

RowCursor Relation::Probe(size_t column, Value value) const {
  CARAC_CHECK(HasIndex(column));
  return IndexProbe(*indexes_[index_by_column_[column]], value);
}

void Relation::BatchProbe(size_t column, const Value* keys, size_t n,
                          RowCursor* out) const {
  CARAC_CHECK(HasIndex(column));
  indexes_[index_by_column_[column]]->BatchProbe(keys, n, out);
}

IndexKind Relation::IndexKindOf(size_t column) const {
  CARAC_CHECK(HasIndex(column));
  return indexes_[index_by_column_[column]]->kind();
}

util::Status Relation::ProbeRange(size_t column, Value lo, Value hi,
                                  std::vector<RowId>* out) const {
  CARAC_CHECK(HasIndex(column));
  return indexes_[index_by_column_[column]]->ProbeRange(lo, hi, out);
}

void Relation::StabilizeIndexes() {
  for (const std::unique_ptr<IndexBase>& index : indexes_) {
    index->Stabilize(num_rows_);
  }
}

void Relation::Clear() {
  num_rows_ = 0;
  watermark_ = 0;
  if (arena_shared_) {
    // Pinned views may still be walking this buffer; recycling its
    // storage would overwrite rows under their readers. Retire it — the
    // views' shared ownership keeps it alive — and start fresh. Delta
    // stores are never pinned, so the evaluator's per-iteration clears
    // keep today's capacity-preserving fast path.
    AdoptArena(std::make_shared<std::vector<Value>>());
  } else {
    arena_->clear();
  }
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  for (const std::unique_ptr<IndexBase>& index : indexes_) index->Clear();
}

void Relation::Absorb(Relation* other) {
  CARAC_CHECK(other->arity_ == arity_);
  Reserve(num_rows_ + other->num_rows_);
  for (RowId row = 0; row < other->num_rows_; ++row) {
    Insert(other->View(row));
  }
  other->Clear();
}

size_t Relation::InsertStaged(const StagingBuffer& staged,
                              const Relation* unless_in) {
  CARAC_CHECK(staged.arity() == arity_);
  if (staged.empty()) return 0;
  Reserve(static_cast<size_t>(num_rows_) + staged.NumRows());
  size_t inserted = 0;
  for (uint32_t row = 0; row < staged.NumRows(); ++row) {
    const TupleView tuple = staged.View(row);
    if (unless_in != nullptr && unless_in->Contains(tuple)) continue;
    if (Insert(tuple)) ++inserted;
  }
  return inserted;
}

void Relation::CopyIndexDeclarations(const Relation& other) {
  for (const std::unique_ptr<IndexBase>& index : other.indexes_) {
    DeclareIndex(index->column(), index->kind());
  }
}

void Relation::LoadContents(std::vector<Value> arena, uint32_t num_rows,
                            RowId watermark) {
  CARAC_CHECK(arena.size() == static_cast<size_t>(num_rows) * arity_);
  CARAC_CHECK(watermark <= num_rows);
  // Adopt the loaded arena as a fresh buffer; any pinned views keep the
  // retired one (a snapshot open under live readers must not mutate the
  // rows they are scanning).
  AdoptArena(std::make_shared<std::vector<Value>>(std::move(arena)));
  num_rows_ = num_rows;
  watermark_ = watermark;
  // Rebuild the dedup table at the same load factor Reserve() targets.
  Rehash(NextPowerOfTwo(num_rows + num_rows / 3 + 1, kMinSlots));
  for (const std::unique_ptr<IndexBase>& index : indexes_) {
    index->Clear();
    for (RowId row = 0; row < num_rows_; ++row) {
      index->Add(row, RowData(row)[index->column()]);
    }
    // Snapshot load is a quiescent point: the loaded rows are stable.
    index->Stabilize(num_rows_);
  }
}

std::vector<Tuple> Relation::SortedRows() const {
  std::vector<Tuple> out;
  out.reserve(num_rows_);
  for (RowId row = 0; row < num_rows_; ++row) {
    out.push_back(View(row).ToTuple());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace carac::storage
