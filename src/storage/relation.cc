#include "storage/relation.h"

#include <algorithm>

#include "util/status.h"

namespace carac::storage {

bool Relation::Insert(const Tuple& tuple) {
  CARAC_CHECK(tuple.size() == arity_);
  auto [it, inserted] = rows_.insert(tuple);
  if (inserted) IndexNewTuple(&*it);
  return inserted;
}

bool Relation::Insert(Tuple&& tuple) {
  CARAC_CHECK(tuple.size() == arity_);
  auto [it, inserted] = rows_.insert(std::move(tuple));
  if (inserted) IndexNewTuple(&*it);
  return inserted;
}

void Relation::DeclareIndex(size_t column, IndexKind kind) {
  CARAC_CHECK(column < arity_);
  if (HasIndex(column)) return;
  if (index_by_column_.size() < arity_) {
    index_by_column_.resize(arity_, kNoIndex);
  }
  index_by_column_[column] = indexes_.size();
  indexes_.emplace_back(column, kind);
  ColumnIndex& index = indexes_.back();
  for (const Tuple& t : rows_) index.Add(&t);
}

const std::vector<const Tuple*>& Relation::Probe(size_t column,
                                                 Value value) const {
  CARAC_CHECK(HasIndex(column));
  return indexes_[index_by_column_[column]].Probe(value);
}

IndexKind Relation::IndexKindOf(size_t column) const {
  CARAC_CHECK(HasIndex(column));
  return indexes_[index_by_column_[column]].kind();
}

void Relation::ProbeRange(size_t column, Value lo, Value hi,
                          std::vector<const Tuple*>* out) const {
  CARAC_CHECK(HasIndex(column));
  indexes_[index_by_column_[column]].ProbeRange(lo, hi, out);
}

void Relation::Clear() {
  rows_.clear();
  for (ColumnIndex& index : indexes_) index.Clear();
}

void Relation::Absorb(Relation* other) {
  CARAC_CHECK(other->arity_ == arity_);
  for (auto it = other->rows_.begin(); it != other->rows_.end();) {
    auto node = other->rows_.extract(it++);
    auto [pos, inserted] = rows_.insert(std::move(node.value()));
    if (inserted) IndexNewTuple(&*pos);
  }
  other->Clear();
}

void Relation::CopyIndexDeclarations(const Relation& other) {
  for (const ColumnIndex& index : other.indexes_) {
    DeclareIndex(index.column(), index.kind());
  }
}

std::vector<Tuple> Relation::SortedRows() const {
  std::vector<Tuple> out(rows_.begin(), rows_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Relation::IndexNewTuple(const Tuple* tuple) {
  for (ColumnIndex& index : indexes_) index.Add(tuple);
}

}  // namespace carac::storage
