#ifndef CARAC_STORAGE_READ_VIEW_H_
#define CARAC_STORAGE_READ_VIEW_H_

#include <memory>
#include <vector>

#include "storage/tuple.h"

namespace carac::storage {

/// A pinned, immutable cursor over one relation's first `num_rows` rows —
/// in the serving layer, the rows at or below the epoch watermark when
/// the view was pinned (Relation::PinView). The view holds SHARED
/// ownership of the arena buffer it points into, so it stays valid even
/// if the live relation afterwards grows past the buffer's capacity,
/// is cleared by a stratum recompute, or reloads a snapshot: all of
/// those retire the old buffer to a fresh one instead of mutating the
/// pinned rows (see Relation's copy-on-retire arena). Rows strictly
/// above the pinned bound may share the buffer with concurrent writer
/// appends — the view never reads them.
///
/// Reads are zero-copy: View() hands out TupleViews straight into the
/// arena. The only allocation a sorted scan needs is the RowId
/// permutation (4 bytes per row), never a materialized Tuple copy.
class RelationReadView {
 public:
  /// An empty view (no rows, arity 0).
  RelationReadView() = default;

  size_t arity() const { return arity_; }
  uint32_t NumRows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Zero-copy view of row `row` (< NumRows()); valid as long as this
  /// RelationReadView (or any copy of it) is alive.
  TupleView View(RowId row) const {
    return TupleView(data_ + static_cast<size_t>(row) * arity_, arity_);
  }

  /// RowIds of the pinned rows in ascending tuple order — the same order
  /// SortedRows() produces, without copying a single tuple. Streaming
  /// `dump` walks this permutation and emits View(id) per row.
  std::vector<RowId> SortedRowIds() const;

 private:
  friend class Relation;
  RelationReadView(std::shared_ptr<const std::vector<Value>> buffer,
                   const Value* data, uint32_t num_rows, size_t arity)
      : buffer_(std::move(buffer)),
        data_(data),
        num_rows_(num_rows),
        arity_(arity) {}

  /// Keep-alive for the arena buffer `data_` points into.
  std::shared_ptr<const std::vector<Value>> buffer_;
  const Value* data_ = nullptr;
  uint32_t num_rows_ = 0;
  size_t arity_ = 0;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_READ_VIEW_H_
