#include "storage/factlog.h"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "storage/wire.h"
#include "util/hash.h"

namespace carac::storage {

namespace {

constexpr char kLogMagic[8] = {'C', 'A', 'R', 'A', 'C', 'F', 'L', 'G'};
constexpr size_t kFileHeaderBytes = 16;  // magic + version u32 + reserved u32

constexpr uint8_t kBatchTag = 1;
constexpr uint8_t kSymbolsTag = 2;
constexpr uint8_t kCommitTag = 3;

util::Status Corrupt(const std::string& path, uint64_t offset,
                     const std::string& what) {
  return util::Status::InvalidArgument(
      "fact log " + path + " at offset " + std::to_string(offset) + ": " +
      what);
}

}  // namespace

FactLog::~FactLog() {
  if (file_ != nullptr) std::fclose(file_);
}

util::Status FactLog::OpenForAppend(const std::string& path,
                                    std::unique_ptr<FactLog>* out,
                                    uint64_t* last_committed_epoch) {
  if (last_committed_epoch != nullptr) *last_committed_epoch = 0;
  std::error_code ec;
  const uint64_t existing = std::filesystem::exists(path, ec)
                                ? std::filesystem::file_size(path, ec)
                                : 0;
  if (existing >= kFileHeaderBytes) {
    // Scan the file we are about to extend (checksums verified, payloads
    // skipped). This both validates the header (a foreign or corrupt
    // log is refused, never extended) and finds the end of the
    // committed prefix, so any torn tail — crash debris from a previous
    // process — is truncated away HERE rather than relying on every
    // caller to have recovered first. Appending after torn bytes would
    // otherwise poison the whole log: a later Replay's checksum would
    // span the tear into the new records.
    ReplayResult scan;
    util::Status status = ScanOrReplay(path, &scan,
                                       /*decode_payloads=*/false);
    if (!status.ok()) {
      return util::Status::InvalidArgument(
          "fact log " + path +
          ": refusing to append to unrecoverable log: " + status.message());
    }
    if (scan.committed_bytes < kFileHeaderBytes) {
      // Torn inside the header: nothing recoverable, start over below.
    } else {
      if (last_committed_epoch != nullptr && !scan.epochs.empty()) {
        *last_committed_epoch = scan.epochs.back().epoch;
      }
      if (scan.torn_tail) {
        std::filesystem::resize_file(path, scan.committed_bytes, ec);
        if (ec) {
          return util::Status::Internal("cannot truncate torn fact log " +
                                        path + ": " + ec.message());
        }
      }
      std::FILE* f = std::fopen(path.c_str(), "ab");
      if (f == nullptr) {
        return util::Status::Internal("cannot append to fact log " + path);
      }
      out->reset(new FactLog(f, path));
      return util::Status::Ok();
    }
  }

  // Fresh (or header-torn) log: start over with a clean header.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::Internal("cannot create fact log " + path);
  }
  WireBuf header;
  header.PutBytes(kLogMagic, 8);
  header.PutU32(kFactLogFormatVersion);
  header.PutU32(0);  // Reserved.
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return util::Status::Internal("short write creating fact log " + path);
  }
  out->reset(new FactLog(f, path));
  return util::Status::Ok();
}

util::Status FactLog::AppendRecord(uint8_t tag, const unsigned char* payload,
                                   size_t len) {
  WireBuf record;
  record.PutU8(tag);
  record.PutU32(static_cast<uint32_t>(len));
  record.PutBytes(payload, len);
  record.PutU64(util::HashBytes(record.data(), record.size()));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return util::Status::Internal("short write appending to fact log " +
                                  path_);
  }
  return util::Status::Ok();
}

util::Status FactLog::AppendBatch(RelationId relation, size_t arity,
                                  const std::vector<Tuple>& facts) {
  WireBuf payload;
  payload.PutU32(relation);
  payload.PutU32(static_cast<uint32_t>(arity));
  payload.PutU32(static_cast<uint32_t>(facts.size()));
  for (const Tuple& fact : facts) payload.PutValues(fact.data(), fact.size());
  return AppendRecord(kBatchTag, payload.data(), payload.size());
}

util::Status FactLog::AppendSymbols(
    uint64_t start_index, const std::vector<std::string_view>& symbols) {
  WireBuf payload;
  payload.PutU64(start_index);
  payload.PutU32(static_cast<uint32_t>(symbols.size()));
  for (std::string_view text : symbols) {
    payload.PutU32(static_cast<uint32_t>(text.size()));
    payload.PutBytes(text.data(), text.size());
  }
  return AppendRecord(kSymbolsTag, payload.data(), payload.size());
}

util::Status FactLog::Commit(uint64_t epoch) {
  WireBuf payload;
  payload.PutU64(epoch);
  CARAC_RETURN_IF_ERROR(AppendRecord(kCommitTag, payload.data(),
                                     payload.size()));
  // The commit record is the durability point: flush it to the OS so a
  // process crash after Commit() returns cannot lose the epoch. (Media
  // durability would add fsync; the recovery contract is crash-, not
  // power-failure-grade, and the tests exercise exactly this boundary.)
  if (std::fflush(file_) != 0) {
    return util::Status::Internal("flush failed on fact log " + path_);
  }
  return util::Status::Ok();
}

util::Status FactLog::Replay(const std::string& path, ReplayResult* out) {
  return ScanOrReplay(path, out, /*decode_payloads=*/true);
}

util::Status FactLog::ScanOrReplay(const std::string& path,
                                   ReplayResult* out, bool decode_payloads) {
  *out = ReplayResult{};
  std::vector<unsigned char> bytes;
  CARAC_RETURN_IF_ERROR(ReadWholeFile(path, "fact log", &bytes));

  WireReader r(bytes.data(), bytes.size());
  if (bytes.size() < kFileHeaderBytes) {
    // A crash during creation can leave a torn header; there is nothing
    // recoverable in it, so recovery starts from the snapshot alone.
    out->torn_tail = !bytes.empty();
    out->committed_bytes = 0;
    return util::Status::Ok();
  }
  char magic[8];
  uint32_t version = 0;
  uint32_t reserved = 0;
  r.GetBytes(magic, 8);
  r.GetU32(&version);
  r.GetU32(&reserved);
  if (std::memcmp(magic, kLogMagic, 8) != 0) {
    return Corrupt(path, 0, "bad magic (not a carac fact log)");
  }
  if (version != kFactLogFormatVersion) {
    return Corrupt(path, 8,
                   "format version " + std::to_string(version) +
                       " (this build reads only version " +
                       std::to_string(kFactLogFormatVersion) + ")");
  }
  out->committed_bytes = kFileHeaderBytes;

  ReplayEpoch pending;
  bool pending_records = false;  // Batch/symbol records since last commit.
  while (r.remaining() > 0) {
    const size_t record_start = r.pos();
    uint8_t tag = 0;
    uint32_t len = 0;
    if (!r.GetU8(&tag) || !r.GetU32(&len) || len > r.remaining()) {
      // Record head or payload cut short by EOF: torn tail.
      out->torn_tail = true;
      break;
    }
    if (tag != kBatchTag && tag != kSymbolsTag && tag != kCommitTag) {
      return Corrupt(path, record_start,
                     "unknown record tag " + std::to_string(tag));
    }
    std::vector<unsigned char> payload(len);
    r.GetBytes(payload.data(), len);
    const uint64_t computed = r.ChecksumSince(record_start);
    uint64_t stored = 0;
    if (!r.GetU64(&stored)) {
      out->torn_tail = true;  // Checksum itself cut short by EOF.
      break;
    }
    if (computed != stored) {
      return Corrupt(path, record_start, "record checksum mismatch");
    }

    if (!decode_payloads && tag != kCommitTag) {
      // Scan mode: the record is framed and checksummed; its contents
      // are not needed to locate the committed prefix.
      pending_records = true;
      continue;
    }
    WireReader p(payload.data(), payload.size());
    if (tag == kBatchTag) {
      uint32_t relation = 0;
      uint32_t arity = 0;
      uint32_t count = 0;
      if (!p.GetU32(&relation) || !p.GetU32(&arity) || !p.GetU32(&count) ||
          static_cast<uint64_t>(count) * arity * 8 != p.remaining()) {
        return Corrupt(path, record_start, "malformed batch record");
      }
      ReplayBatch batch;
      batch.relation = relation;
      batch.facts.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        Tuple fact;
        p.GetValues(&fact, arity);
        batch.facts.push_back(std::move(fact));
      }
      pending.batches.push_back(std::move(batch));
      pending_records = true;
    } else if (tag == kSymbolsTag) {
      uint64_t start_index = 0;
      uint32_t count = 0;
      if (!p.GetU64(&start_index) || !p.GetU32(&count)) {
        return Corrupt(path, record_start, "malformed symbols record");
      }
      for (uint32_t i = 0; i < count; ++i) {
        std::string text;
        if (!p.GetString(&text)) {
          return Corrupt(path, record_start, "malformed symbols record");
        }
        pending.symbols.emplace_back(start_index + i, std::move(text));
      }
      if (p.remaining() != 0) {
        return Corrupt(path, record_start, "malformed symbols record");
      }
      pending_records = true;
    } else {  // kCommitTag
      uint64_t epoch = 0;
      if (!p.GetU64(&epoch) || p.remaining() != 0) {
        return Corrupt(path, record_start, "malformed commit record");
      }
      pending.epoch = epoch;
      pending.end_offset = r.pos();
      out->epochs.push_back(std::move(pending));
      pending = ReplayEpoch{};
      pending_records = false;
      out->committed_bytes = r.pos();
    }
  }
  // Unsealed records past the last commit are discarded: an epoch
  // either replays whole or not at all.
  if (pending_records) out->torn_tail = true;
  return util::Status::Ok();
}

}  // namespace carac::storage
