#include "storage/snapshot.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/wire.h"
#include "util/status.h"

namespace carac::storage {

namespace {

constexpr char kHeaderMagic[8] = {'C', 'A', 'R', 'A', 'C', 'S', 'N', 'P'};
constexpr char kFooterMagic[8] = {'C', 'A', 'R', 'A', 'C', 'E', 'N', 'D'};

bool WriteBytes(const void* data, size_t n, std::FILE* f) {
  return n == 0 || std::fwrite(data, 1, n, f) == n;
}

bool WriteChecksum(uint64_t checksum, std::FILE* f) {
  unsigned char sum[8];
  for (int i = 0; i < 8; ++i) sum[i] = (checksum >> (8 * i)) & 0xFF;
  return std::fwrite(sum, 1, 8, f) == 8;
}

/// Writes one section: its payload bytes followed by their checksum.
bool WriteSection(const WireBuf& buf, std::FILE* f) {
  return WriteBytes(buf.data(), buf.size(), f) &&
         WriteChecksum(buf.Checksum(), f);
}

util::Status Corrupt(const std::string& path, const std::string& what) {
  return util::Status::InvalidArgument("snapshot " + path + ": " + what);
}

}  // namespace

util::Status DatabaseSet::SaveSnapshot(const std::string& path) const {
  // Write to a sibling temp file and rename into place, so a crash
  // mid-write never leaves a half-snapshot under the published name.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::Internal("cannot create snapshot file " + tmp);
  }
  bool write_ok = true;

  WireBuf buf;
  buf.PutBytes(kHeaderMagic, 8);
  buf.PutU32(kSnapshotFormatVersion);
  buf.PutU32(static_cast<uint32_t>(stores_.size()));
  buf.PutU64(epoch_);
  buf.PutU64(symbols_.size());
  write_ok &= WriteSection(buf, f);

  buf.Clear();
  for (size_t i = 0; i < symbols_.size(); ++i) {
    buf.PutString(symbols_.Lookup(kSymbolBase + static_cast<int64_t>(i)));
  }
  write_ok &= WriteSection(buf, f);

  for (size_t id = 0; id < stores_.size(); ++id) {
    const Relation& rel = *stores_[id].derived;
    const size_t num_values =
        static_cast<size_t>(rel.NumRows()) * rel.arity();

    WireBuf head;
    head.PutString(rel.name());
    head.PutU32(static_cast<uint32_t>(rel.arity()));
    head.PutU32(rel.NumRows());
    head.PutU32(rel.watermark());
    // Index declarations (v2): column and per-index KIND, sorted by
    // column so the bytes don't depend on declaration order (a reopened
    // set may have declared, then redeclared, in a different sequence).
    // Contents are rebuilt at open; the organization choice is state
    // worth keeping (statistics or hints picked it).
    std::vector<std::pair<uint32_t, uint8_t>> decls;
    decls.reserve(rel.NumIndexes());
    for (size_t i = 0; i < rel.NumIndexes(); ++i) {
      decls.emplace_back(static_cast<uint32_t>(rel.IndexAt(i).column()),
                         static_cast<uint8_t>(rel.IndexAt(i).kind()));
    }
    std::sort(decls.begin(), decls.end());
    head.PutU32(static_cast<uint32_t>(decls.size()));
    for (const auto& [column, kind] : decls) {
      head.PutU32(column);
      head.PutU8(kind);
    }
    WireBuf tail;
    tail.PutU32(static_cast<uint32_t>(edb_rows_[id].size()));
    for (RowId row : edb_rows_[id]) tail.PutU32(row);

    // The arena dominates the section; on a little-endian host its
    // in-memory bytes ARE the wire bytes, so stream them straight from
    // the relation — no staging copy of the database's largest buffers.
    // The section checksum chains across the three pieces (seeded
    // HashBytes ≡ one hash over their concatenation, which is what the
    // reader computes).
    uint64_t sum = util::HashBytes(head.data(), head.size());
    write_ok &= WriteBytes(head.data(), head.size(), f);
    if (HostIsLittleEndian()) {
      sum = util::HashBytes(rel.arena().data(), num_values * 8, sum);
      write_ok &= WriteBytes(rel.arena().data(), num_values * 8, f);
    } else {
      WireBuf values;
      values.PutValues(rel.arena().data(), num_values);
      sum = util::HashBytes(values.data(), values.size(), sum);
      write_ok &= WriteBytes(values.data(), values.size(), f);
    }
    sum = util::HashBytes(tail.data(), tail.size(), sum);
    write_ok &= WriteBytes(tail.data(), tail.size(), f);
    write_ok &= WriteChecksum(sum, f);
  }

  write_ok &= std::fwrite(kFooterMagic, 1, 8, f) == 8;
  write_ok &= std::fflush(f) == 0;
  write_ok &= std::fclose(f) == 0;
  if (!write_ok) {
    std::remove(tmp.c_str());
    return util::Status::Internal("short write saving snapshot to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return util::Status::Internal("cannot publish snapshot " + path + ": " +
                                  ec.message());
  }
  return util::Status::Ok();
}

util::Status DatabaseSet::OpenSnapshot(const std::string& path) {
  std::vector<unsigned char> bytes;
  CARAC_RETURN_IF_ERROR(ReadWholeFile(path, "snapshot", &bytes));

  WireReader r(bytes.data(), bytes.size());

  // Header.
  char magic[8];
  uint32_t version = 0;
  uint32_t num_relations = 0;
  uint64_t epoch = 0;
  uint64_t num_symbols = 0;
  uint64_t stored_sum = 0;
  size_t section_start = r.pos();
  if (!r.GetBytes(magic, 8) || std::memcmp(magic, kHeaderMagic, 8) != 0) {
    return Corrupt(path, "bad magic (not a carac snapshot)");
  }
  r.GetU32(&version);
  r.GetU32(&num_relations);
  r.GetU64(&epoch);
  r.GetU64(&num_symbols);
  uint64_t computed = r.ChecksumSince(section_start);
  if (!r.GetU64(&stored_sum)) return Corrupt(path, "truncated header");
  if (computed != stored_sum) return Corrupt(path, "header checksum mismatch");
  if (version != kSnapshotFormatVersion) {
    return Corrupt(path, "format version " + std::to_string(version) +
                             " (this build reads only version " +
                             std::to_string(kSnapshotFormatVersion) + ")");
  }

  // Symbols.
  std::vector<std::string> symbols;
  symbols.reserve(num_symbols);
  section_start = r.pos();
  for (uint64_t i = 0; i < num_symbols; ++i) {
    std::string text;
    if (!r.GetString(&text)) return Corrupt(path, "truncated symbol table");
    symbols.push_back(std::move(text));
  }
  computed = r.ChecksumSince(section_start);
  if (!r.GetU64(&stored_sum) || computed != stored_sum) {
    return Corrupt(path, "symbol table checksum mismatch");
  }
  // The program source was re-parsed before this open, interning its
  // string constants; their ids live in the AST. The snapshot's table
  // must agree with that interning — symbol for symbol, as a prefix —
  // or every string constant would silently mean a different string
  // (the fact-log replay path has the same guard).
  if (symbols_.size() > symbols.size()) {
    return Corrupt(path, "the database interned " +
                             std::to_string(symbols_.size()) +
                             " symbols but the snapshot holds only " +
                             std::to_string(symbols.size()) +
                             " (snapshot from a different program?)");
  }
  for (size_t i = 0; i < symbols_.size(); ++i) {
    const std::string& current =
        symbols_.Lookup(kSymbolBase + static_cast<int64_t>(i));
    if (current != symbols[i]) {
      return Corrupt(path, "symbol id " + std::to_string(i) + " is \"" +
                               current + "\" in the database but \"" +
                               symbols[i] +
                               "\" in the snapshot (snapshot from a "
                               "different program?)");
    }
  }

  // Schema gate: an empty set adopts the snapshot's relations; a
  // populated one must already hold the identical schema.
  const bool adopt = stores_.empty();
  if (!adopt && stores_.size() != num_relations) {
    return Corrupt(path, "declares " + std::to_string(num_relations) +
                             " relations but the database has " +
                             std::to_string(stores_.size()));
  }

  // Relations. Contents are installed as each section verifies; a
  // failure part-way leaves the set partially overwritten (documented:
  // a failed open discards the set).
  for (uint32_t id = 0; id < num_relations; ++id) {
    section_start = r.pos();
    std::string name;
    uint32_t arity = 0;
    uint32_t num_rows = 0;
    uint32_t watermark = 0;
    uint32_t index_count = 0;
    if (!r.GetString(&name) || !r.GetU32(&arity) || !r.GetU32(&num_rows) ||
        !r.GetU32(&watermark) || !r.GetU32(&index_count)) {
      return Corrupt(path, "truncated relation header");
    }
    std::vector<std::pair<uint32_t, IndexKind>> index_decls;
    index_decls.reserve(index_count);
    for (uint32_t i = 0; i < index_count; ++i) {
      uint32_t column = 0;
      uint8_t kind = 0;
      if (!r.GetU32(&column) || !r.GetU8(&kind)) {
        return Corrupt(path, "truncated index declarations for " + name);
      }
      if (column >= arity || kind >= static_cast<uint8_t>(kNumIndexKinds)) {
        return Corrupt(path, "relation " + name +
                                 " has an invalid index declaration");
      }
      index_decls.emplace_back(column, static_cast<IndexKind>(kind));
    }
    const uint64_t num_values = static_cast<uint64_t>(num_rows) * arity;
    if (num_values > r.remaining() / 8) {
      return Corrupt(path, "relation " + name + " arena extends past EOF");
    }
    std::vector<Value> arena;
    r.GetValues(&arena, static_cast<size_t>(num_values));
    uint32_t edb_count = 0;
    std::vector<RowId> edb;
    if (!r.GetU32(&edb_count)) {
      return Corrupt(path, "truncated relation " + name);
    }
    edb.reserve(edb_count);
    for (uint32_t i = 0; i < edb_count; ++i) {
      uint32_t row = 0;
      if (!r.GetU32(&row)) return Corrupt(path, "truncated relation " + name);
      edb.push_back(row);
    }
    computed = r.ChecksumSince(section_start);
    if (!r.GetU64(&stored_sum) || computed != stored_sum) {
      return Corrupt(path, "relation " + name + " checksum mismatch");
    }
    if (watermark > num_rows) {
      return Corrupt(path, "relation " + name + " watermark out of range");
    }
    for (RowId row : edb) {
      if (row >= num_rows) {
        return Corrupt(path, "relation " + name + " EDB row out of range");
      }
    }

    if (adopt) {
      AddRelation(name, arity);
    } else if (RelationName(id) != name || RelationArity(id) != arity) {
      return Corrupt(path, "schema mismatch at relation " +
                               std::to_string(id) + ": snapshot has " + name +
                               "/" + std::to_string(arity) +
                               ", database has " + RelationName(id) + "/" +
                               std::to_string(RelationArity(id)));
    }
    // The persisted per-index kinds are authoritative: a restore into an
    // engine-prepared set replaces any kind Prepare() chose, so a
    // mixed-kind database survives save/open byte-identically. Declared
    // BEFORE LoadContents so the rebuild below populates the right
    // organization once instead of building one and replacing it.
    if (indexing_enabled_) {
      for (const auto& [column, kind] : index_decls) {
        RedeclareIndex(id, column, kind);
      }
    }
    Store& store = stores_[id];
    store.derived->LoadContents(std::move(arena), num_rows, watermark);
    store.delta_known->Clear();
    store.delta_new->Clear();
    edb_rows_[id] = std::move(edb);
  }

  if (!r.GetBytes(magic, 8) || std::memcmp(magic, kFooterMagic, 8) != 0 ||
      r.remaining() != 0) {
    return Corrupt(path, "missing footer (truncated or trailing bytes)");
  }

  symbols_.Restore(std::move(symbols));
  epoch_ = epoch;
  return util::Status::Ok();
}

}  // namespace carac::storage
