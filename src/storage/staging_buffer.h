#ifndef CARAC_STORAGE_STAGING_BUFFER_H_
#define CARAC_STORAGE_STAGING_BUFFER_H_

#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace carac::storage {

/// One worker's spill set during parallel subquery evaluation: newly
/// derived tuples staged row-major in a private arena, deduplicated with
/// the same open-addressing linear-probe table (power-of-two capacity,
/// HashSpan mixing — util/hash.h) the arena Relation uses. It is a
/// Relation stripped of everything staging never needs: no name, no
/// secondary indexes, no cross-thread visibility.
///
/// Protocol: the main thread re-arms one buffer per worker (Reset keeps
/// capacity, so steady-state parallel evaluation allocates nothing),
/// workers fill their own buffer while probing the shared relations
/// read-only, and the main thread merges the buffers in fixed worker
/// order (Relation::InsertStaged) — which is what makes parallel
/// evaluation insert tuples in exactly the single-threaded order.
class StagingBuffer {
 public:
  StagingBuffer() = default;
  StagingBuffer(StagingBuffer&&) = default;
  StagingBuffer& operator=(StagingBuffer&&) = default;
  StagingBuffer(const StagingBuffer&) = delete;
  StagingBuffer& operator=(const StagingBuffer&) = delete;

  /// Re-arms the buffer for rows of `arity` values, keeping capacity.
  void Reset(size_t arity);

  size_t arity() const { return arity_; }
  uint32_t NumRows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Stages a copy of `tuple`; returns true if it was not already staged.
  /// `tuple` may not alias this buffer's own arena.
  bool Insert(TupleView tuple);

  bool Contains(TupleView tuple) const;

  TupleView View(uint32_t row) const {
    return TupleView(arena_.data() + static_cast<size_t>(row) * arity_,
                     arity_);
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr size_t kMinSlots = 16;

  bool RowEquals(uint32_t row, TupleView tuple) const;
  /// Grows the slot table to `new_slots` (a power of two) and re-buckets
  /// every staged row.
  void Rehash(size_t new_slots);

  size_t arity_ = 0;
  /// Row-major staged tuples: row r occupies [r*arity, (r+1)*arity).
  std::vector<Value> arena_;
  uint32_t num_rows_ = 0;
  /// Open-addressing dedup table: row id per slot, kEmptySlot when free.
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_STAGING_BUFFER_H_
