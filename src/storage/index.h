#ifndef CARAC_STORAGE_INDEX_H_
#define CARAC_STORAGE_INDEX_H_

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"

namespace carac::storage {

/// Index organization. Carac's paper implementation uses one hash map per
/// indexed column (java.util.HashMap); Soufflé's specialized B-trees are
/// cited as an orthogonal optimization (§VI-D). We provide both: kHash
/// gives O(1) point probes; kSorted (an ordered map standing in for the
/// B-tree) adds ordered range probes at a log-factor point-probe cost.
enum class IndexKind : uint8_t { kHash = 0, kSorted = 1 };

const char* IndexKindName(IndexKind kind);

/// A per-column secondary index: value -> tuples with that value in the
/// column. Tuples are referenced by stable pointers into the owning
/// relation's node-based storage.
class ColumnIndex {
 public:
  ColumnIndex(size_t column, IndexKind kind)
      : column_(column), kind_(kind) {}

  size_t column() const { return column_; }
  IndexKind kind() const { return kind_; }

  void Add(const Tuple* tuple);

  /// Tuples whose column equals `value`; empty if none.
  const std::vector<const Tuple*>& Probe(Value value) const;

  /// Tuples whose column lies in [lo, hi], appended to `out` in ascending
  /// column order. Requires kind() == kSorted.
  void ProbeRange(Value lo, Value hi, std::vector<const Tuple*>* out) const;

  void Clear();

 private:
  size_t column_;
  IndexKind kind_;
  std::unordered_map<Value, std::vector<const Tuple*>> hash_buckets_;
  std::map<Value, std::vector<const Tuple*>> sorted_buckets_;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_INDEX_H_
