#ifndef CARAC_STORAGE_INDEX_H_
#define CARAC_STORAGE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"
#include "util/status.h"

namespace carac::storage {

/// Index organization. Carac's paper implementation uses one hash map per
/// indexed column (java.util.HashMap); Soufflé's specialized B-trees are
/// cited as an orthogonal optimization (§VI-D), and KVell demonstrates the
/// value of swapping index shapes behind one interface. Five kinds live
/// behind IndexBase:
///
///   kHash        — unordered_map buckets; O(1) point probes, no ranges.
///   kSorted      — std::map buckets; ordered range probes at a
///                  log-factor, pointer-chasing point-probe cost.
///   kBtree       — cache-friendly B+tree (fanout kBtreeMaxKeys, leaf
///                  chain); ordered ranges with contiguous key arrays per
///                  node instead of one heap node per key.
///   kSortedArray — immutable sorted (key, row) arrays over the
///                  epoch-stable prefix plus a small hash tail for rows
///                  appended since the last Stabilize(); point probes are
///                  a binary search into contiguous memory, range scans
///                  are a single sequential sweep.
///   kLearned     — kSortedArray's layout with a piecewise-linear model
///                  (bounded error ε) fit over the stable prefix at
///                  Stabilize(); point probes predict a position and
///                  correct within ±ε instead of binary-searching the
///                  whole prefix. Range scans and the mutable tail are
///                  inherited unchanged.
enum class IndexKind : uint8_t {
  kHash = 0,
  kSorted = 1,
  kBtree = 2,
  kSortedArray = 3,
  kLearned = 4,
};

/// One row of the canonical kind table below.
struct IndexKindInfo {
  IndexKind kind;
  const char* name;      // Canonical spelling ("sorted-array").
  const char* alt_name;  // Identifier-safe alias, or nullptr.
};

/// The single source of truth for kind names: `--index-kind` parsing, the
/// `@index` pragma diagnostic and snapshot kind validation all consume
/// this table, so adding a kind here updates every surface at once.
inline constexpr IndexKindInfo kIndexKindTable[] = {
    {IndexKind::kHash, "hash", nullptr},
    {IndexKind::kSorted, "sorted", nullptr},
    {IndexKind::kBtree, "btree", nullptr},
    {IndexKind::kSortedArray, "sorted-array", "sorted_array"},
    {IndexKind::kLearned, "learned", nullptr},
};
inline constexpr size_t kNumIndexKinds =
    sizeof(kIndexKindTable) / sizeof(kIndexKindTable[0]);

const char* IndexKindName(IndexKind kind);

/// Parses any canonical or alias spelling from kIndexKindTable ("hash",
/// "sorted", "btree", "sorted-array"/"sorted_array", "learned"). Returns
/// false on anything else, leaving *out untouched.
bool ParseIndexKind(const std::string& name, IndexKind* out);

/// Comma-separated canonical names ("hash, sorted, btree, sorted-array,
/// learned") for diagnostics that enumerate the valid kinds.
const std::string& IndexKindNameList();

/// True for kinds that keep their keys ordered (ProbeRange works).
inline bool IndexKindIsOrdered(IndexKind kind) {
  return kind != IndexKind::kHash;
}

/// The result of one index probe: a lightweight view of the matching
/// RowIds. Most kinds hand back one contiguous span; kSortedArray hands
/// back two (stable prefix + fresh tail), which is why this is a
/// two-span cursor rather than a bare pointer pair. RowIds appear in
/// ascending order for every kind (rows enter an index in RowId order
/// and the prefix/tail split preserves it), so all kinds drive the
/// evaluators through identical insertion sequences.
///
/// Validity: a cursor borrows the index's internal arrays and stays
/// valid until the owning relation gains rows — the same aliasing rule
/// as TupleView. The evaluators never violate it: rules probe
/// Derived/DeltaKnown and write DeltaNew.
class RowCursor {
 public:
  RowCursor() = default;
  RowCursor(const RowId* data, size_t size) : data0_(data), size0_(size) {}
  RowCursor(const RowId* data0, size_t size0, const RowId* data1,
            size_t size1)
      : data0_(data0), size0_(size0), data1_(data1), size1_(size1) {}

  size_t size() const { return size0_ + size1_; }
  bool empty() const { return size0_ == 0 && size1_ == 0; }
  RowId operator[](size_t i) const {
    return i < size0_ ? data0_[i] : data1_[i - size0_];
  }

  /// Raw spans, for hot loops that want two tight inner loops instead of
  /// a per-element branch.
  const RowId* span0() const { return data0_; }
  size_t size0() const { return size0_; }
  const RowId* span1() const { return data1_; }
  size_t size1() const { return size1_; }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < size0_; ++i) fn(data0_[i]);
    for (size_t i = 0; i < size1_; ++i) fn(data1_[i]);
  }

  /// Range-for support (cold paths; hot loops use ForEach or the spans).
  class Iterator {
   public:
    Iterator(const RowCursor* cursor, size_t pos)
        : cursor_(cursor), pos_(pos) {}
    RowId operator*() const { return (*cursor_)[pos_]; }
    Iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return pos_ != other.pos_;
    }

   private:
    const RowCursor* cursor_;
    size_t pos_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

 private:
  const RowId* data0_ = nullptr;
  size_t size0_ = 0;
  const RowId* data1_ = nullptr;
  size_t size1_ = 0;
};

/// A per-column secondary index: value -> RowIds of the tuples with that
/// value in the column. RowIds address the owning relation's arena and
/// are stable across arena growth and dedup-table rehash, so an index
/// never needs rebuilding — incremental maintenance on insert is all
/// that is needed. Concrete organizations subclass this; relations hold
/// them through the interface and the factory (MakeIndex) keys on
/// IndexKind, so adding an organization touches only this file.
class IndexBase {
 public:
  IndexBase(size_t column, IndexKind kind) : column_(column), kind_(kind) {}
  virtual ~IndexBase() = default;

  size_t column() const { return column_; }
  IndexKind kind() const { return kind_; }

  /// Registers `row`, whose indexed column holds `key`. Rows arrive in
  /// ascending RowId order (the relation appends monotonically).
  virtual void Add(RowId row, Value key) = 0;

  /// Rows whose column equals `value`; empty cursor if none.
  virtual RowCursor Probe(Value value) const = 0;

  /// Rows whose column lies in [lo, hi], appended to `out` in ascending
  /// (column value, RowId) order. Only ordered kinds keep their keys
  /// sorted, so a range probe against a kHash index is a caller bug; it
  /// is reported as a FailedPrecondition naming the offending kind
  /// instead of silently returning garbage.
  virtual util::Status ProbeRange(Value lo, Value hi,
                                  std::vector<RowId>* out) const;

  /// Resolves a window of `n` probe keys in one call, writing one cursor
  /// per key. Amortizes virtual dispatch and lets ordered kinds exploit
  /// key locality; every implementation skips the lookup entirely for
  /// runs of equal adjacent keys (common when outer rows share a join
  /// key). The cursors obey the same validity rule as Probe.
  virtual void BatchProbe(const Value* keys, size_t n, RowCursor* out) const;

  virtual void Clear() = 0;

  /// Smallest and largest key currently indexed. Returns false when the
  /// index is empty or the kind does not track key bounds (kHash). The
  /// optimizer's range-pushdown profitability check divides the requested
  /// [lo, hi] span by this key span to estimate coverage.
  virtual bool KeyBounds(Value* min, Value* max) const;

  /// Hints that rows below `limit` are epoch-stable (will never be
  /// removed before the next Clear). kSortedArray rebuilds its immutable
  /// prefix here; other kinds ignore it. Called only at quiescent points
  /// (bulk build, watermark advance, snapshot load) — never during a
  /// probe — so concurrent shard readers never observe a rebuild.
  virtual void Stabilize(RowId limit);

 protected:
  util::Status RangeUnsupported() const;

 private:
  size_t column_;
  IndexKind kind_;
};

/// Creates an index of the requested organization.
std::unique_ptr<IndexBase> MakeIndex(size_t column, IndexKind kind);

/// kHash: one unordered_map bucket vector per key. Defined in the header
/// so Relation's kind-dispatched hot paths inline the probe and the
/// per-insert maintenance (AddFast/ProbeFast are the devirtualized entry
/// points; the virtuals forward to them).
class HashIndex final : public IndexBase {
 public:
  explicit HashIndex(size_t column) : IndexBase(column, IndexKind::kHash) {}

  void AddFast(RowId row, Value key) { buckets_[key].push_back(row); }
  RowCursor ProbeFast(Value value) const {
    auto it = buckets_.find(value);
    if (it == buckets_.end()) return RowCursor();
    return RowCursor(it->second.data(), it->second.size());
  }

  void Add(RowId row, Value key) override { AddFast(row, key); }
  RowCursor Probe(Value value) const override { return ProbeFast(value); }
  void Clear() override { buckets_.clear(); }

 private:
  std::unordered_map<Value, std::vector<RowId>> buckets_;
};

/// kSorted: one std::map bucket vector per key — the ordered-map
/// reference organization the B-tree and sorted-array kinds are measured
/// against.
class SortedIndex final : public IndexBase {
 public:
  explicit SortedIndex(size_t column)
      : IndexBase(column, IndexKind::kSorted) {}

  void AddFast(RowId row, Value key) { buckets_[key].push_back(row); }
  RowCursor ProbeFast(Value value) const {
    auto it = buckets_.find(value);
    if (it == buckets_.end()) return RowCursor();
    return RowCursor(it->second.data(), it->second.size());
  }

  void Add(RowId row, Value key) override { AddFast(row, key); }
  RowCursor Probe(Value value) const override { return ProbeFast(value); }
  util::Status ProbeRange(Value lo, Value hi,
                          std::vector<RowId>* out) const override;
  void Clear() override { buckets_.clear(); }
  bool KeyBounds(Value* min, Value* max) const override;

 private:
  std::map<Value, std::vector<RowId>> buckets_;
};

/// kBtree: a B+tree with contiguous key arrays per node and a chained
/// leaf level for range scans. Nodes live in one vector and refer to each
/// other by id (growth-safe: splitting never invalidates an id); RowId
/// buckets live in a deque so a probe's span survives later inserts.
class BtreeIndex final : public IndexBase {
 public:
  explicit BtreeIndex(size_t column) : IndexBase(column, IndexKind::kBtree) {}

  void AddFast(RowId row, Value key);
  RowCursor ProbeFast(Value value) const;

  void Add(RowId row, Value key) override { AddFast(row, key); }
  RowCursor Probe(Value value) const override { return ProbeFast(value); }
  util::Status ProbeRange(Value lo, Value hi,
                          std::vector<RowId>* out) const override;
  void BatchProbe(const Value* keys, size_t n, RowCursor* out) const override;
  void Clear() override;
  bool KeyBounds(Value* min, Value* max) const override;

 private:
  // 32 keys/node keeps a node's key array within four cache lines while
  // staying shallow (a million keys is a 4-level tree).
  static constexpr size_t kMaxKeys = 32;
  static constexpr uint32_t kNoNode = 0xFFFFFFFFu;

  struct Node {
    bool leaf = true;
    std::vector<Value> keys;
    /// Leaf: bucket ids, parallel to keys. Internal: child node ids,
    /// keys.size() + 1 of them.
    std::vector<uint32_t> children;
    uint32_t next = kNoNode;  // Next leaf in key order.
  };

  /// Splits the full child at `parent`'s slot `pos` (B+tree style:
  /// leaves copy the separator up, internals move it up).
  void SplitChild(uint32_t parent_id, size_t pos);
  /// Leaf that would hold `key`, or kNoNode when empty.
  uint32_t FindLeaf(Value key) const;

  std::vector<Node> nodes_;
  std::deque<std::vector<RowId>> buckets_;
  uint32_t root_ = kNoNode;
};

/// kSortedArray: an immutable index over the epoch-stable prefix — two
/// parallel arrays sorted by (key, row) — plus a hash tail for rows that
/// arrived after the last Stabilize(). Point probes binary-search
/// contiguous memory; range probes sweep one contiguous run (merging in
/// whatever the tail holds). Stabilize() migrates tail rows below the
/// new stable limit into the prefix; the watermark machinery makes every
/// completed epoch's rows stable, so on EDB-heavy workloads the tail
/// stays empty and probes never touch a hash table at all.
class SortedArrayIndex : public IndexBase {
 public:
  explicit SortedArrayIndex(size_t column)
      : IndexBase(column, IndexKind::kSortedArray) {}

  void AddFast(RowId row, Value key) {
    tail_[key].push_back(row);
    if (!have_key_bounds_ || key < key_lo_) key_lo_ = key;
    if (!have_key_bounds_ || key > key_hi_) key_hi_ = key;
    have_key_bounds_ = true;
  }
  RowCursor ProbeFast(Value value) const;

  void Add(RowId row, Value key) override { AddFast(row, key); }
  RowCursor Probe(Value value) const override { return ProbeFast(value); }
  util::Status ProbeRange(Value lo, Value hi,
                          std::vector<RowId>* out) const override;
  void Clear() override;
  void Stabilize(RowId limit) override;
  bool KeyBounds(Value* min, Value* max) const override {
    if (!have_key_bounds_) return false;
    *min = key_lo_;
    *max = key_hi_;
    return true;
  }

 protected:
  /// For kLearned, which reuses the prefix+tail layout wholesale and only
  /// changes how the prefix is searched.
  SortedArrayIndex(size_t column, IndexKind kind) : IndexBase(column, kind) {}

  /// Sorted by (key, row); every row here is < stable_limit_.
  std::vector<Value> prefix_keys_;
  std::vector<RowId> prefix_rows_;
  RowId stable_limit_ = 0;
  /// Rows >= stable_limit_, in insertion (ascending RowId) order.
  std::unordered_map<Value, std::vector<RowId>> tail_;
  /// Running [key_lo_, key_hi_] over everything ever Added (prefix and
  /// tail; keys only leave at Clear, so the running extremes stay exact).
  bool have_key_bounds_ = false;
  Value key_lo_ = 0;
  Value key_hi_ = 0;
};

/// kLearned: SortedArrayIndex's prefix+tail layout with a RMI/ALEX-style
/// piecewise-linear approximation over the stable prefix. Stabilize()
/// refits the model: a greedy shrinking-cone pass over the (distinct key,
/// first position) points yields segments guaranteeing
/// |predicted - actual| <= kEpsilon for every trained key. A point probe
/// then binary-searches only the segment directory (typically a handful
/// of entries) plus a ±ε window of the prefix instead of the whole array.
/// A bracket check falls back to a full binary search for keys outside
/// the model's cone (only possible for untrained keys), so correctness
/// never depends on the model.
class LearnedIndex final : public SortedArrayIndex {
 public:
  /// Maximum |predicted - actual| the fit guarantees for trained keys.
  /// 24 positions sit inside two or three cache lines of the key array —
  /// the final window search stays cheap while segments stay few.
  static constexpr size_t kEpsilon = 24;

  explicit LearnedIndex(size_t column)
      : SortedArrayIndex(column, IndexKind::kLearned) {}

  RowCursor ProbeFast(Value value) const;

  RowCursor Probe(Value value) const override { return ProbeFast(value); }
  void Clear() override;
  void Stabilize(RowId limit) override;

  /// Model introspection, for tests and `serve stats`.
  size_t NumSegments() const { return segments_.size(); }

  /// Test hook: predicted prefix position for `value` (clamped), or
  /// false when the model is empty or `value` lies outside its cone.
  bool PredictPosition(Value value, size_t* pos) const;

 private:
  /// One linear piece: predicts positions for keys in
  /// [first_key, next segment's first_key).
  struct Segment {
    Value first_key;
    double slope;
    double intercept;  // Predicted position at key == first_key.
  };

  void RefitModel();

  std::vector<Segment> segments_;
  /// Keys outside [min_key_, max_key_] skip the model entirely.
  Value min_key_ = 0;
  Value max_key_ = 0;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_INDEX_H_
