#ifndef CARAC_STORAGE_INDEX_H_
#define CARAC_STORAGE_INDEX_H_

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"
#include "util/status.h"

namespace carac::storage {

/// Index organization. Carac's paper implementation uses one hash map per
/// indexed column (java.util.HashMap); Soufflé's specialized B-trees are
/// cited as an orthogonal optimization (§VI-D). We provide both: kHash
/// gives O(1) point probes; kSorted (an ordered map standing in for the
/// B-tree) adds ordered range probes at a log-factor point-probe cost.
enum class IndexKind : uint8_t { kHash = 0, kSorted = 1 };

const char* IndexKindName(IndexKind kind);

/// A per-column secondary index: value -> RowIds of the tuples with that
/// value in the column. RowIds address the owning relation's arena and are
/// stable across arena growth and hash-table rehash, so the index never
/// needs rebuilding — unlike the pointer-bucket design it replaced.
class ColumnIndex {
 public:
  ColumnIndex(size_t column, IndexKind kind)
      : column_(column), kind_(kind) {}

  size_t column() const { return column_; }
  IndexKind kind() const { return kind_; }

  /// Registers `row`, whose indexed column holds `key`.
  void Add(RowId row, Value key);

  /// Rows whose column equals `value`; empty if none.
  const std::vector<RowId>& Probe(Value value) const;

  /// Rows whose column lies in [lo, hi], appended to `out` in ascending
  /// column order. Only a kSorted index keeps its buckets ordered, so a
  /// range probe against a kHash index is a caller bug; it is reported as
  /// a FailedPrecondition naming the offending kind instead of silently
  /// returning garbage.
  util::Status ProbeRange(Value lo, Value hi, std::vector<RowId>* out) const;

  void Clear();

 private:
  size_t column_;
  IndexKind kind_;
  std::unordered_map<Value, std::vector<RowId>> hash_buckets_;
  std::map<Value, std::vector<RowId>> sorted_buckets_;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_INDEX_H_
