#ifndef CARAC_STORAGE_WIRE_H_
#define CARAC_STORAGE_WIRE_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "storage/tuple.h"
#include "util/hash.h"
#include "util/status.h"

// Little-endian wire helpers shared by the snapshot (storage/snapshot.cc)
// and fact-log (storage/factlog.cc) encoders. Both formats are composed
// of checksummed sections: a WireBuf accumulates one section's payload,
// a WireReader decodes with sticky bounds checking so truncated or
// length-corrupted input degrades to a diagnostic, never to an
// out-of-bounds read.

namespace carac::storage {

/// True when the host stores integers little-endian — then the wire
/// format IS the in-memory layout and value spans move with memcpy
/// instead of a shift-decode per byte (the arena sections dominate
/// snapshot size, so this is the snapshot load/save hot loop).
inline bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char low = 0;
  std::memcpy(&low, &probe, 1);
  return low == 1;
}

/// Slurps a whole file into `out` (pre-sized to the file length — both
/// wire formats are read back as one in-memory span, and the snapshot
/// is the whole database, so growth-by-doubling would re-copy the
/// largest buffer in the system O(log n) times). `what` names the file
/// kind in diagnostics ("snapshot", "fact log").
inline util::Status ReadWholeFile(const std::string& path, const char* what,
                                  std::vector<unsigned char>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::NotFound(std::string("cannot open ") + what + " " +
                                  path);
  }
  out->clear();
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (!ec) out->reserve(static_cast<size_t>(file_size));
  unsigned char chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->insert(out->end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return util::Status::Internal(std::string("read error on ") + what +
                                  " " + path);
  }
  return util::Status::Ok();
}

/// Append-only little-endian byte buffer.
class WireBuf {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void PutBytes(const void* data, size_t n) {
    if (n == 0) return;  // An empty arena legally has a null data().
    const auto* p = static_cast<const unsigned char*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }
  void PutValues(const Value* data, size_t n) {
    if (HostIsLittleEndian()) {
      PutBytes(data, n * 8);
      return;
    }
    bytes_.reserve(bytes_.size() + n * 8);
    for (size_t i = 0; i < n; ++i) PutU64(static_cast<uint64_t>(data[i]));
  }
  void Clear() { bytes_.clear(); }
  const unsigned char* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  uint64_t Checksum() const { return util::HashBytes(data(), size()); }

 private:
  std::vector<unsigned char> bytes_;
};

/// Bounds-checked little-endian cursor. Every getter fails (sticky ok)
/// instead of reading past the end.
class WireReader {
 public:
  WireReader(const unsigned char* data, size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  bool GetU8(uint8_t* out) {
    if (!Need(1)) return false;
    *out = data_[pos_++];
    return true;
  }
  bool GetU32(uint32_t* out) {
    if (!Need(4)) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }
  bool GetU64(uint64_t* out) {
    if (!Need(8)) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }
  bool GetBytes(void* out, size_t n) {
    if (!Need(n)) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool GetString(std::string* out) {
    uint32_t len = 0;
    if (!GetU32(&len) || !Need(len)) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool GetValues(std::vector<Value>* out, size_t n) {
    if (n == 0) return ok_;
    if (!Need(n * 8)) return false;
    if (HostIsLittleEndian()) {
      const size_t old = out->size();
      out->resize(old + n);
      std::memcpy(out->data() + old, data_ + pos_, n * 8);
      pos_ += n * 8;
      return true;
    }
    out->reserve(out->size() + n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      GetU64(&v);
      out->push_back(static_cast<Value>(v));
    }
    return ok_;
  }

  /// Checksum of [from, pos()): call at a section boundary, then compare
  /// against the stored sum read next.
  uint64_t ChecksumSince(size_t from) const {
    return util::HashBytes(data_ + from, pos_ - from);
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace carac::storage

#endif  // CARAC_STORAGE_WIRE_H_
