#ifndef CARAC_STORAGE_TUPLE_H_
#define CARAC_STORAGE_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/hash.h"

namespace carac::storage {

/// A single column value. Plain integers represent themselves; interned
/// strings live above SymbolTable::kSymbolBase (see symbol_table.h).
using Value = int64_t;

/// An owning fixed-arity row. Arity is implied by the owning relation's
/// schema. Used at API boundaries (fact loading, SortedRows, goldens);
/// the evaluation hot path never materializes one — rows live row-major
/// in each relation's arena and are read through TupleView.
using Tuple = std::vector<Value>;

/// Dense index of a row inside a relation's arena. RowIds are assigned in
/// insertion order, never move, and survive arena growth and hash-table
/// rehash — which is why the secondary indexes store RowIds, not pointers.
using RowId = uint32_t;

/// A non-owning view of one row (pointer + arity span into an arena).
/// Implicitly constructible from Tuple so call sites can pass either.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const Value* data, size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): Tuple and TupleView are
  // interchangeable at read-only call sites (Contains, Insert, hashing).
  TupleView(const Tuple& t) : data_(t.data()), size_(t.size()) {}

  const Value* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Value operator[](size_t i) const { return data_[i]; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  /// Owning copy, for the cold paths that need one.
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

  friend bool operator==(TupleView a, TupleView b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(TupleView a, TupleView b) { return !(a == b); }

 private:
  const Value* data_ = nullptr;
  size_t size_ = 0;
};

/// Hash functor for rows (order dependent; wyhash-style span hash).
/// Accepts both Tuple and TupleView through the implicit conversion.
struct TupleHash {
  size_t operator()(TupleView t) const {
    return static_cast<size_t>(util::HashSpan(t.data(), t.size()));
  }
};

/// Renders "(1, 2, 3)" for debugging and golden tests.
std::string TupleToString(TupleView t);
inline std::string TupleToString(const Tuple& t) {
  return TupleToString(TupleView(t));
}
inline std::string TupleToString(std::initializer_list<Value> values) {
  return TupleToString(TupleView(values.begin(), values.size()));
}

}  // namespace carac::storage

#endif  // CARAC_STORAGE_TUPLE_H_
