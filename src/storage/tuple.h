#ifndef CARAC_STORAGE_TUPLE_H_
#define CARAC_STORAGE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/hash.h"

namespace carac::storage {

/// A single column value. Plain integers represent themselves; interned
/// strings live above SymbolTable::kSymbolBase (see symbol_table.h).
using Value = int64_t;

/// A fixed-arity row. Arity is implied by the owning relation's schema.
using Tuple = std::vector<Value>;

/// Hash functor for tuples (order dependent).
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x42ULL;
    for (Value v : t) h = util::HashCombine(h, static_cast<uint64_t>(v));
    return static_cast<size_t>(h);
  }
};

/// Renders "(1, 2, 3)" for debugging and golden tests.
std::string TupleToString(const Tuple& t);

}  // namespace carac::storage

#endif  // CARAC_STORAGE_TUPLE_H_
