#ifndef CARAC_UTIL_FILE_H_
#define CARAC_UTIL_FILE_H_

#include <string>

#include "util/status.h"

namespace carac::util {

/// Rejects paths that name a directory. A directory opens successfully
/// as an ifstream but reads as empty, which input loaders would otherwise
/// treat as a valid empty file.
Status CheckNotDirectory(const std::string& path);

}  // namespace carac::util

#endif  // CARAC_UTIL_FILE_H_
