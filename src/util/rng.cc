#include "util/rng.h"

#include <cmath>

#include "util/hash.h"

namespace carac::util {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed expansion via splitmix64, per the xoshiro authors' recommendation.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF on the continuous approximation; adequate for workload
  // shaping (we do not need exact Zipf moments).
  const double u = NextDouble();
  const double x = std::pow(static_cast<double>(n), 1.0 - s);
  const double v = std::pow(u * (x - 1.0) + 1.0, 1.0 / (1.0 - s));
  uint64_t idx = static_cast<uint64_t>(v) - 1;
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace carac::util
