#ifndef CARAC_UTIL_TIMER_H_
#define CARAC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace carac::util {

/// Monotonic wall-clock stopwatch used by the measurement harness.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds since the last Restart().
  int64_t ElapsedNanos() const;

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace carac::util

#endif  // CARAC_UTIL_TIMER_H_
