#include "util/timer.h"

namespace carac::util {

int64_t Timer::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
      .count();
}

}  // namespace carac::util
