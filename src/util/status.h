#ifndef CARAC_UTIL_STATUS_H_
#define CARAC_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace carac::util {

/// Error categories used across the library. Kept deliberately small: the
/// engine either succeeds, rejects malformed user input, or hits an
/// environmental failure (e.g., the quotes backend cannot find a compiler).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
};

/// Exception-free error propagation (the library never throws).
/// A default-constructed Status is OK; failures carry a code and message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: bad arity".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Aborts with a diagnostic. Used only for programmer errors (broken
/// invariants), never for user input; user input failures return Status.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

}  // namespace carac::util

/// Invariant check. Always on (benchmark-hot paths avoid it; it guards
/// structural invariants whose violation would corrupt results).
#define CARAC_CHECK(expr)                                        \
  do {                                                           \
    if (!(expr)) {                                               \
      ::carac::util::CheckFailed(__FILE__, __LINE__, #expr);     \
    }                                                            \
  } while (0)

#define CARAC_CHECK_OK(status_expr)                              \
  do {                                                           \
    ::carac::util::Status s_ = (status_expr);                    \
    if (!s_.ok()) {                                              \
      std::fprintf(stderr, "Status not OK: %s\n",                \
                   s_.ToString().c_str());                       \
      ::carac::util::CheckFailed(__FILE__, __LINE__,             \
                                 #status_expr);                  \
    }                                                            \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define CARAC_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::carac::util::Status s_ = (expr);           \
    if (!s_.ok()) return s_;                     \
  } while (0)

#endif  // CARAC_UTIL_STATUS_H_
