#ifndef CARAC_UTIL_HASH_H_
#define CARAC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace carac::util {

/// 64-bit mix function (splitmix64 finalizer). Cheap and well distributed;
/// used for tuple hashing and hash-index bucketing.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent hash combiner (boost-style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// wyhash-style 128-bit multiply-fold: the highest-throughput 64-bit mixing
/// primitive on modern hardware (one mul, one xor).
inline uint64_t WyMix(uint64_t a, uint64_t b) {
  const auto product =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return static_cast<uint64_t>(product) ^
         static_cast<uint64_t>(product >> 64);
}

/// Order-dependent hash of a row-major span of 64-bit values (wyhash-style
/// multiply-fold chain). This is the hot hash of the storage engine: every
/// relation insert/contains and every open-addressing probe goes through
/// it, so it must be branch-light and length-seeded (distinct arities must
/// not collide on shared prefixes).
inline uint64_t HashSpan(const int64_t* data, size_t n) {
  uint64_t h = 0xa0761d6478bd642fULL ^ (static_cast<uint64_t>(n) *
                                        0xe7037ed1a0b428dbULL);
  for (size_t i = 0; i < n; ++i) {
    h = WyMix(h ^ static_cast<uint64_t>(data[i]), 0x8bb84b93962eacc9ULL);
  }
  return h;
}

/// Order-dependent hash of raw bytes (FNV-1a 64). Not a hot-path hash:
/// used for snapshot/fact-log section checksums, where a simple streaming
/// definition that any reader can re-implement matters more than
/// throughput. Passing a previous result as `seed` continues the stream:
/// HashBytes(b, m, HashBytes(a, n)) == HashBytes(concat(a, b), n + m) —
/// which is what lets the snapshot writer checksum a section in pieces
/// without staging the whole section in memory.
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace carac::util

#endif  // CARAC_UTIL_HASH_H_
