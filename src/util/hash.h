#ifndef CARAC_UTIL_HASH_H_
#define CARAC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace carac::util {

/// 64-bit mix function (splitmix64 finalizer). Cheap and well distributed;
/// used for tuple hashing and hash-index bucketing.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent hash combiner (boost-style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace carac::util

#endif  // CARAC_UTIL_HASH_H_
