#include "util/file.h"

#include <filesystem>
#include <system_error>

namespace carac::util {

Status CheckNotDirectory(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Status::InvalidArgument(path + " is a directory");
  }
  return Status::Ok();
}

}  // namespace carac::util
