#ifndef CARAC_UTIL_PARSE_H_
#define CARAC_UTIL_PARSE_H_

#include <cstdint>
#include <string>

namespace carac::util {

/// Strict base-10 int64 parse: the entire string (optional sign, digits)
/// must be consumed and the value must fit in 64 bits. Returns false on
/// empty input, trailing junk, or overflow; *out is untouched on failure.
bool ParseInt64(const std::string& text, int64_t* out);

}  // namespace carac::util

#endif  // CARAC_UTIL_PARSE_H_
