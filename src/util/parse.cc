#include "util/parse.h"

#include <cerrno>
#include <cstdlib>

namespace carac::util {

bool ParseInt64(const std::string& text, int64_t* out) {
  // strtoll skips leading whitespace, which a strict parse must not.
  if (text.empty() || !(text[0] == '-' || (text[0] >= '0' && text[0] <= '9'))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace carac::util
