#include "util/status.h"

namespace carac::util {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CARAC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace carac::util
