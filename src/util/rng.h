#ifndef CARAC_UTIL_RNG_H_
#define CARAC_UTIL_RNG_H_

#include <cstdint>

namespace carac::util {

/// Deterministic xoshiro256**-based RNG. The synthetic fact generators and
/// property tests must be reproducible across platforms, so we do not use
/// std::mt19937 distributions (whose outputs are implementation-defined for
/// std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

  /// Zipf-like skewed index in [0, n): element i has weight ~ 1/(i+1)^s.
  /// Used to make generated program-analysis graphs have the power-law
  /// out-degree shape of real codebases (httpd).
  uint64_t NextZipf(uint64_t n, double s);

 private:
  uint64_t state_[4];
};

}  // namespace carac::util

#endif  // CARAC_UTIL_RNG_H_
