#ifndef CARAC_IR_IROP_H_
#define CARAC_IR_IROP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "storage/database.h"

namespace carac::ir {

/// Local variable id inside one SPJ subquery. Lowering remaps the rule's
/// program-wide variables to dense per-subquery locals so that execution
/// and the compiled backends can use flat binding arrays.
using LocalVar = int32_t;

/// A term of an SPJ atom after local remapping.
struct LocalTerm {
  bool is_var = false;
  LocalVar var = -1;
  storage::Value constant = 0;

  static LocalTerm Var(LocalVar v) { return LocalTerm{true, v, 0}; }
  static LocalTerm Const(storage::Value c) { return LocalTerm{false, -1, c}; }
};

/// One side of a pushed-down range constraint on an atom column. The
/// bound value is either a constant or a local variable that is bound
/// BEFORE the atom executes; `strict` distinguishes `<` from `<=`.
struct BoundSpec {
  enum class Kind : uint8_t { kNone, kConst, kVar };
  Kind kind = Kind::kNone;
  storage::Value constant = 0;
  LocalVar var = -1;
  bool strict = false;

  bool present() const { return kind != Kind::kNone; }
};

/// One atom inside an SPJ subquery. Relational atoms carry the database
/// they read (Derived or DeltaKnown — the semi-naive split, §II-A); builtin
/// atoms evaluate in place; negated atoms are membership tests.
struct AtomSpec {
  datalog::BuiltinOp builtin = datalog::BuiltinOp::kNone;
  datalog::PredicateId predicate = datalog::kInvalidPredicate;
  storage::DbKind source = storage::DbKind::kDerived;
  bool negated = false;
  std::vector<LocalTerm> terms;

  /// Range pushdown (see ir::AnnotateRangeBounds): when >= 0, column
  /// `range_col` of this atom binds a fresh variable that downstream
  /// comparison builtins constrain — the evaluators MAY serve the atom
  /// through Relation::ProbeRange(range_col, lower, upper) instead of a
  /// full scan. The comparison builtins stay in `atoms` as residual
  /// filters, so executing the range as any superset (including a full
  /// scan) is always correct; the annotation is purely an access-path
  /// hint and never changes the result.
  int32_t range_col = -1;
  BoundSpec lower;
  BoundSpec upper;

  bool is_builtin() const { return builtin != datalog::BuiltinOp::kNone; }
  bool is_relational() const { return !is_builtin(); }
  /// True for positive relational atoms — the ones the join orderer moves.
  bool is_join_atom() const { return is_relational() && !negated; }
  bool has_range() const { return range_col >= 0; }
};

/// IR operator kinds, mirroring the paper's Fig. 4.
enum class OpKind : uint8_t {
  kProgram,    // Root: sequence of strata.
  kSequence,   // Ordered children.
  kDoWhile,    // Fixpoint loop: run body, repeat while any delta non-empty.
  kSwapClear,  // End-of-iteration delta maintenance for a relation set.
  kUnionAll,   // "UnionOp*": all subqueries feeding one relation.
  kUnion,      // Union of the SPJ subqueries of one rule definition.
  kSpj,        // Select-project-join + insert into the target delta.
  kAggregate,  // Grouped aggregation over a (non-recursive) rule body.
};

const char* OpKindName(OpKind kind);

/// A node of the IR program. A single tagged struct (rather than a class
/// hierarchy) keeps cloning, reordering and code generation simple — the
/// C++ analog of the paper's GADT encoding, which likewise allows every
/// node to be either interpreted or compiled.
struct IROp {
  OpKind kind;
  /// Unique id across the owning IRProgram; used as compile-cache key and
  /// as the continuation label spliced into snippet-compiled code.
  uint32_t node_id = 0;

  std::vector<std::unique_ptr<IROp>> children;

  /// kDoWhile / kSwapClear: the stratum's relations. kUnionAll: singleton —
  /// the fed relation.
  std::vector<datalog::PredicateId> relations;

  // ---- kSpj / kAggregate payload ----
  datalog::PredicateId target = datalog::kInvalidPredicate;
  /// Projection producing the head tuple, in head-column order.
  std::vector<LocalTerm> head_terms;
  /// Body atoms in execution order. The join orderer permutes this vector
  /// (positive relational atoms move; builtins and negations are re-placed
  /// at their earliest valid position).
  std::vector<AtomSpec> atoms;
  /// Number of distinct local variables across atoms + head.
  int32_t num_locals = 0;
  /// Which rule produced this subquery and which join atom reads the
  /// delta (-1 for the naive initial pass). Diagnostics and tests only.
  uint32_t rule_index = 0;
  int32_t delta_pos = -1;
  /// Update-tree subqueries pin their DeltaKnown atom outermost: an empty
  /// delta then short-circuits the whole variant, the property that keeps
  /// an update epoch proportional to the delta. Every reorderer (AOT and
  /// the JIT backends' compile-time replanning) honors this constraint —
  /// see optimizer::ReorderSubquery.
  bool delta_pinned = false;
  /// Whether range pushdown was enabled when this subquery was lowered
  /// (EngineConfig::range_pushdown). Reorderers re-annotate bounds after
  /// permuting atoms only when set.
  bool range_pushdown = false;

  // kAggregate only:
  datalog::AggFunc agg = datalog::AggFunc::kNone;
  LocalVar agg_operand = -1;

  explicit IROp(OpKind k) : kind(k) {}
  IROp(const IROp&) = delete;
  IROp& operator=(const IROp&) = delete;

  /// Deep copy (fresh nodes share node_ids with the source — used by the
  /// backends to snapshot a subtree at compile time).
  std::unique_ptr<IROp> Clone() const;
};

/// Per-stratum evaluation plan: the stratum's predicates and change-
/// propagation metadata plus pointers to its two subtrees. `full` (the
/// naive pass + semi-naive loop under `root`) serves full evaluation and
/// stratum recompute; `update` (the watermark-seeded delta loop under
/// `update_root`) serves incremental epochs.
struct StratumPlan {
  /// IDB predicates defined by this stratum.
  std::vector<datalog::PredicateId> predicates;
  /// Predicates of this stratum read positively by its own rules — the
  /// only ones that can keep feeding the update loop after iteration 1,
  /// so they alone drive its termination test.
  std::vector<datalog::PredicateId> recursive_predicates;
  /// All predicates read by the stratum's rule bodies (see
  /// datalog::Stratum::body_inputs).
  std::vector<datalog::PredicateId> body_inputs;
  /// Inputs whose growth forces a stratum recompute (see
  /// datalog::Stratum::recompute_triggers).
  std::vector<datalog::PredicateId> recompute_triggers;
  IROp* full = nullptr;
  IROp* update = nullptr;
};

/// A lowered program: the IR tree plus lookup tables.
struct IRProgram {
  std::unique_ptr<IROp> root;
  /// The incremental twin of `root`: per stratum, a DoWhile loop whose
  /// subqueries read DeltaKnown at EVERY positive atom position in turn
  /// (EDB and lower-stratum atoms included, unlike the in-loop delta
  /// split under `root`, which only targets same-stratum atoms). An
  /// update epoch seeds DeltaKnown from the Derived rows past each
  /// relation's watermark and runs these loops to fixpoint.
  std::unique_ptr<IROp> update_root;
  uint32_t num_nodes = 0;

  /// Stratum metadata in evaluation order; strata[i].full is
  /// root->children[i], strata[i].update is update_root->children[i].
  std::vector<StratumPlan> strata;

  /// node_id -> node, for snippet continuations. Covers both trees —
  /// node ids are unique across root and update_root.
  std::vector<IROp*> by_id;

  void RebuildIndex();

  /// Multi-line rendering for debugging and golden tests (the full tree;
  /// pass update_root to OpToString for the incremental twin).
  std::string ToString(const datalog::Program& program) const;
};

/// Renders one node (subtree) as an indented string.
std::string OpToString(const IROp& op, const datalog::Program& program,
                       int indent = 0);

}  // namespace carac::ir

#endif  // CARAC_IR_IROP_H_
