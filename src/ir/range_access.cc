#include "ir/range_access.h"

#include <algorithm>
#include <limits>

#include "optimizer/selectivity.h"
#include "util/status.h"

namespace carac::ir {

using storage::Value;

bool CloseInterval(Value lo, bool lo_strict, Value hi, bool hi_strict,
                   Value* out_lo, Value* out_hi) {
  if (lo_strict) {
    if (lo == std::numeric_limits<Value>::max()) return false;
    ++lo;
  }
  if (hi_strict) {
    if (hi == std::numeric_limits<Value>::min()) return false;
    --hi;
  }
  if (lo > hi) return false;
  *out_lo = lo;
  *out_hi = hi;
  return true;
}

ResolvedRange ResolveRange(const AtomSpec& atom, const Value* binding) {
  const auto value_of = [&](const BoundSpec& b) {
    return b.kind == BoundSpec::Kind::kVar ? binding[b.var] : b.constant;
  };
  Value lo = std::numeric_limits<Value>::min();
  bool lo_strict = false;
  if (atom.lower.present()) {
    lo = value_of(atom.lower);
    lo_strict = atom.lower.strict;
  }
  Value hi = std::numeric_limits<Value>::max();
  bool hi_strict = false;
  if (atom.upper.present()) {
    hi = value_of(atom.upper);
    hi_strict = atom.upper.strict;
  }
  ResolvedRange r;
  r.empty = !CloseInterval(lo, lo_strict, hi, hi_strict, &r.lo, &r.hi);
  return r;
}

bool TryRangeProbe(const storage::Relation& rel, size_t col,
                   const ResolvedRange& range, ColumnProbeStats* stats,
                   std::vector<storage::RowId>* rows) {
  if (!rel.HasIndex(col)) return false;
  // Record the demand before deciding: declined ranges on a hash column
  // are the signal AdaptiveIndexPolicy re-kinds on.
  if (stats != nullptr) stats->range_probes++;
  if (range.empty) {
    rows->clear();
    return true;
  }
  if (!storage::IndexKindIsOrdered(rel.IndexKindOf(col))) return false;
  Value key_min;
  Value key_max;
  if (!rel.IndexKeyBounds(col, &key_min, &key_max)) {
    // Ordered index with no keys: the relation is empty.
    rows->clear();
    return true;
  }
  if (!optimizer::RangeProbeProfitable(range.lo, range.hi, key_min, key_max)) {
    return false;
  }
  rows->clear();
  CARAC_CHECK_OK(rel.ProbeRange(col, range.lo, range.hi, rows));
  // ProbeRange yields ascending (key, RowId); the evaluators iterate in
  // ascending RowId — the filter scan's order — so re-sort. This pass is
  // the cost RangeProbeProfitable weighs against the scan.
  std::sort(rows->begin(), rows->end());
  return true;
}

}  // namespace carac::ir
