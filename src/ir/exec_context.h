#ifndef CARAC_IR_EXEC_CONTEXT_H_
#define CARAC_IR_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>

#include "storage/database.h"

namespace carac::ir {

/// Counters exposed by every evaluation mode; tests assert on them and the
/// benches report them alongside wall-clock time.
struct ExecStats {
  uint64_t iterations = 0;            ///< DoWhile loop trips.
  uint64_t spj_executions = 0;        ///< SPJ subquery evaluations.
  uint64_t tuples_inserted = 0;       ///< Novel facts discovered.
  uint64_t tuples_considered = 0;     ///< Join emissions before dedup.
  uint64_t reorders = 0;              ///< Join-order optimizations applied.
  uint64_t compilations = 0;          ///< Backend compilations started.
  uint64_t compiled_invocations = 0;  ///< Executions served by compiled code.
  uint64_t freshness_skips = 0;       ///< Recompilations skipped as fresh.

  std::string ToString() const;
};

/// Which relational engine executes subqueries (§V-D: Carac's relational
/// layer is pluggable and has been integrated with a push-based and a
/// pull-based engine).
enum class EngineStyle : uint8_t {
  kPush = 0,  // Driver pushes rows through the join into the insert.
  kPull = 1,  // Volcano iterator tree; rows are pulled from the root.
};

const char* EngineStyleName(EngineStyle style);

/// Everything a running evaluation touches. All mutable evaluation state
/// lives in the database (the property that makes every IR node boundary a
/// safe point, §V-B3), so this is just the database plus counters.
class ExecContext {
 public:
  explicit ExecContext(storage::DatabaseSet* db) : db_(db) {}
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  storage::DatabaseSet& db() { return *db_; }
  const storage::DatabaseSet& db() const { return *db_; }

  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }

  EngineStyle engine_style() const { return engine_style_; }
  void set_engine_style(EngineStyle style) { engine_style_ = style; }

 private:
  storage::DatabaseSet* db_;
  ExecStats stats_;
  EngineStyle engine_style_ = EngineStyle::kPush;
};

}  // namespace carac::ir

#endif  // CARAC_IR_EXEC_CONTEXT_H_
