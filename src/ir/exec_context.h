#ifndef CARAC_IR_EXEC_CONTEXT_H_
#define CARAC_IR_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/staging_buffer.h"

namespace carac::core {
class WorkerPool;
}  // namespace carac::core

namespace carac::ir {

/// Counters exposed by every evaluation mode; tests assert on them and the
/// benches report them alongside wall-clock time.
struct ExecStats {
  uint64_t iterations = 0;            ///< DoWhile loop trips.
  uint64_t spj_executions = 0;        ///< SPJ subquery evaluations.
  uint64_t tuples_inserted = 0;       ///< Novel facts discovered.
  uint64_t tuples_considered = 0;     ///< Join emissions before dedup.
  uint64_t reorders = 0;              ///< Join-order optimizations applied.
  uint64_t compilations = 0;          ///< Backend compilations started.
  uint64_t compiled_invocations = 0;  ///< Executions served by compiled code.
  uint64_t freshness_skips = 0;       ///< Recompilations skipped as fresh.

  std::string ToString() const;

  /// Field-wise `after - before`. The context's counters are cumulative
  /// across epochs; per-epoch accounting subtracts a snapshot taken at
  /// epoch entry.
  static ExecStats Delta(const ExecStats& after, const ExecStats& before);
};

/// Runtime access counters for one indexed (relation, column): how the
/// evaluators actually touched it, as opposed to the syntactic access-path
/// profile the optimizer computes at Prepare(). Plain (non-atomic)
/// counters: on the single-threaded path each evaluator increments the
/// context's profiler directly; parallel shards increment a per-worker
/// profiler that is merged at staging-merge time, so the hot path never
/// pays for synchronization.
struct ColumnProbeStats {
  uint64_t point_probes = 0;   ///< Point lookups (BatchProbe keys included).
  uint64_t point_hits = 0;     ///< Point lookups that matched >= 1 row.
  uint64_t range_probes = 0;   ///< ProbeRange calls.
  uint64_t batch_windows = 0;  ///< BatchProbe windows resolved.

  uint64_t total() const { return point_probes + range_probes; }

  void MergeFrom(const ColumnProbeStats& other) {
    point_probes += other.point_probes;
    point_hits += other.point_hits;
    range_probes += other.range_probes;
    batch_windows += other.batch_windows;
  }

  /// Field-wise `*this - before` (counters are cumulative; per-epoch
  /// accounting subtracts a snapshot, mirroring ExecStats::Delta).
  ColumnProbeStats DeltaSince(const ColumnProbeStats& before) const {
    ColumnProbeStats d;
    d.point_probes = point_probes - before.point_probes;
    d.point_hits = point_hits - before.point_hits;
    d.range_probes = range_probes - before.range_probes;
    d.batch_windows = batch_windows - before.batch_windows;
    return d;
  }
};

/// Per-(relation, column) probe counters with pointer-stable slots: the
/// evaluators resolve a ColumnProbeStats* once at plan-build time (a map
/// lookup), then hot loops pay one or two plain increments per probe. The
/// node-based map keeps slot pointers valid for the profiler's lifetime.
class AccessProfiler {
 public:
  using Key = std::pair<storage::RelationId, uint32_t>;

  /// Counters for (rel, column), created zeroed on first use. The
  /// returned pointer stays valid until Clear().
  ColumnProbeStats* Slot(storage::RelationId rel, size_t column) {
    return &counters_[Key(rel, static_cast<uint32_t>(column))];
  }

  const std::map<Key, ColumnProbeStats>& counters() const {
    return counters_;
  }
  bool empty() const { return counters_.empty(); }

  void MergeFrom(const AccessProfiler& other) {
    for (const auto& [key, stats] : other.counters_) {
      counters_[key].MergeFrom(stats);
    }
  }

  void Clear() { counters_.clear(); }

 private:
  std::map<Key, ColumnProbeStats> counters_;
};

/// Which relational engine executes subqueries (§V-D: Carac's relational
/// layer is pluggable and has been integrated with a push-based and a
/// pull-based engine).
enum class EngineStyle : uint8_t {
  kPush = 0,  // Driver pushes rows through the join into the insert.
  kPull = 1,  // Volcano iterator tree; rows are pulled from the root.
};

const char* EngineStyleName(EngineStyle style);

/// Everything a running evaluation touches. All mutable evaluation state
/// lives in the database (the property that makes every IR node boundary a
/// safe point, §V-B3), so this is just the database plus counters.
class ExecContext {
 public:
  explicit ExecContext(storage::DatabaseSet* db) : db_(db) {}
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  storage::DatabaseSet& db() { return *db_; }
  const storage::DatabaseSet& db() const { return *db_; }

  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }

  EngineStyle engine_style() const { return engine_style_; }
  void set_engine_style(EngineStyle style) { engine_style_ = style; }

  // ---- Parallel evaluation (EngineConfig::num_threads > 1) ----

  /// The engine's persistent worker pool, or nullptr when evaluation is
  /// single-threaded. Subquery evaluators shard their outer scan across
  /// it; everything they touch concurrently is read-only.
  core::WorkerPool* worker_pool() const { return worker_pool_; }
  void set_worker_pool(core::WorkerPool* pool) { worker_pool_ = pool; }

  /// Outer scans below this row count run single-threaded: sharding a
  /// near-empty delta costs more in dispatch than it saves. Tests lower
  /// it to force the parallel path onto small programs; results are
  /// identical for every value (the merge order fixes determinism).
  uint32_t parallel_min_rows() const { return parallel_min_rows_; }
  void set_parallel_min_rows(uint32_t rows) { parallel_min_rows_ = rows; }

  /// Per-worker staging buffers, lazily sized to `shards` and re-armed
  /// for `arity`-wide rows. Capacity persists across subqueries, so
  /// steady-state parallel evaluation allocates nothing here. Also sizes
  /// the per-shard profiler array (ShardProfiler) to match.
  std::vector<storage::StagingBuffer>& StagingFor(int shards, size_t arity);

  // ---- Runtime access profiling ----

  /// Cumulative per-(relation, column) probe counters for this context's
  /// lifetime. The evaluators feed it; the adaptive index policy and
  /// `serve stats` read it.
  AccessProfiler& profiler() { return profiler_; }
  const AccessProfiler& profiler() const { return profiler_; }

  /// Worker-private profiler for `shard`, merged into profiler() by
  /// MergeStagedDelta — the same merge point that keeps staged inserts
  /// deterministic also keeps counter aggregation race-free. Valid after
  /// StagingFor sized at least `shard + 1` shards.
  AccessProfiler* ShardProfiler(int shard) {
    return &shard_profilers_[static_cast<size_t>(shard)];
  }

  // ---- Batched probe cursors ----

  /// Outer-window size for batch-at-a-time index probes: when a
  /// subquery's second atom probes on a variable bound by the first, the
  /// evaluators resolve up to this many probe keys per BatchProbe call
  /// (amortizing dispatch, skipping equal-adjacent keys, and letting the
  /// B-tree probe in key order). 0 disables batching (tuple-at-a-time
  /// probes, the pre-batching behaviour).
  uint32_t probe_batch_window() const { return probe_batch_window_; }
  void set_probe_batch_window(uint32_t window) {
    probe_batch_window_ = window;
  }

 private:
  storage::DatabaseSet* db_;
  ExecStats stats_;
  EngineStyle engine_style_ = EngineStyle::kPush;
  core::WorkerPool* worker_pool_ = nullptr;
  uint32_t parallel_min_rows_ = 128;
  uint32_t probe_batch_window_ = 64;
  std::vector<storage::StagingBuffer> staging_;
  AccessProfiler profiler_;
  std::vector<AccessProfiler> shard_profilers_;
};

/// Merges the first `shards` staging buffers into `target`'s DeltaNew in
/// worker order, skipping tuples already in Derived, and folds the
/// workers' emission counts into the stats. Shared by the push and pull
/// evaluators; the fixed merge order is what makes parallel evaluation
/// byte-identical to single-threaded runs.
void MergeStagedDelta(ExecContext& ctx, storage::RelationId target,
                      std::vector<storage::StagingBuffer>& buffers,
                      int shards, const uint64_t* considered);

/// One shard of a parallel subquery: evaluate outer positions
/// [begin, end), staging emissions into `staging` and the local emission
/// count into `considered`.
using SubqueryShardFn =
    std::function<void(int shard, size_t begin, size_t end,
                       storage::StagingBuffer* staging,
                       uint64_t* considered)>;

/// The pull engine's shard-dispatch scaffolding: gates on the dispatch
/// threshold, re-arms one staging buffer per pool thread, fans
/// `shard_fn` out over contiguous position ranges of [0, outer_rows),
/// then merges the staged results in shard order (MergeStagedDelta).
/// Returns false — nothing dispatched — when the subquery should run
/// single-threaded. Callers check worker_pool() themselves first so the
/// single-threaded path never pays for computing `outer_rows`.
///
/// The push interpreter repeats this chunking inline
/// (interpreter.cc SubqueryRun::RunSharded) rather than calling it:
/// funnelling its dispatch through this std::function signature
/// perturbed GCC 12's inlining of the recursive join and cost ~15% on
/// single-threaded interpreted macrobenchmarks. Keep the two copies of
/// the chunk math identical — the fuzz matrix (push == pull at every
/// thread count) catches a divergence.
bool ShardSubqueryAcrossPool(ExecContext& ctx, storage::RelationId target,
                             size_t outer_rows, size_t arity,
                             const SubqueryShardFn& shard_fn);

}  // namespace carac::ir

#endif  // CARAC_IR_EXEC_CONTEXT_H_
