#ifndef CARAC_IR_PULL_EVALUATOR_H_
#define CARAC_IR_PULL_EVALUATOR_H_

#include "ir/exec_context.h"
#include "ir/irop.h"

namespace carac::ir {

/// The pull-based (Volcano-style) relational engine. §V-D notes Carac's
/// relational layer has been integrated with "a typical push-based and a
/// pull-based engine": RunSubquery in interpreter.cc is the push-based
/// one (it drives each tuple through the join and into the insert), while
/// this evaluator builds an iterator tree per subquery — scan/probe leaves
/// under nested-loop join, filter and antijoin operators — and *pulls*
/// result rows from the root, inserting each into the target delta.
///
/// Both engines produce identical results (enforced by property tests);
/// they differ only in control flow and per-row overheads. The engine in
/// use is selected per evaluation via ExecContext::engine_style.
void RunSubqueryPull(ExecContext& ctx, const IROp& op);

}  // namespace carac::ir

#endif  // CARAC_IR_PULL_EVALUATOR_H_
