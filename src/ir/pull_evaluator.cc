#include "ir/pull_evaluator.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "datalog/builtins.h"
#include "util/status.h"

namespace carac::ir {

namespace {

using datalog::BuiltinBindsOutput;
using storage::Relation;
using storage::RowId;
using storage::Tuple;
using storage::TupleView;
using storage::Value;

/// One Volcano operator: Reset() re-opens it under the current binding
/// (outer rows are visible through the shared binding array), Next()
/// produces the operator's next match and updates the binding.
class RowSource {
 public:
  virtual ~RowSource() = default;
  virtual void Reset(std::vector<Value>& binding) = 0;
  virtual bool Next(std::vector<Value>& binding) = 0;
};

/// Scan / index-probe leaf for one positive relational atom.
class ScanSource : public RowSource {
 public:
  ScanSource(const Relation* rel, const AtomSpec* atom,
             const std::vector<bool>& bound_before)
      : rel_(rel), atom_(atom) {
    // Boundness is static at pipeline-build time, so the per-column
    // behaviour (check a constant, check an already-bound variable, or
    // bind a fresh one) is precomputed once — the per-row match loop
    // allocates nothing. A variable's first occurrence within the atom
    // binds; later occurrences check (R(x, x) filters on its 2nd column).
    std::vector<bool> bound = bound_before;
    actions_.reserve(atom->terms.size());
    for (size_t col = 0; col < atom->terms.size(); ++col) {
      const LocalTerm& t = atom->terms[col];
      ColAction action;
      action.col = static_cast<uint32_t>(col);
      if (!t.is_var) {
        action.kind = ColAction::Kind::kCheckConst;
        action.constant = t.constant;
      } else if (bound[t.var]) {
        action.kind = ColAction::Kind::kCheckVar;
        action.var = t.var;
      } else {
        action.kind = ColAction::Kind::kBind;
        action.var = t.var;
        bound[t.var] = true;
      }
      // Probe keys must be available before the atom runs: only columns
      // whose value is known from the *outer* binding qualify.
      const bool pre_bound = !t.is_var || bound_before[t.var];
      if (probe_col_ < 0 && pre_bound && rel_->HasIndex(col)) {
        probe_col_ = static_cast<int32_t>(col);
      }
      actions_.push_back(action);
    }
  }

  /// Parallel evaluation: restricts this source — always the pipeline's
  /// outer stage — to positions [begin, end) of its row sequence (bucket
  /// positions when probing, RowIds when scanning). The defaults cover
  /// the whole sequence.
  void RestrictOuter(size_t begin, size_t end) {
    outer_begin_ = begin;
    outer_end_ = end;
  }

  /// Length of the row sequence this source iterates under `binding`,
  /// taken from the same access path Reset() will choose. The sharder
  /// sizes its outer windows with this so it can never disagree with
  /// what the workers actually scan.
  size_t SequenceSize(const std::vector<Value>& binding) const {
    if (probe_col_ < 0) return rel_->NumRows();
    const LocalTerm& key = atom_->terms[probe_col_];
    return rel_
        ->Probe(static_cast<size_t>(probe_col_),
                key.is_var ? binding[key.var] : key.constant)
        .size();
  }

  void Reset(std::vector<Value>& binding) override {
    // The position window is clamped here, once per re-open, so Next()'s
    // per-row bound check costs exactly what it did before parallel
    // evaluation existed.
    if (probe_col_ >= 0) {
      const LocalTerm& key = atom_->terms[probe_col_];
      bucket_ = &rel_->Probe(static_cast<size_t>(probe_col_),
                             key.is_var ? binding[key.var] : key.constant);
      bucket_limit_ = std::min(outer_end_, bucket_->size());
      bucket_pos_ = std::min(outer_begin_, bucket_limit_);
    } else {
      const size_t num_rows = rel_->NumRows();
      row_limit_ = static_cast<RowId>(std::min(outer_end_, num_rows));
      row_ = static_cast<RowId>(std::min(outer_begin_,
                                         static_cast<size_t>(row_limit_)));
    }
  }

  bool Next(std::vector<Value>& binding) override {
    for (;;) {
      TupleView row;
      if (probe_col_ >= 0) {
        if (bucket_pos_ >= bucket_limit_) return false;
        row = rel_->View((*bucket_)[bucket_pos_++]);
      } else {
        if (row_ >= row_limit_) return false;
        row = rel_->View(row_++);
      }
      if (Matches(row, binding)) return true;
    }
  }

 private:
  struct ColAction {
    enum class Kind : uint8_t { kCheckConst, kCheckVar, kBind };
    Kind kind = Kind::kBind;
    uint32_t col = 0;
    Value constant = 0;
    LocalVar var = -1;
  };

  bool Matches(TupleView row, std::vector<Value>& binding) const {
    for (const ColAction& action : actions_) {
      const Value v = row[action.col];
      switch (action.kind) {
        case ColAction::Kind::kCheckConst:
          if (v != action.constant) return false;
          break;
        case ColAction::Kind::kCheckVar:
          if (v != binding[action.var]) return false;
          break;
        case ColAction::Kind::kBind:
          binding[action.var] = v;
          break;
      }
    }
    return true;
  }

  const Relation* rel_;
  const AtomSpec* atom_;
  std::vector<ColAction> actions_;
  int32_t probe_col_ = -1;
  const std::vector<RowId>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  size_t bucket_limit_ = 0;
  RowId row_ = 0;
  RowId row_limit_ = 0;
  size_t outer_begin_ = 0;
  size_t outer_end_ = static_cast<size_t>(-1);
};

/// Builtin atom: a zero-or-one-row source (filter, or arithmetic binder).
class BuiltinSource : public RowSource {
 public:
  BuiltinSource(const AtomSpec* atom, bool out_was_bound)
      : atom_(atom), out_was_bound_(out_was_bound) {}

  void Reset(std::vector<Value>& /*binding*/) override { produced_ = false; }

  bool Next(std::vector<Value>& binding) override {
    if (produced_) return false;
    produced_ = true;
    auto term_value = [&](const LocalTerm& t) {
      return t.is_var ? binding[t.var] : t.constant;
    };
    const Value x = term_value(atom_->terms[0]);
    const Value y = term_value(atom_->terms[1]);
    if (!BuiltinBindsOutput(atom_->builtin)) {
      return datalog::EvalComparison(atom_->builtin, x, y);
    }
    Value z;
    if (!datalog::EvalArithmetic(atom_->builtin, x, y, &z)) return false;
    const LocalTerm& out = atom_->terms[2];
    if (!out.is_var) return out.constant == z;
    if (out_was_bound_) return binding[out.var] == z;
    binding[out.var] = z;
    return true;
  }

 private:
  const AtomSpec* atom_;
  bool out_was_bound_;
  bool produced_ = false;
};

/// Negated atom: antijoin membership test (zero-or-one empty row).
class NegationSource : public RowSource {
 public:
  NegationSource(const Relation* rel, const AtomSpec* atom)
      : rel_(rel), atom_(atom) {}

  void Reset(std::vector<Value>& /*binding*/) override { produced_ = false; }

  bool Next(std::vector<Value>& binding) override {
    if (produced_) return false;
    produced_ = true;
    scratch_.clear();
    for (const LocalTerm& t : atom_->terms) {
      scratch_.push_back(t.is_var ? binding[t.var] : t.constant);
    }
    return !rel_->Contains(scratch_);
  }

 private:
  const Relation* rel_;
  const AtomSpec* atom_;
  Tuple scratch_;
  bool produced_ = false;
};

/// Builds the iterator pipeline, tracking static boundness per stage.
std::vector<std::unique_ptr<RowSource>> BuildPipeline(ExecContext& ctx,
                                                      const IROp& op) {
  std::vector<std::unique_ptr<RowSource>> pipeline;
  pipeline.reserve(op.atoms.size());
  std::vector<bool> bound(op.num_locals, false);
  for (const AtomSpec& atom : op.atoms) {
    if (atom.is_builtin()) {
      const LocalTerm& out =
          BuiltinBindsOutput(atom.builtin) ? atom.terms[2] : LocalTerm();
      const bool out_was_bound = out.is_var && bound[out.var];
      pipeline.push_back(
          std::make_unique<BuiltinSource>(&atom, out_was_bound));
      if (BuiltinBindsOutput(atom.builtin) && out.is_var) {
        bound[out.var] = true;
      }
    } else if (atom.negated) {
      pipeline.push_back(std::make_unique<NegationSource>(
          &ctx.db().Get(atom.predicate, atom.source), &atom));
    } else {
      pipeline.push_back(std::make_unique<ScanSource>(
          &ctx.db().Get(atom.predicate, atom.source), &atom, bound));
      for (const LocalTerm& t : atom.terms) {
        if (t.is_var) bound[t.var] = true;
      }
    }
  }
  return pipeline;
}

/// The Volcano get-next loop over the pipeline's cursor stack, calling
/// `emit` for every full match. Requires a non-empty pipeline.
template <typename EmitFn>
void RunVolcano(std::vector<std::unique_ptr<RowSource>>& pipeline,
                std::vector<Value>& binding, EmitFn&& emit) {
  const int n = static_cast<int>(pipeline.size());
  int depth = 0;
  pipeline[0]->Reset(binding);
  while (depth >= 0) {
    if (!pipeline[depth]->Next(binding)) {
      --depth;
      continue;
    }
    if (depth == n - 1) {
      emit();
    } else {
      ++depth;
      pipeline[depth]->Reset(binding);
    }
  }
}

/// The pull engine's parallel path: shards the outer stage's row sequence
/// by contiguous position ranges, each worker running a private pipeline
/// that stages into its own buffer; the in-order merge then replays the
/// single-threaded insertion sequence exactly. Returns false when the
/// subquery must (or should) run single-threaded.
bool TryRunPullSharded(ExecContext& ctx, const IROp& op,
                       const std::vector<std::unique_ptr<RowSource>>&
                           pipeline) {
  if (ctx.worker_pool() == nullptr) return false;
  if (op.atoms.empty()) return false;
  const AtomSpec& outer = op.atoms[0];
  if (outer.is_builtin() || outer.negated) return false;
  // atoms[0] is a positive relational atom, so BuildPipeline made
  // pipeline[0] a ScanSource; its own access path (not a re-derivation
  // of it) sizes the shard windows. No variable is bound before stage 0,
  // so the all-zero binding below can never be consulted for a probe key.
  const std::vector<Value> binding_zero(op.num_locals, 0);
  const size_t outer_rows =
      static_cast<const ScanSource*>(pipeline[0].get())
          ->SequenceSize(binding_zero);

  const Relation& derived = ctx.db().Get(op.target, storage::DbKind::kDerived);
  const Relation& delta_new =
      ctx.db().Get(op.target, storage::DbKind::kDeltaNew);
  return ShardSubqueryAcrossPool(
      ctx, op.target, outer_rows, op.head_terms.size(),
      [&](int /*shard*/, size_t begin, size_t end,
          storage::StagingBuffer* staging, uint64_t* considered) {
        auto pipeline = BuildPipeline(ctx, op);
        static_cast<ScanSource*>(pipeline[0].get())
            ->RestrictOuter(begin, end);
        std::vector<Value> binding(op.num_locals, 0);
        uint64_t emitted = 0;
        Tuple head;
        RunVolcano(pipeline, binding, [&] {
          ++emitted;
          head.clear();
          for (const LocalTerm& t : op.head_terms) {
            head.push_back(t.is_var ? binding[t.var] : t.constant);
          }
          // Derived and DeltaNew are frozen until the merge, so these
          // are safe concurrent reads that keep the staging sets small.
          if (derived.Contains(head) || delta_new.Contains(head)) return;
          staging->Insert(head);
        });
        *considered = emitted;
      });
}

}  // namespace

void RunSubqueryPull(ExecContext& ctx, const IROp& op) {
  CARAC_CHECK(op.kind == OpKind::kSpj);
  ctx.stats().spj_executions++;

  std::vector<std::unique_ptr<RowSource>> pipeline = BuildPipeline(ctx, op);
  if (TryRunPullSharded(ctx, op, pipeline)) return;

  storage::DatabaseSet& db = ctx.db();
  Relation& derived = db.Get(op.target, storage::DbKind::kDerived);
  Relation& delta_new = db.Get(op.target, storage::DbKind::kDeltaNew);
  std::vector<Value> binding(op.num_locals, 0);
  Tuple head;

  auto emit = [&] {
    ctx.stats().tuples_considered++;
    head.clear();
    for (const LocalTerm& t : op.head_terms) {
      head.push_back(t.is_var ? binding[t.var] : t.constant);
    }
    if (derived.Contains(head)) return;
    if (delta_new.Insert(head)) ctx.stats().tuples_inserted++;
  };

  if (pipeline.empty()) {
    emit();
    return;
  }
  RunVolcano(pipeline, binding, emit);
}

}  // namespace carac::ir
