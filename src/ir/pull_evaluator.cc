#include "ir/pull_evaluator.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "datalog/builtins.h"
#include "ir/range_access.h"
#include "util/status.h"

namespace carac::ir {

namespace {

using datalog::BuiltinBindsOutput;
using storage::Relation;
using storage::RowCursor;
using storage::RowId;
using storage::Tuple;
using storage::TupleView;
using storage::Value;

/// Per-column behaviour of a relational atom, precomputed at
/// pipeline-build time so the per-row match loop allocates nothing. A
/// variable's first occurrence within the atom binds; later occurrences
/// check (R(x, x) filters on its 2nd column). Shared by ScanSource and
/// the fused BatchedJoinSource.
struct ColAction {
  enum class Kind : uint8_t { kCheckConst, kCheckVar, kBind };
  Kind kind = Kind::kBind;
  uint32_t col = 0;
  Value constant = 0;
  LocalVar var = -1;
};

/// Builds the action list for `atom`, updating `bound` with the
/// variables the atom binds.
std::vector<ColAction> BuildColActions(const AtomSpec& atom,
                                       std::vector<bool>& bound) {
  std::vector<ColAction> actions;
  actions.reserve(atom.terms.size());
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const LocalTerm& t = atom.terms[col];
    ColAction action;
    action.col = static_cast<uint32_t>(col);
    if (!t.is_var) {
      action.kind = ColAction::Kind::kCheckConst;
      action.constant = t.constant;
    } else if (bound[t.var]) {
      action.kind = ColAction::Kind::kCheckVar;
      action.var = t.var;
    } else {
      action.kind = ColAction::Kind::kBind;
      action.var = t.var;
      bound[t.var] = true;
    }
    actions.push_back(action);
  }
  return actions;
}

/// Applies `actions` to `row`: false on a failed check, true with all
/// binds applied otherwise.
inline bool ApplyColActions(const std::vector<ColAction>& actions,
                            TupleView row, std::vector<Value>& binding) {
  for (const ColAction& action : actions) {
    const Value v = row[action.col];
    switch (action.kind) {
      case ColAction::Kind::kCheckConst:
        if (v != action.constant) return false;
        break;
      case ColAction::Kind::kCheckVar:
        if (v != binding[action.var]) return false;
        break;
      case ColAction::Kind::kBind:
        binding[action.var] = v;
        break;
    }
  }
  return true;
}

/// The access path ScanSource (and the fused source) picks for an atom:
/// the first index-supported column whose probe key is known from the
/// outer binding before the atom runs, or -1 to scan.
int32_t PickProbeCol(const Relation& rel, const AtomSpec& atom,
                     const std::vector<bool>& bound_before) {
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const LocalTerm& t = atom.terms[col];
    const bool pre_bound = !t.is_var || bound_before[t.var];
    if (pre_bound && rel.HasIndex(col)) return static_cast<int32_t>(col);
  }
  return -1;
}

/// One Volcano operator: Reset() re-opens it under the current binding
/// (outer rows are visible through the shared binding array), Next()
/// produces the operator's next match and updates the binding.
class RowSource {
 public:
  virtual ~RowSource() = default;
  virtual void Reset(std::vector<Value>& binding) = 0;
  virtual bool Next(std::vector<Value>& binding) = 0;

  /// Parallel evaluation, meaningful only for the pipeline's outer
  /// stage: restricts the source to positions [begin, end) of its row
  /// sequence (bucket positions when probing, RowIds when scanning). The
  /// defaults cover the whole sequence; inner-only sources ignore it.
  virtual void RestrictOuter(size_t begin, size_t end) {
    (void)begin;
    (void)end;
  }

  /// Length of the row sequence this source iterates under `binding`,
  /// taken from the same access path Reset() will choose. The sharder
  /// sizes its outer windows with this so it can never disagree with
  /// what the workers actually scan. Sources that can never lead a
  /// pipeline report 0.
  virtual size_t SequenceSize(const std::vector<Value>& binding) const {
    (void)binding;
    return 0;
  }
};

/// Scan / index-probe leaf for one positive relational atom.
class ScanSource : public RowSource {
 public:
  ScanSource(const Relation* rel, const AtomSpec* atom,
             const std::vector<bool>& bound_before,
             AccessProfiler* profiler)
      : rel_(rel), atom_(atom) {
    std::vector<bool> bound = bound_before;
    actions_ = BuildColActions(*atom, bound);
    probe_col_ = PickProbeCol(*rel, *atom, bound_before);
    if (probe_col_ >= 0) {
      probe_stats_ = profiler->Slot(atom->predicate,
                                    static_cast<size_t>(probe_col_));
    } else if (atom->has_range() &&
               rel->HasIndex(static_cast<size_t>(atom->range_col))) {
      // Range pushdown candidate (a point probe always wins): Reset()
      // resolves the bounds and may serve the scan via TryRangeProbe.
      range_stats_ = profiler->Slot(atom->predicate,
                                    static_cast<size_t>(atom->range_col));
    }
  }

  void RestrictOuter(size_t begin, size_t end) override {
    outer_begin_ = begin;
    outer_end_ = end;
  }

  size_t SequenceSize(const std::vector<Value>& binding) const override {
    if (probe_col_ >= 0) {
      const LocalTerm& key = atom_->terms[probe_col_];
      return rel_
          ->Probe(static_cast<size_t>(probe_col_),
                  key.is_var ? binding[key.var] : key.constant)
          .size();
    }
    if (range_stats_ != nullptr) {
      // Mirror Reset()'s access path (same bounds, same index state →
      // same decision) without recording stats: the sizing pass must not
      // double-count the probes the shard workers will take.
      std::vector<RowId> rows;
      if (TryRangeProbe(*rel_, static_cast<size_t>(atom_->range_col),
                        ResolveRange(*atom_, binding.data()), nullptr,
                        &rows)) {
        return rows.size();
      }
    }
    return rel_->NumRows();
  }

  void Reset(std::vector<Value>& binding) override {
    // The position window is clamped here, once per re-open, so Next()'s
    // per-row bound check costs exactly what it did before parallel
    // evaluation existed.
    if (probe_col_ >= 0) {
      const LocalTerm& key = atom_->terms[probe_col_];
      bucket_ = rel_->Probe(static_cast<size_t>(probe_col_),
                            key.is_var ? binding[key.var] : key.constant);
      probe_stats_->point_probes++;
      probe_stats_->point_hits += !bucket_.empty();
      use_bucket_ = true;
    } else if (range_stats_ != nullptr &&
               TryRangeProbe(*rel_, static_cast<size_t>(atom_->range_col),
                             ResolveRange(*atom_, binding.data()),
                             range_stats_, &range_rows_)) {
      // Declined probes fall through to the scan; the residual builtin
      // stages behind this one keep the result identical either way.
      bucket_ = RowCursor(range_rows_.data(), range_rows_.size());
      use_bucket_ = true;
    } else {
      use_bucket_ = false;
    }
    if (use_bucket_) {
      bucket_limit_ = std::min(outer_end_, bucket_.size());
      bucket_pos_ = std::min(outer_begin_, bucket_limit_);
    } else {
      const size_t num_rows = rel_->NumRows();
      row_limit_ = static_cast<RowId>(std::min(outer_end_, num_rows));
      row_ = static_cast<RowId>(std::min(outer_begin_,
                                         static_cast<size_t>(row_limit_)));
    }
  }

  bool Next(std::vector<Value>& binding) override {
    for (;;) {
      TupleView row;
      if (use_bucket_) {
        if (bucket_pos_ >= bucket_limit_) return false;
        row = rel_->View(bucket_[bucket_pos_++]);
      } else {
        if (row_ >= row_limit_) return false;
        row = rel_->View(row_++);
      }
      if (ApplyColActions(actions_, row, binding)) return true;
    }
  }

 private:
  const Relation* rel_;
  const AtomSpec* atom_;
  std::vector<ColAction> actions_;
  int32_t probe_col_ = -1;
  ColumnProbeStats* probe_stats_ = nullptr;  // Non-null iff probe_col_ >= 0.
  ColumnProbeStats* range_stats_ = nullptr;  // Range candidate (see ctor).
  std::vector<RowId> range_rows_;  // Owns the rows bucket_ wraps on the
                                   // range path.
  bool use_bucket_ = false;
  RowCursor bucket_;
  size_t bucket_pos_ = 0;
  size_t bucket_limit_ = 0;
  RowId row_ = 0;
  RowId row_limit_ = 0;
  size_t outer_begin_ = 0;
  size_t outer_end_ = static_cast<size_t>(-1);
};

/// Builtin atom: a zero-or-one-row source (filter, or arithmetic binder).
class BuiltinSource : public RowSource {
 public:
  BuiltinSource(const AtomSpec* atom, bool out_was_bound)
      : atom_(atom), out_was_bound_(out_was_bound) {}

  void Reset(std::vector<Value>& /*binding*/) override { produced_ = false; }

  bool Next(std::vector<Value>& binding) override {
    if (produced_) return false;
    produced_ = true;
    auto term_value = [&](const LocalTerm& t) {
      return t.is_var ? binding[t.var] : t.constant;
    };
    const Value x = term_value(atom_->terms[0]);
    const Value y = term_value(atom_->terms[1]);
    if (!BuiltinBindsOutput(atom_->builtin)) {
      return datalog::EvalComparison(atom_->builtin, x, y);
    }
    Value z;
    if (!datalog::EvalArithmetic(atom_->builtin, x, y, &z)) return false;
    const LocalTerm& out = atom_->terms[2];
    if (!out.is_var) return out.constant == z;
    if (out_was_bound_) return binding[out.var] == z;
    binding[out.var] = z;
    return true;
  }

 private:
  const AtomSpec* atom_;
  bool out_was_bound_;
  bool produced_ = false;
};

/// Negated atom: antijoin membership test (zero-or-one empty row).
class NegationSource : public RowSource {
 public:
  NegationSource(const Relation* rel, const AtomSpec* atom)
      : rel_(rel), atom_(atom) {}

  void Reset(std::vector<Value>& /*binding*/) override { produced_ = false; }

  bool Next(std::vector<Value>& binding) override {
    if (produced_) return false;
    produced_ = true;
    scratch_.clear();
    for (const LocalTerm& t : atom_->terms) {
      scratch_.push_back(t.is_var ? binding[t.var] : t.constant);
    }
    return !rel_->Contains(scratch_);
  }

 private:
  const Relation* rel_;
  const AtomSpec* atom_;
  Tuple scratch_;
  bool produced_ = false;
};

/// Fused outer-scan + batched inner-probe over the pipeline's first two
/// atoms (the shape RunSubqueryPull fuses when the second atom probes on
/// a variable the first binds). Matching outer rows are windowed, their
/// probe keys resolved in one BatchProbe per window, and inner matches
/// yielded one per Next() — the emission sequence is exactly what the
/// two unfused stages would produce, so results stay byte-identical
/// with batching on or off.
class BatchedJoinSource final : public RowSource {
 public:
  BatchedJoinSource(const Relation* outer_rel, const AtomSpec* outer_atom,
                    const Relation* inner_rel, const AtomSpec* inner_atom,
                    std::vector<bool>& bound, size_t window,
                    AccessProfiler* profiler)
      : outer_rel_(outer_rel), outer_atom_(outer_atom),
        inner_rel_(inner_rel), window_(window) {
    const std::vector<bool> bound_before_outer = bound;
    outer_actions_ = BuildColActions(*outer_atom, bound);
    outer_probe_col_ = PickProbeCol(*outer_rel, *outer_atom,
                                    bound_before_outer);
    if (outer_probe_col_ >= 0) {
      // Nothing is bound before the first atom, so the key is a const.
      outer_probe_const_ = outer_atom->terms[outer_probe_col_].constant;
      outer_probe_stats_ = profiler->Slot(
          outer_atom->predicate, static_cast<size_t>(outer_probe_col_));
    } else if (outer_atom->has_range() &&
               outer_rel->HasIndex(
                   static_cast<size_t>(outer_atom->range_col))) {
      outer_range_stats_ = profiler->Slot(
          outer_atom->predicate, static_cast<size_t>(outer_atom->range_col));
    }
    const std::vector<bool> bound_before_inner = bound;
    inner_actions_ = BuildColActions(*inner_atom, bound);
    inner_probe_col_ = PickProbeCol(*inner_rel, *inner_atom,
                                    bound_before_inner);
    CARAC_CHECK(inner_probe_col_ >= 0);
    inner_probe_stats_ = profiler->Slot(
        inner_atom->predicate, static_cast<size_t>(inner_probe_col_));
    const LocalTerm& key = inner_atom->terms[inner_probe_col_];
    CARAC_CHECK(key.is_var);  // CanFuse gates on a variable key.
    inner_probe_var_ = key.var;
  }

  void RestrictOuter(size_t begin, size_t end) override {
    outer_begin_ = begin;
    outer_end_ = end;
  }

  size_t SequenceSize(const std::vector<Value>& binding) const override {
    if (outer_probe_col_ >= 0) {
      return outer_rel_
          ->Probe(static_cast<size_t>(outer_probe_col_), outer_probe_const_)
          .size();
    }
    if (outer_range_stats_ != nullptr) {
      // Stats-free mirror of Reset()'s decision, like ScanSource's.
      std::vector<RowId> rows;
      if (TryRangeProbe(*outer_rel_,
                        static_cast<size_t>(outer_atom_->range_col),
                        ResolveRange(*outer_atom_, binding.data()), nullptr,
                        &rows)) {
        return rows.size();
      }
    }
    return outer_rel_->NumRows();
  }

  void Reset(std::vector<Value>& binding) override {
    outer_range_active_ = false;
    if (outer_probe_col_ >= 0) {
      outer_bucket_ = outer_rel_->Probe(
          static_cast<size_t>(outer_probe_col_), outer_probe_const_);
      outer_probe_stats_->point_probes++;
      outer_probe_stats_->point_hits += !outer_bucket_.empty();
      limit_ = std::min(outer_end_, outer_bucket_.size());
    } else if (outer_range_stats_ != nullptr &&
               TryRangeProbe(*outer_rel_,
                             static_cast<size_t>(outer_atom_->range_col),
                             ResolveRange(*outer_atom_, binding.data()),
                             outer_range_stats_, &outer_range_rows_)) {
      // Const-only bounds (nothing binds before the first atom), so every
      // shard resolves the identical row list.
      outer_range_active_ = true;
      limit_ = std::min(outer_end_, outer_range_rows_.size());
    } else {
      limit_ = std::min(outer_end_,
                        static_cast<size_t>(outer_rel_->NumRows()));
    }
    pos_ = std::min(outer_begin_, limit_);
    batch_rows_.clear();
    batch_idx_ = 0;
    cursor_ = RowCursor();
    cursor_pos_ = 0;
  }

  bool Next(std::vector<Value>& binding) override {
    for (;;) {
      // Drain the current outer row's pre-resolved inner cursor.
      while (cursor_pos_ < cursor_.size()) {
        const RowId inner_row = cursor_[cursor_pos_++];
        if (ApplyColActions(inner_actions_, inner_rel_->View(inner_row),
                            binding)) {
          return true;
        }
      }
      // Advance to the next matched outer row of the window, restoring
      // its binds (its checks passed during the fill pass).
      if (batch_idx_ < batch_rows_.size()) {
        const TupleView t = outer_rel_->View(batch_rows_[batch_idx_]);
        for (const ColAction& action : outer_actions_) {
          if (action.kind == ColAction::Kind::kBind) {
            binding[action.var] = t[action.col];
          }
        }
        cursor_ = batch_cursors_[batch_idx_];
        cursor_pos_ = 0;
        ++batch_idx_;
        continue;
      }
      // Refill: window the next run of outer positions, collect the
      // matching rows' probe keys, resolve them in one BatchProbe.
      if (pos_ >= limit_) return false;
      batch_rows_.clear();
      batch_keys_.clear();
      batch_idx_ = 0;
      const size_t chunk_end = std::min(pos_ + window_, limit_);
      for (; pos_ < chunk_end; ++pos_) {
        const RowId row = outer_probe_col_ >= 0 ? outer_bucket_[pos_]
                          : outer_range_active_
                              ? outer_range_rows_[pos_]
                              : static_cast<RowId>(pos_);
        if (!ApplyColActions(outer_actions_, outer_rel_->View(row),
                             binding)) {
          continue;
        }
        batch_rows_.push_back(row);
        batch_keys_.push_back(binding[inner_probe_var_]);
      }
      if (batch_rows_.empty()) continue;
      if (batch_cursors_.size() < window_) batch_cursors_.resize(window_);
      inner_rel_->BatchProbe(static_cast<size_t>(inner_probe_col_),
                             batch_keys_.data(), batch_rows_.size(),
                             batch_cursors_.data());
      inner_probe_stats_->batch_windows++;
      inner_probe_stats_->point_probes += batch_rows_.size();
      for (size_t k = 0; k < batch_rows_.size(); ++k) {
        inner_probe_stats_->point_hits += !batch_cursors_[k].empty();
      }
    }
  }

 private:
  const Relation* outer_rel_;
  const AtomSpec* outer_atom_;
  const Relation* inner_rel_;
  std::vector<ColAction> outer_actions_;
  std::vector<ColAction> inner_actions_;
  int32_t outer_probe_col_ = -1;
  Value outer_probe_const_ = 0;
  ColumnProbeStats* outer_probe_stats_ = nullptr;
  ColumnProbeStats* outer_range_stats_ = nullptr;
  std::vector<RowId> outer_range_rows_;
  bool outer_range_active_ = false;
  int32_t inner_probe_col_ = -1;
  ColumnProbeStats* inner_probe_stats_ = nullptr;
  LocalVar inner_probe_var_ = -1;
  size_t window_;
  size_t outer_begin_ = 0;
  size_t outer_end_ = static_cast<size_t>(-1);
  // Iteration state.
  RowCursor outer_bucket_;
  size_t pos_ = 0;
  size_t limit_ = 0;
  std::vector<RowId> batch_rows_;
  std::vector<Value> batch_keys_;
  std::vector<RowCursor> batch_cursors_;
  size_t batch_idx_ = 0;
  RowCursor cursor_;
  size_t cursor_pos_ = 0;
};

/// True when atoms[0] and atoms[1] form the fusable index-join shape:
/// both positive relational, and the access path ScanSource would pick
/// for atom 1 probes on a variable (necessarily bound by atom 0 — the
/// pipeline's first atom binds everything that is bound before the
/// second). Const-key probes are loop-invariant lookups and keep the
/// classic path.
bool CanFuse(ExecContext& ctx, const IROp& op) {
  if (ctx.probe_batch_window() == 0 || op.atoms.size() < 2) return false;
  const AtomSpec& a0 = op.atoms[0];
  const AtomSpec& a1 = op.atoms[1];
  if (a0.is_builtin() || a0.negated) return false;
  if (a1.is_builtin() || a1.negated) return false;
  std::vector<bool> bound(op.num_locals, false);
  for (const LocalTerm& t : a0.terms) {
    if (t.is_var) bound[t.var] = true;
  }
  const Relation& rel1 = ctx.db().Get(a1.predicate, a1.source);
  const int32_t probe_col = PickProbeCol(rel1, a1, bound);
  return probe_col >= 0 && a1.terms[probe_col].is_var;
}

/// Builds the iterator pipeline, tracking static boundness per stage.
/// When the leading two atoms are fusable and batching is enabled, they
/// become one BatchedJoinSource. Probe counters go to `profiler` — the
/// context's own on the single-threaded path, a worker-private one when
/// the pipeline runs inside a shard.
std::vector<std::unique_ptr<RowSource>> BuildPipeline(
    ExecContext& ctx, const IROp& op, AccessProfiler* profiler) {
  std::vector<std::unique_ptr<RowSource>> pipeline;
  pipeline.reserve(op.atoms.size());
  std::vector<bool> bound(op.num_locals, false);
  size_t start = 0;
  if (CanFuse(ctx, op)) {
    const AtomSpec& a0 = op.atoms[0];
    const AtomSpec& a1 = op.atoms[1];
    pipeline.push_back(std::make_unique<BatchedJoinSource>(
        &ctx.db().Get(a0.predicate, a0.source), &a0,
        &ctx.db().Get(a1.predicate, a1.source), &a1, bound,
        ctx.probe_batch_window(), profiler));
    start = 2;
  }
  for (size_t i = start; i < op.atoms.size(); ++i) {
    const AtomSpec& atom = op.atoms[i];
    if (atom.is_builtin()) {
      const LocalTerm& out =
          BuiltinBindsOutput(atom.builtin) ? atom.terms[2] : LocalTerm();
      const bool out_was_bound = out.is_var && bound[out.var];
      pipeline.push_back(
          std::make_unique<BuiltinSource>(&atom, out_was_bound));
      if (BuiltinBindsOutput(atom.builtin) && out.is_var) {
        bound[out.var] = true;
      }
    } else if (atom.negated) {
      pipeline.push_back(std::make_unique<NegationSource>(
          &ctx.db().Get(atom.predicate, atom.source), &atom));
    } else {
      pipeline.push_back(std::make_unique<ScanSource>(
          &ctx.db().Get(atom.predicate, atom.source), &atom, bound,
          profiler));
      for (const LocalTerm& t : atom.terms) {
        if (t.is_var) bound[t.var] = true;
      }
    }
  }
  return pipeline;
}

/// The Volcano get-next loop over the pipeline's cursor stack, calling
/// `emit` for every full match. Requires a non-empty pipeline.
template <typename EmitFn>
void RunVolcano(std::vector<std::unique_ptr<RowSource>>& pipeline,
                std::vector<Value>& binding, EmitFn&& emit) {
  const int n = static_cast<int>(pipeline.size());
  int depth = 0;
  pipeline[0]->Reset(binding);
  while (depth >= 0) {
    if (!pipeline[depth]->Next(binding)) {
      --depth;
      continue;
    }
    if (depth == n - 1) {
      emit();
    } else {
      ++depth;
      pipeline[depth]->Reset(binding);
    }
  }
}

/// The pull engine's parallel path: shards the outer stage's row sequence
/// by contiguous position ranges, each worker running a private pipeline
/// that stages into its own buffer; the in-order merge then replays the
/// single-threaded insertion sequence exactly. Returns false when the
/// subquery must (or should) run single-threaded.
bool TryRunPullSharded(ExecContext& ctx, const IROp& op,
                       const std::vector<std::unique_ptr<RowSource>>&
                           pipeline) {
  if (ctx.worker_pool() == nullptr) return false;
  if (op.atoms.empty()) return false;
  const AtomSpec& outer = op.atoms[0];
  if (outer.is_builtin() || outer.negated) return false;
  // atoms[0] is a positive relational atom, so pipeline[0] is a
  // ScanSource or the fused BatchedJoinSource; either way its own access
  // path (not a re-derivation of it) sizes the shard windows through the
  // RowSource interface. No variable is bound before stage 0, so the
  // all-zero binding below can never be consulted for a probe key.
  const std::vector<Value> binding_zero(op.num_locals, 0);
  const size_t outer_rows = pipeline[0]->SequenceSize(binding_zero);

  const Relation& derived = ctx.db().Get(op.target, storage::DbKind::kDerived);
  const Relation& delta_new =
      ctx.db().Get(op.target, storage::DbKind::kDeltaNew);
  return ShardSubqueryAcrossPool(
      ctx, op.target, outer_rows, op.head_terms.size(),
      [&](int shard, size_t begin, size_t end,
          storage::StagingBuffer* staging, uint64_t* considered) {
        auto pipeline = BuildPipeline(ctx, op, ctx.ShardProfiler(shard));
        pipeline[0]->RestrictOuter(begin, end);
        std::vector<Value> binding(op.num_locals, 0);
        uint64_t emitted = 0;
        Tuple head;
        RunVolcano(pipeline, binding, [&] {
          ++emitted;
          head.clear();
          for (const LocalTerm& t : op.head_terms) {
            head.push_back(t.is_var ? binding[t.var] : t.constant);
          }
          // Derived and DeltaNew are frozen until the merge, so these
          // are safe concurrent reads that keep the staging sets small.
          if (derived.Contains(head) || delta_new.Contains(head)) return;
          staging->Insert(head);
        });
        *considered = emitted;
      });
}

}  // namespace

void RunSubqueryPull(ExecContext& ctx, const IROp& op) {
  CARAC_CHECK(op.kind == OpKind::kSpj);
  ctx.stats().spj_executions++;

  std::vector<std::unique_ptr<RowSource>> pipeline =
      BuildPipeline(ctx, op, &ctx.profiler());
  if (TryRunPullSharded(ctx, op, pipeline)) return;

  storage::DatabaseSet& db = ctx.db();
  Relation& derived = db.Get(op.target, storage::DbKind::kDerived);
  Relation& delta_new = db.Get(op.target, storage::DbKind::kDeltaNew);
  std::vector<Value> binding(op.num_locals, 0);
  Tuple head;

  auto emit = [&] {
    ctx.stats().tuples_considered++;
    head.clear();
    for (const LocalTerm& t : op.head_terms) {
      head.push_back(t.is_var ? binding[t.var] : t.constant);
    }
    if (derived.Contains(head)) return;
    if (delta_new.Insert(head)) ctx.stats().tuples_inserted++;
  };

  if (pipeline.empty()) {
    emit();
    return;
  }
  RunVolcano(pipeline, binding, emit);
}

}  // namespace carac::ir
