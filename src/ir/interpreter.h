#ifndef CARAC_IR_INTERPRETER_H_
#define CARAC_IR_INTERPRETER_H_

#include "ir/exec_context.h"
#include "ir/irop.h"

namespace carac::ir {

class Interpreter;

/// Hook interface implemented by the JIT driver (src/core/jit.h). Every IR
/// node boundary is a safe point: the interpreter offers each node to the
/// controller, which may run compiled code instead, start an asynchronous
/// compilation, or rewrite the node (IRGenerator backend) before letting
/// interpretation proceed.
class JitController {
 public:
  virtual ~JitController() = default;

  /// Called when execution reaches `op`. Return true if the node was fully
  /// executed by compiled code (the interpreter then skips it).
  virtual bool MaybeRunCompiled(IROp& op, ExecContext& ctx,
                                Interpreter& interp) = 0;

  /// Called immediately before an SPJ/Aggregate is interpreted; may
  /// permute `op.atoms` in place (the IRGenerator's lowest-granularity
  /// reordering).
  virtual void BeforeSubquery(IROp& op, ExecContext& ctx) = 0;
};

/// Tree-walking evaluator over the IR — Carac's interpretation mode, and
/// the fallback the JIT returns to at safe points.
class Interpreter {
 public:
  explicit Interpreter(ExecContext* ctx, JitController* jit = nullptr)
      : ctx_(ctx), jit_(jit) {}
  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Executes a subtree, offering each node to the JIT controller first.
  void Execute(IROp& op);

  /// Interprets `op` itself (children still go through Execute, so nested
  /// safe points remain active). Used by snippet-compiled continuations.
  void ExecuteNode(IROp& op);

  ExecContext& ctx() { return *ctx_; }

 private:
  void ExecuteSubquery(IROp& op);

  ExecContext* ctx_;
  JitController* jit_;
};

/// Evaluates one SPJ or Aggregate node against the databases, with the
/// atom order exactly as it appears in `op.atoms`: index nested-loop join,
/// builtin filters/binders, negation membership tests, head projection and
/// insert-if-novel into the target's DeltaNew. Exposed as a free function
/// so compiled backends (lambda) can reuse it on reordered clones.
void RunSubquery(ExecContext& ctx, const IROp& op);

}  // namespace carac::ir

#endif  // CARAC_IR_INTERPRETER_H_
