#include "ir/exec_context.h"

#include <algorithm>

#include "core/worker_pool.h"

namespace carac::ir {

const char* EngineStyleName(EngineStyle style) {
  return style == EngineStyle::kPush ? "push" : "pull";
}

std::vector<storage::StagingBuffer>& ExecContext::StagingFor(int shards,
                                                             size_t arity) {
  if (staging_.size() < static_cast<size_t>(shards)) {
    staging_.resize(static_cast<size_t>(shards));
  }
  if (shard_profilers_.size() < static_cast<size_t>(shards)) {
    shard_profilers_.resize(static_cast<size_t>(shards));
  }
  for (int i = 0; i < shards; ++i) staging_[i].Reset(arity);
  return staging_;
}

void MergeStagedDelta(ExecContext& ctx, storage::RelationId target,
                      std::vector<storage::StagingBuffer>& buffers,
                      int shards, const uint64_t* considered) {
  storage::DatabaseSet& db = ctx.db();
  const storage::Relation& derived =
      db.Get(target, storage::DbKind::kDerived);
  storage::Relation& delta_new = db.Get(target, storage::DbKind::kDeltaNew);
  uint64_t inserted = 0;
  uint64_t emitted = 0;
  for (int shard = 0; shard < shards; ++shard) {
    inserted += delta_new.InsertStaged(buffers[shard], &derived);
    emitted += considered[shard];
    // Fold this worker's probe counters into the context's profiler at
    // the same serial point that merges its staged rows: workers only
    // ever touch their own profiler, so no probe increment needs atomics.
    ir::AccessProfiler* shard_profiler = ctx.ShardProfiler(shard);
    if (!shard_profiler->empty()) {
      ctx.profiler().MergeFrom(*shard_profiler);
      shard_profiler->Clear();
    }
  }
  ctx.stats().tuples_considered += emitted;
  ctx.stats().tuples_inserted += inserted;
}

bool ShardSubqueryAcrossPool(ExecContext& ctx, storage::RelationId target,
                             size_t outer_rows, size_t arity,
                             const SubqueryShardFn& shard_fn) {
  core::WorkerPool* pool = ctx.worker_pool();
  if (pool == nullptr || pool->num_threads() <= 1) return false;
  if (outer_rows < ctx.parallel_min_rows()) return false;
  const int shards = pool->num_threads();
  std::vector<storage::StagingBuffer>& staging = ctx.StagingFor(shards, arity);
  std::vector<uint64_t> considered(static_cast<size_t>(shards), 0);
  const size_t chunk =
      (outer_rows + static_cast<size_t>(shards) - 1) / shards;
  pool->Run(shards, [&](int shard) {
    const size_t begin = chunk * static_cast<size_t>(shard);
    const size_t end = std::min(begin + chunk, outer_rows);
    if (begin >= end) return;
    shard_fn(shard, begin, end, &staging[shard], &considered[shard]);
  });
  MergeStagedDelta(ctx, target, staging, shards, considered.data());
  return true;
}

ExecStats ExecStats::Delta(const ExecStats& after, const ExecStats& before) {
  ExecStats d;
  d.iterations = after.iterations - before.iterations;
  d.spj_executions = after.spj_executions - before.spj_executions;
  d.tuples_inserted = after.tuples_inserted - before.tuples_inserted;
  d.tuples_considered = after.tuples_considered - before.tuples_considered;
  d.reorders = after.reorders - before.reorders;
  d.compilations = after.compilations - before.compilations;
  d.compiled_invocations =
      after.compiled_invocations - before.compiled_invocations;
  d.freshness_skips = after.freshness_skips - before.freshness_skips;
  return d;
}

std::string ExecStats::ToString() const {
  std::string out;
  out += "iterations=" + std::to_string(iterations);
  out += " spj=" + std::to_string(spj_executions);
  out += " inserted=" + std::to_string(tuples_inserted);
  out += " considered=" + std::to_string(tuples_considered);
  out += " reorders=" + std::to_string(reorders);
  out += " compilations=" + std::to_string(compilations);
  out += " compiled_invocations=" + std::to_string(compiled_invocations);
  out += " freshness_skips=" + std::to_string(freshness_skips);
  return out;
}

}  // namespace carac::ir
