#include "ir/exec_context.h"

namespace carac::ir {

const char* EngineStyleName(EngineStyle style) {
  return style == EngineStyle::kPush ? "push" : "pull";
}

std::string ExecStats::ToString() const {
  std::string out;
  out += "iterations=" + std::to_string(iterations);
  out += " spj=" + std::to_string(spj_executions);
  out += " inserted=" + std::to_string(tuples_inserted);
  out += " considered=" + std::to_string(tuples_considered);
  out += " reorders=" + std::to_string(reorders);
  out += " compilations=" + std::to_string(compilations);
  out += " compiled_invocations=" + std::to_string(compiled_invocations);
  out += " freshness_skips=" + std::to_string(freshness_skips);
  return out;
}

}  // namespace carac::ir
