#ifndef CARAC_IR_LOWERING_H_
#define CARAC_IR_LOWERING_H_

#include <vector>

#include "datalog/ast.h"
#include "datalog/stratify.h"
#include "ir/irop.h"
#include "util/status.h"

namespace carac::ir {

/// Lowers a Datalog program to the IR via the Semi-Naive transform (the
/// Futamura-projection step of §V-B1): per stratum, a naive initial pass
/// seeding the deltas, then a DoWhile loop of delta-split SPJ subqueries.
/// Alongside it, emits the incremental twin (IRProgram::update_root +
/// per-stratum StratumPlan metadata) that update epochs execute — see
/// irop.h and core/fixpoint_driver.h.
///
/// When `declare_indexes` is true, a hash index is declared on every
/// relation column that carries a constant or a shared (join) variable in
/// any rule body — the paper's one-index-per-predicate policy (§IV). Index
/// declarations still respect DatabaseSet::SetIndexingEnabled.
///
/// When `range_pushdown` is true (the default, EngineConfig::range_pushdown)
/// every SPJ/Aggregate subquery is annotated via AnnotateRangeBounds so the
/// evaluators can serve comparison-constrained scans through
/// Relation::ProbeRange instead of a filtered full scan.
util::Status Lower(datalog::Program* program,
                   const datalog::Stratification& strata, bool declare_indexes,
                   IRProgram* out, bool range_pushdown = true);

/// Convenience: stratify + Lower.
util::Status LowerProgram(datalog::Program* program, bool declare_indexes,
                          IRProgram* out, bool range_pushdown = true);

/// Interleaves non-join atoms ("floaters": builtins and negations) into a
/// given order of join atoms, placing each floater at the earliest point
/// where its inputs are bound. Exposed for the join orderer, which permutes
/// join atoms and must then re-place the floaters.
std::vector<AtomSpec> ScheduleAtoms(const std::vector<AtomSpec>& join_atoms,
                                    const std::vector<AtomSpec>& floaters);

/// Range-pushdown annotation pass over one SPJ/Aggregate node: clears and
/// recomputes every atom's (range_col, lower, upper) from the comparison
/// builtins in the CURRENT atom order. A positive relational atom whose
/// column binds a fresh variable constrained by kLt/kLe/kGt/kGe/kEq
/// builtins — against constants or variables bound before the atom
/// executes — gains per-side bounds (first eligible builtin per side
/// wins; at most one range column per atom). The builtins stay in place
/// as residual filters, so the annotation never changes results — it only
/// licenses Relation::ProbeRange as the access path. Reorderers that
/// permute `op->atoms` must call this again (bounds depend on what is
/// bound before each atom); see optimizer::ReorderSubquery.
void AnnotateRangeBounds(IROp* op);

}  // namespace carac::ir

#endif  // CARAC_IR_LOWERING_H_
