#ifndef CARAC_IR_LOWERING_H_
#define CARAC_IR_LOWERING_H_

#include <vector>

#include "datalog/ast.h"
#include "datalog/stratify.h"
#include "ir/irop.h"
#include "util/status.h"

namespace carac::ir {

/// Lowers a Datalog program to the IR via the Semi-Naive transform (the
/// Futamura-projection step of §V-B1): per stratum, a naive initial pass
/// seeding the deltas, then a DoWhile loop of delta-split SPJ subqueries.
/// Alongside it, emits the incremental twin (IRProgram::update_root +
/// per-stratum StratumPlan metadata) that update epochs execute — see
/// irop.h and core/fixpoint_driver.h.
///
/// When `declare_indexes` is true, a hash index is declared on every
/// relation column that carries a constant or a shared (join) variable in
/// any rule body — the paper's one-index-per-predicate policy (§IV). Index
/// declarations still respect DatabaseSet::SetIndexingEnabled.
util::Status Lower(datalog::Program* program,
                   const datalog::Stratification& strata, bool declare_indexes,
                   IRProgram* out);

/// Convenience: stratify + Lower.
util::Status LowerProgram(datalog::Program* program, bool declare_indexes,
                          IRProgram* out);

/// Interleaves non-join atoms ("floaters": builtins and negations) into a
/// given order of join atoms, placing each floater at the earliest point
/// where its inputs are bound. Exposed for the join orderer, which permutes
/// join atoms and must then re-place the floaters.
std::vector<AtomSpec> ScheduleAtoms(const std::vector<AtomSpec>& join_atoms,
                                    const std::vector<AtomSpec>& floaters);

}  // namespace carac::ir

#endif  // CARAC_IR_LOWERING_H_
