#ifndef CARAC_IR_RANGE_ACCESS_H_
#define CARAC_IR_RANGE_ACCESS_H_

#include <vector>

#include "ir/exec_context.h"
#include "ir/irop.h"
#include "storage/relation.h"

namespace carac::ir {

/// A fully resolved, closed range [lo, hi] for one annotated atom (see
/// AtomSpec::range_col). `empty` marks a contradiction (e.g. x > 5,
/// x < 3): the atom can match nothing, whatever the index holds.
struct ResolvedRange {
  storage::Value lo = 0;
  storage::Value hi = 0;
  bool empty = false;
};

/// Turns a half-open/strict interval into the closed [lo, hi] form the
/// indexes probe, saturating at the Value domain edges (a strict lower
/// bound at INT64_MAX, or a strict upper bound at INT64_MIN, admits
/// nothing). Returns false when the closed interval is empty.
bool CloseInterval(storage::Value lo, bool lo_strict, storage::Value hi,
                   bool hi_strict, storage::Value* out_lo,
                   storage::Value* out_hi);

/// Materializes `atom`'s annotated bounds against the current binding
/// array (bound-variable bounds read `binding[var]`; the annotation pass
/// guarantees those variables are bound before the atom executes).
/// Missing sides widen to the Value domain edge.
ResolvedRange ResolveRange(const AtomSpec& atom,
                           const storage::Value* binding);

/// Attempts to serve an annotated range through the index on `col`.
/// Returns true with *rows holding the matching RowIds in ASCENDING
/// RowId order — the same emission order a filtered full scan would
/// produce, which is what keeps results byte-identical with pushdown on
/// or off. Returns false when the caller should fall back to scan +
/// residual filters: no index on the column, an unordered index kind,
/// or a range too wide to beat the scan (optimizer::RangeProbeProfitable
/// against the index's key extremes).
///
/// Demand recording: whenever an index exists, `stats->range_probes` is
/// incremented even when the probe is declined — a hash-kind column that
/// keeps attracting range demand is exactly what AdaptiveIndexPolicy
/// re-kinds to an ordered organization. `stats` may be null (sizing
/// passes that must not double-count).
bool TryRangeProbe(const storage::Relation& rel, size_t col,
                   const ResolvedRange& range, ColumnProbeStats* stats,
                   std::vector<storage::RowId>* rows);

}  // namespace carac::ir

#endif  // CARAC_IR_RANGE_ACCESS_H_
