#include "ir/lowering.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

namespace carac::ir {

namespace {

/// Tracks node-id assignment during one lowering.
struct LoweringState {
  const datalog::Program* program;
  uint32_t next_id = 0;

  std::unique_ptr<IROp> NewOp(OpKind kind) {
    auto op = std::make_unique<IROp>(kind);
    op->node_id = next_id++;
    return op;
  }
};

/// Remaps one rule's program variables to dense locals.
class LocalMapper {
 public:
  LocalTerm Map(const datalog::Term& term) {
    if (term.is_const()) return LocalTerm::Const(term.constant);
    auto [it, inserted] = map_.emplace(term.var, next_);
    if (inserted) ++next_;
    return LocalTerm::Var(it->second);
  }

  LocalVar MapVar(datalog::VarId var) {
    auto [it, inserted] = map_.emplace(var, next_);
    if (inserted) ++next_;
    return it->second;
  }

  int32_t num_locals() const { return next_; }

 private:
  std::map<datalog::VarId, LocalVar> map_;
  LocalVar next_ = 0;
};

/// Variables an atom requires bound before it can execute.
void FloaterInputs(const AtomSpec& atom, std::set<LocalVar>* inputs) {
  if (atom.is_builtin()) {
    const size_t n_inputs = datalog::BuiltinBindsOutput(atom.builtin) ? 2 : 2;
    for (size_t i = 0; i < n_inputs && i < atom.terms.size(); ++i) {
      if (atom.terms[i].is_var) inputs->insert(atom.terms[i].var);
    }
    // A constant or pre-bound output term is a check, not a binder; a
    // variable output binds, so it is not an input.
  } else {
    // Negated atom: every variable must be bound.
    for (const LocalTerm& t : atom.terms) {
      if (t.is_var) inputs->insert(t.var);
    }
  }
}

void AtomBinds(const AtomSpec& atom, std::set<LocalVar>* bound) {
  if (atom.is_join_atom()) {
    for (const LocalTerm& t : atom.terms) {
      if (t.is_var) bound->insert(t.var);
    }
  } else if (atom.is_builtin() && datalog::BuiltinBindsOutput(atom.builtin) &&
             atom.terms[2].is_var) {
    bound->insert(atom.terms[2].var);
  }
}

}  // namespace

std::vector<AtomSpec> ScheduleAtoms(const std::vector<AtomSpec>& join_atoms,
                                    const std::vector<AtomSpec>& floaters) {
  std::vector<AtomSpec> out;
  out.reserve(join_atoms.size() + floaters.size());
  std::set<LocalVar> bound;
  std::vector<bool> placed(floaters.size(), false);

  auto try_place_floaters = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t f = 0; f < floaters.size(); ++f) {
        if (placed[f]) continue;
        std::set<LocalVar> inputs;
        FloaterInputs(floaters[f], &inputs);
        bool ready = true;
        for (LocalVar v : inputs) {
          if (bound.count(v) == 0) {
            ready = false;
            break;
          }
        }
        if (ready) {
          placed[f] = true;
          out.push_back(floaters[f]);
          AtomBinds(floaters[f], &bound);  // Arithmetic may bind outputs.
          progress = true;
        }
      }
    }
  };

  for (const AtomSpec& join : join_atoms) {
    try_place_floaters();
    out.push_back(join);
    AtomBinds(join, &bound);
  }
  try_place_floaters();

  // Rule validation guarantees a valid schedule exists.
  for (bool p : placed) CARAC_CHECK(p);
  return out;
}

namespace {

BoundSpec MakeBound(const LocalTerm& t, bool strict) {
  BoundSpec b;
  b.strict = strict;
  if (t.is_var) {
    b.kind = BoundSpec::Kind::kVar;
    b.var = t.var;
  } else {
    b.kind = BoundSpec::Kind::kConst;
    b.constant = t.constant;
  }
  return b;
}

/// True when `t` can serve as a range bound for an atom executed with
/// `bound_before` already bound: constants always, variables only when
/// their value exists before the probed atom runs.
bool BoundEligible(const LocalTerm& t, const std::set<LocalVar>& bound_before) {
  return !t.is_var || bound_before.count(t.var) > 0;
}

}  // namespace

void AnnotateRangeBounds(IROp* op) {
  if (op->kind != OpKind::kSpj && op->kind != OpKind::kAggregate) return;
  for (AtomSpec& atom : op->atoms) {
    atom.range_col = -1;
    atom.lower = BoundSpec{};
    atom.upper = BoundSpec{};
  }
  std::set<LocalVar> bound;
  for (AtomSpec& atom : op->atoms) {
    if (atom.is_join_atom()) {
      for (size_t col = 0; col < atom.terms.size() && !atom.has_range();
           ++col) {
        const LocalTerm& t = atom.terms[col];
        // Only a FRESH variable's binder column can become the range: a
        // pre-bound column is a check (and a point-probe candidate), and
        // a repeated in-atom variable's later column is a self-join check.
        if (!t.is_var || bound.count(t.var) > 0) continue;
        bool first_in_atom = true;
        for (size_t prev = 0; prev < col; ++prev) {
          if (atom.terms[prev].is_var && atom.terms[prev].var == t.var) {
            first_in_atom = false;
            break;
          }
        }
        if (!first_in_atom) continue;

        BoundSpec lower, upper;
        for (const AtomSpec& b : op->atoms) {
          if (!b.is_builtin() || b.terms.size() != 2) continue;
          const datalog::BuiltinOp bop = b.builtin;
          if (bop != datalog::BuiltinOp::kLt &&
              bop != datalog::BuiltinOp::kLe &&
              bop != datalog::BuiltinOp::kGt &&
              bop != datalog::BuiltinOp::kGe &&
              bop != datalog::BuiltinOp::kEq) {
            continue;
          }
          for (int side = 0; side < 2; ++side) {
            const LocalTerm& mine = b.terms[side];
            const LocalTerm& other = b.terms[1 - side];
            if (!mine.is_var || mine.var != t.var) continue;
            if (!BoundEligible(other, bound)) continue;
            const bool strict = bop == datalog::BuiltinOp::kLt ||
                                bop == datalog::BuiltinOp::kGt;
            // v OP other, with OP as written on `side` of the builtin:
            // side 0 keeps the operator's direction, side 1 mirrors it.
            const bool upper_bound =
                bop == datalog::BuiltinOp::kEq ||
                ((bop == datalog::BuiltinOp::kLt ||
                  bop == datalog::BuiltinOp::kLe) == (side == 0));
            const bool lower_bound =
                bop == datalog::BuiltinOp::kEq || !upper_bound;
            if (upper_bound && !upper.present()) {
              upper = MakeBound(other, strict);
            }
            if (lower_bound && !lower.present()) {
              lower = MakeBound(other, strict);
            }
          }
        }
        if (lower.present() || upper.present()) {
          atom.range_col = static_cast<int32_t>(col);
          atom.lower = lower;
          atom.upper = upper;
        }
      }
    }
    AtomBinds(atom, &bound);
  }
}

namespace {

/// Builds the SPJ/Aggregate node for `rule`. `delta_pos` selects which
/// join atom (index among the positive relational atoms) reads DeltaKnown;
/// -1 produces the naive variant reading Derived everywhere. Outside
/// `update_mode` only same-stratum atoms qualify (the in-loop semi-naive
/// split) and lowering order is preserved. In `update_mode` — the
/// update-epoch tree — ANY positive atom qualifies, EDB and lower-stratum
/// predicates included (an epoch may grow any of them), and the delta
/// atom is rotated to the front so the delta drives the join: a variant
/// whose delta store is empty then costs O(1), which is what keeps an
/// update epoch proportional to the delta rather than to the database.
std::unique_ptr<IROp> BuildSubquery(LoweringState* state,
                                    const datalog::Rule& rule,
                                    uint32_t rule_index, int32_t delta_pos,
                                    const std::vector<int32_t>& stratum_of,
                                    int32_t stratum,
                                    bool update_mode = false) {
  LocalMapper mapper;
  std::vector<AtomSpec> joins;
  std::vector<AtomSpec> floaters;

  int32_t join_idx = 0;
  for (const datalog::Atom& atom : rule.body) {
    AtomSpec spec;
    spec.builtin = atom.builtin;
    spec.predicate = atom.predicate;
    spec.negated = atom.negated;
    spec.terms.reserve(atom.terms.size());
    for (const datalog::Term& t : atom.terms) spec.terms.push_back(mapper.Map(t));
    if (spec.is_join_atom()) {
      const bool same_stratum =
          stratum_of[atom.predicate] == stratum && stratum >= 0;
      const bool is_delta = join_idx == delta_pos &&
                            (update_mode || same_stratum);
      spec.source = is_delta ? storage::DbKind::kDeltaKnown
                             : storage::DbKind::kDerived;
      joins.push_back(std::move(spec));
      ++join_idx;
    } else {
      spec.source = storage::DbKind::kDerived;  // Negations read Derived.
      floaters.push_back(std::move(spec));
    }
  }
  if (update_mode && delta_pos >= 0) {
    // Local variable ids are positional in the binding array, so rotating
    // the join order after mapping is sound.
    std::rotate(joins.begin(), joins.begin() + delta_pos,
                joins.begin() + delta_pos + 1);
  }

  const bool is_agg = rule.agg != datalog::AggFunc::kNone;
  auto op = state->NewOp(is_agg ? OpKind::kAggregate : OpKind::kSpj);
  op->target = rule.head.predicate;
  op->rule_index = rule_index;
  op->delta_pos = delta_pos;
  op->delta_pinned = update_mode && delta_pos >= 0;
  op->atoms = ScheduleAtoms(joins, floaters);
  op->head_terms.reserve(rule.head.terms.size());
  for (const datalog::Term& t : rule.head.terms) {
    op->head_terms.push_back(mapper.Map(t));
  }
  if (is_agg) {
    op->agg = rule.agg;
    op->agg_operand =
        rule.agg == datalog::AggFunc::kCount ? -1 : mapper.MapVar(rule.agg_operand);
  }
  op->num_locals = mapper.num_locals();
  return op;
}

/// Number of positive relational atoms in `rule`'s body.
int32_t PositiveJoinCount(const datalog::Rule& rule) {
  int32_t count = 0;
  for (const datalog::Atom& atom : rule.body) {
    if (atom.is_relational() && !atom.negated) ++count;
  }
  return count;
}

/// Indices (among the positive relational body atoms) whose predicates
/// belong to `stratum` — the candidate delta positions.
std::vector<int32_t> DeltaPositions(const datalog::Rule& rule,
                                    const std::vector<int32_t>& stratum_of,
                                    int32_t stratum) {
  std::vector<int32_t> positions;
  int32_t join_idx = 0;
  for (const datalog::Atom& atom : rule.body) {
    if (atom.is_relational() && !atom.negated) {
      if (stratum_of[atom.predicate] == stratum) positions.push_back(join_idx);
      ++join_idx;
    }
  }
  return positions;
}

/// Builds one stratum's update-epoch subtree:
///
///   SequenceOp
///     DoWhileOp [recursive predicates]
///       SequenceOp
///         per defined relation: UnionOp* of UnionOps holding one
///           BuildUpdateSubquery variant per positive body atom
///         SwapClearOp [stratum predicates + body inputs]
///
/// The caller seeds DeltaKnown (from the Derived rows past each
/// watermark) before executing this; iteration 1 consumes the seeds and
/// the SwapClear — which covers the seeded input relations too — retires
/// them, leaving the loop a plain semi-naive fixpoint over the stratum's
/// own deltas. Aggregate rules are omitted: their delta variants would be
/// unsound (a new witness changes the group's value), so any epoch that
/// touches an aggregate input recomputes the stratum via the full tree
/// instead.
std::unique_ptr<IROp> BuildUpdateStratum(LoweringState* state,
                                         const std::vector<datalog::Rule>& rules,
                                         const datalog::Stratum& stratum,
                                         const std::vector<int32_t>& stratum_of,
                                         int32_t stratum_index,
                                         std::vector<datalog::PredicateId>
                                             recursive_predicates) {
  auto seq = state->NewOp(OpKind::kSequence);
  auto loop = state->NewOp(OpKind::kDoWhile);
  loop->relations = std::move(recursive_predicates);
  auto body = state->NewOp(OpKind::kSequence);

  for (datalog::PredicateId rel : stratum.predicates) {
    auto union_all = state->NewOp(OpKind::kUnionAll);
    union_all->relations = {rel};
    for (uint32_t r : stratum.rule_indices) {
      if (rules[r].head.predicate != rel) continue;
      if (rules[r].agg != datalog::AggFunc::kNone) continue;
      auto union_op = state->NewOp(OpKind::kUnion);
      union_op->target = rel;
      for (int32_t pos = 0; pos < PositiveJoinCount(rules[r]); ++pos) {
        union_op->children.push_back(
            BuildSubquery(state, rules[r], r, pos, stratum_of,
                          stratum_index, /*update_mode=*/true));
      }
      if (!union_op->children.empty()) {
        union_all->children.push_back(std::move(union_op));
      }
    }
    if (!union_all->children.empty()) {
      body->children.push_back(std::move(union_all));
    }
  }

  auto swap = state->NewOp(OpKind::kSwapClear);
  swap->relations = stratum.predicates;
  swap->relations.insert(swap->relations.end(), stratum.body_inputs.begin(),
                         stratum.body_inputs.end());
  std::sort(swap->relations.begin(), swap->relations.end());
  swap->relations.erase(
      std::unique(swap->relations.begin(), swap->relations.end()),
      swap->relations.end());
  body->children.push_back(std::move(swap));

  loop->children.push_back(std::move(body));
  seq->children.push_back(std::move(loop));
  return seq;
}

void DeclareRuleIndexes(const datalog::Program& program,
                        storage::DatabaseSet* db) {
  for (const datalog::Rule& rule : program.rules()) {
    // Count variable occurrences across the body's relational atoms (plus
    // builtin inputs, which also benefit from index probes on their
    // binder); shared variables are join keys.
    std::map<datalog::VarId, int> occurrences;
    for (const datalog::Atom& atom : rule.body) {
      for (const datalog::Term& t : atom.terms) {
        if (t.is_var()) ++occurrences[t.var];
      }
    }
    for (const datalog::Atom& atom : rule.body) {
      if (!atom.is_relational()) continue;
      for (size_t col = 0; col < atom.terms.size(); ++col) {
        const datalog::Term& t = atom.terms[col];
        if (t.is_const() || occurrences[t.var] > 1) {
          db->DeclareIndex(atom.predicate, col);
        }
      }
    }
  }
}

}  // namespace

util::Status Lower(datalog::Program* program,
                   const datalog::Stratification& strata, bool declare_indexes,
                   IRProgram* out, bool range_pushdown) {
  LoweringState state;
  state.program = program;

  if (declare_indexes) {
    DeclareRuleIndexes(*program, &program->db());
  }

  auto root = state.NewOp(OpKind::kProgram);
  auto update_root = state.NewOp(OpKind::kProgram);
  const std::vector<datalog::Rule>& rules = program->rules();
  out->strata.clear();

  for (size_t s = 0; s < strata.strata.size(); ++s) {
    const datalog::Stratum& stratum = strata.strata[s];
    auto seq = state.NewOp(OpKind::kSequence);

    // ---- Naive initial pass: every rule, all atoms read Derived. ----
    for (datalog::PredicateId rel : stratum.predicates) {
      auto union_all = state.NewOp(OpKind::kUnionAll);
      union_all->relations = {rel};
      for (size_t i = 0; i < stratum.rule_indices.size(); ++i) {
        const uint32_t r = stratum.rule_indices[i];
        if (rules[r].head.predicate != rel) continue;
        auto union_op = state.NewOp(OpKind::kUnion);
        union_op->target = rel;
        union_op->children.push_back(BuildSubquery(
            &state, rules[r], r, /*delta_pos=*/-1, strata.stratum_of,
            static_cast<int32_t>(s)));
        union_all->children.push_back(std::move(union_op));
      }
      if (!union_all->children.empty()) {
        seq->children.push_back(std::move(union_all));
      }
    }
    auto init_swap = state.NewOp(OpKind::kSwapClear);
    init_swap->relations = stratum.predicates;
    seq->children.push_back(std::move(init_swap));

    // ---- Semi-naive fixpoint loop over the recursive rules. ----
    bool any_recursive = false;
    for (bool rec : stratum.rule_is_recursive) any_recursive |= rec;
    if (any_recursive) {
      auto loop = state.NewOp(OpKind::kDoWhile);
      loop->relations = stratum.predicates;
      auto body = state.NewOp(OpKind::kSequence);

      for (datalog::PredicateId rel : stratum.predicates) {
        auto union_all = state.NewOp(OpKind::kUnionAll);
        union_all->relations = {rel};
        for (size_t i = 0; i < stratum.rule_indices.size(); ++i) {
          if (!stratum.rule_is_recursive[i]) continue;
          const uint32_t r = stratum.rule_indices[i];
          if (rules[r].head.predicate != rel) continue;
          auto union_op = state.NewOp(OpKind::kUnion);
          union_op->target = rel;
          for (int32_t pos : DeltaPositions(rules[r], strata.stratum_of,
                                            static_cast<int32_t>(s))) {
            union_op->children.push_back(
                BuildSubquery(&state, rules[r], r, pos, strata.stratum_of,
                              static_cast<int32_t>(s)));
          }
          union_all->children.push_back(std::move(union_op));
        }
        if (!union_all->children.empty()) {
          body->children.push_back(std::move(union_all));
        }
      }
      auto loop_swap = state.NewOp(OpKind::kSwapClear);
      loop_swap->relations = stratum.predicates;
      body->children.push_back(std::move(loop_swap));
      loop->children.push_back(std::move(body));
      seq->children.push_back(std::move(loop));
    }

    root->children.push_back(std::move(seq));

    // ---- The stratum's incremental twin + evaluation plan. ----
    StratumPlan plan;
    plan.predicates = stratum.predicates;
    plan.body_inputs = stratum.body_inputs;
    plan.recompute_triggers = stratum.recompute_triggers;
    for (datalog::PredicateId input : stratum.body_inputs) {
      if (strata.stratum_of[input] == static_cast<int32_t>(s)) {
        plan.recursive_predicates.push_back(input);
      }
    }
    update_root->children.push_back(BuildUpdateStratum(
        &state, rules, stratum, strata.stratum_of, static_cast<int32_t>(s),
        plan.recursive_predicates));
    out->strata.push_back(std::move(plan));
  }

  out->root = std::move(root);
  out->update_root = std::move(update_root);
  for (size_t s = 0; s < out->strata.size(); ++s) {
    out->strata[s].full = out->root->children[s].get();
    out->strata[s].update = out->update_root->children[s].get();
  }
  out->num_nodes = state.next_id;
  out->RebuildIndex();

  if (range_pushdown) {
    std::function<void(IROp*)> annotate = [&](IROp* op) {
      if (op->kind == OpKind::kSpj || op->kind == OpKind::kAggregate) {
        op->range_pushdown = true;
        AnnotateRangeBounds(op);
      }
      for (auto& child : op->children) annotate(child.get());
    };
    annotate(out->root.get());
    annotate(out->update_root.get());
  }
  return util::Status::Ok();
}

util::Status LowerProgram(datalog::Program* program, bool declare_indexes,
                          IRProgram* out, bool range_pushdown) {
  datalog::Stratification strata;
  CARAC_RETURN_IF_ERROR(datalog::Stratify(*program, &strata));
  return Lower(program, strata, declare_indexes, out, range_pushdown);
}

}  // namespace carac::ir
