#include "ir/irop.h"

#include <functional>

namespace carac::ir {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kProgram:
      return "ProgramOp";
    case OpKind::kSequence:
      return "SequenceOp";
    case OpKind::kDoWhile:
      return "DoWhileOp";
    case OpKind::kSwapClear:
      return "SwapClearOp";
    case OpKind::kUnionAll:
      return "UnionOp*";
    case OpKind::kUnion:
      return "UnionOp";
    case OpKind::kSpj:
      return "SPJOp";
    case OpKind::kAggregate:
      return "AggregateOp";
  }
  return "?";
}

std::unique_ptr<IROp> IROp::Clone() const {
  auto copy = std::make_unique<IROp>(kind);
  copy->node_id = node_id;
  copy->relations = relations;
  copy->target = target;
  copy->head_terms = head_terms;
  copy->atoms = atoms;
  copy->num_locals = num_locals;
  copy->rule_index = rule_index;
  copy->delta_pos = delta_pos;
  copy->delta_pinned = delta_pinned;
  copy->range_pushdown = range_pushdown;
  copy->agg = agg;
  copy->agg_operand = agg_operand;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

void IRProgram::RebuildIndex() {
  by_id.assign(num_nodes, nullptr);
  std::function<void(IROp*)> visit = [&](IROp* op) {
    if (op->node_id >= by_id.size()) by_id.resize(op->node_id + 1, nullptr);
    by_id[op->node_id] = op;
    for (auto& child : op->children) visit(child.get());
  };
  if (root) visit(root.get());
  if (update_root) visit(update_root.get());
}

namespace {

std::string TermStr(const LocalTerm& t) {
  return t.is_var ? "l" + std::to_string(t.var) : std::to_string(t.constant);
}

std::string BoundStr(const BoundSpec& b) {
  return b.kind == BoundSpec::Kind::kVar ? "l" + std::to_string(b.var)
                                         : std::to_string(b.constant);
}

void Render(const IROp& op, const datalog::Program& program, int indent,
            std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(OpKindName(op.kind));
  out->append("#" + std::to_string(op.node_id));
  if (!op.relations.empty()) {
    out->append(" [");
    for (size_t i = 0; i < op.relations.size(); ++i) {
      if (i > 0) out->append(", ");
      out->append(program.PredicateName(op.relations[i]));
    }
    out->append("]");
  }
  if (op.kind == OpKind::kSpj || op.kind == OpKind::kAggregate) {
    out->append(" -> " + program.PredicateName(op.target) + "(");
    for (size_t i = 0; i < op.head_terms.size(); ++i) {
      if (i > 0) out->append(", ");
      out->append(TermStr(op.head_terms[i]));
    }
    out->append(") :- ");
    for (size_t i = 0; i < op.atoms.size(); ++i) {
      if (i > 0) out->append(", ");
      const AtomSpec& atom = op.atoms[i];
      if (atom.negated) out->append("!");
      if (atom.is_builtin()) {
        out->append(datalog::BuiltinName(atom.builtin));
      } else {
        out->append(program.PredicateName(atom.predicate));
        out->append(atom.source == storage::DbKind::kDeltaKnown ? "@d" : "@*");
      }
      out->append("(");
      for (size_t j = 0; j < atom.terms.size(); ++j) {
        if (j > 0) out->append(",");
        out->append(TermStr(atom.terms[j]));
      }
      out->append(")");
      if (atom.has_range()) {
        // Only annotated atoms render bounds, so programs without
        // pushdown print exactly as before.
        out->append("{col" + std::to_string(atom.range_col));
        out->append(atom.lower.present()
                        ? (atom.lower.strict ? ">" : ">=") +
                              BoundStr(atom.lower)
                        : std::string());
        out->append(atom.upper.present()
                        ? (atom.upper.strict ? "<" : "<=") +
                              BoundStr(atom.upper)
                        : std::string());
        out->append("}");
      }
    }
  }
  out->append("\n");
  for (const auto& child : op.children) {
    Render(*child, program, indent + 1, out);
  }
}

}  // namespace

std::string OpToString(const IROp& op, const datalog::Program& program,
                       int indent) {
  std::string out;
  Render(op, program, indent, &out);
  return out;
}

std::string IRProgram::ToString(const datalog::Program& program) const {
  return root ? OpToString(*root, program) : "<empty>";
}

}  // namespace carac::ir
