#include "ir/interpreter.h"

#include "ir/pull_evaluator.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/worker_pool.h"
#include "datalog/builtins.h"
#include "ir/range_access.h"
#include "util/status.h"

namespace carac::ir {

namespace {

using datalog::BuiltinBindsOutput;
using datalog::BuiltinOp;
using storage::Relation;
using storage::RowId;
using storage::Tuple;
using storage::TupleView;
using storage::Value;

/// Per-column behaviour of one relational atom, precomputed per execution
/// (atom order can change between executions, so boundness is dynamic).
struct TermAction {
  enum class Kind : uint8_t { kCheckConst, kCheckVar, kBind };
  Kind kind;
  uint32_t col;
  Value constant = 0;
  LocalVar var = -1;
};

/// For arithmetic builtins: what to do with the output term.
enum class OutMode : uint8_t { kBind, kCheckVar, kCheckConst };

struct AtomPlan {
  const AtomSpec* atom = nullptr;
  const Relation* rel = nullptr;  // Relational atoms only.
  std::vector<TermAction> actions;
  // Access path: probe an index on probe_col (value from a constant or an
  // already-bound variable), or scan when probe_col < 0.
  int32_t probe_col = -1;
  bool probe_is_const = false;
  Value probe_const = 0;
  LocalVar probe_var = -1;
  OutMode out_mode = OutMode::kBind;  // Arithmetic builtins only.
  // Runtime access counters for (predicate, probe_col), resolved at
  // plan-build time so the join loops pay plain increments. Non-null iff
  // probe_col >= 0.
  ColumnProbeStats* probe_stats = nullptr;
  // Range pushdown: non-null iff the atom carries annotated bounds on an
  // indexed column AND no point probe applies (a point probe always
  // wins). Counters for (predicate, range_col); the join resolves the
  // bounds per outer binding and may serve the atom via TryRangeProbe.
  ColumnProbeStats* range_stats = nullptr;
};

/// The join executor. Stack-allocated per subquery evaluation.
class SubqueryRun {
 public:
  SubqueryRun(ExecContext& ctx, const IROp& op)
      : ctx_(ctx), op_(op), profiler_(&ctx.profiler()) {}

  void Run() {
    ctx_.stats().spj_executions++;
    binding_.assign(op_.num_locals, 0);
    BuildPlan();
    if (op_.kind == OpKind::kAggregate) {
      Join<false>(0);
      FlushAggregates();
      return;
    }
    if (RunSharded()) return;
    if (ctx_.probe_batch_window() > 0 && BatchEligible()) {
      JoinBatchedWindow<false>(0, static_cast<size_t>(-1));
      return;
    }
    Join<false>(0);
  }

  /// Pool-worker entry: evaluates outer positions [begin, end), staging
  /// emissions into `out` (behind a read-only Derived/DeltaNew
  /// pre-filter) instead of inserting. Safe to run concurrently with the
  /// other shards — everything shared is read-only until the main thread
  /// merges the buffers.
  void RunShard(size_t begin, size_t end, storage::StagingBuffer* out,
                uint64_t* considered) {
    binding_.assign(op_.num_locals, 0);
    BuildPlan();
    staging_ = out;
    if (ctx_.probe_batch_window() > 0 && BatchEligible()) {
      JoinBatchedWindow<true>(begin, end);
    } else {
      JoinOuterWindow(begin, end);
    }
    *considered = staged_considered_;
  }

 private:
  /// Shards the outer atom's row sequence by contiguous position ranges
  /// across the worker pool, then merges the staged results in shard
  /// order — which replays exactly the single-threaded emission sequence,
  /// so DeltaNew ends up byte-identical (contents, insertion order and
  /// RowIds) for every thread count. Returns false when the subquery
  /// must (or should) run single-threaded: no pool, a leading builtin or
  /// negation, or an outer scan too small to amortize dispatch.
  ///
  /// The dispatch math here deliberately DUPLICATES ShardSubqueryAcrossPool
  /// (exec_context.cc, used by the pull engine) instead of calling it:
  /// routing this body through the std::function-taking helper perturbed
  /// GCC 12's inlining of the recursive Join<> enough to cost ~15% on the
  /// single-threaded interpreted macrobenchmarks (measured by interleaved
  /// A/B on CSPA-unoptimized). Any change to the chunking below must be
  /// mirrored there — the fuzz matrix (push == pull at every thread
  /// count) is the net that catches a divergence.
  bool RunSharded() {
    core::WorkerPool* pool = ctx_.worker_pool();
    if (pool == nullptr || pool->num_threads() <= 1) return false;
    if (plan_.empty()) return false;
    const AtomPlan& outer = plan_[0];
    if (outer.rel == nullptr || outer.atom->negated) return false;
    // The outer sequence: an index bucket when the first atom probes (no
    // variable is bound before atom 0, so the key is always a constant),
    // the range-probe row list when atom 0 carries const bounds the
    // index will serve, the full RowId range otherwise. This sizing pass
    // must resolve the range exactly as the workers will (deterministic:
    // same bounds, same index state) but records no stats — the workers
    // do, into their shard profilers.
    size_t outer_rows;
    if (outer.probe_col >= 0) {
      outer_rows = outer.rel
                       ->Probe(static_cast<size_t>(outer.probe_col),
                               outer.probe_const)
                       .size();
    } else if (outer.range_stats != nullptr &&
               TryRangeProbe(*outer.rel,
                             static_cast<size_t>(outer.atom->range_col),
                             ResolveRange(*outer.atom, binding_.data()),
                             nullptr, &range_scratch_[0])) {
      outer_rows = range_scratch_[0].size();
    } else {
      outer_rows = outer.rel->NumRows();
    }
    if (outer_rows < ctx_.parallel_min_rows()) return false;
    const int shards = pool->num_threads();
    std::vector<storage::StagingBuffer>& staging =
        ctx_.StagingFor(shards, op_.head_terms.size());
    std::vector<uint64_t> considered(static_cast<size_t>(shards), 0);
    const size_t chunk =
        (outer_rows + static_cast<size_t>(shards) - 1) / shards;
    pool->Run(shards, [&](int shard) {
      const size_t begin = chunk * static_cast<size_t>(shard);
      const size_t end = std::min(begin + chunk, outer_rows);
      if (begin >= end) return;
      SubqueryRun worker(ctx_, op_);
      // Worker-private counters, merged by MergeStagedDelta below.
      worker.profiler_ = ctx_.ShardProfiler(shard);
      worker.RunShard(begin, end, &staging[shard], &considered[shard]);
    });
    MergeStagedDelta(ctx_, op_.target, staging, shards, considered.data());
    return true;
  }

  void BuildPlan() {
    std::vector<bool> bound(op_.num_locals, false);
    plan_.clear();
    plan_.reserve(op_.atoms.size());
    for (const AtomSpec& atom : op_.atoms) {
      AtomPlan p;
      p.atom = &atom;
      if (atom.is_builtin()) {
        if (BuiltinBindsOutput(atom.builtin)) {
          const LocalTerm& out = atom.terms[2];
          if (!out.is_var) {
            p.out_mode = OutMode::kCheckConst;
          } else if (bound[out.var]) {
            p.out_mode = OutMode::kCheckVar;
          } else {
            p.out_mode = OutMode::kBind;
            bound[out.var] = true;
          }
        }
        plan_.push_back(std::move(p));
        continue;
      }
      p.rel = &ctx_.db().Get(atom.predicate, atom.source);
      if (atom.negated) {
        // Membership test: every term must be resolvable; no binds.
        plan_.push_back(std::move(p));
        continue;
      }
      // Probe keys must be available *before* the atom runs: a variable
      // first bound by this very atom (e.g. the second x of R(x, x)) is a
      // within-row check, not a probe key.
      const std::vector<bool> bound_before = bound;
      for (uint32_t col = 0; col < atom.terms.size(); ++col) {
        const LocalTerm& t = atom.terms[col];
        TermAction action;
        action.col = col;
        if (!t.is_var) {
          action.kind = TermAction::Kind::kCheckConst;
          action.constant = t.constant;
        } else if (bound[t.var]) {
          action.kind = TermAction::Kind::kCheckVar;
          action.var = t.var;
        } else {
          action.kind = TermAction::Kind::kBind;
          action.var = t.var;
          bound[t.var] = true;
        }
        // Pick the first index-supported column whose key is known before
        // the atom executes.
        if (p.probe_col < 0 && action.kind != TermAction::Kind::kBind &&
            (!t.is_var || bound_before[t.var]) && p.rel->HasIndex(col)) {
          p.probe_col = static_cast<int32_t>(col);
          p.probe_is_const = action.kind == TermAction::Kind::kCheckConst;
          p.probe_const = action.constant;
          p.probe_var = action.var;
        }
        p.actions.push_back(action);
      }
      if (p.probe_col >= 0) {
        p.probe_stats = profiler_->Slot(atom.predicate,
                                        static_cast<size_t>(p.probe_col));
      } else if (atom.has_range() &&
                 p.rel->HasIndex(static_cast<size_t>(atom.range_col))) {
        p.range_stats = profiler_->Slot(atom.predicate,
                                        static_cast<size_t>(atom.range_col));
      }
      plan_.push_back(std::move(p));
    }
    // One range-row buffer per plan depth: Join() recurses, so an inner
    // atom's probe must not clobber an outer atom's live row list.
    range_scratch_.resize(plan_.size());
  }

  Value Resolve(const LocalTerm& t) const {
    return t.is_var ? binding_[t.var] : t.constant;
  }

  /// kStaged selects the emission sink at compile time (false: insert
  /// into DeltaNew; true: stage into the worker's buffer), so the
  /// single-threaded instantiation's machine code is exactly the
  /// pre-parallel interpreter.
  template <bool kStaged>
  void Join(size_t i) {
    if (i == plan_.size()) {
      Emit<kStaged>();
      return;
    }
    const AtomPlan& p = plan_[i];
    const AtomSpec& atom = *p.atom;

    if (atom.is_builtin()) {
      const Value x = Resolve(atom.terms[0]);
      const Value y = Resolve(atom.terms[1]);
      if (!BuiltinBindsOutput(atom.builtin)) {
        if (datalog::EvalComparison(atom.builtin, x, y)) Join<kStaged>(i + 1);
        return;
      }
      Value z;
      if (!datalog::EvalArithmetic(atom.builtin, x, y, &z)) return;
      switch (p.out_mode) {
        case OutMode::kBind:
          binding_[atom.terms[2].var] = z;
          Join<kStaged>(i + 1);
          return;
        case OutMode::kCheckVar:
          if (binding_[atom.terms[2].var] == z) Join<kStaged>(i + 1);
          return;
        case OutMode::kCheckConst:
          if (atom.terms[2].constant == z) Join<kStaged>(i + 1);
          return;
      }
      return;
    }

    if (atom.negated) {
      scratch_.clear();
      for (const LocalTerm& t : atom.terms) scratch_.push_back(Resolve(t));
      if (!p.rel->Contains(scratch_)) Join<kStaged>(i + 1);
      return;
    }

    auto match = [&](TupleView t) {
      for (const TermAction& action : p.actions) {
        const Value v = t[action.col];
        switch (action.kind) {
          case TermAction::Kind::kCheckConst:
            if (v != action.constant) return;
            break;
          case TermAction::Kind::kCheckVar:
            if (v != binding_[action.var]) return;
            break;
          case TermAction::Kind::kBind:
            binding_[action.var] = v;
            break;
        }
      }
      Join<kStaged>(i + 1);
    };

    const Relation& rel = *p.rel;
    if (p.probe_col >= 0) {
      const Value key =
          p.probe_is_const ? p.probe_const : binding_[p.probe_var];
      const storage::RowCursor bucket =
          rel.Probe(static_cast<size_t>(p.probe_col), key);
      p.probe_stats->point_probes++;
      p.probe_stats->point_hits += !bucket.empty();
      for (RowId row : bucket) {
        match(rel.View(row));
      }
    } else {
      if (p.range_stats != nullptr) {
        const ResolvedRange range = ResolveRange(atom, binding_.data());
        std::vector<RowId>& rows = range_scratch_[i];
        if (TryRangeProbe(rel, static_cast<size_t>(atom.range_col), range,
                          p.range_stats, &rows)) {
          // The residual comparison builtins still run behind the probe,
          // so any declined/degraded case below is just the scan path.
          for (RowId row : rows) {
            match(rel.View(row));
          }
          return;
        }
      }
      for (RowId row = 0, n = rel.NumRows(); row < n; ++row) {
        match(rel.View(row));
      }
    }
  }

  /// The shard workers' outer loop: drives plan_[0] (a positive
  /// relational atom, guaranteed by RunSharded) over positions
  /// [begin, end) of its row sequence, then hands each match to
  /// Join(1). Kept out of Join() itself so the single-threaded hot
  /// loop's codegen stays exactly as it was before parallel evaluation
  /// existed.
  void JoinOuterWindow(size_t begin, size_t end) {
    const AtomPlan& p = plan_[0];
    const Relation& rel = *p.rel;

    auto match = [&](TupleView t) {
      for (const TermAction& action : p.actions) {
        const Value v = t[action.col];
        switch (action.kind) {
          case TermAction::Kind::kCheckConst:
            if (v != action.constant) return;
            break;
          case TermAction::Kind::kCheckVar:
            if (v != binding_[action.var]) return;
            break;
          case TermAction::Kind::kBind:
            binding_[action.var] = v;
            break;
        }
      }
      Join<true>(1);
    };

    if (p.probe_col >= 0) {
      // No variable is bound before atom 0, so the probe key is a const.
      const storage::RowCursor bucket =
          rel.Probe(static_cast<size_t>(p.probe_col), p.probe_const);
      p.probe_stats->point_probes++;
      p.probe_stats->point_hits += !bucket.empty();
      const size_t limit = std::min(end, bucket.size());
      for (size_t pos = std::min(begin, limit); pos < limit; ++pos) {
        match(rel.View(bucket[pos]));
      }
    } else {
      if (p.range_stats != nullptr) {
        // Atom-0 bounds are const-only (no variable binds before it), so
        // every shard resolves the identical row list — positions index
        // the same sequence RunSharded sized the shards against.
        const ResolvedRange range = ResolveRange(*p.atom, binding_.data());
        std::vector<RowId>& rows = range_scratch_[0];
        if (TryRangeProbe(rel, static_cast<size_t>(p.atom->range_col), range,
                          p.range_stats, &rows)) {
          const size_t limit = std::min(end, rows.size());
          for (size_t pos = std::min(begin, limit); pos < limit; ++pos) {
            match(rel.View(rows[pos]));
          }
          return;
        }
      }
      const size_t limit = std::min(end, static_cast<size_t>(rel.NumRows()));
      for (size_t row = std::min(begin, limit); row < limit; ++row) {
        match(rel.View(static_cast<RowId>(row)));
      }
    }
  }

  /// True when the first two plan entries form an index nested-loop join
  /// whose inner probe key comes from the outer row — the shape the
  /// batched-cursor path accelerates. Builtins, negation and const-key
  /// probes (loop-invariant lookups) keep the classic path.
  bool BatchEligible() const {
    if (plan_.size() < 2) return false;
    const AtomPlan& outer = plan_[0];
    const AtomPlan& inner = plan_[1];
    if (outer.rel == nullptr || outer.atom->negated) return false;
    if (inner.rel == nullptr || inner.atom->negated) return false;
    return inner.probe_col >= 0 && !inner.probe_is_const;
  }

  /// Applies one atom's column actions to `t`: false on a failed check,
  /// true with all binds applied otherwise. (The same loop Join<> runs
  /// inline; shared here by the two batched passes.)
  bool ApplyActions(const AtomPlan& p, TupleView t) {
    for (const TermAction& action : p.actions) {
      const Value v = t[action.col];
      switch (action.kind) {
        case TermAction::Kind::kCheckConst:
          if (v != action.constant) return false;
          break;
        case TermAction::Kind::kCheckVar:
          if (v != binding_[action.var]) return false;
          break;
        case TermAction::Kind::kBind:
          binding_[action.var] = v;
          break;
      }
    }
    return true;
  }

  /// Batch-at-a-time outer loop over positions [begin, end) of atom 0's
  /// row sequence. Two passes per window: pass 1 applies atom-0 actions
  /// per outer row and collects the surviving rows' inner probe keys;
  /// one BatchProbe resolves the whole window (amortizing dispatch,
  /// skipping equal-adjacent keys); pass 2 re-applies atom-0 binds per
  /// surviving row (checks already passed — binds are cheap) and joins
  /// atom 1 from the pre-resolved cursor, recursing into Join<>(2). The
  /// emission order is exactly the classic nested loop's, so DeltaNew
  /// stays byte-identical whether batching is on or off, single-threaded
  /// or sharded. Deliberately a separate entry point: Join<>(0)'s
  /// codegen is fragile under GCC 12 and stays untouched.
  template <bool kStaged>
  void JoinBatchedWindow(size_t begin, size_t end) {
    const AtomPlan& outer = plan_[0];
    const AtomPlan& inner = plan_[1];
    const Relation& outer_rel = *outer.rel;
    const Relation& inner_rel = *inner.rel;
    const size_t inner_col = static_cast<size_t>(inner.probe_col);
    const size_t window = ctx_.probe_batch_window();

    storage::RowCursor outer_bucket;
    const std::vector<RowId>* outer_range = nullptr;
    size_t limit;
    if (outer.probe_col >= 0) {
      // No variable is bound before atom 0: the key is a const.
      outer_bucket = outer_rel.Probe(static_cast<size_t>(outer.probe_col),
                                     outer.probe_const);
      outer.probe_stats->point_probes++;
      outer.probe_stats->point_hits += !outer_bucket.empty();
      limit = std::min(end, outer_bucket.size());
    } else if (outer.range_stats != nullptr &&
               TryRangeProbe(outer_rel,
                             static_cast<size_t>(outer.atom->range_col),
                             ResolveRange(*outer.atom, binding_.data()),
                             outer.range_stats, &range_scratch_[0])) {
      // Const-only bounds (see JoinOuterWindow): the row list is the
      // same for every shard.
      outer_range = &range_scratch_[0];
      limit = std::min(end, outer_range->size());
    } else {
      limit = std::min(end, static_cast<size_t>(outer_rel.NumRows()));
    }

    batch_rows_.clear();
    batch_keys_.clear();
    if (batch_cursors_.size() < window) batch_cursors_.resize(window);

    for (size_t pos = std::min(begin, limit); pos < limit;) {
      const size_t chunk_end = std::min(pos + window, limit);
      batch_rows_.clear();
      batch_keys_.clear();
      for (; pos < chunk_end; ++pos) {
        const RowId row = outer.probe_col >= 0 ? outer_bucket[pos]
                          : outer_range != nullptr
                              ? (*outer_range)[pos]
                              : static_cast<RowId>(pos);
        if (!ApplyActions(outer, outer_rel.View(row))) continue;
        batch_rows_.push_back(row);
        batch_keys_.push_back(binding_[inner.probe_var]);
      }
      if (batch_rows_.empty()) continue;
      inner_rel.BatchProbe(inner_col, batch_keys_.data(),
                           batch_rows_.size(), batch_cursors_.data());
      inner.probe_stats->batch_windows++;
      inner.probe_stats->point_probes += batch_rows_.size();
      for (size_t k = 0; k < batch_rows_.size(); ++k) {
        inner.probe_stats->point_hits += !batch_cursors_[k].empty();
        const TupleView t = outer_rel.View(batch_rows_[k]);
        for (const TermAction& action : outer.actions) {
          if (action.kind == TermAction::Kind::kBind) {
            binding_[action.var] = t[action.col];
          }
        }
        batch_cursors_[k].ForEach([&](RowId inner_row) {
          if (ApplyActions(inner, inner_rel.View(inner_row))) {
            Join<kStaged>(2);
          }
        });
      }
    }
  }

  template <bool kStaged>
  void Emit() {
    if constexpr (kStaged) {
      // Shard mode (plain SPJs only — aggregates never shard): stats and
      // DeltaNew belong to the main thread, so count locally and stage.
      // Derived and DeltaNew are frozen while shards run (the merge
      // happens afterwards), making the pre-filter a safe concurrent
      // read that keeps the staging sets small.
      ++staged_considered_;
      scratch_.clear();
      for (const LocalTerm& t : op_.head_terms) {
        scratch_.push_back(Resolve(t));
      }
      storage::DatabaseSet& db = ctx_.db();
      if (db.Get(op_.target, storage::DbKind::kDerived).Contains(scratch_)) {
        return;
      }
      if (db.Get(op_.target, storage::DbKind::kDeltaNew).Contains(scratch_)) {
        return;
      }
      staging_->Insert(scratch_);
      return;
    }
    ctx_.stats().tuples_considered++;
    if (op_.kind == OpKind::kAggregate) {
      scratch_.clear();
      for (size_t i = 0; i + 1 < op_.head_terms.size(); ++i) {
        scratch_.push_back(Resolve(op_.head_terms[i]));
      }
      // Set semantics: aggregate over *distinct* witnesses so results do
      // not depend on the join order or on how many derivations produce
      // the same witness. count uses the full variable binding as witness
      // (number of distinct body matches); sum/min/max use the operand.
      Tuple witness = op_.agg == datalog::AggFunc::kCount
                          ? binding_
                          : Tuple{binding_[op_.agg_operand]};
      witnesses_.emplace(scratch_, std::move(witness));
      return;
    }
    scratch_.clear();
    for (const LocalTerm& t : op_.head_terms) scratch_.push_back(Resolve(t));
    InsertResult(scratch_);
  }

  void InsertResult(const Tuple& tuple) {
    storage::DatabaseSet& db = ctx_.db();
    if (db.Get(op_.target, storage::DbKind::kDerived).Contains(tuple)) return;
    if (db.Get(op_.target, storage::DbKind::kDeltaNew).Insert(tuple)) {
      ctx_.stats().tuples_inserted++;
    }
  }

  void FlushAggregates() {
    std::map<Tuple, Value> groups;
    for (const auto& [key, witness] : witnesses_) {
      Value contribution =
          op_.agg == datalog::AggFunc::kCount ? 1 : witness[0];
      auto [it, inserted] = groups.emplace(key, contribution);
      if (inserted) continue;
      switch (op_.agg) {
        case datalog::AggFunc::kCount:
        case datalog::AggFunc::kSum:
          it->second += contribution;
          break;
        case datalog::AggFunc::kMin:
          if (contribution < it->second) it->second = contribution;
          break;
        case datalog::AggFunc::kMax:
          if (contribution > it->second) it->second = contribution;
          break;
        case datalog::AggFunc::kNone:
          break;
      }
    }
    for (const auto& [key, value] : groups) {
      Tuple tuple = key;
      tuple.push_back(value);
      InsertResult(tuple);
    }
  }

  ExecContext& ctx_;
  const IROp& op_;
  // Destination for probe counters: the context's profiler on the
  // single-threaded path, the worker's shard profiler when sharded.
  AccessProfiler* profiler_;
  std::vector<AtomPlan> plan_;
  std::vector<Value> binding_;
  Tuple scratch_;
  // Aggregation state: distinct (group key, witness) pairs.
  std::set<std::pair<Tuple, Tuple>> witnesses_;
  // Shard-execution state (parallel evaluation): the staging destination
  // and a local emission count (pool workers must not touch the shared
  // stats). Null/unused on the single-threaded path.
  storage::StagingBuffer* staging_ = nullptr;
  uint64_t staged_considered_ = 0;
  // Batched-probe window scratch (JoinBatchedWindow), reused per chunk.
  std::vector<RowId> batch_rows_;
  std::vector<Value> batch_keys_;
  std::vector<storage::RowCursor> batch_cursors_;
  // Range-probe row lists, one per plan depth (Join recurses; see
  // BuildPlan).
  std::vector<std::vector<RowId>> range_scratch_;
};

}  // namespace

void RunSubquery(ExecContext& ctx, const IROp& op) {
  CARAC_CHECK(op.kind == OpKind::kSpj || op.kind == OpKind::kAggregate);
  // Aggregates always run through the push engine (they accumulate
  // witnesses); plain SPJs dispatch on the configured relational engine.
  if (op.kind == OpKind::kSpj &&
      ctx.engine_style() == EngineStyle::kPull) {
    RunSubqueryPull(ctx, op);
    return;
  }
  SubqueryRun run(ctx, op);
  run.Run();
}

void Interpreter::Execute(IROp& op) {
  if (jit_ != nullptr && jit_->MaybeRunCompiled(op, *ctx_, *this)) return;
  ExecuteNode(op);
}

void Interpreter::ExecuteNode(IROp& op) {
  switch (op.kind) {
    case OpKind::kProgram:
    case OpKind::kSequence:
    case OpKind::kUnionAll:
    case OpKind::kUnion:
      for (auto& child : op.children) Execute(*child);
      return;
    case OpKind::kDoWhile:
      do {
        ctx_->stats().iterations++;
        Execute(*op.children[0]);
      } while (ctx_->db().AnyDeltaKnownNonEmpty(op.relations));
      return;
    case OpKind::kSwapClear:
      ctx_->db().SwapClearMerge(op.relations);
      return;
    case OpKind::kSpj:
    case OpKind::kAggregate:
      ExecuteSubquery(op);
      return;
  }
}

void Interpreter::ExecuteSubquery(IROp& op) {
  if (jit_ != nullptr) jit_->BeforeSubquery(op, *ctx_);
  RunSubquery(*ctx_, op);
}

}  // namespace carac::ir
