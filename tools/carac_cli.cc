// carac — command-line driver for the carac++ engine.
//
// Usage:
//   carac run <workload> [options]     run a built-in benchmark workload
//   carac dl <program.dl> [options]    run a textual Datalog program
//   carac tc <facts.csv> [options]     transitive closure over a CSV edge list
//   carac serve <program.dl> [options] incremental update session on stdin
//   carac list                         list built-in workloads
//
// Workloads: cspa csda andersen invfuns ackermann fibonacci primes
//
// Options:
//   --unoptimized          use the unlucky atom order (default: hand-tuned)
//   --jit                  evaluate with the adaptive JIT (default: interpret)
//   --backend=B            quotes | bytecode | lambda | irgen   (default lambda)
//   --granularity=G        program | dowhile | unionall | union | spj
//   --async                compile on the compiler thread
//   --snippet              snippet compilation (default: full)
//   --no-indexes           disable hash indexes
//   --index-kind=K         hash | sorted | btree | sorted-array | learned
//                          | auto — index organization for every declared
//                          index (default auto: hash for point-probed
//                          columns, statistics pick an ordered kind for
//                          range-only columns)
//   --adaptive-indexes     self-tuning indexes: profile each indexed
//                          column's runtime access mix and migrate its
//                          organization at epoch close when the evidence
//                          says another kind wins (results unchanged)
//   --probe-batch-window=N outer rows per batched index probe
//                          (default 64; 0 = tuple-at-a-time probes)
//   --pull                 pull-based relational engine (default: push)
//   --aot[=rules]          ahead-of-time planning (facts+rules, or rules only)
//   --scale=N              workload size multiplier (default 1)
//   --threads=N            evaluation threads for the semi-naive fixpoint
//                          (default 1; results are identical at any value)
//   --parallel-min-outer-rows=N
//                          outer scans below N rows stay single-threaded
//                          (default 128)
//   --snapshot-dir=DIR     durable-state directory (snapshot + fact log);
//                          enables serve's save/open commands and logs
//                          every batch + epoch for crash recovery
//   --checkpoint-every=N   with --snapshot-dir: auto-checkpoint after
//                          every N epochs (0 = manual `save` only)
//   --ir                   print the lowered IR before running
//   --stats                print execution counters
//
// `carac serve` reads commands from stdin after Prepare(), one per line
// ('#' starts a comment):
//   load <Relation> <file.csv>   append a fact batch to a relation
//   update                       bring the fixpoint up to date (the first
//                                update is a full evaluation, later ones
//                                are incremental epochs) and print the
//                                epoch report
//   count <Relation>             print the relation's derived row count
//   dump <Relation>              print the relation's sorted rows (TSV)
//   stats                        print per-column index kinds, probe
//                                counters and adaptive re-kind events
//   save                         checkpoint durable state now
//                                (requires --snapshot-dir)
//   open                         recover durable state: load the snapshot
//                                and replay the fact-log tail
//   quit                         exit (EOF works too)
// Malformed input — unknown commands or relations, wrong-arity facts,
// unreadable files — prints a diagnostic and CONTINUES the session (a
// typo must not tear down live state); the session still exits 0. Only
// startup failures (unparsable program, failed Prepare) and a failed
// `open` (the database may be partially overwritten — serving it would
// lie) exit nonzero.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/loader.h"
#include "analysis/programs.h"
#include "datalog/parser.h"
#include "core/engine.h"
#include "harness/table.h"
#include "util/parse.h"
#include "util/timer.h"

namespace {

using namespace carac;

constexpr int64_t kMaxScale = 1'000'000'000'000;  // 1e12

struct Options {
  std::string command;
  std::string target;
  analysis::RuleOrder order = analysis::RuleOrder::kHandOptimized;
  core::EngineConfig config;
  int64_t scale = 1;
  std::string scale_arg;  // raw --scale value, kept for diagnostics
  // Raw --threads / --parallel-min-outer-rows values; -1 marks "invalid",
  // turned into a diagnostic + exit 2 by main() (same contract as --scale).
  int64_t threads = 1;
  std::string threads_arg;
  int64_t parallel_min_rows = 128;
  std::string parallel_min_rows_arg;
  // Raw --checkpoint-every value; -1 marks "invalid" (diagnostic + exit 2).
  int64_t checkpoint_every = 0;
  std::string checkpoint_every_arg;
  // Raw --index-kind / --probe-batch-window values; the bools mark
  // "invalid" (diagnostic + exit 2, same contract as --scale).
  bool index_kind_invalid = false;
  std::string index_kind_arg;
  int64_t probe_batch_window = 64;
  std::string probe_batch_window_arg;
  bool snapshot_dir_empty = false;  // --snapshot-dir= with no path.
  bool print_ir = false;
  bool print_stats = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: carac run <workload> [options]\n"
               "       carac dl <program.dl> [options]\n"
               "       carac tc <facts.csv> [options]\n"
               "       carac serve <program.dl> [options]\n"
               "       carac list\n"
               "options include --threads=N and --parallel-min-outer-rows=N\n"
               "(evaluation threads / parallel dispatch threshold),\n"
               "--index-kind={%s,auto} and\n"
               "--probe-batch-window=N (index organization / batched\n"
               "probe window), --adaptive-indexes (self-tuning index\n"
               "organization) and\n"
               "--snapshot-dir=DIR / --checkpoint-every=N (durable state:\n"
               "serve gains save/open commands and crash recovery);\n"
               "see the header of tools/carac_cli.cc for the full list\n",
               storage::IndexKindNameList().c_str());
  return 2;
}

bool ParseFlag(const std::string& arg, Options* opts) {
  auto value_of = [&](const char* prefix) -> const char* {
    const size_t n = std::strlen(prefix);
    return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
  };
  if (arg == "--unoptimized") {
    opts->order = analysis::RuleOrder::kUnoptimized;
  } else if (arg == "--jit") {
    opts->config.mode = core::EvalMode::kJit;
  } else if (const char* b = value_of("--backend=")) {
    opts->config.mode = core::EvalMode::kJit;
    std::string backend = b;
    if (backend == "quotes") {
      opts->config.jit.backend = backends::BackendKind::kQuotes;
    } else if (backend == "bytecode") {
      opts->config.jit.backend = backends::BackendKind::kBytecode;
    } else if (backend == "lambda") {
      opts->config.jit.backend = backends::BackendKind::kLambda;
    } else if (backend == "irgen") {
      opts->config.jit.backend = backends::BackendKind::kIRGenerator;
    } else {
      return false;
    }
  } else if (const char* g = value_of("--granularity=")) {
    std::string level = g;
    if (level == "program") {
      opts->config.jit.granularity = core::Granularity::kProgram;
    } else if (level == "dowhile") {
      opts->config.jit.granularity = core::Granularity::kDoWhile;
    } else if (level == "unionall") {
      opts->config.jit.granularity = core::Granularity::kUnionAll;
    } else if (level == "union") {
      opts->config.jit.granularity = core::Granularity::kUnion;
    } else if (level == "spj") {
      opts->config.jit.granularity = core::Granularity::kSpj;
    } else {
      return false;
    }
  } else if (arg == "--async") {
    opts->config.jit.async = true;
  } else if (arg == "--snippet") {
    opts->config.jit.mode = backends::CompileMode::kSnippet;
  } else if (arg == "--no-indexes") {
    opts->config.use_indexes = false;
  } else if (const char* k = value_of("--index-kind=")) {
    opts->index_kind_arg = k;
    // Strict: a typo'd kind must not silently fall back to the default
    // organization (benchmark ablations would measure the wrong thing).
    storage::IndexKind kind;
    if (opts->index_kind_arg == "auto") {
      opts->config.index_kind.reset();
    } else if (storage::ParseIndexKind(opts->index_kind_arg, &kind)) {
      opts->config.index_kind = kind;
    } else {
      opts->index_kind_invalid = true;
    }
  } else if (const char* w = value_of("--probe-batch-window=")) {
    opts->probe_batch_window_arg = w;
    if (!util::ParseInt64(w, &opts->probe_batch_window) ||
        opts->probe_batch_window < 0 ||
        opts->probe_batch_window > std::numeric_limits<uint32_t>::max()) {
      opts->probe_batch_window = -1;
    }
  } else if (arg == "--adaptive-indexes") {
    opts->config.adaptive_indexes = true;
  } else if (arg == "--pull") {
    opts->config.engine_style = ir::EngineStyle::kPull;
  } else if (arg == "--aot" || arg == "--aot=facts") {
    opts->config.aot_reorder = true;
    opts->config.aot.use_fact_cardinalities = true;
  } else if (arg == "--aot=rules") {
    opts->config.aot_reorder = true;
    opts->config.aot.use_fact_cardinalities = false;
  } else if (const char* t = value_of("--threads=")) {
    opts->threads_arg = t;
    // Strict integer, bounded like the bench harness: a typo'd thread
    // count must not silently fall back to 1.
    if (!util::ParseInt64(t, &opts->threads) || opts->threads < 1 ||
        opts->threads > 256) {
      opts->threads = -1;
    }
  } else if (const char* m = value_of("--parallel-min-outer-rows=")) {
    opts->parallel_min_rows_arg = m;
    if (!util::ParseInt64(m, &opts->parallel_min_rows) ||
        opts->parallel_min_rows < 1 ||
        opts->parallel_min_rows > std::numeric_limits<uint32_t>::max()) {
      opts->parallel_min_rows = -1;
    }
  } else if (const char* d = value_of("--snapshot-dir=")) {
    opts->config.snapshot_dir = d;
    opts->snapshot_dir_empty = opts->config.snapshot_dir.empty();
  } else if (const char* c = value_of("--checkpoint-every=")) {
    opts->checkpoint_every_arg = c;
    // Strict integer like --scale: a typo'd cadence must not silently
    // disable (or constant-trigger) checkpointing. 0 = manual only.
    if (!util::ParseInt64(c, &opts->checkpoint_every) ||
        opts->checkpoint_every < 0 || opts->checkpoint_every > kMaxScale) {
      opts->checkpoint_every = -1;
    }
  } else if (const char* s = value_of("--scale=")) {
    opts->scale_arg = s;
    // Reject garbage, overflow, and anything whose per-workload tuple
    // multiplication (up to 1500x) could overflow int64; main() turns
    // scale 0 into a diagnostic + exit 2.
    if (!util::ParseInt64(s, &opts->scale) || opts->scale > kMaxScale) {
      opts->scale = 0;
    }
  } else if (arg == "--ir") {
    opts->print_ir = true;
  } else if (arg == "--stats") {
    opts->print_stats = true;
  } else {
    return false;
  }
  return true;
}

analysis::Workload MakeNamedWorkload(const Options& opts, bool* ok) {
  *ok = true;
  const std::string& name = opts.target;
  const int64_t scale = opts.scale;
  if (name == "cspa") {
    analysis::CspaConfig config;
    config.total_tuples = 400 * scale;
    return analysis::MakeCspa(config, opts.order);
  }
  if (name == "csda") {
    analysis::CsdaConfig config;
    config.length = 1500 * scale;
    return analysis::MakeCsda(config);
  }
  if (name == "andersen") {
    analysis::SListConfig config;
    config.scale = scale;
    return analysis::MakeAndersen(config, opts.order);
  }
  if (name == "invfuns") {
    analysis::SListConfig config;
    config.scale = scale;
    return analysis::MakeInverseFunctions(config, opts.order);
  }
  if (name == "ackermann") return analysis::MakeAckermann(61, opts.order);
  if (name == "fibonacci") {
    return analysis::MakeFibonacci(25 * scale, opts.order);
  }
  if (name == "primes") return analysis::MakePrimes(500 * scale, opts.order);
  *ok = false;
  return {};
}

int RunWorkload(const Options& opts, analysis::Workload workload) {
  core::Engine engine(workload.program.get(), opts.config);
  util::Status status = engine.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (opts.print_ir) {
    std::fputs(engine.ir().ToString(*workload.program).c_str(), stdout);
  }
  util::Timer timer;
  status = engine.Run();
  const double seconds = timer.ElapsedSeconds();
  if (!status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu output tuples in %s s\n", workload.name.c_str(),
              engine.ResultSize(workload.output),
              harness::FormatSeconds(seconds).c_str());
  if (opts.print_stats) {
    std::printf("stats: %s\n", engine.stats().ToString().c_str());
  }
  return 0;
}

bool FindRelation(const datalog::Program& program, const std::string& name,
                  datalog::PredicateId* out) {
  for (datalog::PredicateId id = 0; id < program.NumPredicates(); ++id) {
    if (program.PredicateName(id) == name) {
      *out = id;
      return true;
    }
  }
  return false;
}

/// The `serve` command: Prepare() once, then apply stdin commands —
/// fact batches, update epochs and (with --snapshot-dir) durable
/// checkpoints — against the live engine. This is the CLI surface of
/// re-enterable evaluation: each `update` pays for the delta, not the
/// database, and `open` recovers a previous session's state in O(log
/// tail) instead of re-evaluating.
///
/// Error contract: malformed input (unknown command or relation, missing
/// arguments, trailing junk, wrong-arity facts, unreadable files) prints
/// a diagnostic and the session CONTINUES — in a long-lived updatable
/// database, a typo must not tear down the in-memory fixpoint. Only
/// startup failures and a failed `open` (see below) exit nonzero.
int RunServe(const Options& opts) {
  auto program = std::make_unique<datalog::Program>();
  util::Status status = datalog::ParseDatalogFile(opts.target, program.get());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  core::Engine engine(program.get(), opts.config);
  status = engine.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (opts.print_ir) {
    std::fputs(engine.ir().ToString(*program).c_str(), stdout);
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string command;
    if (!(tokens >> command)) continue;  // Blank / comment-only line.

    // Zero-argument commands reject trailing junk: `update Edge` is a
    // user who thinks update takes a relation, not a no-op.
    std::string extra;
    if (command == "quit" || command == "update" || command == "save" ||
        command == "open" || command == "stats") {
      if (tokens >> extra) {
        std::fprintf(stderr,
                     "serve: %s takes no arguments (got \"%s\")\n",
                     command.c_str(), extra.c_str());
        continue;
      }
    }

    if (command == "quit") return 0;

    if (command == "update") {
      core::EpochReport report;
      util::Timer timer;
      status = engine.Update(&report);
      const double seconds = timer.ElapsedSeconds();
      if (!status.ok()) {
        std::fprintf(stderr, "update failed: %s\n",
                     status.ToString().c_str());
        continue;
      }
      std::printf("%s in %s s\n", report.ToString().c_str(),
                  harness::FormatSeconds(seconds).c_str());
      continue;
    }

    if (command == "stats") {
      // Self-tuning surface: what each indexed column is organized as
      // right now, what traffic the evaluators actually sent it, and
      // which migrations the adaptive policy performed to get here.
      const storage::DatabaseSet& db = program->db();
      for (datalog::PredicateId id = 0; id < program->NumPredicates(); ++id) {
        const storage::Relation& rel =
            db.Get(id, storage::DbKind::kDerived);
        for (size_t i = 0; i < rel.NumIndexes(); ++i) {
          const storage::IndexBase& index = rel.IndexAt(i);
          std::printf("index %s col%zu %s\n",
                      program->PredicateName(id).c_str(), index.column(),
                      storage::IndexKindName(index.kind()));
        }
      }
      for (const auto& [key, counters] : engine.profiler().counters()) {
        std::printf("probes %s col%u points=%llu hits=%llu ranges=%llu "
                    "batch-windows=%llu\n",
                    program->PredicateName(key.first).c_str(), key.second,
                    static_cast<unsigned long long>(counters.point_probes),
                    static_cast<unsigned long long>(counters.point_hits),
                    static_cast<unsigned long long>(counters.range_probes),
                    static_cast<unsigned long long>(counters.batch_windows));
      }
      if (engine.adaptive_policy() == nullptr) {
        std::printf("adaptive off\n");
      } else {
        for (const optimizer::RekindEvent& event :
             engine.adaptive_policy()->events()) {
          std::printf("rekind epoch=%llu %s col%u %s->%s\n",
                      static_cast<unsigned long long>(event.epoch),
                      program->PredicateName(event.relation).c_str(),
                      event.column, storage::IndexKindName(event.from),
                      storage::IndexKindName(event.to));
        }
        std::printf("rekind-events %zu\n",
                    engine.adaptive_policy()->events().size());
      }
      continue;
    }

    if (command == "save") {
      status = engine.Checkpoint();
      if (!status.ok()) {
        std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
        continue;
      }
      std::printf("checkpoint saved (epoch %llu) to %s\n",
                  static_cast<unsigned long long>(program->db().epoch()),
                  opts.config.snapshot_dir.c_str());
      continue;
    }

    if (command == "open") {
      core::RestoreInfo info;
      util::Timer timer;
      status = engine.Restore(&info);
      const double seconds = timer.ElapsedSeconds();
      if (!status.ok()) {
        // Unlike input typos, a failed restore may leave the database
        // partially overwritten (OpenSnapshot installs sections as they
        // verify; replay may stop mid-log). Serving that state would be
        // lying — this is the one serve error that ends the session.
        std::fprintf(stderr, "open failed: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("restored %s (snapshot epoch %llu) + %llu log epoch(s)%s "
                  "in %s s\n",
                  info.snapshot_loaded ? "snapshot" : "no snapshot",
                  static_cast<unsigned long long>(info.snapshot_epoch),
                  static_cast<unsigned long long>(info.epochs_replayed),
                  info.log_tail_discarded ? " (torn tail discarded)" : "",
                  harness::FormatSeconds(seconds).c_str());
      continue;
    }

    if (command == "load" || command == "count" || command == "dump") {
      std::string rel_name;
      if (!(tokens >> rel_name)) {
        std::fprintf(stderr, "serve: %s needs a relation name\n",
                     command.c_str());
        continue;
      }
      datalog::PredicateId rel = datalog::kInvalidPredicate;
      if (!FindRelation(*program, rel_name, &rel)) {
        std::fprintf(stderr, "serve: unknown relation: %s\n",
                     rel_name.c_str());
        continue;
      }
      if (command == "load") {
        std::string path;
        if (!(tokens >> path)) {
          std::fprintf(stderr, "serve: load needs a csv path\n");
          continue;
        }
        if (tokens >> extra) {
          std::fprintf(stderr,
                       "serve: load takes one csv path (got \"%s\")\n",
                       extra.c_str());
          continue;
        }
        // Through the engine, not straight into the DatabaseSet: the
        // durability log only sees batches that cross Engine::AddFacts.
        std::vector<storage::Tuple> facts;
        status = analysis::ReadFactsCsv(path, program.get(), rel, &facts);
        if (status.ok()) status = engine.AddFacts(rel, facts);
        if (!status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          continue;
        }
        std::printf("loaded %s into %s (%zu facts total)\n", path.c_str(),
                    rel_name.c_str(),
                    program->db()
                        .Get(rel, storage::DbKind::kDerived)
                        .size());
      } else if (tokens >> extra) {
        // count/dump take exactly one relation name.
        std::fprintf(stderr,
                     "serve: %s takes one relation name (got \"%s\")\n",
                     command.c_str(), extra.c_str());
        continue;
      } else if (command == "count") {
        std::printf("%s: %zu rows\n", rel_name.c_str(),
                    engine.ResultSize(rel));
      } else {
        for (const storage::Tuple& row : engine.Results(rel)) {
          for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0) std::printf("\t");
            if (storage::SymbolTable::IsSymbol(row[i])) {
              std::printf(
                  "%s", program->db().symbols().Lookup(row[i]).c_str());
            } else {
              std::printf("%lld", static_cast<long long>(row[i]));
            }
          }
          std::printf("\n");
        }
      }
      continue;
    }

    std::fprintf(stderr, "serve: unknown command: %s\n", command.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (argc < 2) return Usage();
  opts.command = argv[1];

  if (opts.command == "list") {
    std::printf("cspa csda andersen invfuns ackermann fibonacci primes\n");
    return 0;
  }
  if (argc < 3) return Usage();
  opts.target = argv[2];
  for (int i = 3; i < argc; ++i) {
    if (!ParseFlag(argv[i], &opts)) {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return Usage();
    }
  }
  if (opts.scale < 1) {
    std::fprintf(stderr,
                 "invalid --scale=%s: scale must be an integer in "
                 "[1, %lld]\n",
                 opts.scale_arg.c_str(),
                 static_cast<long long>(kMaxScale));
    return 2;
  }
  if (opts.threads < 1) {
    std::fprintf(stderr,
                 "invalid --threads=%s: threads must be an integer in "
                 "[1, 256]\n",
                 opts.threads_arg.c_str());
    return 2;
  }
  if (opts.parallel_min_rows < 1) {
    std::fprintf(stderr,
                 "invalid --parallel-min-outer-rows=%s: expected an integer "
                 "in [1, %llu]\n",
                 opts.parallel_min_rows_arg.c_str(),
                 static_cast<unsigned long long>(
                     std::numeric_limits<uint32_t>::max()));
    return 2;
  }
  if (opts.index_kind_invalid) {
    std::fprintf(stderr,
                 "invalid --index-kind=%s: expected one of %s, or auto\n",
                 opts.index_kind_arg.c_str(),
                 storage::IndexKindNameList().c_str());
    return 2;
  }
  if (opts.probe_batch_window < 0) {
    std::fprintf(stderr,
                 "invalid --probe-batch-window=%s: expected an integer in "
                 "[0, %llu]\n",
                 opts.probe_batch_window_arg.c_str(),
                 static_cast<unsigned long long>(
                     std::numeric_limits<uint32_t>::max()));
    return 2;
  }
  if (opts.snapshot_dir_empty) {
    std::fprintf(stderr, "invalid --snapshot-dir=: needs a directory path\n");
    return 2;
  }
  if (opts.checkpoint_every < 0) {
    std::fprintf(stderr,
                 "invalid --checkpoint-every=%s: expected an integer in "
                 "[0, %lld]\n",
                 opts.checkpoint_every_arg.c_str(),
                 static_cast<long long>(kMaxScale));
    return 2;
  }
  if (opts.checkpoint_every > 0 && opts.config.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--checkpoint-every requires --snapshot-dir "
                 "(nowhere to write the checkpoint)\n");
    return 2;
  }
  opts.config.probe_batch_window =
      static_cast<uint32_t>(opts.probe_batch_window);
  opts.config.num_threads = static_cast<int>(opts.threads);
  opts.config.parallel_min_outer_rows =
      static_cast<uint32_t>(opts.parallel_min_rows);
  opts.config.checkpoint_every =
      static_cast<uint64_t>(opts.checkpoint_every);

  if (opts.command == "run") {
    bool ok = false;
    analysis::Workload workload = MakeNamedWorkload(opts, &ok);
    if (!ok) {
      std::fprintf(stderr, "unknown workload: %s (try `carac list`)\n",
                   opts.target.c_str());
      return 2;
    }
    return RunWorkload(opts, std::move(workload));
  }

  if (opts.command == "dl") {
    auto program = std::make_unique<datalog::Program>();
    util::Status status =
        datalog::ParseDatalogFile(opts.target, program.get());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    core::Engine engine(program.get(), opts.config);
    status = engine.Prepare();
    if (!status.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (opts.print_ir) {
      std::fputs(engine.ir().ToString(*program).c_str(), stdout);
    }
    util::Timer timer;
    status = engine.Run();
    const double seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
      return 1;
    }
    harness::TablePrinter table({"relation", "derived tuples"});
    for (datalog::PredicateId id = 0; id < program->NumPredicates(); ++id) {
      if (!program->IsIdb(id)) continue;
      table.AddRow({program->PredicateName(id),
                    std::to_string(engine.ResultSize(id))});
    }
    table.Print();
    std::printf("evaluated %s in %s s\n", opts.target.c_str(),
                harness::FormatSeconds(seconds).c_str());
    if (opts.print_stats) {
      std::printf("stats: %s\n", engine.stats().ToString().c_str());
    }
    return 0;
  }

  if (opts.command == "serve") {
    return RunServe(opts);
  }

  if (opts.command == "tc") {
    analysis::Workload workload;
    workload.name = "TransitiveClosure(" + opts.target + ")";
    workload.program = std::make_unique<datalog::Program>();
    datalog::Dsl dsl(workload.program.get());
    auto edge = dsl.Relation("Edge", 2);
    auto path = dsl.Relation("Path", 2);
    auto [x, y, z] = dsl.Vars<3>();
    path(x, y) <<= edge(x, y);
    path(x, z) <<= path(x, y) & edge(y, z);
    workload.output = path.id();
    util::Status status = analysis::LoadFactsCsv(
        opts.target, workload.program.get(), edge.id());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return RunWorkload(opts, std::move(workload));
  }

  return Usage();
}
