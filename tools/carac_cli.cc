// carac — command-line driver for the carac++ engine.
//
// Usage:
//   carac run <workload> [options]     run a built-in benchmark workload
//   carac dl <program.dl> [options]    run a textual Datalog program
//   carac tc <facts.csv> [options]     transitive closure over a CSV edge list
//   carac serve <program.dl> [options] incremental update session on stdin
//   carac server <program.dl> [options] concurrent socket server (see below)
//   carac list                         list built-in workloads
//
// Workloads: cspa csda andersen invfuns ackermann fibonacci primes
//
// Options:
//   --unoptimized          use the unlucky atom order (default: hand-tuned)
//   --jit                  evaluate with the adaptive JIT (default: interpret)
//   --backend=B            quotes | bytecode | lambda | irgen   (default lambda)
//   --granularity=G        program | dowhile | unionall | union | spj
//   --async                compile on the compiler thread
//   --snippet              snippet compilation (default: full)
//   --no-indexes           disable hash indexes
//   --index-kind=K         hash | sorted | btree | sorted-array | learned
//                          | auto — index organization for every declared
//                          index (default auto: hash for point-probed
//                          columns, statistics pick an ordered kind for
//                          range-only columns)
//   --adaptive-indexes     self-tuning indexes: profile each indexed
//                          column's runtime access mix and migrate its
//                          organization at epoch close when the evidence
//                          says another kind wins (results unchanged)
//   --range-pushdown=V     on | off — serve comparison-constrained scans
//                          through index range probes where profitable
//                          (default on; off forces the filtered-scan
//                          path, results byte-identical either way)
//   --probe-batch-window=N outer rows per batched index probe
//                          (default 64; 0 = tuple-at-a-time probes)
//   --pull                 pull-based relational engine (default: push)
//   --aot[=rules]          ahead-of-time planning (facts+rules, or rules only)
//   --scale=N              workload size multiplier (default 1)
//   --threads=N            evaluation threads for the semi-naive fixpoint
//                          (default 1; results are identical at any value)
//   --parallel-min-outer-rows=N
//                          outer scans below N rows stay single-threaded
//                          (default 128)
//   --snapshot-dir=DIR     durable-state directory (snapshot + fact log);
//                          enables serve's save/open commands and logs
//                          every batch + epoch for crash recovery
//   --checkpoint-every=N   with --snapshot-dir: auto-checkpoint after
//                          every N epochs (0 = manual `save` only)
//   --listen-unix=PATH     (server) listen on a Unix-domain socket
//   --listen-tcp=PORT      (server) listen on 127.0.0.1:PORT (0 =
//                          ephemeral; the resolved port is printed)
//   --server-workers=N     (server) worker threads, each owning the
//                          sessions pinned to it (default 1)
//   --admission-batch=N    (server) max requests a worker admits per
//                          queue pop (default 16)
//   --ir                   print the lowered IR before running
//   --stats                print execution counters
//
// `carac serve` reads commands from stdin after Prepare(), one per line
// ('#' starts a comment):
//   load <Relation> <file.csv>   append a fact batch to a relation
//   update                       bring the fixpoint up to date (the first
//                                update is a full evaluation, later ones
//                                are incremental epochs) and print the
//                                epoch report
//   count <Relation>             print the relation's derived row count
//   dump <Relation>              print the relation's sorted rows (TSV)
//   stats                        print per-column index kinds, probe
//                                counters and adaptive re-kind events
//   save                         checkpoint durable state now
//                                (requires --snapshot-dir)
//   open                         recover durable state: load the snapshot
//                                and replay the fact-log tail
//   quit                         exit (EOF works too)
// Malformed input — unknown commands or relations, wrong-arity facts,
// unreadable files — prints a diagnostic and CONTINUES the session (a
// typo must not tear down live state); the session still exits 0. Only
// startup failures (unparsable program, failed Prepare) and a failed
// `open` (the database may be partially overwritten — serving it would
// lie) exit nonzero.
//
// `carac server` serves the same command protocol to N concurrent
// clients over Unix-domain and/or TCP sockets, one request per line.
// Responses are framed: zero or more "| "-prefixed payload lines, then
// "ok" or "err <diagnostic>". Reads (count/dump/stats) answer from the
// engine's epoch-snapshot read view (the last closed epoch) and are
// never blocked by an in-flight load/update; writes serialize through
// the single-writer epoch pipeline. Timing-bearing payloads (update's
// epoch report, open's restore summary) are suppressed so responses are
// a pure function of each session's request stream. `quit` ends one
// session; SIGINT/SIGTERM (or a failed `open`) shut the server down
// after in-flight requests complete.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/loader.h"
#include "analysis/programs.h"
#include "datalog/parser.h"
#include "core/engine.h"
#include "harness/table.h"
#include "net/commands.h"
#include "net/server.h"
#include "util/parse.h"
#include "util/timer.h"

namespace {

using namespace carac;

constexpr int64_t kMaxScale = 1'000'000'000'000;  // 1e12

struct Options {
  std::string command;
  std::string target;
  analysis::RuleOrder order = analysis::RuleOrder::kHandOptimized;
  core::EngineConfig config;
  int64_t scale = 1;
  std::string scale_arg;  // raw --scale value, kept for diagnostics
  // Raw --threads / --parallel-min-outer-rows values; -1 marks "invalid",
  // turned into a diagnostic + exit 2 by main() (same contract as --scale).
  int64_t threads = 1;
  std::string threads_arg;
  int64_t parallel_min_rows = 128;
  std::string parallel_min_rows_arg;
  // Raw --checkpoint-every value; -1 marks "invalid" (diagnostic + exit 2).
  int64_t checkpoint_every = 0;
  std::string checkpoint_every_arg;
  // Raw --index-kind / --probe-batch-window values; the bools mark
  // "invalid" (diagnostic + exit 2, same contract as --scale).
  bool index_kind_invalid = false;
  std::string index_kind_arg;
  // Raw --range-pushdown value; the bool marks "invalid" (diagnostic +
  // exit 2, same contract as --index-kind).
  bool range_pushdown_invalid = false;
  std::string range_pushdown_arg;
  int64_t probe_batch_window = 64;
  std::string probe_batch_window_arg;
  bool snapshot_dir_empty = false;  // --snapshot-dir= with no path.
  // Server flags. listen_tcp: -1 = off, 0 = ephemeral, else the port;
  // -2 marks "invalid" (diagnostic + exit 2, same contract as --scale).
  std::string listen_unix;
  bool listen_unix_empty = false;  // --listen-unix= with no path.
  int64_t listen_tcp = -1;
  std::string listen_tcp_arg;
  int64_t server_workers = 1;
  std::string server_workers_arg;
  int64_t admission_batch = 16;
  std::string admission_batch_arg;
  bool print_ir = false;
  bool print_stats = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: carac run <workload> [options]\n"
               "       carac dl <program.dl> [options]\n"
               "       carac tc <facts.csv> [options]\n"
               "       carac serve <program.dl> [options]\n"
               "       carac server <program.dl> --listen-unix=PATH and/or\n"
               "                    --listen-tcp=PORT [--server-workers=N]\n"
               "                    [--admission-batch=N] [options]\n"
               "       carac list\n"
               "options include --threads=N and --parallel-min-outer-rows=N\n"
               "(evaluation threads / parallel dispatch threshold),\n"
               "--index-kind={%s,auto} and\n"
               "--probe-batch-window=N (index organization / batched\n"
               "probe window), --adaptive-indexes (self-tuning index\n"
               "organization), --range-pushdown={on,off} (comparison\n"
               "builtins as index range probes) and\n"
               "--snapshot-dir=DIR / --checkpoint-every=N (durable state:\n"
               "serve gains save/open commands and crash recovery);\n"
               "see the header of tools/carac_cli.cc for the full list\n",
               storage::IndexKindNameList().c_str());
  return 2;
}

bool ParseFlag(const std::string& arg, Options* opts) {
  auto value_of = [&](const char* prefix) -> const char* {
    const size_t n = std::strlen(prefix);
    return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
  };
  if (arg == "--unoptimized") {
    opts->order = analysis::RuleOrder::kUnoptimized;
  } else if (arg == "--jit") {
    opts->config.mode = core::EvalMode::kJit;
  } else if (const char* b = value_of("--backend=")) {
    opts->config.mode = core::EvalMode::kJit;
    std::string backend = b;
    if (backend == "quotes") {
      opts->config.jit.backend = backends::BackendKind::kQuotes;
    } else if (backend == "bytecode") {
      opts->config.jit.backend = backends::BackendKind::kBytecode;
    } else if (backend == "lambda") {
      opts->config.jit.backend = backends::BackendKind::kLambda;
    } else if (backend == "irgen") {
      opts->config.jit.backend = backends::BackendKind::kIRGenerator;
    } else {
      return false;
    }
  } else if (const char* g = value_of("--granularity=")) {
    std::string level = g;
    if (level == "program") {
      opts->config.jit.granularity = core::Granularity::kProgram;
    } else if (level == "dowhile") {
      opts->config.jit.granularity = core::Granularity::kDoWhile;
    } else if (level == "unionall") {
      opts->config.jit.granularity = core::Granularity::kUnionAll;
    } else if (level == "union") {
      opts->config.jit.granularity = core::Granularity::kUnion;
    } else if (level == "spj") {
      opts->config.jit.granularity = core::Granularity::kSpj;
    } else {
      return false;
    }
  } else if (arg == "--async") {
    opts->config.jit.async = true;
  } else if (arg == "--snippet") {
    opts->config.jit.mode = backends::CompileMode::kSnippet;
  } else if (arg == "--no-indexes") {
    opts->config.use_indexes = false;
  } else if (const char* k = value_of("--index-kind=")) {
    opts->index_kind_arg = k;
    // Strict: a typo'd kind must not silently fall back to the default
    // organization (benchmark ablations would measure the wrong thing).
    storage::IndexKind kind;
    if (opts->index_kind_arg == "auto") {
      opts->config.index_kind.reset();
    } else if (storage::ParseIndexKind(opts->index_kind_arg, &kind)) {
      opts->config.index_kind = kind;
    } else {
      opts->index_kind_invalid = true;
    }
  } else if (const char* w = value_of("--probe-batch-window=")) {
    opts->probe_batch_window_arg = w;
    if (!util::ParseInt64(w, &opts->probe_batch_window) ||
        opts->probe_batch_window < 0 ||
        opts->probe_batch_window > std::numeric_limits<uint32_t>::max()) {
      opts->probe_batch_window = -1;
    }
  } else if (arg == "--adaptive-indexes") {
    opts->config.adaptive_indexes = true;
  } else if (const char* r = value_of("--range-pushdown=")) {
    opts->range_pushdown_arg = r;
    // Strict like --index-kind: a typo must not silently run with the
    // default (A/B ablations would measure the wrong configuration).
    if (opts->range_pushdown_arg == "on") {
      opts->config.range_pushdown = true;
    } else if (opts->range_pushdown_arg == "off") {
      opts->config.range_pushdown = false;
    } else {
      opts->range_pushdown_invalid = true;
    }
  } else if (arg == "--pull") {
    opts->config.engine_style = ir::EngineStyle::kPull;
  } else if (arg == "--aot" || arg == "--aot=facts") {
    opts->config.aot_reorder = true;
    opts->config.aot.use_fact_cardinalities = true;
  } else if (arg == "--aot=rules") {
    opts->config.aot_reorder = true;
    opts->config.aot.use_fact_cardinalities = false;
  } else if (const char* t = value_of("--threads=")) {
    opts->threads_arg = t;
    // Strict integer, bounded like the bench harness: a typo'd thread
    // count must not silently fall back to 1.
    if (!util::ParseInt64(t, &opts->threads) || opts->threads < 1 ||
        opts->threads > 256) {
      opts->threads = -1;
    }
  } else if (const char* m = value_of("--parallel-min-outer-rows=")) {
    opts->parallel_min_rows_arg = m;
    if (!util::ParseInt64(m, &opts->parallel_min_rows) ||
        opts->parallel_min_rows < 1 ||
        opts->parallel_min_rows > std::numeric_limits<uint32_t>::max()) {
      opts->parallel_min_rows = -1;
    }
  } else if (const char* d = value_of("--snapshot-dir=")) {
    opts->config.snapshot_dir = d;
    opts->snapshot_dir_empty = opts->config.snapshot_dir.empty();
  } else if (const char* u = value_of("--listen-unix=")) {
    opts->listen_unix = u;
    opts->listen_unix_empty = opts->listen_unix.empty();
  } else if (const char* p = value_of("--listen-tcp=")) {
    opts->listen_tcp_arg = p;
    // Strict like --scale: a typo'd port must not silently bind an
    // ephemeral one. 0 is valid and means "kernel picks".
    if (!util::ParseInt64(p, &opts->listen_tcp) || opts->listen_tcp < 0 ||
        opts->listen_tcp > 65535) {
      opts->listen_tcp = -2;
    }
  } else if (const char* n = value_of("--server-workers=")) {
    opts->server_workers_arg = n;
    if (!util::ParseInt64(n, &opts->server_workers) ||
        opts->server_workers < 1 || opts->server_workers > 64) {
      opts->server_workers = -1;
    }
  } else if (const char* a = value_of("--admission-batch=")) {
    opts->admission_batch_arg = a;
    if (!util::ParseInt64(a, &opts->admission_batch) ||
        opts->admission_batch < 1 || opts->admission_batch > 4096) {
      opts->admission_batch = -1;
    }
  } else if (const char* c = value_of("--checkpoint-every=")) {
    opts->checkpoint_every_arg = c;
    // Strict integer like --scale: a typo'd cadence must not silently
    // disable (or constant-trigger) checkpointing. 0 = manual only.
    if (!util::ParseInt64(c, &opts->checkpoint_every) ||
        opts->checkpoint_every < 0 || opts->checkpoint_every > kMaxScale) {
      opts->checkpoint_every = -1;
    }
  } else if (const char* s = value_of("--scale=")) {
    opts->scale_arg = s;
    // Reject garbage, overflow, and anything whose per-workload tuple
    // multiplication (up to 1500x) could overflow int64; main() turns
    // scale 0 into a diagnostic + exit 2.
    if (!util::ParseInt64(s, &opts->scale) || opts->scale > kMaxScale) {
      opts->scale = 0;
    }
  } else if (arg == "--ir") {
    opts->print_ir = true;
  } else if (arg == "--stats") {
    opts->print_stats = true;
  } else {
    return false;
  }
  return true;
}

analysis::Workload MakeNamedWorkload(const Options& opts, bool* ok) {
  *ok = true;
  const std::string& name = opts.target;
  const int64_t scale = opts.scale;
  if (name == "cspa") {
    analysis::CspaConfig config;
    config.total_tuples = 400 * scale;
    return analysis::MakeCspa(config, opts.order);
  }
  if (name == "csda") {
    analysis::CsdaConfig config;
    config.length = 1500 * scale;
    return analysis::MakeCsda(config);
  }
  if (name == "andersen") {
    analysis::SListConfig config;
    config.scale = scale;
    return analysis::MakeAndersen(config, opts.order);
  }
  if (name == "invfuns") {
    analysis::SListConfig config;
    config.scale = scale;
    return analysis::MakeInverseFunctions(config, opts.order);
  }
  if (name == "ackermann") return analysis::MakeAckermann(61, opts.order);
  if (name == "fibonacci") {
    return analysis::MakeFibonacci(25 * scale, opts.order);
  }
  if (name == "primes") return analysis::MakePrimes(500 * scale, opts.order);
  *ok = false;
  return {};
}

int RunWorkload(const Options& opts, analysis::Workload workload) {
  core::Engine engine(workload.program.get(), opts.config);
  util::Status status = engine.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (opts.print_ir) {
    std::fputs(engine.ir().ToString(*workload.program).c_str(), stdout);
  }
  util::Timer timer;
  status = engine.Run();
  const double seconds = timer.ElapsedSeconds();
  if (!status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu output tuples in %s s\n", workload.name.c_str(),
              engine.ResultSize(workload.output),
              harness::FormatSeconds(seconds).c_str());
  if (opts.print_stats) {
    std::printf("stats: %s\n", engine.stats().ToString().c_str());
  }
  return 0;
}

/// The `serve` command: Prepare() once, then apply stdin commands —
/// fact batches, update epochs and (with --snapshot-dir) durable
/// checkpoints — against the live engine. This is the CLI surface of
/// re-enterable evaluation: each `update` pays for the delta, not the
/// database, and `open` recovers a previous session's state in O(log
/// tail) instead of re-evaluating.
///
/// Error contract: malformed input (unknown command or relation, missing
/// arguments, trailing junk, wrong-arity facts, unreadable files) prints
/// a diagnostic and the session CONTINUES — in a long-lived updatable
/// database, a typo must not tear down the in-memory fixpoint. Only
/// startup failures and a failed `open` (see below) exit nonzero.
int RunServe(const Options& opts) {
  auto program = std::make_unique<datalog::Program>();
  util::Status status = datalog::ParseDatalogFile(opts.target, program.get());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  core::Engine engine(program.get(), opts.config);
  status = engine.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (opts.print_ir) {
    std::fputs(engine.ir().ToString(*program).c_str(), stdout);
  }

  net::ServeContext ctx;
  ctx.program = program.get();
  ctx.engine = &engine;
  ctx.snapshot_dir = opts.config.snapshot_dir;
  net::StdioWriter writer;

  std::string line;
  while (std::getline(std::cin, line)) {
    const net::ServeOutcome outcome =
        net::ExecuteServeLine(&ctx, std::move(line), &writer);
    // Responses must reach the client NOW: stdout is block-buffered on
    // pipes, so without the flush a programmatic client that waits for
    // this command's response before sending its next command deadlocks
    // against the unflushed buffer.
    std::fflush(stdout);
    std::fflush(stderr);
    if (outcome == net::ServeOutcome::kQuit) return 0;
    if (outcome == net::ServeOutcome::kFatal) return 1;
  }
  return 0;
}

/// SIGINT/SIGTERM handler target: RequestShutdown is one write(2) on a
/// self-pipe, the async-signal-safe way to stop a poll loop.
net::Server* g_server = nullptr;

void HandleShutdownSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

/// The `server` command: the serve protocol, concurrently, over
/// sockets. Same engine setup as serve; the serving layer itself lives
/// in src/net (see net::Server for the threading model and the
/// shutdown contract).
int RunServer(const Options& opts) {
  auto program = std::make_unique<datalog::Program>();
  util::Status status = datalog::ParseDatalogFile(opts.target, program.get());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  core::Engine engine(program.get(), opts.config);
  status = engine.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (opts.print_ir) {
    std::fputs(engine.ir().ToString(*program).c_str(), stdout);
  }

  std::mutex write_mutex;
  net::ServeContext ctx;
  ctx.program = program.get();
  ctx.engine = &engine;
  ctx.snapshot_dir = opts.config.snapshot_dir;
  ctx.snapshot_reads = true;
  ctx.deterministic_replies = true;
  ctx.write_mutex = &write_mutex;

  net::ServerConfig server_config;
  server_config.unix_path = opts.listen_unix;
  server_config.tcp_port = static_cast<int>(opts.listen_tcp);
  server_config.num_workers = static_cast<int>(opts.server_workers);
  server_config.admission_batch =
      static_cast<size_t>(opts.admission_batch);

  net::Server server(&ctx, server_config);
  status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server failed: %s\n", status.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  // The ready banner, flushed: clients (and the test harness) wait for
  // it — and parse the resolved port out of it — before connecting.
  if (!opts.listen_unix.empty()) {
    std::printf("serving unix:%s\n", opts.listen_unix.c_str());
  }
  if (opts.listen_tcp >= 0) {
    std::printf("serving tcp:%d\n", server.tcp_port());
  }
  std::printf("ready\n");
  std::fflush(stdout);

  server.Wait();
  g_server = nullptr;
  return server.fatal_error() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (argc < 2) return Usage();
  opts.command = argv[1];

  if (opts.command == "list") {
    std::printf("cspa csda andersen invfuns ackermann fibonacci primes\n");
    return 0;
  }
  if (argc < 3) return Usage();
  opts.target = argv[2];
  for (int i = 3; i < argc; ++i) {
    if (!ParseFlag(argv[i], &opts)) {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return Usage();
    }
  }
  if (opts.scale < 1) {
    std::fprintf(stderr,
                 "invalid --scale=%s: scale must be an integer in "
                 "[1, %lld]\n",
                 opts.scale_arg.c_str(),
                 static_cast<long long>(kMaxScale));
    return 2;
  }
  if (opts.threads < 1) {
    std::fprintf(stderr,
                 "invalid --threads=%s: threads must be an integer in "
                 "[1, 256]\n",
                 opts.threads_arg.c_str());
    return 2;
  }
  if (opts.parallel_min_rows < 1) {
    std::fprintf(stderr,
                 "invalid --parallel-min-outer-rows=%s: expected an integer "
                 "in [1, %llu]\n",
                 opts.parallel_min_rows_arg.c_str(),
                 static_cast<unsigned long long>(
                     std::numeric_limits<uint32_t>::max()));
    return 2;
  }
  if (opts.index_kind_invalid) {
    std::fprintf(stderr,
                 "invalid --index-kind=%s: expected one of %s, or auto\n",
                 opts.index_kind_arg.c_str(),
                 storage::IndexKindNameList().c_str());
    return 2;
  }
  if (opts.range_pushdown_invalid) {
    std::fprintf(stderr, "invalid --range-pushdown=%s: expected on or off\n",
                 opts.range_pushdown_arg.c_str());
    return 2;
  }
  if (opts.probe_batch_window < 0) {
    std::fprintf(stderr,
                 "invalid --probe-batch-window=%s: expected an integer in "
                 "[0, %llu]\n",
                 opts.probe_batch_window_arg.c_str(),
                 static_cast<unsigned long long>(
                     std::numeric_limits<uint32_t>::max()));
    return 2;
  }
  if (opts.snapshot_dir_empty) {
    std::fprintf(stderr, "invalid --snapshot-dir=: needs a directory path\n");
    return 2;
  }
  if (opts.checkpoint_every < 0) {
    std::fprintf(stderr,
                 "invalid --checkpoint-every=%s: expected an integer in "
                 "[0, %lld]\n",
                 opts.checkpoint_every_arg.c_str(),
                 static_cast<long long>(kMaxScale));
    return 2;
  }
  if (opts.checkpoint_every > 0 && opts.config.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--checkpoint-every requires --snapshot-dir "
                 "(nowhere to write the checkpoint)\n");
    return 2;
  }
  if (opts.listen_unix_empty) {
    std::fprintf(stderr, "invalid --listen-unix=: needs a socket path\n");
    return 2;
  }
  if (opts.listen_tcp == -2) {
    std::fprintf(stderr,
                 "invalid --listen-tcp=%s: expected a port in [0, 65535] "
                 "(0 = ephemeral)\n",
                 opts.listen_tcp_arg.c_str());
    return 2;
  }
  if (opts.server_workers < 1) {
    std::fprintf(stderr,
                 "invalid --server-workers=%s: expected an integer in "
                 "[1, 64]\n",
                 opts.server_workers_arg.c_str());
    return 2;
  }
  if (opts.admission_batch < 1) {
    std::fprintf(stderr,
                 "invalid --admission-batch=%s: expected an integer in "
                 "[1, 4096]\n",
                 opts.admission_batch_arg.c_str());
    return 2;
  }
  if (opts.command == "server" && opts.listen_unix.empty() &&
      opts.listen_tcp < 0) {
    std::fprintf(stderr,
                 "server needs --listen-unix=PATH and/or --listen-tcp=PORT "
                 "(nothing to listen on)\n");
    return 2;
  }
  opts.config.probe_batch_window =
      static_cast<uint32_t>(opts.probe_batch_window);
  opts.config.num_threads = static_cast<int>(opts.threads);
  opts.config.parallel_min_outer_rows =
      static_cast<uint32_t>(opts.parallel_min_rows);
  opts.config.checkpoint_every =
      static_cast<uint64_t>(opts.checkpoint_every);

  if (opts.command == "run") {
    bool ok = false;
    analysis::Workload workload = MakeNamedWorkload(opts, &ok);
    if (!ok) {
      std::fprintf(stderr, "unknown workload: %s (try `carac list`)\n",
                   opts.target.c_str());
      return 2;
    }
    return RunWorkload(opts, std::move(workload));
  }

  if (opts.command == "dl") {
    auto program = std::make_unique<datalog::Program>();
    util::Status status =
        datalog::ParseDatalogFile(opts.target, program.get());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    core::Engine engine(program.get(), opts.config);
    status = engine.Prepare();
    if (!status.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (opts.print_ir) {
      std::fputs(engine.ir().ToString(*program).c_str(), stdout);
    }
    util::Timer timer;
    status = engine.Run();
    const double seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
      return 1;
    }
    harness::TablePrinter table({"relation", "derived tuples"});
    for (datalog::PredicateId id = 0; id < program->NumPredicates(); ++id) {
      if (!program->IsIdb(id)) continue;
      table.AddRow({program->PredicateName(id),
                    std::to_string(engine.ResultSize(id))});
    }
    table.Print();
    std::printf("evaluated %s in %s s\n", opts.target.c_str(),
                harness::FormatSeconds(seconds).c_str());
    if (opts.print_stats) {
      std::printf("stats: %s\n", engine.stats().ToString().c_str());
    }
    return 0;
  }

  if (opts.command == "serve") {
    return RunServe(opts);
  }

  if (opts.command == "server") {
    return RunServer(opts);
  }

  if (opts.command == "tc") {
    analysis::Workload workload;
    workload.name = "TransitiveClosure(" + opts.target + ")";
    workload.program = std::make_unique<datalog::Program>();
    datalog::Dsl dsl(workload.program.get());
    auto edge = dsl.Relation("Edge", 2);
    auto path = dsl.Relation("Path", 2);
    auto [x, y, z] = dsl.Vars<3>();
    path(x, y) <<= edge(x, y);
    path(x, z) <<= path(x, y) & edge(y, z);
    workload.output = path.id();
    util::Status status = analysis::LoadFactsCsv(
        opts.target, workload.program.get(), edge.id());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return RunWorkload(opts, std::move(workload));
  }

  return Usage();
}
