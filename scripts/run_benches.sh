#!/usr/bin/env bash
# Run the paper-reproduction bench binaries and aggregate wall-clock
# timings into a BENCH_*.json perf-trajectory snapshot.
#
# Usage:
#   scripts/run_benches.sh [--quick] [--large] [--build-dir DIR] [--out FILE]
#                          [--baseline FILE] [--threads N] [--sweeps N]
#                          [--ab OLD_BUILD_DIR]
#
#   --quick       skip the benches that take >20s at small scale
#   --large       run with CARAC_BENCH_SCALE=large (paper-sized inputs)
#   --build-dir   directory containing bench/ binaries
#                 (default: autodetect build, build/release)
#   --out         output JSON path (default: <repo>/BENCH_pr9.json)
#   --baseline    snapshot to diff against (default: <repo>/BENCH_pr7.json;
#                 a per-bench delta table is printed when it exists)
#   --threads N   evaluation threads passed to the benches that accept the
#                 flag (fig6/fig8/table2); recorded as "threads" in the
#                 JSON. Default 1 keeps snapshots comparable to earlier
#                 BENCH_*.json files. bench_parallel_scaling always sweeps
#                 1/2/4/8 threads; its measurements land in the JSON's
#                 "parallel_scaling" section.
#   --sweeps N    run each bench N times back-to-back and record the
#                 median wall-clock (default 1). Use on noisy/shared
#                 hosts, where single draws swing ±10-20%; the chosen N
#                 is recorded as "sweeps" in the JSON.
#   --ab DIR      interleaved A/B mode: DIR holds an OLD build's bench
#                 binaries; every sweep runs both builds back-to-back
#                 (alternating which goes first, so thermal/frequency
#                 drift hits both sides equally — the failure mode of
#                 comparing two snapshots taken hours apart on a shared
#                 host). The old build's median lands in the JSON as
#                 "ab_seconds" per bench and a new-vs-old delta table is
#                 printed. Pair with --sweeps 3+ for stable medians.
#
# Each bench binary's stdout is saved next to the JSON under bench_logs/.
#
# Schema carac-bench/v3 added an "incremental" section: per workload and
# delta size, bench_incremental's epoch latency vs full re-evaluation
# (full/epoch seconds + speedup), lifted from its INCREMENTAL lines.
# Schema carac-bench/v4 adds a "persistence" section lifted from
# bench_persistence's PERSISTENCE lines: snapshot write/load cost (kind
# "snapshot") and recovery-vs-recompute latency (kind "recover", per
# workload and log-tail size).
# Schema carac-bench/v5 adds an "index" section lifted from
# bench_index_micro's INDEX lines: per-IndexKind insert/probe/range/
# batched-probe throughput (metric "batch" carries the batched-vs-point
# speedup).
# Schema carac-bench/v6 adds an "adaptive" section lifted from
# bench_adaptive_convergence's ADAPTIVE lines (per-phase static sweep vs
# the self-tuning policy, re-kind events, steady-state ratios), plus the
# optional per-bench "ab_seconds" field written by --ab mode.
# Schema carac-bench/v7 adds a "range" section lifted from
# bench_range_pushdown's RANGE lines: per-IndexKind, per-selectivity
# engine wall-clock with range pushdown on vs off (interleaved arms;
# "speedup" is off/on, so >1 means the pushdown won).

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode=full
scale=small
build_dir=""
out="$repo_root/BENCH_pr9.json"
baseline="$repo_root/BENCH_pr7.json"
threads=1
sweeps=1
ab_dir=""

while [ $# -gt 0 ]; do
  case "$1" in
    --quick) mode=quick ;;
    --large) scale=large ;;
    --threads)
      [ $# -ge 2 ] || { echo "error: --threads needs a value" >&2; exit 2; }
      threads="$2"
      case "$threads" in
        ''|*[!0-9]*) threads=-1 ;;
      esac
      if [ "$threads" -lt 1 ] || [ "$threads" -gt 256 ]; then
        echo "error: --threads wants an integer in [1, 256], got: $2" >&2
        exit 2
      fi
      shift ;;
    --sweeps)
      [ $# -ge 2 ] || { echo "error: --sweeps needs a value" >&2; exit 2; }
      sweeps="$2"
      case "$sweeps" in
        ''|*[!0-9]*) sweeps=-1 ;;
      esac
      if [ "$sweeps" -lt 1 ] || [ "$sweeps" -gt 100 ]; then
        echo "error: --sweeps wants an integer in [1, 100], got: $2" >&2
        exit 2
      fi
      shift ;;
    --build-dir)
      [ $# -ge 2 ] || { echo "error: --build-dir needs a value" >&2; exit 2; }
      build_dir="$2"; shift ;;
    --ab)
      [ $# -ge 2 ] || { echo "error: --ab needs a build dir" >&2; exit 2; }
      ab_dir="$2"; shift ;;
    --out)
      [ $# -ge 2 ] || { echo "error: --out needs a value" >&2; exit 2; }
      out="$2"; shift ;;
    --baseline)
      [ $# -ge 2 ] || { echo "error: --baseline needs a value" >&2; exit 2; }
      baseline="$2"; shift ;;
    -h|--help) sed -n '2,36p' "$0"; exit 0 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

if [ -z "$build_dir" ]; then
  for candidate in "$repo_root/build" "$repo_root/build/release"; do
    if [ -d "$candidate/bench" ]; then build_dir="$candidate"; break; fi
  done
fi
if [ -z "$build_dir" ] || [ ! -d "$build_dir/bench" ]; then
  echo "error: no built bench/ directory found." >&2
  echo "build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
if [ -n "$ab_dir" ] && [ ! -d "$ab_dir/bench" ]; then
  echo "error: --ab dir has no bench/ subdirectory: $ab_dir" >&2
  exit 1
fi

benches=(
  bench_fig5_codegen
  bench_fig6_macro_unopt
  bench_fig7_micro_unopt
  bench_fig8_macro_opt
  bench_fig9_micro_opt
  bench_fig10_aot
  bench_table1_interpreted
  bench_table2_sota
  bench_ablation_freshness
  bench_ablation_granularity
  bench_ablation_storage
  bench_storage_micro
  bench_incremental
  bench_index_micro
  bench_adaptive_convergence
  bench_parallel_scaling
  bench_persistence
  bench_range_pushdown
)
# >20s each at small scale; dropped in --quick mode.
slow_benches=" bench_fig6_macro_unopt bench_table1_interpreted bench_ablation_freshness bench_adaptive_convergence "
# Benches that accept --threads (the Carac-side thread dimension).
threaded_benches=" bench_fig6_macro_unopt bench_fig8_macro_opt bench_table2_sota bench_incremental bench_persistence "

log_dir="$(dirname "$out")/bench_logs"
mkdir -p "$log_dir"

if [ "$scale" = large ]; then
  export CARAC_BENCH_SCALE=large
else
  unset CARAC_BENCH_SCALE || true
fi

rows=""
failures=0
scaling_ran=false
incremental_ran=false
persistence_ran=false
index_ran=false
adaptive_ran=false
range_ran=false
for bench in "${benches[@]}"; do
  exe="$build_dir/bench/$bench"
  skipped=false
  if [ "$mode" = quick ] && [[ "$slow_benches" == *" $bench "* ]]; then
    skipped=true
  fi
  if [ ! -x "$exe" ]; then
    # bench_storage_micro is optional (needs google-benchmark).
    echo "skip  $bench (not built)"
    skipped=true
  fi

  if [ "$skipped" = true ]; then
    rows="$rows    {\"name\": \"$bench\", \"skipped\": true},\n"
    continue
  fi

  # Expanded as ${bench_args[@]+...} below: plain "${bench_args[@]}" on an
  # empty array trips `set -u` on bash < 4.4.
  bench_args=()
  if [ "$threads" != 1 ] && [[ "$threaded_benches" == *" $bench "* ]]; then
    bench_args=(--threads "$threads")
  fi

  # In --ab mode the same bench from the old build runs inside the same
  # sweep (old log lands in <bench>.old.txt). A bench the old build does
  # not have (newly added this PR) just runs single-armed.
  ab_exe=""
  if [ -n "$ab_dir" ] && [ -x "$ab_dir/bench/$bench" ]; then
    ab_exe="$ab_dir/bench/$bench"
  fi

  printf 'run   %s ... ' "$bench"
  # Median wall-clock of --sweeps back-to-back runs (worst exit code
  # wins; the log keeps the last run's stdout). Same principle the
  # harness's MeasureMedian applies inside a bench, applied to whole
  # binaries so one noisy draw on a shared host cannot skew a snapshot.
  sweep_times=""
  ab_times=""
  code=0
  ab_code=0
  for _sweep in $(seq 1 "$sweeps"); do
    # A/B arms alternate which build goes first each sweep, so frequency
    # ramps and cache warmth cannot systematically favor one side.
    if [ -z "$ab_exe" ]; then
      arms="new"
    elif [ $((_sweep % 2)) -eq 0 ]; then
      arms="old new"
    else
      arms="new old"
    fi
    for arm in $arms; do
      if [ "$arm" = new ]; then
        arm_exe="$exe"; arm_log="$log_dir/$bench.txt"
      else
        arm_exe="$ab_exe"; arm_log="$log_dir/$bench.old.txt"
      fi
      start_ns=$(date +%s%N)
      if "$arm_exe" ${bench_args[@]+"${bench_args[@]}"} \
          > "$arm_log" 2>&1; then
        sweep_code=0
      else
        sweep_code=$?
      fi
      end_ns=$(date +%s%N)
      arm_secs=$(awk -v d=$((end_ns - start_ns)) \
        'BEGIN{printf "%.3f", d/1e9}')
      if [ "$arm" = new ]; then
        sweep_times="$sweep_times $arm_secs"
        [ "$sweep_code" -ne 0 ] && code=$sweep_code
      else
        ab_times="$ab_times $arm_secs"
        [ "$sweep_code" -ne 0 ] && ab_code=$sweep_code
      fi
    done
  done
  if [ "$code" -ne 0 ]; then
    failures=$((failures + 1))
  fi
  if [ "$bench" = bench_parallel_scaling ] && [ "$code" = 0 ]; then
    scaling_ran=true
  fi
  if [ "$bench" = bench_incremental ] && [ "$code" = 0 ]; then
    incremental_ran=true
  fi
  if [ "$bench" = bench_persistence ] && [ "$code" = 0 ]; then
    persistence_ran=true
  fi
  if [ "$bench" = bench_index_micro ] && [ "$code" = 0 ]; then
    index_ran=true
  fi
  if [ "$bench" = bench_adaptive_convergence ] && [ "$code" = 0 ]; then
    adaptive_ran=true
  fi
  if [ "$bench" = bench_range_pushdown ] && [ "$code" = 0 ]; then
    range_ran=true
  fi
  # shellcheck disable=SC2086
  seconds=$(printf '%s\n' $sweep_times | sort -n |
    awk '{a[NR]=$1} END{print a[int((NR+1)/2)]}')
  ab_field=""
  if [ -n "$ab_exe" ] && [ "$ab_code" -eq 0 ]; then
    # shellcheck disable=SC2086
    ab_seconds=$(printf '%s\n' $ab_times | sort -n |
      awk '{a[NR]=$1} END{print a[int((NR+1)/2)]}')
    ab_delta=$(awk -v n="$seconds" -v o="$ab_seconds" \
      'BEGIN{if (o > 0) printf "%+.1f%%", 100*(n-o)/o; else printf "-"}')
    echo "${seconds}s vs old ${ab_seconds}s ($ab_delta, exit $code," \
      "median of $sweeps)"
    ab_field=" \"ab_seconds\": $ab_seconds,"
  elif [ -n "$ab_exe" ]; then
    echo "${seconds}s (exit $code, median of $sweeps; old arm FAILED," \
      "exit $ab_code)"
  elif [ -n "$ab_dir" ]; then
    echo "${seconds}s (exit $code, median of $sweeps; no old binary)"
  else
    echo "${seconds}s (exit $code, median of $sweeps)"
  fi
  rows="$rows    {\"name\": \"$bench\", \"skipped\": false,"
  rows="$rows \"seconds\": $seconds,$ab_field \"exit_code\": $code},\n"
done
rows="${rows%,\\n}"

# The thread-scaling measurements, lifted from bench_parallel_scaling's
# machine-readable SCALING lines. Gated on the bench having run (and
# succeeded) in THIS invocation: a stale log from an earlier sweep must
# not lend its numbers to a snapshot that skipped the bench.
scaling_rows=""
scaling_log="$log_dir/bench_parallel_scaling.txt"
if [ "$scaling_ran" = true ] && [ -f "$scaling_log" ]; then
  scaling_rows=$(awk '/^SCALING /{
    printf "    {\"workload\": \"%s\", \"threads\": %s, \"seconds\": %s, \"speedup\": %s},\n", \
      $2, substr($3, 9), substr($4, 9), substr($5, 9)
  }' "$scaling_log")
  scaling_rows="${scaling_rows%,}"
fi

# Epoch-latency measurements, lifted from bench_incremental's
# machine-readable INCREMENTAL lines. Same staleness gate as the scaling
# section: only a run from THIS invocation contributes.
incremental_rows=""
incremental_log="$log_dir/bench_incremental.txt"
if [ "$incremental_ran" = true ] && [ -f "$incremental_log" ]; then
  incremental_rows=$(awk '/^INCREMENTAL /{
    printf "    {\"workload\": \"%s\", \"delta_pct\": %s, \"full_seconds\": %s, \"epoch_seconds\": %s, \"speedup\": %s},\n", \
      $2, substr($3, 11), substr($4, 6), substr($5, 7), substr($6, 9)
  }' "$incremental_log")
  incremental_rows="${incremental_rows%,}"
fi

# Durable-state measurements, lifted from bench_persistence's
# PERSISTENCE lines (workload + kind, then generic key=value fields).
# Same staleness gate as the other sections: only a run from THIS
# invocation contributes.
persistence_rows=""
persistence_log="$log_dir/bench_persistence.txt"
if [ "$persistence_ran" = true ] && [ -f "$persistence_log" ]; then
  persistence_rows=$(awk '/^PERSISTENCE /{
    printf "    {\"workload\": \"%s\", \"kind\": \"%s\"", $2, $3
    for (i = 4; i <= NF; ++i) {
      split($i, kv, "=")
      printf ", \"%s\": %s", kv[1], kv[2]
    }
    printf "},\n"
  }' "$persistence_log")
  persistence_rows="${persistence_rows%,}"
fi

# Per-IndexKind micro-costs, lifted from bench_index_micro's INDEX lines
# (kind + metric, then generic key=value fields). Same staleness gate as
# the other sections: only a run from THIS invocation contributes.
index_rows=""
index_log="$log_dir/bench_index_micro.txt"
if [ "$index_ran" = true ] && [ -f "$index_log" ]; then
  index_rows=$(awk '/^INDEX /{
    printf "    {\"kind\": \"%s\", \"metric\": \"%s\"", $2, $3
    for (i = 4; i <= NF; ++i) {
      split($i, kv, "=")
      printf ", \"%s\": %s", kv[1], kv[2]
    }
    printf "},\n"
  }' "$index_log")
  index_rows="${index_rows%,}"
fi

# Self-tuning-policy measurements, lifted from ADAPTIVE lines of
# bench_adaptive_convergence. Lines carry either a bare record word
# (rekind / steady / summary) or start straight at key=value fields
# (the per-config phase timings); string-valued fields (kind names,
# config/phase labels) are quoted, numerics pass through. Same
# staleness gate as the other sections.
adaptive_rows=""
adaptive_log="$log_dir/bench_adaptive_convergence.txt"
if [ "$adaptive_ran" = true ] && [ -f "$adaptive_log" ]; then
  adaptive_rows=$(awk '/^ADAPTIVE /{
    if ($2 ~ /=/) { printf "    {\"record\": \"phase\""; first = 2 }
    else          { printf "    {\"record\": \"%s\"", $2; first = 3 }
    for (i = first; i <= NF; ++i) {
      split($i, kv, "=")
      if (kv[2] ~ /^-?[0-9]+([.][0-9]+)?$/)
        printf ", \"%s\": %s", kv[1], kv[2]
      else
        printf ", \"%s\": \"%s\"", kv[1], kv[2]
    }
    printf "},\n"
  }' "$adaptive_log")
  adaptive_rows="${adaptive_rows%,}"
fi

# Range-pushdown A/B measurements, lifted from bench_range_pushdown's
# RANGE lines (kind + selectivity label, then generic key=value fields).
# Same staleness gate as the other sections: only a run from THIS
# invocation contributes.
range_rows=""
range_log="$log_dir/bench_range_pushdown.txt"
if [ "$range_ran" = true ] && [ -f "$range_log" ]; then
  range_rows=$(awk '/^RANGE /{
    printf "    {\"kind\": \"%s\", \"selectivity\": \"%s\"", $2, $3
    for (i = 4; i <= NF; ++i) {
      split($i, kv, "=")
      printf ", \"%s\": %s", kv[1], kv[2]
    }
    printf "},\n"
  }' "$range_log")
  range_rows="${range_rows%,}"
fi

{
  echo "{"
  echo "  \"schema\": \"carac-bench/v7\","
  echo "  \"timestamp_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"mode\": \"$mode\","
  echo "  \"scale\": \"$scale\","
  echo "  \"threads\": $threads,"
  echo "  \"sweeps\": $sweeps,"
  if [ -n "$ab_dir" ]; then
    echo "  \"ab_build_dir\": \"$ab_dir\","
  fi
  echo "  \"host\": {"
  echo "    \"uname\": \"$(uname -srm)\","
  echo "    \"nproc\": $(nproc),"
  echo "    \"compiler\": \"$(c++ --version | head -1 | sed 's/"/\\"/g')\""
  echo "  },"
  echo "  \"benches\": ["
  printf '%b\n' "$rows"
  echo "  ],"
  echo "  \"parallel_scaling\": ["
  if [ -n "$scaling_rows" ]; then printf '%s\n' "$scaling_rows"; fi
  echo "  ],"
  echo "  \"incremental\": ["
  if [ -n "$incremental_rows" ]; then printf '%s\n' "$incremental_rows"; fi
  echo "  ],"
  echo "  \"persistence\": ["
  if [ -n "$persistence_rows" ]; then printf '%s\n' "$persistence_rows"; fi
  echo "  ],"
  echo "  \"index\": ["
  if [ -n "$index_rows" ]; then printf '%s\n' "$index_rows"; fi
  echo "  ],"
  echo "  \"adaptive\": ["
  if [ -n "$adaptive_rows" ]; then printf '%s\n' "$adaptive_rows"; fi
  echo "  ],"
  echo "  \"range\": ["
  if [ -n "$range_rows" ]; then printf '%s\n' "$range_rows"; fi
  echo "  ]"
  echo "}"
} > "$out"

echo "wrote $out (logs in $log_dir/)"

# Per-bench delta table against the baseline snapshot, so a perf
# regression (or win) is visible at the end of every run.
if [ -f "$baseline" ] && [ "$baseline" != "$out" ] \
    && command -v python3 >/dev/null 2>&1; then
  python3 - "$baseline" "$out" <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    new = json.load(f)

def seconds(snap):
    return {b["name"]: b.get("seconds")
            for b in snap.get("benches", []) if not b.get("skipped")}

base_s, new_s = seconds(base), seconds(new)
if base.get("mode") != new.get("mode") or base.get("scale") != new.get("scale"):
    print("note: baseline mode/scale (%s/%s) differs from this run (%s/%s)" %
          (base.get("mode"), base.get("scale"),
           new.get("mode"), new.get("scale")))
if base.get("threads", 1) != new.get("threads", 1):
    print("note: baseline threads=%s differs from this run's threads=%s" %
          (base.get("threads", 1), new.get("threads", 1)))

rows = [(n, base_s.get(n), t) for n, t in new_s.items()]
width = max((len(n) for n, _, _ in rows), default=10)
print()
print("delta vs %s:" % sys.argv[1])
print("%-*s  %9s  %9s  %8s" % (width, "bench", "base (s)", "new (s)", "delta"))
for name, b, t in rows:
    if b is None or b <= 0:
        print("%-*s  %9s  %9.3f  %8s" % (width, name, "-", t, "-"))
    else:
        print("%-*s  %9.3f  %9.3f  %+7.1f%%" %
              (width, name, b, t, 100.0 * (t - b) / b))
PYEOF
fi

if [ "$failures" -gt 0 ]; then
  echo "error: $failures bench(es) failed" >&2
  exit 1
fi
