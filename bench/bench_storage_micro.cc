// google-benchmark micro-costs of the storage substrate: tuple inserts,
// index probes, swap-clear-merge, and the interpreter's SPJ kernel. These
// are the constants the macro results stand on.
//
// Every case pins an explicit Iterations() count (a fixed workload, sized
// from the adaptive iteration counts of the seed run) instead of letting
// google-benchmark time-target. With adaptive timing the binary's
// wall-clock is constant by construction — faster storage just runs more
// iterations — which makes the BENCH_*.json perf trajectory blind to
// storage wins. A fixed workload makes binary wall-clock comparable
// across commits; per-op Time/CPU columns are unaffected.

#include <benchmark/benchmark.h>

#include <functional>

#include "analysis/factgen.h"
#include "datalog/dsl.h"
#include "ir/interpreter.h"
#include "ir/lowering.h"
#include "storage/database.h"

namespace {

using namespace carac;

void BM_RelationInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Relation rel("R", 2);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      rel.Insert({i, i + 1});
    }
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationInsert)->Arg(1000)->Iterations(7000);
BENCHMARK(BM_RelationInsert)->Arg(10000)->Iterations(700);

void BM_RelationInsertIndexed(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Relation rel("R", 2);
    rel.DeclareIndex(0);
    rel.DeclareIndex(1);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      rel.Insert({i % 97, i});
    }
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationInsertIndexed)->Arg(1000)->Iterations(3000);
BENCHMARK(BM_RelationInsertIndexed)->Arg(10000)->Iterations(350);

void BM_IndexProbe(benchmark::State& state) {
  storage::Relation rel("R", 2);
  rel.DeclareIndex(0);
  for (int64_t i = 0; i < 10000; ++i) rel.Insert({i % 128, i});
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.Probe(0, key).size());
    key = (key + 1) % 128;
  }
}
BENCHMARK(BM_IndexProbe)->Iterations(150000000);

void BM_Contains(benchmark::State& state) {
  storage::Relation rel("R", 2);
  for (int64_t i = 0; i < 10000; ++i) rel.Insert({i, i + 1});
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.Contains({key, key + 1}));
    key = (key + 1) % 20000;  // Half hits, half misses.
  }
}
BENCHMARK(BM_Contains)->Iterations(18000000);

void BM_SwapClearMerge(benchmark::State& state) {
  storage::DatabaseSet db;
  const auto r = db.AddRelation("R", 2);
  for (auto _ : state) {
    state.PauseTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      db.Get(r, storage::DbKind::kDeltaNew).Insert({i, i});
    }
    state.ResumeTiming();
    db.SwapClearMerge({r});
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwapClearMerge)->Arg(1000)->Iterations(20000);

void BM_InterpreterSpjKernel(benchmark::State& state) {
  datalog::Program program;
  datalog::Dsl dsl(&program);
  auto edge = dsl.Relation("Edge", 2);
  auto out = dsl.Relation("Out", 2);
  auto [x, y, z] = dsl.Vars<3>();
  out(x, z) <<= edge(x, y) & edge(y, z);
  const auto edges = analysis::GenerateSparseGraph(1, 500,
                                                   state.range(0));
  for (const auto& e : edges) edge.Fact(e.first, e.second);
  ir::IRProgram irp;
  CARAC_CHECK_OK(ir::LowerProgram(&program, true, &irp));

  // Find the naive SPJ node.
  ir::IROp* spj = nullptr;
  std::function<void(ir::IROp*)> find = [&](ir::IROp* op) {
    if (op->kind == ir::OpKind::kSpj) spj = op;
    for (auto& c : op->children) find(c.get());
  };
  find(irp.root.get());

  ir::ExecContext ctx(&program.db());
  for (auto _ : state) {
    program.db().Get(out.id(), storage::DbKind::kDeltaNew).Clear();
    ir::RunSubquery(ctx, *spj);
  }
}
BENCHMARK(BM_InterpreterSpjKernel)->Arg(1000)->Iterations(5000);
BENCHMARK(BM_InterpreterSpjKernel)->Arg(4000)->Iterations(250);

}  // namespace

BENCHMARK_MAIN();
