// Reproduces Fig. 8: macrobenchmark speedup (or slowdown) of the JIT
// configurations applied to already *hand-optimized* input programs,
// relative to interpreting those programs (adds CSDA).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace carac;
  const int threads = bench::ThreadsFromArgs(argc, argv);
  const bench::Sizes sizes = bench::Sizes::Get();
  bench::PrintSpeedupFigure(
      "Fig. 8: macrobenchmarks — speedup over \"hand-optimized\"",
      {{"Andersen", false},
       {"InvFuns", false},
       {"CSPA", true},
       {"CSDA", true}},
      analysis::RuleOrder::kHandOptimized,
      /*include_hand_row=*/false, sizes, threads);
  std::printf("\nExpected shape: values cluster around 1x (the JIT must "
              "not wreck good plans);\nIRGenerator can exceed 1x on CSDA "
              "(cheap per-iteration build/probe swap, §VI-B2).\n");
  return 0;
}
