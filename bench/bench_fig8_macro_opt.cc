// Reproduces Fig. 8: macrobenchmark speedup (or slowdown) of the JIT
// configurations applied to already *hand-optimized* input programs,
// relative to interpreting those programs (adds CSDA).

#include "bench_common.h"

int main() {
  using namespace carac;
  const bench::Sizes sizes = bench::Sizes::Get();
  bench::PrintSpeedupFigure(
      "Fig. 8: macrobenchmarks — speedup over \"hand-optimized\"",
      {{"Andersen", false},
       {"InvFuns", false},
       {"CSPA", true},
       {"CSDA", true}},
      analysis::RuleOrder::kHandOptimized,
      /*include_hand_row=*/false, sizes);
  std::printf("\nExpected shape: values cluster around 1x (the JIT must "
              "not wreck good plans);\nIRGenerator can exceed 1x on CSDA "
              "(cheap per-iteration build/probe swap, §VI-B2).\n");
  return 0;
}
