// Durable-state cost model: snapshot write/load throughput, and the
// headline recovery claim — restarting from snapshot + fact-log tail is
// several times cheaper than re-evaluating the database from its inputs.
//
//   snapshot micro  SaveSnapshot / OpenSnapshot wall-clock and MB/s over
//                   a tc closure at fixpoint (sub-second; this is the
//                   slice the CI bench-smoke job runs via --micro).
//   recover         For each workload and log-tail size (1% and 10% of
//                   the EDB): `full` re-evaluates the union of the facts
//                   from scratch (the no-persistence restart), `recover`
//                   times Engine::Restore() — snapshot load + replay of
//                   the committed tail through one incremental epoch.
//                   Both arms must land on the same output cardinality.
//
// Machine-readable PERSISTENCE lines feed the "persistence" section of
// scripts/run_benches.sh's JSON snapshot (carac-bench/v4).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "bench_common.h"
#include "core/engine.h"
#include "storage/database.h"
#include "util/timer.h"

namespace {

using namespace carac;

constexpr int kReps = 3;

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string ScratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("carac_bench_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Per-relation fact split: head = the pre-loaded database, tail = the
/// delta that lands in the fact log (same protocol as bench_incremental).
struct FactSplit {
  std::vector<std::vector<storage::Tuple>> head;
  std::vector<std::vector<storage::Tuple>> tail;
  size_t tail_rows = 0;
};

FactSplit SplitFacts(const analysis::Workload& w, double delta_frac) {
  const storage::DatabaseSet& db = w.program->db();
  FactSplit split;
  split.head.resize(db.NumRelations());
  split.tail.resize(db.NumRelations());
  for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
    const storage::Relation& rel = db.Get(id, storage::DbKind::kDerived);
    const size_t rows = rel.NumRows();
    const size_t tail_n =
        rows >= 10 ? std::max<size_t>(1, static_cast<size_t>(
                                            static_cast<double>(rows) *
                                            delta_frac))
                   : 0;
    for (storage::RowId row = 0; row < rows; ++row) {
      auto& dest = row < rows - tail_n ? split.head[id] : split.tail[id];
      dest.push_back(rel.View(row).ToTuple());
    }
    split.tail_rows += split.tail[id].size();
  }
  return split;
}

/// Snapshot write/load micro over a tc closure at fixpoint.
void RunSnapshotMicro() {
  const int64_t vertices = bench::LargeScale() ? 20000 : 4000;
  const int64_t edges = bench::LargeScale() ? 30000 : 6000;
  analysis::Workload w = analysis::MakeTransitiveClosure(
      analysis::GenerateSparseGraph(/*seed=*/11, vertices, edges,
                                    /*zipf_s=*/1.1),
      analysis::RuleOrder::kHandOptimized);
  core::Engine engine(w.program.get(), core::EngineConfig{});
  CARAC_CHECK_OK(engine.Prepare());
  CARAC_CHECK_OK(engine.Run());
  size_t total_rows = 0;
  for (storage::RelationId id = 0; id < w.program->db().NumRelations();
       ++id) {
    total_rows += w.program->db().Get(id, storage::DbKind::kDerived).size();
  }

  const std::string dir = ScratchDir("snapshot_micro");
  const std::string path = dir + "/snapshot.bin";
  std::vector<double> write_times;
  std::vector<double> load_times;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Timer write_timer;
    CARAC_CHECK_OK(w.program->db().SaveSnapshot(path));
    write_times.push_back(write_timer.ElapsedSeconds());

    storage::DatabaseSet loaded;
    util::Timer load_timer;
    CARAC_CHECK_OK(loaded.OpenSnapshot(path));
    load_times.push_back(load_timer.ElapsedSeconds());
    CARAC_CHECK(loaded.Get(w.output, storage::DbKind::kDerived).size() ==
                engine.ResultSize(w.output));
  }
  const double bytes =
      static_cast<double>(std::filesystem::file_size(path));
  const double write_s = Median(write_times);
  const double load_s = Median(load_times);
  const double mb = bytes / (1024.0 * 1024.0);
  std::printf("snapshot micro: tc %lld vertices / %lld edges, %zu stored "
              "rows, %.1f MB\n",
              static_cast<long long>(vertices),
              static_cast<long long>(edges), total_rows, mb);
  std::printf("  write: %s s (%.0f MB/s)   load: %s s (%.0f MB/s)\n",
              harness::FormatSeconds(write_s).c_str(), mb / write_s,
              harness::FormatSeconds(load_s).c_str(), mb / load_s);
  std::printf("PERSISTENCE tc snapshot rows=%zu bytes=%.0f write_s=%.6f "
              "load_s=%.6f\n",
              total_rows, bytes, write_s, load_s);
  std::filesystem::remove_all(dir);
}

struct RecoverResult {
  double full_seconds = 0;
  double recover_seconds = 0;
  size_t output_rows = 0;
  size_t tail_rows = 0;
  bool consistent = true;
};

/// `make` must rebuild the identical workload on every call (the fact
/// generators are seeded, so it does).
RecoverResult MeasureRecover(const harness::WorkloadFactory& make,
                             const core::EngineConfig& base_config,
                             double tail_frac) {
  RecoverResult result;

  // The no-persistence restart: full evaluation over the union of the
  // facts (fresh engine per rep, Prepare() excluded, median kept).
  const harness::Measurement full =
      harness::MeasureMedian(make, base_config, kReps);
  CARAC_CHECK(full.ok);
  result.full_seconds = full.seconds;
  result.output_rows = full.result_size;

  // The persistent restart. Untimed setup builds the durable state a
  // serving process would leave behind: fixpoint over the head facts,
  // checkpoint, then the tail as one logged-and-committed epoch. The
  // timed section is Restore() alone — snapshot load + log replay.
  std::vector<double> recover_times;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string dir = ScratchDir("recover");
    core::EngineConfig config = base_config;
    config.snapshot_dir = dir;
    {
      analysis::Workload w = make();
      const FactSplit split = SplitFacts(w, tail_frac);
      storage::DatabaseSet& db = w.program->db();
      for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
        db.ClearFacts(id);
      }
      core::Engine engine(w.program.get(), config);
      for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
        CARAC_CHECK_OK(engine.AddFacts(id, split.head[id]));
      }
      CARAC_CHECK_OK(engine.Prepare());
      CARAC_CHECK_OK(engine.Run());
      CARAC_CHECK_OK(engine.Checkpoint());
      for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
        CARAC_CHECK_OK(engine.AddFacts(id, split.tail[id]));
      }
      CARAC_CHECK_OK(engine.Update());
      result.tail_rows = split.tail_rows;
    }

    // Restart: re-parse the program source (untimed), then recover.
    analysis::Workload w = make();
    core::Engine engine(w.program.get(), config);
    CARAC_CHECK_OK(engine.Prepare());
    util::Timer timer;
    CARAC_CHECK_OK(engine.Restore());
    recover_times.push_back(timer.ElapsedSeconds());
    if (engine.ResultSize(w.output) != result.output_rows) {
      result.consistent = false;
    }
    std::filesystem::remove_all(dir);
  }
  result.recover_seconds = Median(recover_times);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool micro_only = false;
  core::EngineConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro_only = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      int64_t threads = 1;
      if (!util::ParseInt64(argv[i + 1], &threads) || threads < 1 ||
          threads > 256) {
        std::fprintf(stderr,
                     "error: --threads wants an integer in [1, 256], got "
                     "\"%s\"\n",
                     argv[i + 1]);
        return 2;
      }
      config.num_threads = static_cast<int>(threads);
      ++i;
    } else {
      std::fprintf(stderr, "usage: %s [--micro] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Persistence: snapshot throughput and recover-vs-recompute\n\n");
  RunSnapshotMicro();
  if (micro_only) return 0;
  std::printf("\n");

  // The tc arm runs on a GROWTH-ordered graph (analysis::
  // GenerateGrowthGraph): the fact-log tail is the newest edges at the
  // graph's frontier, the shape of an append-mostly serving workload.
  // On a random-order edge split, a 10% tail re-derives a super-linear
  // share of the closure — real derivations no engine can skip — which
  // measures the workload's physics, not the snapshot+log design. See
  // EXPERIMENTS.md for both protocols and numbers.
  const int64_t tc_vertices = bench::LargeScale() ? 120000 : 40000;
  const bench::Sizes sizes = bench::Sizes::Get();
  std::printf("recover-vs-recompute (tc: growth graph, %lld vertices; "
              "andersen: slist scale %lld; threads=%d; median of %d)\n\n",
              static_cast<long long>(tc_vertices),
              static_cast<long long>(sizes.slist_scale), config.num_threads,
              kReps);

  struct Spec {
    const char* name;
    harness::WorkloadFactory make;
  };
  const std::vector<Spec> specs = {
      {"tc",
       [&] {
         return analysis::MakeTransitiveClosure(
             analysis::GenerateGrowthGraph(/*seed=*/11, tc_vertices,
                                           /*extra_edge_prob=*/0.3),
             analysis::RuleOrder::kHandOptimized);
       }},
      {"andersen",
       [&] {
         analysis::SListConfig slist;
         slist.scale = sizes.slist_scale;
         return analysis::MakeAndersen(slist,
                                       analysis::RuleOrder::kHandOptimized);
       }},
  };

  harness::TablePrinter table({"workload", "log tail", "full (s)",
                               "recover (s)", "speedup", "output rows"});
  bool all_consistent = true;
  for (const Spec& spec : specs) {
    for (int pct : {1, 10}) {
      const RecoverResult r =
          MeasureRecover(spec.make, config, pct / 100.0);
      all_consistent &= r.consistent;
      const double speedup =
          r.recover_seconds > 0 ? r.full_seconds / r.recover_seconds : 0;
      table.AddRow({spec.name, std::to_string(pct) + "% (" +
                                   std::to_string(r.tail_rows) + " rows)",
                    harness::FormatSeconds(r.full_seconds),
                    harness::FormatSeconds(r.recover_seconds),
                    harness::FormatSpeedup(speedup),
                    std::to_string(r.output_rows)});
      std::printf("PERSISTENCE %s recover tail_pct=%d full_s=%.6f "
                  "recover_s=%.6f speedup=%.2f\n",
                  spec.name, pct, r.full_seconds, r.recover_seconds,
                  speedup);
    }
  }
  std::printf("\n");
  table.Print();
  if (!all_consistent) {
    std::fprintf(stderr,
                 "error: recovered state diverged from full evaluation\n");
    return 1;
  }
  return 0;
}
